#!/bin/sh
# Runs the tree-kernel and grid-scheduler benchmarks and writes the
# results as BENCH_2.json (all benchmarks) and BENCH_3.json (the
# columnar-kernel comparison: the pre-refactor row-major baseline
# against a fresh post-refactor run) at the repo root.
#
# Usage: scripts/bench.sh [-quick]
#   -quick    single iteration per benchmark (CI smoke mode)
#
# Environment:
#   BENCHTIME   overrides the per-benchmark budget (default 1s, or 1x
#               with -quick)
#   BENCHCOUNT  repetitions per benchmark (default 3, 1 with -quick);
#               the JSON keeps the per-metric minimum across runs, the
#               noise-robust estimate on shared machines
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
BENCHCOUNT="${BENCHCOUNT:-3}"
if [ "${1:-}" = "-quick" ]; then
    BENCHTIME=1x
    BENCHCOUNT=1
fi

RAW_ML=$(mktemp)
RAW_GRID=$(mktemp)
trap 'rm -f "$RAW_ML" "$RAW_GRID"' EXIT

echo "benchmarking tree/histgbt kernels (internal/ml)..." >&2
go test -run '^$' -bench 'BenchmarkTreeCore|BenchmarkForestFit|BenchmarkHistGBTFit' \
    -benchtime "$BENCHTIME" -count "$BENCHCOUNT" ./internal/ml/ | tee "$RAW_ML" >&2

echo "benchmarking grid scheduler (internal/bench)..." >&2
go test -run '^$' -bench 'BenchmarkRunGrid|BenchmarkSweepEndToEnd' \
    -benchtime "$BENCHTIME" -count "$BENCHCOUNT" ./internal/bench/ | tee "$RAW_GRID" >&2

# bench_json folds `go test -bench` lines into a JSON benchmark array
# (no surrounding object): [{"name": ..., "iterations": N, ...}, ...].
# With -count > 1 each benchmark repeats; the per-metric minimum across
# repetitions is kept (shared machines only ever add noise upward).
bench_json() {
    awk '
    function minset(arr, key, val) {
        if (!(key in arr) || val + 0 < arr[key] + 0) arr[key] = val
    }
    /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        if (!(name in seen)) { seen[name] = 1; order[++count] = name }
        minset(iters, name, $2)
        for (i = 3; i < NF; i++) {
            if ($(i+1) == "ns/op") minset(ns, name, $i)
            if ($(i+1) == "B/op") minset(bytes, name, $i)
            if ($(i+1) == "allocs/op") minset(allocs, name, $i)
        }
    }
    END {
        print "["
        for (j = 1; j <= count; j++) {
            name = order[j]
            printf "    {\"name\": \"%s\", \"iterations\": %s", name, iters[name]
            if (name in ns) printf ", \"ns_per_op\": %s", ns[name]
            if (name in bytes) printf ", \"bytes_per_op\": %s", bytes[name]
            if (name in allocs) printf ", \"allocs_per_op\": %s", allocs[name]
            printf "}"
            if (j < count) printf ","
            printf "\n"
        }
        print "  ]"
    }
    ' "$@"
}

{
    echo "{"
    printf '  "benchtime": "%s",\n' "$BENCHTIME"
    printf '  "benchmarks": '
    bench_json "$RAW_ML" "$RAW_GRID"
    echo "}"
} > BENCH_2.json
echo "wrote BENCH_2.json" >&2

# BENCH_3.json: fit-kernel allocation/latency comparison across the
# columnar Frame refactor. The "pre" block is the last benchmark run of
# the row-major [][]float64 kernels (recorded immediately before the
# refactor landed; that code path no longer exists to re-run). The
# "post" block is the fresh run above on the same benchmark names.
{
    echo "{"
    printf '  "benchtime": "%s",\n' "$BENCHTIME"
    cat <<'PRE'
  "pre": {
    "note": "row-major kernels, recorded before the columnar Frame refactor",
    "cpu": "Intel(R) Xeon(R) Processor @ 2.10GHz",
    "benchmarks": [
      {"name": "BenchmarkTreeCoreFit", "iterations": 219, "ns_per_op": 9764586, "bytes_per_op": 46898, "allocs_per_op": 241},
      {"name": "BenchmarkTreeCoreFitSubset", "iterations": 598, "ns_per_op": 4474877, "bytes_per_op": 48754, "allocs_per_op": 299},
      {"name": "BenchmarkForestFit", "iterations": 56, "ns_per_op": 36702912, "bytes_per_op": 491603, "allocs_per_op": 2935},
      {"name": "BenchmarkHistGBTFit", "iterations": 346, "ns_per_op": 8674783, "bytes_per_op": 1690480, "allocs_per_op": 5362}
    ]
  },
PRE
    printf '  "post": {\n    "benchmarks": '
    bench_json "$RAW_ML"
    printf '  }\n'
    echo "}"
} > BENCH_3.json
echo "wrote BENCH_3.json" >&2
