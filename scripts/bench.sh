#!/bin/sh
# Runs the tree-kernel and grid-scheduler benchmarks and writes the
# results as BENCH_2.json at the repo root.
#
# Usage: scripts/bench.sh [-quick]
#   -quick    single iteration per benchmark (CI smoke mode)
#
# Environment:
#   BENCHTIME   overrides the per-benchmark budget (default 1s, or 1x
#               with -quick)
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
if [ "${1:-}" = "-quick" ]; then
    BENCHTIME=1x
fi

OUT=BENCH_2.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "benchmarking tree kernel (internal/ml)..." >&2
go test -run '^$' -bench 'BenchmarkTreeCore|BenchmarkForestFit' \
    -benchtime "$BENCHTIME" ./internal/ml/ | tee -a "$RAW" >&2

echo "benchmarking grid scheduler (internal/bench)..." >&2
go test -run '^$' -bench 'BenchmarkRunGrid|BenchmarkSweepEndToEnd' \
    -benchtime "$BENCHTIME" ./internal/bench/ | tee -a "$RAW" >&2

# Fold the `go test -bench` lines into a JSON document:
#   {"benchmarks": [{"name": ..., "iterations": N, "ns_per_op": ...,
#                    "bytes_per_op": ..., "allocs_per_op": ...}, ...]}
awk -v benchtime="$BENCHTIME" '
BEGIN { print "{"; printf "  \"benchtime\": \"%s\",\n", benchtime; print "  \"benchmarks\": [" }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ",\n"
    printf "    {\"name\": \"%s\", \"iterations\": %s", name, $2
    if (ns != "") printf ", \"ns_per_op\": %s", ns
    if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n  ]"; print "}" }
' "$RAW" > "$OUT"

echo "wrote $OUT" >&2
