#!/bin/sh
# Runs the ml-kernel and grid-scheduler benchmarks and writes the
# results as BENCH_2.json (all benchmarks), BENCH_3.json (the columnar
# Frame comparison: pre-refactor row-major baseline vs fresh run) and
# BENCH_4.json (the fused-kernel comparison: pre-tentpole baselines vs
# fresh run) at the repo root, then prints a pre/post delta table
# (ns/op and allocs/op) for the fused-kernel rewrite.
#
# Usage: scripts/bench.sh [-quick]
#   -quick    single iteration per benchmark (CI smoke mode)
#
# Environment:
#   BENCHTIME   overrides the per-benchmark budget (default 1s, or 1x
#               with -quick)
#   BENCHCOUNT  repetitions per benchmark (default 3, 1 with -quick);
#               the JSON keeps the per-metric minimum across runs, the
#               noise-robust estimate on shared machines
#   BENCH_GATE  when 1, exit non-zero if any kernel benchmark's ns/op
#               regressed more than 10% against its BENCH_4 baseline
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
BENCHCOUNT="${BENCHCOUNT:-3}"
if [ "${1:-}" = "-quick" ]; then
    BENCHTIME=1x
    BENCHCOUNT=1
fi

RAW_ML=$(mktemp)
RAW_GRID=$(mktemp)
trap 'rm -f "$RAW_ML" "$RAW_GRID"' EXIT

echo "benchmarking ml kernels (internal/ml)..." >&2
go test -run '^$' -bench 'BenchmarkTreeCore|BenchmarkForestFit|BenchmarkHistGBTFit|BenchmarkKNN|BenchmarkMLPFit|BenchmarkLinearFit|BenchmarkAdaBoostFit' \
    -benchtime "$BENCHTIME" -count "$BENCHCOUNT" ./internal/ml/ | tee "$RAW_ML" >&2

echo "benchmarking grid scheduler (internal/bench)..." >&2
go test -run '^$' -bench 'BenchmarkRunGrid|BenchmarkSweepEndToEnd' \
    -benchtime "$BENCHTIME" -count "$BENCHCOUNT" ./internal/bench/ | tee "$RAW_GRID" >&2

# bench_json folds `go test -bench` lines into a JSON benchmark array
# (no surrounding object): [{"name": ..., "iterations": N, ...}, ...].
# With -count > 1 each benchmark repeats; the per-metric minimum across
# repetitions is kept (shared machines only ever add noise upward).
bench_json() {
    awk '
    function minset(arr, key, val) {
        if (!(key in arr) || val + 0 < arr[key] + 0) arr[key] = val
    }
    /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        if (!(name in seen)) { seen[name] = 1; order[++count] = name }
        minset(iters, name, $2)
        for (i = 3; i < NF; i++) {
            if ($(i+1) == "ns/op") minset(ns, name, $i)
            if ($(i+1) == "B/op") minset(bytes, name, $i)
            if ($(i+1) == "allocs/op") minset(allocs, name, $i)
        }
    }
    END {
        print "["
        for (j = 1; j <= count; j++) {
            name = order[j]
            printf "    {\"name\": \"%s\", \"iterations\": %s", name, iters[name]
            if (name in ns) printf ", \"ns_per_op\": %s", ns[name]
            if (name in bytes) printf ", \"bytes_per_op\": %s", bytes[name]
            if (name in allocs) printf ", \"allocs_per_op\": %s", allocs[name]
            printf "}"
            if (j < count) printf ","
            printf "\n"
        }
        print "  ]"
    }
    ' "$@"
}

{
    echo "{"
    printf '  "benchtime": "%s",\n' "$BENCHTIME"
    printf '  "benchmarks": '
    bench_json "$RAW_ML" "$RAW_GRID"
    echo "}"
} > BENCH_2.json
echo "wrote BENCH_2.json" >&2

# BENCH_3.json: fit-kernel allocation/latency comparison across the
# columnar Frame refactor. The "pre" block is the last benchmark run of
# the row-major [][]float64 kernels (recorded immediately before the
# refactor landed; that code path no longer exists to re-run). The
# "post" block is the fresh run above on the same benchmark names.
{
    echo "{"
    printf '  "benchtime": "%s",\n' "$BENCHTIME"
    cat <<'PRE'
  "pre": {
    "note": "row-major kernels, recorded before the columnar Frame refactor",
    "cpu": "Intel(R) Xeon(R) Processor @ 2.10GHz",
    "benchmarks": [
      {"name": "BenchmarkTreeCoreFit", "iterations": 219, "ns_per_op": 9764586, "bytes_per_op": 46898, "allocs_per_op": 241},
      {"name": "BenchmarkTreeCoreFitSubset", "iterations": 598, "ns_per_op": 4474877, "bytes_per_op": 48754, "allocs_per_op": 299},
      {"name": "BenchmarkForestFit", "iterations": 56, "ns_per_op": 36702912, "bytes_per_op": 491603, "allocs_per_op": 2935},
      {"name": "BenchmarkHistGBTFit", "iterations": 346, "ns_per_op": 8674783, "bytes_per_op": 1690480, "allocs_per_op": 5362}
    ]
  },
PRE
    printf '  "post": {\n    "benchmarks": '
    bench_json "$RAW_ML"
    printf '  }\n'
    echo "}"
} > BENCH_3.json
echo "wrote BENCH_3.json" >&2

# BENCH_4.json: kernel latency/allocation comparison across the fused
# hardware-speed kernel rewrite (single-pass bounds-check-eliminated
# histogram scans, blocked kNN distances, arena trees, within-cell
# parallelism). The "pre" block is the last run of the pre-rewrite
# kernels, min-of-3 on the same machine immediately before the rewrite
# landed; that code path no longer exists to re-run. The machine has a
# single core, so BenchmarkForestFitParallel p1 vs p4 only guards
# goroutine-handoff overhead there — parallel scaling needs multi-core
# hardware. The headline HistGBTFit delta was additionally measured
# interleaved against a pre-rewrite git worktree on the same host to
# cancel shared-VM noise: 4306917 -> 3134206 ns/op (-27.2%).
{
    echo "{"
    printf '  "benchtime": "%s",\n' "$BENCHTIME"
    cat <<'PRE'
  "machine": {"cpu": "Intel(R) Xeon(R) Processor @ 2.70GHz", "cores": 1, "go": "go1.24.0 linux/amd64"},
  "note": "single-core machine: ForestFitParallel p4 cannot show multi-core scaling here, only overhead; HistGBTFit headline delta cross-checked interleaved vs a pre-rewrite worktree (4306917 -> 3134206 ns/op, -27.2%)",
  "pre": {
    "note": "pre-rewrite kernels, min-of-3 recorded immediately before the fused-kernel rewrite",
    "benchmarks": [
      {"name": "BenchmarkTreeCoreFit", "ns_per_op": 8186600, "bytes_per_op": 48706, "allocs_per_op": 14},
      {"name": "BenchmarkTreeCoreFitSubset", "ns_per_op": 3477410, "bytes_per_op": 50171, "allocs_per_op": 15},
      {"name": "BenchmarkForestFit", "ns_per_op": 29871379, "bytes_per_op": 497620, "allocs_per_op": 240},
      {"name": "BenchmarkHistGBTFit", "ns_per_op": 4336559, "bytes_per_op": 180852, "allocs_per_op": 910},
      {"name": "BenchmarkKNNFit", "ns_per_op": 155.7, "bytes_per_op": 384, "allocs_per_op": 1},
      {"name": "BenchmarkKNNPredict", "ns_per_op": 8715749, "bytes_per_op": 986790, "allocs_per_op": 501},
      {"name": "BenchmarkMLPFit", "ns_per_op": 3818271, "bytes_per_op": 31858, "allocs_per_op": 57},
      {"name": "BenchmarkLinearFit", "ns_per_op": 911015, "bytes_per_op": 49359, "allocs_per_op": 18},
      {"name": "BenchmarkAdaBoostFit", "ns_per_op": 10101686, "bytes_per_op": 250179, "allocs_per_op": 84}
    ]
  },
PRE
    printf '  "post": {\n    "benchmarks": '
    bench_json "$RAW_ML"
    printf '  }\n'
    echo "}"
} > BENCH_4.json
echo "wrote BENCH_4.json" >&2

# Pre/post delta table for the fused-kernel rewrite: the BENCH_4
# baselines against the fresh min-of-count run. With BENCH_GATE=1 a
# >10% ns/op regression on any baselined benchmark fails the script.
PRE4='BenchmarkTreeCoreFit 8186600 14
BenchmarkTreeCoreFitSubset 3477410 15
BenchmarkForestFit 29871379 240
BenchmarkHistGBTFit 4336559 910
BenchmarkKNNFit 155.7 1
BenchmarkKNNPredict 8715749 501
BenchmarkMLPFit 3818271 57
BenchmarkLinearFit 911015 18
BenchmarkAdaBoostFit 10101686 84'

{ printf '%s\n' "$PRE4"; cat "$RAW_ML"; } | awk -v gate="${BENCH_GATE:-0}" '
    NF == 3 && $1 ~ /^Benchmark/ { pre_ns[$1] = $2; pre_al[$1] = $3; next }
    /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        if (!(name in seen)) { seen[name] = 1; order[++n] = name }
        for (i = 3; i < NF; i++) {
            if ($(i+1) == "ns/op" && (!(name in ns) || $i + 0 < ns[name] + 0)) ns[name] = $i
            if ($(i+1) == "allocs/op" && (!(name in al) || $i + 0 < al[name] + 0)) al[name] = $i
        }
    }
    END {
        printf "%-38s %14s %14s %8s %7s %7s %8s\n",
            "benchmark", "pre ns/op", "post ns/op", "delta", "pre-al", "post-al", "delta"
        fail = 0
        for (j = 1; j <= n; j++) {
            name = order[j]
            if (!(name in pre_ns)) {
                printf "%-38s %14s %14s %8s %7s %7s %8s\n", name, "-", ns[name], "new", "-", al[name], "new"
                continue
            }
            dns = (ns[name] - pre_ns[name]) / pre_ns[name] * 100
            dal = pre_al[name] > 0 ? (al[name] - pre_al[name]) / pre_al[name] * 100 : 0
            printf "%-38s %14s %14s %+7.1f%% %7s %7s %+7.1f%%\n",
                name, pre_ns[name], ns[name], dns, pre_al[name], al[name], dal
            if (gate == "1" && dns > 10) {
                printf "bench: %s ns/op regressed %.1f%% (>10%% gate)\n", name, dns > "/dev/stderr"
                fail = 1
            }
        }
        exit fail
    }
' >&2
