#!/bin/sh
# Runs the exact lint gate CI enforces, so contributors can check
# locally before pushing:
#
#   1. gofmt cleanliness (every tracked .go file, fixtures included)
#   2. go vet
#   3. greenlint — the determinism & energy-accounting suite
#      (see internal/greenlint and the "Determinism invariants" and
#      "Static analysis" sections of DESIGN.md)
#
# All three steps walk the whole module (./...), so new packages — the
# shard/merge/coordinator layer included — are covered without editing
# this script. Wall-clock timers are rejected by greenlint unless the
# site carries "//greenlint:allow wallclock <reason>"; the only
# sanctioned pattern is operator-facing liveness machinery whose verdict
# never reaches a measured quantity, e.g. the cell watchdog's probe
# ticker (internal/bench/scheduler.go), the coordinator's
# process-deadline timer over shard journal growth
# (internal/bench/coordinator.go), and the serving daemon's
# batch-window timer (internal/serve/server.go) — the wall timer only
# decides *when* a queued batch flushes; latency, joules, and every
# other measured quantity stay on the virtual clock. The reason must
# say why the site cannot influence recorded results.
#
# Goroutine launches in internal/ml are likewise rejected unless they
# carry "//greenlint:allow reduceorder <reason>" arguing the sanctioned
# reduction order (disjoint item-addressed slots, caller-side reduce in
# slot order — see internal/ml/parallel.go and the "Kernel execution"
# section of DESIGN.md); writes to captured variables from inside such
# goroutines need their own annotation.
#
# The CFG-backed analyzers (framerelease, meteredcost, hotalloc) enforce
# the pooled-frame ownership discipline, ml.Cost accounting, and
# allocation-free hot kernels; see DESIGN.md "Static analysis" for the
# //greenlint:owns and //greenlint:hotpath vocabulary.
#
# Usage: scripts/lint.sh [-checks name,name,...]
#
# With -checks, only the named greenlint analyzers run (gofmt and vet
# are skipped) — the fast inner loop while iterating on one contract,
# e.g. scripts/lint.sh -checks framerelease,hotalloc.
set -eu

cd "$(dirname "$0")/.."

checks=""
while [ $# -gt 0 ]; do
    case "$1" in
    -checks)
        [ $# -ge 2 ] || { echo "lint: -checks needs a comma-separated list" >&2; exit 2; }
        checks="$2"
        shift 2
        ;;
    -checks=*)
        checks="${1#-checks=}"
        shift
        ;;
    *)
        echo "lint: unknown argument $1 (usage: scripts/lint.sh [-checks name,...])" >&2
        exit 2
        ;;
    esac
done

if [ -n "$checks" ]; then
    echo "lint: greenlint -checks $checks" >&2
    go run ./cmd/greenlint -checks "$checks" ./...
    echo "lint: ok" >&2
    exit 0
fi

echo "lint: gofmt" >&2
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "lint: gofmt wants to reformat:" >&2
    echo "$unformatted" >&2
    echo "lint: run 'gofmt -w .'" >&2
    exit 1
fi

echo "lint: go vet" >&2
go vet ./...

echo "lint: greenlint" >&2
go run ./cmd/greenlint ./...

echo "lint: ok" >&2
