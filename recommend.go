package greenautoml

import (
	"fmt"
	"time"
)

// Priority is the user's stated optimization goal once a meaningful search
// budget exists (paper Fig. 8, lower branch).
type Priority int

const (
	// PriorityPareto asks for Pareto-optimal accuracy/inference-cost
	// trade-offs.
	PriorityPareto Priority = iota
	// PriorityFastInference asks for the cheapest possible inference,
	// accepting lower accuracy.
	PriorityFastInference
	// PriorityAccuracy asks for maximal predictive accuracy regardless
	// of inference cost.
	PriorityAccuracy
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	switch p {
	case PriorityFastInference:
		return "fast inference"
	case PriorityAccuracy:
		return "accuracy"
	default:
		return "pareto"
	}
}

// Task describes an ML application for the Figure 8 guideline.
type Task struct {
	// WeeklyClusterAccess reports whether at least one 28-core-class
	// machine is available for more than a week of development compute.
	WeeklyClusterAccess bool
	// PlannedExecutions is how many times the AutoML system will run on
	// new datasets (thousands amortize development-stage tuning; the
	// paper measured the break-even at 885 runs for a 5-minute budget).
	PlannedExecutions int
	// SearchBudget is the per-run search time.
	SearchBudget time.Duration
	// Classes is the task's class count (TabPFN supports at most 10).
	Classes int
	// GPUAvailable reports whether a GPU is available (TabPFN needs one
	// to be fast).
	GPUAvailable bool
	// Priority is the optimization goal for non-trivial budgets.
	Priority Priority
}

// Recommendation is the guideline's output.
type Recommendation struct {
	// SystemName names the recommended system.
	SystemName string
	// Build constructs the recommended system.
	Build func() System
	// Rationale explains the decision in the paper's terms.
	Rationale string
}

// AmortizationThreshold is the paper's measured break-even point: tuning
// the AutoML system parameters for a 5-minute budget costs 21 kWh and pays
// for itself after 885 executions (paper §3.7).
const AmortizationThreshold = 885

// Recommend implements the paper's Figure 8 flowchart: the guideline for
// picking the most energy-efficient AutoML solution given the task
// parameters and requirements.
func Recommend(t Task) Recommendation {
	// Branch 1: enough development compute and enough planned executions
	// to amortize development-stage tuning.
	if t.WeeklyClusterAccess && t.PlannedExecutions >= AmortizationThreshold {
		budget := t.SearchBudget
		if budget <= 0 {
			budget = 5 * time.Minute
		}
		return Recommendation{
			SystemName: "CAML(tuned)",
			Build:      func() System { return TunedCAML(budget) },
			Rationale: fmt.Sprintf(
				"with development compute and ≥%d planned executions, tuning the AutoML system parameters yields the least energy in both execution and inference",
				AmortizationThreshold),
		}
	}

	// Branch 2: very small search budgets.
	if t.SearchBudget > 0 && t.SearchBudget < 10*time.Second {
		if t.Classes > 0 && t.Classes <= 10 && t.GPUAvailable {
			return Recommendation{
				SystemName: "TabPFN",
				Build:      TabPFN,
				Rationale:  "zero-shot AutoML needs no search; with ≤10 classes and a GPU, TabPFN delivers instantly",
			}
		}
		return Recommendation{
			SystemName: "CAML",
			Build:      CAML,
			Rationale:  "incremental training finds ML pipelines under tiny budgets even on very large datasets",
		}
	}

	// Branch 3: a real budget exists — decide by priority.
	switch t.Priority {
	case PriorityFastInference:
		return Recommendation{
			SystemName: "FLAML",
			Build:      FLAML,
			Rationale:  "FLAML was designed for low-cost single models: cheapest inference at the cost of accuracy",
		}
	case PriorityAccuracy:
		return Recommendation{
			SystemName: "AutoGluon",
			Build:      AutoGluon,
			Rationale:  "stacked, bagged ensembling converges to the best predictive performance",
		}
	default:
		return Recommendation{
			SystemName: "CAML",
			Build:      CAML,
			Rationale:  "CAML yields Pareto-optimal trade-offs between predictive performance and inference cost",
		}
	}
}
