package greenautoml

import (
	"testing"
	"time"
)

func TestDatasetNamesComplete(t *testing.T) {
	names := DatasetNames()
	if len(names) != 39 {
		t.Fatalf("%d dataset names, want 39 (paper Table 2)", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate dataset name %s", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"adult", "covertype", "credit-g", "Fashion-MNIST"} {
		if !seen[want] {
			t.Errorf("dataset %s missing", want)
		}
	}
}

func TestDatasetAndSplit(t *testing.T) {
	ds := Dataset("credit-g", 1)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	train, test := Split(ds, 2)
	if train.Rows()+test.Rows() != ds.Rows() {
		t.Error("split lost rows")
	}
	frac := float64(train.Rows()) / float64(ds.Rows())
	if frac < 0.6 || frac > 0.72 {
		t.Errorf("train fraction %.2f, want ~0.66", frac)
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown dataset name did not panic")
		}
	}()
	Dataset("definitely-not-a-dataset", 1)
}

func TestFacadeEndToEnd(t *testing.T) {
	ds := Dataset("blood-transfusion-service-center", 3)
	train, test := Split(ds, 5)
	meter := NewMeter(CPUTestbed(), 1)
	res, err := CAML().Fit(train, Options{Budget: 10 * time.Second, Meter: meter, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := res.Predict(test, meter)
	if err != nil {
		t.Fatal(err)
	}
	if acc := BalancedAccuracy(test.LabelsInto(nil), pred, test.Classes()); acc < 0.5 {
		t.Errorf("balanced accuracy %.3f", acc)
	}
	report := meter.Tracker().Snapshot()
	if report.ExecutionKWh <= 0 || report.InferenceKWh <= 0 {
		t.Errorf("energy report incomplete: %+v", report)
	}
	if CO2Kg(1) != 0.222 {
		t.Error("CO2 conversion constant drifted from the paper")
	}
	if CostEUR(1) != 0.20 {
		t.Error("EUR conversion constant drifted from the paper")
	}
}

func TestSystemLineup(t *testing.T) {
	builders := map[string]func() System{
		"AutoGluon":             AutoGluon,
		"AutoGluon(fast-infer)": AutoGluonFastInference,
		"AutoSklearn1":          AutoSklearn1,
		"AutoSklearn2":          AutoSklearn2,
		"FLAML":                 FLAML,
		"TabPFN":                TabPFN,
		"TPOT":                  TPOT,
		"CAML":                  CAML,
	}
	for want, build := range builders {
		if got := build().Name(); got != want {
			t.Errorf("builder produced %q, want %q", got, want)
		}
	}
	if got := TunedCAML(time.Minute).Name(); got != "CAML(tuned)" {
		t.Errorf("tuned name %q", got)
	}
	if got := ConstrainedCAML(time.Millisecond).Name(); got != "CAML(c=1ms)" {
		t.Errorf("constrained name %q", got)
	}
}

func TestTestbeds(t *testing.T) {
	if err := CPUTestbed().Validate(); err != nil {
		t.Error(err)
	}
	if err := GPUTestbed().Validate(); err != nil {
		t.Error(err)
	}
	if !GPUTestbed().GPU.Present {
		t.Error("GPU testbed has no GPU")
	}
}

// TestRecommend covers every branch of the Figure 8 flowchart.
func TestRecommend(t *testing.T) {
	cases := []struct {
		name string
		task Task
		want string
	}{
		{
			name: "development tuning pays off",
			task: Task{WeeklyClusterAccess: true, PlannedExecutions: 2000, SearchBudget: 5 * time.Minute},
			want: "CAML(tuned)",
		},
		{
			name: "cluster without enough executions",
			task: Task{WeeklyClusterAccess: true, PlannedExecutions: 10, SearchBudget: time.Minute, Priority: PriorityAccuracy},
			want: "AutoGluon",
		},
		{
			name: "tiny budget, few classes, GPU",
			task: Task{SearchBudget: 5 * time.Second, Classes: 4, GPUAvailable: true},
			want: "TabPFN",
		},
		{
			name: "tiny budget, many classes",
			task: Task{SearchBudget: 5 * time.Second, Classes: 40, GPUAvailable: true},
			want: "CAML",
		},
		{
			name: "tiny budget, no GPU",
			task: Task{SearchBudget: 5 * time.Second, Classes: 4},
			want: "CAML",
		},
		{
			name: "fast inference priority",
			task: Task{SearchBudget: time.Minute, Priority: PriorityFastInference},
			want: "FLAML",
		},
		{
			name: "accuracy priority",
			task: Task{SearchBudget: time.Minute, Priority: PriorityAccuracy},
			want: "AutoGluon",
		},
		{
			name: "pareto priority",
			task: Task{SearchBudget: time.Minute, Priority: PriorityPareto},
			want: "CAML",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := Recommend(tc.task)
			if rec.SystemName != tc.want {
				t.Errorf("recommended %s, want %s", rec.SystemName, tc.want)
			}
			if rec.Rationale == "" {
				t.Error("empty rationale")
			}
			if rec.Build == nil {
				t.Fatal("nil builder")
			}
			built := rec.Build()
			if built == nil {
				t.Fatal("builder returned nil")
			}
		})
	}
}

func TestPriorityString(t *testing.T) {
	for p, want := range map[Priority]string{
		PriorityPareto:        "pareto",
		PriorityFastInference: "fast inference",
		PriorityAccuracy:      "accuracy",
	} {
		if got := p.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestTuneSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning loop is slow")
	}
	sys, dev, err := Tune(TuneOptions{
		Budget:         5 * time.Second,
		TopK:           3,
		Iterations:     4,
		RunsPerDataset: 1,
		Seed:           13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name() != "CAML(tuned)" {
		t.Errorf("tuned system %q", sys.Name())
	}
	if dev.DevKWh <= 0 {
		t.Error("no development energy tracked")
	}
}
