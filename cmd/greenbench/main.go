// Command greenbench regenerates the tables and figures of "How Green is
// AutoML for Tabular Data?" (EDBT 2025) on the virtual testbed.
//
// Usage:
//
//	greenbench -experiment fig3 [-seeds 3] [-datasets 39] [-quick]
//
// Experiments: fig3 fig4 fig5 fig6 fig7 table3 table4 table5 table6
// table7 table8 table9 winners all. Figure 8 is a decision procedure; use the
// greenrecommend command.
//
// Sharded execution splits the fig3 grid across processes:
//
//	greenbench -shard 0/4 -journal s0.jsonl      # run one content-addressed slice
//	greenbench -merge 's0.jsonl,s1.jsonl,...'    # fuse shard journals into the exports
//	greenbench -coordinator -shards 4 -shard-dir run/   # spawn, babysit, restart, merge
//
// Merged exports are byte-identical to a single-process run of the same
// grid, regardless of shard count, completion order, kills, or restarts.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/automl"
	"repro/internal/bench"
	"repro/internal/faults"
	"repro/internal/metaopt"
	"repro/internal/openml"
	"repro/internal/repo"
)

// options holds every flag value, so validation is a pure function the
// tests can drive table-style without a process boundary.
type options struct {
	experiment  string
	seeds       int
	datasets    int
	names       string
	quick       bool
	metaIters   int
	metaTopK    int
	csvPath     string
	jsonPath    string
	svgDir      string
	journal     string
	faultRate   float64
	faultSeed   uint64
	memoryGB    float64
	retries     int
	workers     int
	parallelism int
	hangRate    float64
	wdProbes    int
	reportDir   string

	shard            string
	merge            string
	mergeAllowDamage bool
	coordinator      bool
	shards           int
	shardDir         string
	maxRestarts      int
	stallProbes      int
	stallInterval    time.Duration

	repoDir          string
	repoReadonly     bool
	repoAllowDamage  bool
	simulateEnsemble bool

	// shardSpec is the parsed -shard value, filled by validate.
	shardSpec bench.ShardSpec
}

// validate rejects malformed and contradictory flag combinations with a
// one-line error instead of silently misbehaving partway into a sweep.
func (o *options) validate() error {
	if o.faultRate < 0 || o.faultRate > 1 {
		return fmt.Errorf("-fault-rate %v must be in [0, 1]", o.faultRate)
	}
	if o.hangRate < 0 || o.hangRate > 1 {
		return fmt.Errorf("-hang-rate %v must be in [0, 1]", o.hangRate)
	}
	if o.retries < 0 {
		return fmt.Errorf("-retries %d must not be negative (0 means the default policy)", o.retries)
	}
	if o.workers < 0 {
		return fmt.Errorf("-workers %d must not be negative (0 means NumCPU)", o.workers)
	}
	if o.parallelism < 0 {
		return fmt.Errorf("-parallelism %d must not be negative (0 means automatic)", o.parallelism)
	}
	if o.wdProbes < 0 {
		return fmt.Errorf("-watchdog-probes %d must not be negative (0 means off)", o.wdProbes)
	}
	if o.seeds < 1 {
		return fmt.Errorf("-seeds %d must be at least 1", o.seeds)
	}
	if o.datasets < 0 {
		return fmt.Errorf("-datasets %d must not be negative (0 means the full suite)", o.datasets)
	}
	if o.memoryGB < 0 {
		return fmt.Errorf("-memory-gb %v must not be negative (0 means off)", o.memoryGB)
	}

	modes := 0
	for _, on := range []bool{o.shard != "", o.merge != "", o.coordinator, o.simulateEnsemble} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-shard, -merge, -coordinator and -simulate-ensemble are mutually exclusive")
	}
	if o.repoReadonly && o.repoDir == "" {
		return fmt.Errorf("-repo-readonly only applies to -repo")
	}
	if o.repoAllowDamage && o.repoDir == "" {
		return fmt.Errorf("-repo-allow-damage only applies to -repo")
	}
	if o.simulateEnsemble && o.repoDir == "" {
		return fmt.Errorf("-simulate-ensemble needs -repo: it replays predictions the store holds")
	}
	if o.shard != "" {
		spec, err := bench.ParseShardSpec(o.shard)
		if err != nil {
			return err
		}
		o.shardSpec = spec
		if o.journal == "" {
			return fmt.Errorf("-shard requires -journal: a shard's only output is its journal")
		}
	}
	if o.coordinator {
		if o.shards < 1 {
			return fmt.Errorf("-shards %d must be at least 1", o.shards)
		}
		if o.shardDir == "" {
			return fmt.Errorf("-coordinator requires -shard-dir for the shard journals")
		}
		if o.maxRestarts < 0 {
			return fmt.Errorf("-max-restarts %d must not be negative", o.maxRestarts)
		}
		if o.stallProbes < 0 {
			return fmt.Errorf("-shard-stall-probes %d must not be negative (0 means off)", o.stallProbes)
		}
		if o.stallProbes > 0 && o.stallInterval <= 0 {
			return fmt.Errorf("-shard-stall-interval %v must be positive when -shard-stall-probes is set", o.stallInterval)
		}
	}
	if o.mergeAllowDamage && o.merge == "" {
		return fmt.Errorf("-merge-allow-damage only applies to -merge")
	}
	if o.shard != "" || o.coordinator {
		if o.experiment != "fig3" {
			return fmt.Errorf("sharded execution covers the fig3 grid; -experiment %s cannot be sharded", o.experiment)
		}
	}
	if o.merge != "" {
		for _, id := range strings.Split(o.experiment, ",") {
			if !fig3Derived(strings.TrimSpace(id)) {
				return fmt.Errorf("-merge can only render experiments derived from the fig3 grid (fig3, fig4, table4, table6, table7, winners, significance); %s reruns a grid", id)
			}
		}
	}
	return nil
}

// fig3Derived reports whether an experiment is a pure function of the
// fig3 grid's records — renderable offline from merged journals.
func fig3Derived(id string) bool {
	switch id {
	case "fig3", "fig4", "table4", "table6", "table7", "winners", "significance":
		return true
	}
	return false
}

func main() {
	var o options
	flag.StringVar(&o.experiment, "experiment", "fig3", "experiment id (fig3..fig7, table3..table9, all)")
	flag.IntVar(&o.seeds, "seeds", 3, "repeated runs per cell (paper uses 10)")
	flag.IntVar(&o.datasets, "datasets", 0, "restrict to the first N suite datasets (0 = all 39)")
	flag.StringVar(&o.names, "names", "", "comma-separated dataset names to run (overrides -datasets)")
	flag.BoolVar(&o.quick, "quick", false, "tiny configuration for a fast smoke run")
	flag.IntVar(&o.metaIters, "meta-iterations", 40, "BO iterations for development-stage experiments (paper uses 300)")
	flag.IntVar(&o.metaTopK, "meta-topk", 8, "representative datasets for development-stage experiments (paper uses 20)")
	flag.StringVar(&o.csvPath, "csv", "", "export the fig3 grid's raw records as CSV to this path")
	flag.StringVar(&o.jsonPath, "json", "", "export the fig3 grid's raw records as JSON to this path")
	flag.StringVar(&o.svgDir, "svg-dir", "", "write SVG charts of figures 3-5 into this directory")
	flag.StringVar(&o.journal, "journal", "", "JSONL checkpoint path for the fig3 grid; an interrupted run resumes from it")
	flag.Float64Var(&o.faultRate, "fault-rate", 0, "per-attempt fault-injection probability in [0,1] (0 = off)")
	flag.Uint64Var(&o.faultSeed, "fault-seed", 0, "fault-injection stream seed (decisions are order-independent)")
	flag.Float64Var(&o.memoryGB, "memory-gb", 0, "machine memory model in GB for simulated OOM kills (0 = off)")
	flag.IntVar(&o.retries, "retries", 0, "max Fit attempts per cell (0 = 1, or 3 with faults enabled); retry energy is charged")
	flag.IntVar(&o.workers, "workers", 0, "grid cells run concurrently (0 = NumCPU); output is identical at any worker count")
	flag.IntVar(&o.parallelism, "parallelism", 0, "within-cell kernel worker budget (0 = auto: idle cores split across uncached cells); output is bit-identical at any level")
	flag.Float64Var(&o.hangRate, "hang-rate", 0, "per-attempt probability in [0,1] that a Fit hangs without progress, exercising the stall watchdog (0 = off)")
	flag.IntVar(&o.wdProbes, "watchdog-probes", 0, "probe intervals without virtual progress before a cell is abandoned as stalled (0 = off, or 4 when -hang-rate > 0)")
	flag.StringVar(&o.reportDir, "report-dir", "", "also write each experiment's rendered report into this directory (atomic replace)")
	flag.StringVar(&o.shard, "shard", "", "run one content-addressed grid slice i/N (e.g. 0/4); requires -journal")
	flag.StringVar(&o.merge, "merge", "", "comma-separated shard journals (globs allowed) to fuse into the aggregate exports instead of running")
	flag.BoolVar(&o.mergeAllowDamage, "merge-allow-damage", false, "let -merge exit zero even when shard journals had CRC-damaged lines")
	flag.BoolVar(&o.coordinator, "coordinator", false, "spawn -shards subprocesses, restart crashed shards, and merge their journals")
	flag.IntVar(&o.shards, "shards", 0, "shard count for -coordinator")
	flag.StringVar(&o.shardDir, "shard-dir", "", "directory for the coordinator's shard journals")
	flag.IntVar(&o.maxRestarts, "max-restarts", 2, "restarts each shard gets after its first launch before it degrades to a shard failure")
	flag.IntVar(&o.stallProbes, "shard-stall-probes", 0, "probe intervals without shard journal growth before the coordinator SIGKILLs and restarts the shard (0 = off)")
	flag.DurationVar(&o.stallInterval, "shard-stall-interval", 2*time.Second, "real-time probe period for -shard-stall-probes")
	flag.StringVar(&o.repoDir, "repo", "", "content-addressed evaluation repository directory; stored cells replay without refitting, executed cells are written back")
	flag.BoolVar(&o.repoReadonly, "repo-readonly", false, "consult -repo without writing executed cells back")
	flag.BoolVar(&o.repoAllowDamage, "repo-allow-damage", false, "treat damaged -repo cells as misses (the cells rerun) instead of refusing the store")
	flag.BoolVar(&o.simulateEnsemble, "simulate-ensemble", false, "simulate greedy ensemble selection over the predictions stored in -repo — no fits, lookup+blend energy only")
	flag.Parse()

	if err := o.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "greenbench:", err)
		os.Exit(2)
	}

	cfg, err := gridConfig(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "greenbench:", err)
		os.Exit(2)
	}
	if o.repoDir != "" {
		rp, err := repo.Open(o.repoDir, repo.Options{ReadOnly: o.repoReadonly, AllowDamage: o.repoAllowDamage})
		if err != nil {
			fmt.Fprintln(os.Stderr, "greenbench:", err)
			os.Exit(1)
		}
		cfg.Repo = rp
	}
	meta := metaopt.Options{
		Iterations:     o.metaIters,
		TopK:           o.metaTopK,
		RunsPerDataset: 1,
		Budget:         10 * time.Second,
	}
	if o.quick {
		meta.Iterations = 8
		meta.TopK = 4
	}

	switch {
	case o.shard != "":
		err = runShardMode(o, cfg)
	case o.merge != "":
		err = runMergeMode(o, cfg, meta)
	case o.coordinator:
		err = runCoordinatorMode(o, cfg, meta)
	case o.simulateEnsemble:
		err = runSimulateMode(cfg)
	default:
		ids := experimentIDs(o.experiment)
		err = run(ids, cfg, meta, o.csvPath, o.jsonPath, o.svgDir, o.reportDir, o.journal, nil)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "greenbench:", err)
		os.Exit(1)
	}
}

func experimentIDs(experiment string) []string {
	if experiment == "all" {
		return []string{"fig3", "fig4", "fig5", "fig6", "fig7", "table3", "table4", "table5", "table6", "table7", "table8", "table9", "winners", "significance"}
	}
	return strings.Split(experiment, ",")
}

// gridConfig assembles the bench configuration the flags describe.
func gridConfig(o options) (bench.Config, error) {
	cfg := bench.Config{
		Seeds: o.seeds,
		Faults: faults.Config{
			Rate:        o.faultRate,
			HangRate:    o.hangRate,
			Seed:        o.faultSeed,
			MemoryBytes: int64(o.memoryGB * 1e9),
		},
		Retry:       bench.RetryPolicy{MaxAttempts: o.retries},
		Workers:     o.workers,
		Parallelism: o.parallelism,
		Watchdog:    bench.WatchdogPolicy{Probes: o.wdProbes},
		Shard:       o.shardSpec,
	}
	datasets := o.datasets
	if o.quick {
		cfg.Seeds = 1
		cfg.Budgets = []time.Duration{10 * time.Second, time.Minute}
		if datasets == 0 {
			datasets = 6
		}
	}
	if o.names != "" {
		for _, name := range strings.Split(o.names, ",") {
			spec, ok := openml.ByName(strings.TrimSpace(name))
			if !ok {
				return bench.Config{}, fmt.Errorf("unknown dataset %q", name)
			}
			cfg.Datasets = append(cfg.Datasets, spec)
		}
	} else if datasets > 0 {
		suite := openml.Suite()
		if datasets < len(suite) {
			suite = suite[:datasets]
		}
		cfg.Datasets = suite
	}
	return cfg, nil
}

// runShardMode executes one content-addressed slice of the fig3 grid
// against its own journal. The shard's only durable output is the
// journal; the summary goes to stderr so a coordinator piping shard
// output never mistakes it for a report.
func runShardMode(o options, cfg bench.Config) error {
	run, err := bench.RunShard(bench.DefaultSystems(), cfg, o.journal)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "greenbench: shard %s: %d cell(s) checkpointed to %s\n", o.shardSpec, len(run.Records), o.journal)
	if run.Damaged > 0 {
		fmt.Fprintf(os.Stderr, "greenbench: shard %s: %d damaged journal line(s) were skipped and their cells rerun\n", o.shardSpec, run.Damaged)
	}
	if run.Repo.Consulted() {
		fmt.Fprintf(os.Stderr, "greenbench: shard %s: %s\n", o.shardSpec, run.Repo.Summary())
	}
	return nil
}

// runSimulateMode replays stored predictions as simulated ensembles: a
// pure repository analysis that fits nothing and charges only the
// lookup-and-blend compute it actually performs.
func runSimulateMode(cfg bench.Config) error {
	res, err := bench.SimulateEnsembles(bench.DefaultSystems(), cfg, cfg.Repo)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	if res.Damaged > 0 {
		fmt.Fprintf(os.Stderr, "greenbench: simulate-ensemble: %d damaged repository entr(ies) were skipped\n", res.Damaged)
	}
	return nil
}

// mergePaths expands the -merge argument: comma-separated paths, each
// possibly a glob.
func mergePaths(arg string) ([]string, error) {
	var paths []string
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		matches, err := filepath.Glob(part)
		if err != nil {
			return nil, fmt.Errorf("bad -merge pattern %q: %w", part, err)
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("-merge pattern %q matches no journals", part)
		}
		paths = append(paths, matches...)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("-merge needs at least one journal path")
	}
	return paths, nil
}

// mergeJournals fuses shard journals into the canonical fig3 record
// sequence and reports per-journal coverage and damage. With a
// repository configured, journal holes are fused from the store and the
// repository's hit and damage counts are surfaced alongside the journal
// damage counters.
func mergeJournals(paths []string, cfg bench.Config) (*bench.MergeResult, error) {
	systems := bench.DefaultSystems()
	fingerprint := bench.Fingerprint(systems, cfg)
	refs := bench.EnumerateCellRefs(systems, cfg)
	res, err := bench.MergeJournalsRepo(paths, fingerprint, refs, cfg.Repo)
	if err != nil {
		return nil, err
	}
	for _, jr := range res.PerJournal {
		shard := jr.Shard
		if shard == "" {
			shard = "whole-grid"
		}
		fmt.Fprintf(os.Stderr, "greenbench: merge: %s (shard %s): %d cell(s), %d damaged line(s)\n", jr.Path, shard, jr.Cells, jr.Damaged)
	}
	if cfg.Repo != nil {
		fmt.Fprintf(os.Stderr, "greenbench: merge: repository: %d cell(s) fused from the store, %d damaged\n", res.RepoHits, res.RepoDamaged)
	}
	return res, nil
}

// runMergeMode fuses shard journals and renders the fig3-derived
// experiments and exports from them, without executing any grid cell.
// Journal damage makes the merge exit non-zero — the merged artifact is
// complete only if every damaged cell was re-covered, and the operator
// should know their storage is rotting — unless -merge-allow-damage.
func runMergeMode(o options, cfg bench.Config, meta metaopt.Options) error {
	paths, err := mergePaths(o.merge)
	if err != nil {
		return err
	}
	res, err := mergeJournals(paths, cfg)
	if err != nil {
		return err
	}
	if len(res.Missing) > 0 {
		return fmt.Errorf("merge covers %d of %d grid cells — %d missing (first: %s); run the absent shards or merge their journals",
			len(res.Records)-len(res.Missing), len(res.Records), len(res.Missing), res.Missing[0].ID())
	}
	if res.Damaged > 0 && !o.mergeAllowDamage {
		return fmt.Errorf("%d damaged journal line(s) across shard journals; rerun the affected shards or pass -merge-allow-damage", res.Damaged)
	}
	fig3 := bench.Fig3FromRecords(cfg, res.Records)
	return run(experimentIDs(o.experiment), cfg, meta, o.csvPath, o.jsonPath, o.svgDir, o.reportDir, "", &fig3)
}

// runCoordinatorMode spawns one subprocess per shard (this binary,
// re-invoked with -shard i/N), restarts shards that crash or stall,
// then merges the shard journals into the standard exports. A shard
// that exhausts its restart budget is reported — its cells appear as
// shard-failure records in the failure taxonomy — rather than aborting
// the sweep.
func runCoordinatorMode(o options, cfg bench.Config, meta metaopt.Options) error {
	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("resolving own binary for shard subprocesses: %w", err)
	}
	base := forwardedArgs(o)
	ccfg := bench.CoordinatorConfig{
		Shards:      o.shards,
		MaxRestarts: o.maxRestarts,
		Deadline:    bench.WatchdogPolicy{Probes: o.stallProbes, Interval: o.stallInterval},
		Dir:         o.shardDir,
		Command: func(shard bench.ShardSpec, journal string) *exec.Cmd {
			cmd := exec.Command(exe, append(base, "-shard", shard.String(), "-journal", journal)...)
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			return cmd
		},
	}
	res, err := bench.RunCoordinator(ccfg)
	if err != nil {
		return err
	}
	for _, st := range res.Shards {
		state := "completed"
		if !st.Completed {
			state = "FAILED: " + st.Err
		}
		fmt.Fprintf(os.Stderr, "greenbench: coordinator: shard %s: %d launch(es), %d deadline kill(s), %s\n",
			st.Shard, st.Launches, st.DeadlineKills, state)
	}

	merged, err := mergeJournals(res.JournalPaths, cfg)
	if err != nil {
		return err
	}
	fingerprint := bench.Fingerprint(bench.DefaultSystems(), cfg)
	if err := merged.VerifyMissingOwnedBy(fingerprint, res.Failed()); err != nil {
		return err
	}
	if n := len(merged.Missing); n > 0 {
		fmt.Fprintf(os.Stderr, "greenbench: coordinator: %d cell(s) lost to dead shards are reported as %s records\n", n, faults.ShardFailure)
	}
	if merged.Damaged > 0 {
		// Damaged lines in a *completed* shard journal were already healed
		// by that shard's resume (the cells reran and re-checkpointed), and
		// completeness was just verified — so surface, don't abort.
		fmt.Fprintf(os.Stderr, "greenbench: coordinator: %d damaged journal line(s) were healed by shard resume\n", merged.Damaged)
	}
	fig3 := bench.Fig3FromRecords(cfg, merged.Records)
	return run(experimentIDs(o.experiment), cfg, meta, o.csvPath, o.jsonPath, o.svgDir, o.reportDir, "", &fig3)
}

// forwardedArgs rebuilds the grid-defining flags for a shard
// subprocess. Only flags that change which records the grid produces
// (plus throughput knobs) are forwarded; export and mode flags are not.
func forwardedArgs(o options) []string {
	args := []string{
		"-seeds", strconv.Itoa(o.seeds),
		"-fault-rate", strconv.FormatFloat(o.faultRate, 'g', -1, 64),
		"-fault-seed", strconv.FormatUint(o.faultSeed, 10),
		"-memory-gb", strconv.FormatFloat(o.memoryGB, 'g', -1, 64),
		"-retries", strconv.Itoa(o.retries),
		"-workers", strconv.Itoa(o.workers),
		"-parallelism", strconv.Itoa(o.parallelism),
		"-hang-rate", strconv.FormatFloat(o.hangRate, 'g', -1, 64),
		"-watchdog-probes", strconv.Itoa(o.wdProbes),
	}
	if o.datasets > 0 {
		args = append(args, "-datasets", strconv.Itoa(o.datasets))
	}
	if o.names != "" {
		args = append(args, "-names", o.names)
	}
	if o.quick {
		args = append(args, "-quick")
	}
	if o.repoDir != "" {
		args = append(args, "-repo", o.repoDir)
		if o.repoReadonly {
			args = append(args, "-repo-readonly")
		}
		if o.repoAllowDamage {
			args = append(args, "-repo-allow-damage")
		}
	}
	return args
}

// run renders the requested experiments. With a non-nil fig3, the grid
// is never executed: the preloaded result (from a merge) feeds every
// fig3-derived experiment, which keeps offline rendering byte-identical
// to a live run.
func run(ids []string, cfg bench.Config, meta metaopt.Options, csvPath, jsonPath, svgDir, reportDir, journal string, fig3 *bench.Fig3Result) error {
	// fig3's grid feeds several tables; compute it lazily, once.
	var fig3Err error
	needFig3 := func() *bench.Fig3Result {
		if fig3 == nil && fig3Err == nil {
			fmt.Fprintln(os.Stderr, "greenbench: running the fig3 grid (feeds fig4, fig7, table4, table6, table7)...")
			r, err := bench.Fig3Resumable(cfg, journal)
			if err != nil {
				fig3Err = err
				fig3 = &bench.Fig3Result{}
				return fig3
			}
			fig3 = &r
			if fig3.JournalDamaged > 0 {
				fmt.Fprintf(os.Stderr, "greenbench: journal: %d damaged checkpoint line(s) were skipped and their cells rerun\n", fig3.JournalDamaged)
			}
			if fig3.Repo.Consulted() {
				fmt.Fprintf(os.Stderr, "greenbench: %s\n", fig3.Repo.Summary())
			}
		}
		return fig3
	}

	for _, id := range ids {
		//greenlint:allow wallclock operator-facing progress timing on stderr, not a measured quantity
		start := time.Now()
		var out string
		switch strings.TrimSpace(id) {
		case "fig3":
			out = needFig3().Render()
			if svgDir != "" {
				stats := needFig3().Stats
				if err := writeSVG(svgDir, "fig3-execution.svg", func(w io.Writer) error { return bench.WriteFig3SVG(w, stats, false) }); err != nil {
					return err
				}
				if err := writeSVG(svgDir, "fig3-inference.svg", func(w io.Writer) error { return bench.WriteFig3SVG(w, stats, true) }); err != nil {
					return err
				}
			}
		case "fig4":
			fig4 := bench.Fig4(needFig3().Stats, nil)
			out = fig4.Render()
			if svgDir != "" {
				if err := writeSVG(svgDir, "fig4.svg", func(w io.Writer) error { return bench.WriteFig4SVG(w, fig4) }); err != nil {
					return err
				}
			}
		case "fig5":
			fig5 := bench.Fig5(cfg, nil)
			out = fig5.Render()
			if svgDir != "" {
				if err := writeSVG(svgDir, "fig5.svg", func(w io.Writer) error { return bench.WriteFig5SVG(w, fig5) }); err != nil {
					return err
				}
			}
		case "fig6":
			out = bench.Fig6(cfg, nil).Render()
		case "fig7":
			out = bench.Fig7(cfg, meta, needFig3().Stats).Render()
		case "table3":
			out = bench.Table3(cfg).Render()
		case "table4":
			out = bench.Table4(needFig3().Stats).Render()
		case "table5":
			out = renderTable5(meta)
		case "table6":
			out = bench.Table6(needFig3().Records).Render()
		case "table7":
			out = bench.Table7(needFig3().Stats, cfg.Budgets).Render()
		case "table8":
			out = bench.Table8(cfg, meta, nil).Render()
		case "table9":
			out = bench.Table9(cfg, meta, nil).Render()
		case "winners":
			out = bench.Winners(needFig3().Records).Render()
		case "significance":
			out = bench.Significance(needFig3().Records).Render()
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		if fig3Err != nil {
			return fig3Err
		}
		fmt.Println(out)
		if reportDir != "" {
			if err := os.MkdirAll(reportDir, 0o755); err != nil {
				return err
			}
			path := reportDir + "/" + strings.TrimSpace(id) + ".txt"
			if err := bench.WriteReportFile(path, out); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "greenbench: wrote %s\n", path)
		}
		//greenlint:allow wallclock operator-facing progress timing on stderr, not a measured quantity
		fmt.Fprintf(os.Stderr, "greenbench: %s done in %s\n", id, time.Since(start).Round(time.Millisecond))
	}
	if fig3 != nil && fig3Err == nil {
		if err := exportRecords(fig3.Records, csvPath, jsonPath); err != nil {
			return err
		}
	}
	return nil
}

// writeSVG writes one chart into the SVG output directory. The write is
// atomic (temp + fsync + rename via internal/atomicio), and any
// close/sync failure propagates so the command exits non-zero instead
// of shipping a torn chart.
func writeSVG(dir, name string, render func(io.Writer) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := bench.WriteSVGFile(dir+"/"+name, render); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "greenbench: wrote %s/%s\n", dir, name)
	return nil
}

// exportRecords writes the raw grid records to the requested paths.
// Exports are atomic: a kill mid-export (or a failed close) leaves any
// previous artifact intact and surfaces the error as a non-zero exit.
func exportRecords(records []bench.Record, csvPath, jsonPath string) error {
	if csvPath != "" {
		if err := bench.WriteCSVFile(csvPath, records); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "greenbench: wrote %d records to %s\n", len(records), csvPath)
	}
	if jsonPath != "" {
		if err := bench.WriteJSONFile(jsonPath, records); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "greenbench: wrote %d records to %s\n", len(records), jsonPath)
	}
	return nil
}

// renderTable5 reports tuned AutoML system parameters per search budget.
// It runs the development-stage optimizer for each budget (paper Table 5);
// with very few iterations the factory presets may win, which the output
// marks.
func renderTable5(meta metaopt.Options) string {
	var sb strings.Builder
	sb.WriteString("Table 5 — tuned AutoML system parameters per search budget\n")
	for _, budget := range []time.Duration{30 * time.Second, time.Minute, 5 * time.Minute} {
		opts := meta
		opts.Budget = budget
		dev, err := metaopt.Optimize(openml.MetaTrainSuite(), opts)
		if err != nil {
			fmt.Fprintf(&sb, "%s: optimization failed: %v\n", bench.FormatBudget(budget), err)
			continue
		}
		params := dev.Params
		note := ""
		if dev.Objective <= 0 {
			// The search found nothing better than the defaults at this
			// (reduced) iteration count; report the published presets.
			params = automl.DefaultTunedParams(budget)
			note = " (factory preset; tuning found no improvement at this iteration count)"
		}
		fmt.Fprintf(&sb, "%s:%s\n  %s\n  development: %.4f kWh, %d trials, %d pruned\n",
			bench.FormatBudget(budget), note, bench.RenderCAMLParams(params), dev.DevKWh, dev.Trials, dev.Pruned)
	}
	return sb.String()
}
