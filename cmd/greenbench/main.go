// Command greenbench regenerates the tables and figures of "How Green is
// AutoML for Tabular Data?" (EDBT 2025) on the virtual testbed.
//
// Usage:
//
//	greenbench -experiment fig3 [-seeds 3] [-datasets 39] [-quick]
//
// Experiments: fig3 fig4 fig5 fig6 fig7 table3 table4 table5 table6
// table7 table8 table9 winners all. Figure 8 is a decision procedure; use the
// greenrecommend command.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/automl"
	"repro/internal/bench"
	"repro/internal/faults"
	"repro/internal/metaopt"
	"repro/internal/openml"
)

func main() {
	var (
		experiment = flag.String("experiment", "fig3", "experiment id (fig3..fig7, table3..table9, all)")
		seeds      = flag.Int("seeds", 3, "repeated runs per cell (paper uses 10)")
		datasets   = flag.Int("datasets", 0, "restrict to the first N suite datasets (0 = all 39)")
		names      = flag.String("names", "", "comma-separated dataset names to run (overrides -datasets)")
		quick      = flag.Bool("quick", false, "tiny configuration for a fast smoke run")
		metaIters  = flag.Int("meta-iterations", 40, "BO iterations for development-stage experiments (paper uses 300)")
		metaTopK   = flag.Int("meta-topk", 8, "representative datasets for development-stage experiments (paper uses 20)")
		csvPath    = flag.String("csv", "", "export the fig3 grid's raw records as CSV to this path")
		jsonPath   = flag.String("json", "", "export the fig3 grid's raw records as JSON to this path")
		svgDir     = flag.String("svg-dir", "", "write SVG charts of figures 3-5 into this directory")
		journal    = flag.String("journal", "", "JSONL checkpoint path for the fig3 grid; an interrupted run resumes from it")
		faultRate  = flag.Float64("fault-rate", 0, "per-attempt fault-injection probability in [0,1] (0 = off)")
		faultSeed  = flag.Uint64("fault-seed", 0, "fault-injection stream seed (decisions are order-independent)")
		memoryGB   = flag.Float64("memory-gb", 0, "machine memory model in GB for simulated OOM kills (0 = off)")
		retries    = flag.Int("retries", 0, "max Fit attempts per cell (0 = 1, or 3 with faults enabled); retry energy is charged")
		workers    = flag.Int("workers", 0, "grid cells run concurrently (0 = NumCPU); output is identical at any worker count")
		hangRate   = flag.Float64("hang-rate", 0, "per-attempt probability in [0,1] that a Fit hangs without progress, exercising the stall watchdog (0 = off)")
		wdProbes   = flag.Int("watchdog-probes", 0, "probe intervals without virtual progress before a cell is abandoned as stalled (0 = off, or 4 when -hang-rate > 0)")
		reportDir  = flag.String("report-dir", "", "also write each experiment's rendered report into this directory (atomic replace)")
	)
	flag.Parse()

	cfg := bench.Config{
		Seeds: *seeds,
		Faults: faults.Config{
			Rate:        *faultRate,
			HangRate:    *hangRate,
			Seed:        *faultSeed,
			MemoryBytes: int64(*memoryGB * 1e9),
		},
		Retry:    bench.RetryPolicy{MaxAttempts: *retries},
		Workers:  *workers,
		Watchdog: bench.WatchdogPolicy{Probes: *wdProbes},
	}
	if *quick {
		cfg.Seeds = 1
		cfg.Budgets = []time.Duration{10 * time.Second, time.Minute}
		if *datasets == 0 {
			*datasets = 6
		}
	}
	if *names != "" {
		for _, name := range strings.Split(*names, ",") {
			spec, ok := openml.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "greenbench: unknown dataset %q\n", name)
				os.Exit(2)
			}
			cfg.Datasets = append(cfg.Datasets, spec)
		}
	} else if *datasets > 0 {
		suite := openml.Suite()
		if *datasets < len(suite) {
			suite = suite[:*datasets]
		}
		cfg.Datasets = suite
	}
	meta := metaopt.Options{
		Iterations:     *metaIters,
		TopK:           *metaTopK,
		RunsPerDataset: 1,
		Budget:         10 * time.Second,
	}
	if *quick {
		meta.Iterations = 8
		meta.TopK = 4
	}

	ids := strings.Split(*experiment, ",")
	if *experiment == "all" {
		ids = []string{"fig3", "fig4", "fig5", "fig6", "fig7", "table3", "table4", "table5", "table6", "table7", "table8", "table9", "winners", "significance"}
	}
	if err := run(ids, cfg, meta, *csvPath, *jsonPath, *svgDir, *reportDir, *journal); err != nil {
		fmt.Fprintln(os.Stderr, "greenbench:", err)
		os.Exit(1)
	}
}

func run(ids []string, cfg bench.Config, meta metaopt.Options, csvPath, jsonPath, svgDir, reportDir, journal string) error {
	// fig3's grid feeds several tables; compute it lazily, once.
	var fig3 *bench.Fig3Result
	var fig3Err error
	needFig3 := func() *bench.Fig3Result {
		if fig3 == nil && fig3Err == nil {
			fmt.Fprintln(os.Stderr, "greenbench: running the fig3 grid (feeds fig4, fig7, table4, table6, table7)...")
			r, err := bench.Fig3Resumable(cfg, journal)
			if err != nil {
				fig3Err = err
				fig3 = &bench.Fig3Result{}
				return fig3
			}
			fig3 = &r
		}
		return fig3
	}

	for _, id := range ids {
		//greenlint:allow wallclock operator-facing progress timing on stderr, not a measured quantity
		start := time.Now()
		var out string
		switch strings.TrimSpace(id) {
		case "fig3":
			out = needFig3().Render()
			if svgDir != "" {
				stats := needFig3().Stats
				if err := writeSVG(svgDir, "fig3-execution.svg", func(w io.Writer) error { return bench.WriteFig3SVG(w, stats, false) }); err != nil {
					return err
				}
				if err := writeSVG(svgDir, "fig3-inference.svg", func(w io.Writer) error { return bench.WriteFig3SVG(w, stats, true) }); err != nil {
					return err
				}
			}
		case "fig4":
			fig4 := bench.Fig4(needFig3().Stats, nil)
			out = fig4.Render()
			if svgDir != "" {
				if err := writeSVG(svgDir, "fig4.svg", func(w io.Writer) error { return bench.WriteFig4SVG(w, fig4) }); err != nil {
					return err
				}
			}
		case "fig5":
			fig5 := bench.Fig5(cfg, nil)
			out = fig5.Render()
			if svgDir != "" {
				if err := writeSVG(svgDir, "fig5.svg", func(w io.Writer) error { return bench.WriteFig5SVG(w, fig5) }); err != nil {
					return err
				}
			}
		case "fig6":
			out = bench.Fig6(cfg, nil).Render()
		case "fig7":
			out = bench.Fig7(cfg, meta, needFig3().Stats).Render()
		case "table3":
			out = bench.Table3(cfg).Render()
		case "table4":
			out = bench.Table4(needFig3().Stats).Render()
		case "table5":
			out = renderTable5(meta)
		case "table6":
			out = bench.Table6(needFig3().Records).Render()
		case "table7":
			out = bench.Table7(needFig3().Stats, cfg.Budgets).Render()
		case "table8":
			out = bench.Table8(cfg, meta, nil).Render()
		case "table9":
			out = bench.Table9(cfg, meta, nil).Render()
		case "winners":
			out = bench.Winners(needFig3().Records).Render()
		case "significance":
			out = bench.Significance(needFig3().Records).Render()
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		if fig3Err != nil {
			return fig3Err
		}
		fmt.Println(out)
		if reportDir != "" {
			if err := os.MkdirAll(reportDir, 0o755); err != nil {
				return err
			}
			path := reportDir + "/" + strings.TrimSpace(id) + ".txt"
			if err := bench.WriteReportFile(path, out); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "greenbench: wrote %s\n", path)
		}
		//greenlint:allow wallclock operator-facing progress timing on stderr, not a measured quantity
		fmt.Fprintf(os.Stderr, "greenbench: %s done in %s\n", id, time.Since(start).Round(time.Millisecond))
	}
	if fig3 != nil {
		if err := exportRecords(fig3.Records, csvPath, jsonPath); err != nil {
			return err
		}
	}
	return nil
}

// writeSVG writes one chart into the SVG output directory. The write is
// atomic (temp + fsync + rename via internal/atomicio), and any
// close/sync failure propagates so the command exits non-zero instead
// of shipping a torn chart.
func writeSVG(dir, name string, render func(io.Writer) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := bench.WriteSVGFile(dir+"/"+name, render); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "greenbench: wrote %s/%s\n", dir, name)
	return nil
}

// exportRecords writes the raw grid records to the requested paths.
// Exports are atomic: a kill mid-export (or a failed close) leaves any
// previous artifact intact and surfaces the error as a non-zero exit.
func exportRecords(records []bench.Record, csvPath, jsonPath string) error {
	if csvPath != "" {
		if err := bench.WriteCSVFile(csvPath, records); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "greenbench: wrote %d records to %s\n", len(records), csvPath)
	}
	if jsonPath != "" {
		if err := bench.WriteJSONFile(jsonPath, records); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "greenbench: wrote %d records to %s\n", len(records), jsonPath)
	}
	return nil
}

// renderTable5 reports tuned AutoML system parameters per search budget.
// It runs the development-stage optimizer for each budget (paper Table 5);
// with very few iterations the factory presets may win, which the output
// marks.
func renderTable5(meta metaopt.Options) string {
	var sb strings.Builder
	sb.WriteString("Table 5 — tuned AutoML system parameters per search budget\n")
	for _, budget := range []time.Duration{30 * time.Second, time.Minute, 5 * time.Minute} {
		opts := meta
		opts.Budget = budget
		dev, err := metaopt.Optimize(openml.MetaTrainSuite(), opts)
		if err != nil {
			fmt.Fprintf(&sb, "%s: optimization failed: %v\n", bench.FormatBudget(budget), err)
			continue
		}
		params := dev.Params
		note := ""
		if dev.Objective <= 0 {
			// The search found nothing better than the defaults at this
			// (reduced) iteration count; report the published presets.
			params = automl.DefaultTunedParams(budget)
			note = " (factory preset; tuning found no improvement at this iteration count)"
		}
		fmt.Fprintf(&sb, "%s:%s\n  %s\n  development: %.4f kWh, %d trials, %d pruned\n",
			bench.FormatBudget(budget), note, bench.RenderCAMLParams(params), dev.DevKWh, dev.Trials, dev.Pruned)
	}
	return sb.String()
}
