package main

import (
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/metaopt"
	"repro/internal/openml"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	err := run([]string{"fig99"}, bench.Config{}, metaopt.Options{}, "", "", "", "", "")
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunTinyFig4(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small grid")
	}
	spec, _ := openml.ByName("credit-g")
	cfg := bench.Config{
		Datasets: []openml.Spec{spec},
		Budgets:  []time.Duration{10 * time.Second},
		Seeds:    1,
		Scale:    openml.SmallScale(),
	}
	if err := run([]string{"fig4"}, cfg, metaopt.Options{}, "", "", "", "", ""); err != nil {
		t.Fatal(err)
	}
}
