package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/metaopt"
	"repro/internal/openml"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	err := run([]string{"fig99"}, bench.Config{}, metaopt.Options{}, "", "", "", "", "", nil)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunTinyFig4(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small grid")
	}
	spec, _ := openml.ByName("credit-g")
	cfg := bench.Config{
		Datasets: []openml.Spec{spec},
		Budgets:  []time.Duration{10 * time.Second},
		Seeds:    1,
		Scale:    openml.SmallScale(),
	}
	if err := run([]string{"fig4"}, cfg, metaopt.Options{}, "", "", "", "", "", nil); err != nil {
		t.Fatal(err)
	}
}

// defaultOptions mirrors the flag defaults so each validation case can
// perturb exactly one knob.
func defaultOptions() options {
	return options{
		experiment:    "fig3",
		seeds:         3,
		maxRestarts:   2,
		stallInterval: 2 * time.Second,
	}
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string // substring of the error; "" means the options must validate
	}{
		{name: "defaults", mutate: func(o *options) {}},
		{name: "shard with journal", mutate: func(o *options) {
			o.shard = "0/4"
			o.journal = "s0.jsonl"
		}},
		{name: "last shard", mutate: func(o *options) {
			o.shard = "3/4"
			o.journal = "s3.jsonl"
		}},
		{name: "coordinator", mutate: func(o *options) {
			o.coordinator = true
			o.shards = 4
			o.shardDir = "run"
		}},
		{name: "merge fig3-derived", mutate: func(o *options) {
			o.merge = "s0.jsonl,s1.jsonl"
			o.experiment = "fig3,table4,winners"
		}},

		{name: "shard index at count", mutate: func(o *options) {
			o.shard = "4/4"
			o.journal = "s.jsonl"
		}, wantErr: "shard"},
		{name: "shard index beyond count", mutate: func(o *options) {
			o.shard = "7/4"
			o.journal = "s.jsonl"
		}, wantErr: "shard"},
		{name: "shard count zero", mutate: func(o *options) {
			o.shard = "0/0"
			o.journal = "s.jsonl"
		}, wantErr: "shard"},
		{name: "shard count negative", mutate: func(o *options) {
			o.shard = "0/-2"
			o.journal = "s.jsonl"
		}, wantErr: "shard"},
		{name: "shard negative index", mutate: func(o *options) {
			o.shard = "-1/4"
			o.journal = "s.jsonl"
		}, wantErr: "shard"},
		{name: "shard garbage", mutate: func(o *options) {
			o.shard = "banana"
			o.journal = "s.jsonl"
		}, wantErr: "shard"},
		{name: "shard without journal", mutate: func(o *options) {
			o.shard = "0/2"
		}, wantErr: "requires -journal"},
		{name: "shard of non-fig3 experiment", mutate: func(o *options) {
			o.shard = "0/2"
			o.journal = "s.jsonl"
			o.experiment = "table8"
		}, wantErr: "cannot be sharded"},

		{name: "fault rate negative", mutate: func(o *options) {
			o.faultRate = -0.1
		}, wantErr: "-fault-rate"},
		{name: "fault rate above one", mutate: func(o *options) {
			o.faultRate = 1.5
		}, wantErr: "-fault-rate"},
		{name: "hang rate negative", mutate: func(o *options) {
			o.hangRate = -0.5
		}, wantErr: "-hang-rate"},
		{name: "hang rate above one", mutate: func(o *options) {
			o.hangRate = 2
		}, wantErr: "-hang-rate"},
		{name: "retries negative", mutate: func(o *options) {
			o.retries = -1
		}, wantErr: "-retries"},
		{name: "workers negative", mutate: func(o *options) {
			o.workers = -3
		}, wantErr: "-workers"},
		{name: "parallelism negative", mutate: func(o *options) {
			o.parallelism = -2
		}, wantErr: "-parallelism"},
		{name: "watchdog probes negative", mutate: func(o *options) {
			o.wdProbes = -1
		}, wantErr: "-watchdog-probes"},
		{name: "seeds below one", mutate: func(o *options) {
			o.seeds = 0
		}, wantErr: "-seeds"},
		{name: "datasets negative", mutate: func(o *options) {
			o.datasets = -1
		}, wantErr: "-datasets"},
		{name: "memory negative", mutate: func(o *options) {
			o.memoryGB = -8
		}, wantErr: "-memory-gb"},

		{name: "shard and merge together", mutate: func(o *options) {
			o.shard = "0/2"
			o.journal = "s.jsonl"
			o.merge = "a.jsonl"
		}, wantErr: "mutually exclusive"},
		{name: "coordinator and merge together", mutate: func(o *options) {
			o.coordinator = true
			o.shards = 2
			o.shardDir = "run"
			o.merge = "a.jsonl"
		}, wantErr: "mutually exclusive"},
		{name: "coordinator without shards", mutate: func(o *options) {
			o.coordinator = true
			o.shardDir = "run"
		}, wantErr: "-shards"},
		{name: "coordinator without dir", mutate: func(o *options) {
			o.coordinator = true
			o.shards = 2
		}, wantErr: "-shard-dir"},
		{name: "coordinator negative restarts", mutate: func(o *options) {
			o.coordinator = true
			o.shards = 2
			o.shardDir = "run"
			o.maxRestarts = -1
		}, wantErr: "-max-restarts"},
		{name: "coordinator negative stall probes", mutate: func(o *options) {
			o.coordinator = true
			o.shards = 2
			o.shardDir = "run"
			o.stallProbes = -1
		}, wantErr: "-shard-stall-probes"},
		{name: "coordinator stall probes without interval", mutate: func(o *options) {
			o.coordinator = true
			o.shards = 2
			o.shardDir = "run"
			o.stallProbes = 3
			o.stallInterval = 0
		}, wantErr: "-shard-stall-interval"},
		{name: "allow-damage without merge", mutate: func(o *options) {
			o.mergeAllowDamage = true
		}, wantErr: "-merge-allow-damage"},
		{name: "merge of grid-rerunning experiment", mutate: func(o *options) {
			o.merge = "a.jsonl"
			o.experiment = "fig3,table8"
		}, wantErr: "reruns a grid"},

		{name: "repo alone", mutate: func(o *options) {
			o.repoDir = "store"
		}},
		{name: "repo readonly", mutate: func(o *options) {
			o.repoDir = "store"
			o.repoReadonly = true
		}},
		{name: "repo allow damage", mutate: func(o *options) {
			o.repoDir = "store"
			o.repoAllowDamage = true
		}},
		{name: "repo with shard", mutate: func(o *options) {
			o.repoDir = "store"
			o.shard = "0/2"
			o.journal = "s0.jsonl"
		}},
		{name: "simulate ensemble", mutate: func(o *options) {
			o.repoDir = "store"
			o.simulateEnsemble = true
		}},
		{name: "readonly without repo", mutate: func(o *options) {
			o.repoReadonly = true
		}, wantErr: "-repo-readonly"},
		{name: "allow damage without repo", mutate: func(o *options) {
			o.repoAllowDamage = true
		}, wantErr: "-repo-allow-damage"},
		{name: "simulate ensemble without repo", mutate: func(o *options) {
			o.simulateEnsemble = true
		}, wantErr: "-simulate-ensemble needs -repo"},
		{name: "simulate ensemble with merge", mutate: func(o *options) {
			o.repoDir = "store"
			o.simulateEnsemble = true
			o.merge = "a.jsonl"
		}, wantErr: "mutually exclusive"},
		{name: "simulate ensemble with coordinator", mutate: func(o *options) {
			o.repoDir = "store"
			o.simulateEnsemble = true
			o.coordinator = true
			o.shards = 2
			o.shardDir = "run"
		}, wantErr: "mutually exclusive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := defaultOptions()
			tc.mutate(&o)
			err := o.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() accepted invalid options, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() = %q, want error containing %q", err, tc.wantErr)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("validate() error spans multiple lines: %q", err)
			}
		})
	}
}

// TestValidateParsesShardSpec checks that a valid -shard value lands in
// the config the grid actually uses.
func TestValidateParsesShardSpec(t *testing.T) {
	o := defaultOptions()
	o.shard = "2/4"
	o.journal = "s2.jsonl"
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	want := bench.ShardSpec{Index: 2, Count: 4}
	if o.shardSpec != want {
		t.Fatalf("shardSpec = %+v, want %+v", o.shardSpec, want)
	}
	cfg, err := gridConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Shard != want {
		t.Fatalf("cfg.Shard = %+v, want %+v", cfg.Shard, want)
	}
}

func TestFig3Derived(t *testing.T) {
	for _, id := range []string{"fig3", "fig4", "table4", "table6", "table7", "winners", "significance"} {
		if !fig3Derived(id) {
			t.Errorf("fig3Derived(%q) = false, want true", id)
		}
	}
	for _, id := range []string{"fig5", "fig6", "fig7", "table3", "table5", "table8", "table9", "all", ""} {
		if fig3Derived(id) {
			t.Errorf("fig3Derived(%q) = true, want false", id)
		}
	}
}
