// Command greenrun executes one AutoML system on a user-supplied CSV
// dataset under the energy meter and reports predictive performance next
// to the consumed energy — the paper's measurement loop for your own data.
//
// Usage:
//
//	greenrun -data mydata.csv -target label -system caml -budget 30s
//	greenrun -data mydata.csv -system autogluon -cores 8 -timeline trace.csv
//
// The winning pipeline can be packaged for the serving daemon:
//
//	greenrun -data mydata.csv -system caml -save-artifact run/mydata.model
//	greenserve -model run/mydata.model -addr :8080
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	greenautoml "repro"
	"repro/internal/artifact"
	"repro/internal/atomicio"
	"repro/internal/energy"
	"repro/internal/tabular"
)

// options holds every flag value, so validation is a pure function the
// tests can drive table-style without a process boundary.
type options struct {
	dataPath     string
	target       string
	system       string
	budget       time.Duration
	cores        int
	gpu          bool
	seed         uint64
	timeline     string
	splitSeed    uint64
	saveArtifact string
}

// validate rejects malformed and contradictory flag combinations with a
// one-line error instead of failing partway into a metered run.
func (o *options) validate() error {
	if o.dataPath == "" {
		return fmt.Errorf("-data is required")
	}
	if _, err := buildSystem(o.system, o.budget); err != nil {
		return err
	}
	if o.budget <= 0 {
		return fmt.Errorf("-budget %v must be positive", o.budget)
	}
	if o.cores < 1 {
		return fmt.Errorf("-cores %d must be at least 1", o.cores)
	}
	if o.saveArtifact != "" && !systemExportsArtifact(o.system) {
		return fmt.Errorf("-save-artifact: %s does not expose a single deployable pipeline (no per-config search); use caml, caml-tuned, flaml, asklearn1, asklearn2 or tpot", o.system)
	}
	return nil
}

// systemExportsArtifact reports whether a system populates
// Result.BestSpec — the deterministic recipe -save-artifact packages.
func systemExportsArtifact(name string) bool {
	switch strings.ToLower(name) {
	case "tabpfn", "autogluon", "autogluon-fast":
		return false
	}
	return true
}

func main() {
	var o options
	flag.StringVar(&o.dataPath, "data", "", "path to the CSV dataset (required)")
	flag.StringVar(&o.target, "target", "", "label column name (default: last column)")
	flag.StringVar(&o.system, "system", "caml", "system: caml | caml-tuned | autogluon | autogluon-fast | asklearn1 | asklearn2 | flaml | tabpfn | tpot")
	flag.DurationVar(&o.budget, "budget", 30*time.Second, "virtual search budget")
	flag.IntVar(&o.cores, "cores", 1, "allotted CPU cores on the modelled testbed")
	flag.BoolVar(&o.gpu, "gpu", false, "use the T4 GPU testbed with offload enabled")
	flag.Uint64Var(&o.seed, "seed", 42, "random seed")
	flag.StringVar(&o.timeline, "timeline", "", "write a CodeCarbon-style consumption timeline CSV to this path")
	flag.Uint64Var(&o.splitSeed, "split-seed", 7, "seed of the 66/34 train/test split")
	flag.StringVar(&o.saveArtifact, "save-artifact", "", "package the winning pipeline as a versioned serving artifact at this path (see greenserve)")
	flag.Parse()

	if err := o.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "greenrun:", err)
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "greenrun:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	sys, err := buildSystem(o.system, o.budget)
	if err != nil {
		return err
	}

	f, err := os.Open(o.dataPath)
	if err != nil {
		return err
	}
	ds, err := tabular.ReadCSV(f, tabular.CSVOptions{TargetColumn: o.target})
	f.Close()
	if err != nil {
		return err
	}
	ds.Name = o.dataPath

	train, test := greenautoml.Split(ds.Frame(), o.splitSeed)

	machine := greenautoml.CPUTestbed()
	if o.gpu {
		machine = greenautoml.GPUTestbed()
	}
	meter := greenautoml.NewMeter(machine, o.cores)
	if o.gpu {
		meter.SetGPUMode(energy.GPUActive)
	}
	var trace *energy.Timeline
	if o.timeline != "" {
		trace = &energy.Timeline{}
		meter.SetTimeline(trace)
	}

	res, err := sys.Fit(train, greenautoml.Options{Budget: o.budget, Meter: meter, Seed: o.seed})
	if err != nil {
		return err
	}
	pred, err := res.Predict(test, meter)
	if err != nil {
		return err
	}
	acc := greenautoml.BalancedAccuracy(test.LabelsInto(nil), pred, test.Classes())
	report := meter.Tracker().Snapshot()

	fmt.Printf("dataset:            %s (%d rows, %d features, %d classes)\n", ds.Name, ds.Rows(), ds.Features(), ds.Classes)
	fmt.Printf("system:             %s on %s (%d cores)\n", res.System, machine.Name, o.cores)
	fmt.Printf("search:             budget %s, actual %s, %d pipelines evaluated\n",
		o.budget, res.ExecTime.Round(10*time.Millisecond), res.Evaluated)
	fmt.Printf("balanced accuracy:  %.4f on %d held-out rows\n", acc, test.Rows())
	fmt.Printf("execution energy:   %.6f kWh\n", report.ExecutionKWh)
	fmt.Printf("inference energy:   %.4g kWh/instance\n", report.InferenceKWh/float64(test.Rows()))
	fmt.Printf("footprint:          %.6f kg CO2, %.6f EUR\n", report.CO2Kg(), report.CostEUR())

	if o.saveArtifact != "" {
		if err := saveArtifact(o, res, train, meter); err != nil {
			return err
		}
	}

	if trace != nil {
		// Atomic replace: a kill mid-write must not leave a torn
		// timeline under the final name.
		if err := atomicio.WriteFile(o.timeline, trace.WriteCSV); err != nil {
			return err
		}
		fmt.Printf("timeline:           %d samples -> %s\n", trace.Len(), o.timeline)
	}
	return nil
}

// saveArtifact packages the winning pipeline as a deterministic,
// checksummed serving artifact. The refit the artifact performs for its
// prediction fingerprint is real work, so its cost is charged to the
// meter's execution stage before the file is written.
func saveArtifact(o options, res *greenautoml.Result, train tabular.View, meter *energy.Meter) error {
	if res.BestSpec == nil || res.BestConfig == nil {
		return fmt.Errorf("-save-artifact: %s returned no deployable pipeline recipe", o.system)
	}
	spec := artifact.Spec{
		Dataset:              o.dataPath,
		Models:               res.BestSpec.Models,
		DataPreprocessors:    res.BestSpec.DataPreprocessors,
		FeaturePreprocessors: res.BestSpec.FeaturePreprocessors,
		ComplexityCaps:       res.BestSpec.ComplexityCaps,
		Params:               res.BestConfig,
		Seed:                 o.seed,
		Train:                train.Materialize(),
	}
	m, cost, err := artifact.Build(spec)
	// Charge before the error check: a refit that failed partway still
	// consumed its reported cost.
	for _, w := range cost.Works(0) {
		meter.Run(energy.Execution, w)
	}
	if err != nil {
		return fmt.Errorf("-save-artifact: %w", err)
	}
	if err := artifact.Save(o.saveArtifact, m); err != nil {
		return fmt.Errorf("-save-artifact: %w", err)
	}
	fmt.Printf("artifact:           %s (fingerprint %016x) -> %s\n", res.System, m.Fingerprint, o.saveArtifact)
	return nil
}

// buildSystem maps the CLI name to a system constructor.
func buildSystem(name string, budget time.Duration) (greenautoml.System, error) {
	switch strings.ToLower(name) {
	case "caml":
		return greenautoml.CAML(), nil
	case "caml-tuned":
		return greenautoml.TunedCAML(budget), nil
	case "autogluon":
		return greenautoml.AutoGluon(), nil
	case "autogluon-fast":
		return greenautoml.AutoGluonFastInference(), nil
	case "asklearn1":
		return greenautoml.AutoSklearn1(), nil
	case "asklearn2":
		return greenautoml.AutoSklearn2(), nil
	case "flaml":
		return greenautoml.FLAML(), nil
	case "tabpfn":
		return greenautoml.TabPFN(), nil
	case "tpot":
		return greenautoml.TPOT(), nil
	default:
		return nil, fmt.Errorf("unknown system %q", name)
	}
}
