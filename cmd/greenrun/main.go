// Command greenrun executes one AutoML system on a user-supplied CSV
// dataset under the energy meter and reports predictive performance next
// to the consumed energy — the paper's measurement loop for your own data.
//
// Usage:
//
//	greenrun -data mydata.csv -target label -system caml -budget 30s
//	greenrun -data mydata.csv -system autogluon -cores 8 -timeline trace.csv
//
// The winning pipeline can be packaged for the serving daemon:
//
//	greenrun -data mydata.csv -system caml -save-artifact run/mydata.model
//	greenserve -model run/mydata.model -addr :8080
//
// With an evaluation repository, identical reruns replay for free and
// the zero-shot system meta-learns its portfolio from stored winners:
//
//	greenrun -data mydata.csv -system caml -repo store/      # cold: runs, stores
//	greenrun -data mydata.csv -system caml -repo store/      # warm: replays, no fit
//	greenrun -data mydata.csv -system zeroshot -repo store/  # portfolio from the store
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"strings"
	"time"

	greenautoml "repro"
	"repro/internal/artifact"
	"repro/internal/atomicio"
	"repro/internal/bench"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/repo"
	"repro/internal/tabular"
)

// options holds every flag value, so validation is a pure function the
// tests can drive table-style without a process boundary.
type options struct {
	dataPath     string
	target       string
	system       string
	budget       time.Duration
	cores        int
	gpu          bool
	seed         uint64
	timeline     string
	splitSeed    uint64
	saveArtifact string
	repoDir      string
	repoReadonly bool
}

// validate rejects malformed and contradictory flag combinations with a
// one-line error instead of failing partway into a metered run.
func (o *options) validate() error {
	if o.dataPath == "" {
		return fmt.Errorf("-data is required")
	}
	if _, err := buildSystem(o.system, o.budget); err != nil {
		return err
	}
	if o.budget <= 0 {
		return fmt.Errorf("-budget %v must be positive", o.budget)
	}
	if o.cores < 1 {
		return fmt.Errorf("-cores %d must be at least 1", o.cores)
	}
	if o.saveArtifact != "" && !systemExportsArtifact(o.system) {
		return fmt.Errorf("-save-artifact: %s does not expose a single deployable pipeline (no per-config search); use caml, caml-tuned, flaml, asklearn1, asklearn2 or tpot", o.system)
	}
	if o.repoReadonly && o.repoDir == "" {
		return fmt.Errorf("-repo-readonly only applies to -repo")
	}
	if o.repoDir != "" && o.saveArtifact != "" {
		return fmt.Errorf("-repo and -save-artifact are mutually exclusive: a repository hit performs no run to package")
	}
	if o.repoDir != "" && o.timeline != "" {
		return fmt.Errorf("-repo and -timeline are mutually exclusive: a repository hit records no consumption timeline")
	}
	return nil
}

// systemExportsArtifact reports whether a system populates
// Result.BestSpec — the deterministic recipe -save-artifact packages.
func systemExportsArtifact(name string) bool {
	switch strings.ToLower(name) {
	case "tabpfn", "autogluon", "autogluon-fast":
		return false
	}
	return true
}

func main() {
	var o options
	flag.StringVar(&o.dataPath, "data", "", "path to the CSV dataset (required)")
	flag.StringVar(&o.target, "target", "", "label column name (default: last column)")
	flag.StringVar(&o.system, "system", "caml", "system: caml | caml-tuned | autogluon | autogluon-fast | asklearn1 | asklearn2 | flaml | tabpfn | tpot | zeroshot")
	flag.DurationVar(&o.budget, "budget", 30*time.Second, "virtual search budget")
	flag.IntVar(&o.cores, "cores", 1, "allotted CPU cores on the modelled testbed")
	flag.BoolVar(&o.gpu, "gpu", false, "use the T4 GPU testbed with offload enabled")
	flag.Uint64Var(&o.seed, "seed", 42, "random seed")
	flag.StringVar(&o.timeline, "timeline", "", "write a CodeCarbon-style consumption timeline CSV to this path")
	flag.Uint64Var(&o.splitSeed, "split-seed", 7, "seed of the 66/34 train/test split")
	flag.StringVar(&o.saveArtifact, "save-artifact", "", "package the winning pipeline as a versioned serving artifact at this path (see greenserve)")
	flag.StringVar(&o.repoDir, "repo", "", "evaluation repository directory: identical runs replay from it without refitting; zeroshot meta-learns its portfolio from it")
	flag.BoolVar(&o.repoReadonly, "repo-readonly", false, "consult -repo without writing this run back")
	flag.Parse()

	if err := o.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "greenrun:", err)
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "greenrun:", err)
		os.Exit(1)
	}
}

// runSummary is everything the report prints, serialized as the
// repository record so a cache hit replays the exact run outcome.
type runSummary struct {
	Dataset         string
	Rows            int
	Features        int
	Classes         int
	System          string
	Machine         string
	Cores           int
	Budget          time.Duration
	ExecTime        time.Duration
	Evaluated       int
	Accuracy        float64
	TestRows        int
	ExecKWh         float64
	InferKWhPerInst float64
	CO2Kg           float64
	CostEUR         float64
}

func (s runSummary) print() {
	fmt.Printf("dataset:            %s (%d rows, %d features, %d classes)\n", s.Dataset, s.Rows, s.Features, s.Classes)
	fmt.Printf("system:             %s on %s (%d cores)\n", s.System, s.Machine, s.Cores)
	fmt.Printf("search:             budget %s, actual %s, %d pipelines evaluated\n",
		s.Budget, s.ExecTime.Round(10*time.Millisecond), s.Evaluated)
	fmt.Printf("balanced accuracy:  %.4f on %d held-out rows\n", s.Accuracy, s.TestRows)
	fmt.Printf("execution energy:   %.6f kWh\n", s.ExecKWh)
	fmt.Printf("inference energy:   %.4g kWh/instance\n", s.InferKWhPerInst)
	fmt.Printf("footprint:          %.6f kg CO2, %.6f EUR\n", s.CO2Kg, s.CostEUR)
}

// runIdentity derives the repository address of this run: the
// fingerprint hashes everything that determines the outcome — the CSV
// bytes themselves (not the path), every outcome-shaping flag, and the
// zeroshot portfolio when one was meta-learned — so a stale or foreign
// store can never replay the wrong result.
func runIdentity(o options, data []byte, sys greenautoml.System) (fingerprint, key string) {
	h := fnv.New64a()
	h.Write(data)
	fmt.Fprintf(h, "|%s|%s|%s|%d|%t|%d|%d|%s", o.target, strings.ToLower(o.system), o.budget, o.cores, o.gpu, o.seed, o.splitSeed, sys.Name())
	return fmt.Sprintf("greenrun-%016x", h.Sum64()),
		fmt.Sprintf("%s|%s|%s|seed=%d", strings.ToLower(o.system), o.dataPath, o.budget, o.seed)
}

func run(o options) error {
	sys, err := buildSystem(o.system, o.budget)
	if err != nil {
		return err
	}

	data, err := os.ReadFile(o.dataPath)
	if err != nil {
		return err
	}
	ds, err := tabular.ReadCSV(strings.NewReader(string(data)), tabular.CSVOptions{TargetColumn: o.target})
	if err != nil {
		return err
	}
	ds.Name = o.dataPath

	var rp *repo.Repository
	if o.repoDir != "" {
		rp, err = repo.Open(o.repoDir, repo.Options{ReadOnly: o.repoReadonly})
		if err != nil {
			return err
		}
		if strings.ToLower(o.system) == "zeroshot" {
			// The store's recorded winners beat the factory portfolio when
			// they exist; an empty store falls back to the default lineup.
			portfolio, _, perr := bench.PortfolioFromRepo(rp, 8)
			if perr != nil {
				return perr
			}
			sys = greenautoml.ZeroShotPortfolio(portfolio)
			fmt.Fprintf(os.Stderr, "greenrun: zeroshot portfolio: %d member(s) meta-learned from %s\n", len(portfolio), o.repoDir)
		}
	}

	train, test := greenautoml.Split(ds.Frame(), o.splitSeed)

	machine := greenautoml.CPUTestbed()
	if o.gpu {
		machine = greenautoml.GPUTestbed()
	}

	var fingerprint, key string
	if rp != nil {
		fingerprint, key = runIdentity(o, data, sys)
		e, damaged, err := rp.Get(fingerprint, key)
		if err != nil {
			return err
		}
		if damaged {
			fmt.Fprintln(os.Stderr, "greenrun: repository: stored run is damaged; rerunning")
		}
		if e != nil {
			var s runSummary
			if err := json.Unmarshal(e.Record, &s); err != nil {
				return fmt.Errorf("repository record for this run is undecodable: %w", err)
			}
			s.print()
			fmt.Printf("repository:         hit — replayed from %s, no fit performed\n", o.repoDir)
			return nil
		}
	}

	meter := greenautoml.NewMeter(machine, o.cores)
	if o.gpu {
		meter.SetGPUMode(energy.GPUActive)
	}
	var trace *energy.Timeline
	if o.timeline != "" {
		trace = &energy.Timeline{}
		meter.SetTimeline(trace)
	}

	res, err := sys.Fit(train, greenautoml.Options{Budget: o.budget, Meter: meter, Seed: o.seed})
	if err != nil {
		return err
	}
	proba, inferCost, err := res.PredictProbaCost(test, meter) //greenlint:allow meteredcost PredictProbaCost charges the cost to the meter itself; the copy here is persisted into the repository entry
	if err != nil {
		return err
	}
	pred := metrics.ArgmaxRows(proba)
	acc := greenautoml.BalancedAccuracy(test.LabelsInto(nil), pred, test.Classes())
	report := meter.Tracker().Snapshot()

	summary := runSummary{
		Dataset:         ds.Name,
		Rows:            ds.Rows(),
		Features:        ds.Features(),
		Classes:         ds.Classes,
		System:          res.System,
		Machine:         machine.Name,
		Cores:           o.cores,
		Budget:          o.budget,
		ExecTime:        res.ExecTime,
		Evaluated:       res.Evaluated,
		Accuracy:        acc,
		TestRows:        test.Rows(),
		ExecKWh:         report.ExecutionKWh,
		InferKWhPerInst: report.InferenceKWh / float64(test.Rows()),
		CO2Kg:           report.CO2Kg(),
		CostEUR:         report.CostEUR(),
	}
	summary.print()

	if rp != nil && !rp.ReadOnly() {
		if err := storeRun(rp, fingerprint, key, summary, proba, test.Classes(), inferCost); err != nil {
			return err
		}
		fmt.Printf("repository:         stored in %s for warm replay\n", o.repoDir)
	}

	if o.saveArtifact != "" {
		if err := saveArtifact(o, res, train, meter); err != nil {
			return err
		}
	}

	if trace != nil {
		// Atomic replace: a kill mid-write must not leave a torn
		// timeline under the final name.
		if err := atomicio.WriteFile(o.timeline, trace.WriteCSV); err != nil {
			return err
		}
		fmt.Printf("timeline:           %d samples -> %s\n", trace.Len(), o.timeline)
	}
	return nil
}

// storeRun writes the completed run into the repository: the printed
// summary as the record, plus the held-out prediction probabilities and
// their cost, so downstream analyses (ensemble simulation) can consume
// greenrun cells like any grid cell.
func storeRun(rp *repo.Repository, fingerprint, key string, s runSummary, proba [][]float64, classes int, inferCost ml.Cost) error {
	rec, err := json.Marshal(s)
	if err != nil {
		return err
	}
	slab, err := tabular.FlattenRows(proba, classes)
	if err != nil {
		return err
	}
	return rp.Put(&repo.Entry{
		Fingerprint: fingerprint,
		Key:         key,
		System:      s.System,
		Dataset:     s.Dataset,
		Score:       s.Accuracy,
		Record:      rec,
		Rows:        len(proba),
		Classes:     classes,
		Proba:       slab,
		InferCost:   inferCost,
	})
}

// saveArtifact packages the winning pipeline as a deterministic,
// checksummed serving artifact. The refit the artifact performs for its
// prediction fingerprint is real work, so its cost is charged to the
// meter's execution stage before the file is written.
func saveArtifact(o options, res *greenautoml.Result, train tabular.View, meter *energy.Meter) error {
	if res.BestSpec == nil || res.BestConfig == nil {
		return fmt.Errorf("-save-artifact: %s returned no deployable pipeline recipe", o.system)
	}
	spec := artifact.Spec{
		Dataset:              o.dataPath,
		Models:               res.BestSpec.Models,
		DataPreprocessors:    res.BestSpec.DataPreprocessors,
		FeaturePreprocessors: res.BestSpec.FeaturePreprocessors,
		ComplexityCaps:       res.BestSpec.ComplexityCaps,
		Params:               res.BestConfig,
		Seed:                 o.seed,
		Train:                train.Materialize(),
	}
	m, cost, err := artifact.Build(spec)
	// Charge before the error check: a refit that failed partway still
	// consumed its reported cost.
	for _, w := range cost.Works(0) {
		meter.Run(energy.Execution, w)
	}
	if err != nil {
		return fmt.Errorf("-save-artifact: %w", err)
	}
	if err := artifact.Save(o.saveArtifact, m); err != nil {
		return fmt.Errorf("-save-artifact: %w", err)
	}
	fmt.Printf("artifact:           %s (fingerprint %016x) -> %s\n", res.System, m.Fingerprint, o.saveArtifact)
	return nil
}

// buildSystem maps the CLI name to a system constructor.
func buildSystem(name string, budget time.Duration) (greenautoml.System, error) {
	switch strings.ToLower(name) {
	case "caml":
		return greenautoml.CAML(), nil
	case "caml-tuned":
		return greenautoml.TunedCAML(budget), nil
	case "autogluon":
		return greenautoml.AutoGluon(), nil
	case "autogluon-fast":
		return greenautoml.AutoGluonFastInference(), nil
	case "asklearn1":
		return greenautoml.AutoSklearn1(), nil
	case "asklearn2":
		return greenautoml.AutoSklearn2(), nil
	case "flaml":
		return greenautoml.FLAML(), nil
	case "tabpfn":
		return greenautoml.TabPFN(), nil
	case "tpot":
		return greenautoml.TPOT(), nil
	case "zeroshot":
		return greenautoml.ZeroShot(), nil
	default:
		return nil, fmt.Errorf("unknown system %q", name)
	}
}
