// Command greenrun executes one AutoML system on a user-supplied CSV
// dataset under the energy meter and reports predictive performance next
// to the consumed energy — the paper's measurement loop for your own data.
//
// Usage:
//
//	greenrun -data mydata.csv -target label -system caml -budget 30s
//	greenrun -data mydata.csv -system autogluon -cores 8 -timeline trace.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	greenautoml "repro"
	"repro/internal/atomicio"
	"repro/internal/energy"
	"repro/internal/tabular"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "path to the CSV dataset (required)")
		target    = flag.String("target", "", "label column name (default: last column)")
		system    = flag.String("system", "caml", "system: caml | caml-tuned | autogluon | autogluon-fast | asklearn1 | asklearn2 | flaml | tabpfn | tpot")
		budget    = flag.Duration("budget", 30*time.Second, "virtual search budget")
		cores     = flag.Int("cores", 1, "allotted CPU cores on the modelled testbed")
		gpu       = flag.Bool("gpu", false, "use the T4 GPU testbed with offload enabled")
		seed      = flag.Uint64("seed", 42, "random seed")
		timeline  = flag.String("timeline", "", "write a CodeCarbon-style consumption timeline CSV to this path")
		splitSeed = flag.Uint64("split-seed", 7, "seed of the 66/34 train/test split")
	)
	flag.Parse()
	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "greenrun: -data is required")
		flag.Usage()
		os.Exit(2)
	}

	sys, err := buildSystem(*system, *budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "greenrun:", err)
		os.Exit(2)
	}

	f, err := os.Open(*dataPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "greenrun:", err)
		os.Exit(1)
	}
	ds, err := tabular.ReadCSV(f, tabular.CSVOptions{TargetColumn: *target})
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "greenrun:", err)
		os.Exit(1)
	}
	ds.Name = *dataPath

	train, test := greenautoml.Split(ds.Frame(), *splitSeed)

	machine := greenautoml.CPUTestbed()
	if *gpu {
		machine = greenautoml.GPUTestbed()
	}
	meter := greenautoml.NewMeter(machine, *cores)
	if *gpu {
		meter.SetGPUMode(energy.GPUActive)
	}
	var trace *energy.Timeline
	if *timeline != "" {
		trace = &energy.Timeline{}
		meter.SetTimeline(trace)
	}

	res, err := sys.Fit(train, greenautoml.Options{Budget: *budget, Meter: meter, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "greenrun:", err)
		os.Exit(1)
	}
	pred, err := res.Predict(test, meter)
	if err != nil {
		fmt.Fprintln(os.Stderr, "greenrun:", err)
		os.Exit(1)
	}
	acc := greenautoml.BalancedAccuracy(test.LabelsInto(nil), pred, test.Classes())
	report := meter.Tracker().Snapshot()

	fmt.Printf("dataset:            %s (%d rows, %d features, %d classes)\n", ds.Name, ds.Rows(), ds.Features(), ds.Classes)
	fmt.Printf("system:             %s on %s (%d cores)\n", res.System, machine.Name, *cores)
	fmt.Printf("search:             budget %s, actual %s, %d pipelines evaluated\n",
		*budget, res.ExecTime.Round(10*time.Millisecond), res.Evaluated)
	fmt.Printf("balanced accuracy:  %.4f on %d held-out rows\n", acc, test.Rows())
	fmt.Printf("execution energy:   %.6f kWh\n", report.ExecutionKWh)
	fmt.Printf("inference energy:   %.4g kWh/instance\n", report.InferenceKWh/float64(test.Rows()))
	fmt.Printf("footprint:          %.6f kg CO2, %.6f EUR\n", report.CO2Kg(), report.CostEUR())

	if trace != nil {
		// Atomic replace: a kill mid-write must not leave a torn
		// timeline under the final name.
		if err := atomicio.WriteFile(*timeline, trace.WriteCSV); err != nil {
			fmt.Fprintln(os.Stderr, "greenrun:", err)
			os.Exit(1)
		}
		fmt.Printf("timeline:           %d samples -> %s\n", trace.Len(), *timeline)
	}
}

// buildSystem maps the CLI name to a system constructor.
func buildSystem(name string, budget time.Duration) (greenautoml.System, error) {
	switch strings.ToLower(name) {
	case "caml":
		return greenautoml.CAML(), nil
	case "caml-tuned":
		return greenautoml.TunedCAML(budget), nil
	case "autogluon":
		return greenautoml.AutoGluon(), nil
	case "autogluon-fast":
		return greenautoml.AutoGluonFastInference(), nil
	case "asklearn1":
		return greenautoml.AutoSklearn1(), nil
	case "asklearn2":
		return greenautoml.AutoSklearn2(), nil
	case "flaml":
		return greenautoml.FLAML(), nil
	case "tabpfn":
		return greenautoml.TabPFN(), nil
	case "tpot":
		return greenautoml.TPOT(), nil
	default:
		return nil, fmt.Errorf("unknown system %q", name)
	}
}
