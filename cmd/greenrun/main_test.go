package main

import (
	"fmt"
	"io"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/hw"
	"repro/internal/serve"
)

// TestValidate drives the flag validator table-style: each row is a flag
// combination and the error fragment it must produce, "" for accepted.
func TestValidate(t *testing.T) {
	base := func() options {
		return options{dataPath: "d.csv", system: "caml", budget: 30 * time.Second, cores: 1}
	}
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string
	}{
		{"defaults ok", func(o *options) {}, ""},
		{"missing data", func(o *options) { o.dataPath = "" }, "-data is required"},
		{"unknown system", func(o *options) { o.system = "h2o" }, "unknown system"},
		{"zero budget", func(o *options) { o.budget = 0 }, "-budget"},
		{"negative budget", func(o *options) { o.budget = -time.Second }, "-budget"},
		{"zero cores", func(o *options) { o.cores = 0 }, "-cores"},
		{"artifact from caml ok", func(o *options) { o.saveArtifact = "m.model" }, ""},
		{"artifact from flaml ok", func(o *options) { o.system = "flaml"; o.saveArtifact = "m.model" }, ""},
		{"artifact from tpot ok", func(o *options) { o.system = "tpot"; o.saveArtifact = "m.model" }, ""},
		{"artifact from tabpfn rejected", func(o *options) { o.system = "tabpfn"; o.saveArtifact = "m.model" }, "-save-artifact"},
		{"artifact from autogluon rejected", func(o *options) { o.system = "autogluon"; o.saveArtifact = "m.model" }, "-save-artifact"},
		{"tabpfn without artifact ok", func(o *options) { o.system = "tabpfn" }, ""},
		{"zeroshot ok", func(o *options) { o.system = "zeroshot" }, ""},
		{"repo ok", func(o *options) { o.repoDir = "store" }, ""},
		{"repo readonly ok", func(o *options) { o.repoDir = "store"; o.repoReadonly = true }, ""},
		{"readonly without repo", func(o *options) { o.repoReadonly = true }, "-repo-readonly"},
		{"repo with save-artifact", func(o *options) { o.repoDir = "store"; o.saveArtifact = "m.model" }, "mutually exclusive"},
		{"repo with timeline", func(o *options) { o.repoDir = "store"; o.timeline = "t.csv" }, "mutually exclusive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := base()
			tc.mutate(&o)
			err := o.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want accept", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// writeTestCSV writes a small separable two-class dataset.
func writeTestCSV(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewPCG(3, 3))
	var sb strings.Builder
	sb.WriteString("f1,f2,label\n")
	for i := 0; i < 120; i++ {
		y := i % 2
		fmt.Fprintf(&sb, "%.4f,%.4f,%d\n",
			float64(y)+0.3*rng.NormFloat64(), -float64(y)+0.3*rng.NormFloat64(), y)
	}
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunSaveArtifactRoundTrip is the full lifecycle: greenrun trains
// under the meter, packages the winner, and the artifact loads back,
// verifies its fingerprint, and serves through the engine.
func TestRunSaveArtifactRoundTrip(t *testing.T) {
	artifactPath := filepath.Join(t.TempDir(), "out.model")
	o := options{
		dataPath:     writeTestCSV(t),
		system:       "caml",
		budget:       5 * time.Second,
		cores:        1,
		seed:         11,
		splitSeed:    7,
		saveArtifact: artifactPath,
	}
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	if err := run(o); err != nil {
		t.Fatal(err)
	}

	a, _, err := artifact.Load(artifactPath)
	if err != nil {
		t.Fatalf("loading the saved artifact: %v", err)
	}
	if a.Spec.Dataset != o.dataPath {
		t.Fatalf("artifact dataset %q", a.Spec.Dataset)
	}
	eng := serve.NewEngine(serve.NewModel(a), hw.XeonGold6132(), serve.Config{})
	resps := eng.Submit(serve.Request{ID: 1, Row: []float64{1.0, -1.0}, Arrival: 0})
	resps = append(resps, eng.Drain(time.Second)...)
	if len(resps) != 1 || resps[0].Outcome != serve.Served {
		t.Fatalf("serving the saved artifact: %v", resps)
	}
}

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("run: %v\noutput:\n%s", runErr, out)
	}
	return string(out)
}

// TestRunRepoWarmReplay runs the same dataset twice against a
// repository: the cold run stores its outcome, the warm run replays it
// without fitting, and both print the identical report lines.
func TestRunRepoWarmReplay(t *testing.T) {
	o := options{
		dataPath:  writeTestCSV(t),
		system:    "caml",
		budget:    2 * time.Second,
		cores:     1,
		seed:      5,
		splitSeed: 7,
		repoDir:   filepath.Join(t.TempDir(), "store"),
	}
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	cold := captureStdout(t, func() error { return run(o) })
	if !strings.Contains(cold, "repository:         stored") {
		t.Fatalf("cold run did not store:\n%s", cold)
	}
	warm := captureStdout(t, func() error { return run(o) })
	if !strings.Contains(warm, "no fit performed") {
		t.Fatalf("warm run did not hit the store:\n%s", warm)
	}
	// Every report line above the repository status must match exactly.
	trim := func(s string) string {
		i := strings.Index(s, "repository:")
		return s[:i]
	}
	if trim(cold) != trim(warm) {
		t.Fatalf("warm report diverged from cold\ncold:\n%s\nwarm:\n%s", cold, warm)
	}

	// A different seed is a different run: it must miss and store anew.
	o.seed = 6
	other := captureStdout(t, func() error { return run(o) })
	if !strings.Contains(other, "repository:         stored") {
		t.Fatalf("changed seed did not miss:\n%s", other)
	}
}

// TestRunTimeline keeps the pre-existing timeline export path working
// under the refactored runner.
func TestRunTimeline(t *testing.T) {
	timeline := filepath.Join(t.TempDir(), "trace.csv")
	o := options{
		dataPath:  writeTestCSV(t),
		system:    "caml",
		budget:    2 * time.Second,
		cores:     1,
		seed:      1,
		splitSeed: 7,
		timeline:  timeline,
	}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(timeline)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("timeline export is empty")
	}
}
