// Command greenserve is the energy-metered inference daemon: it loads a
// fitted pipeline from a versioned artifact (see greenrun -save-artifact)
// and serves it with the robustness rails of internal/serve — bounded
// admission, deadline-aware micro-batching, a circuit breaker with
// majority-class degradation, and graceful drain.
//
// Daemon mode binds an HTTP API:
//
//	greenserve -model run/adult.model -addr :8080 -journal serve.jsonl
//
//	POST /predict {"row":[...], "deadline_ms":50}  -> one prediction
//	GET  /stats                                    -> outcome counts, breaker, energy
//	POST /reload {"path":"run/adult-v2.model"}     -> atomic hot swap; corrupt
//	                                                  artifacts are refused and the
//	                                                  old model keeps serving
//
// SIGINT/SIGTERM drains: queued requests resolve, new ones shed.
//
// Load-generation mode runs entirely on the virtual clock — millions of
// simulated users, zero wall-time dependence — and prints latency
// percentiles against watts:
//
//	greenserve -model run/adult.model -loadgen -users 1000000 -rate 50000 -requests 200000
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/artifact"
	"repro/internal/atomicio"
	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/serve"
)

// options holds every flag value, so validation is a pure function the
// tests can drive table-style without a process boundary.
type options struct {
	model   string
	addr    string
	journal string

	queueCap         int
	batchMax         int
	batchWindow      time.Duration
	predictTimeout   time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration

	loadgen      bool
	users        int
	rate         float64
	requests     int
	paretoAlpha  float64
	deadline     time.Duration
	deadlineFrac float64
	seed         uint64
}

// validate rejects malformed and contradictory flag combinations with a
// one-line error instead of misbehaving partway into a run.
func (o *options) validate() error {
	if o.model == "" {
		return fmt.Errorf("-model is required: greenserve serves artifacts written by greenrun -save-artifact")
	}
	if o.queueCap < 0 {
		return fmt.Errorf("-queue-cap %d must not be negative (0 means the default)", o.queueCap)
	}
	if o.batchMax < 0 {
		return fmt.Errorf("-batch-max %d must not be negative (0 means the default)", o.batchMax)
	}
	if o.batchWindow < 0 {
		return fmt.Errorf("-batch-window %v must not be negative (0 means the default)", o.batchWindow)
	}
	if o.breakerThreshold < 0 {
		return fmt.Errorf("-breaker-threshold %d must not be negative (0 means the default)", o.breakerThreshold)
	}
	if o.breakerCooldown < 0 {
		return fmt.Errorf("-breaker-cooldown %v must not be negative (0 means the default)", o.breakerCooldown)
	}
	if o.loadgen {
		if o.users < 0 {
			return fmt.Errorf("-users %d must not be negative (0 means open loop)", o.users)
		}
		if o.rate <= 0 {
			return fmt.Errorf("-rate %v must be positive in -loadgen mode", o.rate)
		}
		if o.requests < 1 {
			return fmt.Errorf("-requests %d must be at least 1 in -loadgen mode", o.requests)
		}
		if o.paretoAlpha <= 1 {
			return fmt.Errorf("-pareto-alpha %v must exceed 1 (the tail must have a finite mean)", o.paretoAlpha)
		}
		if o.deadlineFrac < 0 || o.deadlineFrac > 1 {
			return fmt.Errorf("-deadline-frac %v must be in [0, 1]", o.deadlineFrac)
		}
		if o.deadlineFrac > 0 && o.deadline <= 0 {
			return fmt.Errorf("-deadline must be positive when -deadline-frac is set")
		}
	} else {
		if o.addr == "" {
			return fmt.Errorf("-addr is required in daemon mode (or pass -loadgen)")
		}
		for _, bad := range []struct {
			set  bool
			name string
		}{
			{o.users != 0, "-users"},
			{o.requests != 0, "-requests"},
			{o.deadlineFrac != 0, "-deadline-frac"},
		} {
			if bad.set {
				return fmt.Errorf("%s only applies to -loadgen mode", bad.name)
			}
		}
	}
	return nil
}

// engineConfig maps the shared rail flags onto the serve configuration.
func (o *options) engineConfig() serve.Config {
	return serve.Config{
		QueueCap:         o.queueCap,
		BatchMax:         o.batchMax,
		BatchWindow:      o.batchWindow,
		PredictTimeout:   o.predictTimeout,
		BreakerThreshold: o.breakerThreshold,
		BreakerCooldown:  o.breakerCooldown,
	}
}

func main() {
	var o options
	flag.StringVar(&o.model, "model", "", "artifact path to serve (written by greenrun -save-artifact)")
	flag.StringVar(&o.addr, "addr", ":8080", "HTTP listen address for daemon mode")
	flag.StringVar(&o.journal, "journal", "", "append a checksummed metering journal of every resolution to this path")
	flag.IntVar(&o.queueCap, "queue-cap", 0, "admission queue bound; requests beyond it are shed (0 = default 256)")
	flag.IntVar(&o.batchMax, "batch-max", 0, "max rows per predict micro-batch (0 = default 32)")
	flag.DurationVar(&o.batchWindow, "batch-window", 0, "how long a batch waits to fill before flushing (0 = default 2ms)")
	flag.DurationVar(&o.predictTimeout, "predict-timeout", 0, "per-batch predict budget; overruns fail and count against the breaker (0 = default 250ms, negative = off)")
	flag.IntVar(&o.breakerThreshold, "breaker-threshold", 0, "consecutive batch failures that trip the breaker to the fallback tier (0 = default 4)")
	flag.DurationVar(&o.breakerCooldown, "breaker-cooldown", 0, "how long the breaker stays open before a half-open probe (0 = default 1s)")
	flag.BoolVar(&o.loadgen, "loadgen", false, "run the deterministic load generator on the virtual clock instead of serving HTTP")
	flag.IntVar(&o.users, "users", 0, "closed-loop user population for -loadgen (0 = open loop)")
	flag.Float64Var(&o.rate, "rate", 1000, "mean arrival rate in requests/second for -loadgen")
	flag.IntVar(&o.requests, "requests", 0, "total requests to issue in -loadgen mode")
	flag.Float64Var(&o.paretoAlpha, "pareto-alpha", 1.5, "tail index of inter-arrival and think times (smaller = heavier tail)")
	flag.DurationVar(&o.deadline, "deadline", 0, "relative deadline carried by -deadline-frac of generated requests")
	flag.Float64Var(&o.deadlineFrac, "deadline-frac", 0, "fraction of generated requests carrying -deadline in [0, 1]")
	flag.Uint64Var(&o.seed, "seed", 1, "load-generator seed; identical seeds replay identical runs")
	flag.Parse()

	if err := o.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "greenserve:", err)
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "greenserve:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	model, art, err := loadModel(o.model)
	if err != nil {
		return err
	}
	machine := hw.XeonGold6132()
	eng := serve.NewEngine(model, machine, o.engineConfig())
	if o.journal != "" {
		j, err := serve.NewJournal(o.journal, model.Name)
		if err != nil {
			return err
		}
		defer j.Close()
		eng.SetJournal(j)
	}
	fmt.Fprintf(os.Stderr, "greenserve: loaded %s (dataset %s, %d classes, fingerprint %016x)\n",
		o.model, art.Spec.Dataset, model.Classes, art.Fingerprint)

	if o.loadgen {
		return runLoadGen(o, eng, art)
	}
	return runDaemon(o, eng)
}

// loadModel loads and verifies the artifact, refusing corruption with
// its taxonomy intact, and adapts it for serving. The verification
// refit's cost is reported so operators see that loading is not free;
// it is not charged to the serving tracker, whose inference ledger must
// stay a pure sum of per-request charges.
func loadModel(path string) (*serve.Model, *artifact.Model, error) {
	a, cost, err := artifact.Load(path)
	flops := cost.Generic + cost.Tree + cost.Matrix
	if err != nil {
		return nil, nil, fmt.Errorf("loading artifact %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "greenserve: artifact %s verified (refit cost %.0f FLOPs)\n", path, flops)
	return serve.NewModel(a), a, nil
}

// runLoadGen drives the engine on the virtual clock, sampling traffic
// rows from the artifact's training frame, and prints the
// latency-vs-watts report plus the conservation cross-check.
func runLoadGen(o options, eng *serve.Engine, art *artifact.Model) error {
	g := serve.LoadGen{
		Users:        o.users,
		Rate:         o.rate,
		Requests:     o.requests,
		ParetoAlpha:  o.paretoAlpha,
		Deadline:     o.deadline,
		DeadlineFrac: o.deadlineFrac,
		Seed:         o.seed,
	}
	rep := g.Run(eng, art.Spec.Train.All())
	fmt.Println(rep)
	if got := eng.Tracker().Joules(energy.Inference); got != rep.LedgerJoules {
		return fmt.Errorf("conservation violated: ledger %v J, tracker %v J", rep.LedgerJoules, got)
	}
	fmt.Printf("ledger: %.6f J across %d resolutions, conservation exact\n", rep.LedgerJoules, o.requests)
	return nil
}

// runDaemon serves the HTTP API until SIGINT/SIGTERM, then drains.
func runDaemon(o options, eng *serve.Engine) error {
	srv := serve.NewServer(eng)
	httpSrv := &http.Server{Addr: o.addr, Handler: newMux(srv)}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "greenserve: listening on %s\n", o.addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "greenserve: %s: draining\n", s)
		srv.Drain()
		st := srv.Stats()
		fmt.Fprintf(os.Stderr, "greenserve: drained: %s\n", formatStats(st))
		return httpSrv.Close()
	}
}

// newMux builds the daemon's HTTP API over a serving bridge.
func newMux(srv *serve.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /predict", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Row        []float64 `json:"row"`
			DeadlineMS float64   `json:"deadline_ms"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Row) == 0 {
			http.Error(w, "body must be {\"row\":[...], \"deadline_ms\":0}", http.StatusBadRequest)
			return
		}
		resp := srv.Predict(req.Row, time.Duration(req.DeadlineMS*float64(time.Millisecond)))
		writeJSON(w, statusFor(resp), map[string]any{
			"outcome":    resp.Outcome.String(),
			"class":      resp.Class,
			"proba":      resp.Proba,
			"latency_us": resp.Latency.Microseconds(),
			"joules":     resp.Joules,
			"error":      resp.Err,
		})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, statsPayload(srv.Stats()))
	})
	mux.HandleFunc("POST /reload", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Path string `json:"path"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Path == "" {
			http.Error(w, "body must be {\"path\":\"...\"}", http.StatusBadRequest)
			return
		}
		m, _, err := loadModel(req.Path)
		if err != nil {
			// The refusal taxonomy maps to 409: the artifact on disk is
			// unusable and the previous model keeps serving.
			writeJSON(w, http.StatusConflict, map[string]any{
				"error": err.Error(), "kind": refusalKind(err), "serving": srv.Stats().Model,
			})
			return
		}
		srv.Reload(m)
		writeJSON(w, http.StatusOK, map[string]any{"serving": m.Name})
	})
	return mux
}

// statusFor maps the outcome taxonomy onto HTTP status codes: refusals
// are 503 (retryable elsewhere), expiry is 504, degradation still
// answers 200 but is labeled in the body.
func statusFor(r serve.Response) int {
	switch r.Outcome {
	case serve.Shed:
		return http.StatusServiceUnavailable
	case serve.Expired:
		return http.StatusGatewayTimeout
	case serve.Failed:
		return http.StatusInternalServerError
	default:
		return http.StatusOK
	}
}

// refusalKind names which layer of the artifact taxonomy refused.
func refusalKind(err error) string {
	switch {
	case errors.Is(err, artifact.ErrVersion):
		return "version-mismatch"
	case errors.Is(err, artifact.ErrFingerprint):
		return "fingerprint-mismatch"
	case errors.Is(err, artifact.ErrMalformed):
		return "malformed"
	case errors.Is(err, atomicio.ErrChecksum):
		return "corrupt"
	case errors.Is(err, atomicio.ErrMalformed):
		return "truncated"
	default:
		return "unreadable"
	}
}

func statsPayload(st serve.Stats) map[string]any {
	outcomes := make(map[string]int, len(st.Outcomes))
	for o, n := range st.Outcomes {
		outcomes[serve.Outcome(o).String()] = n
	}
	return map[string]any{
		"model":         st.Model,
		"outcomes":      outcomes,
		"batches":       st.Batches,
		"breaker":       st.Breaker.String(),
		"breaker_trips": st.BreakerTrips,
		"queue_len":     st.QueueLen,
		"kwh":           st.KWh,
	}
}

func formatStats(st serve.Stats) string {
	return fmt.Sprintf("model %s, %d served, %d shed, %d expired, %d degraded, %d failed, %.6f kWh",
		st.Model, st.Outcomes[serve.Served], st.Outcomes[serve.Shed], st.Outcomes[serve.Expired],
		st.Outcomes[serve.Degraded], st.Outcomes[serve.Failed], st.KWh)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
