package main

import (
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/hw"
	"repro/internal/pipeline"
	"repro/internal/serve"
	"repro/internal/tabular"
)

// TestValidate drives the flag validator table-style: each row is a flag
// combination and the error fragment it must produce, "" for accepted.
func TestValidate(t *testing.T) {
	base := func() options {
		return options{model: "m.model", addr: ":8080", rate: 1000, paretoAlpha: 1.5}
	}
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string
	}{
		{"daemon defaults ok", func(o *options) {}, ""},
		{"missing model", func(o *options) { o.model = "" }, "-model is required"},
		{"negative queue cap", func(o *options) { o.queueCap = -1 }, "-queue-cap"},
		{"negative batch max", func(o *options) { o.batchMax = -2 }, "-batch-max"},
		{"negative batch window", func(o *options) { o.batchWindow = -time.Second }, "-batch-window"},
		{"negative breaker threshold", func(o *options) { o.breakerThreshold = -1 }, "-breaker-threshold"},
		{"negative breaker cooldown", func(o *options) { o.breakerCooldown = -time.Second }, "-breaker-cooldown"},
		{"negative predict timeout ok (disables)", func(o *options) { o.predictTimeout = -1 }, ""},
		{"daemon needs addr", func(o *options) { o.addr = "" }, "-addr is required"},
		{"users is loadgen-only", func(o *options) { o.users = 5 }, "-users only applies"},
		{"requests is loadgen-only", func(o *options) { o.requests = 10 }, "-requests only applies"},
		{"deadline-frac is loadgen-only", func(o *options) { o.deadlineFrac = 0.5 }, "-deadline-frac only applies"},
		{"loadgen ok", func(o *options) { o.loadgen = true; o.requests = 100 }, ""},
		{"loadgen closed loop ok", func(o *options) { o.loadgen = true; o.requests = 100; o.users = 50 }, ""},
		{"loadgen negative users", func(o *options) { o.loadgen = true; o.requests = 100; o.users = -1 }, "-users"},
		{"loadgen zero rate", func(o *options) { o.loadgen = true; o.requests = 100; o.rate = 0 }, "-rate"},
		{"loadgen zero requests", func(o *options) { o.loadgen = true }, "-requests"},
		{"loadgen thin tail", func(o *options) { o.loadgen = true; o.requests = 10; o.paretoAlpha = 1 }, "-pareto-alpha"},
		{"loadgen bad deadline frac", func(o *options) { o.loadgen = true; o.requests = 10; o.deadlineFrac = 1.5 }, "-deadline-frac"},
		{"loadgen frac without deadline", func(o *options) { o.loadgen = true; o.requests = 10; o.deadlineFrac = 0.5 }, "-deadline must be positive"},
		{"loadgen frac with deadline ok", func(o *options) {
			o.loadgen = true
			o.requests = 10
			o.deadlineFrac = 0.5
			o.deadline = 50 * time.Millisecond
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := base()
			tc.mutate(&o)
			err := o.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want accept", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func testArtifactPath(t *testing.T) string {
	t.Helper()
	rng := rand.New(rand.NewPCG(5, 5))
	rows := 60
	f := tabular.NewFrame("cli", rows, 2)
	f.Classes = 2
	f.Y = make([]int, rows)
	for i := 0; i < rows; i++ {
		y := i % 2
		f.Y[i] = y
		f.Cols[0][i] = float64(y) + 0.3*rng.NormFloat64()
		f.Cols[1][i] = -float64(y) + 0.3*rng.NormFloat64()
	}
	m, _, err := artifact.Build(artifact.Spec{
		Dataset: "cli",
		Models:  []string{"tree"},
		Params:  pipeline.Config{"model": 0, "tree.max_depth": 3},
		Seed:    9,
		Train:   f,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cli.model")
	if err := artifact.Save(path, m); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunLoadGenEndToEnd exercises the full CLI path below flag parsing:
// artifact load, engine assembly, journaled virtual-clock load
// generation, and the conservation cross-check inside run().
func TestRunLoadGenEndToEnd(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "serve.jsonl")
	o := options{
		model:    testArtifactPath(t),
		journal:  journal,
		loadgen:  true,
		rate:     2000,
		requests: 200,
		users:    20,

		paretoAlpha:  1.5,
		deadline:     20 * time.Millisecond,
		deadlineFrac: 0.25,
		seed:         3,
	}
	if err := o.validate(); err != nil {
		t.Fatal(err)
	}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	rep, err := serve.ReplayJournal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 200 || rep.Torn || rep.Damaged != 0 {
		t.Fatalf("journal: %d records, torn %v, damaged %d", len(rep.Records), rep.Torn, rep.Damaged)
	}
}

// TestRunRefusesCorruptArtifact checks the daemon's startup refusal: a
// corrupt artifact never serves.
func TestRunRefusesCorruptArtifact(t *testing.T) {
	path := testArtifactPath(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x55
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	o := options{model: path, loadgen: true, rate: 1000, requests: 10, paretoAlpha: 1.5}
	err = run(o)
	if err == nil || !strings.Contains(err.Error(), "loading artifact") {
		t.Fatalf("run with corrupt artifact: %v, want load refusal", err)
	}
}

// TestHTTPEndpoints drives the daemon's API through the real serving
// bridge: predictions answer with the outcome taxonomy, stats reflect
// them, reload refuses a corrupt artifact with 409 while the old model
// keeps serving, and a valid reload swaps without dropping anything.
func TestHTTPEndpoints(t *testing.T) {
	path := testArtifactPath(t)
	model, _, err := loadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	eng := serve.NewEngine(model, hw.XeonGold6132(), serve.Config{BatchWindow: time.Millisecond})
	srv := serve.NewServer(eng)
	ts := httptest.NewServer(newMux(srv))
	defer ts.Close()
	defer srv.Drain()

	post := func(url, body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var payload map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, payload
	}

	status, payload := post(ts.URL+"/predict", `{"row":[1.0,-1.0]}`)
	if status != http.StatusOK || payload["outcome"] != "served" {
		t.Fatalf("predict: %d %v", status, payload)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats["model"] != "cli" {
		t.Fatalf("stats model %v", stats["model"])
	}
	outcomes, _ := stats["outcomes"].(map[string]any)
	if outcomes["served"] != float64(1) {
		t.Fatalf("stats outcomes %v", outcomes)
	}

	// Corrupt artifact: reload refused with the taxonomy, old model serving.
	bad := filepath.Join(t.TempDir(), "bad.model")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x55
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	status, payload = post(ts.URL+"/reload", `{"path":"`+bad+`"}`)
	if status != http.StatusConflict || payload["serving"] != "cli" {
		t.Fatalf("corrupt reload: %d %v", status, payload)
	}
	if payload["kind"] != "corrupt" {
		t.Fatalf("corrupt reload kind %v, want corrupt", payload["kind"])
	}
	if status, payload = post(ts.URL+"/predict", `{"row":[1.0,-1.0]}`); status != http.StatusOK {
		t.Fatalf("predict after refused reload: %d %v", status, payload)
	}

	// Valid reload swaps in place.
	if status, payload = post(ts.URL+"/reload", `{"path":"`+path+`"}`); status != http.StatusOK {
		t.Fatalf("reload: %d %v", status, payload)
	}
	if status, payload = post(ts.URL+"/predict", `{"row":[-1.0,1.0]}`); status != http.StatusOK || payload["outcome"] != "served" {
		t.Fatalf("predict after reload: %d %v", status, payload)
	}

	// Malformed bodies are 400, not crashes.
	if r, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader("{}")); err != nil || r.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty predict body: %v %v", r.StatusCode, err)
	}
}
