// Command greenlint runs the project's determinism and energy-
// accounting static-analysis suite (see internal/greenlint) over the
// given package patterns and exits nonzero on any finding.
//
// Usage:
//
//	go run ./cmd/greenlint [-checks list] [-format text|json] ./...
//
// Findings print one per line as "file:line: [check] message", or as a
// JSON array of {file, line, column, check, message} records with
// -format json (the shape the CI problem matcher and editor
// integrations consume). -checks restricts the run to a comma-separated
// subset of analyzers so a single check can be iterated on without
// paying full-sweep cost. Exit status: 0 clean, 1 findings, 2 the tree
// could not be loaded or the flags were invalid.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/greenlint"
)

// jsonFinding is the stable machine-readable record shape; field order
// and names are contract with .github/greenlint-problem-matcher.json.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func main() {
	verbose := flag.Bool("v", false, "print type-check warnings and a per-check summary")
	format := flag.String("format", "text", "output format: text or json")
	checks := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: greenlint [-v] [-checks list] [-format text|json] [packages]\n\nChecks:\n")
		for _, a := range greenlint.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "greenlint: unknown format %q (want text or json)\n", *format)
		os.Exit(2)
	}
	var checkList []string
	if *checks != "" {
		for _, c := range strings.Split(*checks, ",") {
			if c = strings.TrimSpace(c); c != "" {
				checkList = append(checkList, c)
			}
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, warnings, err := greenlint.RunChecks(patterns, checkList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "greenlint:", err)
		os.Exit(2)
	}
	if *verbose {
		for _, w := range warnings {
			fmt.Fprintln(os.Stderr, "greenlint: warning:", w)
		}
	}
	cwd, _ := os.Getwd()
	counts := make(map[string]int)
	records := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
				f.Pos.Filename = rel
			}
		}
		if *format == "json" {
			records = append(records, jsonFinding{
				File:    f.Pos.Filename,
				Line:    f.Pos.Line,
				Column:  f.Pos.Column,
				Check:   f.Check,
				Message: f.Msg,
			})
		} else {
			fmt.Println(f)
		}
		counts[f.Check]++
	}
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(records); err != nil {
			fmt.Fprintln(os.Stderr, "greenlint:", err)
			os.Exit(2)
		}
	}
	if len(findings) > 0 {
		if *verbose {
			for _, a := range greenlint.Analyzers {
				if counts[a.Name] > 0 {
					fmt.Fprintf(os.Stderr, "greenlint: %s: %d finding(s)\n", a.Name, counts[a.Name])
				}
			}
		}
		os.Exit(1)
	}
}
