// Command greenlint runs the project's determinism and energy-
// accounting static-analysis suite (see internal/greenlint) over the
// given package patterns and exits nonzero on any finding.
//
// Usage:
//
//	go run ./cmd/greenlint ./...
//
// Findings print one per line as "file:line: [check] message". Exit
// status: 0 clean, 1 findings, 2 the tree could not be loaded.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/greenlint"
)

func main() {
	verbose := flag.Bool("v", false, "print type-check warnings and a per-check summary")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: greenlint [-v] [packages]\n\nChecks:\n")
		for _, a := range greenlint.Analyzers {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, warnings, err := greenlint.Run(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "greenlint:", err)
		os.Exit(2)
	}
	if *verbose {
		for _, w := range warnings {
			fmt.Fprintln(os.Stderr, "greenlint: warning:", w)
		}
	}
	cwd, _ := os.Getwd()
	counts := make(map[string]int)
	for _, f := range findings {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !filepath.IsAbs(rel) {
				f.Pos.Filename = rel
			}
		}
		fmt.Println(f)
		counts[f.Check]++
	}
	if len(findings) > 0 {
		if *verbose {
			for _, a := range greenlint.Analyzers {
				if counts[a.Name] > 0 {
					fmt.Fprintf(os.Stderr, "greenlint: %s: %d finding(s)\n", a.Name, counts[a.Name])
				}
			}
		}
		os.Exit(1)
	}
}
