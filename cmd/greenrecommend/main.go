// Command greenrecommend runs the paper's Figure 8 guideline: given the
// parameters of an ML application, it recommends the most energy-efficient
// AutoML system.
//
// Usage:
//
//	greenrecommend -budget 30s -classes 5 -priority accuracy
//	greenrecommend -cluster -executions 2000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	greenautoml "repro"
)

// options holds every flag value, so validation is a pure function the
// tests can drive table-style without a process boundary.
type options struct {
	cluster    bool
	executions int
	budget     time.Duration
	classes    int
	gpu        bool
	priority   string

	// parsedPriority is filled by validate.
	parsedPriority greenautoml.Priority
}

// validate rejects malformed flag values with a one-line error.
func (o *options) validate() error {
	switch o.priority {
	case "pareto":
		o.parsedPriority = greenautoml.PriorityPareto
	case "inference":
		o.parsedPriority = greenautoml.PriorityFastInference
	case "accuracy":
		o.parsedPriority = greenautoml.PriorityAccuracy
	default:
		return fmt.Errorf("unknown priority %q (want pareto, inference or accuracy)", o.priority)
	}
	if o.executions < 1 {
		return fmt.Errorf("-executions %d must be at least 1", o.executions)
	}
	if o.budget <= 0 {
		return fmt.Errorf("-budget %v must be positive", o.budget)
	}
	if o.classes < 2 {
		return fmt.Errorf("-classes %d must be at least 2", o.classes)
	}
	return nil
}

func main() {
	var o options
	flag.BoolVar(&o.cluster, "cluster", false, "at least one 28-core-class machine available for >1 week")
	flag.IntVar(&o.executions, "executions", 1, "planned AutoML executions on new datasets")
	flag.DurationVar(&o.budget, "budget", 30*time.Second, "per-run search budget")
	flag.IntVar(&o.classes, "classes", 2, "number of classes")
	flag.BoolVar(&o.gpu, "gpu", false, "GPU available")
	flag.StringVar(&o.priority, "priority", "pareto", "priority: pareto | inference | accuracy")
	flag.Parse()

	if err := o.validate(); err != nil {
		fmt.Fprintln(os.Stderr, "greenrecommend:", err)
		os.Exit(2)
	}

	rec := greenautoml.Recommend(greenautoml.Task{
		WeeklyClusterAccess: o.cluster,
		PlannedExecutions:   o.executions,
		SearchBudget:        o.budget,
		Classes:             o.classes,
		GPUAvailable:        o.gpu,
		Priority:            o.parsedPriority,
	})
	fmt.Printf("recommended system: %s\n", rec.SystemName)
	fmt.Printf("rationale: %s\n", rec.Rationale)
}
