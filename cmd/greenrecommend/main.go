// Command greenrecommend runs the paper's Figure 8 guideline: given the
// parameters of an ML application, it recommends the most energy-efficient
// AutoML system.
//
// Usage:
//
//	greenrecommend -budget 30s -classes 5 -priority accuracy
//	greenrecommend -cluster -executions 2000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	greenautoml "repro"
)

func main() {
	var (
		cluster    = flag.Bool("cluster", false, "at least one 28-core-class machine available for >1 week")
		executions = flag.Int("executions", 1, "planned AutoML executions on new datasets")
		budget     = flag.Duration("budget", 30*time.Second, "per-run search budget")
		classes    = flag.Int("classes", 2, "number of classes")
		gpu        = flag.Bool("gpu", false, "GPU available")
		priority   = flag.String("priority", "pareto", "priority: pareto | inference | accuracy")
	)
	flag.Parse()

	var p greenautoml.Priority
	switch *priority {
	case "pareto":
		p = greenautoml.PriorityPareto
	case "inference":
		p = greenautoml.PriorityFastInference
	case "accuracy":
		p = greenautoml.PriorityAccuracy
	default:
		fmt.Fprintf(os.Stderr, "greenrecommend: unknown priority %q (want pareto, inference or accuracy)\n", *priority)
		os.Exit(2)
	}

	rec := greenautoml.Recommend(greenautoml.Task{
		WeeklyClusterAccess: *cluster,
		PlannedExecutions:   *executions,
		SearchBudget:        *budget,
		Classes:             *classes,
		GPUAvailable:        *gpu,
		Priority:            p,
	})
	fmt.Printf("recommended system: %s\n", rec.SystemName)
	fmt.Printf("rationale: %s\n", rec.Rationale)
}
