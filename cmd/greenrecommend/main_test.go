package main

import (
	"strings"
	"testing"
	"time"

	greenautoml "repro"
)

// TestValidate drives the flag validator table-style: each row is a flag
// combination and the error fragment it must produce, "" for accepted.
func TestValidate(t *testing.T) {
	base := func() options {
		return options{executions: 1, budget: 30 * time.Second, classes: 2, priority: "pareto"}
	}
	cases := []struct {
		name    string
		mutate  func(*options)
		wantErr string
	}{
		{"defaults ok", func(o *options) {}, ""},
		{"inference priority ok", func(o *options) { o.priority = "inference" }, ""},
		{"accuracy priority ok", func(o *options) { o.priority = "accuracy" }, ""},
		{"unknown priority", func(o *options) { o.priority = "speed" }, "unknown priority"},
		{"zero executions", func(o *options) { o.executions = 0 }, "-executions"},
		{"zero budget", func(o *options) { o.budget = 0 }, "-budget"},
		{"one class", func(o *options) { o.classes = 1 }, "-classes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := base()
			tc.mutate(&o)
			err := o.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want accept", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestValidateParsesPriority checks validate fills the parsed priority
// the recommendation call consumes.
func TestValidateParsesPriority(t *testing.T) {
	for name, want := range map[string]greenautoml.Priority{
		"pareto":    greenautoml.PriorityPareto,
		"inference": greenautoml.PriorityFastInference,
		"accuracy":  greenautoml.PriorityAccuracy,
	} {
		o := options{executions: 1, budget: time.Second, classes: 2, priority: name}
		if err := o.validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if o.parsedPriority != want {
			t.Fatalf("%s parsed to %v, want %v", name, o.parsedPriority, want)
		}
	}
}
