package greenautoml

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§3). Each benchmark replays a reduced slice of the
// corresponding experiment on the virtual testbed and reports the
// headline quantities as custom benchmark metrics; run with -v to see the
// rendered paper-style tables. The full-scale sweeps (all 39 datasets,
// more seeds) run through cmd/greenbench.
//
//	go test -bench=. -benchmem
//
// One benchmark iteration is one full (reduced) experiment; the virtual
// clock makes iterations deterministic, so b.N is typically 1.

import (
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/metaopt"
	"repro/internal/openml"
)

// benchDatasets is the reduced suite used by the root benchmarks: six
// datasets spanning the size/class spectrum of paper Table 2.
func benchDatasets(tb testing.TB) []openml.Spec {
	names := []string{"credit-g", "phoneme", "segment", "mfeat-factors", "adult", "higgs"}
	specs := make([]openml.Spec, 0, len(names))
	for _, n := range names {
		s, ok := openml.ByName(n)
		if !ok {
			tb.Fatalf("dataset %s missing", n)
		}
		specs = append(specs, s)
	}
	return specs
}

func benchConfig(tb testing.TB) bench.Config {
	return bench.Config{
		Datasets: benchDatasets(tb),
		Seeds:    1,
	}
}

func benchMetaOpts() metaopt.Options {
	return metaopt.Options{
		Budget:         10 * time.Second,
		TopK:           4,
		Iterations:     8,
		RunsPerDataset: 1,
		Scale:          openml.SmallScale(),
		Seed:           2,
	}
}

// fig3Cache shares the fig3 grid across the benchmarks that derive from
// it (fig4, fig7, table4, table6, table7), mirroring how the paper reuses
// its main measurement.
var fig3Cache *bench.Fig3Result

func fig3Result(tb testing.TB) *bench.Fig3Result {
	if fig3Cache == nil {
		r := bench.Fig3(benchConfig(tb))
		fig3Cache = &r
	}
	return fig3Cache
}

// BenchmarkFig3 regenerates Figure 3: search time vs balanced accuracy vs
// execution/inference energy for every system and budget.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig3Cache = nil
		res := fig3Result(b)
		if i == b.N-1 {
			b.Log("\n" + res.Render())
			if ag, ok := bench.BestCell(res.Stats, "AutoGluon"); ok {
				b.ReportMetric(ag.Score.Mean, "autogluon-bacc")
				b.ReportMetric(ag.ExecKWh*1000, "autogluon-exec-Wh")
			}
			if pfn, ok := bench.BestCell(res.Stats, "TabPFN"); ok {
				b.ReportMetric(pfn.InferKWhPerInst*3.6e9, "tabpfn-infer-J/inst")
			}
		}
	}
}

// BenchmarkFig4 regenerates Figure 4: total energy against prediction
// volume and the TabPFN crossover point (paper: ~26k predictions at full
// scale).
func BenchmarkFig4(b *testing.B) {
	base := fig3Result(b)
	var crossover float64
	for i := 0; i < b.N; i++ {
		res := bench.Fig4(base.Stats, nil)
		crossover = res.TabPFNCrossover
		if i == b.N-1 {
			b.Log("\n" + res.Render())
		}
	}
	b.ReportMetric(crossover, "tabpfn-crossover-preds")
}

// BenchmarkFig5 regenerates Figure 5: accuracy and execution energy of
// CAML and AutoGluon across 1-8 cores.
func BenchmarkFig5(b *testing.B) {
	cfg := benchConfig(b)
	cfg.Budgets = []time.Duration{10 * time.Second, time.Minute}
	for i := 0; i < b.N; i++ {
		res := bench.Fig5(cfg, []int{1, 2, 4, 8})
		if i == b.N-1 {
			b.Log("\n" + res.Render())
			// Headline check values: CAML 8-core/1-core energy ratio
			// (paper: up to 2.7x).
			var caml1, caml8 float64
			for _, c := range res.Cells {
				if c.System == "CAML" && c.Budget == time.Minute {
					switch c.Cores {
					case 1:
						caml1 = c.ExecKWh
					case 8:
						caml8 = c.ExecKWh
					}
				}
			}
			if caml1 > 0 {
				b.ReportMetric(caml8/caml1, "caml-8core-energy-ratio")
			}
		}
	}
}

// BenchmarkFig6 regenerates Figure 6: inference-time-constrained CAML and
// inference-optimized AutoGluon.
func BenchmarkFig6(b *testing.B) {
	cfg := benchConfig(b)
	cfg.Budgets = []time.Duration{30 * time.Second, time.Minute}
	for i := 0; i < b.N; i++ {
		res := bench.Fig6(cfg, nil)
		if i == b.N-1 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkFig7 regenerates Figure 7: the development stage. It runs a
// reduced tuning pass and compares CAML(tuned) against the fig3 baseline.
func BenchmarkFig7(b *testing.B) {
	cfg := benchConfig(b)
	base := fig3Result(b)
	for i := 0; i < b.N; i++ {
		res := bench.Fig7(cfg, benchMetaOpts(), base.Stats)
		if i == b.N-1 {
			b.Log("\n" + res.Render())
			if res.Dev != nil {
				b.ReportMetric(res.Dev.DevKWh, "dev-kWh")
			}
			if res.AmortizationRuns > 0 {
				b.ReportMetric(float64(res.AmortizationRuns), "amortization-runs")
			}
		}
	}
}

// BenchmarkFig8 exercises the guideline decision procedure.
func BenchmarkFig8(b *testing.B) {
	tasks := []Task{
		{WeeklyClusterAccess: true, PlannedExecutions: 2000, SearchBudget: 5 * time.Minute},
		{SearchBudget: 5 * time.Second, Classes: 4, GPUAvailable: true},
		{SearchBudget: time.Minute, Priority: PriorityFastInference},
		{SearchBudget: time.Minute, Priority: PriorityAccuracy},
		{SearchBudget: time.Minute, Priority: PriorityPareto},
	}
	for i := 0; i < b.N; i++ {
		for _, task := range tasks {
			if rec := Recommend(task); rec.SystemName == "" {
				b.Fatal("empty recommendation")
			}
		}
	}
}

// BenchmarkTable3 regenerates Table 3: GPU vs CPU-only quotients for
// AutoGluon and TabPFN on the T4 testbed.
func BenchmarkTable3(b *testing.B) {
	cfg := benchConfig(b)
	cfg.Datasets = cfg.Datasets[:3]
	for i := 0; i < b.N; i++ {
		res := bench.Table3(cfg)
		if i == b.N-1 {
			b.Log("\n" + res.Render())
			for _, row := range res.Rows {
				if row.System == "TabPFN" {
					b.ReportMetric(row.InferTime, "tabpfn-gpu-infer-time-ratio")
					b.ReportMetric(row.InferEnergy, "tabpfn-gpu-infer-energy-ratio")
				}
			}
		}
	}
}

// BenchmarkTable4 regenerates Table 4: the cost of one trillion
// predictions per system.
func BenchmarkTable4(b *testing.B) {
	base := fig3Result(b)
	for i := 0; i < b.N; i++ {
		res := bench.Table4(base.Stats)
		if i == b.N-1 {
			b.Log("\n" + res.Render())
			if len(res.Rows) > 0 {
				b.ReportMetric(res.Rows[0].EnergyKWh, "worst-system-kWh")
			}
		}
	}
}

// BenchmarkTable5 regenerates Table 5: tuned AutoML system parameters per
// search budget (reduced tuning pass).
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := benchMetaOpts()
		opts.Budget = 30 * time.Second
		dev, err := metaopt.Optimize(openml.MetaTrainSuite(), opts)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.Log("\n30s tuned parameters: " + bench.RenderCAMLParams(dev.Params))
			b.ReportMetric(dev.DevKWh, "dev-kWh")
		}
	}
}

// BenchmarkTable6 regenerates Table 6: overfitting counts (5min worse
// than 1min).
func BenchmarkTable6(b *testing.B) {
	base := fig3Result(b)
	for i := 0; i < b.N; i++ {
		res := bench.Table6(base.Records)
		if i == b.N-1 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkTable7 regenerates Table 7: actual execution time against the
// specified search time.
func BenchmarkTable7(b *testing.B) {
	base := fig3Result(b)
	for i := 0; i < b.N; i++ {
		res := bench.Table7(base.Stats, nil)
		if i == b.N-1 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkTable8 regenerates Table 8: the representative-dataset sweep of
// the development-stage optimizer.
func BenchmarkTable8(b *testing.B) {
	cfg := benchConfig(b)
	cfg.Datasets = cfg.Datasets[:2]
	for i := 0; i < b.N; i++ {
		res := bench.Table8(cfg, benchMetaOpts(), []int{2, 4})
		if i == b.N-1 {
			b.Log("\n" + res.Render())
		}
	}
}

// BenchmarkTable9 regenerates Table 9: the BO-iteration sweep of the
// development-stage optimizer.
func BenchmarkTable9(b *testing.B) {
	cfg := benchConfig(b)
	cfg.Datasets = cfg.Datasets[:2]
	for i := 0; i < b.N; i++ {
		res := bench.Table9(cfg, benchMetaOpts(), []int{4, 8})
		if i == b.N-1 {
			b.Log("\n" + res.Render())
		}
	}
}
