package greenautoml

// Ablation benchmarks: isolate the design choices the study credits for
// each system's profile by toggling them on otherwise identical
// configurations. Run with -v to see the deltas.

import (
	"math/rand/v2"
	"testing"
	"time"

	"repro/internal/automl"
	"repro/internal/bench"
	"repro/internal/openml"
)

// ablationConfig uses a few mid-size datasets where search budgets bind.
func ablationConfig(tb testing.TB, budget time.Duration) bench.Config {
	names := []string{"adult", "higgs", "segment", "mfeat-factors"}
	specs := make([]openml.Spec, 0, len(names))
	for _, n := range names {
		s, ok := openml.ByName(n)
		if !ok {
			tb.Fatalf("dataset %s missing", n)
		}
		specs = append(specs, s)
	}
	return bench.Config{
		Datasets: specs,
		Budgets:  []time.Duration{budget},
		Seeds:    2,
	}
}

// meanScore aggregates one system's mean balanced accuracy from a grid.
func meanScore(stats []bench.CellStats, system string) float64 {
	for _, s := range stats {
		if s.Key.System == system {
			return s.Score.Mean
		}
	}
	return 0
}

// runAblation runs two system variants on the same grid and reports both
// scores.
func runAblation(b *testing.B, budget time.Duration, variantA, variantB automl.System) (scoreA, scoreB float64) {
	cfg := ablationConfig(b, budget)
	records := bench.RunGrid([]automl.System{variantA, variantB}, cfg)
	stats := bench.Aggregate(records, benchAblRNG())
	return meanScore(stats, variantA.Name()), meanScore(stats, variantB.Name())
}

// BenchmarkAblationIncrementalTraining isolates CAML's successive-halving
// incremental training: at a 10-second budget it is what lets CAML finish
// any evaluation at all on large datasets (paper §3.2: "CAML's execution
// shows higher energy efficiency for small search times ... because it
// leverages successive halving").
func BenchmarkAblationIncrementalTraining(b *testing.B) {
	withParams := automl.DefaultCAMLParams()
	withoutParams := automl.DefaultCAMLParams()
	withoutParams.Incremental = false
	for i := 0; i < b.N; i++ {
		with, without := runAblation(b, 10*time.Second,
			&automl.CAML{Params: withParams, Label: "CAML(incremental)"},
			&automl.CAML{Params: withoutParams, Label: "CAML(full-fit)"})
		if i == b.N-1 {
			b.Logf("10s budget: incremental %.4f vs full-fit %.4f balanced accuracy", with, without)
			b.ReportMetric(with, "incremental-bacc")
			b.ReportMetric(without, "fullfit-bacc")
		}
	}
}

// BenchmarkAblationWarmStart isolates auto-sklearn 2's meta-learned
// warm-start portfolio against version 1's random initialization at the
// smallest budget both support (paper §2.3: "the warm starting approach
// through meta-learning ... is more efficient").
func BenchmarkAblationWarmStart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		v2, v1 := runAblation(b, 30*time.Second, automl.NewAutoSklearn2(), automl.NewAutoSklearn1())
		if i == b.N-1 {
			b.Logf("30s budget: warm-started ASKL2 %.4f vs random-init ASKL1 %.4f", v2, v1)
			b.ReportMetric(v2, "warmstart-bacc")
			b.ReportMetric(v1, "random-init-bacc")
		}
	}
}

// BenchmarkAblationRandomValSplit isolates the tuned CAML's per-iteration
// validation reshuffling, the paper's §3.7 anti-overfitting choice.
func BenchmarkAblationRandomValSplit(b *testing.B) {
	onParams := automl.DefaultTunedParams(time.Minute)
	offParams := automl.DefaultTunedParams(time.Minute)
	offParams.RandomValSplit = false
	for i := 0; i < b.N; i++ {
		on, off := runAblation(b, time.Minute,
			&automl.CAML{Params: onParams, Label: "CAML(reshuffle)"},
			&automl.CAML{Params: offParams, Label: "CAML(fixed-val)"})
		if i == b.N-1 {
			b.Logf("1min budget: reshuffled validation %.4f vs fixed %.4f", on, off)
			b.ReportMetric(on, "reshuffle-bacc")
			b.ReportMetric(off, "fixed-val-bacc")
		}
	}
}

// BenchmarkAblationUpfrontSampling isolates the tuning process's
// always-selected upfront sampling knob (paper §3.7: "this
// search-time-specific sampling step is not implemented by any AutoML
// system").
func BenchmarkAblationUpfrontSampling(b *testing.B) {
	onParams := automl.DefaultTunedParams(10 * time.Second)
	offParams := automl.DefaultTunedParams(10 * time.Second)
	offParams.SampleRows = 0
	for i := 0; i < b.N; i++ {
		on, off := runAblation(b, 10*time.Second,
			&automl.CAML{Params: onParams, Label: "CAML(sampled)"},
			&automl.CAML{Params: offParams, Label: "CAML(all-rows)"})
		if i == b.N-1 {
			b.Logf("10s budget: upfront sampling %.4f vs all rows %.4f", on, off)
			b.ReportMetric(on, "sampled-bacc")
			b.ReportMetric(off, "allrows-bacc")
		}
	}
}

// BenchmarkAblationStacking isolates AutoGluon's second stacking layer by
// comparing the default preset against a bag-only run at the same budget.
// Stacking is the paper's explanation for both AutoGluon's accuracy and
// its order-of-magnitude inference cost (Observation O1).
func BenchmarkAblationStacking(b *testing.B) {
	cfg := ablationConfig(b, time.Minute)
	for i := 0; i < b.N; i++ {
		records := bench.RunGrid([]automl.System{
			automl.NewAutoGluon(),
			automl.NewAutoGluonFastInference(),
		}, cfg)
		stats := bench.Aggregate(records, benchAblRNG())
		if i == b.N-1 {
			full := meanScore(stats, "AutoGluon")
			fast := meanScore(stats, "AutoGluon(fast-infer)")
			var fullInfer, fastInfer float64
			for _, s := range stats {
				switch s.Key.System {
				case "AutoGluon":
					fullInfer = s.InferKWhPerInst
				case "AutoGluon(fast-infer)":
					fastInfer = s.InferKWhPerInst
				}
			}
			b.Logf("1min: full stack %.4f bacc / %.3g kWh-inst vs refit %.4f / %.3g",
				full, fullInfer, fast, fastInfer)
			b.ReportMetric(full, "stack-bacc")
			b.ReportMetric(fast, "refit-bacc")
			if fastInfer > 0 {
				b.ReportMetric(fullInfer/fastInfer, "stack-infer-cost-ratio")
			}
		}
	}
}

func benchAblRNG() *rand.Rand { return rand.New(rand.NewPCG(0xab1a, 0x7)) }
