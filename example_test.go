package greenautoml_test

import (
	"fmt"
	"time"

	greenautoml "repro"
)

// ExampleRecommend walks the paper's Figure 8 guideline for three typical
// situations.
func ExampleRecommend() {
	// An AutoML-as-a-service provider: development compute available,
	// thousands of runs planned.
	service := greenautoml.Recommend(greenautoml.Task{
		WeeklyClusterAccess: true,
		PlannedExecutions:   5000,
		SearchBudget:        5 * time.Minute,
	})
	fmt.Println(service.SystemName)

	// An analyst exploring a small dataset ad hoc, GPU at hand.
	adhoc := greenautoml.Recommend(greenautoml.Task{
		SearchBudget: 5 * time.Second,
		Classes:      3,
		GPUAvailable: true,
	})
	fmt.Println(adhoc.SystemName)

	// A fraud-detection deployment: millions of predictions, inference
	// energy dominates.
	fraud := greenautoml.Recommend(greenautoml.Task{
		SearchBudget: time.Minute,
		Priority:     greenautoml.PriorityFastInference,
	})
	fmt.Println(fraud.SystemName)

	// Output:
	// CAML(tuned)
	// TabPFN
	// FLAML
}

// ExampleCO2Kg reproduces a cell of the paper's Table 4: TabPFN's 404,649
// kWh for a trillion predictions at Germany's grid intensity.
func ExampleCO2Kg() {
	fmt.Printf("%.0f kg CO2\n", greenautoml.CO2Kg(404649))
	// Output:
	// 89832 kg CO2
}

// ExampleDataset shows the synthetic replica of an AMLB task.
func ExampleDataset() {
	ds := greenautoml.Dataset("credit-g", 1)
	train, test := greenautoml.Split(ds, 2)
	fmt.Println(ds.Classes, "classes;", train.Rows(), "train rows;", test.Rows(), "test rows")
	// Output:
	// 2 classes; 66 train rows; 34 test rows
}
