// Package greenautoml reproduces the study "How Green is AutoML for
// Tabular Data?" (Neutatz, Lindauer, Abedjan — EDBT 2025) as a
// self-contained Go library.
//
// The package is the public facade over the internal building blocks:
//
//   - seven AutoML systems re-implemented from their published
//     architectures (AutoGluon, AutoSklearn 1 & 2, FLAML, TabPFN, TPOT,
//     CAML) plus the paper's development-stage-tuned CAML;
//   - a CodeCarbon-equivalent energy meter over a virtual clock and an
//     explicit hardware power model (the paper's two testbeds ship as
//     presets);
//   - deterministic synthetic replicas of the 39 AMLB benchmark datasets
//     and the 124 binary meta-train datasets;
//   - the benchmark harness regenerating every figure and table of the
//     paper's evaluation;
//   - the Figure 8 guideline as an executable recommendation function.
//
// Quick start:
//
//	ds := greenautoml.Dataset("adult", 1)
//	train, test := greenautoml.Split(ds, 7)
//	meter := greenautoml.NewMeter(greenautoml.CPUTestbed(), 1)
//	result, err := greenautoml.CAML().Fit(train, greenautoml.Options{
//		Budget: 30 * time.Second,
//		Meter:  meter,
//		Seed:   42,
//	})
//	// result.Predict(test, meter) charges inference energy to the meter.
package greenautoml

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/automl"
	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/metaopt"
	"repro/internal/metrics"
	"repro/internal/openml"
	"repro/internal/pipeline"
	"repro/internal/tabular"
)

// Re-exported core types. The facade aliases rather than wraps so that
// advanced users keep full access to the underlying APIs.
type (
	// System is one AutoML system under study.
	System = automl.System
	// Options configure one AutoML execution.
	Options = automl.Options
	// Result is the outcome of one AutoML execution.
	Result = automl.Result
	// Meter tracks energy over virtual time on a modelled machine.
	Meter = energy.Meter
	// Machine models a hardware testbed.
	Machine = hw.Machine
	// Table carries a dataset in columnar form.
	Table = tabular.Frame
	// View is a zero-copy row subset of a Table; fit and predict
	// consume views.
	View = tabular.View
	// EnergyReport is a per-stage energy snapshot with CO₂/cost
	// conversions.
	EnergyReport = energy.Report
)

// Stage constants for energy accounting.
const (
	StageDevelopment = energy.Development
	StageExecution   = energy.Execution
	StageInference   = energy.Inference
)

// System constructors (paper §2.2 lineup).
var (
	// AutoGluon builds the ensembling-centric system (bagging,
	// stacking, Caruana weighting).
	AutoGluon = func() System { return automl.NewAutoGluon() }
	// AutoGluonFastInference builds the inference-optimized preset.
	AutoGluonFastInference = func() System { return automl.NewAutoGluonFastInference() }
	// AutoSklearn1 builds auto-sklearn with random initialization.
	AutoSklearn1 = func() System { return automl.NewAutoSklearn1() }
	// AutoSklearn2 builds auto-sklearn 2 with meta-learned warm starts.
	AutoSklearn2 = func() System { return automl.NewAutoSklearn2() }
	// FLAML builds the cost-frugal searcher.
	FLAML = func() System { return automl.NewFLAML() }
	// TabPFN builds the zero-shot prior-fitted network.
	TabPFN = func() System { return automl.NewTabPFN() }
	// TPOT builds the genetic-programming searcher.
	TPOT = func() System { return automl.NewTPOT() }
	// CAML builds the constraint-aware system with default parameters.
	CAML = func() System { return automl.NewCAML() }
	// ZeroShot builds the zero-shot portfolio system: a fixed,
	// meta-learned sequence of pipeline configurations trained without
	// any per-dataset search (the evaluation repository's system).
	ZeroShot = func() System { return automl.NewZeroShot() }
)

// ZeroShotPortfolio builds the zero-shot system over a custom portfolio
// — typically one meta-learned from an evaluation repository.
func ZeroShotPortfolio(portfolio []pipeline.Config) System {
	return automl.NewZeroShotPortfolio(portfolio)
}

// TunedCAML returns CAML configured with development-stage-tuned
// parameters for the given search budget (paper §3.7). Run Tune for a real
// tuning pass; this uses the published Table 5 presets.
func TunedCAML(budget time.Duration) System {
	return automl.NewTunedCAML(automl.DefaultTunedParams(budget))
}

// ConstrainedCAML returns CAML with a per-instance inference-time
// constraint (paper §3.4).
func ConstrainedCAML(inferenceLimit time.Duration) System {
	params := automl.DefaultCAMLParams()
	params.InferenceLimit = inferenceLimit
	return &automl.CAML{Params: params, Label: fmt.Sprintf("CAML(c=%s)", inferenceLimit)}
}

// CPUTestbed returns the paper's 28-core Xeon Gold 6132 machine model.
func CPUTestbed() *Machine { return hw.XeonGold6132() }

// GPUTestbed returns the paper's 8-core + NVIDIA T4 machine model.
func GPUTestbed() *Machine { return hw.T4Machine() }

// NewMeter creates an energy meter on the given machine with the given
// allotted core count.
func NewMeter(machine *Machine, cores int) *Meter { return energy.NewMeter(machine, cores) }

// Dataset generates the synthetic replica of the named AMLB dataset
// (paper Table 2) at the default scale. It panics on unknown names; use
// DatasetNames for the list.
func Dataset(name string, seed uint64) *Table {
	spec, ok := openml.ByName(name)
	if !ok {
		panic(fmt.Sprintf("greenautoml: unknown dataset %q", name))
	}
	return openml.Generate(spec, openml.DefaultScale(), seed)
}

// DatasetNames lists the 39 benchmark dataset names of paper Table 2.
func DatasetNames() []string {
	specs := openml.Suite()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// Split produces the paper's 66/34 stratified train/test split as
// zero-copy views over the table.
func Split(ds *Table, seed uint64) (train, test View) {
	rng := rand.New(rand.NewPCG(seed, 0x511))
	return ds.All().TrainTestSplit(rng)
}

// BalancedAccuracy is the study's predictive metric: mean per-class
// recall.
func BalancedAccuracy(yTrue, yPred []int, classes int) float64 {
	return metrics.BalancedAccuracy(yTrue, yPred, classes)
}

// CO2Kg converts kWh to kilograms of CO₂ at the paper's German grid
// intensity (0.222 kg/kWh).
func CO2Kg(kwh float64) float64 { return energy.CO2Kg(kwh) }

// CostEUR converts kWh to euros at the paper's assumed European price
// (0.20 €/kWh).
func CostEUR(kwh float64) float64 { return energy.CostEUR(kwh) }

// TuneOptions configure a development-stage tuning pass.
type TuneOptions = metaopt.Options

// Tune runs the paper's development-stage optimization (§2.5): k-means
// representative-dataset selection over the 124 binary meta-train
// datasets, Bayesian optimization over CAML's system parameters, median
// pruning. The returned system is CAML(tuned); the report carries the
// development energy that must amortize (paper Fig. 7).
func Tune(opts TuneOptions) (System, *metaopt.Result, error) {
	res, err := metaopt.Optimize(openml.MetaTrainSuite(), opts)
	if err != nil {
		return nil, nil, err
	}
	return automl.NewTunedCAML(res.Params), res, nil
}
