// Development-stage tuning: invest energy once in optimizing the AutoML
// system's own parameters, then reap cheaper and better executions — the
// paper's §2.5/§3.7 experiment and Observation O2's second half: the
// investment amortizes only when the tuned system runs often (885
// executions at paper scale).
package main

import (
	"fmt"
	"log"
	"time"

	greenautoml "repro"
)

func main() {
	const budget = 10 * time.Second

	// A reduced tuning pass (the paper uses top-20 datasets and 300 BO
	// iterations; this example trims both to stay interactive).
	tuned, dev, err := greenautoml.Tune(greenautoml.TuneOptions{
		Budget:         budget,
		TopK:           5,
		Iterations:     10,
		RunsPerDataset: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("development stage: %.4f kWh over %s of compute (%d trials, %d pruned)\n",
		dev.DevKWh, dev.DevTime.Round(time.Second), dev.Trials, dev.Pruned)
	fmt.Printf("representative datasets: %v\n\n", dev.Representatives)

	// Compare tuned vs default CAML on unseen benchmark datasets.
	var tunedTotal, defaultTotal, tunedKWh, defaultKWh float64
	datasets := []string{"credit-g", "phoneme", "sylvine"}
	for _, name := range datasets {
		ds := greenautoml.Dataset(name, 17)
		train, test := greenautoml.Split(ds, 23)

		for _, entry := range []struct {
			label string
			sys   greenautoml.System
			acc   *float64
			kwh   *float64
		}{
			{"tuned", tuned, &tunedTotal, &tunedKWh},
			{"default", greenautoml.CAML(), &defaultTotal, &defaultKWh},
		} {
			meter := greenautoml.NewMeter(greenautoml.CPUTestbed(), 1)
			res, err := entry.sys.Fit(train, greenautoml.Options{Budget: budget, Meter: meter, Seed: 3})
			if err != nil {
				log.Fatal(err)
			}
			pred, err := res.Predict(test, meter)
			if err != nil {
				log.Fatal(err)
			}
			acc := greenautoml.BalancedAccuracy(test.LabelsInto(nil), pred, test.Classes())
			*entry.acc += acc
			*entry.kwh += res.ExecKWh
			fmt.Printf("%-10s %-8s bal.acc %.4f  exec %.6f kWh\n", name, entry.label, acc, res.ExecKWh)
		}
	}

	n := float64(len(datasets))
	fmt.Printf("\nmean balanced accuracy: tuned %.4f vs default %.4f\n", tunedTotal/n, defaultTotal/n)
	fmt.Printf("mean execution energy:  tuned %.6f vs default %.6f kWh\n", tunedKWh/n, defaultKWh/n)
	if saving := (defaultKWh - tunedKWh) / n; saving > 0 {
		fmt.Printf("development energy amortizes after ~%d executions (paper: 885 at full scale)\n",
			dev.AmortizationRuns(saving))
	} else {
		fmt.Println("at this reduced tuning scale the execution saving is not yet positive — run with more iterations/datasets")
	}
}
