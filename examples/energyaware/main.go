// Energy-aware deployment: use CAML's first-class inference-time
// constraint to trade predictive performance for inference energy —
// the paper's §3.4 / Figure 6 experiment, and Observation O3: constraints
// let the user cut inference energy (up to 69% in the paper) for a
// bounded accuracy loss.
package main

import (
	"fmt"
	"log"
	"time"

	greenautoml "repro"
)

func main() {
	ds := greenautoml.Dataset("mfeat-factors", 9)
	train, test := greenautoml.Split(ds, 13)

	type variant struct {
		name string
		sys  greenautoml.System
	}
	variants := []variant{
		{"CAML (unconstrained)", greenautoml.CAML()},
		{"CAML c=1ms", greenautoml.ConstrainedCAML(time.Millisecond)},
		{"CAML c=300us", greenautoml.ConstrainedCAML(300 * time.Microsecond)},
		{"CAML c=100us", greenautoml.ConstrainedCAML(100 * time.Microsecond)},
		{"AutoGluon", greenautoml.AutoGluon()},
		{"AutoGluon (refit)", greenautoml.AutoGluonFastInference()},
	}

	fmt.Println("inference-configured variants (1 minute search, mfeat-factors):")
	var baseline float64
	for i, v := range variants {
		meter := greenautoml.NewMeter(greenautoml.CPUTestbed(), 1)
		res, err := v.sys.Fit(train, greenautoml.Options{
			Budget: time.Minute,
			Meter:  meter,
			Seed:   21,
		})
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		pred, err := res.Predict(test, meter)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		acc := greenautoml.BalancedAccuracy(test.LabelsInto(nil), pred, test.Classes())
		perInst := meter.Tracker().KWh(greenautoml.StageInference) / float64(test.Rows())
		saving := ""
		if i == 0 {
			baseline = perInst
		} else if baseline > 0 && perInst < baseline {
			saving = fmt.Sprintf("  (%.0f%% less inference energy than unconstrained CAML)", 100*(1-perInst/baseline))
		}
		fmt.Printf("  %-22s bal.acc %.4f  inference %.3g kWh/instance%s\n", v.name, acc, perInst, saving)
	}
	fmt.Println("\nDecisions in the execution stage determine the energy of every later prediction (paper §3.4).")
}
