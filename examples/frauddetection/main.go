// Fraud detection: an inference-heavy workload. The paper's motivating
// example — "running a fraud detection model on millions of bank
// transactions might require a focus on inference energy consumption" —
// and its Figure 4 analysis: which system minimizes *total* energy
// (execution + N × inference) as the prediction volume grows?
package main

import (
	"fmt"
	"log"
	"time"

	greenautoml "repro"
)

func main() {
	// bank-marketing stands in for a transaction-classification task.
	ds := greenautoml.Dataset("bank-marketing", 3)
	train, test := greenautoml.Split(ds, 11)

	type candidate struct {
		name string
		sys  greenautoml.System
	}
	candidates := []candidate{
		{"TabPFN", greenautoml.TabPFN()},
		{"FLAML", greenautoml.FLAML()},
		{"CAML", greenautoml.CAML()},
		{"AutoGluon", greenautoml.AutoGluon()},
	}

	type measured struct {
		name         string
		accuracy     float64
		execKWh      float64
		inferPerInst float64
	}
	var rows []measured
	for _, c := range candidates {
		meter := greenautoml.NewMeter(greenautoml.CPUTestbed(), 1)
		res, err := c.sys.Fit(train, greenautoml.Options{
			Budget: time.Minute,
			Meter:  meter,
			Seed:   5,
		})
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		pred, err := res.Predict(test, meter)
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		rows = append(rows, measured{
			name:         c.name,
			accuracy:     greenautoml.BalancedAccuracy(test.LabelsInto(nil), pred, test.Classes()),
			execKWh:      meter.Tracker().KWh(greenautoml.StageExecution),
			inferPerInst: meter.Tracker().KWh(greenautoml.StageInference) / float64(test.Rows()),
		})
	}

	fmt.Println("per-system profile (1 minute search):")
	for _, r := range rows {
		fmt.Printf("  %-10s bal.acc %.4f  exec %.6f kWh  inference %.3g kWh/transaction\n",
			r.name, r.accuracy, r.execKWh, r.inferPerInst)
	}

	fmt.Println("\ntotal energy by daily transaction volume (kWh):")
	volumes := []float64{1e3, 1e4, 1e5, 1e6, 1e7}
	fmt.Printf("  %-10s", "system")
	for _, v := range volumes {
		fmt.Printf("  %10.0e", v)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("  %-10s", r.name)
		for _, v := range volumes {
			fmt.Printf("  %10.4f", r.execKWh+v*r.inferPerInst)
		}
		fmt.Println()
	}

	// Find where TabPFN stops being the cheapest option (paper: ~26k
	// predictions at full scale).
	var tabpfn, cheapest *measured
	for i := range rows {
		if rows[i].name == "TabPFN" {
			tabpfn = &rows[i]
		} else if cheapest == nil || rows[i].inferPerInst < cheapest.inferPerInst {
			cheapest = &rows[i]
		}
	}
	if tabpfn != nil && cheapest != nil && tabpfn.inferPerInst > cheapest.inferPerInst {
		crossover := (cheapest.execKWh - tabpfn.execKWh) / (tabpfn.inferPerInst - cheapest.inferPerInst)
		fmt.Printf("\nTabPFN is the greenest choice below ~%.0f predictions; beyond that, %s wins (paper Observation O2).\n",
			crossover, cheapest.name)
	}
}
