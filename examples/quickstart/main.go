// Quickstart: run one AutoML system on a benchmark dataset under an
// energy tracker and report accuracy alongside the consumed energy —
// the study's basic measurement loop (paper §3.2).
package main

import (
	"fmt"
	"log"
	"time"

	greenautoml "repro"
)

func main() {
	// The "adult" census dataset (48842 rows, 14 features in the
	// original; generated here as a scaled synthetic replica).
	ds := greenautoml.Dataset("adult", 1)
	train, test := greenautoml.Split(ds, 7)

	// A meter on the paper's 28-core Xeon testbed, restricted to one
	// core (the paper's single-core measurement setup).
	meter := greenautoml.NewMeter(greenautoml.CPUTestbed(), 1)

	system := greenautoml.CAML()
	result, err := system.Fit(train, greenautoml.Options{
		Budget: 30 * time.Second,
		Meter:  meter,
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}

	pred, err := result.Predict(test, meter)
	if err != nil {
		log.Fatal(err)
	}
	acc := greenautoml.BalancedAccuracy(test.LabelsInto(nil), pred, test.Classes())

	report := meter.Tracker().Snapshot()
	fmt.Printf("system:             %s\n", result.System)
	fmt.Printf("pipelines evaluated: %d\n", result.Evaluated)
	fmt.Printf("actual search time: %s (budget 30s)\n", result.ExecTime.Round(10*time.Millisecond))
	fmt.Printf("balanced accuracy:  %.4f\n", acc)
	fmt.Printf("execution energy:   %.6f kWh\n", report.ExecutionKWh)
	fmt.Printf("inference energy:   %.9f kWh for %d predictions\n", report.InferenceKWh, test.Rows())
	fmt.Printf("total CO2:          %.6f kg (German grid)\n", report.CO2Kg())
	fmt.Printf("total cost:         %.6f EUR\n", report.CostEUR())
}
