package serve

import (
	"sync"
	"time"
)

// Server adapts the deterministic Engine to concurrent callers in wall
// time: a mutex serializes engine access, a single real timer fires the
// batch window, and Predict blocks its caller until the engine resolves
// the request. This file is the serving layer's only bridge to the wall
// clock — the engine underneath never consults it, which is what keeps
// every robustness behavior testable on virtual time.
type Server struct {
	mu       sync.Mutex
	eng      *Engine
	start    time.Time
	waiters  map[uint64]chan Response
	nextID   uint64
	timer    *time.Timer
	timerGen uint64
	closed   bool
}

// NewServer wraps an engine for concurrent wall-time serving.
func NewServer(eng *Engine) *Server {
	s := &Server{eng: eng, waiters: make(map[uint64]chan Response)}
	//greenlint:allow wallclock the serving daemon maps real arrivals onto the engine's virtual timeline; this anchor is that mapping
	s.start = time.Now()
	return s
}

// now is the wall instant on the engine's timeline.
func (s *Server) now() time.Duration {
	//greenlint:allow wallclock the serving daemon maps real arrivals onto the engine's virtual timeline
	return time.Since(s.start)
}

// Predict submits one request and blocks until it resolves. Every call
// returns a response with exactly one Outcome — shed and degraded
// refusals return immediately, admitted requests wait for their batch.
func (s *Server) Predict(row []float64, deadline time.Duration) Response {
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	ch := make(chan Response, 1)
	s.waiters[id] = ch
	req := Request{ID: id, Row: row, Arrival: s.now()}
	if deadline > 0 {
		req.Deadline = req.Arrival + deadline
	}
	s.route(s.eng.Submit(req))
	s.armLocked()
	s.mu.Unlock()
	return <-ch
}

// Reload atomically swaps the served model. In-flight requests keep
// their place in the queue and predict with the new model when their
// batch flushes; no request is dropped.
func (s *Server) Reload(m *Model) {
	s.mu.Lock()
	s.eng.Swap(m)
	s.mu.Unlock()
}

// Stats snapshots the engine.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Stats()
}

// Drain stops admission, flushes every queued batch and resolves every
// blocked caller — the SIGTERM path. Predict calls arriving after Drain
// resolve immediately as shed.
func (s *Server) Drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.timerGen++ // invalidate any in-flight timer callback
	if s.timer != nil {
		s.timer.Stop()
	}
	s.route(s.eng.Drain(s.now()))
}

// route delivers resolutions to their blocked callers. Responses whose
// caller is unknown (load-generator traffic submitted directly to the
// engine) are dropped; the engine has already journaled and charged
// them.
func (s *Server) route(resps []Response) {
	for _, r := range resps {
		if ch, ok := s.waiters[r.ID]; ok {
			delete(s.waiters, r.ID)
			ch <- r
		}
	}
}

// armLocked schedules the wall timer for the engine's next due instant.
// Called with the mutex held after every engine interaction.
func (s *Server) armLocked() {
	if s.closed {
		return
	}
	for {
		due, ok := s.eng.nextEventAt()
		if !ok {
			return
		}
		delay := due - s.now()
		if delay > 0 {
			gen := s.timerGen + 1
			s.timerGen = gen
			if s.timer != nil {
				s.timer.Stop()
			}
			//greenlint:allow wallclock the batch-window timer is the one real-time trigger of the serving daemon, mirroring the watchdog's pinned pattern
			s.timer = time.AfterFunc(delay, func() { s.onTimer(gen) })
			return
		}
		// Already due: flush inline and look again.
		s.route(s.eng.AdvanceTo(s.now()))
	}
}

// onTimer is the batch-window expiry: advance the engine to the current
// wall instant and hand out whatever resolved.
func (s *Server) onTimer(gen uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen != s.timerGen || s.closed {
		return
	}
	s.route(s.eng.AdvanceTo(s.now()))
	s.armLocked()
}
