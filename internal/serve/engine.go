package serve

import (
	"fmt"
	"time"

	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/ml"
	"repro/internal/tabular"
)

// Config tunes the engine's robustness rails. The zero value is usable:
// every field has a serving-shaped default.
type Config struct {
	// QueueCap bounds the admission queue; requests arriving beyond it
	// are shed. Default 256.
	QueueCap int
	// BatchMax caps rows per predict batch. Default 32.
	BatchMax int
	// BatchWindow is how long the first queued request waits for
	// companions before its batch flushes. Default 2ms.
	BatchWindow time.Duration
	// PredictTimeout cuts off a predict batch whose virtual duration
	// exceeds it: the batch fails, the breaker counts it, and only the
	// truncated duration is charged. Default 250ms; negative disables.
	PredictTimeout time.Duration
	// BreakerThreshold is the consecutive-failure count that trips the
	// circuit breaker. Default 4.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before
	// half-open probing. Default 1s.
	BreakerCooldown time.Duration
	// Cores is the allotted CPU core count for predict work. Default 1.
	Cores int
}

func (c *Config) setDefaults() {
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 32
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.PredictTimeout == 0 {
		c.PredictTimeout = 250 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 4
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.Cores <= 0 {
		c.Cores = 1
	}
}

// Request is one prediction request on the virtual timeline.
type Request struct {
	// ID is the caller's correlation key, echoed on the response.
	ID uint64
	// Row is the feature vector to classify.
	Row []float64
	// Arrival is the absolute virtual instant the request arrives.
	Arrival time.Duration
	// Deadline is the absolute virtual instant after which the answer
	// is worthless; zero means none.
	Deadline time.Duration
}

// Response is the resolution of one request: exactly one Outcome, the
// prediction when there is one, and the energy charged for it.
type Response struct {
	ID      uint64
	Outcome Outcome
	// Class is the predicted class, or -1 when no prediction was made.
	Class int
	// Proba is the class distribution (the fallback tier answers with
	// the training priors); nil when no prediction was made.
	Proba []float64
	// Done is the virtual resolution instant; Latency is Done - Arrival.
	Done    time.Duration
	Latency time.Duration
	// Joules is the energy attributed to this request. Summing Joules
	// over every response in resolution order reproduces the tracker
	// total bit-exactly.
	Joules float64
	// Err describes the failure or refusal, empty for Served.
	Err string
}

// Stats is a point-in-time engine summary.
type Stats struct {
	Model        string
	Outcomes     [numOutcomes]int
	Batches      int
	BreakerTrips int
	Breaker      BreakerState
	QueueLen     int
	Now          time.Duration
	KWh          float64
}

// Submitted reports the total requests resolved so far.
func (s Stats) Submitted() int {
	n := 0
	for _, c := range s.Outcomes {
		n += c
	}
	return n
}

// Count reports the resolved-request count for one outcome.
func (s Stats) Count(o Outcome) int {
	if o >= numOutcomes {
		return 0
	}
	return s.Outcomes[o]
}

// admissionCost is the bookkeeping FLOPs charged to a request that is
// resolved without predict work (shed, or expired before its batch ran):
// parsing, queue accounting, the refusal itself.
const admissionFLOPs = 4096

// Engine is the deterministic discrete-event serving core. It is NOT
// safe for concurrent use — Server provides the locked wall-time
// wrapper — and time only moves when the driver calls Submit, AdvanceTo
// or Drain with monotonically non-decreasing instants.
type Engine struct {
	cfg     Config
	machine *hw.Machine
	tracker *energy.Tracker
	journal *Journal

	model     *Model
	perRowDur time.Duration
	breaker   *Breaker

	now       time.Duration
	busyUntil time.Duration
	flushAt   time.Duration
	queue     []Request
	draining  bool

	batches int
	trips   int // accumulated across swapped-out breakers
	stats   Stats
}

// NewEngine builds an engine serving model m on the given machine model.
func NewEngine(m *Model, machine *hw.Machine, cfg Config) *Engine {
	cfg.setDefaults()
	e := &Engine{
		cfg:     cfg,
		machine: machine,
		tracker: &energy.Tracker{},
	}
	e.install(m)
	return e
}

// Tracker exposes the engine's energy tracker (the conservation ledger's
// other half).
func (e *Engine) Tracker() *energy.Tracker { return e.tracker }

// Now reports the engine's current virtual instant.
func (e *Engine) Now() time.Duration { return e.now }

// SetJournal attaches a metering journal; every resolution is appended.
func (e *Engine) SetJournal(j *Journal) { e.journal = j }

// Swap atomically replaces the served model. Queued requests are not
// dropped: they predict with the new model when their batch flushes. The
// new model starts with a fresh, closed breaker.
func (e *Engine) Swap(m *Model) {
	e.install(m)
}

func (e *Engine) install(m *Model) {
	if e.breaker != nil {
		e.trips += e.breaker.Trips()
	}
	e.model = m
	e.perRowDur = e.costDuration(m.RowCost)
	e.breaker = newBreaker(e.cfg.BreakerThreshold, e.cfg.BreakerCooldown)
}

// Stats summarizes the engine at its current instant.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.Model = e.model.Name
	s.Batches = e.batches
	s.BreakerTrips = e.trips + e.breaker.Trips()
	s.Breaker = e.breaker.State(e.now)
	s.QueueLen = len(e.queue)
	s.Now = e.now
	s.KWh = e.tracker.TotalKWh()
	return s
}

// Submit advances the engine to the request's arrival instant and admits
// or refuses it. The returned responses are every request resolved by
// this call — batches that became due, plus this request if it was
// refused or short-circuited; admitted requests resolve in a later call.
func (e *Engine) Submit(req Request) []Response {
	out := e.AdvanceTo(req.Arrival)

	switch {
	case e.draining:
		out = append(out, e.resolveCheap(req, Shed, "draining"))
		return out
	case len(e.queue) >= e.cfg.QueueCap:
		out = append(out, e.resolveCheap(req, Shed, "queue full"))
		return out
	case e.breaker.State(e.now) == BreakerOpen:
		out = append(out, e.fallback(req, e.now))
		return out
	}
	if req.Deadline > 0 && req.Deadline < e.estimateDone(len(e.queue)+1) {
		out = append(out, e.resolveCheap(req, Shed, "deadline cannot survive the batch window"))
		return out
	}

	e.queue = append(e.queue, req)
	if len(e.queue) == 1 {
		e.flushAt = e.now + e.cfg.BatchWindow
	}
	if len(e.queue) >= e.cfg.BatchMax {
		// A full batch does not wait out the window.
		e.flushAt = e.now
		out = append(out, e.AdvanceTo(e.now)...)
	}
	return out
}

// AdvanceTo moves virtual time forward to t, flushing every batch that
// becomes due on the way, and returns the resolutions in order.
func (e *Engine) AdvanceTo(t time.Duration) []Response {
	var out []Response
	for len(e.queue) > 0 {
		ft := max(e.flushAt, e.busyUntil)
		if ft > t {
			break
		}
		out = append(out, e.flush(ft)...)
	}
	if t > e.now {
		e.now = t
	}
	return out
}

// Drain stops admission at instant t and flushes everything still
// queued, ignoring batch windows: the graceful-shutdown path. The
// journal, if any, is flushed afterwards.
func (e *Engine) Drain(t time.Duration) []Response {
	out := e.AdvanceTo(t)
	e.draining = true
	for len(e.queue) > 0 {
		out = append(out, e.flush(max(e.now, e.busyUntil))...)
	}
	if e.journal != nil {
		e.journal.Flush()
	}
	return out
}

// nextEventAt reports the instant the next queued batch becomes due;
// false when nothing is queued. The load generator uses it to interleave
// arrivals with resolutions deterministically.
func (e *Engine) nextEventAt() (time.Duration, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return max(e.flushAt, e.busyUntil), true
}

// estimateDone predicts when a request joining the queue now would
// resolve: the batch's flush instant (or the server freeing up) plus the
// per-row cost of everyone ahead of it.
func (e *Engine) estimateDone(batchRows int) time.Duration {
	start := e.flushAt
	if len(e.queue) == 0 {
		start = e.now + e.cfg.BatchWindow
	}
	start = max(start, e.busyUntil)
	return start + time.Duration(batchRows)*e.perRowDur
}

// flush runs one batch at instant ft and resolves its requests.
func (e *Engine) flush(ft time.Duration) []Response {
	e.now = ft
	n := min(len(e.queue), e.cfg.BatchMax)
	batch := e.queue[:n:n]
	e.queue = append([]Request(nil), e.queue[n:]...)
	if len(e.queue) > 0 {
		// The next batch starts as soon as the server frees up; it has
		// already waited its window.
		e.flushAt = ft
	}

	var out []Response
	alive := make([]Request, 0, len(batch))
	for _, r := range batch {
		if r.Deadline > 0 && r.Deadline < ft {
			// The deadline passed while queued: abandon before
			// spending predict work.
			out = append(out, e.resolveCheap(r, Expired, "deadline passed in queue"))
		} else {
			alive = append(alive, r)
		}
	}
	if len(alive) == 0 {
		return out
	}

	if e.breaker.State(ft) == BreakerOpen {
		// Tripped while these requests queued: the fallback tier
		// answers them.
		for _, r := range alive {
			out = append(out, e.fallback(r, ft))
		}
		return out
	}

	model := e.model
	rows := make([][]float64, len(alive))
	for i, r := range alive {
		rows[i] = r.Row
	}
	proba, cost, err := e.predict(model, tabular.FromRows(rows))
	e.batches++

	var d time.Duration
	if err != nil {
		// A panic usually destroys the cost report (the zero Cost);
		// the work still happened, so charge whichever is larger: the
		// partial report or the model's estimated spend for the batch.
		d = max(e.costDuration(cost), time.Duration(len(alive))*e.perRowDur)
	} else {
		d = e.costDuration(cost)
	}
	timedOut := e.cfg.PredictTimeout > 0 && d > e.cfg.PredictTimeout
	if timedOut {
		// The deadline guard killed the batch mid-predict; only the
		// truncated duration was spent.
		d = e.cfg.PredictTimeout
	}
	done := ft + d
	e.busyUntil = done
	joules := e.machine.Energy(d, e.cfg.Cores, false, false)
	share := joules / float64(len(alive))
	e.tracker.AddBusy(energy.Inference, d)

	switch {
	case err != nil:
		e.breaker.Fail(done)
		for _, r := range alive {
			out = append(out, e.resolve(r, Failed, err.Error(), share, -1, nil, done))
		}
	case timedOut:
		e.breaker.Fail(done)
		msg := fmt.Sprintf("predict exceeded the %v timeout", e.cfg.PredictTimeout)
		for _, r := range alive {
			out = append(out, e.resolve(r, Failed, msg, share, -1, nil, done))
		}
	default:
		e.breaker.OK(done)
		for i, r := range alive {
			if r.Deadline > 0 && r.Deadline < done {
				// The work was spent; the answer arrived too late
				// to be worth anything. Still charged.
				out = append(out, e.resolve(r, Expired, "deadline passed during predict", share, -1, nil, done))
				continue
			}
			p := proba[i]
			out = append(out, e.resolve(r, Served, "", share, argmax(p), p, done))
		}
	}
	return out
}

// predict runs the model over a columnar block, converting a predictor
// panic (the faults package's corruption model) into an error.
func (e *Engine) predict(m *Model, x tabular.View) (proba [][]float64, cost ml.Cost, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("predict panic: %v", r)
		}
	}()
	proba, cost = m.Pred.PredictProba(x)
	if len(proba) != x.Rows() {
		return nil, cost, fmt.Errorf("predict returned %d rows for %d inputs", len(proba), x.Rows())
	}
	return proba, cost, nil
}

// fallback resolves a request from the degraded tier: the majority class
// with the training priors, at the cost of a prior lookup.
func (e *Engine) fallback(r Request, at time.Duration) Response {
	m := e.model
	cost := ml.Cost{Generic: float64(admissionFLOPs + m.Classes)}
	joules := e.machine.Energy(e.costDuration(cost), e.cfg.Cores, false, false)
	return e.resolve(r, Degraded, "circuit breaker open; majority-class fallback", joules, m.Majority, m.Priors, at)
}

// resolveCheap resolves a request that consumed only admission
// bookkeeping, at the current instant.
func (e *Engine) resolveCheap(r Request, o Outcome, msg string) Response {
	cost := ml.Cost{Generic: admissionFLOPs}
	joules := e.machine.Energy(e.costDuration(cost), e.cfg.Cores, false, false)
	return e.resolve(r, o, msg, joules, -1, nil, e.now)
}

// resolve is the single exit point of the taxonomy: it charges the
// request's joules to the tracker (resolution order IS ledger order —
// the conservation invariant depends on it), counts the outcome, and
// journals the resolution.
func (e *Engine) resolve(r Request, o Outcome, msg string, joules float64, class int, proba []float64, done time.Duration) Response {
	e.tracker.AddJoules(energy.Inference, joules)
	e.stats.Outcomes[o]++
	resp := Response{
		ID:      r.ID,
		Outcome: o,
		Class:   class,
		Proba:   proba,
		Done:    done,
		Latency: done - r.Arrival,
		Joules:  joules,
		Err:     msg,
	}
	if e.journal != nil {
		e.journal.Append(&resp)
	}
	return resp
}

// costDuration converts predict FLOPs to virtual duration on the
// engine's machine and core allotment.
func (e *Engine) costDuration(c ml.Cost) time.Duration {
	var d time.Duration
	for _, w := range c.Works(0) {
		d += e.machine.Duration(w, e.cfg.Cores)
	}
	return d
}

func argmax(p []float64) int {
	best := 0
	for i, v := range p {
		if v > p[best] {
			best = i
		}
	}
	return best
}
