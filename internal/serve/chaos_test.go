package serve

// The chaos suite: serving under injected failure. Each test drives the
// deterministic engine through a failure scenario — predict panics and
// stalls from the faults taxonomy, artifact corruption on reload,
// kill-and-restart mid-batch — and pins the two invariants the package
// doc promises: every request resolves to exactly one outcome, and the
// per-response energy ledger sums bit-exactly to the tracker total.

import (
	"errors"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/artifact"
	"repro/internal/atomicio"
	"repro/internal/energy"
	"repro/internal/faults"
	"repro/internal/ml"
	"repro/internal/pipeline"
	"repro/internal/tabular"
)

// chaosFrame builds a small deterministic two-class training frame.
func chaosFrame(rows int) *tabular.Frame {
	rng := rand.New(rand.NewPCG(13, 13))
	f := tabular.NewFrame("chaos", rows, 3)
	f.Classes = 2
	f.Y = make([]int, rows)
	f.Kinds = []tabular.FeatureKind{tabular.Numeric, tabular.Numeric, tabular.Categorical}
	for i := 0; i < rows; i++ {
		y := i % 2
		f.Y[i] = y
		f.Cols[0][i] = float64(y) + 0.3*rng.NormFloat64()
		f.Cols[1][i] = -float64(y) + 0.3*rng.NormFloat64()
		f.Cols[2][i] = float64(i % 3)
	}
	return f
}

func chaosSpec() artifact.Spec {
	return artifact.Spec{
		Dataset:           "chaos",
		Models:            []string{"tree"},
		DataPreprocessors: true,
		ComplexityCaps:    map[string]float64{"tree": 0.8},
		Params:            pipeline.Config{"model": 0, "tree.max_depth": 4},
		Seed:              42,
		Train:             chaosFrame(80),
	}
}

// TestChaosRealArtifactEndToEnd serves a genuinely fitted pipeline from
// a saved artifact under heavy-tailed load with deadlines, then corrupts
// the artifact on disk and confirms the reload path refuses it while the
// running model keeps serving.
func TestChaosRealArtifactEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chaos.model")
	built, _, err := artifact.Build(chaosSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := artifact.Save(path, built); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := artifact.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	e := testEngine(t, nil, Config{BatchWindow: time.Millisecond, BatchMax: 16, QueueCap: 64})
	e.Swap(NewModel(loaded))
	rep := LoadGen{
		Rate: 4000, Requests: 300, Seed: 21,
		DeadlineFrac: 0.3, Deadline: 10 * time.Millisecond,
	}.Run(e, loaded.Spec.Train.All())

	if got := sumOutcomes(rep.Outcomes); got != 300 {
		t.Fatalf("outcomes sum to %d, want 300: %v", got, rep.Outcomes)
	}
	if rep.Outcomes[Served] == 0 {
		t.Fatalf("artifact-backed model served nothing: %v", rep.Outcomes)
	}
	if got := e.Tracker().Joules(energy.Inference); got != rep.LedgerJoules {
		t.Fatalf("ledger %v J, tracker %v J", rep.LedgerJoules, got)
	}

	// Corrupt the artifact on disk; the hot-reload path must refuse it
	// with the checksum taxonomy, and the engine keeps the old model.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := artifact.Load(path); !errors.Is(err, atomicio.ErrChecksum) {
		t.Fatalf("corrupt artifact load: %v, want checksum refusal", err)
	}
	// The refused reload leaves the in-memory model untouched: a fresh
	// engine epoch serving it still answers.
	e2 := testEngine(t, nil, Config{BatchWindow: time.Millisecond, BatchMax: 16, QueueCap: 64})
	e2.Swap(NewModel(loaded))
	resps := e2.Submit(Request{ID: 9000, Row: loaded.Spec.Train.All().Row(0, nil), Arrival: 0})
	resps = append(resps, e2.Drain(time.Second)...)
	if len(resps) != 1 || resps[0].Outcome != Served {
		t.Fatalf("old model stopped serving after refused reload: %v", resps)
	}
}

// faultyPredictor panics with the faults taxonomy for a window of
// predict calls, then recovers — a transient corrupt-model episode.
type faultyPredictor struct {
	inner    *scriptedPredictor
	badFrom  int
	badUntil int
	calls    int
}

func (p *faultyPredictor) PredictProba(x tabular.View) ([][]float64, ml.Cost) {
	call := p.calls
	p.calls++
	if call >= p.badFrom && call < p.badUntil {
		panic(&faults.Error{Kind: faults.PredictError, Site: "serve/chaos", Err: errors.New("injected corrupt model")})
	}
	return p.inner.PredictProba(x)
}

// TestChaosPanicStormBreakerRecovery runs load through a model whose
// predictor goes bad for a window of batches: the breaker trips, the
// fallback tier answers degraded, the half-open probe re-closes once the
// episode passes, and the ledger still conserves.
func TestChaosPanicStormBreakerRecovery(t *testing.T) {
	p := &faultyPredictor{inner: &scriptedPredictor{classes: 2}, badFrom: 2, badUntil: 10}
	e := testEngine(t, nil, Config{
		BatchWindow: time.Millisecond, BatchMax: 4, QueueCap: 64,
		BreakerThreshold: 3, BreakerCooldown: 5 * time.Millisecond,
	})
	e.Swap(&Model{Name: "flaky", Pred: p, Classes: 2, Majority: 1,
		Priors: []float64{0.25, 0.75}, RowCost: ml.Cost{Generic: rowFLOPs}})

	rep := LoadGen{Rate: 2000, Requests: 400, Seed: 17}.Run(e, loadSource())

	if got := sumOutcomes(rep.Outcomes); got != 400 {
		t.Fatalf("outcomes sum to %d, want 400: %v", got, rep.Outcomes)
	}
	if rep.Outcomes[Failed] == 0 {
		t.Fatalf("no failures during the bad window: %v", rep.Outcomes)
	}
	if rep.Outcomes[Degraded] == 0 {
		t.Fatalf("breaker never degraded: %v", rep.Outcomes)
	}
	if rep.Outcomes[Served] == 0 {
		t.Fatalf("breaker never recovered to serve: %v", rep.Outcomes)
	}
	st := e.Stats()
	if st.BreakerTrips == 0 {
		t.Fatal("breaker trip count is zero")
	}
	if st.Breaker != BreakerClosed {
		t.Fatalf("breaker ended %s, want closed after recovery", st.Breaker)
	}
	if got := e.Tracker().Joules(energy.Inference); got != rep.LedgerJoules {
		t.Fatalf("ledger %v J, tracker %v J", rep.LedgerJoules, got)
	}
}

// TestChaosStallStormBreakerTrips drives a model that wedges (the
// faults.Stall signature: enormous cost, no answer in time) and checks
// timeouts are charged, the breaker opens, and everything resolves.
func TestChaosStallStormBreakerTrips(t *testing.T) {
	p := &scriptedPredictor{classes: 2, failAt: func(int) string { return "stall" }}
	e := testEngine(t, p, Config{
		BatchWindow: time.Millisecond, BatchMax: 4, QueueCap: 32,
		PredictTimeout:   10 * time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: time.Second,
	})
	rep := LoadGen{Rate: 1000, Requests: 100, Seed: 23}.Run(e, loadSource())

	if got := sumOutcomes(rep.Outcomes); got != 100 {
		t.Fatalf("outcomes sum to %d, want 100: %v", got, rep.Outcomes)
	}
	if rep.Outcomes[Served] != 0 {
		t.Fatalf("a wedged model served %d requests", rep.Outcomes[Served])
	}
	if rep.Outcomes[Failed] == 0 || rep.Outcomes[Degraded] == 0 {
		t.Fatalf("want timeouts then degradation: %v", rep.Outcomes)
	}
	// Timeout batches are charged for the time they burned before being
	// abandoned — stalls are not free.
	if rep.LedgerJoules <= 0 {
		t.Fatal("stall storm charged no energy")
	}
	if got := e.Tracker().Joules(energy.Inference); got != rep.LedgerJoules {
		t.Fatalf("ledger %v J, tracker %v J", rep.LedgerJoules, got)
	}
}

// TestChaosKillRestartMidBatch simulates a daemon crash between batch
// flushes: the journal's tail line is torn, replay recovers the resolved
// prefix, and a restarted engine finishes the unresolved requests so
// every request still ends with exactly one durable outcome.
func TestChaosKillRestartMidBatch(t *testing.T) {
	dir := t.TempDir()
	path1 := filepath.Join(dir, "epoch1.journal")
	e1 := testEngine(t, &scriptedPredictor{classes: 2}, Config{BatchWindow: time.Millisecond, BatchMax: 4})
	j1, err := NewJournal(path1, "scripted")
	if err != nil {
		t.Fatal(err)
	}
	e1.SetJournal(j1)

	rows := make([][]float64, 10)
	for i := range rows {
		rows[i] = []float64{float64(i % 2)}
		e1.Submit(Request{ID: uint64(i), Row: rows[i], Arrival: time.Duration(i) * 100 * time.Microsecond})
	}
	// First two batches flush; the rest are still queued at the kill.
	e1.AdvanceTo(2 * time.Millisecond)
	j1.Flush()
	// Kill mid-write: the last journal line is torn.
	data, err := os.ReadFile(path1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path1, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart: replay the journal to learn what already resolved.
	rep1, err := ReplayJournal(path1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep1.Torn {
		t.Fatal("kill mid-write did not tear the journal tail")
	}
	resolved := make(map[uint64]bool, len(rep1.Records))
	for _, r := range rep1.Records {
		resolved[r.ID] = true
	}
	if len(resolved) == 0 || len(resolved) >= 10 {
		t.Fatalf("replay recovered %d resolutions, want a strict prefix", len(resolved))
	}

	// A fresh engine epoch re-serves everything the journal cannot
	// prove resolved (at-least-once across the crash; the torn record
	// is re-served because its durable write never completed).
	path2 := filepath.Join(dir, "epoch2.journal")
	e2 := testEngine(t, &scriptedPredictor{classes: 2}, Config{BatchWindow: time.Millisecond, BatchMax: 4})
	j2, err := NewJournal(path2, "scripted")
	if err != nil {
		t.Fatal(err)
	}
	e2.SetJournal(j2)
	var redone []Response
	for i := range rows {
		if resolved[uint64(i)] {
			continue
		}
		redone = append(redone, e2.Submit(Request{ID: uint64(i), Row: rows[i], Arrival: 0})...)
	}
	redone = append(redone, e2.Drain(time.Second)...)
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	if got := len(resolved) + len(redone); got != 10 {
		t.Fatalf("resolved %d + redone %d != 10 requests", len(resolved), len(redone))
	}
	for _, r := range redone {
		if r.Outcome != Served {
			t.Fatalf("restarted request %d: %s", r.ID, r.Outcome)
		}
	}
	// Epoch 2's durable ledger conserves on its own tracker.
	rep2, err := ReplayJournal(path2)
	if err != nil {
		t.Fatal(err)
	}
	if got := e2.Tracker().Joules(energy.Inference); got != rep2.TotalJoules() {
		t.Fatalf("epoch2 ledger %v J, tracker %v J", rep2.TotalJoules(), got)
	}
}
