package serve

import (
	"strings"
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/ml"
	"repro/internal/tabular"
)

// The test machine runs 2e6 virtual FLOPs/s per core, so a row costing
// rowFLOPs=2000 predicts in 1ms of virtual time.
const rowFLOPs = 2000

// scriptedPredictor is the chaos stand-in for a fitted pipeline: it
// predicts class int(row[0]) deterministically, and failAt can make any
// given call panic (the faults package's corruption model) or stall
// (report hours of cost, hitting the predict timeout).
type scriptedPredictor struct {
	classes int
	calls   int
	failAt  func(call int) string // "", "panic", "stall"
}

func (p *scriptedPredictor) PredictProba(x tabular.View) ([][]float64, ml.Cost) {
	call := p.calls
	p.calls++
	mode := ""
	if p.failAt != nil {
		mode = p.failAt(call)
	}
	if mode == "panic" {
		panic(&faults.Error{Kind: faults.PredictError, Site: "serve/test"})
	}
	cost := ml.Cost{Generic: rowFLOPs * float64(x.Rows())}
	if mode == "stall" {
		cost.Generic = 2e12 // ~11.5 virtual days: guaranteed past any timeout
	}
	proba := make([][]float64, x.Rows())
	for i := range proba {
		row := make([]float64, p.classes)
		c := int(x.At(i, 0)) % p.classes
		if c < 0 {
			c = 0
		}
		for j := range row {
			row[j] = 0.1 / float64(p.classes)
		}
		row[c] = 1 - 0.1/float64(p.classes)*float64(p.classes-1)
		proba[i] = row
	}
	return proba, cost
}

func testModel(p Predictor) *Model {
	return &Model{
		Name:     "scripted",
		Pred:     p,
		Classes:  2,
		Majority: 1,
		Priors:   []float64{0.25, 0.75},
		RowCost:  ml.Cost{Generic: rowFLOPs},
	}
}

func testEngine(t *testing.T, p Predictor, cfg Config) *Engine {
	t.Helper()
	return NewEngine(testModel(p), hw.XeonGold6132(), cfg)
}

// checkConservation sums the per-response ledger in resolution order and
// requires bit-equality with the tracker — the invariant every serving
// test rides on.
func checkConservation(t *testing.T, e *Engine, resps []Response) {
	t.Helper()
	var ledger float64
	for _, r := range resps {
		ledger += r.Joules
	}
	if got := e.Tracker().Joules(energy.Inference); got != ledger {
		t.Fatalf("conservation violated: tracker %v J, response ledger %v J", got, ledger)
	}
}

func TestServedHappyPath(t *testing.T) {
	e := testEngine(t, &scriptedPredictor{classes: 2}, Config{BatchWindow: 10 * time.Millisecond})
	var resps []Response
	for i := 0; i < 3; i++ {
		resps = append(resps, e.Submit(Request{ID: uint64(i), Row: []float64{float64(i % 2)}, Arrival: time.Duration(i) * time.Millisecond})...)
	}
	if len(resps) != 0 {
		t.Fatalf("requests resolved before the batch window: %v", resps)
	}
	resps = e.AdvanceTo(time.Second)
	if len(resps) != 3 {
		t.Fatalf("got %d responses, want 3", len(resps))
	}
	// Flush at 0+10ms, 3 rows at 1ms each: done at 13ms.
	wantDone := 13 * time.Millisecond
	for i, r := range resps {
		if r.Outcome != Served {
			t.Fatalf("response %d outcome %v, want served (%s)", i, r.Outcome, r.Err)
		}
		if r.Class != i%2 {
			t.Fatalf("response %d class %d, want %d", i, r.Class, i%2)
		}
		if r.Done != wantDone {
			t.Fatalf("response %d done at %v, want %v", i, r.Done, wantDone)
		}
		if want := wantDone - time.Duration(i)*time.Millisecond; r.Latency != want {
			t.Fatalf("response %d latency %v, want %v", i, r.Latency, want)
		}
		if r.Joules <= 0 {
			t.Fatalf("response %d charged %v J", i, r.Joules)
		}
	}
	checkConservation(t, e, resps)
}

func TestFullBatchFlushesEarly(t *testing.T) {
	e := testEngine(t, &scriptedPredictor{classes: 2}, Config{BatchMax: 4, BatchWindow: time.Hour})
	var resps []Response
	for i := 0; i < 4; i++ {
		resps = append(resps, e.Submit(Request{ID: uint64(i), Row: []float64{0}, Arrival: time.Millisecond})...)
	}
	if len(resps) != 4 {
		t.Fatalf("full batch did not flush before the window: %d responses", len(resps))
	}
	if resps[0].Done != time.Millisecond+4*time.Millisecond {
		t.Fatalf("batch done at %v", resps[0].Done)
	}
}

func TestQueueBoundedUnderFlood(t *testing.T) {
	const cap = 8
	e := testEngine(t, &scriptedPredictor{classes: 2}, Config{QueueCap: cap, BatchMax: 4, BatchWindow: time.Millisecond})
	var all []Response
	const flood = 200
	for i := 0; i < flood; i++ {
		all = append(all, e.Submit(Request{ID: uint64(i), Row: []float64{1}, Arrival: 0})...)
		if got := e.Stats().QueueLen; got > cap {
			t.Fatalf("queue grew to %d, cap is %d", got, cap)
		}
	}
	all = append(all, e.Drain(time.Hour)...)
	if len(all) != flood {
		t.Fatalf("%d requests resolved to %d responses", flood, len(all))
	}
	st := e.Stats()
	if st.Count(Shed) == 0 {
		t.Fatal("a 200-request flood into an 8-slot queue shed nothing")
	}
	if st.Count(Served)+st.Count(Shed) != flood {
		t.Fatalf("outcomes %v do not partition the flood", st.Outcomes)
	}
	for _, r := range all {
		if r.Outcome == Shed && !strings.Contains(r.Err, "queue full") && !strings.Contains(r.Err, "draining") {
			t.Fatalf("unexpected shed reason %q", r.Err)
		}
	}
	checkConservation(t, e, all)
}

func TestDeadlineShedAtAdmission(t *testing.T) {
	e := testEngine(t, &scriptedPredictor{classes: 2}, Config{BatchWindow: 10 * time.Millisecond})
	// The batch window alone outruns this deadline: shed, don't queue.
	resps := e.Submit(Request{ID: 1, Row: []float64{0}, Arrival: 0, Deadline: 5 * time.Millisecond})
	if len(resps) != 1 || resps[0].Outcome != Shed {
		t.Fatalf("infeasible deadline not shed: %+v", resps)
	}
	if !strings.Contains(resps[0].Err, "deadline") {
		t.Fatalf("shed reason %q does not name the deadline", resps[0].Err)
	}
	if e.Stats().QueueLen != 0 {
		t.Fatal("shed request was queued anyway")
	}
	// A comfortable deadline is admitted and served.
	resps = e.Submit(Request{ID: 2, Row: []float64{0}, Arrival: 0, Deadline: time.Second})
	if len(resps) != 0 {
		t.Fatalf("feasible request refused: %+v", resps)
	}
	resps = e.AdvanceTo(time.Second)
	if len(resps) != 1 || resps[0].Outcome != Served {
		t.Fatalf("feasible request not served: %+v", resps)
	}
}

// underestimated wraps the scripted predictor so every row really costs
// 10x the RowCost advertised to admission control — the surprise that
// lets a deadline die in the queue despite a fully-informed estimator.
type underestimated struct{ inner *scriptedPredictor }

func (u underestimated) PredictProba(x tabular.View) ([][]float64, ml.Cost) {
	proba, cost := u.inner.PredictProba(x)
	return proba, cost.Scale(10)
}

func TestDeadlineExpiresInQueue(t *testing.T) {
	// Rows really cost 10ms against a 1ms estimate. Request 4 is
	// admitted behind three underestimated rows (estimate ~14ms, its
	// deadline allows 20ms), lands in the leftover batch, and by the
	// time the server frees up its deadline is gone — it must be
	// abandoned before predict spends anything on it.
	e := testEngine(t, underestimated{&scriptedPredictor{classes: 2}}, Config{BatchWindow: time.Millisecond, BatchMax: 2})
	var all []Response
	all = append(all, e.Submit(Request{ID: 1, Row: []float64{0}, Arrival: 0})...)
	all = append(all, e.AdvanceTo(2*time.Millisecond)...) // batch 1 runs: busy until 11ms
	all = append(all, e.Submit(Request{ID: 2, Row: []float64{0}, Arrival: 2 * time.Millisecond})...)
	all = append(all, e.Submit(Request{ID: 3, Row: []float64{0}, Arrival: 2 * time.Millisecond})...)
	resps := e.Submit(Request{ID: 4, Row: []float64{0}, Arrival: 2 * time.Millisecond, Deadline: 22 * time.Millisecond})
	if len(resps) != 0 {
		t.Fatalf("request 4 refused at admission: %+v", resps)
	}
	all = append(all, e.AdvanceTo(time.Hour)...)
	byID := map[uint64]Response{}
	for _, r := range all {
		byID[r.ID] = r
	}
	if len(all) != 4 {
		t.Fatalf("got %d responses, want 4", len(all))
	}
	for _, id := range []uint64{2, 3} {
		if byID[id].Outcome != Served {
			t.Fatalf("request %d outcome %v, want served", id, byID[id].Outcome)
		}
	}
	r4 := byID[4]
	if r4.Outcome != Expired || !strings.Contains(r4.Err, "queue") {
		t.Fatalf("request 4: %v %q, want expired in queue", r4.Outcome, r4.Err)
	}
	checkConservation(t, e, all)
}

func TestDeadlineExpiresDuringPredict(t *testing.T) {
	// The predictor reports 10x the advertised RowCost, so admission
	// thinks the deadline fits but the batch finishes too late. The
	// work was spent: the expired request is still charged its share.
	slow := &scriptedPredictor{classes: 2}
	e := NewEngine(&Model{
		Name: "slow", Pred: slow, Classes: 2, Majority: 0, Priors: []float64{0.5, 0.5},
		RowCost: ml.Cost{Generic: rowFLOPs / 10},
	}, hw.XeonGold6132(), Config{BatchWindow: time.Millisecond})
	resps := e.Submit(Request{ID: 1, Row: []float64{0}, Arrival: 0, Deadline: 1200 * time.Microsecond})
	if len(resps) != 0 {
		t.Fatalf("refused at admission: %+v", resps)
	}
	all := e.AdvanceTo(time.Second)
	if len(all) != 1 || all[0].Outcome != Expired {
		t.Fatalf("got %+v, want one expired response", all)
	}
	if !strings.Contains(all[0].Err, "during predict") {
		t.Fatalf("expiry reason %q", all[0].Err)
	}
	if all[0].Joules <= 0 {
		t.Fatal("expired-during-predict request was not charged for the spent work")
	}
	checkConservation(t, e, all)
}

func TestBreakerTripHalfOpenClose(t *testing.T) {
	const threshold = 3
	pred := &scriptedPredictor{classes: 2, failAt: func(call int) string {
		if call < threshold {
			return "panic"
		}
		return ""
	}}
	cfg := Config{BatchWindow: time.Millisecond, BreakerThreshold: threshold, BreakerCooldown: time.Second}
	e := testEngine(t, pred, cfg)

	var all []Response
	at := time.Duration(0)
	submitAndSettle := func(id uint64) Response {
		rs := e.Submit(Request{ID: id, Row: []float64{0}, Arrival: at})
		rs = append(rs, e.AdvanceTo(at+500*time.Millisecond)...)
		at += 500 * time.Millisecond
		all = append(all, rs...)
		if len(rs) != 1 {
			t.Fatalf("request %d resolved to %d responses", id, len(rs))
		}
		return rs[0]
	}

	// Three panicking batches trip the breaker.
	for i := uint64(0); i < threshold; i++ {
		if r := submitAndSettle(i); r.Outcome != Failed {
			t.Fatalf("failure %d outcome %v, want failed", i, r.Outcome)
		}
	}
	if st := e.Stats(); st.Breaker != BreakerOpen || st.BreakerTrips != 1 {
		t.Fatalf("breaker %v after %d failures (trips %d), want open/1", st.Breaker, threshold, st.BreakerTrips)
	}

	// While open: instant degraded fallback, labeled as such.
	r := submitAndSettle(10)
	if r.Outcome != Degraded || r.Class != 1 {
		t.Fatalf("open-breaker response %v class %d, want degraded majority class 1", r.Outcome, r.Class)
	}
	if r.Proba[1] != 0.75 {
		t.Fatalf("degraded proba %v, want the training priors", r.Proba)
	}

	// Past the cooldown the next request probes the primary (half-open)
	// and, with the fault cleared, closes the breaker.
	at += cfg.BreakerCooldown
	if r := submitAndSettle(11); r.Outcome != Served {
		t.Fatalf("half-open probe outcome %v (%s), want served", r.Outcome, r.Err)
	}
	if st := e.Stats(); st.Breaker != BreakerClosed {
		t.Fatalf("breaker %v after successful probe, want closed", st.Breaker)
	}
	if r := submitAndSettle(12); r.Outcome != Served {
		t.Fatalf("post-recovery outcome %v, want served", r.Outcome)
	}
	checkConservation(t, e, all)
}

func TestBreakerReopensOnFailedProbe(t *testing.T) {
	pred := &scriptedPredictor{classes: 2, failAt: func(call int) string { return "panic" }}
	cfg := Config{BatchWindow: time.Millisecond, BreakerThreshold: 2, BreakerCooldown: time.Second}
	e := testEngine(t, pred, cfg)
	at := time.Duration(0)
	step := func(id uint64) Response {
		rs := e.Submit(Request{ID: id, Row: []float64{0}, Arrival: at})
		rs = append(rs, e.AdvanceTo(at+100*time.Millisecond)...)
		at += 100 * time.Millisecond
		if len(rs) != 1 {
			t.Fatalf("request %d resolved to %d responses", id, len(rs))
		}
		return rs[0]
	}
	step(0)
	step(1) // trips
	if e.Stats().Breaker != BreakerOpen {
		t.Fatal("breaker not open after threshold failures")
	}
	at += cfg.BreakerCooldown
	if r := step(2); r.Outcome != Failed {
		t.Fatalf("half-open probe outcome %v, want failed", r.Outcome)
	}
	st := e.Stats()
	if st.Breaker != BreakerOpen || st.BreakerTrips != 2 {
		t.Fatalf("failed probe left breaker %v with %d trips, want open/2", st.Breaker, st.BreakerTrips)
	}
}

func TestPredictTimeoutCharged(t *testing.T) {
	pred := &scriptedPredictor{classes: 2, failAt: func(call int) string { return "stall" }}
	cfg := Config{BatchWindow: time.Millisecond, PredictTimeout: 50 * time.Millisecond}
	e := testEngine(t, pred, cfg)
	e.Submit(Request{ID: 1, Row: []float64{0}, Arrival: 0})
	all := e.AdvanceTo(time.Minute)
	if len(all) != 1 || all[0].Outcome != Failed || !strings.Contains(all[0].Err, "timeout") {
		t.Fatalf("stalled batch: %+v, want failed with timeout", all)
	}
	// Only the truncated duration is charged, and the server frees up
	// at flush + timeout, not flush + stall.
	if want := time.Millisecond + cfg.PredictTimeout; all[0].Done != want {
		t.Fatalf("timed-out batch done at %v, want %v", all[0].Done, want)
	}
	wantJ := hw.XeonGold6132().Energy(cfg.PredictTimeout, 1, false, false)
	if all[0].Joules != wantJ {
		t.Fatalf("timed-out batch charged %v J, want %v J", all[0].Joules, wantJ)
	}
	checkConservation(t, e, all)
}

func TestSwapKeepsInFlightRequests(t *testing.T) {
	e := testEngine(t, &scriptedPredictor{classes: 2}, Config{BatchWindow: 10 * time.Millisecond})
	e.Submit(Request{ID: 1, Row: []float64{1}, Arrival: 0})
	e.Submit(Request{ID: 2, Row: []float64{0}, Arrival: time.Millisecond})

	// Hot reload mid-window: a "model" that always answers class 0.
	always0 := &scriptedPredictor{classes: 2, failAt: nil}
	e.Swap(&Model{Name: "v2", Pred: alwaysClass0{always0}, Classes: 2, Majority: 0,
		Priors: []float64{0.9, 0.1}, RowCost: ml.Cost{Generic: rowFLOPs}})

	all := e.AdvanceTo(time.Second)
	if len(all) != 2 {
		t.Fatalf("swap dropped in-flight requests: %d of 2 resolved", len(all))
	}
	for _, r := range all {
		if r.Outcome != Served || r.Class != 0 {
			t.Fatalf("response %d: %v class %d, want served class 0 from the new model", r.ID, r.Outcome, r.Class)
		}
	}
	if e.Stats().Model != "v2" {
		t.Fatalf("stats report model %q after swap", e.Stats().Model)
	}
}

// alwaysClass0 wraps a predictor and forces class 0 — the "new version"
// in hot-reload tests.
type alwaysClass0 struct{ inner *scriptedPredictor }

func (a alwaysClass0) PredictProba(x tabular.View) ([][]float64, ml.Cost) {
	proba, cost := a.inner.PredictProba(x)
	for i := range proba {
		for j := range proba[i] {
			proba[i][j] = 0
		}
		proba[i][0] = 1
	}
	return proba, cost
}

func TestDrainResolvesEverythingThenSheds(t *testing.T) {
	e := testEngine(t, &scriptedPredictor{classes: 2}, Config{BatchWindow: time.Hour})
	for i := 0; i < 5; i++ {
		e.Submit(Request{ID: uint64(i), Row: []float64{0}, Arrival: 0})
	}
	all := e.Drain(time.Millisecond)
	if len(all) != 5 {
		t.Fatalf("drain resolved %d of 5 queued requests", len(all))
	}
	for _, r := range all {
		if r.Outcome != Served {
			t.Fatalf("drained request %d outcome %v", r.ID, r.Outcome)
		}
	}
	if e.Stats().QueueLen != 0 {
		t.Fatal("drain left requests queued")
	}
	post := e.Submit(Request{ID: 99, Row: []float64{0}, Arrival: time.Second})
	if len(post) != 1 || post[0].Outcome != Shed || !strings.Contains(post[0].Err, "draining") {
		t.Fatalf("post-drain submit: %+v, want shed (draining)", post)
	}
	checkConservation(t, e, append(all, post...))
}
