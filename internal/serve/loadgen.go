package serve

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/energy"
	"repro/internal/tabular"
)

// LoadGen drives an engine with a synthetic request stream on the
// virtual clock — the serving counterpart of the batch harness's grid.
// Two modes:
//
//   - open loop (Users == 0): arrivals are an independent process at
//     Rate requests/second with bounded-Pareto inter-arrival times, the
//     heavy-tailed traffic that stresses admission control;
//   - closed loop (Users > 0): a population of simulated users, each
//     submitting, waiting for its response, thinking (Pareto), and
//     submitting again — the mode that scales to millions of users
//     because per-user state is one instant.
//
// Everything is deterministic in Seed; wall time is never consulted.
type LoadGen struct {
	// Users is the closed-loop population; 0 selects open loop.
	Users int
	// Rate is the open-loop mean arrival rate (requests/second); in
	// closed loop it sets the mean think time as Users/Rate.
	Rate float64
	// Requests is the total number of requests to issue.
	Requests int
	// ParetoAlpha is the tail index of inter-arrival and think times
	// (smaller = heavier tail). Default 1.5.
	ParetoAlpha float64
	// DeadlineFrac is the fraction of requests carrying a deadline.
	DeadlineFrac float64
	// Deadline is the relative deadline those requests carry.
	Deadline time.Duration
	// Seed feeds the generator's rng.
	Seed uint64
}

// Report summarizes one load-generation run: the latency-vs-watts view
// of paper Table 6, plus the conservation cross-check.
type Report struct {
	Requests int
	Outcomes [numOutcomes]int
	// P50 and P99 are latency percentiles over served (and degraded)
	// responses.
	P50, P99 time.Duration
	// SimTime is the virtual span from first arrival to last resolution.
	SimTime time.Duration
	// KWh is the tracker's total at the end of the run; AvgWatts is
	// the mean draw over SimTime.
	KWh      float64
	AvgWatts float64
	// LedgerJoules sums per-response charges in resolution order; the
	// conservation invariant makes it bit-equal to KWh's joules.
	LedgerJoules float64
}

// String implements fmt.Stringer.
func (r Report) String() string {
	s := fmt.Sprintf("%d requests in %v: p50 %v p99 %v, %.6f kWh (%.1f W avg)",
		r.Requests, r.SimTime.Round(time.Millisecond), r.P50, r.P99, r.KWh, r.AvgWatts)
	for o := Outcome(0); o < numOutcomes; o++ {
		s += fmt.Sprintf(" %s=%d", o, r.Outcomes[o])
	}
	return s
}

// Run drives the engine to completion: every issued request resolves
// (the engine is drained at the end), so the report's outcome counts sum
// to Requests.
func (g LoadGen) Run(e *Engine, source tabular.View) Report {
	if g.ParetoAlpha <= 1 {
		g.ParetoAlpha = 1.5
	}
	if g.Rate <= 0 {
		g.Rate = 1000
	}
	if g.Requests <= 0 {
		g.Requests = 1000
	}
	rng := rand.New(rand.NewPCG(g.Seed, 0x10adbeef))
	rows := source.Rows()

	var (
		issued    int
		latencies []time.Duration
		rep       Report
		lastDone  time.Duration
	)
	absorb := func(resps []Response) {
		for _, r := range resps {
			rep.Outcomes[r.Outcome]++
			rep.LedgerJoules += r.Joules
			if r.Outcome == Served || r.Outcome == Degraded {
				latencies = append(latencies, r.Latency)
			}
			if r.Done > lastDone {
				lastDone = r.Done
			}
		}
	}
	makeRequest := func(at time.Duration) Request {
		req := Request{
			ID:      uint64(issued),
			Row:     source.Row(rng.IntN(rows), nil),
			Arrival: at,
		}
		if g.DeadlineFrac > 0 && g.Deadline > 0 && rng.Float64() < g.DeadlineFrac {
			req.Deadline = at + g.Deadline
		}
		issued++
		return req
	}

	if g.Users <= 0 {
		// Open loop: arrivals march forward regardless of responses.
		meanGap := time.Duration(float64(time.Second) / g.Rate)
		at := time.Duration(0)
		for issued < g.Requests {
			absorb(e.Submit(makeRequest(at)))
			at += g.pareto(rng, meanGap)
		}
	} else {
		// Closed loop: each user waits for its response, then thinks.
		meanThink := time.Duration(float64(g.Users) / g.Rate * float64(time.Second))
		ready := newEventHeap(g.Users)
		for u := 0; u < g.Users && u < g.Requests; u++ {
			ready.push(g.pareto(rng, meanThink/2))
		}
		inflight := 0
		for ready.len() > 0 || inflight > 0 {
			var resps []Response
			if issued >= g.Requests {
				ready.at = ready.at[:0]
			}
			if next, ok := ready.peek(); ok {
				due, dueOK := e.nextEventAt()
				if !dueOK || next <= due {
					ready.pop()
					inflight++
					resps = e.Submit(makeRequest(next))
				} else {
					resps = e.AdvanceTo(due)
				}
			} else {
				due, ok := e.nextEventAt()
				if !ok {
					break
				}
				resps = e.AdvanceTo(due)
			}
			for _, r := range resps {
				inflight--
				if issued < g.Requests {
					ready.push(maxT(r.Done, e.Now()) + g.pareto(rng, meanThink))
				}
			}
			absorb(resps)
		}
	}

	absorb(e.Drain(e.Now()))
	rep.Requests = issued
	rep.SimTime = maxT(lastDone, e.Now())
	rep.KWh = e.Tracker().TotalKWh()
	if rep.SimTime > 0 {
		rep.AvgWatts = rep.KWh * energy.JoulesPerKWh / rep.SimTime.Seconds()
	}
	rep.P50 = percentile(latencies, 0.50)
	rep.P99 = percentile(latencies, 0.99)
	return rep
}

// pareto samples a bounded Pareto holding time with the given mean: the
// heavy tail produces arrival bursts, the bound (100× mean) keeps a
// single sample from freezing the simulation.
func (g LoadGen) pareto(rng *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	alpha := g.ParetoAlpha
	xm := float64(mean) * (alpha - 1) / alpha
	u := rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	x := xm / math.Pow(u, 1/alpha)
	if bound := 100 * float64(mean); x > bound {
		x = bound
	}
	return time.Duration(x)
}

func percentile(d []time.Duration, q float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)-1))
	return s[i]
}

func maxT(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// eventHeap is a minimal binary min-heap of instants, sized for
// million-user populations (one time.Duration per pending user).
type eventHeap struct {
	at []time.Duration
}

func newEventHeap(capHint int) *eventHeap {
	return &eventHeap{at: make([]time.Duration, 0, capHint)}
}

func (h *eventHeap) len() int { return len(h.at) }

func (h *eventHeap) peek() (time.Duration, bool) {
	if len(h.at) == 0 {
		return 0, false
	}
	return h.at[0], true
}

func (h *eventHeap) push(t time.Duration) {
	h.at = append(h.at, t)
	i := len(h.at) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.at[p] <= h.at[i] {
			break
		}
		h.at[p], h.at[i] = h.at[i], h.at[p]
		i = p
	}
}

func (h *eventHeap) pop() time.Duration {
	top := h.at[0]
	last := len(h.at) - 1
	h.at[0] = h.at[last]
	h.at = h.at[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.at) && h.at[l] < h.at[small] {
			small = l
		}
		if r < len(h.at) && h.at[r] < h.at[small] {
			small = r
		}
		if small == i {
			break
		}
		h.at[i], h.at[small] = h.at[small], h.at[i]
		i = small
	}
	return top
}
