package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"time"
)

// Journal is the serving layer's metering ledger on disk: one JSON line
// per resolved request, CRC32-prefixed in the bench journal's v2 framing
// ("<crc32-hex8> <json>"). A kill mid-write tears at most the trailing
// line; Replay truncates a torn tail and skips-and-counts interior
// damage, so a restarted daemon can account for everything the previous
// incarnation durably resolved.
type Journal struct {
	f *os.File
	w *bufio.Writer
}

// journalHeader is the first line, binding the file to its format
// version and the model it metered.
type journalHeader struct {
	Version int    `json:"version"`
	Model   string `json:"model"`
}

const journalVersion = 1

// JournalRecord is one resolved request as journaled.
type JournalRecord struct {
	ID        uint64  `json:"id"`
	Outcome   string  `json:"outcome"`
	Class     int     `json:"class"`
	DoneUS    int64   `json:"done_us"`
	LatencyUS int64   `json:"latency_us"`
	Joules    float64 `json:"joules"`
	Err       string  `json:"err,omitempty"`
}

// NewJournal creates (truncating) a journal for the named model.
func NewJournal(path, model string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("serve: creating journal: %w", err)
	}
	j := &Journal{f: f, w: bufio.NewWriter(f)}
	hdr, err := json.Marshal(journalHeader{Version: journalVersion, Model: model})
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := j.w.Write(append(hdr, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("serve: writing journal header: %w", err)
	}
	return j, nil
}

// Append journals one resolution. Write errors are deliberately not
// fatal to serving — a full disk must not take the daemon down — but the
// line is either fully framed or torn, never silently mangled.
func (j *Journal) Append(r *Response) {
	rec := JournalRecord{
		ID:        r.ID,
		Outcome:   r.Outcome.String(),
		Class:     r.Class,
		DoneUS:    r.Done.Microseconds(),
		LatencyUS: r.Latency.Microseconds(),
		Joules:    r.Joules,
		Err:       r.Err,
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return
	}
	line := fmt.Appendf(nil, "%08x ", crc32.ChecksumIEEE(payload))
	line = append(line, payload...)
	line = append(line, '\n')
	j.w.Write(line)
}

// Flush pushes buffered lines to the OS and syncs the file.
func (j *Journal) Flush() {
	j.w.Flush()
	j.f.Sync()
}

// Close flushes and closes the journal.
func (j *Journal) Close() error {
	j.Flush()
	return j.f.Close()
}

// Replayed is the result of reading a journal back.
type Replayed struct {
	Model   string
	Records []JournalRecord
	// Torn reports a damaged or incomplete trailing line — the
	// signature of a kill mid-write; it is truncated, not an error.
	Torn bool
	// Damaged counts interior lines that failed their CRC but have
	// intact lines after them — real corruption, skipped and counted.
	Damaged int
}

// TotalJoules sums the journaled per-request charges — the durable half
// of the conservation ledger.
func (r *Replayed) TotalJoules() float64 {
	var sum float64
	for _, rec := range r.Records {
		sum += rec.Joules
	}
	return sum
}

// ReplayJournal reads a journal back, tolerating a torn tail and
// counting interior damage.
func ReplayJournal(path string) (*Replayed, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: reading journal: %w", err)
	}
	lines := bytes.Split(data, []byte("\n"))
	// A well-formed file ends in '\n', so the final split element is
	// empty; anything else is a torn tail candidate handled below.
	if len(lines) == 0 || len(lines[0]) == 0 {
		return nil, fmt.Errorf("serve: journal %s has no header", path)
	}
	var hdr journalHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return nil, fmt.Errorf("serve: journal %s header: %w", path, err)
	}
	if hdr.Version != journalVersion {
		return nil, fmt.Errorf("serve: journal %s is version %d, this reader handles %d", path, hdr.Version, journalVersion)
	}
	out := &Replayed{Model: hdr.Model}
	body := lines[1:]
	for i, line := range body {
		if len(line) == 0 {
			continue
		}
		rec, ok := parseRecordLine(line)
		if !ok {
			if i == len(body)-1 || (i == len(body)-2 && len(body[len(body)-1]) == 0) {
				out.Torn = true
			} else {
				out.Damaged++
			}
			continue
		}
		out.Records = append(out.Records, rec)
	}
	return out, nil
}

func parseRecordLine(line []byte) (JournalRecord, bool) {
	var rec JournalRecord
	if len(line) < 10 || line[8] != ' ' {
		return rec, false
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return rec, false
	}
	payload := line[9:]
	if crc32.ChecksumIEEE(payload) != uint32(want) {
		return rec, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, false
	}
	return rec, true
}

// Done converts the record's resolution instant back to a duration.
func (r JournalRecord) Done() time.Duration {
	return time.Duration(r.DoneUS) * time.Microsecond
}
