package serve

import "time"

// BreakerState is the circuit breaker's position.
type BreakerState uint8

const (
	// BreakerClosed passes requests to the primary model.
	BreakerClosed BreakerState = iota
	// BreakerOpen short-circuits every request to the fallback tier
	// until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets the next batch probe the primary model: a
	// success closes the breaker, a failure re-opens it.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is the per-model circuit breaker. It runs on the engine's
// virtual instants — every transition is a pure function of (state,
// now), so the trip/half-open/close cycle is deterministically testable.
// The zero value is not ready; use newBreaker.
type Breaker struct {
	threshold int
	cooldown  time.Duration

	state       BreakerState
	consecutive int
	openedAt    time.Duration
	trips       int
}

func newBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// State reports the breaker position at instant now, performing the
// time-based Open → HalfOpen transition.
func (b *Breaker) State(now time.Duration) BreakerState {
	if b.state == BreakerOpen && now >= b.openedAt+b.cooldown {
		b.state = BreakerHalfOpen
	}
	return b.state
}

// Trips reports how many times the breaker has opened.
func (b *Breaker) Trips() int { return b.trips }

// Fail records a predict failure (panic or timeout) at instant now. In
// HalfOpen the probe failed: re-open immediately. In Closed, trip once
// the consecutive-failure threshold is reached.
func (b *Breaker) Fail(now time.Duration) {
	switch b.State(now) {
	case BreakerHalfOpen:
		b.open(now)
	case BreakerClosed:
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.open(now)
		}
	}
}

// OK records a successful predict at instant now, closing a half-open
// breaker and clearing the failure streak.
func (b *Breaker) OK(now time.Duration) {
	b.State(now)
	b.state = BreakerClosed
	b.consecutive = 0
}

func (b *Breaker) open(now time.Duration) {
	b.state = BreakerOpen
	b.openedAt = now
	b.consecutive = 0
	b.trips++
}
