package serve

import (
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/tabular"
)

// loadSource is a tiny unlabeled frame the generator samples rows from.
func loadSource() tabular.View {
	return tabular.FromRows([][]float64{
		{0, 1.5}, {1, -0.5}, {0, 2.5}, {1, 0.25}, {1, -1.0},
	})
}

func sumOutcomes(o [numOutcomes]int) int {
	n := 0
	for _, c := range o {
		n += c
	}
	return n
}

func TestLoadGenOpenLoop(t *testing.T) {
	e := testEngine(t, &scriptedPredictor{classes: 2}, Config{
		BatchWindow: time.Millisecond, BatchMax: 16, QueueCap: 64,
	})
	g := LoadGen{Rate: 2000, Requests: 500, Seed: 11}
	rep := g.Run(e, loadSource())

	if rep.Requests != 500 {
		t.Fatalf("issued %d requests, want 500", rep.Requests)
	}
	if got := sumOutcomes(rep.Outcomes); got != 500 {
		t.Fatalf("outcomes sum to %d, want 500 (exactly one outcome per request): %v", got, rep.Outcomes)
	}
	if rep.Outcomes[Served] == 0 {
		t.Fatal("open loop served nothing")
	}
	// Conservation: the per-response ledger, summed in resolution order,
	// bit-equals the tracker total.
	if got := e.Tracker().Joules(energy.Inference); got != rep.LedgerJoules {
		t.Fatalf("ledger %v J, tracker %v J", rep.LedgerJoules, got)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("latency percentiles p50=%v p99=%v", rep.P50, rep.P99)
	}
	if rep.AvgWatts <= 0 || rep.KWh <= 0 {
		t.Fatalf("power report kwh=%v watts=%v", rep.KWh, rep.AvgWatts)
	}
}

func TestLoadGenClosedLoop(t *testing.T) {
	e := testEngine(t, &scriptedPredictor{classes: 2}, Config{
		BatchWindow: time.Millisecond, BatchMax: 8, QueueCap: 64,
	})
	g := LoadGen{Users: 50, Rate: 1000, Requests: 400, Seed: 3}
	rep := g.Run(e, loadSource())

	if rep.Requests != 400 {
		t.Fatalf("issued %d requests, want 400", rep.Requests)
	}
	if got := sumOutcomes(rep.Outcomes); got != 400 {
		t.Fatalf("outcomes sum to %d, want 400: %v", got, rep.Outcomes)
	}
	if got := e.Tracker().Joules(energy.Inference); got != rep.LedgerJoules {
		t.Fatalf("ledger %v J, tracker %v J", rep.LedgerJoules, got)
	}
}

func TestLoadGenOverloadShedsNotDeadlocks(t *testing.T) {
	// Tiny queue, slow model, deadlines on every request: a large
	// fraction must shed or expire, but every request still resolves.
	e := testEngine(t, &scriptedPredictor{classes: 2}, Config{
		BatchWindow: 5 * time.Millisecond, BatchMax: 4, QueueCap: 4,
	})
	g := LoadGen{
		Rate: 50000, Requests: 2000, Seed: 7,
		DeadlineFrac: 1.0, Deadline: 3 * time.Millisecond,
	}
	rep := g.Run(e, loadSource())

	if got := sumOutcomes(rep.Outcomes); got != 2000 {
		t.Fatalf("outcomes sum to %d, want 2000: %v", got, rep.Outcomes)
	}
	if rep.Outcomes[Shed]+rep.Outcomes[Expired] == 0 {
		t.Fatalf("overload shed nothing: %v", rep.Outcomes)
	}
	if got := e.Tracker().Joules(energy.Inference); got != rep.LedgerJoules {
		t.Fatalf("ledger %v J, tracker %v J", rep.LedgerJoules, got)
	}
	if e.Stats().QueueLen != 0 {
		t.Fatalf("queue not empty after drain: %d", e.Stats().QueueLen)
	}
}

func TestLoadGenDeterministicInSeed(t *testing.T) {
	run := func() Report {
		e := testEngine(t, &scriptedPredictor{classes: 2}, Config{
			BatchWindow: time.Millisecond, BatchMax: 8, QueueCap: 32,
		})
		return LoadGen{Users: 20, Rate: 4000, Requests: 300, Seed: 99,
			DeadlineFrac: 0.5, Deadline: 20 * time.Millisecond}.Run(e, loadSource())
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different reports:\n%v\n%v", a, b)
	}
	e := testEngine(t, &scriptedPredictor{classes: 2}, Config{
		BatchWindow: time.Millisecond, BatchMax: 8, QueueCap: 32,
	})
	c := LoadGen{Users: 20, Rate: 4000, Requests: 300, Seed: 100,
		DeadlineFrac: 0.5, Deadline: 20 * time.Millisecond}.Run(e, loadSource())
	if a == c {
		t.Fatal("different seeds produced identical reports")
	}
}

func TestLoadGenMillionUserScale(t *testing.T) {
	// The closed loop holds one instant per pending user, so a large
	// population with a bounded request count stays cheap.
	if testing.Short() {
		t.Skip("population-scale test")
	}
	e := testEngine(t, &scriptedPredictor{classes: 2}, Config{
		BatchWindow: time.Millisecond, BatchMax: 64, QueueCap: 4096,
	})
	g := LoadGen{Users: 1_000_000, Rate: 1e6, Requests: 5000, Seed: 5}
	rep := g.Run(e, loadSource())
	if got := sumOutcomes(rep.Outcomes); got != rep.Requests {
		t.Fatalf("outcomes sum to %d, want %d", got, rep.Requests)
	}
}
