package serve

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/ml"
)

// serverModel is a cheap model for wall-clock tests: 20 generic FLOPs
// per row is 10µs of virtual work on the test machine, so the engine's
// virtual timeline never outruns the wall timer driving it.
func serverModel(p Predictor) *Model {
	return &Model{
		Name:     "wall",
		Pred:     p,
		Classes:  2,
		Majority: 1,
		Priors:   []float64{0.25, 0.75},
		RowCost:  ml.Cost{Generic: 20},
	}
}

func newTestServer(t *testing.T, p Predictor, journal string) (*Server, *Engine) {
	t.Helper()
	e := NewEngine(serverModel(p), hw.XeonGold6132(), Config{
		BatchWindow: time.Millisecond,
		BatchMax:    8,
		QueueCap:    256,
	})
	if journal != "" {
		j, err := NewJournal(journal, "wall")
		if err != nil {
			t.Fatal(err)
		}
		e.SetJournal(j)
		t.Cleanup(func() { j.Close() })
	}
	return NewServer(e), e
}

func TestServerConcurrentPredict(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.journal")
	s, e := newTestServer(t, &scriptedPredictor{classes: 2}, path)

	const callers = 32
	var wg sync.WaitGroup
	resps := make([]Response, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i] = s.Predict([]float64{float64(i % 2)}, 0)
		}(i)
	}
	wg.Wait()
	s.Drain()

	for i, r := range resps {
		if r.Outcome != Served {
			t.Fatalf("caller %d: outcome %s (%s)", i, r.Outcome, r.Err)
		}
		if r.Class != i%2 {
			t.Fatalf("caller %d: class %d, want %d", i, r.Class, i%2)
		}
		if r.Joules <= 0 || r.Latency <= 0 {
			t.Fatalf("caller %d: joules %v latency %v", i, r.Joules, r.Latency)
		}
	}
	st := s.Stats()
	if st.Outcomes[Served] != callers {
		t.Fatalf("stats served %d, want %d", st.Outcomes[Served], callers)
	}

	// Conservation survives the wall-clock bridge: the journal replays
	// in resolution order, so its sum bit-equals the tracker.
	rep, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != callers {
		t.Fatalf("journal holds %d records, want %d", len(rep.Records), callers)
	}
	if got := e.Tracker().Joules(energy.Inference); got != rep.TotalJoules() {
		t.Fatalf("journal ledger %v J, tracker %v J", rep.TotalJoules(), got)
	}
}

func TestServerReloadMidTraffic(t *testing.T) {
	s, _ := newTestServer(t, &scriptedPredictor{classes: 2}, "")

	const callers = 24
	var wg sync.WaitGroup
	resps := make([]Response, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i] = s.Predict([]float64{1}, 0)
		}(i)
		if i == callers/2 {
			s.Reload(serverModel(alwaysClass0{&scriptedPredictor{classes: 2}}))
		}
	}
	wg.Wait()
	s.Drain()

	// No caller is dropped by the swap; each is served by whichever
	// model owned its batch (class 1 before, class 0 after).
	for i, r := range resps {
		if r.Outcome != Served {
			t.Fatalf("caller %d: outcome %s (%s)", i, r.Outcome, r.Err)
		}
		if r.Class != 0 && r.Class != 1 {
			t.Fatalf("caller %d: class %d", i, r.Class)
		}
	}
	if got := s.Stats().Model; got != "wall" {
		t.Fatalf("stats model %q after reload", got)
	}
}

func TestServerDrainUnblocksAndSheds(t *testing.T) {
	s, _ := newTestServer(t, &scriptedPredictor{classes: 2}, "")

	var wg sync.WaitGroup
	resps := make([]Response, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i] = s.Predict([]float64{0}, 0)
		}(i)
	}
	// Let the callers enqueue, then drain before the window fires.
	//greenlint:allow wallclock this test exercises the wall-time Server bridge itself; the sleep only spaces real enqueues from the drain
	time.Sleep(200 * time.Microsecond)
	s.Drain()
	wg.Wait()

	for i, r := range resps {
		if r.Outcome != Served && r.Outcome != Shed {
			t.Fatalf("caller %d: outcome %s after drain", i, r.Outcome)
		}
	}
	// After drain every Predict resolves immediately as shed.
	if r := s.Predict([]float64{0}, 0); r.Outcome != Shed {
		t.Fatalf("post-drain predict: %s, want shed", r.Outcome)
	}
	// Drain is idempotent.
	s.Drain()
}

func TestServerDegradedUnderPanics(t *testing.T) {
	s, _ := newTestServer(t, &scriptedPredictor{
		classes: 2,
		failAt:  func(int) string { return "panic" },
	}, "")

	// Sequential callers so the breaker's consecutive-failure count
	// builds deterministically; threshold is the default 4.
	sawDegraded := false
	for i := 0; i < 12; i++ {
		r := s.Predict([]float64{0}, 0)
		switch r.Outcome {
		case Failed:
		case Degraded:
			sawDegraded = true
			if r.Class != 1 {
				t.Fatalf("degraded class %d, want majority 1", r.Class)
			}
		default:
			t.Fatalf("caller %d: outcome %s", i, r.Outcome)
		}
	}
	if !sawDegraded {
		t.Fatal("breaker never degraded under sustained panics")
	}
	s.Drain()
}
