// Package serve is the inference-serving layer: the paper's third
// lifecycle stage (inference, Table 6) run as a long-lived,
// energy-metered daemon rather than offline scoring.
//
// The package is built in two layers mirroring the repository's
// determinism discipline:
//
//   - Engine is a single-threaded discrete-event core on virtual time.
//     The driver feeds it absolute instants (Submit(at, …),
//     AdvanceTo(t)); batching, deadlines, the circuit breaker and energy
//     attribution all run against those instants, so every robustness
//     behavior is deterministically testable on the virtual clock.
//   - Server wraps an Engine for concurrent callers in wall time: a
//     mutex serializes access, a real timer fires the batch window, and
//     blocking Predict calls are parked until the engine resolves them.
//
// Robustness rails, end to end: a bounded admission queue with load
// shedding (never unbounded memory), deadline-aware micro-batching into
// columnar blocks (deadline-infeasible requests are shed at admission;
// deadlines propagate into predict so work that expires mid-batch is
// abandoned), a per-model circuit breaker (consecutive predict failures
// or timeouts trip to the majority-class fallback tier with half-open
// probing), and graceful drain on shutdown.
//
// Every request resolves to exactly one Outcome and is charged through
// energy.Tracker at resolution time, in resolution order. The ledger of
// per-response Joules therefore sums bit-exactly to the tracker total —
// the conservation invariant the chaos suite pins.
package serve

import (
	"fmt"

	"repro/internal/artifact"
	"repro/internal/ml"
	"repro/internal/tabular"
)

// Outcome is the exhaustive resolution taxonomy: every admitted or
// refused request ends in exactly one of these.
type Outcome uint8

const (
	// Served is a successful prediction by the primary model.
	Served Outcome = iota
	// Shed is a refusal at admission: the queue is full, the daemon is
	// draining, or the deadline cannot survive the batch window.
	Shed
	// Expired is an admitted request whose deadline passed before its
	// prediction completed; the result, if any, is discarded.
	Expired
	// Degraded is a response from the fallback tier (majority class)
	// while the circuit breaker holds the primary model open.
	Degraded
	// Failed is an admitted request whose predict batch panicked or
	// timed out.
	Failed
	numOutcomes
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case Served:
		return "served"
	case Shed:
		return "shed"
	case Expired:
		return "expired"
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Predictor is the model surface the engine serves: the subset of
// pipeline.Pipeline it needs, small enough for chaos tests to substitute
// stalling, panicking or erroring implementations.
type Predictor interface {
	PredictProba(x tabular.View) ([][]float64, ml.Cost)
}

// Model is a servable model: the predictor plus the fallback-tier
// metadata and a per-row cost estimate for admission control.
type Model struct {
	// Name labels the model in stats and journal lines.
	Name string
	// Pred is the primary predictor.
	Pred Predictor
	// Classes is the task's class count.
	Classes int
	// Majority is the fallback tier's answer.
	Majority int
	// Priors is the fallback tier's probability vector (training class
	// distribution).
	Priors []float64
	// RowCost estimates the predict cost of one row — the basis for
	// deadline-feasibility checks and for charging batches that panic
	// before reporting their true cost.
	RowCost ml.Cost
}

// NewModel adapts a loaded artifact into a servable model, measuring
// RowCost on the artifact's fingerprint probe so admission control uses
// the fitted pipeline's real per-row cost.
func NewModel(a *artifact.Model) *Model {
	n := min(a.Spec.Train.Rows(), 64)
	probe := a.Spec.Train.All().Head(n)
	_, cost := a.Pipe.PredictProba(probe)
	return &Model{
		Name:     a.Spec.Dataset,
		Pred:     a.Pipe,
		Classes:  a.Classes,
		Majority: a.Majority,
		Priors:   a.Priors,
		RowCost:  cost.Scale(1 / float64(max(n, 1))),
	}
}
