package serve

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/energy"
)

func writeTestJournal(t *testing.T, path string, n int) float64 {
	t.Helper()
	j, err := NewJournal(path, "unit")
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i := 0; i < n; i++ {
		r := Response{
			ID:      uint64(i),
			Outcome: Outcome(i % int(numOutcomes)),
			Class:   i % 3,
			Done:    time.Duration(i) * time.Millisecond,
			Latency: time.Duration(i) * 100 * time.Microsecond,
			Joules:  float64(i) * 0.125,
		}
		sum += r.Joules
		j.Append(&r)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return sum
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.journal")
	sum := writeTestJournal(t, path, 20)
	rep, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Model != "unit" || len(rep.Records) != 20 || rep.Torn || rep.Damaged != 0 {
		t.Fatalf("replay: model %q, %d records, torn %v, damaged %d",
			rep.Model, len(rep.Records), rep.Torn, rep.Damaged)
	}
	// JSON float64 round-trips exactly (shortest-representation
	// encoding), so the durable ledger conserves bit-for-bit.
	if rep.TotalJoules() != sum {
		t.Fatalf("journal ledger %v J, wrote %v J", rep.TotalJoules(), sum)
	}
	if rep.Records[5].Outcome != Outcome(5%int(numOutcomes)).String() {
		t.Fatalf("record 5 outcome %q", rep.Records[5].Outcome)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.journal")
	writeTestJournal(t, path, 10)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Kill mid-write: the trailing line loses its last 7 bytes.
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Torn || rep.Damaged != 0 || len(rep.Records) != 9 {
		t.Fatalf("torn tail: torn %v damaged %d records %d, want true/0/9", rep.Torn, rep.Damaged, len(rep.Records))
	}
}

func TestJournalInteriorDamageSkippedAndCounted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.journal")
	writeTestJournal(t, path, 10)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one byte in the middle of the file (not the last line).
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Damaged != 1 || rep.Torn || len(rep.Records) != 9 {
		t.Fatalf("interior damage: torn %v damaged %d records %d, want false/1/9", rep.Torn, rep.Damaged, len(rep.Records))
	}
}

func TestJournalEngineIntegration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.journal")
	e := testEngine(t, &scriptedPredictor{classes: 2}, Config{BatchWindow: time.Millisecond})
	j, err := NewJournal(path, "scripted")
	if err != nil {
		t.Fatal(err)
	}
	e.SetJournal(j)
	for i := 0; i < 8; i++ {
		e.Submit(Request{ID: uint64(i), Row: []float64{float64(i % 2)}, Arrival: time.Duration(i) * 100 * time.Microsecond})
	}
	e.Drain(time.Second)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 8 {
		t.Fatalf("journal holds %d records for 8 requests", len(rep.Records))
	}
	// The durable ledger IS the conservation ledger: journal order is
	// resolution order, so the sum matches the tracker bit-exactly.
	if got := e.Tracker().Joules(energy.Inference); got != rep.TotalJoules() {
		t.Fatalf("journal ledger %v J, tracker %v J", rep.TotalJoules(), got)
	}
}
