package atomicio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestChecksummedRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.bin")
	payload := []byte("columnar frame bytes \x00\x01\x02 with binary content")
	if err := WriteFileChecksummedBytes(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFileChecksummed(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload round-trip mismatch: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestChecksummedEmptyPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.bin")
	if err := WriteFileChecksummedBytes(path, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFileChecksummed(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty payload read back as %d bytes", len(got))
	}
}

// TestChecksummedRefusesSingleByteCorruption is the read-back half of
// the artifact-store contract: write, flip exactly one byte anywhere in
// the file, and the reader must refuse — a silently accepted flip would
// feed a corrupt model to the serving daemon.
func TestChecksummedRefusesSingleByteCorruption(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("the fitted pipeline state this artifact promises to preserve")
	pristine := filepath.Join(dir, "pristine.bin")
	if err := WriteFileChecksummedBytes(pristine, payload); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(pristine)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte at every offset: header corruption (magic, CRC,
	// length) and payload corruption must all be refused.
	for off := 0; off < len(clean); off++ {
		corrupt := append([]byte(nil), clean...)
		corrupt[off] ^= 0x40
		path := filepath.Join(dir, "corrupt.bin")
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFileChecksummed(path); err == nil {
			t.Fatalf("byte flip at offset %d was accepted", off)
		} else if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrMalformed) {
			t.Fatalf("byte flip at offset %d: error %v is outside the refusal taxonomy", off, err)
		}
	}
}

func TestChecksummedRefusesTruncation(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("0123456789abcdef0123456789abcdef")
	path := filepath.Join(dir, "artifact.bin")
	if err := WriteFileChecksummedBytes(path, payload); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{0, 3, envelopeHeaderLen - 1, envelopeHeaderLen, len(clean) - 1} {
		trunc := filepath.Join(dir, "trunc.bin")
		if err := os.WriteFile(trunc, clean[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := ReadFileChecksummed(trunc)
		if err == nil {
			t.Fatalf("truncation to %d bytes was accepted", keep)
		}
		wantKind := ErrChecksum
		if keep < envelopeHeaderLen {
			wantKind = ErrMalformed
		}
		if !errors.Is(err, wantKind) {
			t.Fatalf("truncation to %d bytes: err = %v, want %v", keep, err, wantKind)
		}
	}
}

func TestChecksummedRefusesForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "foreign.json")
	if err := os.WriteFile(path, []byte(`{"not": "an envelope, but comfortably longer than the header"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReadFileChecksummed(path)
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("foreign file: err = %v, want ErrMalformed", err)
	}
}

func TestChecksummedMissingFile(t *testing.T) {
	_, err := ReadFileChecksummed(filepath.Join(t.TempDir(), "absent.bin"))
	if err == nil {
		t.Fatal("reading a missing file succeeded")
	}
	if errors.Is(err, ErrChecksum) || errors.Is(err, ErrMalformed) {
		t.Fatalf("missing file misclassified as damage: %v", err)
	}
}
