// Package atomicio writes results artifacts crash-consistently.
//
// The benchmark's exports (CSV/JSON records, SVG figures, timelines) are
// the deliverable of a run that may have taken hours of virtual sweep —
// and the harness's whole crash-consistency story (journal + resume)
// promises that a kill at any instant never costs more than the cells in
// flight. A bare os.Create breaks that promise at the last step: a kill
// mid-export leaves a torn artifact under the final name, silently
// corrupting the one file the operator keeps. Every results writer
// therefore goes through WriteFile: render into a temp file in the
// destination directory, fsync it, rename it over the target, and fsync
// the directory, so readers only ever observe the old artifact or the
// complete new one — never a prefix.
package atomicio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// testHookBeforeRename, when non-nil, runs after the temp file is
// durable but before it is renamed over the target — the deterministic
// "kill during export" crash point the chaos tests exercise. Returning
// an error simulates the process dying there.
var testHookBeforeRename func(tmp string) error

// WriteFile atomically replaces path with the bytes render produces.
// The content is written to a temporary file in path's directory,
// flushed and fsynced, then renamed over path; the directory is fsynced
// so the rename itself is durable. On any error — including render
// failing partway, or the close/sync failing after a full write — the
// target is left untouched and the temp file is removed, and the error
// is returned so callers exit non-zero instead of shipping a torn
// artifact.
func WriteFile(path string, render func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: creating temp for %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if err := render(tmp); err != nil {
		return fmt.Errorf("atomicio: rendering %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: syncing %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: closing %s: %w", path, err)
	}
	if testHookBeforeRename != nil {
		if err := testHookBeforeRename(tmpName); err != nil {
			return fmt.Errorf("atomicio: %w", err)
		}
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("atomicio: renaming %s into place: %w", path, err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("atomicio: syncing directory of %s: %w", path, err)
	}
	return nil
}

// WriteFileBytes is WriteFile for pre-rendered content.
func WriteFileBytes(path string, data []byte) error {
	return WriteFile(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Filesystems that reject directory fsync (it is not required to work
// everywhere) degrade to the rename's own atomicity.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) && !errors.Is(err, syscall.EPERM) {
		return err
	}
	return nil
}
