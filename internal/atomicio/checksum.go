package atomicio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// Checksummed envelope: atomic writes make torn artifacts impossible,
// but they cannot defend a long-lived artifact against what happens
// after the rename — bit rot, a truncating copy, a stray editor. Files
// that are read back months later (serialized model artifacts, anything
// internal/artifact stores) therefore carry a self-verifying envelope:
//
//	offset 0  "AIO1"                 4-byte magic
//	offset 4  uint32 LE              CRC32 (IEEE) of the payload
//	offset 8  uint64 LE              payload length in bytes
//	offset 16 payload
//
// ReadFileChecksummed refuses anything that does not verify, with a
// two-kind taxonomy: ErrMalformed for files that are not envelopes at
// all (wrong magic, header torn off), ErrChecksum for envelopes whose
// payload no longer matches its recorded length or CRC. Callers layer
// their own format versioning inside the payload.

var (
	// ErrChecksum marks an envelope whose payload fails CRC or length
	// verification — the file was valid once and has since been damaged.
	ErrChecksum = errors.New("payload fails checksum verification")
	// ErrMalformed marks a file that is not a checksummed envelope at
	// all: wrong magic or too short to carry the header.
	ErrMalformed = errors.New("not a checksummed envelope")
)

// envelopeMagic brands checksummed envelopes on disk.
var envelopeMagic = [4]byte{'A', 'I', 'O', '1'}

// envelopeHeaderLen is the fixed byte length of the envelope header.
const envelopeHeaderLen = 16

// WriteFileChecksummed atomically writes the bytes render produces,
// wrapped in the self-verifying envelope ReadFileChecksummed consumes.
// The payload is rendered in memory first: the CRC and length must be
// known before the first payload byte hits the file.
func WriteFileChecksummed(path string, render func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := render(&buf); err != nil {
		return fmt.Errorf("atomicio: rendering checksummed payload for %s: %w", path, err)
	}
	payload := buf.Bytes()
	var header [envelopeHeaderLen]byte
	copy(header[:4], envelopeMagic[:])
	binary.LittleEndian.PutUint32(header[4:8], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint64(header[8:16], uint64(len(payload)))
	return WriteFile(path, func(w io.Writer) error {
		if _, err := w.Write(header[:]); err != nil {
			return err
		}
		_, err := w.Write(payload)
		return err
	})
}

// WriteFileChecksummedBytes is WriteFileChecksummed for pre-rendered
// content.
func WriteFileChecksummedBytes(path string, payload []byte) error {
	return WriteFileChecksummed(path, func(w io.Writer) error {
		_, err := w.Write(payload)
		return err
	})
}

// ReadFileChecksummed reads a checksummed envelope and returns its
// verified payload. Damage is refused, never repaired: a wrong magic or
// missing header is ErrMalformed, a length or CRC mismatch is
// ErrChecksum, and both identify the offending path.
func ReadFileChecksummed(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("atomicio: reading %s: %w", path, err)
	}
	return VerifyChecksummed(path, data)
}

// VerifyChecksummed validates raw envelope bytes (as read from path,
// which is only used for error context) and returns the payload.
func VerifyChecksummed(path string, data []byte) ([]byte, error) {
	if len(data) < envelopeHeaderLen {
		return nil, fmt.Errorf("atomicio: %s: %d-byte file cannot hold the %d-byte envelope header: %w",
			path, len(data), envelopeHeaderLen, ErrMalformed)
	}
	if !bytes.Equal(data[:4], envelopeMagic[:]) {
		return nil, fmt.Errorf("atomicio: %s: magic %q is not %q: %w", path, data[:4], envelopeMagic[:], ErrMalformed)
	}
	wantCRC := binary.LittleEndian.Uint32(data[4:8])
	wantLen := binary.LittleEndian.Uint64(data[8:16])
	payload := data[envelopeHeaderLen:]
	if uint64(len(payload)) != wantLen {
		return nil, fmt.Errorf("atomicio: %s: payload is %d bytes, header promises %d: %w",
			path, len(payload), wantLen, ErrChecksum)
	}
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("atomicio: %s: payload CRC %08x, header promises %08x: %w",
			path, got, wantCRC, ErrChecksum)
	}
	return payload, nil
}
