package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// readDirNames lists the directory, so tests can assert no temp files
// leak past a failed write.
func readDirNames(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := WriteFileBytes(path, []byte("v1\n")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileBytes(path, []byte("v2\n")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v2\n" {
		t.Fatalf("content = %q, want v2", data)
	}
	if names := readDirNames(t, dir); len(names) != 1 {
		t.Fatalf("directory holds %v, want only the artifact", names)
	}
}

// TestRenderFailureLeavesOldArtifact is the export crash-consistency
// contract: a writer that dies partway (a kill mid-export, a failed
// encoder) must leave the previous artifact byte-intact and no temp
// debris behind.
func TestRenderFailureLeavesOldArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileBytes(path, []byte("old artifact\n")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("killed mid-render")
	err := WriteFile(path, func(w io.Writer) error {
		if _, err := io.WriteString(w, "half of the new art"); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the render failure", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "old artifact\n" {
		t.Fatalf("target corrupted to %q after failed render", data)
	}
	if names := readDirNames(t, dir); len(names) != 1 {
		t.Fatalf("temp debris left behind: %v", names)
	}
}

// TestKillBeforeRenameLeavesOldArtifact simulates the process dying at
// the deterministic crash point between a durable temp file and the
// rename: the target must still read as the previous version.
func TestKillBeforeRenameLeavesOldArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fig3.svg")
	if err := WriteFileBytes(path, []byte("<svg>old</svg>")); err != nil {
		t.Fatal(err)
	}
	killed := errors.New("killed before rename")
	testHookBeforeRename = func(tmp string) error {
		// The temp file is fully written and synced at this point.
		data, err := os.ReadFile(tmp)
		if err != nil {
			t.Errorf("temp unreadable at crash point: %v", err)
		}
		if string(data) != "<svg>new</svg>" {
			t.Errorf("temp holds %q at crash point", data)
		}
		return killed
	}
	defer func() { testHookBeforeRename = nil }()
	err := WriteFileBytes(path, []byte("<svg>new</svg>"))
	if !errors.Is(err, killed) {
		t.Fatalf("err = %v, want the injected kill", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "<svg>old</svg>" {
		t.Fatalf("target is %q after kill before rename, want the old artifact", data)
	}
}

func TestWriteFileFreshTarget(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "nested.csv")
	if err := WriteFileBytes(path, []byte("fresh\n")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "fresh\n" {
		t.Fatalf("content = %q", data)
	}
}

// TestRenameTargetBusyPropagatesAndCleansUp: a rename that cannot
// complete — here the target name is occupied by a non-empty directory,
// the classic un-replaceable target — must surface the error and remove
// the temp file instead of leaving it stranded next to the artifact.
func TestRenameTargetBusyPropagatesAndCleansUp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := os.MkdirAll(filepath.Join(path, "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	err := WriteFileBytes(path, []byte("new\n"))
	if err == nil {
		t.Fatal("rename over a non-empty directory succeeded")
	}
	if !strings.Contains(err.Error(), "renaming") {
		t.Errorf("error %v does not identify the rename step", err)
	}
	if names := readDirNames(t, dir); len(names) != 1 || names[0] != "out.csv" {
		t.Errorf("failed rename left temp debris: %v", names)
	}
	if _, err := os.Stat(filepath.Join(path, "occupied")); err != nil {
		t.Errorf("failed write disturbed the busy target: %v", err)
	}
}

// TestSyncFailurePropagates: an fsync that fails after a complete write
// must fail the whole export — acknowledging an artifact the kernel
// never promised to persist would break the crash-consistency story —
// and must still clean up the temp file. The failure is induced by
// closing the temp file out from under WriteFile, which makes the
// subsequent Sync fail the way a revoked descriptor or dying filesystem
// would.
func TestSyncFailurePropagates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileBytes(path, []byte("old\n")); err != nil {
		t.Fatal(err)
	}
	err := WriteFile(path, func(w io.Writer) error {
		f, ok := w.(*os.File)
		if !ok {
			t.Fatalf("render writer is %T, want *os.File", w)
		}
		if _, err := f.WriteString("complete new content\n"); err != nil {
			return err
		}
		return f.Close() // every later file op on the temp now fails
	})
	if err == nil {
		t.Fatal("sync failure was swallowed")
	}
	if !strings.Contains(err.Error(), "syncing") {
		t.Errorf("error %v does not identify the sync step", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "old\n" {
		t.Errorf("target is %q after failed sync, want the old artifact", data)
	}
	if names := readDirNames(t, dir); len(names) != 1 {
		t.Errorf("failed sync left temp debris: %v", names)
	}
}

// TestWriteErrorCleansTemp: a failed Write inside render (disk full, a
// closed descriptor) propagates and leaves no temp file behind.
func TestWriteErrorCleansTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.svg")
	err := WriteFile(path, func(w io.Writer) error {
		if f, ok := w.(*os.File); ok {
			f.Close()
		}
		_, werr := w.Write([]byte("doomed"))
		return werr
	})
	if err == nil {
		t.Fatal("write onto a closed temp succeeded")
	}
	if _, statErr := os.Stat(path); !os.IsNotExist(statErr) {
		t.Errorf("failed first write left a target behind: %v", statErr)
	}
	if names := readDirNames(t, dir); len(names) != 0 {
		t.Errorf("failed write left temp debris: %v", names)
	}
}

func TestWriteFileMissingDirectory(t *testing.T) {
	err := WriteFileBytes(filepath.Join(t.TempDir(), "no-such-dir", "x.csv"), []byte("x"))
	if err == nil {
		t.Fatal("writing into a missing directory succeeded")
	}
	if !strings.Contains(err.Error(), "atomicio:") {
		t.Fatalf("error %v lacks package context", err)
	}
}
