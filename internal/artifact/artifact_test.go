package artifact

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/atomicio"
	"repro/internal/pipeline"
	"repro/internal/tabular"
)

// testFrame builds a small deterministic two-class frame with one
// categorical column, exercising the kinds path of the codec.
func testFrame(rows int) *tabular.Frame {
	rng := rand.New(rand.NewPCG(7, 7))
	f := tabular.NewFrame("unit", rows, 3)
	f.Classes = 2
	f.Y = make([]int, rows)
	f.Kinds = []tabular.FeatureKind{tabular.Numeric, tabular.Numeric, tabular.Categorical}
	for i := 0; i < rows; i++ {
		y := i % 2
		f.Y[i] = y
		f.Cols[0][i] = float64(y) + 0.3*rng.NormFloat64()
		f.Cols[1][i] = -float64(y) + 0.3*rng.NormFloat64()
		f.Cols[2][i] = float64(i % 3)
	}
	return f
}

func testSpec(t *testing.T) Spec {
	t.Helper()
	return Spec{
		Dataset:           "unit",
		Models:            []string{"tree"},
		DataPreprocessors: true,
		ComplexityCaps:    map[string]float64{"tree": 0.8},
		Params:            pipeline.Config{"model": 0, "tree.max_depth": 4},
		Seed:              42,
		Train:             testFrame(80),
	}
}

func TestBuildDeterministic(t *testing.T) {
	spec := testSpec(t)
	a, _, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("two builds of the same spec fingerprint differently: %016x vs %016x",
			a.Fingerprint, b.Fingerprint)
	}
	if a.Classes != 2 || len(a.Priors) != 2 {
		t.Fatalf("classes/priors: got %d classes, %d priors", a.Classes, len(a.Priors))
	}
	if got := a.Priors[0] + a.Priors[1]; math.Abs(got-1) > 1e-12 {
		t.Fatalf("priors sum to %v", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	spec := testSpec(t)
	m, _, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.gart")
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	loaded, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Fingerprint != m.Fingerprint {
		t.Fatalf("fingerprint changed through save/load: %016x vs %016x", loaded.Fingerprint, m.Fingerprint)
	}
	if loaded.Majority != m.Majority || loaded.Classes != m.Classes {
		t.Fatalf("fallback metadata changed: majority %d/%d classes %d/%d",
			loaded.Majority, m.Majority, loaded.Classes, m.Classes)
	}
	// The loaded pipeline must predict bit-identically to the saved one.
	test := testFrame(24)
	wantProba, _ := m.Pipe.PredictProba(test.All())
	gotProba, _ := loaded.Pipe.PredictProba(test.All())
	for i := range wantProba {
		for c := range wantProba[i] {
			if wantProba[i][c] != gotProba[i][c] {
				t.Fatalf("prediction drift at row %d class %d: %v vs %v",
					i, c, gotProba[i][c], wantProba[i][c])
			}
		}
	}
	if loaded.Spec.Params.Key() != spec.Params.Key() {
		t.Fatalf("params changed through save/load: %s vs %s", loaded.Spec.Params.Key(), spec.Params.Key())
	}
}

func saveTestArtifact(t *testing.T) (path string, m *Model) {
	t.Helper()
	m, _, err := Build(testSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	path = filepath.Join(t.TempDir(), "model.gart")
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	return path, m
}

func TestLoadRefusesCorruption(t *testing.T) {
	path, _ := saveTestArtifact(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte (past the 16-byte envelope header); the
	// envelope CRC must catch it before the artifact decoder runs.
	data[16+len(data[16:])/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Load(path)
	if !errors.Is(err, atomicio.ErrChecksum) {
		t.Fatalf("corrupt payload: err = %v, want atomicio.ErrChecksum", err)
	}
}

// rewrap replaces an artifact's payload, recomputing the envelope CRC so
// the tampering survives the checksum layer — the taxonomy layer under
// test is the artifact decoder itself.
func rewrap(t *testing.T, path string, mutate func(payload []byte) []byte) {
	t.Helper()
	payload, err := atomicio.ReadFileChecksummed(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := atomicio.WriteFileChecksummedBytes(path, mutate(append([]byte(nil), payload...))); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRefusesVersionMismatch(t *testing.T) {
	path, _ := saveTestArtifact(t)
	rewrap(t, path, func(p []byte) []byte {
		binary.LittleEndian.PutUint16(p[4:6], Version+1)
		return p
	})
	_, _, err := Load(path)
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: err = %v, want ErrVersion", err)
	}
}

func TestLoadRefusesForeignPayload(t *testing.T) {
	path, _ := saveTestArtifact(t)
	rewrap(t, path, func(p []byte) []byte {
		return []byte("a valid envelope holding something that is not an artifact")
	})
	_, _, err := Load(path)
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("foreign payload: err = %v, want ErrMalformed", err)
	}
}

func TestLoadRefusesTruncatedPayload(t *testing.T) {
	path, _ := saveTestArtifact(t)
	rewrap(t, path, func(p []byte) []byte { return p[:len(p)-9] })
	_, _, err := Load(path)
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("truncated payload: err = %v, want ErrMalformed", err)
	}
}

func TestLoadRefusesFingerprintMismatch(t *testing.T) {
	path, _ := saveTestArtifact(t)
	// Flip the stored fingerprint (the final 8 payload bytes) and
	// recompute the CRC: the refit must disagree and be refused.
	rewrap(t, path, func(p []byte) []byte {
		fp := binary.LittleEndian.Uint64(p[len(p)-8:])
		binary.LittleEndian.PutUint64(p[len(p)-8:], fp^0xdeadbeef)
		return p
	})
	_, _, err := Load(path)
	if !errors.Is(err, ErrFingerprint) {
		t.Fatalf("tampered fingerprint: err = %v, want ErrFingerprint", err)
	}
}

// TestLoadRefusesTamperedTrainingData pins the fingerprint's purpose: a
// tampered training cell (with a recomputed CRC) yields a different
// refit, which the stored fingerprint catches.
func TestLoadRefusesTamperedTrainingData(t *testing.T) {
	path, _ := saveTestArtifact(t)
	rewrap(t, path, func(p []byte) []byte {
		// Poison row 10 of feature column 0 (columns are the 3×80×8
		// bytes just before the trailing fingerprint). The pipeline
		// standard-scales this column, so one 1e9 cell shifts every
		// standardized value and the refit must predict differently.
		off := len(p) - 8 - 3*80*8 + 10*8
		binary.LittleEndian.PutUint64(p[off:], math.Float64bits(1e9))
		return p
	})
	_, _, err := Load(path)
	if err == nil {
		t.Fatal("tampered training data was accepted")
	}
	if !errors.Is(err, ErrFingerprint) && !errors.Is(err, ErrMalformed) {
		t.Fatalf("tampered training data: error %v is outside the refusal taxonomy", err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, _, err := Load(filepath.Join(t.TempDir(), "absent.gart"))
	if err == nil {
		t.Fatal("loading a missing file succeeded")
	}
	for _, sentinel := range []error{atomicio.ErrChecksum, atomicio.ErrMalformed, ErrMalformed, ErrVersion, ErrFingerprint} {
		if errors.Is(err, sentinel) {
			t.Fatalf("missing file misclassified as %v", sentinel)
		}
	}
}

// TestEnvelopeCRCMatchesSpec double-checks the envelope is the atomicio
// one (CRC32-IEEE over the payload) so external tooling can verify
// artifacts without this package.
func TestEnvelopeCRCMatchesSpec(t *testing.T) {
	path, _ := saveTestArtifact(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := binary.LittleEndian.Uint32(data[4:8])
	if got := crc32.ChecksumIEEE(data[16:]); got != want {
		t.Fatalf("envelope CRC %08x, header says %08x", got, want)
	}
}
