// Package artifact persists fitted pipelines as versioned, checksummed
// files the serving daemon can load, verify and hot-reload.
//
// The repository's core invariant — experiments replay bit-identically —
// makes serialization radically simpler than pickling model internals:
// a fitted pipeline is fully determined by (space spec, configuration,
// seed, training frame), because SpaceSpec.Build reconstructs the same
// pipeline object and Pipeline.Fit is deterministic given the same view
// and rng stream. An artifact therefore stores exactly that tuple, plus
// a fingerprint over the fitted model's predictions on a fixed probe of
// the training rows. Load refits deterministically and refuses the
// artifact if the fingerprint disagrees — catching a registry drift, a
// changed kernel, or tampering that survived the CRC (a payload rewritten
// wholesale with a recomputed checksum).
//
// Refusal taxonomy, coarsest to finest:
//
//   - atomicio.ErrMalformed / ErrMalformed: not an envelope, or the
//     payload does not parse as an artifact.
//   - atomicio.ErrChecksum: the envelope is damaged (bit rot, truncation).
//   - ErrVersion: a well-formed artifact from an incompatible format
//     revision; never guessed at.
//   - ErrFingerprint: the artifact decoded and refit, but the fitted
//     model predicts differently than the one that was saved.
//
// Damage is always refused, never repaired. All errors identify the path.
package artifact

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/atomicio"
	"repro/internal/ml"
	"repro/internal/pipeline"
	"repro/internal/tabular"
)

var (
	// ErrMalformed marks a payload that is not an artifact: wrong inner
	// magic or a structure that does not parse.
	ErrMalformed = errors.New("artifact: malformed payload")
	// ErrVersion marks an artifact written by an incompatible format
	// revision.
	ErrVersion = errors.New("artifact: unsupported format version")
	// ErrFingerprint marks an artifact whose deterministic refit predicts
	// differently than the model that was saved.
	ErrFingerprint = errors.New("artifact: fingerprint mismatch after refit")
)

// Version is the current artifact format revision. Readers refuse any
// other value with ErrVersion.
const Version = 1

// artifactMagic brands the payload inside the checksummed envelope, so a
// valid envelope holding some other format is ErrMalformed here rather
// than a garbage decode.
var artifactMagic = [4]byte{'G', 'A', 'R', 'T'}

// probeRows caps how many training rows feed the prediction fingerprint.
const probeRows = 64

// rngStream is the fixed PCG stream constant paired with Spec.Seed, kept
// distinct from the automl harness stream so an artifact refit never
// aliases a search-time rng sequence.
const rngStream = 0xa27f_ac75

// Spec is the deterministic recipe for a fitted pipeline: everything
// Build needs to reconstruct it bit-identically.
type Spec struct {
	// Dataset names the training data (Frame.Name).
	Dataset string
	// Models, DataPreprocessors, FeaturePreprocessors and ComplexityCaps
	// mirror pipeline.SpaceSpec for the space the config was drawn from.
	Models               []string
	DataPreprocessors    bool
	FeaturePreprocessors bool
	ComplexityCaps       map[string]float64
	// Params is the winning hyperparameter configuration.
	Params pipeline.Config
	// Seed feeds the refit rng (paired with the package's fixed stream).
	Seed uint64
	// Train is the labeled training frame the pipeline was fitted on.
	Train *tabular.Frame
}

// spaceSpec converts the stored space fields back to a pipeline.SpaceSpec.
func (s *Spec) spaceSpec() pipeline.SpaceSpec {
	return pipeline.SpaceSpec{
		Models:               s.Models,
		DataPreprocessors:    s.DataPreprocessors,
		FeaturePreprocessors: s.FeaturePreprocessors,
		ComplexityCaps:       s.ComplexityCaps,
	}
}

// Model is a loaded artifact: the refitted pipeline plus the metadata the
// serving layer needs for its fallback tier.
type Model struct {
	Spec Spec
	// Pipe is the fitted pipeline.
	Pipe *pipeline.Pipeline
	// Classes is the class count of the training frame.
	Classes int
	// Majority is the training majority class — the circuit breaker's
	// cheap fallback answer.
	Majority int
	// Priors is the training class distribution, the fallback tier's
	// probability vector.
	Priors []float64
	// Fingerprint hashes the fitted model's predictions on the probe
	// rows; Load verifies it against the stored value.
	Fingerprint uint64
}

// Build fits the pipeline a spec describes, deterministically. The
// returned cost is the FLOPs of the fit plus the fingerprint probe; the
// caller is responsible for charging it to a meter.
func Build(spec Spec) (*Model, ml.Cost, error) {
	var zero ml.Cost
	if spec.Train == nil {
		return nil, zero, fmt.Errorf("artifact: spec has no training frame")
	}
	if err := spec.Train.Validate(); err != nil {
		return nil, zero, fmt.Errorf("artifact: invalid training frame: %w", err)
	}
	pipe, err := spec.spaceSpec().Build(spec.Params, spec.Train.Features())
	if err != nil {
		return nil, zero, fmt.Errorf("artifact: building pipeline: %w", err)
	}
	rng := rand.New(rand.NewPCG(spec.Seed, rngStream))
	cost, err := pipe.Fit(spec.Train.All(), rng)
	if err != nil {
		return nil, cost, fmt.Errorf("artifact: fitting pipeline: %w", err)
	}
	fp, probeCost := fingerprint(pipe, spec.Train)
	cost.Add(probeCost)

	counts := spec.Train.ClassCounts()
	majority, total := 0, 0
	priors := make([]float64, len(counts))
	for _, n := range counts {
		total += n
	}
	for c, n := range counts {
		priors[c] = float64(n) / float64(total)
		if n > counts[majority] {
			majority = c
		}
	}
	return &Model{
		Spec:        spec,
		Pipe:        pipe,
		Classes:     spec.Train.Classes,
		Majority:    majority,
		Priors:      priors,
		Fingerprint: fp,
	}, cost, nil
}

// fingerprint hashes the pipeline's probability outputs on a fixed probe
// of the training rows (FNV-64a over the raw float64 bits, so any
// numeric drift — not just argmax flips — changes the hash).
func fingerprint(pipe *pipeline.Pipeline, train *tabular.Frame) (uint64, ml.Cost) {
	probe := train.All().Head(min(train.Rows(), probeRows))
	proba, cost := pipe.PredictProba(probe)
	h := fnv.New64a()
	var buf [8]byte
	for _, row := range proba {
		for _, p := range row {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p))
			h.Write(buf[:])
		}
	}
	return h.Sum64(), cost
}

// Save writes the model's spec and fingerprint to path as a versioned
// artifact inside atomicio's checksummed envelope, atomically.
func Save(path string, m *Model) error {
	if m == nil || m.Spec.Train == nil {
		return fmt.Errorf("artifact: nothing to save")
	}
	payload, err := encode(m)
	if err != nil {
		return err
	}
	if err := atomicio.WriteFileChecksummedBytes(path, payload); err != nil {
		return fmt.Errorf("artifact: writing %s: %w", path, err)
	}
	return nil
}

// Load reads, verifies and refits an artifact. Every refusal carries the
// path and wraps one of the taxonomy sentinels (atomicio.ErrMalformed,
// atomicio.ErrChecksum, ErrMalformed, ErrVersion, ErrFingerprint). The
// returned cost is the refit plus fingerprint work; the caller charges it.
func Load(path string) (*Model, ml.Cost, error) {
	var zero ml.Cost
	payload, err := atomicio.ReadFileChecksummed(path)
	if err != nil {
		return nil, zero, err
	}
	spec, storedFP, err := decode(payload)
	if err != nil {
		return nil, zero, fmt.Errorf("artifact: %s: %w", path, err)
	}
	m, cost, err := Build(spec)
	if err != nil {
		return nil, cost, fmt.Errorf("artifact: %s: refit failed: %w", path, err)
	}
	if m.Fingerprint != storedFP {
		return nil, cost, fmt.Errorf("artifact: %s: refit fingerprint %016x, artifact promises %016x: %w",
			path, m.Fingerprint, storedFP, ErrFingerprint)
	}
	return m, cost, nil
}

// encode renders the artifact payload (the bytes inside the envelope):
//
//	"GART" | uint16 version | dataset | models | flags byte |
//	caps | params | uint64 seed | frame | uint64 fingerprint
//
// Strings are uint16-length-prefixed; caps and params are count-prefixed
// name/float64 lists in sorted name order (map iteration must not leak
// into the bytes); the frame is rows/features/classes counts, a kinds
// presence byte plus one byte per feature, int32 labels, then the columns
// as little-endian float64 in column-major order. All integers are
// little-endian.
func encode(m *Model) ([]byte, error) {
	spec := &m.Spec
	var b bytes.Buffer
	b.Write(artifactMagic[:])
	writeU16(&b, Version)
	if err := writeString(&b, spec.Dataset); err != nil {
		return nil, err
	}
	if len(spec.Models) > math.MaxUint16 {
		return nil, fmt.Errorf("artifact: %d model names overflow the format", len(spec.Models))
	}
	writeU16(&b, uint16(len(spec.Models)))
	for _, name := range spec.Models {
		if err := writeString(&b, name); err != nil {
			return nil, err
		}
	}
	var flags byte
	if spec.DataPreprocessors {
		flags |= 1
	}
	if spec.FeaturePreprocessors {
		flags |= 2
	}
	b.WriteByte(flags)
	if err := writeFloatMap(&b, spec.ComplexityCaps); err != nil {
		return nil, err
	}
	if err := writeFloatMap(&b, map[string]float64(spec.Params)); err != nil {
		return nil, err
	}
	writeU64(&b, spec.Seed)
	if err := encodeFrame(&b, spec.Train); err != nil {
		return nil, err
	}
	writeU64(&b, m.Fingerprint)
	return b.Bytes(), nil
}

// decode parses an artifact payload back into a spec and its stored
// fingerprint. Parse failures are ErrMalformed; a foreign version is
// ErrVersion.
func decode(payload []byte) (Spec, uint64, error) {
	var spec Spec
	r := &reader{data: payload}
	magic := r.bytes(4)
	if r.err != nil || !bytes.Equal(magic, artifactMagic[:]) {
		return spec, 0, fmt.Errorf("payload magic is not %q: %w", artifactMagic[:], ErrMalformed)
	}
	version := r.u16()
	if r.err != nil {
		return spec, 0, fmt.Errorf("truncated version field: %w", ErrMalformed)
	}
	if version != Version {
		return spec, 0, fmt.Errorf("format version %d, this reader handles %d: %w", version, Version, ErrVersion)
	}
	spec.Dataset = r.str()
	nModels := int(r.u16())
	for i := 0; i < nModels && r.err == nil; i++ {
		spec.Models = append(spec.Models, r.str())
	}
	flags := r.byte()
	spec.DataPreprocessors = flags&1 != 0
	spec.FeaturePreprocessors = flags&2 != 0
	spec.ComplexityCaps = r.floatMap()
	spec.Params = pipeline.Config(r.floatMap())
	spec.Seed = r.u64()
	spec.Train = r.frame(spec.Dataset)
	fp := r.u64()
	if r.err != nil {
		return spec, 0, fmt.Errorf("%w: %w", ErrMalformed, r.err)
	}
	if r.pos != len(r.data) {
		return spec, 0, fmt.Errorf("%d trailing bytes after artifact: %w", len(r.data)-r.pos, ErrMalformed)
	}
	return spec, fp, nil
}

func encodeFrame(b *bytes.Buffer, f *tabular.Frame) error {
	rows, features := f.Rows(), f.Features()
	if rows > math.MaxInt32 || features > math.MaxUint16 {
		return fmt.Errorf("artifact: frame %dx%d overflows the format", rows, features)
	}
	writeU32(b, uint32(rows))
	writeU16(b, uint16(features))
	writeU16(b, uint16(f.Classes))
	if f.Kinds == nil {
		b.WriteByte(0)
	} else {
		b.WriteByte(1)
		for _, k := range f.Kinds {
			b.WriteByte(byte(k))
		}
	}
	if len(f.Y) != rows {
		return fmt.Errorf("artifact: frame has %d labels for %d rows; artifacts need labeled training data", len(f.Y), rows)
	}
	for _, y := range f.Y {
		writeU32(b, uint32(int32(y)))
	}
	var buf [8]byte
	for _, col := range f.Cols {
		for _, v := range col {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			b.Write(buf[:])
		}
	}
	return nil
}

// frame decodes the training frame. Shape and label sanity are checked
// here so a parse error, not a panic, reaches the caller; full invariant
// checking happens in Build via Frame.Validate.
func (r *reader) frame(name string) *tabular.Frame {
	rows := int(r.u32())
	features := int(r.u16())
	classes := int(r.u16())
	if r.err != nil {
		return nil
	}
	// Reject shapes whose payload cannot possibly be present before
	// allocating: 4 bytes per label plus 8 per cell must still fit in
	// the remaining payload (int64 math so huge counts cannot wrap).
	need := int64(rows)*4 + int64(rows)*int64(features)*8
	if need > int64(len(r.data)-r.pos) {
		r.fail(fmt.Errorf("frame shape %dx%d promises %d bytes, %d remain", rows, features, need, len(r.data)-r.pos))
		return nil
	}
	f := &tabular.Frame{Name: name, Classes: classes}
	if kindsPresent := r.byte(); kindsPresent == 1 {
		f.Kinds = make([]tabular.FeatureKind, features)
		for j := range f.Kinds {
			f.Kinds[j] = tabular.FeatureKind(r.byte())
		}
	} else if kindsPresent != 0 && r.err == nil {
		r.fail(fmt.Errorf("kinds presence byte %d", kindsPresent))
		return nil
	}
	f.Y = make([]int, 0, rows)
	for i := 0; i < rows && r.err == nil; i++ {
		f.Y = append(f.Y, int(int32(r.u32())))
	}
	f.Cols = make([][]float64, features)
	backing := make([]float64, 0, rows*features)
	for j := 0; j < features && r.err == nil; j++ {
		start := len(backing)
		for i := 0; i < rows && r.err == nil; i++ {
			backing = append(backing, math.Float64frombits(r.u64()))
		}
		f.Cols[j] = backing[start : start+rows : start+rows]
	}
	if r.err != nil {
		return nil
	}
	return f
}

func writeU16(b *bytes.Buffer, v uint16) {
	var buf [2]byte
	binary.LittleEndian.PutUint16(buf[:], v)
	b.Write(buf[:])
}

func writeU32(b *bytes.Buffer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	b.Write(buf[:])
}

func writeU64(b *bytes.Buffer, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.Write(buf[:])
}

func writeString(b *bytes.Buffer, s string) error {
	if len(s) > math.MaxUint16 {
		return fmt.Errorf("artifact: %d-byte string overflows the format", len(s))
	}
	writeU16(b, uint16(len(s)))
	b.WriteString(s)
	return nil
}

func writeFloatMap(b *bytes.Buffer, m map[string]float64) error {
	if len(m) > math.MaxUint16 {
		return fmt.Errorf("artifact: %d-entry map overflows the format", len(m))
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	writeU16(b, uint16(len(names)))
	for _, name := range names {
		if err := writeString(b, name); err != nil {
			return err
		}
		writeU64(b, math.Float64bits(m[name]))
	}
	return nil
}

// reader is a cursor over the payload that latches its first error, so
// decode reads linearly and checks once.
type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.data) {
		r.fail(fmt.Errorf("truncated at byte %d (want %d more)", r.pos, n))
		return nil
	}
	out := r.data[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *reader) byte() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) str() string {
	n := int(r.u16())
	return string(r.bytes(n))
}

func (r *reader) floatMap() map[string]float64 {
	n := int(r.u16())
	if r.err != nil || n == 0 {
		return nil
	}
	m := make(map[string]float64, n)
	for i := 0; i < n && r.err == nil; i++ {
		name := r.str()
		m[name] = math.Float64frombits(r.u64())
	}
	return m
}
