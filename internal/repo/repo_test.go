package repo

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ml"
)

func testEntry(key string) *Entry {
	return &Entry{
		Fingerprint: "fp01",
		Key:         key,
		System:      "CAML",
		Dataset:     "credit-g",
		Score:       0.8125,
		Record:      []byte(`{"system":"CAML","score":0.8125}`),
		Config:      []byte(`{"model":1}`),
		Rows:        3,
		Classes:     2,
		Proba:       []float64{0.9, 0.1, 0.25, 0.75, math.Copysign(0, -1), 1},
		InferCost:   ml.Cost{Generic: 12, Tree: 3, Matrix: 0.5},
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Repository {
	t.Helper()
	r, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRoundTrip(t *testing.T) {
	r := mustOpen(t, t.TempDir(), Options{})
	want := testEntry("CAML|credit-g|30000000000|1")
	if err := r.Put(want); err != nil {
		t.Fatal(err)
	}
	got, damaged, err := r.Get(want.Fingerprint, want.Key)
	if err != nil || damaged {
		t.Fatalf("Get: damaged=%v err=%v", damaged, err)
	}
	if got == nil {
		t.Fatal("stored cell not found")
	}
	if got.Fingerprint != want.Fingerprint || got.Key != want.Key ||
		got.System != want.System || got.Dataset != want.Dataset ||
		got.Score != want.Score || got.Rows != want.Rows || got.Classes != want.Classes {
		t.Fatalf("header mismatch: %+v", got)
	}
	if string(got.Record) != string(want.Record) || string(got.Config) != string(want.Config) {
		t.Fatalf("record/config mismatch: %q / %q", got.Record, got.Config)
	}
	if got.InferCost != want.InferCost {
		t.Fatalf("cost mismatch: %+v", got.InferCost)
	}
	for i := range want.Proba {
		if math.Float64bits(got.Proba[i]) != math.Float64bits(want.Proba[i]) {
			t.Fatalf("proba[%d] bits differ", i)
		}
	}
}

func TestGetMiss(t *testing.T) {
	r := mustOpen(t, t.TempDir(), Options{})
	e, damaged, err := r.Get("fp01", "nope")
	if e != nil || damaged || err != nil {
		t.Fatalf("miss: got (%v, %v, %v), want (nil, false, nil)", e, damaged, err)
	}
}

func TestPutValidation(t *testing.T) {
	r := mustOpen(t, t.TempDir(), Options{})
	e := testEntry("k")
	e.Proba = e.Proba[:4]
	if err := r.Put(e); err == nil || !strings.Contains(err.Error(), "proba") {
		t.Fatalf("mis-sized proba accepted: %v", err)
	}
	e = testEntry("k")
	e.Fingerprint = ""
	if err := r.Put(e); err == nil {
		t.Fatal("empty fingerprint accepted")
	}
}

func TestReadOnly(t *testing.T) {
	dir := t.TempDir()
	rw := mustOpen(t, dir, Options{})
	if err := rw.Put(testEntry("k")); err != nil {
		t.Fatal(err)
	}
	ro := mustOpen(t, dir, Options{ReadOnly: true})
	if err := ro.Put(testEntry("k2")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only Put: %v, want ErrReadOnly", err)
	}
	if e, _, err := ro.Get("fp01", "k"); err != nil || e == nil {
		t.Fatalf("read-only Get: %v, %v", e, err)
	}
	// Read-only open of a missing store is an error, not an empty store.
	if _, err := Open(filepath.Join(dir, "absent"), Options{ReadOnly: true}); err == nil {
		t.Fatal("read-only open of missing dir accepted")
	}
}

// corrupt locates the single cell file under dir and mutates it.
func corrupt(t *testing.T, dir string, mutate func([]byte) []byte) {
	t.Helper()
	var path string
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(p, cellExt) {
			path = p
		}
		return err
	})
	if err != nil || path == "" {
		t.Fatalf("locating cell file: %v (path %q)", err, path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionRefused(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"torn tail below header", func(b []byte) []byte { return b[:7] }},
		{"torn tail mid payload", func(b []byte) []byte { return b[:len(b)-9] }},
		{"interior bit flip", func(b []byte) []byte {
			b[len(b)/2] ^= 0x40
			return b
		}},
		{"foreign file", func(b []byte) []byte { return []byte("not an envelope") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			r := mustOpen(t, dir, Options{})
			if err := r.Put(testEntry("k")); err != nil {
				t.Fatal(err)
			}
			corrupt(t, dir, tc.mutate)

			// Default policy: refuse with ErrDamaged.
			e, damaged, err := r.Get("fp01", "k")
			if e != nil || !damaged || !errors.Is(err, ErrDamaged) {
				t.Fatalf("refusing repo: got (%v, %v, %v), want (nil, true, ErrDamaged)", e, damaged, err)
			}
			if _, err := r.Walk(func(*Entry) error { return nil }); !errors.Is(err, ErrDamaged) {
				t.Fatalf("refusing walk: %v, want ErrDamaged", err)
			}

			// AllowDamage: a counted miss, not an error.
			tolerant := mustOpen(t, dir, Options{AllowDamage: true})
			e, damaged, err = tolerant.Get("fp01", "k")
			if e != nil || !damaged || err != nil {
				t.Fatalf("tolerant repo: got (%v, %v, %v), want (nil, true, nil)", e, damaged, err)
			}
			n, werr := tolerant.Walk(func(*Entry) error { return nil })
			if werr != nil || n != 1 {
				t.Fatalf("tolerant walk: damaged=%d err=%v", n, werr)
			}
		})
	}
}

func TestKeyAliasingDetected(t *testing.T) {
	dir := t.TempDir()
	r := mustOpen(t, dir, Options{})
	if err := r.Put(testEntry("k")); err != nil {
		t.Fatal(err)
	}
	// Move the intact cell to the path of a different key: the envelope
	// still verifies, but the payload's key no longer matches the path's
	// promise — the hash-collision case.
	orig := r.cellPath("fp01", "k")
	alias := r.cellPath("fp01", "other")
	if err := os.Rename(orig, alias); err != nil {
		t.Fatal(err)
	}
	e, damaged, err := r.Get("fp01", "other")
	if e != nil || !damaged || !errors.Is(err, ErrDamaged) {
		t.Fatalf("aliased cell: got (%v, %v, %v), want (nil, true, ErrDamaged)", e, damaged, err)
	}
}

func TestWalkSorted(t *testing.T) {
	r := mustOpen(t, t.TempDir(), Options{})
	keys := []string{"z|d|1|1", "a|d|1|1", "m|d|1|1"}
	for _, k := range keys {
		e := testEntry(k)
		if err := r.Put(e); err != nil {
			t.Fatal(err)
		}
		e2 := testEntry(k)
		e2.Fingerprint = "fp00"
		if err := r.Put(e2); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	damaged, err := r.Walk(func(e *Entry) error {
		got = append(got, e.Fingerprint+"/"+e.Key)
		return nil
	})
	if err != nil || damaged != 0 {
		t.Fatalf("walk: damaged=%d err=%v", damaged, err)
	}
	want := []string{
		"fp00/a|d|1|1", "fp00/m|d|1|1", "fp00/z|d|1|1",
		"fp01/a|d|1|1", "fp01/m|d|1|1", "fp01/z|d|1|1",
	}
	if len(got) != len(want) {
		t.Fatalf("walked %d entries, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk order[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestPutOverwrites(t *testing.T) {
	r := mustOpen(t, t.TempDir(), Options{})
	e := testEntry("k")
	if err := r.Put(e); err != nil {
		t.Fatal(err)
	}
	e2 := testEntry("k")
	e2.Score = 0.99
	if err := r.Put(e2); err != nil {
		t.Fatal(err)
	}
	got, _, err := r.Get("fp01", "k")
	if err != nil || got == nil || got.Score != 0.99 {
		t.Fatalf("overwrite not visible: %+v err=%v", got, err)
	}
}

func TestEmptyRecordConfigRoundTripNil(t *testing.T) {
	r := mustOpen(t, t.TempDir(), Options{})
	e := testEntry("k")
	e.Record = nil
	e.Config = nil
	if err := r.Put(e); err != nil {
		t.Fatal(err)
	}
	got, _, err := r.Get("fp01", "k")
	if err != nil {
		t.Fatal(err)
	}
	if got.Record != nil || got.Config != nil {
		t.Fatalf("empty blobs decoded non-nil: %v / %v", got.Record, got.Config)
	}
}
