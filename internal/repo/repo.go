// Package repo implements the content-addressed evaluation repository:
// a columnar, CRC-checksummed on-disk store of every benchmark grid
// cell's per-row prediction probabilities, score, record and inference
// cost, keyed by the grid's config fingerprint plus the cell's journal
// identity (TabRepo's central idea, see PAPERS.md).
//
// Once a cell's predictions are persisted, three things become cheap:
//
//   - Reruns: an unchanged grid consults the store and replays every
//     cell as a cache hit — zero fits, byte-identical records and
//     exports (internal/bench wires the consultation into the
//     scheduler and the shard merge).
//   - Ensemble simulation: greedy ensemble selection runs over the
//     cached probabilities without refitting anything; the only energy
//     charged is lookup + blend (internal/ensemble.SimulateSelection).
//   - Zero-shot portfolios: the per-cell winning configurations over
//     the meta-train datasets are the training data for the
//     zero-shot portfolio system (internal/automl.MetaLearnPortfolio).
//
// Layout: one file per cell under <dir>/<fingerprint>/<hash>.cell,
// where hash is a 64-bit digest of the cell key — the path is a pure
// function of (fingerprint, key), so lookups never scan. Each file is
// an atomicio checksummed envelope (magic + CRC32 + length) wrapping a
// versioned binary payload whose probability block is one contiguous
// little-endian float64 slab: a read verifies the CRC and performs a
// single slab copy. Writes go through atomicio's temp+fsync+rename, so
// a kill mid-write can never leave a torn cell under the final name.
//
// Damage is refused, never repaired: a torn tail (truncation below the
// envelope header or a length mismatch), interior CRC damage, a foreign
// payload, or a hash-colliding key all surface as ErrDamaged. A
// repository opened with AllowDamage instead reports such cells as
// damaged misses, which callers must count and surface.
package repo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/atomicio"
	"repro/internal/ml"
	"repro/internal/tabular"
)

var (
	// ErrDamaged marks a cell file that exists but does not verify:
	// torn tail, interior CRC damage, malformed payload, or a key
	// collision. The cell's data must not be used.
	ErrDamaged = errors.New("repo: damaged cell")
	// ErrReadOnly marks a write refused by a read-only repository.
	ErrReadOnly = errors.New("repo: repository is read-only")
)

// cellMagic brands the versioned payload inside the checksummed
// envelope; the trailing byte is the format version.
var cellMagic = [4]byte{'G', 'R', 'C', 1}

// cellExt is the per-cell file extension.
const cellExt = ".cell"

// Entry is one stored evaluation cell: the opaque caller record, the
// fields the repository's own consumers (ensemble simulation, portfolio
// meta-learning) need without decoding it, and the prediction slab.
type Entry struct {
	// Fingerprint is the grid config fingerprint the cell belongs to
	// (bench.Fingerprint); entries of different grids never alias.
	Fingerprint string
	// Key is the cell identity — the journal's cellID string.
	Key string
	// System and Dataset denormalize the key's first two components so
	// store-wide consumers can group entries without parsing keys.
	System  string
	Dataset string
	// Score is the cell's test score (balanced accuracy), duplicated
	// out of Record so portfolio meta-learning reads it directly.
	Score float64
	// Record is the caller's canonical record encoding (bench stores
	// the journal's JSON), replayed verbatim on a cache hit — which is
	// what makes warm reruns byte-identical.
	Record []byte
	// Config is the winning pipeline configuration's JSON, when the
	// system exposed one; nil otherwise. Meta-learning input.
	Config []byte
	// Rows and Classes shape the probability slab.
	Rows    int
	Classes int
	// Proba is the per-row prediction probabilities as one contiguous
	// rows×classes slab (row i, class j at i*classes+j).
	Proba []float64
	// InferCost is the inference compute the predictions cost when they
	// were produced — kept so simulated inference can re-charge it.
	InferCost ml.Cost
}

// Options configure a repository handle.
type Options struct {
	// ReadOnly refuses Put, so a warm verification rerun can never
	// mutate the store it is checking against.
	ReadOnly bool
	// AllowDamage turns damaged cells into counted misses instead of
	// hard errors. Default is to refuse: damage means the store is
	// rotting and the operator should know.
	AllowDamage bool
}

// Repository is a handle on one evaluation store directory. Handles are
// safe for concurrent use: every operation is a pure function of the
// filesystem plus the immutable options, and writes are atomic.
type Repository struct {
	dir  string
	opts Options
}

// Open opens (or, unless read-only, creates) the repository rooted at
// dir. A read-only open of a missing directory is an error — there is
// nothing to consult, and silently treating it as empty would make a
// "warm" verification run vacuous.
func Open(dir string, opts Options) (*Repository, error) {
	if dir == "" {
		return nil, fmt.Errorf("repo: empty repository directory")
	}
	if opts.ReadOnly {
		fi, err := os.Stat(dir)
		if err != nil {
			return nil, fmt.Errorf("repo: opening read-only repository: %w", err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("repo: %s is not a directory", dir)
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("repo: creating repository: %w", err)
	}
	return &Repository{dir: dir, opts: opts}, nil
}

// Dir returns the repository root.
func (r *Repository) Dir() string { return r.dir }

// ReadOnly reports whether Put is refused.
func (r *Repository) ReadOnly() bool { return r.opts.ReadOnly }

// AllowsDamage reports whether damaged cells degrade to counted misses.
func (r *Repository) AllowsDamage() bool { return r.opts.AllowDamage }

// cellPath is the content address of a cell: a pure function of
// (fingerprint, key). The key hash only locates the file; the key
// stored inside the payload is verified on read, so a 64-bit collision
// is detected as damage rather than silently aliasing two cells.
func (r *Repository) cellPath(fingerprint, key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return filepath.Join(r.dir, fingerprint, fmt.Sprintf("%016x%s", h.Sum64(), cellExt))
}

// Get returns the stored entry for (fingerprint, key), or (nil, false,
// nil) when the cell is absent. A cell that exists but fails
// verification returns damaged == true: with AllowDamage the error is
// nil (a counted miss), otherwise the error wraps ErrDamaged.
func (r *Repository) Get(fingerprint, key string) (e *Entry, damaged bool, err error) {
	path := r.cellPath(fingerprint, key)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("repo: reading cell %s: %w", key, err)
	}
	payload, verr := atomicio.VerifyChecksummed(path, data)
	if verr == nil {
		e, verr = decodeEntry(payload)
		if verr == nil && (e.Fingerprint != fingerprint || e.Key != key) {
			verr = fmt.Errorf("cell holds %s/%s, path promises %s/%s (hash collision or foreign file)",
				e.Fingerprint, e.Key, fingerprint, key)
		}
	}
	if verr != nil {
		if r.opts.AllowDamage {
			return nil, true, nil
		}
		return nil, true, fmt.Errorf("repo: cell %s: %w: %w (rerun the cell, or pass -repo-allow-damage to count it as a miss)", key, ErrDamaged, verr)
	}
	return e, false, nil
}

// Put stores one cell, replacing any previous version atomically. The
// entry must be internally consistent: Proba sized Rows×Classes and a
// key/fingerprint present.
func (r *Repository) Put(e *Entry) error {
	if r.opts.ReadOnly {
		return fmt.Errorf("repo: storing cell %s: %w", e.Key, ErrReadOnly)
	}
	if e.Fingerprint == "" || e.Key == "" {
		return fmt.Errorf("repo: cell needs a fingerprint and a key")
	}
	if len(e.Proba) != e.Rows*e.Classes {
		return fmt.Errorf("repo: cell %s: %d proba values cannot hold %d rows × %d classes", e.Key, len(e.Proba), e.Rows, e.Classes)
	}
	path := r.cellPath(e.Fingerprint, e.Key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("repo: creating fingerprint directory: %w", err)
	}
	if err := atomicio.WriteFileChecksummedBytes(path, encodeEntry(e)); err != nil {
		return fmt.Errorf("repo: storing cell %s: %w", e.Key, err)
	}
	return nil
}

// Fingerprints lists the grid fingerprints present in the store, sorted.
func (r *Repository) Fingerprints() ([]string, error) {
	ents, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("repo: listing repository: %w", err)
	}
	var fps []string
	for _, de := range ents {
		if de.IsDir() {
			fps = append(fps, de.Name())
		}
	}
	sort.Strings(fps)
	return fps, nil
}

// Walk visits every intact entry in the store in deterministic order:
// fingerprints sorted, then entries sorted by cell key. Damaged cells
// are counted (and, without AllowDamage, abort the walk with
// ErrDamaged). A non-nil error from fn stops the walk.
func (r *Repository) Walk(fn func(*Entry) error) (damaged int, err error) {
	fps, err := r.Fingerprints()
	if err != nil {
		return 0, err
	}
	for _, fp := range fps {
		d, err := r.walkFingerprint(fp, fn)
		damaged += d
		if err != nil {
			return damaged, err
		}
	}
	return damaged, nil
}

// WalkFingerprint is Walk restricted to one grid fingerprint. A missing
// fingerprint directory is an empty walk, not an error — a cold store
// simply has no entries yet.
func (r *Repository) WalkFingerprint(fingerprint string, fn func(*Entry) error) (damaged int, err error) {
	return r.walkFingerprint(fingerprint, fn)
}

func (r *Repository) walkFingerprint(fingerprint string, fn func(*Entry) error) (damaged int, err error) {
	dir := filepath.Join(r.dir, fingerprint)
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("repo: listing fingerprint %s: %w", fingerprint, err)
	}
	// Decode every cell first, then visit sorted by key: directory
	// order is filename (hash) order, which is deterministic but
	// meaningless — consumers get the canonical key order instead.
	var entries []*Entry
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, cellExt) {
			continue
		}
		path := filepath.Join(dir, name)
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return damaged, fmt.Errorf("repo: reading %s: %w", path, rerr)
		}
		payload, verr := atomicio.VerifyChecksummed(path, data)
		var e *Entry
		if verr == nil {
			e, verr = decodeEntry(payload)
		}
		if verr == nil && e.Fingerprint != fingerprint {
			verr = fmt.Errorf("cell holds fingerprint %s under directory %s", e.Fingerprint, fingerprint)
		}
		if verr != nil {
			damaged++
			if !r.opts.AllowDamage {
				return damaged, fmt.Errorf("repo: %s: %w: %w", path, ErrDamaged, verr)
			}
			continue
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
	for _, e := range entries {
		if err := fn(e); err != nil {
			return damaged, err
		}
	}
	return damaged, nil
}

// ---------------------------------------------------------------------------
// Binary cell codec
// ---------------------------------------------------------------------------

// encodeEntry renders the versioned payload the checksummed envelope
// wraps. Layout (all integers little-endian):
//
//	magic "GRC" + version byte
//	fingerprint, key, system, dataset   (u32-length-prefixed strings)
//	score                               (float64 bits)
//	record, config                      (u32-length-prefixed bytes)
//	rows, classes                       (u32 each)
//	inferCost generic, tree, matrix     (float64 bits each)
//	proba                               (rows×classes contiguous f64 slab)
func encodeEntry(e *Entry) []byte {
	n := 4 + // magic
		4 + len(e.Fingerprint) + 4 + len(e.Key) + 4 + len(e.System) + 4 + len(e.Dataset) +
		8 + // score
		4 + len(e.Record) + 4 + len(e.Config) +
		4 + 4 + // rows, classes
		3*8 + // cost
		tabular.Float64SlabSize(len(e.Proba))
	buf := make([]byte, 0, n)
	buf = append(buf, cellMagic[:]...)
	buf = appendBytes(buf, []byte(e.Fingerprint))
	buf = appendBytes(buf, []byte(e.Key))
	buf = appendBytes(buf, []byte(e.System))
	buf = appendBytes(buf, []byte(e.Dataset))
	buf = appendFloat(buf, e.Score)
	buf = appendBytes(buf, e.Record)
	buf = appendBytes(buf, e.Config)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Rows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(e.Classes))
	buf = appendFloat(buf, e.InferCost.Generic)
	buf = appendFloat(buf, e.InferCost.Tree)
	buf = appendFloat(buf, e.InferCost.Matrix)
	buf = tabular.AppendFloat64Slab(buf, e.Proba)
	return buf
}

// decodeEntry parses an envelope payload back into an Entry. Any
// structural inconsistency is an error the caller classifies as damage.
func decodeEntry(payload []byte) (*Entry, error) {
	d := decoder{data: payload}
	var magic [4]byte
	d.read(magic[:])
	if magic != cellMagic {
		return nil, fmt.Errorf("cell magic %q is not %q", magic[:], cellMagic[:])
	}
	e := &Entry{}
	e.Fingerprint = string(d.bytes())
	e.Key = string(d.bytes())
	e.System = string(d.bytes())
	e.Dataset = string(d.bytes())
	e.Score = d.float()
	e.Record = d.bytes()
	e.Config = d.bytes()
	e.Rows = int(d.uint32())
	e.Classes = int(d.uint32())
	e.InferCost.Generic = d.float()
	e.InferCost.Tree = d.float()
	e.InferCost.Matrix = d.float()
	if d.err != nil {
		return nil, d.err
	}
	want := e.Rows * e.Classes
	if e.Rows < 0 || e.Classes < 0 || len(d.data)-d.off != tabular.Float64SlabSize(want) {
		return nil, fmt.Errorf("cell slab holds %d bytes, header promises %d rows × %d classes", len(d.data)-d.off, e.Rows, e.Classes)
	}
	proba, err := tabular.DecodeFloat64Slab(d.data[d.off:], want)
	if err != nil {
		return nil, err
	}
	e.Proba = proba
	if len(e.Record) == 0 {
		e.Record = nil
	}
	if len(e.Config) == 0 {
		e.Config = nil
	}
	return e, nil
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

func appendFloat(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

// decoder is a cursor over the payload with sticky error handling, so
// the decode reads linearly and checks once.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) read(dst []byte) {
	if d.err != nil {
		return
	}
	if d.off+len(dst) > len(d.data) {
		d.err = fmt.Errorf("cell payload truncated at offset %d", d.off)
		return
	}
	copy(dst, d.data[d.off:])
	d.off += len(dst)
}

func (d *decoder) uint32() uint32 {
	var b [4]byte
	d.read(b[:])
	if d.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b[:])
}

func (d *decoder) float() float64 {
	var b [8]byte
	d.read(b[:])
	if d.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

func (d *decoder) bytes() []byte {
	n := int(d.uint32())
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.data) {
		d.err = fmt.Errorf("cell payload promises %d bytes at offset %d, only %d remain", n, d.off, len(d.data)-d.off)
		return nil
	}
	out := make([]byte, n)
	copy(out, d.data[d.off:])
	d.off += n
	return out
}
