package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Statistical comparison tools for benchmark studies: paired significance
// testing and rank aggregation across datasets, the standard apparatus
// for claims like "system A outperforms system B" over a dataset suite.

// WilcoxonResult is the outcome of a Wilcoxon signed-rank test.
type WilcoxonResult struct {
	// W is the test statistic (the smaller of the signed rank sums).
	W float64
	// N is the number of non-zero-difference pairs used.
	N int
	// Z is the normal approximation of the statistic.
	Z float64
	// PValue is the two-sided p-value under the normal approximation
	// (valid for N >= 10; smaller N reports a conservative 1.0).
	PValue float64
}

// WilcoxonSignedRank runs the paired two-sided Wilcoxon signed-rank test
// on per-dataset score pairs (a[i], b[i]). Ties (zero differences) are
// dropped, tied absolute differences share average ranks.
func WilcoxonSignedRank(a, b []float64) (WilcoxonResult, error) {
	if len(a) != len(b) {
		return WilcoxonResult{}, fmt.Errorf("metrics: paired samples of different length: %d vs %d", len(a), len(b))
	}
	type pair struct {
		abs  float64
		sign float64
	}
	var pairs []pair
	for i := range a {
		d := a[i] - b[i]
		if d == 0 {
			continue
		}
		s := 1.0
		if d < 0 {
			s = -1
		}
		pairs = append(pairs, pair{abs: math.Abs(d), sign: s})
	}
	n := len(pairs)
	if n == 0 {
		return WilcoxonResult{PValue: 1}, nil
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].abs < pairs[j].abs })

	// Average ranks over ties.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && pairs[j].abs == pairs[i].abs {
			j++
		}
		avg := float64(i+j+1) / 2 // ranks are 1-based: positions i+1..j
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		i = j
	}

	var wPlus, wMinus float64
	for i, p := range pairs {
		if p.sign > 0 {
			wPlus += ranks[i]
		} else {
			wMinus += ranks[i]
		}
	}
	w := math.Min(wPlus, wMinus)
	res := WilcoxonResult{W: w, N: n}
	if n < 10 {
		// Normal approximation unreliable; report conservatively.
		res.PValue = 1
		return res, nil
	}
	mean := float64(n*(n+1)) / 4
	sd := math.Sqrt(float64(n*(n+1)*(2*n+1)) / 24)
	res.Z = (w - mean) / sd
	res.PValue = 2 * stdNormalCDF(res.Z)
	if res.PValue > 1 {
		res.PValue = 1
	}
	return res, nil
}

func stdNormalCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// MeanRanks computes each system's mean rank across datasets (rank 1 =
// best score on the dataset; tied scores share average ranks) — the
// Friedman-style aggregation benchmark papers report.
// scores[dataset][system] holds one score per system per dataset; every
// dataset must cover the same systems.
func MeanRanks(scores []map[string]float64) (map[string]float64, error) {
	if len(scores) == 0 {
		return nil, fmt.Errorf("metrics: no datasets to rank over")
	}
	sums := map[string]float64{}
	counts := map[string]int{}
	for d, row := range scores {
		if len(row) < 2 {
			return nil, fmt.Errorf("metrics: dataset %d has %d systems, want >= 2", d, len(row))
		}
		type entry struct {
			system string
			score  float64
		}
		entries := make([]entry, 0, len(row))
		for s, v := range row {
			entries = append(entries, entry{s, v})
		}
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].score != entries[j].score {
				return entries[i].score > entries[j].score // higher = better = lower rank
			}
			return entries[i].system < entries[j].system
		})
		for i := 0; i < len(entries); {
			j := i
			for j < len(entries) && entries[j].score == entries[i].score {
				j++
			}
			avg := float64(i+j+1) / 2
			for k := i; k < j; k++ {
				sums[entries[k].system] += avg
				counts[entries[k].system]++
			}
			i = j
		}
	}
	out := make(map[string]float64, len(sums))
	for s, sum := range sums {
		out[s] = sum / float64(counts[s])
	}
	return out, nil
}
