package metrics

import (
	"math"
	mathrand "math/rand" //greenlint:allow globalrand testing/quick needs a v1 *rand.Rand; the source is explicitly seeded
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestConfusionMatrix(t *testing.T) {
	yTrue := []int{0, 0, 1, 1, 2}
	yPred := []int{0, 1, 1, 1, 0}
	cm := NewConfusionMatrix(yTrue, yPred, 3)
	if cm[0][0] != 1 || cm[0][1] != 1 || cm[1][1] != 2 || cm[2][0] != 1 {
		t.Errorf("confusion matrix %v", cm)
	}
	// Out-of-range labels are ignored.
	cm2 := NewConfusionMatrix([]int{0, 7}, []int{0, 0}, 2)
	if cm2[0][0] != 1 {
		t.Errorf("out-of-range label counted: %v", cm2)
	}
}

func TestBalancedAccuracyHandComputed(t *testing.T) {
	// Class 0 recall 2/3, class 1 recall 1/2: mean 7/12.
	yTrue := []int{0, 0, 0, 1, 1}
	yPred := []int{0, 0, 1, 1, 0}
	want := (2.0/3 + 1.0/2) / 2
	if got := BalancedAccuracy(yTrue, yPred, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("balanced accuracy %v, want %v", got, want)
	}
}

func TestBalancedAccuracyIgnoresAbsentClasses(t *testing.T) {
	yTrue := []int{0, 0, 0}
	yPred := []int{0, 0, 0}
	if got := BalancedAccuracy(yTrue, yPred, 5); got != 1 {
		t.Errorf("absent classes lowered balanced accuracy: %v", got)
	}
	if got := BalancedAccuracy(nil, nil, 3); got != 0 {
		t.Errorf("empty input balanced accuracy %v, want 0", got)
	}
}

// TestBalancedAccuracyImbalanceInvariance property-checks the defining
// feature of balanced accuracy: duplicating instances of one class does
// not change the score.
func TestBalancedAccuracyImbalanceInvariance(t *testing.T) {
	property := func(dup uint8) bool {
		yTrue := []int{0, 0, 1, 1}
		yPred := []int{0, 1, 1, 1}
		base := BalancedAccuracy(yTrue, yPred, 2)
		// Duplicate the (0 -> 0) and (0 -> 1) pair k times each,
		// keeping class 0's recall at 1/2.
		k := int(dup%5) + 1
		for i := 0; i < k; i++ {
			yTrue = append(yTrue, 0, 0)
			yPred = append(yPred, 0, 1)
		}
		return math.Abs(BalancedAccuracy(yTrue, yPred, 2)-base) < 1e-12
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50, Rand: mathrand.New(mathrand.NewSource(9))}); err != nil {
		t.Error(err)
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("accuracy %v, want 2/3", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy not 0")
	}
}

func TestMacroF1(t *testing.T) {
	// Perfect prediction: F1 = 1.
	if got := MacroF1([]int{0, 1, 2}, []int{0, 1, 2}, 3); got != 1 {
		t.Errorf("perfect macro F1 %v", got)
	}
	// All wrong: F1 = 0.
	if got := MacroF1([]int{0, 0}, []int{1, 1}, 2); got != 0 {
		t.Errorf("all-wrong macro F1 %v", got)
	}
	// Hand-computed: class 0 precision 1, recall 1/2 -> F1 2/3; class 1
	// precision 2/3, recall 1 -> F1 4/5. Mean = 11/15.
	yTrue := []int{0, 0, 1, 1}
	yPred := []int{0, 1, 1, 1}
	want := (2.0/3 + 4.0/5) / 2
	if got := MacroF1(yTrue, yPred, 2); math.Abs(got-want) > 1e-12 {
		t.Errorf("macro F1 %v, want %v", got, want)
	}
}

func TestLogLoss(t *testing.T) {
	proba := [][]float64{{0.9, 0.1}, {0.2, 0.8}}
	want := -(math.Log(0.9) + math.Log(0.8)) / 2
	if got := LogLoss([]int{0, 1}, proba); math.Abs(got-want) > 1e-12 {
		t.Errorf("log loss %v, want %v", got, want)
	}
	// Clipping keeps zero probabilities finite.
	if got := LogLoss([]int{0}, [][]float64{{0, 1}}); math.IsInf(got, 1) {
		t.Error("log loss overflowed on zero probability")
	}
	if LogLoss(nil, nil) != 0 {
		t.Error("empty log loss not 0")
	}
}

func TestArgmax(t *testing.T) {
	if got := Argmax([]float64{1, 3, 2}); got != 1 {
		t.Errorf("argmax %d, want 1", got)
	}
	if got := Argmax([]float64{5, 5}); got != 0 {
		t.Errorf("tie should pick the lowest index, got %d", got)
	}
	if got := Argmax(nil); got != -1 {
		t.Errorf("empty argmax %d, want -1", got)
	}
	rows := ArgmaxRows([][]float64{{0.1, 0.9}, {0.8, 0.2}})
	if rows[0] != 1 || rows[1] != 0 {
		t.Errorf("argmax rows %v", rows)
	}
}

func TestMeanStd(t *testing.T) {
	s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Errorf("mean %v, want 5", s.Mean)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Errorf("std %v, want 2", s.Std)
	}
	if got := MeanStd(nil); got != (Summary{}) {
		t.Errorf("empty summary %+v", got)
	}
}

func TestBootstrap(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	// Degenerate case: one run per dataset -> zero variance, mean =
	// grand mean.
	s := Bootstrap([][]float64{{0.6}, {0.8}}, 200, rng)
	if math.Abs(s.Mean-0.7) > 1e-9 || s.Std > 1e-9 {
		t.Errorf("degenerate bootstrap %+v, want mean 0.7 std ~0", s)
	}
	// With run variance the bootstrap mean stays near the grand mean
	// and the std becomes positive.
	perDataset := [][]float64{{0.5, 0.7}, {0.9, 1.1}}
	s = Bootstrap(perDataset, 2000, rng)
	if math.Abs(s.Mean-0.8) > 0.02 {
		t.Errorf("bootstrap mean %v, want ~0.8", s.Mean)
	}
	if s.Std <= 0 {
		t.Error("bootstrap std not positive despite run variance")
	}
	// Empty datasets are skipped entirely.
	if got := Bootstrap([][]float64{{}, {}}, 10, rng); got != (Summary{}) {
		t.Errorf("all-empty bootstrap %+v", got)
	}
	s = Bootstrap([][]float64{{0.5}, {}}, 100, rng)
	if math.Abs(s.Mean-0.5) > 1e-12 {
		t.Errorf("bootstrap with one empty dataset: mean %v, want 0.5", s.Mean)
	}
}
