package metrics

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestWilcoxonDetectsConsistentDifference(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		base := rng.Float64()
		a[i] = base + 0.1 + 0.01*rng.NormFloat64() // consistently better
		b[i] = base
	}
	res, err := WilcoxonSignedRank(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 0.01 {
		t.Errorf("p-value %v for a consistent 0.1 advantage over 30 datasets", res.PValue)
	}
	if res.N != 30 {
		t.Errorf("N = %d, want 30", res.N)
	}
}

func TestWilcoxonNoDifference(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a := make([]float64, 40)
	b := make([]float64, 40)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = a[i] + 0.2*rng.NormFloat64() // symmetric noise
	}
	res, err := WilcoxonSignedRank(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.05 {
		t.Errorf("p-value %v flagged pure noise as significant", res.PValue)
	}
}

func TestWilcoxonEdgeCases(t *testing.T) {
	if _, err := WilcoxonSignedRank([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	// All ties: conservative p = 1.
	res, err := WilcoxonSignedRank([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || res.PValue != 1 || res.N != 0 {
		t.Errorf("all-tie result %+v, err %v", res, err)
	}
	// Small samples stay conservative.
	res, _ = WilcoxonSignedRank([]float64{1, 2, 3}, []float64{0, 0, 0})
	if res.PValue != 1 {
		t.Errorf("small-sample p-value %v, want conservative 1", res.PValue)
	}
}

func TestWilcoxonHandComputed(t *testing.T) {
	// Differences: +1, -2, +3, +4, +5, ... 12 pairs with one negative.
	a := make([]float64, 12)
	b := make([]float64, 12)
	for i := range a {
		d := float64(i + 1)
		if i == 1 {
			d = -d
		}
		a[i] = d
		b[i] = 0
	}
	res, err := WilcoxonSignedRank(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// |d| are 1..12 distinct: negative pair has |d|=2 -> rank 2, so
	// W- = 2, W+ = 78-2 = 76; W = 2.
	if res.W != 2 {
		t.Errorf("W = %v, want 2", res.W)
	}
	if res.PValue > 0.01 {
		t.Errorf("p-value %v, want strongly significant", res.PValue)
	}
}

func TestMeanRanks(t *testing.T) {
	scores := []map[string]float64{
		{"A": 0.9, "B": 0.8, "C": 0.7},
		{"A": 0.6, "B": 0.9, "C": 0.5},
		{"A": 0.9, "B": 0.9, "C": 0.1}, // A and B tie -> average rank 1.5
	}
	ranks, err := MeanRanks(scores)
	if err != nil {
		t.Fatal(err)
	}
	// A: ranks 1, 2, 1.5 -> 1.5; B: 2, 1, 1.5 -> 1.5; C: 3, 3, 3 -> 3.
	if math.Abs(ranks["A"]-1.5) > 1e-9 || math.Abs(ranks["B"]-1.5) > 1e-9 {
		t.Errorf("ranks %v", ranks)
	}
	if ranks["C"] != 3 {
		t.Errorf("C rank %v, want 3", ranks["C"])
	}
	if _, err := MeanRanks(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := MeanRanks([]map[string]float64{{"A": 1}}); err == nil {
		t.Error("single-system dataset accepted")
	}
}
