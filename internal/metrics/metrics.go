// Package metrics implements the evaluation measures of the study.
//
// The paper reports balanced accuracy — "that can handle multi-class and
// unbalanced classification problems" (§3.1) — as the predictive metric,
// and summarizes repeated runs "by repeatedly sampling one result out of 10
// runs with replacement" to capture AutoML non-determinism. This package
// provides those plus the standard classification metrics the AutoML
// systems use internally (log loss for probabilistic search, accuracy,
// macro F1, confusion matrices).
package metrics

import (
	"math"
	"math/rand/v2"
)

// ConfusionMatrix counts predictions: cell [t][p] is the number of
// instances of true class t predicted as class p.
type ConfusionMatrix [][]int

// NewConfusionMatrix builds a confusion matrix over `classes` classes.
// Labels outside [0, classes) are ignored.
func NewConfusionMatrix(yTrue, yPred []int, classes int) ConfusionMatrix {
	m := make(ConfusionMatrix, classes)
	for i := range m {
		m[i] = make([]int, classes)
	}
	for i := range yTrue {
		t, p := yTrue[i], yPred[i]
		if t >= 0 && t < classes && p >= 0 && p < classes {
			m[t][p]++
		}
	}
	return m
}

// BalancedAccuracy is the mean per-class recall, the paper's headline
// metric. Classes absent from yTrue are excluded from the mean. It returns
// 0 when no class is present.
func BalancedAccuracy(yTrue, yPred []int, classes int) float64 {
	cm := NewConfusionMatrix(yTrue, yPred, classes)
	return cm.BalancedAccuracy()
}

// BalancedAccuracy computes the mean per-class recall from the matrix.
func (m ConfusionMatrix) BalancedAccuracy() float64 {
	var sum float64
	present := 0
	for t, row := range m {
		total := 0
		for _, c := range row {
			total += c
		}
		if total == 0 {
			continue
		}
		present++
		sum += float64(row[t]) / float64(total)
	}
	if present == 0 {
		return 0
	}
	return sum / float64(present)
}

// Accuracy is the plain fraction of correct predictions.
func Accuracy(yTrue, yPred []int) float64 {
	if len(yTrue) == 0 {
		return 0
	}
	correct := 0
	for i := range yTrue {
		if yTrue[i] == yPred[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(yTrue))
}

// MacroF1 is the unweighted mean of per-class F1 scores over classes
// present in yTrue.
func MacroF1(yTrue, yPred []int, classes int) float64 {
	cm := NewConfusionMatrix(yTrue, yPred, classes)
	var sum float64
	present := 0
	for c := 0; c < classes; c++ {
		tp := cm[c][c]
		fn, fp := 0, 0
		for o := 0; o < classes; o++ {
			if o == c {
				continue
			}
			fn += cm[c][o]
			fp += cm[o][c]
		}
		if tp+fn == 0 {
			continue // class absent from yTrue
		}
		present++
		if tp == 0 {
			continue
		}
		precision := float64(tp) / float64(tp+fp)
		recall := float64(tp) / float64(tp+fn)
		sum += 2 * precision * recall / (precision + recall)
	}
	if present == 0 {
		return 0
	}
	return sum / float64(present)
}

// LogLoss is the mean negative log-likelihood of the true classes under the
// predicted probability rows. Probabilities are clipped to [eps, 1-eps].
func LogLoss(yTrue []int, proba [][]float64) float64 {
	const eps = 1e-15
	if len(yTrue) == 0 {
		return 0
	}
	var sum float64
	for i, y := range yTrue {
		p := eps
		if y >= 0 && y < len(proba[i]) {
			p = proba[i][y]
		}
		if p < eps {
			p = eps
		}
		if p > 1-eps {
			p = 1 - eps
		}
		sum -= math.Log(p)
	}
	return sum / float64(len(yTrue))
}

// ArgmaxRows converts probability rows to hard labels.
func ArgmaxRows(proba [][]float64) []int {
	labels := make([]int, len(proba))
	for i, row := range proba {
		labels[i] = Argmax(row)
	}
	return labels
}

// Argmax returns the index of the largest value, preferring the lowest
// index on ties. It returns -1 for an empty slice.
func Argmax(v []float64) int {
	if len(v) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// Summary is a mean ± standard deviation pair.
type Summary struct {
	Mean float64
	Std  float64
}

// MeanStd computes the sample mean and (population) standard deviation.
func MeanStd(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	var mean float64
	for _, v := range values {
		mean += v
	}
	mean /= float64(len(values))
	var varsum float64
	for _, v := range values {
		d := v - mean
		varsum += d * d
	}
	return Summary{Mean: mean, Std: math.Sqrt(varsum / float64(len(values)))}
}

// Bootstrap reproduces the paper's uncertainty estimate (§3.1): it
// repeatedly resamples one run result per dataset with replacement,
// averages across datasets, and reports the mean and standard deviation of
// those averages. perDataset[d] holds the repeated-run results of dataset d.
func Bootstrap(perDataset [][]float64, rounds int, rng *rand.Rand) Summary {
	if rounds <= 0 {
		rounds = 1000
	}
	valid := perDataset[:0:0]
	for _, runs := range perDataset {
		if len(runs) > 0 {
			valid = append(valid, runs)
		}
	}
	if len(valid) == 0 {
		return Summary{}
	}
	averages := make([]float64, rounds)
	for r := 0; r < rounds; r++ {
		var sum float64
		for _, runs := range valid {
			sum += runs[rng.IntN(len(runs))]
		}
		averages[r] = sum / float64(len(valid))
	}
	return MeanStd(averages)
}
