// Package preprocess implements the data and feature preprocessors the
// AutoML search spaces contain.
//
// The paper's systems (Table 1) search over scikit-learn-style data
// preprocessors (imputation, scaling, encoding) and feature preprocessors
// (selection, projection). Transformers here follow the fit/transform
// contract: FitTransform learns statistics on training data and returns the
// transformed view; Transform applies the learned statistics to new data
// (validation/test), never re-fitting — the split hygiene the paper's
// systems rely on. Like the models, every operation reports its FLOP cost.
//
// Transforms are column-wise over the input view and write into pooled
// output frames (tabular.NewPooledFrame), so per-call outputs recycle
// memory instead of churning the allocator. The returned view is the
// identity view of a frame the CALLER owns: the pipeline releases
// intermediate frames once the next stage has consumed them (see DESIGN.md
// "Data layout"). Identity passes its input through unchanged, so callers
// must never release a stage output that is the stage input.
package preprocess

import (
	"errors"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/ml"
	"repro/internal/tabular"
)

// Transformer is a fitted-statistics feature transformer.
type Transformer interface {
	// FitTransform learns from ds and returns the transformed view
	// (always all-numeric) plus the compute cost.
	FitTransform(ds tabular.View, rng *rand.Rand) (tabular.View, ml.Cost, error)
	// Transform applies learned statistics to new data.
	Transform(x tabular.View) (tabular.View, ml.Cost)
	// Name identifies the transformer.
	Name() string
}

// outputFrame allocates a pooled all-numeric output frame shaped
// rows(src) × features, carrying over the source's name, class count and
// (when present) labels in view order.
func outputFrame(src tabular.View, features int) *tabular.Frame {
	f := tabular.NewPooledFrame(src.Name(), src.Rows(), features)
	f.Classes = src.Classes()
	if sf := src.Frame(); sf != nil && sf.Y != nil {
		f.Y = src.LabelsInto(nil)
	}
	return f
}

// gatherCol copies feature j of x into dst in view order. Unlike ColInto,
// the result is always dst (never an alias of the frame column), so it is
// safe to transform in place.
func gatherCol(x tabular.View, j int, dst []float64) {
	col := x.ColInto(j, dst)
	if x.Contiguous() {
		copy(dst, col)
	}
}

// Identity passes data through unchanged (the "no preprocessor" choice in
// a search space).
type Identity struct{}

// FitTransform implements Transformer.
func (Identity) FitTransform(ds tabular.View, _ *rand.Rand) (tabular.View, ml.Cost, error) {
	return ds, ml.Cost{}, nil
}

// Transform implements Transformer.
func (Identity) Transform(x tabular.View) (tabular.View, ml.Cost) { return x, ml.Cost{} }

// Name implements Transformer.
func (Identity) Name() string { return "identity" }

// Imputer replaces NaN cells with the column mean (or median) learned on
// the training data.
type Imputer struct {
	// Median selects median imputation instead of mean.
	Median bool
	fill   []float64
}

// FitTransform implements Transformer.
func (im *Imputer) FitTransform(ds tabular.View, _ *rand.Rand) (tabular.View, ml.Cost, error) {
	n, d := ds.Rows(), ds.Features()
	im.fill = make([]float64, d)
	var colBuf []float64
	if !ds.Contiguous() {
		colBuf = make([]float64, n)
	}
	for j := 0; j < d; j++ {
		col := ds.ColInto(j, colBuf)
		var values []float64
		for _, v := range col {
			if !math.IsNaN(v) {
				values = append(values, v)
			}
		}
		if len(values) == 0 {
			im.fill[j] = 0
			continue
		}
		if im.Median {
			sort.Float64s(values)
			im.fill[j] = values[len(values)/2]
		} else {
			var sum float64
			for _, v := range values {
				sum += v
			}
			im.fill[j] = sum / float64(len(values))
		}
	}
	out, cost := im.Transform(ds)
	cost.Generic += float64(n * d)
	return out, cost, nil
}

// Transform implements Transformer.
func (im *Imputer) Transform(x tabular.View) (tabular.View, ml.Cost) {
	n, d := x.Rows(), x.Features()
	out := outputFrame(x, d)
	for j := 0; j < d; j++ {
		dst := out.Cols[j]
		gatherCol(x, j, dst)
		if j < len(im.fill) {
			for i, v := range dst {
				if math.IsNaN(v) {
					dst[i] = im.fill[j]
				}
			}
		}
	}
	return out.All(), ml.Cost{Generic: float64(n * d)}
}

// Name implements Transformer.
func (im *Imputer) Name() string {
	if im.Median {
		return "imputer(median)"
	}
	return "imputer(mean)"
}

// StandardScaler standardizes numeric columns to zero mean and unit
// variance. Categorical code columns are scaled too; encoders should run
// first when that matters.
type StandardScaler struct {
	mean, std []float64
}

// FitTransform implements Transformer. Moments accumulate column by
// column; each column still sums its rows in ascending view order, so the
// learned statistics match the historical row-major pass bit for bit.
func (s *StandardScaler) FitTransform(ds tabular.View, _ *rand.Rand) (tabular.View, ml.Cost, error) {
	n, d := ds.Rows(), ds.Features()
	s.mean = make([]float64, d)
	s.std = make([]float64, d)
	var colBuf []float64
	if !ds.Contiguous() {
		colBuf = make([]float64, n)
	}
	for j := 0; j < d; j++ {
		col := ds.ColInto(j, colBuf)
		for _, v := range col {
			s.mean[j] += v
		}
		s.mean[j] /= float64(n)
		for _, v := range col {
			diff := v - s.mean[j]
			s.std[j] += diff * diff
		}
		s.std[j] = math.Sqrt(s.std[j] / float64(n))
		if s.std[j] < 1e-9 {
			s.std[j] = 1
		}
	}
	out, cost := s.Transform(ds)
	cost.Generic += float64(2 * n * d)
	return out, cost, nil
}

// Transform implements Transformer.
func (s *StandardScaler) Transform(x tabular.View) (tabular.View, ml.Cost) {
	n, d := x.Rows(), x.Features()
	out := outputFrame(x, d)
	for j := 0; j < d; j++ {
		dst := out.Cols[j]
		gatherCol(x, j, dst)
		if j < len(s.mean) {
			mean, std := s.mean[j], s.std[j]
			for i, v := range dst {
				dst[i] = (v - mean) / std
			}
		}
	}
	return out.All(), ml.Cost{Generic: float64(2 * n * d)}
}

// Name implements Transformer.
func (s *StandardScaler) Name() string { return "standard_scaler" }

// MinMaxScaler rescales each column to [0, 1] using training min/max.
type MinMaxScaler struct {
	min, span []float64
}

// FitTransform implements Transformer.
func (s *MinMaxScaler) FitTransform(ds tabular.View, _ *rand.Rand) (tabular.View, ml.Cost, error) {
	n, d := ds.Rows(), ds.Features()
	s.min = make([]float64, d)
	s.span = make([]float64, d)
	var colBuf []float64
	if !ds.Contiguous() {
		colBuf = make([]float64, n)
	}
	for j := 0; j < d; j++ {
		col := ds.ColInto(j, colBuf)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range col {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		s.min[j] = lo
		s.span[j] = hi - lo
		if s.span[j] < 1e-12 {
			s.span[j] = 1
		}
	}
	out, cost := s.Transform(ds)
	cost.Generic += float64(n * d)
	return out, cost, nil
}

// Transform implements Transformer.
func (s *MinMaxScaler) Transform(x tabular.View) (tabular.View, ml.Cost) {
	n, d := x.Rows(), x.Features()
	out := outputFrame(x, d)
	for j := 0; j < d; j++ {
		dst := out.Cols[j]
		gatherCol(x, j, dst)
		if j < len(s.min) {
			lo, span := s.min[j], s.span[j]
			for i, v := range dst {
				dst[i] = (v - lo) / span
			}
		}
	}
	return out.All(), ml.Cost{Generic: float64(2 * n * d)}
}

// Name implements Transformer.
func (s *MinMaxScaler) Name() string { return "minmax_scaler" }

// RobustScaler centers by the median and scales by the interquartile range,
// learned on training data.
type RobustScaler struct {
	center, scale []float64
}

// FitTransform implements Transformer.
func (s *RobustScaler) FitTransform(ds tabular.View, _ *rand.Rand) (tabular.View, ml.Cost, error) {
	n, d := ds.Rows(), ds.Features()
	s.center = make([]float64, d)
	s.scale = make([]float64, d)
	col := make([]float64, n)
	for j := 0; j < d; j++ {
		gatherCol(ds, j, col)
		sort.Float64s(col)
		s.center[j] = col[n/2]
		iqr := col[(3*n)/4] - col[n/4]
		if iqr < 1e-12 {
			iqr = 1
		}
		s.scale[j] = iqr
	}
	out, cost := s.Transform(ds)
	cost.Generic += float64(n*d) * math.Log2(float64(n)+2)
	return out, cost, nil
}

// Transform implements Transformer.
func (s *RobustScaler) Transform(x tabular.View) (tabular.View, ml.Cost) {
	n, d := x.Rows(), x.Features()
	out := outputFrame(x, d)
	for j := 0; j < d; j++ {
		dst := out.Cols[j]
		gatherCol(x, j, dst)
		if j < len(s.center) {
			center, scale := s.center[j], s.scale[j]
			for i, v := range dst {
				dst[i] = (v - center) / scale
			}
		}
	}
	return out.All(), ml.Cost{Generic: float64(2 * n * d)}
}

// Name implements Transformer.
func (s *RobustScaler) Name() string { return "robust_scaler" }

// OneHotEncoder expands categorical columns into indicator columns; numeric
// columns pass through. Categories unseen at fit time map to all-zeros.
type OneHotEncoder struct {
	// MaxCategories caps the expansion per column (0 means 16); columns
	// above the cap are passed through as ordinal codes.
	MaxCategories int
	catCols       []int
	categories    [][]float64 // sorted distinct codes per encoded column
	inputWidth    int
}

// FitTransform implements Transformer.
func (e *OneHotEncoder) FitTransform(ds tabular.View, _ *rand.Rand) (tabular.View, ml.Cost, error) {
	cap := e.MaxCategories
	if cap <= 0 {
		cap = 16
	}
	n, d := ds.Rows(), ds.Features()
	e.inputWidth = d
	e.catCols = e.catCols[:0]
	e.categories = e.categories[:0]
	var colBuf []float64
	if !ds.Contiguous() {
		colBuf = make([]float64, n)
	}
	for j := 0; j < d; j++ {
		if ds.Kind(j) != tabular.Categorical {
			continue
		}
		col := ds.ColInto(j, colBuf)
		seen := map[float64]bool{}
		for _, v := range col {
			seen[v] = true
		}
		if len(seen) > cap {
			continue
		}
		cats := make([]float64, 0, len(seen))
		for v := range seen {
			cats = append(cats, v)
		}
		sort.Float64s(cats)
		e.catCols = append(e.catCols, j)
		e.categories = append(e.categories, cats)
	}
	out, cost := e.Transform(ds)
	cost.Generic += float64(n * d)
	return out, cost, nil
}

// Transform implements Transformer.
func (e *OneHotEncoder) Transform(x tabular.View) (tabular.View, ml.Cost) {
	isCat := make(map[int]int, len(e.catCols)) // column -> index into categories
	for idx, j := range e.catCols {
		isCat[j] = idx
	}
	n, d := x.Rows(), x.Features()
	width := 0
	for j := 0; j < d; j++ {
		if idx, ok := isCat[j]; ok && j < e.inputWidth {
			width += len(e.categories[idx])
		} else {
			width++
		}
	}
	out := outputFrame(x, width)
	var colBuf []float64
	if !x.Contiguous() {
		colBuf = make([]float64, n)
	}
	at := 0
	for j := 0; j < d; j++ {
		col := x.ColInto(j, colBuf)
		if idx, ok := isCat[j]; ok && j < e.inputWidth {
			cats := e.categories[idx]
			// Indicator columns start all-zero; set the matching one.
			for i, v := range col {
				pos := sort.SearchFloat64s(cats, v)
				if pos < len(cats) && cats[pos] == v {
					out.Cols[at+pos][i] = 1
				}
			}
			at += len(cats)
		} else {
			copy(out.Cols[at], col)
			at++
		}
	}
	return out.All(), ml.Cost{Generic: float64(n * (width + 4))}
}

// Name implements Transformer.
func (e *OneHotEncoder) Name() string { return "one_hot" }

// VarianceThreshold drops columns whose training variance falls below the
// threshold.
type VarianceThreshold struct {
	// Threshold is the minimum variance to keep a column.
	Threshold float64
	keep      []int
	width     int
}

// FitTransform implements Transformer.
func (v *VarianceThreshold) FitTransform(ds tabular.View, _ *rand.Rand) (tabular.View, ml.Cost, error) {
	n, d := ds.Rows(), ds.Features()
	v.width = d
	v.keep = v.keep[:0]
	var colBuf []float64
	if !ds.Contiguous() {
		colBuf = make([]float64, n)
	}
	for j := 0; j < d; j++ {
		col := ds.ColInto(j, colBuf)
		var sum, sumSq float64
		for _, val := range col {
			sum += val
			sumSq += val * val
		}
		mean := sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		if variance > v.Threshold {
			v.keep = append(v.keep, j)
		}
	}
	if len(v.keep) == 0 {
		// Keep at least one column so downstream models stay valid.
		v.keep = []int{0}
	}
	out, cost := v.Transform(ds)
	cost.Generic += float64(2 * n * d)
	return out, cost, nil
}

// Transform implements Transformer.
func (v *VarianceThreshold) Transform(x tabular.View) (tabular.View, ml.Cost) {
	n, d := x.Rows(), x.Features()
	out := outputFrame(x, len(v.keep))
	for t, j := range v.keep {
		if j < d {
			gatherCol(x, j, out.Cols[t])
		}
	}
	return out.All(), ml.Cost{Generic: float64(n * len(v.keep))}
}

// Name implements Transformer.
func (v *VarianceThreshold) Name() string { return "variance_threshold" }

// SelectKBest keeps the K columns with the highest ANOVA F-score against
// the class label.
type SelectKBest struct {
	// K is the number of columns kept; 0 keeps half.
	K    int
	keep []int
}

// FitTransform implements Transformer.
func (s *SelectKBest) FitTransform(ds tabular.View, _ *rand.Rand) (tabular.View, ml.Cost, error) {
	n, d := ds.Rows(), ds.Features()
	if n == 0 || d == 0 {
		return tabular.View{}, ml.Cost{}, errors.New("preprocess: select_k_best on empty data")
	}
	k := s.K
	if k <= 0 {
		k = (d + 1) / 2
	}
	if k > d {
		k = d
	}
	type scored struct {
		j     int
		score float64
	}
	labels := ds.LabelsInto(nil)
	var colBuf []float64
	if !ds.Contiguous() {
		colBuf = make([]float64, n)
	}
	scores := make([]scored, d)
	for j := 0; j < d; j++ {
		col := ds.ColInto(j, colBuf)
		scores[j] = scored{j: j, score: fScore(col, labels, ds.Classes())}
	}
	sort.Slice(scores, func(a, b int) bool { return scores[a].score > scores[b].score })
	s.keep = make([]int, k)
	for t := 0; t < k; t++ {
		s.keep[t] = scores[t].j
	}
	sort.Ints(s.keep)
	out, cost := s.Transform(ds)
	cost.Generic += float64(3*n*d) + float64(d)*math.Log2(float64(d)+2)
	return out, cost, nil
}

// fScore computes the one-way ANOVA F statistic of one feature column
// against the class labels.
func fScore(col []float64, labels []int, k int) float64 {
	n := float64(len(col))
	sums := make([]float64, k)
	sumSqs := make([]float64, k)
	counts := make([]float64, k)
	var total float64
	for i, v := range col {
		c := labels[i]
		sums[c] += v
		sumSqs[c] += v * v
		counts[c]++
		total += v
	}
	grand := total / n
	var between, within float64
	groups := 0
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		groups++
		mean := sums[c] / counts[c]
		between += counts[c] * (mean - grand) * (mean - grand)
		within += sumSqs[c] - counts[c]*mean*mean
	}
	if groups < 2 || within < 1e-12 || n <= float64(groups) {
		return 0
	}
	return (between / float64(groups-1)) / (within / (n - float64(groups)))
}

// Transform implements Transformer.
func (s *SelectKBest) Transform(x tabular.View) (tabular.View, ml.Cost) {
	n, d := x.Rows(), x.Features()
	out := outputFrame(x, len(s.keep))
	for t, j := range s.keep {
		if j < d {
			gatherCol(x, j, out.Cols[t])
		}
	}
	return out.All(), ml.Cost{Generic: float64(n * len(s.keep))}
}

// Name implements Transformer.
func (s *SelectKBest) Name() string { return "select_k_best" }

// PCA projects onto the top-K principal components, computed by power
// iteration with deflation on the training covariance.
type PCA struct {
	// K is the number of components; 0 keeps min(8, d).
	K          int
	components [][]float64
	mean       []float64
}

// FitTransform implements Transformer. The covariance accumulates column
// pair by column pair, each cell summing rows in ascending view order, so
// the learned components — and the RNG draws seeding the power iteration —
// match the historical row-major pass exactly.
func (p *PCA) FitTransform(ds tabular.View, rng *rand.Rand) (tabular.View, ml.Cost, error) {
	n, d := ds.Rows(), ds.Features()
	k := p.K
	if k <= 0 {
		k = 8
	}
	if k > d {
		k = d
	}
	// Resolve working columns once: frame aliases for identity views,
	// one arena gather for subset views.
	cols := make([][]float64, d)
	var arena []float64
	if !ds.Contiguous() {
		arena = make([]float64, n*d)
	}
	for j := 0; j < d; j++ {
		var dst []float64
		if arena != nil {
			dst = arena[j*n : (j+1)*n : (j+1)*n]
		}
		cols[j] = ds.ColInto(j, dst)
	}
	p.mean = make([]float64, d)
	for j := 0; j < d; j++ {
		for _, v := range cols[j] {
			p.mean[j] += v
		}
		p.mean[j] /= float64(n)
	}
	// Covariance matrix.
	cov := make([][]float64, d)
	for a := range cov {
		cov[a] = make([]float64, d)
	}
	for a := 0; a < d; a++ {
		colA, meanA := cols[a], p.mean[a]
		for b := a; b < d; b++ {
			colB, meanB := cols[b], p.mean[b]
			var sum float64
			for i := 0; i < n; i++ {
				sum += (colA[i] - meanA) * (colB[i] - meanB)
			}
			cov[a][b] = sum
		}
	}
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			cov[a][b] /= float64(n)
			cov[b][a] = cov[a][b]
		}
	}
	const iters = 30
	p.components = make([][]float64, 0, k)
	for c := 0; c < k; c++ {
		vec := make([]float64, d)
		for j := range vec {
			vec[j] = rng.NormFloat64()
		}
		for it := 0; it < iters; it++ {
			next := make([]float64, d)
			for a := 0; a < d; a++ {
				var sum float64
				for b := 0; b < d; b++ {
					sum += cov[a][b] * vec[b]
				}
				next[a] = sum
			}
			norm := vecNorm(next)
			if norm < 1e-12 {
				break
			}
			for j := range next {
				next[j] /= norm
			}
			vec = next
		}
		// Deflate.
		lambda := rayleigh(cov, vec)
		for a := 0; a < d; a++ {
			for b := 0; b < d; b++ {
				cov[a][b] -= lambda * vec[a] * vec[b]
			}
		}
		p.components = append(p.components, vec)
	}
	out, cost := p.Transform(ds)
	cost.Matrix += float64(n*d*d) + float64(k*iters*d*d)
	return out, cost, nil
}

func vecNorm(v []float64) float64 {
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}

func rayleigh(m [][]float64, v []float64) float64 {
	var num float64
	for a := range m {
		var sum float64
		for b := range m[a] {
			sum += m[a][b] * v[b]
		}
		num += v[a] * sum
	}
	return num
}

// Transform implements Transformer. Projections accumulate feature by
// feature into the output columns; each output cell still sums features in
// ascending order, bit-identical to the historical per-row dot products.
func (p *PCA) Transform(x tabular.View) (tabular.View, ml.Cost) {
	n, d := x.Rows(), x.Features()
	out := outputFrame(x, len(p.components))
	var colBuf []float64
	if !x.Contiguous() {
		colBuf = make([]float64, n)
	}
	for j := 0; j < d; j++ {
		if j >= len(p.mean) {
			break
		}
		col := x.ColInto(j, colBuf)
		mj := p.mean[j]
		for c, comp := range p.components {
			dst := out.Cols[c]
			coeff := comp[j]
			for i, v := range col {
				dst[i] += (v - mj) * coeff
			}
		}
	}
	return out.All(), ml.Cost{Matrix: float64(2 * n * len(p.components) * d)}
}

// Name implements Transformer.
func (p *PCA) Name() string { return "pca" }
