// Package preprocess implements the data and feature preprocessors the
// AutoML search spaces contain.
//
// The paper's systems (Table 1) search over scikit-learn-style data
// preprocessors (imputation, scaling, encoding) and feature preprocessors
// (selection, projection). Transformers here follow the fit/transform
// contract: FitTransform learns statistics on training data and returns the
// transformed copy; Transform applies the learned statistics to new rows
// (validation/test), never re-fitting — the split hygiene the paper's
// systems rely on. Like the models, every operation reports its FLOP cost.
package preprocess

import (
	"errors"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/ml"
	"repro/internal/tabular"
)

// Transformer is a fitted-statistics feature transformer.
type Transformer interface {
	// FitTransform learns from ds and returns the transformed dataset
	// (always all-numeric) plus the compute cost.
	FitTransform(ds *tabular.Dataset, rng *rand.Rand) (*tabular.Dataset, ml.Cost, error)
	// Transform applies learned statistics to raw rows.
	Transform(x [][]float64) ([][]float64, ml.Cost)
	// Name identifies the transformer.
	Name() string
}

// numericDataset wraps transformed rows into an all-numeric dataset sharing
// labels with the source.
func numericDataset(src *tabular.Dataset, x [][]float64) *tabular.Dataset {
	return &tabular.Dataset{Name: src.Name, X: x, Y: src.Y, Classes: src.Classes}
}

// Identity passes data through unchanged (the "no preprocessor" choice in
// a search space).
type Identity struct{}

// FitTransform implements Transformer.
func (Identity) FitTransform(ds *tabular.Dataset, _ *rand.Rand) (*tabular.Dataset, ml.Cost, error) {
	return numericDataset(ds, ds.X), ml.Cost{}, nil
}

// Transform implements Transformer.
func (Identity) Transform(x [][]float64) ([][]float64, ml.Cost) { return x, ml.Cost{} }

// Name implements Transformer.
func (Identity) Name() string { return "identity" }

// Imputer replaces NaN cells with the column mean (or median) learned on
// the training data.
type Imputer struct {
	// Median selects median imputation instead of mean.
	Median bool
	fill   []float64
}

// FitTransform implements Transformer.
func (im *Imputer) FitTransform(ds *tabular.Dataset, _ *rand.Rand) (*tabular.Dataset, ml.Cost, error) {
	d := ds.Features()
	im.fill = make([]float64, d)
	for j := 0; j < d; j++ {
		var values []float64
		for _, row := range ds.X {
			if !math.IsNaN(row[j]) {
				values = append(values, row[j])
			}
		}
		if len(values) == 0 {
			im.fill[j] = 0
			continue
		}
		if im.Median {
			sort.Float64s(values)
			im.fill[j] = values[len(values)/2]
		} else {
			var sum float64
			for _, v := range values {
				sum += v
			}
			im.fill[j] = sum / float64(len(values))
		}
	}
	out, cost := im.Transform(ds.X)
	cost.Generic += float64(ds.Rows() * d)
	return numericDataset(ds, out), cost, nil
}

// Transform implements Transformer.
func (im *Imputer) Transform(x [][]float64) ([][]float64, ml.Cost) {
	out := make([][]float64, len(x))
	for i, row := range x {
		copied := append([]float64(nil), row...)
		for j := range copied {
			if j < len(im.fill) && math.IsNaN(copied[j]) {
				copied[j] = im.fill[j]
			}
		}
		out[i] = copied
	}
	var d int
	if len(x) > 0 {
		d = len(x[0])
	}
	return out, ml.Cost{Generic: float64(len(x) * d)}
}

// Name implements Transformer.
func (im *Imputer) Name() string {
	if im.Median {
		return "imputer(median)"
	}
	return "imputer(mean)"
}

// StandardScaler standardizes numeric columns to zero mean and unit
// variance. Categorical code columns are scaled too; encoders should run
// first when that matters.
type StandardScaler struct {
	mean, std []float64
}

// FitTransform implements Transformer.
func (s *StandardScaler) FitTransform(ds *tabular.Dataset, _ *rand.Rand) (*tabular.Dataset, ml.Cost, error) {
	n, d := ds.Rows(), ds.Features()
	s.mean = make([]float64, d)
	s.std = make([]float64, d)
	for _, row := range ds.X {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	for j := range s.mean {
		s.mean[j] /= float64(n)
	}
	for _, row := range ds.X {
		for j, v := range row {
			diff := v - s.mean[j]
			s.std[j] += diff * diff
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / float64(n))
		if s.std[j] < 1e-9 {
			s.std[j] = 1
		}
	}
	out, cost := s.Transform(ds.X)
	cost.Generic += float64(2 * n * d)
	return numericDataset(ds, out), cost, nil
}

// Transform implements Transformer.
func (s *StandardScaler) Transform(x [][]float64) ([][]float64, ml.Cost) {
	out := make([][]float64, len(x))
	for i, row := range x {
		scaled := make([]float64, len(row))
		for j, v := range row {
			if j < len(s.mean) {
				scaled[j] = (v - s.mean[j]) / s.std[j]
			} else {
				scaled[j] = v
			}
		}
		out[i] = scaled
	}
	var d int
	if len(x) > 0 {
		d = len(x[0])
	}
	return out, ml.Cost{Generic: float64(2 * len(x) * d)}
}

// Name implements Transformer.
func (s *StandardScaler) Name() string { return "standard_scaler" }

// MinMaxScaler rescales each column to [0, 1] using training min/max.
type MinMaxScaler struct {
	min, span []float64
}

// FitTransform implements Transformer.
func (s *MinMaxScaler) FitTransform(ds *tabular.Dataset, _ *rand.Rand) (*tabular.Dataset, ml.Cost, error) {
	n, d := ds.Rows(), ds.Features()
	s.min = make([]float64, d)
	s.span = make([]float64, d)
	for j := 0; j < d; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, row := range ds.X {
			if row[j] < lo {
				lo = row[j]
			}
			if row[j] > hi {
				hi = row[j]
			}
		}
		s.min[j] = lo
		s.span[j] = hi - lo
		if s.span[j] < 1e-12 {
			s.span[j] = 1
		}
	}
	out, cost := s.Transform(ds.X)
	cost.Generic += float64(n * d)
	return numericDataset(ds, out), cost, nil
}

// Transform implements Transformer.
func (s *MinMaxScaler) Transform(x [][]float64) ([][]float64, ml.Cost) {
	out := make([][]float64, len(x))
	for i, row := range x {
		scaled := make([]float64, len(row))
		for j, v := range row {
			if j < len(s.min) {
				scaled[j] = (v - s.min[j]) / s.span[j]
			} else {
				scaled[j] = v
			}
		}
		out[i] = scaled
	}
	var d int
	if len(x) > 0 {
		d = len(x[0])
	}
	return out, ml.Cost{Generic: float64(2 * len(x) * d)}
}

// Name implements Transformer.
func (s *MinMaxScaler) Name() string { return "minmax_scaler" }

// RobustScaler centers by the median and scales by the interquartile range,
// learned on training data.
type RobustScaler struct {
	center, scale []float64
}

// FitTransform implements Transformer.
func (s *RobustScaler) FitTransform(ds *tabular.Dataset, _ *rand.Rand) (*tabular.Dataset, ml.Cost, error) {
	n, d := ds.Rows(), ds.Features()
	s.center = make([]float64, d)
	s.scale = make([]float64, d)
	col := make([]float64, n)
	for j := 0; j < d; j++ {
		for i, row := range ds.X {
			col[i] = row[j]
		}
		sort.Float64s(col)
		s.center[j] = col[n/2]
		iqr := col[(3*n)/4] - col[n/4]
		if iqr < 1e-12 {
			iqr = 1
		}
		s.scale[j] = iqr
	}
	out, cost := s.Transform(ds.X)
	cost.Generic += float64(n*d) * math.Log2(float64(n)+2)
	return numericDataset(ds, out), cost, nil
}

// Transform implements Transformer.
func (s *RobustScaler) Transform(x [][]float64) ([][]float64, ml.Cost) {
	out := make([][]float64, len(x))
	for i, row := range x {
		scaled := make([]float64, len(row))
		for j, v := range row {
			if j < len(s.center) {
				scaled[j] = (v - s.center[j]) / s.scale[j]
			} else {
				scaled[j] = v
			}
		}
		out[i] = scaled
	}
	var d int
	if len(x) > 0 {
		d = len(x[0])
	}
	return out, ml.Cost{Generic: float64(2 * len(x) * d)}
}

// Name implements Transformer.
func (s *RobustScaler) Name() string { return "robust_scaler" }

// OneHotEncoder expands categorical columns into indicator columns; numeric
// columns pass through. Categories unseen at fit time map to all-zeros.
type OneHotEncoder struct {
	// MaxCategories caps the expansion per column (0 means 16); columns
	// above the cap are passed through as ordinal codes.
	MaxCategories int
	catCols       []int
	categories    [][]float64 // sorted distinct codes per encoded column
	inputWidth    int
}

// FitTransform implements Transformer.
func (e *OneHotEncoder) FitTransform(ds *tabular.Dataset, _ *rand.Rand) (*tabular.Dataset, ml.Cost, error) {
	cap := e.MaxCategories
	if cap <= 0 {
		cap = 16
	}
	e.inputWidth = ds.Features()
	e.catCols = e.catCols[:0]
	e.categories = e.categories[:0]
	for j := 0; j < ds.Features(); j++ {
		if ds.Kind(j) != tabular.Categorical {
			continue
		}
		seen := map[float64]bool{}
		for _, row := range ds.X {
			seen[row[j]] = true
		}
		if len(seen) > cap {
			continue
		}
		cats := make([]float64, 0, len(seen))
		for v := range seen {
			cats = append(cats, v)
		}
		sort.Float64s(cats)
		e.catCols = append(e.catCols, j)
		e.categories = append(e.categories, cats)
	}
	out, cost := e.Transform(ds.X)
	cost.Generic += float64(ds.Rows() * ds.Features())
	return numericDataset(ds, out), cost, nil
}

// Transform implements Transformer.
func (e *OneHotEncoder) Transform(x [][]float64) ([][]float64, ml.Cost) {
	isCat := make(map[int]int, len(e.catCols)) // column -> index into categories
	for idx, j := range e.catCols {
		isCat[j] = idx
	}
	out := make([][]float64, len(x))
	width := 0
	for i, row := range x {
		var expanded []float64
		for j, v := range row {
			if idx, ok := isCat[j]; ok && j < e.inputWidth {
				cats := e.categories[idx]
				indicators := make([]float64, len(cats))
				pos := sort.SearchFloat64s(cats, v)
				if pos < len(cats) && cats[pos] == v {
					indicators[pos] = 1
				}
				expanded = append(expanded, indicators...)
			} else {
				expanded = append(expanded, v)
			}
		}
		out[i] = expanded
		width = len(expanded)
	}
	return out, ml.Cost{Generic: float64(len(x) * (width + 4))}
}

// Name implements Transformer.
func (e *OneHotEncoder) Name() string { return "one_hot" }

// VarianceThreshold drops columns whose training variance falls below the
// threshold.
type VarianceThreshold struct {
	// Threshold is the minimum variance to keep a column.
	Threshold float64
	keep      []int
	width     int
}

// FitTransform implements Transformer.
func (v *VarianceThreshold) FitTransform(ds *tabular.Dataset, _ *rand.Rand) (*tabular.Dataset, ml.Cost, error) {
	n, d := ds.Rows(), ds.Features()
	v.width = d
	v.keep = v.keep[:0]
	for j := 0; j < d; j++ {
		var sum, sumSq float64
		for _, row := range ds.X {
			sum += row[j]
			sumSq += row[j] * row[j]
		}
		mean := sum / float64(n)
		variance := sumSq/float64(n) - mean*mean
		if variance > v.Threshold {
			v.keep = append(v.keep, j)
		}
	}
	if len(v.keep) == 0 {
		// Keep at least one column so downstream models stay valid.
		v.keep = []int{0}
	}
	out, cost := v.Transform(ds.X)
	cost.Generic += float64(2 * n * d)
	return numericDataset(ds, out), cost, nil
}

// Transform implements Transformer.
func (v *VarianceThreshold) Transform(x [][]float64) ([][]float64, ml.Cost) {
	out := make([][]float64, len(x))
	for i, row := range x {
		selected := make([]float64, len(v.keep))
		for t, j := range v.keep {
			if j < len(row) {
				selected[t] = row[j]
			}
		}
		out[i] = selected
	}
	return out, ml.Cost{Generic: float64(len(x) * len(v.keep))}
}

// Name implements Transformer.
func (v *VarianceThreshold) Name() string { return "variance_threshold" }

// SelectKBest keeps the K columns with the highest ANOVA F-score against
// the class label.
type SelectKBest struct {
	// K is the number of columns kept; 0 keeps half.
	K    int
	keep []int
}

// FitTransform implements Transformer.
func (s *SelectKBest) FitTransform(ds *tabular.Dataset, _ *rand.Rand) (*tabular.Dataset, ml.Cost, error) {
	n, d := ds.Rows(), ds.Features()
	if n == 0 || d == 0 {
		return nil, ml.Cost{}, errors.New("preprocess: select_k_best on empty data")
	}
	k := s.K
	if k <= 0 {
		k = (d + 1) / 2
	}
	if k > d {
		k = d
	}
	type scored struct {
		j     int
		score float64
	}
	scores := make([]scored, d)
	for j := 0; j < d; j++ {
		scores[j] = scored{j: j, score: fScore(ds, j)}
	}
	sort.Slice(scores, func(a, b int) bool { return scores[a].score > scores[b].score })
	s.keep = make([]int, k)
	for t := 0; t < k; t++ {
		s.keep[t] = scores[t].j
	}
	sort.Ints(s.keep)
	out, cost := s.Transform(ds.X)
	cost.Generic += float64(3*n*d) + float64(d)*math.Log2(float64(d)+2)
	return numericDataset(ds, out), cost, nil
}

// fScore computes the one-way ANOVA F statistic of column j against the
// class labels.
func fScore(ds *tabular.Dataset, j int) float64 {
	n := float64(ds.Rows())
	k := ds.Classes
	sums := make([]float64, k)
	sumSqs := make([]float64, k)
	counts := make([]float64, k)
	var total float64
	for i, row := range ds.X {
		c := ds.Y[i]
		v := row[j]
		sums[c] += v
		sumSqs[c] += v * v
		counts[c]++
		total += v
	}
	grand := total / n
	var between, within float64
	groups := 0
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		groups++
		mean := sums[c] / counts[c]
		between += counts[c] * (mean - grand) * (mean - grand)
		within += sumSqs[c] - counts[c]*mean*mean
	}
	if groups < 2 || within < 1e-12 || n <= float64(groups) {
		return 0
	}
	return (between / float64(groups-1)) / (within / (n - float64(groups)))
}

// Transform implements Transformer.
func (s *SelectKBest) Transform(x [][]float64) ([][]float64, ml.Cost) {
	out := make([][]float64, len(x))
	for i, row := range x {
		selected := make([]float64, len(s.keep))
		for t, j := range s.keep {
			if j < len(row) {
				selected[t] = row[j]
			}
		}
		out[i] = selected
	}
	return out, ml.Cost{Generic: float64(len(x) * len(s.keep))}
}

// Name implements Transformer.
func (s *SelectKBest) Name() string { return "select_k_best" }

// PCA projects onto the top-K principal components, computed by power
// iteration with deflation on the training covariance.
type PCA struct {
	// K is the number of components; 0 keeps min(8, d).
	K          int
	components [][]float64
	mean       []float64
}

// FitTransform implements Transformer.
func (p *PCA) FitTransform(ds *tabular.Dataset, rng *rand.Rand) (*tabular.Dataset, ml.Cost, error) {
	n, d := ds.Rows(), ds.Features()
	k := p.K
	if k <= 0 {
		k = 8
	}
	if k > d {
		k = d
	}
	p.mean = make([]float64, d)
	for _, row := range ds.X {
		for j, v := range row {
			p.mean[j] += v
		}
	}
	for j := range p.mean {
		p.mean[j] /= float64(n)
	}
	// Covariance matrix.
	cov := make([][]float64, d)
	for a := range cov {
		cov[a] = make([]float64, d)
	}
	for _, row := range ds.X {
		for a := 0; a < d; a++ {
			da := row[a] - p.mean[a]
			for b := a; b < d; b++ {
				cov[a][b] += da * (row[b] - p.mean[b])
			}
		}
	}
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			cov[a][b] /= float64(n)
			cov[b][a] = cov[a][b]
		}
	}
	const iters = 30
	p.components = make([][]float64, 0, k)
	for c := 0; c < k; c++ {
		vec := make([]float64, d)
		for j := range vec {
			vec[j] = rng.NormFloat64()
		}
		for it := 0; it < iters; it++ {
			next := make([]float64, d)
			for a := 0; a < d; a++ {
				var sum float64
				for b := 0; b < d; b++ {
					sum += cov[a][b] * vec[b]
				}
				next[a] = sum
			}
			norm := vecNorm(next)
			if norm < 1e-12 {
				break
			}
			for j := range next {
				next[j] /= norm
			}
			vec = next
		}
		// Deflate.
		lambda := rayleigh(cov, vec)
		for a := 0; a < d; a++ {
			for b := 0; b < d; b++ {
				cov[a][b] -= lambda * vec[a] * vec[b]
			}
		}
		p.components = append(p.components, vec)
	}
	out, cost := p.Transform(ds.X)
	cost.Matrix += float64(n*d*d) + float64(k*iters*d*d)
	return numericDataset(ds, out), cost, nil
}

func vecNorm(v []float64) float64 {
	var sum float64
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}

func rayleigh(m [][]float64, v []float64) float64 {
	var num float64
	for a := range m {
		var sum float64
		for b := range m[a] {
			sum += m[a][b] * v[b]
		}
		num += v[a] * sum
	}
	return num
}

// Transform implements Transformer.
func (p *PCA) Transform(x [][]float64) ([][]float64, ml.Cost) {
	out := make([][]float64, len(x))
	for i, row := range x {
		proj := make([]float64, len(p.components))
		for c, comp := range p.components {
			var dot float64
			for j, v := range row {
				if j < len(comp) {
					dot += (v - p.mean[j]) * comp[j]
				}
			}
			proj[c] = dot
		}
		out[i] = proj
	}
	var d int
	if len(x) > 0 {
		d = len(x[0])
	}
	return out, ml.Cost{Matrix: float64(2 * len(x) * len(p.components) * d)}
}

// Name implements Transformer.
func (p *PCA) Name() string { return "pca" }
