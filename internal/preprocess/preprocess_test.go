package preprocess

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/tabular"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0x9e)) }

func sample() *tabular.Dataset {
	return &tabular.Dataset{
		Name: "sample",
		X: [][]float64{
			{1, 10, 0},
			{2, 20, 1},
			{3, 30, 0},
			{4, 40, 1},
		},
		Y:       []int{0, 0, 1, 1},
		Classes: 2,
	}
}

func allTransformers() map[string]Transformer {
	return map[string]Transformer{
		"identity": Identity{},
		"imputer":  &Imputer{},
		"median":   &Imputer{Median: true},
		"standard": &StandardScaler{},
		"minmax":   &MinMaxScaler{},
		"robust":   &RobustScaler{},
		"onehot":   &OneHotEncoder{},
		"variance": &VarianceThreshold{Threshold: 0.01},
		"selectk":  &SelectKBest{K: 2},
		"pca":      &PCA{K: 2},
	}
}

// TestFitTransformMatchesTransform is the core contract: transforming the
// training rows again must reproduce the FitTransform output.
func TestFitTransformMatchesTransform(t *testing.T) {
	for name, tr := range allTransformers() {
		ds := sample()
		out, cost, err := tr.FitTransform(ds, testRNG(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name != "identity" && cost.Total() <= 0 {
			t.Errorf("%s: no cost reported", name)
		}
		again, _ := tr.Transform(ds.X)
		if len(again) != len(out.X) {
			t.Fatalf("%s: row count changed", name)
		}
		for i := range again {
			if len(again[i]) != len(out.X[i]) {
				t.Fatalf("%s: width changed: %d vs %d", name, len(again[i]), len(out.X[i]))
			}
			for j := range again[i] {
				if math.Abs(again[i][j]-out.X[i][j]) > 1e-9 {
					t.Fatalf("%s: cell (%d,%d) differs: %v vs %v", name, i, j, again[i][j], out.X[i][j])
				}
			}
		}
		// Labels and classes pass through.
		if out.Classes != ds.Classes || len(out.Y) != len(ds.Y) {
			t.Errorf("%s: labels altered", name)
		}
	}
}

func TestImputerFillsNaN(t *testing.T) {
	ds := sample()
	ds.X[1][0] = math.NaN()
	im := &Imputer{}
	out, _, err := im.FitTransform(ds, testRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	// Mean of {1,3,4} = 8/3.
	if math.Abs(out.X[1][0]-8.0/3) > 1e-9 {
		t.Errorf("mean imputation %v, want %v", out.X[1][0], 8.0/3)
	}
	med := &Imputer{Median: true}
	ds2 := sample()
	ds2.X[0][1] = math.NaN()
	out2, _, _ := med.FitTransform(ds2, testRNG(3))
	// Median of {20,30,40} = 30.
	if out2.X[0][1] != 30 {
		t.Errorf("median imputation %v, want 30", out2.X[0][1])
	}
	// New rows with NaN are filled at Transform time too.
	filled, _ := im.Transform([][]float64{{math.NaN(), 5, 1}})
	if math.IsNaN(filled[0][0]) {
		t.Error("Transform left NaN behind")
	}
}

func TestStandardScalerStats(t *testing.T) {
	ds := sample()
	s := &StandardScaler{}
	out, _, err := s.FitTransform(ds, testRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		var mean, sq float64
		for _, row := range out.X {
			mean += row[j]
		}
		mean /= float64(len(out.X))
		for _, row := range out.X {
			sq += (row[j] - mean) * (row[j] - mean)
		}
		std := math.Sqrt(sq / float64(len(out.X)))
		if math.Abs(mean) > 1e-9 || math.Abs(std-1) > 1e-9 {
			t.Errorf("column %d standardized to mean %v std %v", j, mean, std)
		}
	}
}

func TestMinMaxScalerRange(t *testing.T) {
	ds := sample()
	s := &MinMaxScaler{}
	out, _, err := s.FitTransform(ds, testRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range out.X {
		for j, v := range row {
			if v < 0 || v > 1 {
				t.Errorf("column %d value %v outside [0,1]", j, v)
			}
		}
	}
	// Constant columns survive (span guards against /0).
	flat := &tabular.Dataset{X: [][]float64{{5}, {5}}, Y: []int{0, 1}, Classes: 2}
	out2, _, err := (&MinMaxScaler{}).FitTransform(flat, testRNG(6))
	if err != nil || math.IsNaN(out2.X[0][0]) {
		t.Errorf("constant column broke min-max: %v %v", out2.X, err)
	}
}

func TestRobustScalerIgnoresOutliers(t *testing.T) {
	ds := &tabular.Dataset{
		X:       [][]float64{{1}, {2}, {3}, {4}, {1000}},
		Y:       []int{0, 0, 1, 1, 1},
		Classes: 2,
	}
	r := &RobustScaler{}
	out, _, err := r.FitTransform(ds, testRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	// The non-outlier points must stay within a few units of zero
	// (median 3, IQR 3): a standard scaler would compress them to ~0.
	for i := 0; i < 4; i++ {
		if math.Abs(out.X[i][0]) > 2 {
			t.Errorf("robust-scaled inlier %v too extreme", out.X[i][0])
		}
	}
}

func TestOneHotEncoder(t *testing.T) {
	ds := &tabular.Dataset{
		X: [][]float64{
			{0, 1.5},
			{1, 2.5},
			{2, 3.5},
			{0, 4.5},
		},
		Y:       []int{0, 1, 0, 1},
		Classes: 2,
		Kinds:   []tabular.FeatureKind{tabular.Categorical, tabular.Numeric},
	}
	e := &OneHotEncoder{}
	out, _, err := e.FitTransform(ds, testRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	// 3 categories + 1 numeric column = 4 output columns.
	if got := out.Features(); got != 4 {
		t.Fatalf("one-hot width %d, want 4", got)
	}
	// Row 0 has category 0 -> indicator [1,0,0].
	if out.X[0][0] != 1 || out.X[0][1] != 0 || out.X[0][2] != 0 {
		t.Errorf("row 0 indicators %v", out.X[0][:3])
	}
	if out.X[0][3] != 1.5 {
		t.Errorf("numeric column displaced: %v", out.X[0])
	}
	// An unseen category maps to all-zero indicators.
	unseen, _ := e.Transform([][]float64{{9, 7.5}})
	if unseen[0][0] != 0 || unseen[0][1] != 0 || unseen[0][2] != 0 {
		t.Errorf("unseen category indicators %v", unseen[0][:3])
	}
	// High-cardinality columns pass through untouched.
	wide := &tabular.Dataset{Classes: 2, Kinds: []tabular.FeatureKind{tabular.Categorical}}
	for i := 0; i < 40; i++ {
		wide.X = append(wide.X, []float64{float64(i)})
		wide.Y = append(wide.Y, i%2)
	}
	e2 := &OneHotEncoder{MaxCategories: 8}
	out2, _, err := e2.FitTransform(wide, testRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if out2.Features() != 1 {
		t.Errorf("high-cardinality column expanded to %d columns", out2.Features())
	}
}

func TestVarianceThresholdDropsConstants(t *testing.T) {
	ds := &tabular.Dataset{
		X: [][]float64{
			{1, 7, 0.1},
			{2, 7, 0.2},
			{3, 7, 0.3},
		},
		Y:       []int{0, 1, 0},
		Classes: 2,
	}
	v := &VarianceThreshold{Threshold: 0.001}
	out, _, err := v.FitTransform(ds, testRNG(10))
	if err != nil {
		t.Fatal(err)
	}
	if out.Features() != 2 {
		t.Fatalf("kept %d columns, want 2 (constant column dropped)", out.Features())
	}
	// All-constant input keeps one column rather than none.
	flat := &tabular.Dataset{X: [][]float64{{1, 1}, {1, 1}}, Y: []int{0, 1}, Classes: 2}
	out2, _, _ := (&VarianceThreshold{Threshold: 0.5}).FitTransform(flat, testRNG(11))
	if out2.Features() != 1 {
		t.Errorf("all-constant input kept %d columns, want 1", out2.Features())
	}
}

func TestSelectKBestKeepsInformativeColumns(t *testing.T) {
	rng := testRNG(12)
	ds := &tabular.Dataset{Classes: 2}
	for i := 0; i < 100; i++ {
		c := i % 2
		// Column 0: informative. Columns 1, 2: noise.
		ds.X = append(ds.X, []float64{5*float64(c) + rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
		ds.Y = append(ds.Y, c)
	}
	s := &SelectKBest{K: 1}
	out, _, err := s.FitTransform(ds, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.Features() != 1 {
		t.Fatalf("kept %d columns, want 1", out.Features())
	}
	// The surviving column must be the informative one: its class means
	// must differ strongly.
	var mean0, mean1 float64
	var n0, n1 int
	for i, row := range out.X {
		if ds.Y[i] == 0 {
			mean0 += row[0]
			n0++
		} else {
			mean1 += row[0]
			n1++
		}
	}
	if math.Abs(mean1/float64(n1)-mean0/float64(n0)) < 3 {
		t.Error("select-k-best kept a noise column")
	}
}

func TestPCADimensionAndVariance(t *testing.T) {
	rng := testRNG(13)
	ds := &tabular.Dataset{Classes: 2}
	// Data varies along one dominant direction.
	for i := 0; i < 120; i++ {
		s := rng.NormFloat64() * 5
		ds.X = append(ds.X, []float64{s + 0.1*rng.NormFloat64(), s + 0.1*rng.NormFloat64(), 0.1 * rng.NormFloat64()})
		ds.Y = append(ds.Y, i%2)
	}
	p := &PCA{K: 2}
	out, _, err := p.FitTransform(ds, rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.Features() != 2 {
		t.Fatalf("PCA output width %d, want 2", out.Features())
	}
	// The first component must capture far more variance than the
	// second.
	var v0, v1 float64
	for _, row := range out.X {
		v0 += row[0] * row[0]
		v1 += row[1] * row[1]
	}
	if v0 < 10*v1 {
		t.Errorf("PCA components not variance-ordered: %v vs %v", v0, v1)
	}
	// K clamps to the width.
	p2 := &PCA{K: 99}
	out2, _, _ := p2.FitTransform(ds, rng)
	if out2.Features() != 3 {
		t.Errorf("PCA K clamp: got %d components", out2.Features())
	}
}

func TestSelectKBestEmptyData(t *testing.T) {
	s := &SelectKBest{K: 1}
	if _, _, err := s.FitTransform(&tabular.Dataset{Classes: 2}, testRNG(14)); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestTransformerNames(t *testing.T) {
	for key, tr := range allTransformers() {
		if tr.Name() == "" {
			t.Errorf("%s: empty name", key)
		}
	}
	if (&Imputer{Median: true}).Name() == (&Imputer{}).Name() {
		t.Error("imputer variants share a name")
	}
}
