package preprocess

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/tabular"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0x9e)) }

func sample() *tabular.Dataset {
	return &tabular.Dataset{
		Name: "sample",
		X: [][]float64{
			{1, 10, 0},
			{2, 20, 1},
			{3, 30, 0},
			{4, 40, 1},
		},
		Y:       []int{0, 0, 1, 1},
		Classes: 2,
	}
}

func allTransformers() map[string]Transformer {
	return map[string]Transformer{
		"identity": Identity{},
		"imputer":  &Imputer{},
		"median":   &Imputer{Median: true},
		"standard": &StandardScaler{},
		"minmax":   &MinMaxScaler{},
		"robust":   &RobustScaler{},
		"onehot":   &OneHotEncoder{},
		"variance": &VarianceThreshold{Threshold: 0.01},
		"selectk":  &SelectKBest{K: 2},
		"pca":      &PCA{K: 2},
	}
}

// TestFitTransformMatchesTransform is the core contract: transforming the
// training rows again must reproduce the FitTransform output.
func TestFitTransformMatchesTransform(t *testing.T) {
	for name, tr := range allTransformers() {
		ds := sample()
		out, cost, err := tr.FitTransform(ds.View(), testRNG(1))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name != "identity" && cost.Total() <= 0 {
			t.Errorf("%s: no cost reported", name)
		}
		outRows := out.MaterializeRows()
		again, _ := tr.Transform(ds.View())
		againRows := again.MaterializeRows()
		if len(againRows) != len(outRows) {
			t.Fatalf("%s: row count changed", name)
		}
		for i := range againRows {
			if len(againRows[i]) != len(outRows[i]) {
				t.Fatalf("%s: width changed: %d vs %d", name, len(againRows[i]), len(outRows[i]))
			}
			for j := range againRows[i] {
				if math.Abs(againRows[i][j]-outRows[i][j]) > 1e-9 {
					t.Fatalf("%s: cell (%d,%d) differs: %v vs %v", name, i, j, againRows[i][j], outRows[i][j])
				}
			}
		}
		// Labels and classes pass through.
		if out.Classes() != ds.Classes || len(out.LabelsInto(nil)) != len(ds.Y) {
			t.Errorf("%s: labels altered", name)
		}
	}
}

func TestImputerFillsNaN(t *testing.T) {
	ds := sample()
	ds.X[1][0] = math.NaN()
	im := &Imputer{}
	out, _, err := im.FitTransform(ds.View(), testRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	// Mean of {1,3,4} = 8/3.
	if math.Abs(out.At(1, 0)-8.0/3) > 1e-9 {
		t.Errorf("mean imputation %v, want %v", out.At(1, 0), 8.0/3)
	}
	med := &Imputer{Median: true}
	ds2 := sample()
	ds2.X[0][1] = math.NaN()
	out2, _, _ := med.FitTransform(ds2.View(), testRNG(3))
	// Median of {20,30,40} = 30.
	if out2.At(0, 1) != 30 {
		t.Errorf("median imputation %v, want 30", out2.At(0, 1))
	}
	// New rows with NaN are filled at Transform time too.
	filled, _ := im.Transform(tabular.FromRows([][]float64{{math.NaN(), 5, 1}}))
	if math.IsNaN(filled.At(0, 0)) {
		t.Error("Transform left NaN behind")
	}
}

func TestStandardScalerStats(t *testing.T) {
	ds := sample()
	s := &StandardScaler{}
	out, _, err := s.FitTransform(ds.View(), testRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	n := out.Rows()
	for j := 0; j < 2; j++ {
		var mean, sq float64
		for i := 0; i < n; i++ {
			mean += out.At(i, j)
		}
		mean /= float64(n)
		for i := 0; i < n; i++ {
			sq += (out.At(i, j) - mean) * (out.At(i, j) - mean)
		}
		std := math.Sqrt(sq / float64(n))
		if math.Abs(mean) > 1e-9 || math.Abs(std-1) > 1e-9 {
			t.Errorf("column %d standardized to mean %v std %v", j, mean, std)
		}
	}
}

func TestMinMaxScalerRange(t *testing.T) {
	ds := sample()
	s := &MinMaxScaler{}
	out, _, err := s.FitTransform(ds.View(), testRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < out.Rows(); i++ {
		for j := 0; j < out.Features(); j++ {
			if v := out.At(i, j); v < 0 || v > 1 {
				t.Errorf("column %d value %v outside [0,1]", j, v)
			}
		}
	}
	// Constant columns survive (span guards against /0).
	flat := &tabular.Dataset{X: [][]float64{{5}, {5}}, Y: []int{0, 1}, Classes: 2}
	out2, _, err := (&MinMaxScaler{}).FitTransform(flat.View(), testRNG(6))
	if err != nil || math.IsNaN(out2.At(0, 0)) {
		t.Errorf("constant column broke min-max: %v %v", out2.At(0, 0), err)
	}
}

func TestRobustScalerIgnoresOutliers(t *testing.T) {
	ds := &tabular.Dataset{
		X:       [][]float64{{1}, {2}, {3}, {4}, {1000}},
		Y:       []int{0, 0, 1, 1, 1},
		Classes: 2,
	}
	r := &RobustScaler{}
	out, _, err := r.FitTransform(ds.View(), testRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	// The non-outlier points must stay within a few units of zero
	// (median 3, IQR 3): a standard scaler would compress them to ~0.
	for i := 0; i < 4; i++ {
		if math.Abs(out.At(i, 0)) > 2 {
			t.Errorf("robust-scaled inlier %v too extreme", out.At(i, 0))
		}
	}
}

func TestOneHotEncoder(t *testing.T) {
	ds := &tabular.Dataset{
		X: [][]float64{
			{0, 1.5},
			{1, 2.5},
			{2, 3.5},
			{0, 4.5},
		},
		Y:       []int{0, 1, 0, 1},
		Classes: 2,
		Kinds:   []tabular.FeatureKind{tabular.Categorical, tabular.Numeric},
	}
	e := &OneHotEncoder{}
	out, _, err := e.FitTransform(ds.View(), testRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	// 3 categories + 1 numeric column = 4 output columns.
	if got := out.Features(); got != 4 {
		t.Fatalf("one-hot width %d, want 4", got)
	}
	// Row 0 has category 0 -> indicator [1,0,0].
	if out.At(0, 0) != 1 || out.At(0, 1) != 0 || out.At(0, 2) != 0 {
		t.Errorf("row 0 indicators [%v %v %v]", out.At(0, 0), out.At(0, 1), out.At(0, 2))
	}
	if out.At(0, 3) != 1.5 {
		t.Errorf("numeric column displaced: %v", out.At(0, 3))
	}
	// An unseen category maps to all-zero indicators.
	unseen, _ := e.Transform(tabular.FromRows([][]float64{{9, 7.5}}))
	if unseen.At(0, 0) != 0 || unseen.At(0, 1) != 0 || unseen.At(0, 2) != 0 {
		t.Errorf("unseen category indicators [%v %v %v]", unseen.At(0, 0), unseen.At(0, 1), unseen.At(0, 2))
	}
	// High-cardinality columns pass through untouched.
	wide := &tabular.Dataset{Classes: 2, Kinds: []tabular.FeatureKind{tabular.Categorical}}
	for i := 0; i < 40; i++ {
		wide.X = append(wide.X, []float64{float64(i)})
		wide.Y = append(wide.Y, i%2)
	}
	e2 := &OneHotEncoder{MaxCategories: 8}
	out2, _, err := e2.FitTransform(wide.View(), testRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if out2.Features() != 1 {
		t.Errorf("high-cardinality column expanded to %d columns", out2.Features())
	}
}

func TestVarianceThresholdDropsConstants(t *testing.T) {
	ds := &tabular.Dataset{
		X: [][]float64{
			{1, 7, 0.1},
			{2, 7, 0.2},
			{3, 7, 0.3},
		},
		Y:       []int{0, 1, 0},
		Classes: 2,
	}
	v := &VarianceThreshold{Threshold: 0.001}
	out, _, err := v.FitTransform(ds.View(), testRNG(10))
	if err != nil {
		t.Fatal(err)
	}
	if out.Features() != 2 {
		t.Fatalf("kept %d columns, want 2 (constant column dropped)", out.Features())
	}
	// All-constant input keeps one column rather than none.
	flat := &tabular.Dataset{X: [][]float64{{1, 1}, {1, 1}}, Y: []int{0, 1}, Classes: 2}
	out2, _, _ := (&VarianceThreshold{Threshold: 0.5}).FitTransform(flat.View(), testRNG(11))
	if out2.Features() != 1 {
		t.Errorf("all-constant input kept %d columns, want 1", out2.Features())
	}
}

func TestSelectKBestKeepsInformativeColumns(t *testing.T) {
	rng := testRNG(12)
	ds := &tabular.Dataset{Classes: 2}
	for i := 0; i < 100; i++ {
		c := i % 2
		// Column 0: informative. Columns 1, 2: noise.
		ds.X = append(ds.X, []float64{5*float64(c) + rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
		ds.Y = append(ds.Y, c)
	}
	s := &SelectKBest{K: 1}
	out, _, err := s.FitTransform(ds.View(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.Features() != 1 {
		t.Fatalf("kept %d columns, want 1", out.Features())
	}
	// The surviving column must be the informative one: its class means
	// must differ strongly.
	var mean0, mean1 float64
	var n0, n1 int
	for i := 0; i < out.Rows(); i++ {
		if ds.Y[i] == 0 {
			mean0 += out.At(i, 0)
			n0++
		} else {
			mean1 += out.At(i, 0)
			n1++
		}
	}
	if math.Abs(mean1/float64(n1)-mean0/float64(n0)) < 3 {
		t.Error("select-k-best kept a noise column")
	}
}

func TestPCADimensionAndVariance(t *testing.T) {
	rng := testRNG(13)
	ds := &tabular.Dataset{Classes: 2}
	// Data varies along one dominant direction.
	for i := 0; i < 120; i++ {
		s := rng.NormFloat64() * 5
		ds.X = append(ds.X, []float64{s + 0.1*rng.NormFloat64(), s + 0.1*rng.NormFloat64(), 0.1 * rng.NormFloat64()})
		ds.Y = append(ds.Y, i%2)
	}
	p := &PCA{K: 2}
	out, _, err := p.FitTransform(ds.View(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if out.Features() != 2 {
		t.Fatalf("PCA output width %d, want 2", out.Features())
	}
	// The first component must capture far more variance than the
	// second.
	var v0, v1 float64
	for i := 0; i < out.Rows(); i++ {
		v0 += out.At(i, 0) * out.At(i, 0)
		v1 += out.At(i, 1) * out.At(i, 1)
	}
	if v0 < 10*v1 {
		t.Errorf("PCA components not variance-ordered: %v vs %v", v0, v1)
	}
	// K clamps to the width.
	p2 := &PCA{K: 99}
	out2, _, _ := p2.FitTransform(ds.View(), rng)
	if out2.Features() != 3 {
		t.Errorf("PCA K clamp: got %d components", out2.Features())
	}
}

func TestSelectKBestEmptyData(t *testing.T) {
	s := &SelectKBest{K: 1}
	if _, _, err := s.FitTransform((&tabular.Dataset{Classes: 2}).View(), testRNG(14)); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestTransformerNames(t *testing.T) {
	for key, tr := range allTransformers() {
		if tr.Name() == "" {
			t.Errorf("%s: empty name", key)
		}
	}
	if (&Imputer{Median: true}).Name() == (&Imputer{}).Name() {
		t.Error("imputer variants share a name")
	}
}
