package hw

import (
	"math/rand" //greenlint:allow globalrand testing/quick needs a v1 *rand.Rand; the source is explicitly seeded
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPresetsValidate(t *testing.T) {
	for _, m := range []*Machine{XeonGold6132(), T4Machine()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	if !T4Machine().GPU.Present {
		t.Error("T4 machine has no GPU")
	}
	if XeonGold6132().GPU.Present {
		t.Error("Xeon testbed unexpectedly has a GPU")
	}
	if got := XeonGold6132().CPU.Cores; got != 28 {
		t.Errorf("Xeon cores = %d, want 28 (paper §3.1)", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Machine)
		want   string
	}{
		{"no cores", func(m *Machine) { m.CPU.Cores = 0 }, "cores"},
		{"zero throughput", func(m *Machine) { m.CPU.FLOPSPerCore = 0 }, "FLOPSPerCore"},
		{"zero matrix", func(m *Machine) { m.CPU.MatrixSpeedup = 0 }, "MatrixSpeedup"},
		{"tree speedup", func(m *Machine) { m.CPU.TreeSlowdown = 0.5 }, "TreeSlowdown"},
		{"power exponent", func(m *Machine) { m.CPU.PowerExponent = 1.5 }, "PowerExponent"},
		{"parallel efficiency", func(m *Machine) { m.CPU.ParallelEfficiency = 0 }, "ParallelEfficiency"},
		{"gpu speedup", func(m *Machine) { m.GPU = GPU{Present: true} }, "GPU MatrixSpeedup"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := XeonGold6132()
			tc.mutate(m)
			err := m.Validate()
			if err == nil {
				t.Fatal("Validate accepted a broken machine")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestDurationKindProfiles(t *testing.T) {
	m := XeonGold6132()
	flops := 1e8
	generic := m.Duration(Work{FLOPs: flops, Kind: KindGeneric}, 1)
	tree := m.Duration(Work{FLOPs: flops, Kind: KindTree}, 1)
	matrix := m.Duration(Work{FLOPs: flops, Kind: KindMatrix}, 1)
	if !(matrix < generic && generic < tree) {
		t.Errorf("kind profile violated: matrix %v, generic %v, tree %v", matrix, generic, tree)
	}
}

func TestDurationAmdahl(t *testing.T) {
	m := XeonGold6132()
	w := Work{FLOPs: 1e8, Kind: KindGeneric, ParallelFrac: 0.9}
	d1 := m.Duration(w, 1)
	d4 := m.Duration(w, 4)
	d8 := m.Duration(w, 8)
	if !(d8 < d4 && d4 < d1) {
		t.Errorf("more cores did not speed up parallel work: %v, %v, %v", d1, d4, d8)
	}
	// The sequential remainder bounds the speedup.
	if d8 < time.Duration(float64(d1)/10) {
		t.Errorf("speedup exceeds the Amdahl bound: %v vs %v", d8, d1)
	}
	// Strictly sequential work gains nothing.
	seq := Work{FLOPs: 1e8, Kind: KindGeneric, ParallelFrac: 0}
	if m.Duration(seq, 8) != m.Duration(seq, 1) {
		t.Error("sequential work sped up with more cores")
	}
}

func TestDurationEdgeCases(t *testing.T) {
	m := XeonGold6132()
	if m.Duration(Work{FLOPs: 0}, 1) != 0 {
		t.Error("zero work took time")
	}
	if m.Duration(Work{FLOPs: -5}, 1) != 0 {
		t.Error("negative work took time")
	}
	if got := m.Duration(Work{FLOPs: 1e-9}, 1); got < time.Nanosecond {
		t.Errorf("tiny work was free: %v", got)
	}
	// Core counts clamp to the machine.
	w := Work{FLOPs: 1e8, ParallelFrac: 1}
	if m.Duration(w, 1000) != m.Duration(w, m.CPU.Cores) {
		t.Error("core count not clamped to the machine")
	}
}

func TestPowerSublinearInCores(t *testing.T) {
	m := XeonGold6132()
	p1 := m.Power(1, false, false)
	p8 := m.Power(8, false, false)
	if p8 <= p1 {
		t.Fatalf("8-core power %v not above 1-core %v", p8, p1)
	}
	if p8 >= 8*p1 {
		t.Errorf("8-core power %v not sublinear vs 8x1-core %v", p8, 8*p1)
	}
	// Paper Fig. 5: CAML on 8 cores needs up to 2.7x the energy of 1
	// core for the same (budget-bound) runtime — the power ratio must
	// sit near that.
	ratio := p8 / p1
	if ratio < 2.2 || ratio > 3.0 {
		t.Errorf("Power(8)/Power(1) = %.2f, want ~2.7 (paper Fig. 5)", ratio)
	}
}

func TestGPUPowerStates(t *testing.T) {
	m := T4Machine()
	off := m.Power(1, false, false)
	idle := m.Power(1, true, false)
	busy := m.Power(1, true, true)
	if !(off < idle && idle < busy) {
		t.Errorf("GPU power states not ordered: off %v, idle %v, busy %v", off, idle, busy)
	}
	// A machine without a GPU ignores the flags.
	x := XeonGold6132()
	if x.Power(1, true, true) != x.Power(1, false, false) {
		t.Error("GPU flags changed power on a GPU-less machine")
	}
}

func TestGPUDuration(t *testing.T) {
	m := T4Machine()
	w := Work{FLOPs: 1e8, Kind: KindMatrix}
	gpuD, onGPU := m.GPUDuration(w)
	if !onGPU {
		t.Fatal("matrix work did not offload")
	}
	cpuD := m.Duration(w, 1)
	if gpuD >= cpuD {
		t.Errorf("GPU matrix %v not faster than CPU %v", gpuD, cpuD)
	}
	// Tree work cannot offload and falls back to one CPU core.
	tw := Work{FLOPs: 1e8, Kind: KindTree}
	fallD, onGPU := m.GPUDuration(tw)
	if onGPU {
		t.Error("tree work offloaded to GPU")
	}
	if fallD != m.Duration(tw, 1) {
		t.Errorf("fallback duration %v != single-core %v", fallD, m.Duration(tw, 1))
	}
	// No GPU: everything falls back.
	x := XeonGold6132()
	if _, onGPU := x.GPUDuration(w); onGPU {
		t.Error("GPU-less machine offloaded")
	}
}

func TestEnergyIsPowerTimesTime(t *testing.T) {
	m := XeonGold6132()
	d := 10 * time.Second
	want := m.Power(4, false, false) * 10
	if got := m.Energy(d, 4, false, false); got != want {
		t.Errorf("Energy = %v, want %v", got, want)
	}
}

// TestDurationMonotoneInWork property-checks that more FLOPs never take
// less time.
func TestDurationMonotoneInWork(t *testing.T) {
	m := XeonGold6132()
	property := func(a, b uint32, kind uint8) bool {
		lo, hi := float64(a), float64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		k := WorkKind(kind % 3)
		return m.Duration(Work{FLOPs: lo, Kind: k}, 1) <= m.Duration(Work{FLOPs: hi, Kind: k}, 1)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(34))}); err != nil {
		t.Error(err)
	}
}

func TestWorkKindString(t *testing.T) {
	for kind, want := range map[WorkKind]string{
		KindGeneric:  "generic",
		KindTree:     "tree",
		KindMatrix:   "matrix",
		WorkKind(99): "WorkKind(99)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(kind), got, want)
		}
	}
}
