// Package hw models the hardware the paper's experiments ran on.
//
// The paper measures energy with CodeCarbon on two physical testbeds: a
// 28-core Xeon Gold 6132 machine (CPU experiments) and an 8-core machine
// with one NVIDIA T4 (GPU experiments). This reproduction has no physical
// access to such machines, so hardware is modelled explicitly: a Machine
// converts abstract work (FLOPs, annotated with a workload kind and an
// Amdahl parallel fraction) into virtual seconds, and exposes a power model
// (watts as a function of busy cores and GPU activity) that the energy
// tracker integrates over virtual time.
//
// The model is deliberately simple but encodes the three mechanisms the
// paper's hardware findings rest on:
//
//   - multi-core power grows sublinearly (shared caches, shared uncore), so
//     a budget-bound workload burns more — but less than linearly more —
//     energy on more cores (paper Fig. 5, CAML);
//   - embarrassingly parallel workloads finish earlier on more cores, and
//     "less runtime yields less consumed energy" (paper Fig. 5, AutoGluon);
//   - GPUs accelerate only matrix workloads; anything else leaves the GPU
//     drawing idle power for nothing (paper Table 3).
package hw

import (
	"fmt"
	"math"
	"time"
)

// WorkKind classifies a unit of work by how hardware executes it.
type WorkKind int

const (
	// KindGeneric is scalar, branchy compute: scikit-learn-style training
	// loops, distance computations, bookkeeping.
	KindGeneric WorkKind = iota
	// KindTree is decision-tree induction and traversal: branchy,
	// cache-unfriendly, no vectorization and no GPU benefit.
	KindTree
	// KindMatrix is dense linear algebra: MLP layers, PCA, attention.
	// It vectorizes on CPU and accelerates strongly on GPU.
	KindMatrix
)

// String implements fmt.Stringer.
func (k WorkKind) String() string {
	switch k {
	case KindGeneric:
		return "generic"
	case KindTree:
		return "tree"
	case KindMatrix:
		return "matrix"
	default:
		return fmt.Sprintf("WorkKind(%d)", int(k))
	}
}

// Work is one schedulable unit of compute.
type Work struct {
	// FLOPs is the abstract operation count of the unit.
	FLOPs float64
	// Kind selects the throughput profile.
	Kind WorkKind
	// ParallelFrac is the Amdahl fraction of the unit that can use
	// multiple cores (0 = strictly sequential, 1 = perfectly parallel).
	ParallelFrac float64
}

// CPU describes a processor package.
type CPU struct {
	// Cores is the number of physical cores.
	Cores int
	// FLOPSPerCore is the effective scalar throughput of one core in
	// FLOPs per virtual second. It is a calibration constant: the paper
	// ran full-size datasets for 10s–5min budgets; this reproduction runs
	// scaled-down datasets, so throughput is scaled down with them to
	// keep the number of pipeline evaluations per budget realistic.
	FLOPSPerCore float64
	// MatrixSpeedup is the vectorization factor KindMatrix work enjoys
	// over KindGeneric on this CPU.
	MatrixSpeedup float64
	// TreeSlowdown is the throughput penalty (>= 1) for KindTree work.
	TreeSlowdown float64
	// BasePower is the package's idle draw in watts (uncore, DRAM).
	BasePower float64
	// CorePower is the additional draw of one busy core in watts.
	CorePower float64
	// PowerExponent in (0,1] makes multi-core power sublinear:
	// busy-core draw is CorePower * cores^PowerExponent. The paper
	// attributes the sublinearity to cache sharing across cores working
	// on the same data.
	PowerExponent float64
	// ParallelEfficiency in (0,1] discounts multi-core speedup:
	// effective worker count is 1 + (cores-1)*ParallelEfficiency.
	ParallelEfficiency float64
}

// GPU describes an accelerator. A zero GPU (Present == false) means the
// machine has none.
type GPU struct {
	// Present reports whether the accelerator exists.
	Present bool
	// IdlePower is the draw in watts while the GPU sits unused. It is
	// paid whenever the machine is active, which is exactly why running
	// tree ensembles on a GPU machine wastes energy (paper Table 3).
	IdlePower float64
	// ActivePower is the additional draw while a kernel runs.
	ActivePower float64
	// MatrixSpeedup is the GPU's throughput on KindMatrix work relative
	// to a single CPU core of this machine.
	MatrixSpeedup float64
}

// Machine is a complete testbed.
type Machine struct {
	// Name identifies the testbed in reports.
	Name string
	// CPU is the processor model.
	CPU CPU
	// GPU is the accelerator model, if any.
	GPU GPU
}

// Validate reports a descriptive error if the machine parameters are
// unusable.
func (m *Machine) Validate() error {
	switch {
	case m.CPU.Cores < 1:
		return fmt.Errorf("hw: machine %q: cores must be >= 1, got %d", m.Name, m.CPU.Cores)
	case m.CPU.FLOPSPerCore <= 0:
		return fmt.Errorf("hw: machine %q: FLOPSPerCore must be > 0, got %g", m.Name, m.CPU.FLOPSPerCore)
	case m.CPU.MatrixSpeedup <= 0:
		return fmt.Errorf("hw: machine %q: MatrixSpeedup must be > 0, got %g", m.Name, m.CPU.MatrixSpeedup)
	case m.CPU.TreeSlowdown < 1:
		return fmt.Errorf("hw: machine %q: TreeSlowdown must be >= 1, got %g", m.Name, m.CPU.TreeSlowdown)
	case m.CPU.PowerExponent <= 0 || m.CPU.PowerExponent > 1:
		return fmt.Errorf("hw: machine %q: PowerExponent must be in (0,1], got %g", m.Name, m.CPU.PowerExponent)
	case m.CPU.ParallelEfficiency <= 0 || m.CPU.ParallelEfficiency > 1:
		return fmt.Errorf("hw: machine %q: ParallelEfficiency must be in (0,1], got %g", m.Name, m.CPU.ParallelEfficiency)
	case m.GPU.Present && m.GPU.MatrixSpeedup <= 0:
		return fmt.Errorf("hw: machine %q: GPU MatrixSpeedup must be > 0, got %g", m.Name, m.GPU.MatrixSpeedup)
	}
	return nil
}

// throughput returns the effective FLOPs per virtual second of one core for
// the given kind.
func (c *CPU) throughput(kind WorkKind) float64 {
	switch kind {
	case KindMatrix:
		return c.FLOPSPerCore * c.MatrixSpeedup
	case KindTree:
		return c.FLOPSPerCore / c.TreeSlowdown
	default:
		return c.FLOPSPerCore
	}
}

// Duration converts one unit of work into virtual time on `cores` CPU cores.
// Amdahl's law with the CPU's parallel efficiency bounds the speedup.
func (m *Machine) Duration(w Work, cores int) time.Duration {
	if w.FLOPs <= 0 {
		return 0
	}
	if cores < 1 {
		cores = 1
	}
	if cores > m.CPU.Cores {
		cores = m.CPU.Cores
	}
	base := w.FLOPs / m.CPU.throughput(w.Kind)
	if cores > 1 && w.ParallelFrac > 0 {
		eff := 1 + float64(cores-1)*m.CPU.ParallelEfficiency
		p := w.ParallelFrac
		if p > 1 {
			p = 1
		}
		base *= (1 - p) + p/eff
	}
	return secondsToDuration(base)
}

// GPUDuration converts one unit of work into virtual time when offloaded to
// the GPU. Non-matrix work cannot be offloaded and falls back to a single
// CPU core (the GPU still draws idle power; see Power). The second return
// reports whether the GPU actually executed the work.
func (m *Machine) GPUDuration(w Work) (time.Duration, bool) {
	if !m.GPU.Present || w.Kind != KindMatrix {
		return m.Duration(w, 1), false
	}
	secs := w.FLOPs / (m.CPU.FLOPSPerCore * m.GPU.MatrixSpeedup)
	return secondsToDuration(secs), true
}

// Power reports the machine's draw in watts with `busyCores` active cores.
// gpuEnabled models a process with GPU drivers loaded: the accelerator
// draws idle power even when no kernel runs — the mechanism that makes
// CPU-bound systems waste energy on GPU machines (paper Table 3). gpuBusy
// adds the active kernel draw.
func (m *Machine) Power(busyCores int, gpuEnabled, gpuBusy bool) float64 {
	if busyCores < 1 {
		busyCores = 1
	}
	if busyCores > m.CPU.Cores {
		busyCores = m.CPU.Cores
	}
	watts := m.CPU.BasePower + m.CPU.CorePower*math.Pow(float64(busyCores), m.CPU.PowerExponent)
	if m.GPU.Present && gpuEnabled {
		watts += m.GPU.IdlePower
		if gpuBusy {
			watts += m.GPU.ActivePower
		}
	}
	return watts
}

// Energy reports the energy in joules of running with busyCores (and the
// given GPU state) for duration d.
func (m *Machine) Energy(d time.Duration, busyCores int, gpuEnabled, gpuBusy bool) float64 {
	return m.Power(busyCores, gpuEnabled, gpuBusy) * d.Seconds()
}

func secondsToDuration(secs float64) time.Duration {
	if secs <= 0 {
		return 0
	}
	d := time.Duration(secs * float64(time.Second))
	if d <= 0 {
		// Sub-nanosecond work still takes one tick so that repeated
		// tiny operations cannot be free.
		return time.Nanosecond
	}
	return d
}

// XeonGold6132 returns the model of the paper's CPU testbed: "Ubuntu 16.04,
// 28 x Intel Xeon Gold 6132 @ 2.60GHz, 264 GB RAM". FLOPSPerCore is a
// calibration constant, not the chip's real throughput: the benchmark
// datasets are scaled-down stand-ins for the full AMLB tasks, so model
// costs must be amplified correspondingly — a low virtual throughput makes
// one fit on a scaled dataset take as long as the full-size fit would,
// which keeps the number of pipeline evaluations per budget realistic and
// the whole 28-day grid replayable in minutes of real time.
func XeonGold6132() *Machine {
	return &Machine{
		Name: "xeon-gold-6132",
		CPU: CPU{
			Cores:              28,
			FLOPSPerCore:       2e6,
			MatrixSpeedup:      4,
			TreeSlowdown:       1.5,
			BasePower:          40,
			CorePower:          12.5,
			PowerExponent:      1.0, // Power(8)/Power(1) ~ 2.67: paper reports up to 2.7x at 8 cores
			ParallelEfficiency: 0.85,
		},
	}
}

// T4Machine returns the model of the paper's GPU testbed: "Linux 6.1.58,
// 8 x Intel Xeon @ 2.00GHz, 1 x T4 GPU, 51 GB RAM". Its CPU is both fewer
// and weaker cores than the Xeon testbed, which is why CPU-bound systems
// run slower and less efficiently on it (paper Table 3, AutoGluon rows).
func T4Machine() *Machine {
	return &Machine{
		Name: "t4-gpu",
		CPU: CPU{
			Cores:              8,
			FLOPSPerCore:       1.25e6,
			MatrixSpeedup:      4,
			TreeSlowdown:       1.5,
			BasePower:          25,
			CorePower:          11,
			PowerExponent:      1.0,
			ParallelEfficiency: 0.85,
		},
		GPU: GPU{
			Present:       true,
			IdlePower:     11,
			ActivePower:   60,
			MatrixSpeedup: 90,
		},
	}
}
