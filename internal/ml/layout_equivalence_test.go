package ml

import (
	"math/rand/v2"
	"testing"

	"repro/internal/tabular"
)

// permutedView copies ds into a fresh frame whose rows are stored in a
// shuffled physical order and returns the non-contiguous view that
// restores the original row order. The view is logically identical to
// ds.View() — same rows, same order — but forces every kernel down its
// index path instead of the contiguous fast path. Bit-identical output
// across the two views proves fit/predict depends only on the viewed
// row sequence, never on the physical layout.
func permutedView(ds *tabular.Dataset, rng *rand.Rand) tabular.View {
	n, d := ds.Rows(), ds.Features()
	perm := rng.Perm(n) // perm[p] = original row stored at position p
	f := tabular.NewFrame(ds.Name, n, d)
	f.Classes = ds.Classes
	f.Y = make([]int, n)
	f.Kinds = append([]tabular.FeatureKind(nil), ds.Kinds...)
	idx := make([]int, n)
	for p, orig := range perm {
		for j := 0; j < d; j++ {
			f.Cols[j][p] = ds.X[orig][j]
		}
		f.Y[p] = ds.Y[orig]
		idx[orig] = p
	}
	return f.All().Select(idx)
}

// equivalenceModels lists one configured instance of every classifier
// family in the package.
func equivalenceModels() map[string]Classifier {
	return map[string]Classifier{
		"tree":     NewTreeClassifier(TreeParams{MaxDepth: 8}),
		"forest":   NewForestClassifier(ForestParams{Trees: 10, Bootstrap: true}),
		"extra":    NewForestClassifier(ForestParams{Trees: 10, ExtraTrees: true}),
		"gbt":      NewBoostingClassifier(BoostingParams{Rounds: 10}),
		"histgbt":  NewHistBoosting(HistBoostingParams{Rounds: 10}),
		"adaboost": NewAdaBoost(AdaBoostParams{Rounds: 10}),
		"knn":      NewKNN(KNNParams{K: 3}),
		"logreg":   NewLogisticRegression(LinearParams{Epochs: 15}),
		"svm":      NewLinearSVM(LinearParams{Epochs: 15}),
		"gnb":      NewGaussianNB(),
		"bnb":      NewBernoulliNB(1),
		"qda":      NewQDA(1e-3),
		"mlp":      NewMLP(MLPParams{Hidden: []int{8}, Epochs: 10}),
	}
}

// TestLayoutEquivalenceClassifiers fits every classifier once on the
// contiguous identity view and once on a permuted-storage view of the
// same logical data, then demands bit-identical probabilities and FLOP
// costs on both a contiguous and a permuted test view.
func TestLayoutEquivalenceClassifiers(t *testing.T) {
	train := xorBlob(160, testRNG(21))
	test := xorBlob(60, testRNG(22))
	for name, proto := range equivalenceModels() {
		t.Run(name, func(t *testing.T) {
			a := proto.Clone()
			b := proto.Clone()
			fitCostA, errA := a.Fit(train.View(), testRNG(5))
			fitCostB, errB := b.Fit(permutedView(train, testRNG(77)), testRNG(5))
			if (errA == nil) != (errB == nil) {
				t.Fatalf("fit errors diverge: %v vs %v", errA, errB)
			}
			if errA != nil {
				t.Skipf("model does not fit this data: %v", errA)
			}
			if fitCostA != fitCostB {
				t.Errorf("fit cost diverges: %+v vs %+v", fitCostA, fitCostB)
			}
			probaA, costA := a.PredictProba(test.View())
			probaB, costB := b.PredictProba(permutedView(test, testRNG(78)))
			if costA != costB {
				t.Errorf("predict cost diverges: %+v vs %+v", costA, costB)
			}
			if len(probaA) != len(probaB) {
				t.Fatalf("row counts diverge: %d vs %d", len(probaA), len(probaB))
			}
			for i := range probaA {
				for j := range probaA[i] {
					if probaA[i][j] != probaB[i][j] {
						t.Fatalf("proba (%d,%d): %v vs %v — layout leaked into the math",
							i, j, probaA[i][j], probaB[i][j])
					}
				}
			}
		})
	}
}

// TestLayoutEquivalenceRegressors covers the regression kernels the
// surrogate models rely on.
func TestLayoutEquivalenceRegressors(t *testing.T) {
	ds := separableBlob(120, 3, testRNG(31))
	y := make([]float64, ds.Rows())
	for i := range y {
		y[i] = ds.X[i][0]*1.5 - ds.X[i][1] + 0.25*float64(ds.Y[i])
	}
	// Targets are indexed by view position, which both views share.
	models := map[string]Regressor{
		"tree-reg":   NewTreeRegressor(TreeParams{MaxDepth: 6}),
		"forest-reg": NewForestRegressor(ForestParams{Trees: 8, Bootstrap: true}),
	}
	test := separableBlob(40, 3, testRNG(32))
	for name, proto := range models {
		t.Run(name, func(t *testing.T) {
			a, b := proto, proto
			switch m := proto.(type) {
			case *TreeRegressor:
				a, b = NewTreeRegressor(m.Params), NewTreeRegressor(m.Params)
			case *ForestRegressor:
				a, b = NewForestRegressor(m.Params), NewForestRegressor(m.Params)
			}
			costA, errA := a.FitReg(ds.View(), y, testRNG(6))
			costB, errB := b.FitReg(permutedView(ds, testRNG(79)), y, testRNG(6))
			if errA != nil || errB != nil {
				t.Fatalf("fit errors: %v, %v", errA, errB)
			}
			if costA != costB {
				t.Errorf("fit cost diverges: %+v vs %+v", costA, costB)
			}
			predA, pcA := a.PredictReg(test.View())
			predB, pcB := b.PredictReg(permutedView(test, testRNG(80)))
			if pcA != pcB {
				t.Errorf("predict cost diverges: %+v vs %+v", pcA, pcB)
			}
			for i := range predA {
				if predA[i] != predB[i] {
					t.Fatalf("%s prediction %d: %v vs %v", name, i, predA[i], predB[i])
				}
			}
		})
	}
}
