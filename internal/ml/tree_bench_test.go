package ml

import (
	"math/rand/v2"
	"testing"

	"repro/internal/tabular"
)

// benchDataset builds a deterministic classification dataset with a mix of
// continuous and low-cardinality (tie-heavy) features, the shape the grid's
// tree fits actually see.
func benchDataset(n, d, classes int, seed uint64) *tabular.Dataset {
	r := rand.New(rand.NewPCG(seed, 0xbe))
	ds := &tabular.Dataset{Name: "bench", Classes: classes}
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			if j%3 == 2 {
				// Low-cardinality column: exercises tie handling.
				row[j] = float64(r.IntN(5))
			} else {
				row[j] = r.NormFloat64() + float64(i%classes)
			}
		}
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, i%classes)
	}
	return ds
}

func benchRegTargets(ds *tabular.Dataset) []float64 {
	y := make([]float64, len(ds.X))
	for i, row := range ds.X {
		y[i] = row[0] + 0.5*row[1%len(row)]
	}
	return y
}

// BenchmarkTreeCoreFit measures the hot CART kernel: one deep
// classification tree over all features, the workload underneath every
// forest, AdaBoost and TPOT pipeline in the grid.
func BenchmarkTreeCoreFit(b *testing.B) {
	ds := benchDataset(900, 20, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc := treeCore{params: TreeParams{MaxDepth: 16}, classes: ds.Classes}
		if err := tc.fit(treeTask{v: ds.View(), y: ds.Y}, rand.New(rand.NewPCG(7, 0x11))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeCoreFitSubset measures the forest configuration: feature
// subsetting per split (sqrt(d) convention).
func BenchmarkTreeCoreFitSubset(b *testing.B) {
	ds := benchDataset(900, 20, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc := treeCore{params: TreeParams{MaxDepth: 16, MaxFeatures: 0.25}, classes: ds.Classes}
		if err := tc.fit(treeTask{v: ds.View(), y: ds.Y}, rand.New(rand.NewPCG(7, 0x11))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeCoreFitRegression measures the regression kernel (gradient
// boosting's weak learner and the BO surrogate).
func BenchmarkTreeCoreFitRegression(b *testing.B) {
	ds := benchDataset(900, 20, 4, 1)
	y := benchRegTargets(ds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc := treeCore{params: TreeParams{MaxDepth: 16}}
		if err := tc.fit(treeTask{v: ds.View(), t: y}, rand.New(rand.NewPCG(7, 0x11))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeCoreFitRandomThreshold measures the extra-trees split path.
func BenchmarkTreeCoreFitRandomThreshold(b *testing.B) {
	ds := benchDataset(900, 20, 4, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc := treeCore{params: TreeParams{MaxDepth: 16, MaxFeatures: 0.25, RandomThreshold: true}, classes: ds.Classes}
		if err := tc.fit(treeTask{v: ds.View(), y: ds.Y}, rand.New(rand.NewPCG(7, 0x11))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestFit measures a whole bootstrap forest fit, the dominant
// model-training workload of the default search spaces.
func BenchmarkForestFit(b *testing.B) {
	ds := benchDataset(600, 16, 3, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := NewForestClassifier(ForestParams{Trees: 20, Bootstrap: true, Tree: TreeParams{MaxDepth: 12}})
		if _, err := f.Fit(ds.View(), rand.New(rand.NewPCG(9, 0x11))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistGBTFit measures the histogram gradient-boosting fit: the
// quantization pass plus histogram-scan tree growth over all rounds.
func BenchmarkHistGBTFit(b *testing.B) {
	ds := benchDataset(600, 16, 3, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewHistBoosting(HistBoostingParams{Rounds: 10, MaxDepth: 3})
		if _, err := h.Fit(ds.View(), rand.New(rand.NewPCG(9, 0x11))); err != nil {
			b.Fatal(err)
		}
	}
}
