package ml

import (
	"sync"
	"sync/atomic"
)

// Within-cell parallelism.
//
// The grid scheduler parallelizes across cells; this knob lets a single
// large fit use the cores the grid leaves idle (few cells, many cores).
// The determinism bar is absolute: proba outputs, Cost, and therefore
// every grid export are bit-identical at any parallelism level. The
// kernels earn that by construction, not by luck, under two rules —
// the sanctioned reduction orders (see DESIGN.md "Kernel execution"):
//
//  1. Disjoint slots: a goroutine writes only to slots addressed by the
//     work item it executes (trees[i], perFeature[j], rows of its own
//     block). No shared accumulator is ever written from a goroutine.
//  2. Fixed reduction: cross-slot reduction (summing costs, choosing the
//     best split, merging block statistics) happens on the calling
//     goroutine, in slot-index order, after all workers finish.
//
// Work that consumes an RNG additionally pre-splits its stream: the
// parent stream is consumed sequentially up front (one seed pair per
// item, in item order), so each item owns an independent deterministic
// stream regardless of which worker runs it when. greenlint's
// reduceorder check enforces rule 1 mechanically: any goroutine launch
// in this package, and any write to a captured variable inside one,
// must carry an annotation arguing its case.
//
// The knob is Cost-neutral: kernels account FLOPs identically at every
// level, so the virtual clock and energy tracker never see it — which
// is why it is excluded from the bench config fingerprint, like
// Workers.

// maxParallelism bounds the knob defensively; beyond real core counts
// more goroutines only add scheduling overhead.
const maxParallelism = 256

var fitParallelism atomic.Int64

// SetParallelism sets the package-wide within-fit worker budget and
// returns the previous value (so schedulers can restore it). Values
// below 1 mean sequential execution.
func SetParallelism(n int) int {
	if n < 1 {
		n = 1
	}
	if n > maxParallelism {
		n = maxParallelism
	}
	prev := fitParallelism.Swap(int64(n))
	if prev < 1 {
		return 1
	}
	return int(prev)
}

// Parallelism reports the current within-fit worker budget (≥ 1).
func Parallelism() int {
	p := int(fitParallelism.Load())
	if p < 1 {
		return 1
	}
	return p
}

// kernelBlock is the row-block width of the parallel prediction and
// gradient loops. Block boundaries are a pure function of the row count
// — never of the parallelism level — so per-block partial sums always
// reduce in the same order.
const kernelBlock = 256

// runIndexed executes fn(worker, i) for every i in [0, n), on up to
// Parallelism() goroutines. fn must follow the disjoint-slot rule: it
// may write only to slots addressed by i (or to worker-local scratch
// addressed by the worker id, 0 ≤ worker < Parallelism()). Which worker
// runs which item is scheduling-dependent and must never matter.
// Panics inside fn are rethrown on the calling goroutine, so the
// harness's per-cell recovery (and the fault injector's panic faults)
// behave exactly as in sequential code.
func runIndexed(n int, fn func(worker, i int)) {
	p := Parallelism()
	if p > n {
		p = n
	}
	if p <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicVal  any
		panicked  atomic.Bool
	)
	wg.Add(p)
	for w := 0; w < p; w++ {
		//greenlint:allow reduceorder the one sanctioned launch site: workers claim items from an atomic counter, write only item-addressed slots, and rethrow panics; reductions stay on the caller
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					//greenlint:allow reduceorder sync.Once admits exactly one writer; which panic wins is rethrown control flow, not output data
					panicOnce.Do(func() { panicVal = r })
					panicked.Store(true)
				}
			}()
			for !panicked.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// rowBlockCount reports how many kernelBlock-wide blocks runRowBlocks
// uses for n rows — for sizing block-indexed result slots.
func rowBlockCount(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + kernelBlock - 1) / kernelBlock
}

// runRowBlocks partitions [0, n) into kernelBlock-wide row blocks and
// executes fn(worker, block, lo, hi) over them via runIndexed. Because
// the block grid depends only on n, per-block partials (visit counts,
// loss sums) stored in block-addressed slots always reduce identically.
func runRowBlocks(n int, fn func(worker, block, lo, hi int)) {
	if n <= 0 {
		return
	}
	blocks := (n + kernelBlock - 1) / kernelBlock
	runIndexed(blocks, func(worker, b int) {
		lo := b * kernelBlock
		hi := lo + kernelBlock
		if hi > n {
			hi = n
		}
		fn(worker, b, lo, hi)
	})
}
