package ml

import (
	"math"
	"math/bits"
	"sort"
	"sync"
)

// colSorter sorts a node's sample indices by one cached feature column.
// It is a concrete sort.Interface so sort.Sort runs the standard library's
// pdqsort without the per-call closure and reflect.Swapper allocations of
// sort.Slice — and, because both entry points are generated from the same
// sort template, with the exact same comparison/swap sequence, so the
// resulting permutation (including tie order) matches the historical
// kernel's sort.Slice call bit for bit.
type colSorter struct {
	col   []float64
	order []int32
}

func (s *colSorter) Len() int           { return len(s.order) }
func (s *colSorter) Less(a, b int) bool { return s.col[s.order[a]] < s.col[s.order[b]] }
func (s *colSorter) Swap(a, b int)      { s.order[a], s.order[b] = s.order[b], s.order[a] }

// treeScratch is the reusable working memory of one treeCore.fit: the
// column-major feature cache, lazily presorted per-feature index lists,
// the shared node index buffer that split partitioning rearranges in
// place, and assorted per-split scratch. Instances are pooled so forests,
// boosting rounds and surrogate fits reuse the same memory instead of
// re-allocating per tree.
type treeScratch struct {
	n, d int
	// colref[f] is the working column of feature f: an alias of the
	// frame's own column for contiguous (identity) views, or a slice of
	// the gather arena below for subset views.
	colref [][]float64
	// cols is the column-major gather arena used only for subset views:
	// cols[f*n+i] = frame.Cols[f][view.Idx[i]]. Contiguous fits never
	// touch it (the historical per-fit transpose is gone).
	cols []float64
	// ylab is the gathered view-local label scratch for subset views.
	ylab []int
	// sorted[f*n:(f+1)*n] lists all n sample indices ordered by feature
	// f, built lazily on first profitable use; sortedBuilt[f] tracks it.
	sorted      []int32
	sortedBuilt []bool
	// idx is the shared node index buffer: each tree node owns a
	// contiguous [lo, hi) range, split in place by partitioning.
	idx []int32
	// order is the per-split sort/filter scratch, part the partition
	// spill buffer. nodeStamp is the epoch-stamped membership mask for
	// presorted filtering: rows of the current node carry the current
	// stamp, so each filter pass needs one store per member instead of a
	// set-and-clear round trip over the node (stale stamps from earlier
	// nodes or earlier pooled fits can never equal a fresh stamp).
	order     []int32
	part      []int32
	nodeStamp []int32
	stamp     int32
	// perm is the feature-subset permutation scratch.
	perm []int
	// left/right/all are class-count scratch for split scoring.
	left, right, all []float64
	sorter           colSorter
}

var treeScratchPool = sync.Pool{New: func() any { return new(treeScratch) }}

// getTreeScratch returns pooled scratch sized for n samples, d features
// and the given class count (1 for regression). The gather arena is
// sized only when the fit reads a subset view (needGather); identity
// views alias frame columns and skip it entirely.
func getTreeScratch(n, d, classes int, needGather bool) *treeScratch {
	s := treeScratchPool.Get().(*treeScratch)
	s.n, s.d = n, d
	s.colref = sizedCols(s.colref, d)
	if needGather {
		s.cols = sizedF64(s.cols, n*d)
	}
	s.sorted = sizedI32(s.sorted, n*d)
	s.sortedBuilt = sizedBool(s.sortedBuilt, d)
	for f := range s.sortedBuilt {
		s.sortedBuilt[f] = false
	}
	s.idx = sizedI32(s.idx, n)
	s.order = sizedI32(s.order, n)
	s.part = sizedI32(s.part, n)
	s.nodeStamp = sizedI32(s.nodeStamp, n)
	s.perm = sizedInt(s.perm, d)
	s.left = sizedF64(s.left, classes)
	s.right = sizedF64(s.right, classes)
	s.all = sizedF64(s.all, classes)
	return s
}

func putTreeScratch(s *treeScratch) {
	s.sorter.col, s.sorter.order = nil, nil
	for f := range s.colref {
		s.colref[f] = nil // drop frame-column aliases
	}
	treeScratchPool.Put(s)
}

// col returns the working column of feature f.
func (s *treeScratch) col(f int) []float64 { return s.colref[f] }

// nextStamp advances the membership epoch, recycling the stamp space on
// the (practically unreachable) int32 wrap.
func (s *treeScratch) nextStamp() int32 {
	if s.stamp == math.MaxInt32 {
		clear(s.nodeStamp)
		s.stamp = 0
	}
	s.stamp++
	return s.stamp
}

// ensureSorted builds the presorted index list of feature f on first use.
// The sort is deterministic (pdqsort on a fixed input), so the presorted
// order — and everything derived from it — replays identically across
// runs.
func (s *treeScratch) ensureSorted(f int) []int32 {
	sorted := s.sorted[f*s.n : (f+1)*s.n]
	if !s.sortedBuilt[f] {
		for i := range sorted {
			sorted[i] = int32(i)
		}
		s.sorter.col, s.sorter.order = s.col(f), sorted
		sort.Sort(&s.sorter)
		s.sortedBuilt[f] = true
	}
	return sorted
}

func sizedF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func sizedI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

func sizedBool(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	return buf[:n]
}

func sizedInt(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func sizedCols(buf [][]float64, n int) [][]float64 {
	if cap(buf) < n {
		return make([][]float64, n) //greenlint:allow rowmajor pooled column-reference table; entries alias frame columns
	}
	return buf[:n]
}

// ceilLog2 returns ⌈log₂ m⌉ for m ≥ 1; it prices a comparison sort when
// choosing between sorting a node directly and filtering the presorted
// full column.
func ceilLog2(m int) int {
	if m <= 1 {
		return 0
	}
	return bits.Len(uint(m - 1))
}
