package ml

import (
	"math"
	mathrand "math/rand" //greenlint:allow globalrand testing/quick needs a v1 *rand.Rand; the source is explicitly seeded
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
	"repro/internal/tabular"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0x11)) }

// separableBlob builds a linearly separable two-cluster dataset.
func separableBlob(n, d int, rng *rand.Rand) *tabular.Dataset {
	ds := &tabular.Dataset{Name: "sep", Classes: 2}
	for i := 0; i < n; i++ {
		c := i % 2
		row := make([]float64, d)
		for j := range row {
			row[j] = 4*float64(c) + rng.NormFloat64()
		}
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, c)
	}
	return ds
}

// xorBlob builds an XOR-style dataset no linear model can solve.
func xorBlob(n int, rng *rand.Rand) *tabular.Dataset {
	ds := &tabular.Dataset{Name: "xor", Classes: 2}
	for i := 0; i < n; i++ {
		a, b := rng.IntN(2), rng.IntN(2)
		row := []float64{4*float64(a) + rng.NormFloat64(), 4*float64(b) + rng.NormFloat64()}
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, a^b)
	}
	return ds
}

func allClassifiers() map[string]Classifier {
	return map[string]Classifier{
		"tree":   NewTreeClassifier(TreeParams{MaxDepth: 8}),
		"forest": NewForestClassifier(ForestParams{Trees: 15, Bootstrap: true}),
		"extra":  NewForestClassifier(ForestParams{Trees: 15, ExtraTrees: true}),
		"gbt":    NewBoostingClassifier(BoostingParams{Rounds: 15}),
		"knn":    NewKNN(KNNParams{K: 3}),
		"logreg": NewLogisticRegression(LinearParams{Epochs: 25}),
		"svm":    NewLinearSVM(LinearParams{Epochs: 25}),
		"gnb":    NewGaussianNB(),
		"bnb":    NewBernoulliNB(1),
		"mlp":    NewMLP(MLPParams{Hidden: []int{16}, Epochs: 30}),
	}
}

func TestClassifiersLearnSeparableData(t *testing.T) {
	train := separableBlob(200, 4, testRNG(1))
	test := separableBlob(80, 4, testRNG(2))
	for name, clf := range allClassifiers() {
		clf := clf
		t.Run(name, func(t *testing.T) {
			cost, err := clf.Fit(train.View(), testRNG(3))
			if err != nil {
				t.Fatalf("Fit: %v", err)
			}
			if cost.Total() <= 0 {
				t.Error("training reported no cost")
			}
			pred, predCost := Predict(clf, test.View())
			if predCost.Total() <= 0 {
				t.Error("prediction reported no cost")
			}
			acc := metrics.Accuracy(test.Y, pred)
			if acc < 0.95 {
				t.Errorf("accuracy %.3f on trivially separable data", acc)
			}
		})
	}
}

func TestTreeModelsSolveXOR(t *testing.T) {
	train := xorBlob(300, testRNG(4))
	test := xorBlob(100, testRNG(5))
	nonlinear := map[string]Classifier{
		"tree":   NewTreeClassifier(TreeParams{MaxDepth: 8}),
		"forest": NewForestClassifier(ForestParams{Trees: 20, Bootstrap: true}),
		"gbt":    NewBoostingClassifier(BoostingParams{Rounds: 20}),
		"knn":    NewKNN(KNNParams{K: 5}),
		"mlp":    NewMLP(MLPParams{Hidden: []int{16}, Epochs: 60, LearningRate: 0.1}),
	}
	for name, clf := range nonlinear {
		if _, err := clf.Fit(train.View(), testRNG(6)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pred, _ := Predict(clf, test.View())
		if acc := metrics.Accuracy(test.Y, pred); acc < 0.85 {
			t.Errorf("%s: accuracy %.3f on XOR, want nonlinear capacity", name, acc)
		}
	}
	// A linear model must fail on XOR — that's what makes the search
	// space interesting.
	lin := NewLogisticRegression(LinearParams{Epochs: 40})
	lin.Fit(train.View(), testRNG(7))
	pred, _ := Predict(lin, test.View())
	if acc := metrics.Accuracy(test.Y, pred); acc > 0.75 {
		t.Errorf("logistic regression scored %.3f on XOR — the generator is not nonlinear", acc)
	}
}

// TestProbabilityRowsAreDistributions property-checks every classifier's
// output: probabilities are finite, non-negative and sum to one.
func TestProbabilityRowsAreDistributions(t *testing.T) {
	train := separableBlob(120, 3, testRNG(8))
	for name, clf := range allClassifiers() {
		if _, err := clf.Fit(train.View(), testRNG(9)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		clf := clf
		property := func(raw [3]int16) bool {
			row := []float64{float64(raw[0]) / 100, float64(raw[1]) / 100, float64(raw[2]) / 100}
			proba, _ := clf.PredictProba(tabular.FromRows([][]float64{row}))
			var sum float64
			for _, p := range proba[0] {
				if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
					return false
				}
				sum += p
			}
			return math.Abs(sum-1) < 1e-6
		}
		if err := quick.Check(property, &quick.Config{MaxCount: 60, Rand: mathrand.New(mathrand.NewSource(10))}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCloneIsUntrainedWithSameParams(t *testing.T) {
	train := separableBlob(100, 3, testRNG(11))
	for name, clf := range allClassifiers() {
		if _, err := clf.Fit(train.View(), testRNG(12)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		clone := clf.Clone()
		if clone.Name() != clf.Name() {
			t.Errorf("%s: clone name %q != %q", name, clone.Name(), clf.Name())
		}
		// The clone must predict uniformly (or at least differently)
		// before its own Fit — it must not share trained state.
		proba, _ := clone.PredictProba(tabular.FromRows([][]float64{{0, 0, 0}}))
		uniform := true
		for _, p := range proba[0] {
			if math.Abs(p-1/float64(len(proba[0]))) > 1e-9 {
				uniform = false
			}
		}
		if !uniform {
			t.Errorf("%s: clone predicts non-uniformly before Fit", name)
		}
	}
}

func TestFitDeterminism(t *testing.T) {
	train := separableBlob(150, 3, testRNG(13))
	test := separableBlob(50, 3, testRNG(14))
	for name, build := range map[string]func() Classifier{
		"forest": func() Classifier { return NewForestClassifier(ForestParams{Trees: 10, Bootstrap: true}) },
		"gbt":    func() Classifier { return NewBoostingClassifier(BoostingParams{Rounds: 10}) },
		"mlp":    func() Classifier { return NewMLP(MLPParams{Hidden: []int{8}, Epochs: 10}) },
	} {
		a, b := build(), build()
		a.Fit(train.View(), testRNG(15))
		b.Fit(train.View(), testRNG(15))
		pa, _ := a.PredictProba(test.View())
		pb, _ := b.PredictProba(test.View())
		for i := range pa {
			for j := range pa[i] {
				if pa[i][j] != pb[i][j] {
					t.Fatalf("%s: same seed diverged at (%d,%d)", name, i, j)
				}
			}
		}
	}
}

func TestCostGrowsWithData(t *testing.T) {
	small := separableBlob(50, 4, testRNG(16))
	large := separableBlob(500, 4, testRNG(17))
	for name, build := range map[string]func() Classifier{
		"tree":   func() Classifier { return NewTreeClassifier(TreeParams{MaxDepth: 8}) },
		"logreg": func() Classifier { return NewLogisticRegression(LinearParams{Epochs: 10}) },
		"gnb":    func() Classifier { return NewGaussianNB() },
	} {
		a, b := build(), build()
		costSmall, _ := a.Fit(small.View(), testRNG(18))
		costLarge, _ := b.Fit(large.View(), testRNG(18))
		if costLarge.Total() <= costSmall.Total() {
			t.Errorf("%s: cost did not grow with data (%.0f vs %.0f)", name, costLarge.Total(), costSmall.Total())
		}
	}
}

func TestCostBuckets(t *testing.T) {
	train := separableBlob(100, 3, testRNG(19))
	tree := NewTreeClassifier(TreeParams{MaxDepth: 6})
	cost, _ := tree.Fit(train.View(), testRNG(20))
	if cost.Tree <= 0 || cost.Matrix != 0 {
		t.Errorf("tree cost in wrong buckets: %+v", cost)
	}
	mlp := NewMLP(MLPParams{Hidden: []int{8}, Epochs: 5})
	cost, _ = mlp.Fit(train.View(), testRNG(21))
	if cost.Matrix <= 0 || cost.Tree != 0 {
		t.Errorf("mlp cost in wrong buckets: %+v", cost)
	}
}

func TestCostArithmetic(t *testing.T) {
	c := Cost{Generic: 1, Tree: 2, Matrix: 3}
	c.Add(Cost{Generic: 10, Tree: 20, Matrix: 30})
	if c.Total() != 66 {
		t.Errorf("total %v, want 66", c.Total())
	}
	s := c.Scale(2)
	if s.Generic != 22 || s.Tree != 44 || s.Matrix != 66 {
		t.Errorf("scale %+v", s)
	}
	works := c.Works(0.5)
	if len(works) != 3 {
		t.Fatalf("works %v", works)
	}
	for _, w := range works {
		if w.ParallelFrac != 0.5 {
			t.Errorf("parallel fraction %v", w.ParallelFrac)
		}
	}
	if got := (Cost{}).Works(1); got != nil {
		t.Errorf("zero cost produced works %v", got)
	}
}

func TestTreeDepthLimit(t *testing.T) {
	// XOR data needs depth >= 2; noise makes deeper trees grow further.
	train := xorBlob(300, testRNG(22))
	for i := 0; i < 30; i++ {
		train.Y[i*7%300] = 1 - train.Y[i*7%300]
	}
	shallow := NewTreeClassifier(TreeParams{MaxDepth: 2})
	shallow.Fit(train.View(), testRNG(23))
	deep := NewTreeClassifier(TreeParams{MaxDepth: 12})
	deep.Fit(train.View(), testRNG(23))
	if shallow.NodeCount() > 7 {
		t.Errorf("depth-2 tree has %d nodes, want <= 7", shallow.NodeCount())
	}
	if deep.NodeCount() <= shallow.NodeCount() {
		t.Error("deep tree not larger than shallow tree")
	}
}

func TestTreeMinLeaf(t *testing.T) {
	train := xorBlob(200, testRNG(24))
	big := NewTreeClassifier(TreeParams{MaxDepth: 20, MinSamplesLeaf: 50})
	big.Fit(train.View(), testRNG(25))
	small := NewTreeClassifier(TreeParams{MaxDepth: 20, MinSamplesLeaf: 1})
	small.Fit(train.View(), testRNG(25))
	if big.NodeCount() >= small.NodeCount() {
		t.Errorf("min_leaf=50 tree (%d nodes) not smaller than min_leaf=1 (%d)", big.NodeCount(), small.NodeCount())
	}
}

func TestTreeFitErrors(t *testing.T) {
	tree := NewTreeClassifier(TreeParams{})
	if _, err := tree.Fit((&tabular.Dataset{Classes: 2}).View(), testRNG(26)); err == nil {
		t.Error("empty dataset accepted")
	}
	reg := NewTreeRegressor(TreeParams{})
	if _, err := reg.FitReg(tabular.FromRows([][]float64{{1}}), []float64{1, 2}, testRNG(27)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRegressionTreeFitsStep(t *testing.T) {
	var xs [][]float64
	var ys []float64
	rng := testRNG(28)
	for i := 0; i < 200; i++ {
		x := rng.Float64() * 10
		y := 1.0
		if x > 5 {
			y = 3.0
		}
		xs = append(xs, []float64{x})
		ys = append(ys, y+0.05*rng.NormFloat64())
	}
	tree := NewTreeRegressor(TreeParams{MaxDepth: 3})
	if _, err := tree.FitReg(tabular.FromRows(xs), ys, rng); err != nil {
		t.Fatal(err)
	}
	pred, _ := tree.PredictReg(tabular.FromRows([][]float64{{2}, {8}}))
	if math.Abs(pred[0]-1) > 0.3 || math.Abs(pred[1]-3) > 0.3 {
		t.Errorf("step function fit: %v, want ~[1 3]", pred)
	}
}

func TestForestRegressorStd(t *testing.T) {
	rng := testRNG(29)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 100; i++ {
		x := rng.Float64()
		xs = append(xs, []float64{x})
		ys = append(ys, 2*x)
	}
	f := NewForestRegressor(ForestParams{Trees: 10, Bootstrap: true})
	if _, err := f.FitReg(tabular.FromRows(xs), ys, rng); err != nil {
		t.Fatal(err)
	}
	mean, std, _ := f.PredictWithStd(tabular.FromRows([][]float64{{0.5}}))
	if math.Abs(mean[0]-1) > 0.3 {
		t.Errorf("mean %v, want ~1", mean[0])
	}
	if std[0] < 0 {
		t.Errorf("negative std %v", std[0])
	}
}

func TestBoostingImprovesWithRounds(t *testing.T) {
	train := xorBlob(300, testRNG(30))
	test := xorBlob(120, testRNG(31))
	few := NewBoostingClassifier(BoostingParams{Rounds: 1, Tree: TreeParams{MaxDepth: 1}})
	few.Fit(train.View(), testRNG(32))
	many := NewBoostingClassifier(BoostingParams{Rounds: 40, Tree: TreeParams{MaxDepth: 2}})
	many.Fit(train.View(), testRNG(32))
	predFew, _ := Predict(few, test.View())
	predMany, _ := Predict(many, test.View())
	if metrics.Accuracy(test.Y, predMany) <= metrics.Accuracy(test.Y, predFew) {
		t.Errorf("boosting did not improve with rounds: %v vs %v",
			metrics.Accuracy(test.Y, predMany), metrics.Accuracy(test.Y, predFew))
	}
}

func TestKNNMemorizesWithK1(t *testing.T) {
	train := separableBlob(60, 3, testRNG(33))
	knn := NewKNN(KNNParams{K: 1})
	knn.Fit(train.View(), testRNG(34))
	pred, _ := Predict(knn, train.View())
	if acc := metrics.Accuracy(train.Y, pred); acc != 1 {
		t.Errorf("1-NN training accuracy %v, want 1", acc)
	}
	if knn.StoredRows() != train.Rows() {
		t.Errorf("stored %d rows, want %d", knn.StoredRows(), train.Rows())
	}
}

func TestKNNInferenceCostScalesWithTrainingSet(t *testing.T) {
	small := separableBlob(50, 3, testRNG(35))
	large := separableBlob(500, 3, testRNG(36))
	query := [][]float64{{0, 0, 0}}
	a := NewKNN(KNNParams{K: 3})
	a.Fit(small.View(), testRNG(37))
	_, costSmall := a.PredictProba(tabular.FromRows(query))
	b := NewKNN(KNNParams{K: 3})
	b.Fit(large.View(), testRNG(37))
	_, costLarge := b.PredictProba(tabular.FromRows(query))
	if costLarge.Total() < 5*costSmall.Total() {
		t.Errorf("lazy-learner inference cost did not scale: %v vs %v", costLarge.Total(), costSmall.Total())
	}
}

func TestUnfittedClassifiersReturnUniform(t *testing.T) {
	for name, clf := range allClassifiers() {
		proba, _ := clf.PredictProba(tabular.FromRows([][]float64{{1, 2, 3}}))
		if len(proba) != 1 || len(proba[0]) < 2 {
			t.Errorf("%s: unfitted proba shape %v", name, proba)
			continue
		}
		for _, p := range proba[0] {
			if math.Abs(p-1/float64(len(proba[0]))) > 1e-9 {
				t.Errorf("%s: unfitted prediction not uniform: %v", name, proba[0])
				break
			}
		}
	}
}

func TestMulticlass(t *testing.T) {
	rng := testRNG(38)
	ds := &tabular.Dataset{Name: "multi", Classes: 4}
	// Class centers on a 2D grid: every class is linearly separable
	// from the rest, so one-vs-rest learners can solve it too.
	for i := 0; i < 400; i++ {
		c := i % 4
		ds.X = append(ds.X, []float64{
			6*float64(c%2) + rng.NormFloat64(),
			6*float64(c/2) + rng.NormFloat64(),
		})
		ds.Y = append(ds.Y, c)
	}
	for name, clf := range allClassifiers() {
		if _, err := clf.Fit(ds.View(), testRNG(39)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pred, _ := Predict(clf, ds.View())
		if acc := metrics.BalancedAccuracy(ds.Y, pred, 4); acc < 0.9 {
			t.Errorf("%s: 4-class balanced accuracy %.3f", name, acc)
		}
	}
}
