// Package ml is the model zoo underneath every AutoML system in this
// repository.
//
// The paper's systems search over scikit-learn-style estimators; this
// package re-implements the relevant families from scratch: CART decision
// trees, random forests, extremely randomized trees, gradient boosting,
// k-nearest neighbours, multinomial logistic regression, linear SVMs,
// naive Bayes, and multi-layer perceptrons, plus regression trees and
// forests (needed internally by gradient boosting and by the Bayesian
// optimization surrogate).
//
// Every training and prediction call returns its compute cost as abstract
// FLOPs bucketed by workload kind. Those costs drive the virtual clock and
// the energy tracker — they are the reproduction's stand-in for wall-clock
// and RAPL readings, so models must account costs honestly: cost is
// accumulated inside the algorithms at loop granularity, not estimated
// from closed-form formulas after the fact.
package ml

import (
	"math"
	"math/rand/v2"

	"repro/internal/hw"
	"repro/internal/tabular"
)

// Cost is an abstract compute cost in FLOPs, bucketed by hardware workload
// kind (see internal/hw).
type Cost struct {
	// Generic is scalar, branchy work (distances, SGD updates).
	Generic float64
	// Tree is tree induction/traversal work.
	Tree float64
	// Matrix is dense linear-algebra work (MLP, attention, PCA).
	Matrix float64
}

// Add accumulates other into c.
func (c *Cost) Add(other Cost) {
	c.Generic += other.Generic
	c.Tree += other.Tree
	c.Matrix += other.Matrix
}

// Total reports the summed FLOPs across buckets.
func (c Cost) Total() float64 { return c.Generic + c.Tree + c.Matrix }

// Scale returns the cost multiplied by f.
func (c Cost) Scale(f float64) Cost {
	return Cost{Generic: c.Generic * f, Tree: c.Tree * f, Matrix: c.Matrix * f}
}

// Works converts the cost to hardware work units with the given Amdahl
// parallel fraction applied to each bucket.
func (c Cost) Works(parallelFrac float64) []hw.Work {
	var works []hw.Work
	if c.Generic > 0 {
		works = append(works, hw.Work{FLOPs: c.Generic, Kind: hw.KindGeneric, ParallelFrac: parallelFrac})
	}
	if c.Tree > 0 {
		works = append(works, hw.Work{FLOPs: c.Tree, Kind: hw.KindTree, ParallelFrac: parallelFrac})
	}
	if c.Matrix > 0 {
		works = append(works, hw.Work{FLOPs: c.Matrix, Kind: hw.KindMatrix, ParallelFrac: parallelFrac})
	}
	return works
}

// Classifier is a trainable multi-class probabilistic classifier.
// Training and prediction inputs are zero-copy tabular.Views over
// columnar frames; kernels read feature columns natively.
type Classifier interface {
	// Fit trains on the viewed data and reports the training cost.
	Fit(ds tabular.View, rng *rand.Rand) (Cost, error)
	// PredictProba returns one probability row per viewed row and the
	// prediction cost. It must only be called after a successful Fit.
	PredictProba(x tabular.View) ([][]float64, Cost)
	// Clone returns a fresh, untrained classifier with identical
	// hyperparameters.
	Clone() Classifier
	// Name identifies the model family and key hyperparameters.
	Name() string
	// ParallelFrac is the Amdahl fraction of Fit that can use multiple
	// cores (e.g. forests parallelize across trees; SGD barely at all).
	ParallelFrac() float64
}

// Regressor is a trainable single-output regressor (used by gradient
// boosting and by the Bayesian-optimization surrogate).
type Regressor interface {
	// FitReg trains on the viewed rows with targets y (indexed by view
	// row) and reports the cost.
	FitReg(x tabular.View, y []float64, rng *rand.Rand) (Cost, error)
	// PredictReg returns one prediction per viewed row and the cost.
	PredictReg(x tabular.View) ([]float64, Cost)
}

// Predict converts a classifier's probability output into hard labels.
func Predict(c Classifier, x tabular.View) ([]int, Cost) {
	proba, cost := c.PredictProba(x)
	labels := make([]int, len(proba))
	for i, row := range proba {
		labels[i] = argmax(row)
	}
	return labels, cost
}

func argmax(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// softmaxInPlace transforms logits into probabilities, numerically stably.
func softmaxInPlace(v []float64) {
	max := math.Inf(-1)
	for _, x := range v {
		if x > max {
			max = x
		}
	}
	var sum float64
	for i, x := range v {
		e := math.Exp(x - max)
		v[i] = e
		sum += e
	}
	if sum <= 0 {
		uniform := 1 / float64(len(v))
		for i := range v {
			v[i] = uniform
		}
		return
	}
	for i := range v {
		v[i] /= sum
	}
}

// normalizeInPlace scales non-negative v to sum to one, falling back to
// uniform when the sum vanishes.
func normalizeInPlace(v []float64) {
	var sum float64
	for _, x := range v {
		sum += x
	}
	if sum <= 0 {
		uniform := 1 / float64(len(v))
		for i := range v {
			v[i] = uniform
		}
		return
	}
	for i := range v {
		v[i] /= sum
	}
}

// uniformProba returns n rows of uniform class probabilities.
func uniformProba(n, classes int) [][]float64 {
	out := make([][]float64, n) //greenlint:allow rowmajor proba output rows, class-wide not feature-wide
	for i := range out {
		row := make([]float64, classes)
		for j := range row {
			row[j] = 1 / float64(classes)
		}
		out[i] = row
	}
	return out
}
