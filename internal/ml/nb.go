package ml

import (
	"math"
	"math/rand/v2"

	"repro/internal/tabular"
)

// GaussianNB is a Gaussian naive-Bayes classifier: per class and feature a
// univariate normal, combined under conditional independence. It is the
// cheapest model in the zoo for both stages, which is why cost-frugal
// searches start near it.
type GaussianNB struct {
	classes  int
	logPrior []float64
	mean     [][]float64 // [class][feature]
	variance [][]float64
}

// NewGaussianNB constructs a Gaussian naive-Bayes classifier.
func NewGaussianNB() *GaussianNB { return &GaussianNB{} }

// Fit implements Classifier. Moments are accumulated column-by-column
// over the view; each (class, feature) cell still sums its members in
// ascending row order, so the fitted parameters are bit-identical to the
// historical row-major pass.
func (g *GaussianNB) Fit(ds tabular.View, _ *rand.Rand) (Cost, error) {
	n, d, k := ds.Rows(), ds.Features(), ds.Classes()
	g.classes = k
	g.logPrior = make([]float64, k)
	g.mean = make([][]float64, k)     //greenlint:allow rowmajor per-class mean vectors - model parameters
	g.variance = make([][]float64, k) //greenlint:allow rowmajor per-class variance vectors - model parameters
	counts := make([]float64, k)
	for c := 0; c < k; c++ {
		g.mean[c] = make([]float64, d)
		g.variance[c] = make([]float64, d)
	}
	labels := ds.LabelsInto(nil)
	for _, c := range labels {
		counts[c]++
	}
	var colBuf []float64
	if !ds.Contiguous() {
		colBuf = make([]float64, n)
	}
	for j := 0; j < d; j++ {
		col := ds.ColInto(j, colBuf)
		for i, v := range col {
			g.mean[labels[i]][j] += v
		}
	}
	for c := 0; c < k; c++ {
		g.logPrior[c] = math.Log((counts[c] + 1) / (float64(n) + float64(k)))
		if counts[c] == 0 {
			continue
		}
		for j := range g.mean[c] {
			g.mean[c][j] /= counts[c]
		}
	}
	for j := 0; j < d; j++ {
		col := ds.ColInto(j, colBuf)
		for i, v := range col {
			c := labels[i]
			diff := v - g.mean[c][j]
			g.variance[c][j] += diff * diff
		}
	}
	for c := 0; c < k; c++ {
		for j := range g.variance[c] {
			if counts[c] > 0 {
				g.variance[c][j] /= counts[c]
			}
			if g.variance[c][j] < 1e-9 {
				g.variance[c][j] = 1e-9
			}
		}
	}
	return Cost{Generic: float64(n) * float64(d) * 4}, nil
}

// PredictProba implements Classifier.
func (g *GaussianNB) PredictProba(x tabular.View) ([][]float64, Cost) {
	m := x.Rows()
	if g.mean == nil {
		return uniformProba(m, max(g.classes, 2)), Cost{}
	}
	out := make([][]float64, m) //greenlint:allow rowmajor proba output rows, class-wide not feature-wide
	d := x.Features()
	var rowBuf []float64
	for i := 0; i < m; i++ {
		row := x.Row(i, rowBuf)
		rowBuf = row
		logp := make([]float64, g.classes)
		for c := 0; c < g.classes; c++ {
			lp := g.logPrior[c]
			for j, v := range row {
				diff := v - g.mean[c][j]
				lp -= 0.5*math.Log(2*math.Pi*g.variance[c][j]) + diff*diff/(2*g.variance[c][j])
			}
			logp[c] = lp
		}
		softmaxInPlace(logp)
		out[i] = logp
	}
	return out, Cost{Generic: float64(m) * float64(d) * float64(g.classes) * 5}
}

// Clone implements Classifier.
func (g *GaussianNB) Clone() Classifier { return NewGaussianNB() }

// Name implements Classifier.
func (g *GaussianNB) Name() string { return "gaussian_nb" }

// ParallelFrac implements Classifier.
func (g *GaussianNB) ParallelFrac() float64 { return 0.5 }

// BernoulliNB is a Bernoulli naive-Bayes classifier over features binarized
// at their training means — the natural fit for one-hot and low-cardinality
// categorical inputs.
type BernoulliNB struct {
	// Alpha is the Laplace smoothing constant; 0 defaults to 1.
	Alpha      float64
	classes    int
	logPrior   []float64
	thresholds []float64
	logP       [][]float64 // log P(x_j=1 | class)
	logQ       [][]float64 // log P(x_j=0 | class)
}

// NewBernoulliNB constructs a Bernoulli naive-Bayes classifier.
func NewBernoulliNB(alpha float64) *BernoulliNB { return &BernoulliNB{Alpha: alpha} }

// Fit implements Classifier.
func (b *BernoulliNB) Fit(ds tabular.View, _ *rand.Rand) (Cost, error) {
	alpha := b.Alpha
	if alpha <= 0 {
		alpha = 1
	}
	n, d, k := ds.Rows(), ds.Features(), ds.Classes()
	b.classes = k
	b.thresholds = make([]float64, d)
	labels := ds.LabelsInto(nil)
	counts := make([]float64, k)
	for _, c := range labels {
		counts[c]++
	}
	ones := make([][]float64, k) //greenlint:allow rowmajor per-class feature-count vectors - model parameters
	for c := range ones {
		ones[c] = make([]float64, d)
	}
	var colBuf []float64
	if !ds.Contiguous() {
		colBuf = make([]float64, n)
	}
	for j := 0; j < d; j++ {
		col := ds.ColInto(j, colBuf)
		var sum float64
		for _, v := range col {
			sum += v
		}
		b.thresholds[j] = sum / float64(n)
		for i, v := range col {
			if v > b.thresholds[j] {
				ones[labels[i]][j]++
			}
		}
	}
	b.logPrior = make([]float64, k)
	b.logP = make([][]float64, k) //greenlint:allow rowmajor per-class log-probability table - model parameters
	b.logQ = make([][]float64, k) //greenlint:allow rowmajor per-class log-probability table - model parameters
	for c := 0; c < k; c++ {
		b.logPrior[c] = math.Log((counts[c] + 1) / (float64(n) + float64(k)))
		b.logP[c] = make([]float64, d)
		b.logQ[c] = make([]float64, d)
		for j := 0; j < d; j++ {
			p := (ones[c][j] + alpha) / (counts[c] + 2*alpha)
			b.logP[c][j] = math.Log(p)
			b.logQ[c][j] = math.Log(1 - p)
		}
	}
	return Cost{Generic: float64(n) * float64(d) * 3}, nil
}

// PredictProba implements Classifier.
func (b *BernoulliNB) PredictProba(x tabular.View) ([][]float64, Cost) {
	m := x.Rows()
	if b.logP == nil {
		return uniformProba(m, max(b.classes, 2)), Cost{}
	}
	out := make([][]float64, m) //greenlint:allow rowmajor proba output rows, class-wide not feature-wide
	d := len(b.thresholds)
	var rowBuf []float64
	for i := 0; i < m; i++ {
		row := x.Row(i, rowBuf)
		rowBuf = row
		logp := make([]float64, b.classes)
		for c := 0; c < b.classes; c++ {
			lp := b.logPrior[c]
			for j, v := range row {
				if j >= d {
					break
				}
				if v > b.thresholds[j] {
					lp += b.logP[c][j]
				} else {
					lp += b.logQ[c][j]
				}
			}
			logp[c] = lp
		}
		softmaxInPlace(logp)
		out[i] = logp
	}
	return out, Cost{Generic: float64(m) * float64(d) * float64(b.classes) * 2}
}

// Clone implements Classifier.
func (b *BernoulliNB) Clone() Classifier { return NewBernoulliNB(b.Alpha) }

// Name implements Classifier.
func (b *BernoulliNB) Name() string { return "bernoulli_nb" }

// ParallelFrac implements Classifier.
func (b *BernoulliNB) ParallelFrac() float64 { return 0.5 }
