package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/tabular"
)

// Criterion selects the impurity measure for classification trees.
type Criterion int

const (
	// Gini impurity (CART default).
	Gini Criterion = iota
	// Entropy (information gain).
	Entropy
)

// TreeParams are the shared hyperparameters of all tree learners.
type TreeParams struct {
	// MaxDepth limits tree depth; 0 means unlimited (hard cap 32).
	MaxDepth int
	// MinSamplesLeaf is the minimum number of samples per leaf.
	MinSamplesLeaf int
	// MinSamplesSplit is the minimum number of samples to attempt a
	// split.
	MinSamplesSplit int
	// MaxFeatures is the fraction of features tried per split in (0,1];
	// 0 means all features.
	MaxFeatures float64
	// RandomThreshold enables extremely-randomized splitting: one
	// uniform random threshold per tried feature instead of an exhaustive
	// scan.
	RandomThreshold bool
	// Criterion selects the impurity measure (classification only).
	Criterion Criterion
}

func (p TreeParams) normalized() TreeParams {
	if p.MaxDepth <= 0 || p.MaxDepth > 32 {
		p.MaxDepth = 32
	}
	if p.MinSamplesLeaf < 1 {
		p.MinSamplesLeaf = 1
	}
	if p.MinSamplesSplit < 2 {
		p.MinSamplesSplit = 2
	}
	if p.MaxFeatures <= 0 || p.MaxFeatures > 1 {
		p.MaxFeatures = 1
	}
	return p
}

// treeNode is one node of a fitted tree. Leaves have feature == -1.
type treeNode struct {
	feature     int
	threshold   float64
	left, right int32
	proba       []float64 // classification leaf distribution
	value       float64   // regression leaf value
	depth       int
}

// treeCore is the shared CART engine for classification and regression.
type treeCore struct {
	params  TreeParams
	classes int // 0 for regression
	nodes   []treeNode
	cost    Cost
}

type treeTask struct {
	x [][]float64
	y []int     // classification labels
	t []float64 // regression targets
}

func (tc *treeCore) fit(task treeTask, rng *rand.Rand) error {
	p := tc.params.normalized()
	tc.params = p
	n := len(task.x)
	if n == 0 {
		return errors.New("ml: tree fit on empty data")
	}
	d := len(task.x[0])
	if d == 0 {
		return errors.New("ml: tree fit with zero features")
	}
	tc.nodes = tc.nodes[:0]
	tc.cost = Cost{}

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	tc.build(task, idx, 0, rng)
	return nil
}

// build grows the subtree for the given sample indices and returns the node
// index.
func (tc *treeCore) build(task treeTask, idx []int, depth int, rng *rand.Rand) int32 {
	m := len(idx)
	p := tc.params

	node := treeNode{feature: -1, depth: depth}
	pure := false
	if tc.classes > 0 {
		counts := make([]float64, tc.classes)
		for _, i := range idx {
			counts[task.y[i]]++
		}
		nonzero := 0
		for _, c := range counts {
			if c > 0 {
				nonzero++
			}
		}
		pure = nonzero <= 1
		for i := range counts {
			counts[i] /= float64(m)
		}
		node.proba = counts
	} else {
		var sum float64
		for _, i := range idx {
			sum += task.t[i]
		}
		node.value = sum / float64(m)
		pure = m <= 1
	}
	tc.cost.Tree += float64(m)

	if pure || depth >= p.MaxDepth || m < p.MinSamplesSplit || m < 2*p.MinSamplesLeaf {
		return tc.push(node)
	}

	feature, threshold, ok := tc.findSplit(task, idx, rng)
	if !ok {
		return tc.push(node)
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if task.x[i][feature] <= threshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	tc.cost.Tree += float64(m)
	if len(leftIdx) < p.MinSamplesLeaf || len(rightIdx) < p.MinSamplesLeaf {
		return tc.push(node)
	}

	node.feature = feature
	node.threshold = threshold
	self := tc.push(node)
	left := tc.build(task, leftIdx, depth+1, rng)
	right := tc.build(task, rightIdx, depth+1, rng)
	tc.nodes[self].left = left
	tc.nodes[self].right = right
	return self
}

func (tc *treeCore) push(n treeNode) int32 {
	tc.nodes = append(tc.nodes, n)
	return int32(len(tc.nodes) - 1)
}

// findSplit searches for the best (feature, threshold) over a random subset
// of features.
func (tc *treeCore) findSplit(task treeTask, idx []int, rng *rand.Rand) (feature int, threshold float64, ok bool) {
	d := len(task.x[0])
	tryCount := int(math.Ceil(tc.params.MaxFeatures * float64(d)))
	if tryCount < 1 {
		tryCount = 1
	}
	if tryCount > d {
		tryCount = d
	}
	var features []int
	if tryCount == d {
		features = make([]int, d)
		for j := range features {
			features[j] = j
		}
	} else {
		features = rng.Perm(d)[:tryCount]
	}

	bestGain := 0.0
	ok = false
	for _, f := range features {
		var gain, thr float64
		var found bool
		if tc.params.RandomThreshold {
			gain, thr, found = tc.evalRandomThreshold(task, idx, f, rng)
			tc.cost.Tree += 3 * float64(len(idx))
		} else {
			gain, thr, found = tc.evalExhaustive(task, idx, f)
			m := float64(len(idx))
			tc.cost.Tree += m * (math.Log2(m+2) + float64(max(tc.classes, 1)))
		}
		if found && gain > bestGain {
			bestGain, threshold, feature, ok = gain, thr, f, true
		}
	}
	return feature, threshold, ok
}

// evalExhaustive sorts the samples by feature f and scans every split
// point, returning the best impurity decrease.
func (tc *treeCore) evalExhaustive(task treeTask, idx []int, f int) (gain, threshold float64, ok bool) {
	m := len(idx)
	order := append([]int(nil), idx...)
	sort.Slice(order, func(a, b int) bool { return task.x[order[a]][f] < task.x[order[b]][f] })

	if tc.classes > 0 {
		left := make([]float64, tc.classes)
		right := make([]float64, tc.classes)
		for _, i := range order {
			right[task.y[i]]++
		}
		parent := tc.impurity(right, float64(m))
		bestGain := 0.0
		var bestThr float64
		found := false
		for pos := 1; pos < m; pos++ {
			c := task.y[order[pos-1]]
			left[c]++
			right[c]--
			v0, v1 := task.x[order[pos-1]][f], task.x[order[pos]][f]
			if v0 == v1 {
				continue
			}
			nl, nr := float64(pos), float64(m-pos)
			g := parent - (nl*tc.impurity(left, nl)+nr*tc.impurity(right, nr))/float64(m)
			if g > bestGain {
				bestGain = g
				bestThr = (v0 + v1) / 2
				found = true
			}
		}
		return bestGain, bestThr, found
	}

	// Regression: incremental sums for MSE decrease.
	var sumR, sumSqR float64
	for _, i := range order {
		t := task.t[i]
		sumR += t
		sumSqR += t * t
	}
	totalVar := sumSqR - sumR*sumR/float64(m)
	var sumL, sumSqL float64
	bestGain := 0.0
	var bestThr float64
	found := false
	for pos := 1; pos < m; pos++ {
		t := task.t[order[pos-1]]
		sumL += t
		sumSqL += t * t
		sumRpos := sumR - sumL
		sumSqRpos := sumSqR - sumSqL
		v0, v1 := task.x[order[pos-1]][f], task.x[order[pos]][f]
		if v0 == v1 {
			continue
		}
		nl, nr := float64(pos), float64(m-pos)
		sseL := sumSqL - sumL*sumL/nl
		sseR := sumSqRpos - sumRpos*sumRpos/nr
		g := totalVar - sseL - sseR
		if g > bestGain {
			bestGain = g
			bestThr = (v0 + v1) / 2
			found = true
		}
	}
	return bestGain, bestThr, found
}

// evalRandomThreshold draws a uniform threshold between the column's min
// and max (extra-trees style) and scores that single split.
func (tc *treeCore) evalRandomThreshold(task treeTask, idx []int, f int, rng *rand.Rand) (gain, threshold float64, ok bool) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, i := range idx {
		v := task.x[i][f]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo {
		return 0, 0, false
	}
	thr := lo + rng.Float64()*(hi-lo)
	m := float64(len(idx))

	if tc.classes > 0 {
		left := make([]float64, tc.classes)
		right := make([]float64, tc.classes)
		var nl float64
		for _, i := range idx {
			if task.x[i][f] <= thr {
				left[task.y[i]]++
				nl++
			} else {
				right[task.y[i]]++
			}
		}
		nr := m - nl
		if nl == 0 || nr == 0 {
			return 0, 0, false
		}
		all := make([]float64, tc.classes)
		for c := range all {
			all[c] = left[c] + right[c]
		}
		g := tc.impurity(all, m) - (nl*tc.impurity(left, nl)+nr*tc.impurity(right, nr))/m
		return g, thr, g > 0
	}

	var sumL, sumSqL, sumR, sumSqR, nl float64
	for _, i := range idx {
		t := task.t[i]
		if task.x[i][f] <= thr {
			sumL += t
			sumSqL += t * t
			nl++
		} else {
			sumR += t
			sumSqR += t * t
		}
	}
	nr := m - nl
	if nl == 0 || nr == 0 {
		return 0, 0, false
	}
	total := sumSqL + sumSqR - (sumL+sumR)*(sumL+sumR)/m
	sseL := sumSqL - sumL*sumL/nl
	sseR := sumSqR - sumR*sumR/nr
	g := total - sseL - sseR
	return g, thr, g > 0
}

// impurity computes Gini or entropy from class counts summing to total.
func (tc *treeCore) impurity(counts []float64, total float64) float64 {
	if total <= 0 {
		return 0
	}
	if tc.params.Criterion == Entropy {
		var h float64
		for _, c := range counts {
			if c > 0 {
				p := c / total
				h -= p * math.Log2(p)
			}
		}
		return h
	}
	var sumSq float64
	for _, c := range counts {
		p := c / total
		sumSq += p * p
	}
	return 1 - sumSq
}

// traverse walks a row to its leaf and returns the leaf node plus the
// traversal cost in node visits.
func (tc *treeCore) traverse(row []float64) (*treeNode, float64) {
	if len(tc.nodes) == 0 {
		return nil, 0
	}
	cur := int32(0)
	visits := 1.0
	for {
		n := &tc.nodes[cur]
		if n.feature < 0 {
			return n, visits
		}
		if row[n.feature] <= n.threshold {
			cur = n.left
		} else {
			cur = n.right
		}
		visits++
	}
}

// NodeCount reports the number of nodes in the fitted tree.
func (tc *treeCore) NodeCount() int { return len(tc.nodes) }

// TreeClassifier is a CART decision-tree classifier.
type TreeClassifier struct {
	Params TreeParams
	core   treeCore
	fitted bool
}

// NewTreeClassifier constructs a tree classifier with the given parameters.
func NewTreeClassifier(p TreeParams) *TreeClassifier {
	return &TreeClassifier{Params: p}
}

// Fit implements Classifier.
func (t *TreeClassifier) Fit(ds *tabular.Dataset, rng *rand.Rand) (Cost, error) {
	t.core = treeCore{params: t.Params, classes: ds.Classes}
	if err := t.core.fit(treeTask{x: ds.X, y: ds.Y}, rng); err != nil {
		return Cost{}, err
	}
	t.fitted = true
	return t.core.cost, nil
}

// PredictProba implements Classifier.
func (t *TreeClassifier) PredictProba(x [][]float64) ([][]float64, Cost) {
	if !t.fitted {
		return uniformProba(len(x), max(t.core.classes, 2)), Cost{}
	}
	out := make([][]float64, len(x))
	var visits float64
	for i, row := range x {
		leaf, v := t.core.traverse(row)
		visits += v
		out[i] = leaf.proba
	}
	return out, Cost{Tree: 2 * visits}
}

// Clone implements Classifier.
func (t *TreeClassifier) Clone() Classifier { return NewTreeClassifier(t.Params) }

// Name implements Classifier.
func (t *TreeClassifier) Name() string {
	p := t.Params.normalized()
	return fmt.Sprintf("tree(depth=%d,leaf=%d)", p.MaxDepth, p.MinSamplesLeaf)
}

// ParallelFrac implements Classifier: a single tree fit is largely
// sequential.
func (t *TreeClassifier) ParallelFrac() float64 { return 0.3 }

// NodeCount reports the number of nodes in the fitted tree.
func (t *TreeClassifier) NodeCount() int { return t.core.NodeCount() }

// TreeRegressor is a CART regression tree.
type TreeRegressor struct {
	Params TreeParams
	core   treeCore
	fitted bool
}

// NewTreeRegressor constructs a regression tree with the given parameters.
func NewTreeRegressor(p TreeParams) *TreeRegressor {
	return &TreeRegressor{Params: p}
}

// FitReg implements Regressor.
func (t *TreeRegressor) FitReg(x [][]float64, y []float64, rng *rand.Rand) (Cost, error) {
	if len(x) != len(y) {
		return Cost{}, fmt.Errorf("ml: regression tree: %d rows but %d targets", len(x), len(y))
	}
	t.core = treeCore{params: t.Params}
	if err := t.core.fit(treeTask{x: x, t: y}, rng); err != nil {
		return Cost{}, err
	}
	t.fitted = true
	return t.core.cost, nil
}

// PredictReg implements Regressor.
func (t *TreeRegressor) PredictReg(x [][]float64) ([]float64, Cost) {
	out := make([]float64, len(x))
	if !t.fitted {
		return out, Cost{}
	}
	var visits float64
	for i, row := range x {
		leaf, v := t.core.traverse(row)
		visits += v
		out[i] = leaf.value
	}
	return out, Cost{Tree: 2 * visits}
}

// NodeCount reports the number of nodes in the fitted tree.
func (t *TreeRegressor) NodeCount() int { return t.core.NodeCount() }
