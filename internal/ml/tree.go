package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/tabular"
)

// Criterion selects the impurity measure for classification trees.
type Criterion int

const (
	// Gini impurity (CART default).
	Gini Criterion = iota
	// Entropy (information gain).
	Entropy
)

// TreeParams are the shared hyperparameters of all tree learners.
type TreeParams struct {
	// MaxDepth limits tree depth; 0 means unlimited (hard cap 32).
	MaxDepth int
	// MinSamplesLeaf is the minimum number of samples per leaf.
	MinSamplesLeaf int
	// MinSamplesSplit is the minimum number of samples to attempt a
	// split.
	MinSamplesSplit int
	// MaxFeatures is the fraction of features tried per split in (0,1];
	// 0 means all features.
	MaxFeatures float64
	// RandomThreshold enables extremely-randomized splitting: one
	// uniform random threshold per tried feature instead of an exhaustive
	// scan.
	RandomThreshold bool
	// Criterion selects the impurity measure (classification only).
	Criterion Criterion
}

func (p TreeParams) normalized() TreeParams {
	if p.MaxDepth <= 0 || p.MaxDepth > 32 {
		p.MaxDepth = 32
	}
	if p.MinSamplesLeaf < 1 {
		p.MinSamplesLeaf = 1
	}
	if p.MinSamplesSplit < 2 {
		p.MinSamplesSplit = 2
	}
	if p.MaxFeatures <= 0 || p.MaxFeatures > 1 {
		p.MaxFeatures = 1
	}
	return p
}

// treeNode is one node of a fitted tree. Leaves have feature == -1.
type treeNode struct {
	feature     int
	threshold   float64
	left, right int32
	proba       []float64 // classification leaf distribution
	value       float64   // regression leaf value
	depth       int
}

// treeCore is the shared CART engine for classification and regression.
//
// The fit path is allocation-free on a per-node basis: features live in a
// pooled column-major cache, node sample indices occupy ranges of one
// shared buffer that split partitioning rearranges in place, and split
// scoring works off presorted per-feature index lists (built lazily) or a
// reusable sort scratch. The rewrite is bit-compatible with the original
// per-split sort.Slice kernel: identical trees, identical RNG consumption
// and identical Cost, so the virtual-clock energy accounting of every
// consumer (forests, AdaBoost, gradient boosting, TPOT pipelines, the BO
// surrogate) is unchanged.
type treeCore struct {
	params  TreeParams
	classes int // 0 for regression
	nodes   []treeNode
	cost    Cost
	scratch *treeScratch // non-nil only while fit runs
	// probaArena is the unhanded tail of the current leaf-probability
	// block; see leafProba.
	probaArena []float64
}

// leafProba returns a zeroed class-count vector carved from the proba
// arena, starting a fresh block when the tail runs out. Leaf vectors
// are retained by the fitted tree, so they can never come from pooled
// scratch; block carving turns the one remaining per-node allocation
// of a fit into one allocation per 64 nodes. Each vector is handed out
// exactly once (full-capacity slice), so aliasing between nodes is
// impossible.
func (tc *treeCore) leafProba() []float64 {
	k := tc.classes
	if len(tc.probaArena) < k {
		tc.probaArena = make([]float64, 64*k)
	}
	p := tc.probaArena[:k:k]
	tc.probaArena = tc.probaArena[k:]
	return p
}

type treeTask struct {
	v tabular.View
	y []int     // classification labels, view-local; gathered lazily if nil
	t []float64 // regression targets, view-local
}

func (tc *treeCore) fit(task treeTask, rng *rand.Rand) error {
	p := tc.params.normalized()
	tc.params = p
	n := task.v.Rows()
	if n == 0 {
		return errors.New("ml: tree fit on empty data")
	}
	d := task.v.Features()
	if d == 0 {
		return errors.New("ml: tree fit with zero features")
	}
	tc.nodes = tc.nodes[:0]
	tc.cost = Cost{}

	s := getTreeScratch(n, d, max(tc.classes, 1), !task.v.Contiguous())
	tc.scratch = s
	defer func() {
		tc.scratch = nil
		putTreeScratch(s)
	}()

	// Columnar input: an identity view aliases the frame's columns
	// directly — the historical per-fit row-major transpose is gone. A
	// subset view (bootstrap, fold) gathers each column into the pooled
	// arena with sequential writes; either way s.col(f) yields exactly
	// the values the transpose used to produce, so everything downstream
	// is bit-identical.
	frameCols := task.v.Frame().Cols
	if task.v.Contiguous() {
		copy(s.colref, frameCols)
	} else {
		vidx := task.v.Indices()
		for f := 0; f < d; f++ {
			dst := s.cols[f*n : (f+1)*n]
			col := frameCols[f]
			for i, r := range vidx {
				dst[i] = col[r]
			}
			s.colref[f] = dst
		}
	}
	if tc.classes > 0 && task.y == nil {
		if task.v.Contiguous() {
			task.y = task.v.Frame().Y
		} else {
			s.ylab = sizedInt(s.ylab, n)
			vidx := task.v.Indices()
			fy := task.v.Frame().Y
			for i, r := range vidx {
				s.ylab[i] = fy[r]
			}
			task.y = s.ylab
		}
	}
	for i := range s.idx {
		s.idx[i] = int32(i)
	}
	tc.build(task, 0, n, 0, rng)
	return nil
}

// build grows the subtree over the index range scratch.idx[lo:hi) and
// returns the node index.
func (tc *treeCore) build(task treeTask, lo, hi, depth int, rng *rand.Rand) int32 {
	s := tc.scratch
	idx := s.idx[lo:hi]
	m := hi - lo
	p := tc.params

	node := treeNode{feature: -1, depth: depth}
	pure := false
	if tc.classes > 0 {
		counts := tc.leafProba()
		for _, i := range idx {
			counts[task.y[i]]++
		}
		nonzero := 0
		for _, c := range counts {
			if c > 0 {
				nonzero++
			}
		}
		pure = nonzero <= 1
		for i := range counts {
			counts[i] /= float64(m)
		}
		node.proba = counts
	} else {
		var sum float64
		for _, i := range idx {
			sum += task.t[i]
		}
		node.value = sum / float64(m)
		pure = m <= 1
	}
	tc.cost.Tree += float64(m)

	if pure || depth >= p.MaxDepth || m < p.MinSamplesSplit || m < 2*p.MinSamplesLeaf {
		return tc.push(node)
	}

	feature, threshold, ok := tc.findSplit(task, lo, hi, rng)
	if !ok {
		return tc.push(node)
	}

	// Stable in-place partition of the shared index buffer: left-going
	// samples compact forward, right-going ones spill to scratch and are
	// copied back behind them. Stability keeps every node's index order
	// equal to the historical append-based partition, which leaf
	// statistics' floating-point accumulation order depends on.
	col := s.col(feature)
	nl := lo
	nr := 0
	for k := lo; k < hi; k++ {
		i := s.idx[k]
		if col[i] <= threshold {
			s.idx[nl] = i
			nl++
		} else {
			s.part[nr] = i
			nr++
		}
	}
	copy(s.idx[nl:hi], s.part[:nr])
	tc.cost.Tree += float64(m)
	if nl-lo < p.MinSamplesLeaf || nr < p.MinSamplesLeaf {
		return tc.push(node)
	}

	node.feature = feature
	node.threshold = threshold
	self := tc.push(node)
	left := tc.build(task, lo, nl, depth+1, rng)
	right := tc.build(task, nl, hi, depth+1, rng)
	tc.nodes[self].left = left
	tc.nodes[self].right = right
	return self
}

func (tc *treeCore) push(n treeNode) int32 {
	tc.nodes = append(tc.nodes, n)
	return int32(len(tc.nodes) - 1)
}

// findSplit searches for the best (feature, threshold) over a random subset
// of features.
func (tc *treeCore) findSplit(task treeTask, lo, hi int, rng *rand.Rand) (feature int, threshold float64, ok bool) {
	s := tc.scratch
	d := s.d
	tryCount := int(math.Ceil(tc.params.MaxFeatures * float64(d)))
	if tryCount < 1 {
		tryCount = 1
	}
	if tryCount > d {
		tryCount = d
	}
	features := s.perm[:d]
	for j := range features {
		features[j] = j
	}
	if tryCount < d {
		// Fisher-Yates over the scratch permutation, drawing exactly as
		// math/rand/v2's Perm does, so the tried feature subsets — and
		// therefore the fitted trees — match the historical
		// rng.Perm(d)[:tryCount] draw for draw without its allocation.
		for i := d - 1; i > 0; i-- {
			j := int(rng.Uint64N(uint64(i + 1)))
			features[i], features[j] = features[j], features[i]
		}
		features = features[:tryCount]
	}

	m := hi - lo
	bestGain := 0.0
	ok = false
	for _, f := range features {
		var gain, thr float64
		var found bool
		if tc.params.RandomThreshold {
			gain, thr, found = tc.evalRandomThreshold(task, lo, hi, f, rng)
			tc.cost.Tree += 3 * float64(m)
		} else {
			gain, thr, found = tc.evalExhaustive(task, lo, hi, f)
			fm := float64(m)
			tc.cost.Tree += fm * (math.Log2(fm+2) + float64(max(tc.classes, 1)))
		}
		if found && gain > bestGain {
			bestGain, threshold, feature, ok = gain, thr, f, true
		}
	}
	return feature, threshold, ok
}

// orderByFeature leaves the node's sample indices sorted by feature f in
// the order scratch. Two paths produce that order:
//
//   - Presorted filter (classification only): scan the lazily built
//     full-column presorted index list and keep the node's members —
//     O(n) instead of O(m log m), a win for large nodes. Tie order
//     differs from the historical per-node sort, which is provably
//     irrelevant for classification: class counts are integer-valued (so
//     accumulation order cannot change them) and gains are evaluated only
//     at boundaries between distinct feature values, where the cumulative
//     counts depend on the sample set alone.
//
//   - Direct pdqsort on the node's indices, bit-compatible with the
//     historical sort.Slice call (see colSorter). Regression always takes
//     this path: its prefix sums accumulate floats in sorted order, so
//     tie order changes the bits of candidate gains — silently diverging
//     from the classification kernel is exactly what the shared scratch
//     path must avoid.
//
//greenlint:hotpath per-node candidate ordering; both paths reuse treeScratch buffers
func (tc *treeCore) orderByFeature(lo, hi, f int) []int32 {
	s := tc.scratch
	m := hi - lo
	order := s.order[:m]
	if tc.classes > 0 && m*ceilLog2(m) > s.n {
		sorted := s.ensureSorted(f)
		st := s.nextStamp()
		for _, i := range s.idx[lo:hi] {
			s.nodeStamp[i] = st
		}
		k := 0
		for _, i := range sorted {
			if s.nodeStamp[i] == st {
				order[k] = i
				k++
			}
		}
		return order
	}
	copy(order, s.idx[lo:hi])
	s.sorter.col, s.sorter.order = s.col(f), order
	sort.Sort(&s.sorter)
	return order
}

// evalExhaustive sorts the samples by feature f and scans every split
// point, returning the best impurity decrease.
func (tc *treeCore) evalExhaustive(task treeTask, lo, hi, f int) (gain, threshold float64, ok bool) {
	s := tc.scratch
	m := hi - lo
	col := s.col(f)
	order := tc.orderByFeature(lo, hi, f)

	if tc.classes > 0 {
		left := s.left[:tc.classes]
		right := s.right[:tc.classes]
		for c := range left {
			left[c], right[c] = 0, 0
		}
		for _, i := range order {
			right[task.y[i]]++
		}
		parent := tc.impurity(right, float64(m))
		bestGain := 0.0
		var bestThr float64
		found := false
		for pos := 1; pos < m; pos++ {
			c := task.y[order[pos-1]]
			left[c]++
			right[c]--
			v0, v1 := col[order[pos-1]], col[order[pos]]
			if v0 == v1 {
				continue
			}
			nl, nr := float64(pos), float64(m-pos)
			g := parent - (nl*tc.impurity(left, nl)+nr*tc.impurity(right, nr))/float64(m)
			if g > bestGain {
				bestGain = g
				bestThr = (v0 + v1) / 2
				found = true
			}
		}
		return bestGain, bestThr, found
	}

	// Regression: incremental sums for MSE decrease.
	var sumR, sumSqR float64
	for _, i := range order {
		t := task.t[i]
		sumR += t
		sumSqR += t * t
	}
	totalVar := sumSqR - sumR*sumR/float64(m)
	var sumL, sumSqL float64
	bestGain := 0.0
	var bestThr float64
	found := false
	for pos := 1; pos < m; pos++ {
		t := task.t[order[pos-1]]
		sumL += t
		sumSqL += t * t
		sumRpos := sumR - sumL
		sumSqRpos := sumSqR - sumSqL
		v0, v1 := col[order[pos-1]], col[order[pos]]
		if v0 == v1 {
			continue
		}
		nl, nr := float64(pos), float64(m-pos)
		sseL := sumSqL - sumL*sumL/nl
		sseR := sumSqRpos - sumRpos*sumRpos/nr
		g := totalVar - sseL - sseR
		if g > bestGain {
			bestGain = g
			bestThr = (v0 + v1) / 2
			found = true
		}
	}
	return bestGain, bestThr, found
}

// evalRandomThreshold draws a uniform threshold between the column's min
// and max (extra-trees style) and scores that single split.
func (tc *treeCore) evalRandomThreshold(task treeTask, lo, hi, f int, rng *rand.Rand) (gain, threshold float64, ok bool) {
	s := tc.scratch
	col := s.col(f)
	idx := s.idx[lo:hi]
	vlo, vhi := math.Inf(1), math.Inf(-1)
	for _, i := range idx {
		v := col[i]
		if v < vlo {
			vlo = v
		}
		if v > vhi {
			vhi = v
		}
	}
	if vhi <= vlo {
		return 0, 0, false
	}
	thr := vlo + rng.Float64()*(vhi-vlo)
	m := float64(len(idx))

	if tc.classes > 0 {
		left := s.left[:tc.classes]
		right := s.right[:tc.classes]
		for c := range left {
			left[c], right[c] = 0, 0
		}
		var nl float64
		for _, i := range idx {
			if col[i] <= thr {
				left[task.y[i]]++
				nl++
			} else {
				right[task.y[i]]++
			}
		}
		nr := m - nl
		if nl == 0 || nr == 0 {
			return 0, 0, false
		}
		all := s.all[:tc.classes]
		for c := range all {
			all[c] = left[c] + right[c]
		}
		g := tc.impurity(all, m) - (nl*tc.impurity(left, nl)+nr*tc.impurity(right, nr))/m
		return g, thr, g > 0
	}

	var sumL, sumSqL, sumR, sumSqR, nl float64
	for _, i := range idx {
		t := task.t[i]
		if col[i] <= thr {
			sumL += t
			sumSqL += t * t
			nl++
		} else {
			sumR += t
			sumSqR += t * t
		}
	}
	nr := m - nl
	if nl == 0 || nr == 0 {
		return 0, 0, false
	}
	total := sumSqL + sumSqR - (sumL+sumR)*(sumL+sumR)/m
	sseL := sumSqL - sumL*sumL/nl
	sseR := sumSqR - sumR*sumR/nr
	g := total - sseL - sseR
	return g, thr, g > 0
}

// impurity computes Gini or entropy from class counts summing to total.
func (tc *treeCore) impurity(counts []float64, total float64) float64 {
	if total <= 0 {
		return 0
	}
	if tc.params.Criterion == Entropy {
		var h float64
		for _, c := range counts {
			if c > 0 {
				p := c / total
				h -= p * math.Log2(p)
			}
		}
		return h
	}
	var sumSq float64
	for _, c := range counts {
		p := c / total
		sumSq += p * p
	}
	return 1 - sumSq
}

// traverse walks view row i to its leaf and returns the leaf node plus
// the traversal cost in node visits. Each node reads a single cell from
// the feature's column — no row materialization.
func (tc *treeCore) traverse(v tabular.View, i int) (*treeNode, float64) {
	if len(tc.nodes) == 0 {
		return nil, 0
	}
	cur := int32(0)
	visits := 1.0
	for {
		n := &tc.nodes[cur]
		if n.feature < 0 {
			return n, visits
		}
		if v.At(i, n.feature) <= n.threshold {
			cur = n.left
		} else {
			cur = n.right
		}
		visits++
	}
}

// NodeCount reports the number of nodes in the fitted tree.
func (tc *treeCore) NodeCount() int { return len(tc.nodes) }

// TreeClassifier is a CART decision-tree classifier.
type TreeClassifier struct {
	Params TreeParams
	core   treeCore
	fitted bool
}

// NewTreeClassifier constructs a tree classifier with the given parameters.
func NewTreeClassifier(p TreeParams) *TreeClassifier {
	return &TreeClassifier{Params: p}
}

// Fit implements Classifier.
func (t *TreeClassifier) Fit(ds tabular.View, rng *rand.Rand) (Cost, error) {
	t.core = treeCore{params: t.Params, classes: ds.Classes()}
	if err := t.core.fit(treeTask{v: ds}, rng); err != nil {
		return Cost{}, err
	}
	t.fitted = true
	return t.core.cost, nil
}

// PredictProba implements Classifier. Rows traverse independently, so
// row blocks run in parallel under the package Parallelism knob:
// output rows are disjoint slots, and the per-block visit counts are
// integer-valued floats whose block-order reduction is exact — the
// Cost matches the sequential walk bit for bit.
func (t *TreeClassifier) PredictProba(x tabular.View) ([][]float64, Cost) {
	n := x.Rows()
	if !t.fitted {
		return uniformProba(n, max(t.core.classes, 2)), Cost{}
	}
	out := make([][]float64, n) //greenlint:allow rowmajor proba output rows, class-wide not feature-wide
	blockVisits := make([]float64, rowBlockCount(n))
	runRowBlocks(n, func(_, b, lo, hi int) {
		var visits float64
		for i := lo; i < hi; i++ {
			leaf, v := t.core.traverse(x, i)
			visits += v
			out[i] = leaf.proba
		}
		blockVisits[b] = visits
	})
	var visits float64
	for _, v := range blockVisits {
		visits += v
	}
	return out, Cost{Tree: 2 * visits}
}

// Clone implements Classifier.
func (t *TreeClassifier) Clone() Classifier { return NewTreeClassifier(t.Params) }

// Name implements Classifier.
func (t *TreeClassifier) Name() string {
	p := t.Params.normalized()
	return fmt.Sprintf("tree(depth=%d,leaf=%d)", p.MaxDepth, p.MinSamplesLeaf)
}

// ParallelFrac implements Classifier: a single tree fit is largely
// sequential.
func (t *TreeClassifier) ParallelFrac() float64 { return 0.3 }

// NodeCount reports the number of nodes in the fitted tree.
func (t *TreeClassifier) NodeCount() int { return t.core.NodeCount() }

// TreeRegressor is a CART regression tree.
type TreeRegressor struct {
	Params TreeParams
	core   treeCore
	fitted bool
}

// NewTreeRegressor constructs a regression tree with the given parameters.
func NewTreeRegressor(p TreeParams) *TreeRegressor {
	return &TreeRegressor{Params: p}
}

// FitReg implements Regressor.
func (t *TreeRegressor) FitReg(x tabular.View, y []float64, rng *rand.Rand) (Cost, error) {
	if x.Rows() != len(y) {
		return Cost{}, fmt.Errorf("ml: regression tree: %d rows but %d targets", x.Rows(), len(y))
	}
	t.core = treeCore{params: t.Params}
	if err := t.core.fit(treeTask{v: x, t: y}, rng); err != nil {
		return Cost{}, err
	}
	t.fitted = true
	return t.core.cost, nil
}

// PredictReg implements Regressor. Row blocks run in parallel with
// block-slot visit counts, exactly like TreeClassifier.PredictProba.
func (t *TreeRegressor) PredictReg(x tabular.View) ([]float64, Cost) {
	n := x.Rows()
	out := make([]float64, n)
	if !t.fitted {
		return out, Cost{}
	}
	blockVisits := make([]float64, rowBlockCount(n))
	runRowBlocks(n, func(_, b, lo, hi int) {
		var visits float64
		for i := lo; i < hi; i++ {
			leaf, v := t.core.traverse(x, i)
			visits += v
			out[i] = leaf.value
		}
		blockVisits[b] = visits
	})
	var visits float64
	for _, v := range blockVisits {
		visits += v
	}
	return out, Cost{Tree: 2 * visits}
}

// NodeCount reports the number of nodes in the fitted tree.
func (t *TreeRegressor) NodeCount() int { return t.core.NodeCount() }
