package ml

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/tabular"
)

// equivDataset builds datasets that exercise every kernel path: pure
// continuous columns, tie-heavy low-cardinality columns, and constant
// columns (no valid split).
func equivDataset(n, d, classes int, seed uint64) *tabular.Dataset {
	r := rand.New(rand.NewPCG(seed, 0xe9))
	ds := &tabular.Dataset{Name: "equiv", Classes: classes}
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := range row {
			switch j % 4 {
			case 0:
				row[j] = r.NormFloat64() + float64(i%classes)
			case 1:
				row[j] = float64(r.IntN(4)) // heavy ties
			case 2:
				row[j] = 1.5 // constant
			default:
				row[j] = math.Round(r.NormFloat64()*2) / 2 // moderate ties
			}
		}
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, i%classes)
	}
	return ds
}

// TestTreeKernelMatchesLegacy asserts the rewritten CART kernel is
// bit-identical to the preserved pre-optimization kernel: same node
// order, features, thresholds, leaf statistics, Cost, and RNG
// consumption, across classification and regression, exhaustive and
// random-threshold splitting, full and subset feature sampling.
func TestTreeKernelMatchesLegacy(t *testing.T) {
	params := []TreeParams{
		{MaxDepth: 6},
		{MaxDepth: 0}, // unlimited
		{MaxDepth: 10, MinSamplesLeaf: 3, MinSamplesSplit: 8},
		{MaxDepth: 10, MaxFeatures: 0.3},
		{MaxDepth: 10, MaxFeatures: 0.3, RandomThreshold: true},
		{MaxDepth: 8, Criterion: Entropy},
		{MaxDepth: 8, MaxFeatures: 0.51, Criterion: Entropy, MinSamplesLeaf: 2},
	}
	for _, classes := range []int{0, 2, 5} {
		for pi, p := range params {
			for seed := uint64(1); seed <= 4; seed++ {
				name := fmt.Sprintf("classes=%d/params=%d/seed=%d", classes, pi, seed)
				t.Run(name, func(t *testing.T) {
					n := 150 + int(seed)*90
					dsClasses := classes
					if dsClasses == 0 {
						dsClasses = 3 // labels only seed the regression targets
					}
					ds := equivDataset(n, 9, dsClasses, seed)
					task := treeTask{v: ds.View()}
					legacyTask := legacyTreeTask{x: ds.X}
					taskClasses := classes
					if classes > 0 {
						task.y = ds.Y
						legacyTask.y = ds.Y
					} else {
						task.t = make([]float64, n)
						for i, row := range ds.X {
							task.t[i] = row[0]*1.3 + row[3] + float64(ds.Y[i])
						}
						legacyTask.t = task.t
					}

					newCore := treeCore{params: p, classes: taskClasses}
					oldCore := legacyTreeCore{params: p, classes: taskClasses}
					rngNew := rand.New(rand.NewPCG(seed*31, 0x7))
					rngOld := rand.New(rand.NewPCG(seed*31, 0x7))
					if err := newCore.fit(task, rngNew); err != nil {
						t.Fatalf("new fit: %v", err)
					}
					if err := oldCore.fit(legacyTask, rngOld); err != nil {
						t.Fatalf("legacy fit: %v", err)
					}

					if newCore.cost != oldCore.cost {
						t.Fatalf("cost diverged: new %+v legacy %+v", newCore.cost, oldCore.cost)
					}
					compareNodes(t, newCore.nodes, oldCore.nodes)
					// Both kernels must leave the RNG in the same state —
					// a hidden extra draw would desync every later model
					// in a pipeline.
					if a, b := rngNew.Uint64(), rngOld.Uint64(); a != b {
						t.Fatalf("RNG streams diverged after fit: %d vs %d", a, b)
					}
				})
			}
		}
	}
}

func compareNodes(t *testing.T, got, want []treeNode) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("node count diverged: new %d legacy %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.feature != w.feature || g.left != w.left || g.right != w.right || g.depth != w.depth {
			t.Fatalf("node %d structure diverged: new %+v legacy %+v", i, g, w)
		}
		if math.Float64bits(g.threshold) != math.Float64bits(w.threshold) {
			t.Fatalf("node %d threshold diverged: %v vs %v", i, g.threshold, w.threshold)
		}
		if math.Float64bits(g.value) != math.Float64bits(w.value) {
			t.Fatalf("node %d value diverged: %v vs %v", i, g.value, w.value)
		}
		if len(g.proba) != len(w.proba) {
			t.Fatalf("node %d proba length diverged", i)
		}
		for c := range g.proba {
			if math.Float64bits(g.proba[c]) != math.Float64bits(w.proba[c]) {
				t.Fatalf("node %d proba[%d] diverged: %v vs %v", i, c, g.proba[c], w.proba[c])
			}
		}
	}
}

// TestManualShuffleMatchesPerm pins the scratch Fisher-Yates to
// math/rand/v2's Perm: the kernel relies on them consuming the stream
// identically.
func TestManualShuffleMatchesPerm(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		for _, d := range []int{1, 2, 3, 7, 16, 40} {
			a := rand.New(rand.NewPCG(seed, 99))
			b := rand.New(rand.NewPCG(seed, 99))
			want := a.Perm(d)
			got := make([]int, d)
			for j := range got {
				got[j] = j
			}
			for i := d - 1; i > 0; i-- {
				j := int(b.Uint64N(uint64(i + 1)))
				got[i], got[j] = got[j], got[i]
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d d %d: manual shuffle %v != Perm %v", seed, d, got, want)
				}
			}
			if a.Uint64() != b.Uint64() {
				t.Fatalf("seed %d d %d: stream desynced", seed, d)
			}
		}
	}
}
