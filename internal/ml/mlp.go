package ml

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/tabular"
)

// MLPParams configure the multi-layer perceptron.
type MLPParams struct {
	// Hidden lists the hidden-layer widths; empty defaults to one layer
	// of 32 units.
	Hidden []int
	// Epochs is the number of SGD passes.
	Epochs int
	// LearningRate is the step size.
	LearningRate float64
	// Batch is the minibatch size.
	Batch int
	// L2 is weight decay.
	L2 float64
}

func (p MLPParams) normalized() MLPParams {
	if len(p.Hidden) == 0 {
		p.Hidden = []int{32}
	}
	if p.Epochs < 1 {
		p.Epochs = 30
	}
	if p.LearningRate <= 0 {
		p.LearningRate = 0.05
	}
	if p.Batch < 1 {
		p.Batch = 32
	}
	if p.L2 < 0 {
		p.L2 = 0
	}
	return p
}

// mlpLayer is one dense layer: out = relu(W x + b) (softmax on the last).
type mlpLayer struct {
	w    [][]float64 // [out][in]
	b    []float64
	last bool
}

// MLP is a feed-forward neural network classifier with ReLU hidden layers
// and a softmax output, trained by minibatch SGD. Its compute is dense
// matrix work (hw.KindMatrix) and so benefits from vectorization and GPU
// offload, unlike the tree models.
type MLP struct {
	Params  MLPParams
	layers  []mlpLayer
	classes int
}

// NewMLP constructs an MLP classifier.
func NewMLP(p MLPParams) *MLP { return &MLP{Params: p} }

// Fit implements Classifier. SGD visits rows in a random order every
// epoch, gathering each visited row straight from the view's columns
// into the input activation buffer.
func (m *MLP) Fit(ds tabular.View, rng *rand.Rand) (Cost, error) {
	p := m.Params.normalized()
	m.Params = p
	n, d, k := ds.Rows(), ds.Features(), ds.Classes()
	m.classes = k
	labels := ds.LabelsInto(nil)

	sizes := append([]int{d}, p.Hidden...)
	sizes = append(sizes, k)
	m.layers = make([]mlpLayer, len(sizes)-1)
	var weightCount float64
	for l := range m.layers {
		in, out := sizes[l], sizes[l+1]
		layer := mlpLayer{
			w:    make([][]float64, out), //greenlint:allow rowmajor layer weight matrix - model parameters
			b:    make([]float64, out),
			last: l == len(m.layers)-1,
		}
		scale := math.Sqrt(2 / float64(in))
		for o := range layer.w {
			layer.w[o] = make([]float64, in)
			for i := range layer.w[o] {
				layer.w[o][i] = scale * rng.NormFloat64()
			}
		}
		m.layers[l] = layer
		weightCount += float64(in * out)
	}

	// Preallocate activation and delta buffers.
	acts := make([][]float64, len(sizes))   //greenlint:allow rowmajor per-layer activation scratch, layer-wide
	deltas := make([][]float64, len(sizes)) //greenlint:allow rowmajor per-layer delta scratch, layer-wide
	for l, s := range sizes {
		acts[l] = make([]float64, s)
		deltas[l] = make([]float64, s)
	}

	for epoch := 0; epoch < p.Epochs; epoch++ {
		eta := p.LearningRate / (1 + 0.05*float64(epoch))
		for _, i := range rng.Perm(n) {
			ds.Row(i, acts[0])
			m.forward(acts)
			// Output delta: softmax cross-entropy gradient.
			for c := 0; c < k; c++ {
				target := 0.0
				if labels[i] == c {
					target = 1.0
				}
				deltas[len(deltas)-1][c] = acts[len(acts)-1][c] - target
			}
			m.backward(acts, deltas, eta, p.L2)
		}
	}
	flops := float64(p.Epochs) * float64(n) * weightCount * 6 // fwd + bwd + update
	return Cost{Matrix: flops}, nil
}

func (m *MLP) forward(acts [][]float64) {
	for l, layer := range m.layers {
		in, out := acts[l], acts[l+1]
		for o, w := range layer.w {
			var sum float64
			for j, v := range in {
				sum += w[j] * v
			}
			sum += layer.b[o]
			if !layer.last && sum < 0 {
				sum = 0 // ReLU
			}
			out[o] = sum
		}
		if layer.last {
			softmaxInPlace(out)
		}
	}
}

func (m *MLP) backward(acts, deltas [][]float64, eta, l2 float64) {
	for l := len(m.layers) - 1; l >= 0; l-- {
		layer := m.layers[l]
		in := acts[l]
		delta := deltas[l+1]
		prev := deltas[l]
		for j := range prev {
			prev[j] = 0
		}
		for o, w := range layer.w {
			g := delta[o]
			if g == 0 {
				continue
			}
			for j, v := range in {
				prev[j] += w[j] * g
				w[j] -= eta * (g*v + l2*w[j])
			}
			layer.b[o] -= eta * g
		}
		// ReLU derivative for the layer below (skip input layer).
		if l > 0 {
			for j, a := range acts[l] {
				if a <= 0 {
					prev[j] = 0
				}
			}
		}
	}
}

// PredictProba implements Classifier.
func (m *MLP) PredictProba(x tabular.View) ([][]float64, Cost) {
	n := x.Rows()
	if len(m.layers) == 0 {
		return uniformProba(n, max(m.classes, 2)), Cost{}
	}
	var weightCount float64
	for _, layer := range m.layers {
		for _, w := range layer.w {
			weightCount += float64(len(w))
		}
	}
	out := make([][]float64, n) //greenlint:allow rowmajor proba output rows, class-wide not feature-wide
	var rowBuf []float64
	for i := 0; i < n; i++ {
		row := x.Row(i, rowBuf)
		rowBuf = row
		cur := row
		for _, layer := range m.layers {
			next := make([]float64, len(layer.w))
			for o, w := range layer.w {
				var sum float64
				for j, v := range cur {
					sum += w[j] * v
				}
				sum += layer.b[o]
				if !layer.last && sum < 0 {
					sum = 0
				}
				next[o] = sum
			}
			if layer.last {
				softmaxInPlace(next)
			}
			cur = next
		}
		out[i] = cur
	}
	return out, Cost{Matrix: float64(n) * weightCount * 2}
}

// Clone implements Classifier.
func (m *MLP) Clone() Classifier {
	p := m.Params
	p.Hidden = append([]int(nil), m.Params.Hidden...)
	return NewMLP(p)
}

// Name implements Classifier.
func (m *MLP) Name() string {
	p := m.Params.normalized()
	return fmt.Sprintf("mlp(hidden=%v,epochs=%d)", p.Hidden, p.Epochs)
}

// ParallelFrac implements Classifier: minibatch math parallelizes
// moderately.
func (m *MLP) ParallelFrac() float64 { return 0.6 }
