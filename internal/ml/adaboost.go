package ml

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/tabular"
)

// AdaBoostParams configure the SAMME boosting classifier.
type AdaBoostParams struct {
	// Rounds is the number of boosting rounds (default 30).
	Rounds int
	// Tree holds the weak learner's parameters (depth defaults to 1 —
	// decision stumps).
	Tree TreeParams
}

func (p AdaBoostParams) normalized() AdaBoostParams {
	if p.Rounds < 1 {
		p.Rounds = 30
	}
	if p.Tree.MaxDepth <= 0 {
		p.Tree.MaxDepth = 1
	}
	return p
}

// AdaBoost is the multi-class SAMME variant of adaptive boosting over
// decision stumps/trees: each round reweights misclassified instances
// (realized as weighted resampling, which keeps the weak learner
// unchanged) and weak learners vote with log-odds weights.
type AdaBoost struct {
	Params  AdaBoostParams
	classes int
	stumps  []*TreeClassifier
	alphas  []float64
}

// NewAdaBoost constructs an AdaBoost classifier.
func NewAdaBoost(p AdaBoostParams) *AdaBoost { return &AdaBoost{Params: p} }

// Fit implements Classifier.
func (a *AdaBoost) Fit(ds tabular.View, rng *rand.Rand) (Cost, error) {
	p := a.Params.normalized()
	a.Params = p
	n, k := ds.Rows(), ds.Classes()
	a.classes = k
	labels := ds.LabelsInto(nil)
	a.stumps = a.stumps[:0]
	a.alphas = a.alphas[:0]

	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1 / float64(n)
	}
	var cost Cost
	cum := make([]float64, n)
	idx := make([]int, n)
	for round := 0; round < p.Rounds; round++ {
		// Weighted resample (cheap stand-in for weighted impurity).
		var total float64
		for i, w := range weights {
			total += w
			cum[i] = total
		}
		for i := range idx {
			u := rng.Float64() * total
			lo, hi := 0, n-1
			for lo < hi {
				mid := (lo + hi) / 2
				if cum[mid] < u {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			idx[i] = lo
		}
		cost.Generic += float64(n) * math.Log2(float64(n)+2)
		// The sample view aliases/composes idx; the stump gathers it into
		// its own column cache, so idx can be rewritten next round.
		sample := ds.Select(idx)

		stump := NewTreeClassifier(p.Tree)
		c, err := stump.Fit(sample, rng)
		cost.Add(c)
		if err != nil {
			return cost, fmt.Errorf("ml: adaboost round %d: %w", round, err)
		}

		// Weighted training error on the original data.
		pred, c2 := Predict(stump, ds)
		cost.Add(c2)
		var errW float64
		for i, yhat := range pred {
			if yhat != labels[i] {
				errW += weights[i]
			}
		}
		errW /= total
		if errW >= 1-1/float64(k) {
			// Worse than chance: discard and stop.
			break
		}
		if errW < 1e-10 {
			errW = 1e-10
		}
		alpha := math.Log((1-errW)/errW) + math.Log(float64(k)-1) // SAMME
		a.stumps = append(a.stumps, stump)
		a.alphas = append(a.alphas, alpha)

		// Reweight.
		var newTotal float64
		for i, yhat := range pred {
			if yhat != labels[i] {
				weights[i] *= math.Exp(alpha)
			}
			newTotal += weights[i]
		}
		for i := range weights {
			weights[i] /= newTotal
		}
		cost.Generic += float64(3 * n)
		if errW < 1e-9 {
			break // perfect weak learner: done
		}
	}
	return cost, nil
}

// PredictProba implements Classifier: alpha-weighted votes normalized
// to probabilities. Stumps predict in parallel into stump-indexed
// slots; votes reduce on the caller in stump order, so the float
// accumulation sequence matches the sequential loop exactly.
func (a *AdaBoost) PredictProba(x tabular.View) ([][]float64, Cost) {
	m := x.Rows()
	if len(a.stumps) == 0 {
		return uniformProba(m, max(a.classes, 2)), Cost{}
	}
	var cost Cost
	out := make([][]float64, m) //greenlint:allow rowmajor proba output rows, class-wide not feature-wide
	for i := range out {
		out[i] = make([]float64, a.classes)
	}
	preds := make([][]int, len(a.stumps))
	stumpCosts := make([]Cost, len(a.stumps))
	runIndexed(len(a.stumps), func(_, s int) {
		preds[s], stumpCosts[s] = Predict(a.stumps[s], x)
	})
	for s := range a.stumps {
		cost.Add(stumpCosts[s])
		for i, yhat := range preds[s] {
			out[i][yhat] += a.alphas[s]
		}
	}
	for i := range out {
		normalizeInPlace(out[i])
	}
	cost.Generic += float64(m * a.classes)
	return out, cost
}

// Clone implements Classifier.
func (a *AdaBoost) Clone() Classifier { return NewAdaBoost(a.Params) }

// Name implements Classifier.
func (a *AdaBoost) Name() string {
	p := a.Params.normalized()
	return fmt.Sprintf("adaboost(rounds=%d,depth=%d)", p.Rounds, p.Tree.MaxDepth)
}

// ParallelFrac implements Classifier: boosting rounds are sequential.
func (a *AdaBoost) ParallelFrac() float64 { return 0.2 }

// Rounds reports the number of fitted weak learners.
func (a *AdaBoost) Rounds() int { return len(a.stumps) }
