package ml

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/tabular"
)

// LinearParams configure SGD-trained linear models.
type LinearParams struct {
	// Epochs is the number of passes over the data.
	Epochs int
	// LearningRate is the initial SGD step size (decayed 1/sqrt(t)).
	LearningRate float64
	// L2 is the ridge regularization strength.
	L2 float64
}

func (p LinearParams) normalized() LinearParams {
	if p.Epochs < 1 {
		p.Epochs = 20
	}
	if p.LearningRate <= 0 {
		p.LearningRate = 0.1
	}
	if p.L2 < 0 {
		p.L2 = 0
	}
	return p
}

// linearCore holds a fitted linear model: one weight row plus bias per
// class.
type linearCore struct {
	weights [][]float64
	bias    []float64
}

func (lc *linearCore) logits(row []float64, out []float64) {
	for k := range lc.weights {
		var dot float64
		w := lc.weights[k]
		for j, v := range row {
			dot += w[j] * v
		}
		out[k] = dot + lc.bias[k]
	}
}

// LogisticRegression is a multinomial logistic-regression classifier
// trained with SGD.
type LogisticRegression struct {
	Params  LinearParams
	core    linearCore
	classes int
}

// NewLogisticRegression constructs a logistic-regression classifier.
func NewLogisticRegression(p LinearParams) *LogisticRegression {
	return &LogisticRegression{Params: p}
}

// Fit implements Classifier.
func (lr *LogisticRegression) Fit(ds tabular.View, rng *rand.Rand) (Cost, error) {
	p := lr.Params.normalized()
	lr.Params = p
	n, d, k := ds.Rows(), ds.Features(), ds.Classes()
	lr.classes = k
	lr.core = newLinearCore(k, d)

	labels := ds.LabelsInto(nil)
	proba := make([]float64, k)
	rowBuf := make([]float64, d)
	step := 0
	for epoch := 0; epoch < p.Epochs; epoch++ {
		for _, i := range rng.Perm(n) {
			step++
			row := ds.Row(i, rowBuf)
			rowBuf = row
			lr.core.logits(row, proba)
			softmaxInPlace(proba)
			eta := p.LearningRate / (1 + 0.01*float64(step))
			for c := 0; c < k; c++ {
				grad := proba[c]
				if labels[i] == c {
					grad -= 1
				}
				w := lr.core.weights[c]
				for j, v := range row {
					w[j] -= eta * (grad*v + p.L2*w[j])
				}
				lr.core.bias[c] -= eta * grad
			}
		}
	}
	return Cost{Generic: float64(p.Epochs) * float64(n) * float64(d) * float64(k) * 4}, nil
}

// PredictProba implements Classifier.
func (lr *LogisticRegression) PredictProba(x tabular.View) ([][]float64, Cost) {
	m := x.Rows()
	if len(lr.core.weights) == 0 {
		return uniformProba(m, max(lr.classes, 2)), Cost{}
	}
	out := make([][]float64, m) //greenlint:allow rowmajor proba output rows, class-wide not feature-wide
	d := x.Features()
	var rowBuf []float64
	for i := 0; i < m; i++ {
		row := x.Row(i, rowBuf)
		rowBuf = row
		proba := make([]float64, lr.classes)
		lr.core.logits(row, proba)
		softmaxInPlace(proba)
		out[i] = proba
	}
	return out, Cost{Generic: float64(m) * float64(d) * float64(lr.classes) * 2}
}

// Clone implements Classifier.
func (lr *LogisticRegression) Clone() Classifier { return NewLogisticRegression(lr.Params) }

// Name implements Classifier.
func (lr *LogisticRegression) Name() string {
	p := lr.Params.normalized()
	return fmt.Sprintf("logreg(epochs=%d,l2=%.2g)", p.Epochs, p.L2)
}

// ParallelFrac implements Classifier: SGD is inherently sequential.
func (lr *LogisticRegression) ParallelFrac() float64 { return 0.1 }

// LinearSVM is a one-vs-rest linear support-vector classifier trained with
// hinge-loss SGD. Probabilities are a softmax over margins.
type LinearSVM struct {
	Params  LinearParams
	core    linearCore
	classes int
}

// NewLinearSVM constructs a linear SVM classifier.
func NewLinearSVM(p LinearParams) *LinearSVM {
	return &LinearSVM{Params: p}
}

// Fit implements Classifier.
func (s *LinearSVM) Fit(ds tabular.View, rng *rand.Rand) (Cost, error) {
	p := s.Params.normalized()
	s.Params = p
	n, d, k := ds.Rows(), ds.Features(), ds.Classes()
	s.classes = k
	s.core = newLinearCore(k, d)

	labels := ds.LabelsInto(nil)
	rowBuf := make([]float64, d)
	step := 0
	for epoch := 0; epoch < p.Epochs; epoch++ {
		for _, i := range rng.Perm(n) {
			step++
			row := ds.Row(i, rowBuf)
			rowBuf = row
			eta := p.LearningRate / (1 + 0.01*float64(step))
			for c := 0; c < k; c++ {
				target := -1.0
				if labels[i] == c {
					target = 1.0
				}
				w := s.core.weights[c]
				var margin float64
				for j, v := range row {
					margin += w[j] * v
				}
				margin = target * (margin + s.core.bias[c])
				if margin < 1 {
					for j, v := range row {
						w[j] -= eta * (-target*v + p.L2*w[j])
					}
					s.core.bias[c] += eta * target
				} else if p.L2 > 0 {
					for j := range w {
						w[j] -= eta * p.L2 * w[j]
					}
				}
			}
		}
	}
	return Cost{Generic: float64(p.Epochs) * float64(n) * float64(d) * float64(k) * 3}, nil
}

// PredictProba implements Classifier.
func (s *LinearSVM) PredictProba(x tabular.View) ([][]float64, Cost) {
	m := x.Rows()
	if len(s.core.weights) == 0 {
		return uniformProba(m, max(s.classes, 2)), Cost{}
	}
	out := make([][]float64, m) //greenlint:allow rowmajor proba output rows, class-wide not feature-wide
	d := x.Features()
	var rowBuf []float64
	for i := 0; i < m; i++ {
		row := x.Row(i, rowBuf)
		rowBuf = row
		margins := make([]float64, s.classes)
		s.core.logits(row, margins)
		softmaxInPlace(margins)
		out[i] = margins
	}
	return out, Cost{Generic: float64(m) * float64(d) * float64(s.classes) * 2}
}

// Clone implements Classifier.
func (s *LinearSVM) Clone() Classifier { return NewLinearSVM(s.Params) }

// Name implements Classifier.
func (s *LinearSVM) Name() string {
	p := s.Params.normalized()
	return fmt.Sprintf("svm(epochs=%d,l2=%.2g)", p.Epochs, p.L2)
}

// ParallelFrac implements Classifier.
func (s *LinearSVM) ParallelFrac() float64 { return 0.1 }

func newLinearCore(classes, features int) linearCore {
	core := linearCore{
		weights: make([][]float64, classes), //greenlint:allow rowmajor class-by-feature weight matrix - model parameters
		bias:    make([]float64, classes),
	}
	for k := range core.weights {
		core.weights[k] = make([]float64, features)
	}
	return core
}
