package ml

import (
	"math/rand/v2"
	"testing"
)

// This file benchmarks the kernel families that previously had no
// recorded baseline — kNN, MLP and the SGD linear models — plus the
// within-fit parallel paths. Together with tree_bench_test.go they are
// the inputs of scripts/bench.sh, which folds min-of-N runs into
// BENCH_4.json and gates kernel PRs on regressions.

// BenchmarkKNNFit measures kNN training (column memorization) — cheap by
// design, recorded so a regression into copying or row-major gathering
// shows up.
func BenchmarkKNNFit(b *testing.B) {
	ds := benchDataset(600, 16, 3, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := NewKNN(KNNParams{K: 5})
		if _, err := k.Fit(ds.View(), rand.New(rand.NewPCG(9, 0x11))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKNNPredict measures the lazy learner's real cost profile: the
// blocked query-against-all-rows distance scan plus neighbour selection.
func BenchmarkKNNPredict(b *testing.B) {
	train := benchDataset(600, 16, 3, 2)
	test := benchDataset(100, 16, 3, 5)
	k := NewKNN(KNNParams{K: 5})
	if _, err := k.Fit(train.View(), rand.New(rand.NewPCG(9, 0x11))); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.PredictProba(test.View())
	}
}

// BenchmarkMLPFit measures the dense matrix workload: minibatch SGD
// through one hidden layer.
func BenchmarkMLPFit(b *testing.B) {
	ds := benchDataset(600, 16, 3, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMLP(MLPParams{Hidden: []int{32}, Epochs: 5})
		if _, err := m.Fit(ds.View(), rand.New(rand.NewPCG(9, 0x11))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinearFit measures the SGD logistic-regression kernel, the
// cheapest model family in the zoo and the most sensitive to per-row
// gather overhead.
func BenchmarkLinearFit(b *testing.B) {
	ds := benchDataset(600, 16, 3, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lr := NewLogisticRegression(LinearParams{Epochs: 10})
		if _, err := lr.Fit(ds.View(), rand.New(rand.NewPCG(9, 0x11))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaBoostFit measures the boosting-round workload: weighted
// resampling, stump fits, and the full-data prediction scan per round.
func BenchmarkAdaBoostFit(b *testing.B) {
	ds := benchDataset(600, 16, 3, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewAdaBoost(AdaBoostParams{Rounds: 10})
		if _, err := a.Fit(ds.View(), rand.New(rand.NewPCG(9, 0x11))); err != nil {
			b.Fatal(err)
		}
	}
}
