package ml

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/tabular"
)

// QDA is quadratic discriminant analysis with diagonal-regularized
// per-class covariance: each class gets a full Gaussian (mean + covariance)
// and prediction follows the quadratic log-likelihood. It sits between
// GaussianNB (diagonal covariance) and the tree ensembles in both capacity
// and cost, and its fit cost is cubic in the feature count — a genuinely
// different cost profile for the search spaces.
type QDA struct {
	// Reg is the ridge added to covariance diagonals (default 1e-3).
	Reg float64

	classes  int
	logPrior []float64
	means    [][]float64
	invCovs  [][][]float64 // per class, inverse covariance
	logDets  []float64
	dim      int
}

// NewQDA constructs a QDA classifier.
func NewQDA(reg float64) *QDA { return &QDA{Reg: reg} }

// Fit implements Classifier. Class moments are accumulated column-pair by
// column-pair over the view's columns; each (class, a, b) covariance cell
// still sums its members in ascending row order, so the fitted Gaussians
// are bit-identical to the historical row-major pass.
func (q *QDA) Fit(ds tabular.View, _ *rand.Rand) (Cost, error) {
	reg := q.Reg
	if reg <= 0 {
		reg = 1e-3
	}
	n, d, k := ds.Rows(), ds.Features(), ds.Classes()
	if d > 64 {
		return Cost{}, fmt.Errorf("ml: qda limited to 64 features, got %d (use feature selection first)", d)
	}
	q.classes, q.dim = k, d
	q.logPrior = make([]float64, k)
	q.means = make([][]float64, k) //greenlint:allow rowmajor per-class mean vectors - model parameters
	q.invCovs = make([][][]float64, k)
	q.logDets = make([]float64, k)

	labels := ds.LabelsInto(nil)
	byClass := make([][]int, k)
	for i, y := range labels {
		byClass[y] = append(byClass[y], i)
	}
	// Resolve working columns once: frame aliases for identity views
	// (zero-copy), one arena gather for subset views.
	cols := make([][]float64, d) //greenlint:allow rowmajor columnar per-feature column cache
	var arena []float64
	if !ds.Contiguous() {
		arena = make([]float64, n*d)
	}
	for j := 0; j < d; j++ {
		var dst []float64
		if arena != nil {
			dst = arena[j*n : (j+1)*n : (j+1)*n]
		}
		cols[j] = ds.ColInto(j, dst)
	}
	var cost Cost
	for c := 0; c < k; c++ {
		members := byClass[c]
		q.logPrior[c] = math.Log((float64(len(members)) + 1) / (float64(n) + float64(k)))
		mean := make([]float64, d)
		for j := 0; j < d; j++ {
			col := cols[j]
			for _, i := range members {
				mean[j] += col[i]
			}
		}
		if len(members) > 0 {
			for j := range mean {
				mean[j] /= float64(len(members))
			}
		}
		q.means[c] = mean

		cov := make([][]float64, d) //greenlint:allow rowmajor d x d covariance - model parameters
		for a := range cov {
			cov[a] = make([]float64, d)
		}
		for a := 0; a < d; a++ {
			colA, meanA := cols[a], mean[a]
			for b := a; b < d; b++ {
				colB, meanB := cols[b], mean[b]
				var sum float64
				for _, i := range members {
					sum += (colA[i] - meanA) * (colB[i] - meanB)
				}
				cov[a][b] = sum
			}
		}
		denom := math.Max(float64(len(members)-1), 1)
		for a := 0; a < d; a++ {
			for b := a; b < d; b++ {
				cov[a][b] /= denom
				cov[b][a] = cov[a][b]
			}
			cov[a][a] += reg
		}
		inv, logDet, err := invertSPD(cov)
		if err != nil {
			return cost, fmt.Errorf("ml: qda class %d: %w", c, err)
		}
		q.invCovs[c] = inv
		q.logDets[c] = logDet
		cost.Matrix += float64(len(members))*float64(d)*float64(d) + float64(d*d*d)
	}
	return cost, nil
}

// invertSPD inverts a symmetric positive-definite matrix via Cholesky
// decomposition, returning the inverse and the log-determinant.
func invertSPD(m [][]float64) ([][]float64, float64, error) {
	d := len(m)
	// Cholesky: m = L L^T.
	l := make([][]float64, d) //greenlint:allow rowmajor d x d Cholesky factor scratch
	for i := range l {
		l[i] = make([]float64, d)
	}
	logDet := 0.0
	for i := 0; i < d; i++ {
		for j := 0; j <= i; j++ {
			sum := m[i][j]
			for t := 0; t < j; t++ {
				sum -= l[i][t] * l[j][t]
			}
			if i == j {
				if sum <= 0 {
					return nil, 0, fmt.Errorf("matrix not positive definite at %d", i)
				}
				l[i][i] = math.Sqrt(sum)
				logDet += 2 * math.Log(l[i][i])
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	// Invert L (lower triangular), then inv = L^-T L^-1.
	linv := make([][]float64, d) //greenlint:allow rowmajor d x d triangular-inverse scratch
	for i := range linv {
		linv[i] = make([]float64, d)
		linv[i][i] = 1 / l[i][i]
		for j := 0; j < i; j++ {
			var sum float64
			for t := j; t < i; t++ {
				sum -= l[i][t] * linv[t][j]
			}
			linv[i][j] = sum / l[i][i]
		}
	}
	inv := make([][]float64, d) //greenlint:allow rowmajor d x d inverse-covariance - model parameters
	for i := range inv {
		inv[i] = make([]float64, d)
		for j := 0; j <= i; j++ {
			var sum float64
			for t := i; t < d; t++ {
				sum += linv[t][i] * linv[t][j]
			}
			inv[i][j] = sum
			inv[j][i] = sum
		}
	}
	return inv, logDet, nil
}

// PredictProba implements Classifier.
func (q *QDA) PredictProba(x tabular.View) ([][]float64, Cost) {
	m := x.Rows()
	if q.means == nil {
		return uniformProba(m, max(q.classes, 2)), Cost{}
	}
	d := q.dim
	out := make([][]float64, m) //greenlint:allow rowmajor proba output rows, class-wide not feature-wide
	diff := make([]float64, d)
	var rowBuf []float64
	for i := 0; i < m; i++ {
		row := x.Row(i, rowBuf)
		rowBuf = row
		logp := make([]float64, q.classes)
		for c := 0; c < q.classes; c++ {
			for j := 0; j < d; j++ {
				v := 0.0
				if j < len(row) {
					v = row[j]
				}
				diff[j] = v - q.means[c][j]
			}
			// Mahalanobis distance diff^T invCov diff.
			var quad float64
			inv := q.invCovs[c]
			for a := 0; a < d; a++ {
				var sum float64
				for b := 0; b < d; b++ {
					sum += inv[a][b] * diff[b]
				}
				quad += diff[a] * sum
			}
			logp[c] = q.logPrior[c] - 0.5*(quad+q.logDets[c])
		}
		softmaxInPlace(logp)
		out[i] = logp
	}
	return out, Cost{Matrix: float64(m) * float64(q.classes) * float64(d*d) * 2}
}

// Clone implements Classifier.
func (q *QDA) Clone() Classifier { return NewQDA(q.Reg) }

// Name implements Classifier.
func (q *QDA) Name() string { return fmt.Sprintf("qda(reg=%.2g)", math.Max(q.Reg, 1e-3)) }

// ParallelFrac implements Classifier.
func (q *QDA) ParallelFrac() float64 { return 0.5 }
