package ml

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"

	"repro/internal/tabular"
)

// HistBoostingParams configure histogram-based gradient boosting.
type HistBoostingParams struct {
	// Rounds is the number of boosting iterations (default 50).
	Rounds int
	// LearningRate shrinks each round's contribution (default 0.1).
	LearningRate float64
	// MaxDepth limits the per-round tree depth (default 3).
	MaxDepth int
	// Bins is the histogram resolution per feature (default 32, capped
	// at 256 — bin indices are uint8).
	Bins int
}

func (p HistBoostingParams) normalized() HistBoostingParams {
	if p.Rounds < 1 {
		p.Rounds = 50
	}
	if p.LearningRate <= 0 {
		p.LearningRate = 0.1
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 3
	}
	if p.Bins < 2 {
		p.Bins = 32
	}
	if p.Bins > 256 {
		p.Bins = 256
	}
	return p
}

// HistBoosting is a histogram-binned gradient-boosted tree classifier in
// the LightGBM/HistGradientBoosting family: features are quantized into a
// fixed number of bins once, and split search scans bin histograms instead
// of sorting — the trick that makes modern boosting libraries an order of
// magnitude cheaper to train than exact-split boosting. It is the closest
// stand-in for the LightGBM/XGBoost models real AutoGluon and FLAML lean
// on.
//
// The fit kernel is written for the columnar Frame: bins are column-major
// (one contiguous []uint8 per feature), the per-node histogram scan
// gathers the node's gradients once and then accumulates gradient and
// hessian-weight histograms in a fused, 8-wide unrolled pass per column
// with uint8-indexed fixed-size histogram arrays (no bounds checks on the
// accumulate), and the per-column scans of one node run in parallel under
// the package Parallelism knob with per-feature results reduced in
// feature order — bit-identical to the sequential scan at any level.
type HistBoosting struct {
	Params  HistBoostingParams
	classes int
	// thresholds[j] holds the bin upper edges of feature j.
	thresholds [][]float64
	// nodes is the arena of every fitted tree's nodes; roots[r*classes+c]
	// indexes the class-c tree of round r. An arena keeps the ~rounds ×
	// classes × 2^depth nodes in a handful of allocations and walks
	// prediction through contiguous memory.
	nodes []histNode
	roots []int32
}

// histNode is one arena node of a regression tree over bin indices.
// Leaves have feature == -1.
type histNode struct {
	feature     int32
	bin         int32 // split: go left if binIdx <= bin
	left, right int32
	value       float64
}

// histWorker is one worker's private histogram scratch. The histogram
// arrays are fixed [256]float64 so the accumulation loop indexes them
// with a uint8 bin — provably in bounds, so the compiler drops the
// bounds checks; only the leading Bins entries are ever cleared or read.
type histWorker struct {
	histSum  [256]float64 // per-bin gradient (residual) sums
	histCnt  [256]int32   // per-bin hessian weights (counts, for L2 loss)
	histSum2 [256]float64 // second feature of a paired scan
	histCnt2 [256]int32
	colBuf   []float64 // per-worker column gather for subset views
	sortBuf  []float64 // per-worker quantile sort scratch
	posBuf   []int     // per-worker quantile position scratch
}

// histScratch is the pooled working memory of one HistBoosting.Fit.
type histScratch struct {
	n, d int
	// binned is the column-major quantized matrix: binned[j*n+i] is the
	// bin of feature j at view row i.
	binned []uint8
	// idx is the shared node index buffer (each node owns a contiguous
	// range, split in place); spill/spillT are the partition scratch.
	idx, spill []int32
	// tgt[lo:hi] holds the node's gradients in node order — gathered
	// once at the root and partitioned alongside idx — so the d
	// per-column scans read them sequentially instead of re-gathering.
	tgt      []float64
	spillT   []float64
	residual []float64
	logits   []float64
	labBuf   []int
	// featGain/featBin are the per-feature split-search result slots the
	// parallel column scans write and the caller reduces in feature
	// order.
	featGain []float64
	featBin  []int32
	workers  []*histWorker
}

var histScratchPool = sync.Pool{New: func() any { return new(histScratch) }}

func getHistScratch(n, d, k int) *histScratch {
	s := histScratchPool.Get().(*histScratch)
	s.n, s.d = n, d
	s.binned = sizedU8(s.binned, n*d)
	s.idx = sizedI32(s.idx, n)
	s.spill = sizedI32(s.spill, n)
	s.tgt = sizedF64(s.tgt, n)
	s.spillT = sizedF64(s.spillT, n)
	s.residual = sizedF64(s.residual, n)
	s.logits = sizedF64(s.logits, n*k)
	clear(s.logits) // recycled scratch carries the previous fit's logits
	s.labBuf = sizedInt(s.labBuf, n)
	s.featGain = sizedF64(s.featGain, d)
	s.featBin = sizedI32(s.featBin, d)
	workers := Parallelism()
	if workers > d {
		workers = d
	}
	if workers < 1 {
		workers = 1
	}
	for len(s.workers) < workers {
		s.workers = append(s.workers, new(histWorker))
	}
	for _, w := range s.workers {
		w.colBuf = sizedF64(w.colBuf, n)
		w.sortBuf = sizedF64(w.sortBuf, n)
	}
	return s
}

func putHistScratch(s *histScratch) { histScratchPool.Put(s) }

func sizedU8(buf []uint8, n int) []uint8 {
	if cap(buf) < n {
		return make([]uint8, n)
	}
	return buf[:n]
}

// histParallelCutoff gates per-column parallelism by node work (rows ×
// features): below it, goroutine handoff costs more than the scan. The
// cutoff only decides who executes the per-feature scans — their
// results land in per-feature slots either way — so it cannot affect
// outputs.
const histParallelCutoff = 1 << 14

// NewHistBoosting constructs a histogram gradient-boosting classifier.
func NewHistBoosting(p HistBoostingParams) *HistBoosting { return &HistBoosting{Params: p} }

// Fit implements Classifier. The rng is unused: histogram boosting is
// deterministic given the data.
func (h *HistBoosting) Fit(ds tabular.View, _ *rand.Rand) (Cost, error) {
	p := h.Params.normalized()
	h.Params = p
	n, d, k := ds.Rows(), ds.Features(), ds.Classes()
	if n == 0 || d == 0 {
		return Cost{}, fmt.Errorf("ml: hist boosting on empty data")
	}
	h.classes = k

	var cost Cost
	s := getHistScratch(n, d, k)
	defer putHistScratch(s)

	// Quantize features once: thresholds at uniform quantiles. The
	// binned matrix is column-major (one []uint8 per feature) so the
	// per-node histogram scans below walk memory sequentially. Columns
	// quantize independently — each worker sorts into its own scratch
	// and writes only its feature's threshold slot and bin column.
	h.thresholds = make([][]float64, d) //greenlint:allow rowmajor per-feature bin thresholds, bin-wide not row-wide
	runIndexed(d, func(w, j int) {
		ws := s.workers[w]
		col := ds.ColInto(j, ws.colBuf)
		sorted := ws.sortBuf[:n]
		hasNaN := false
		for i, v := range col {
			sorted[i] = v
			if v != v {
				hasNaN = true
			}
		}
		pos := ws.posBuf[:0]
		for b := 1; b < p.Bins; b++ {
			q := b * n / p.Bins
			if q >= n {
				q = n - 1
			}
			if len(pos) == 0 || pos[len(pos)-1] != q {
				pos = append(pos, q)
			}
		}
		ws.posBuf = pos
		if hasNaN {
			// NaN ordering is sort-algorithm-specific; keep the exact
			// legacy arrangement rather than select's.
			sort.Float64s(sorted)
		} else {
			// Order statistics do not depend on the sorting algorithm,
			// so selecting just the quantile positions yields the exact
			// edges a full sort would — at a fraction of the compares.
			multiSelect(sorted, 0, n, pos)
		}
		edges := make([]float64, 0, p.Bins-1)
		for b := 1; b < p.Bins; b++ {
			q := b * n / p.Bins
			if q >= n {
				q = n - 1
			}
			edges = append(edges, sorted[q])
		}
		h.thresholds[j] = edges
		bcol := s.binned[j*n : (j+1)*n : (j+1)*n]
		for i, v := range col {
			bcol[i] = binIndex(edges, v)
		}
	})
	cost.Generic += float64(n*d) * (math.Log2(float64(n)+2) + 2)

	logits := s.logits[:n*k]
	residual := s.residual
	labels := ds.LabelsInto(s.labBuf)

	h.nodes = h.nodes[:0]
	h.roots = h.roots[:0]
	for r := 0; r < p.Rounds; r++ {
		for c := 0; c < k; c++ {
			// Fused gradient pass: residual[i] = 1{y=c} − softmax_c of
			// row i's logits, computed directly (only class c's
			// probability is needed) with the exact float sequence of
			// the historical copy-softmax-index path. Rows are
			// independent — disjoint residual slots — so blocks run in
			// parallel.
			runRowBlocks(n, func(_, _, lo, hi int) {
				for i := lo; i < hi; i++ {
					lrow := logits[i*k : i*k+k : i*k+k]
					maxv := math.Inf(-1)
					for _, x := range lrow {
						if x > maxv {
							maxv = x
						}
					}
					var sum, ec float64
					for j, x := range lrow {
						e := math.Exp(x - maxv)
						if j == c {
							ec = e
						}
						sum += e
					}
					pc := ec / sum
					if sum <= 0 {
						pc = 1 / float64(k)
					}
					indicator := 0.0
					if labels[i] == c {
						indicator = 1.0
					}
					residual[i] = indicator - pc
				}
			})
			for i := range s.idx {
				s.idx[i] = int32(i)
			}
			// Root gather: tree growth keeps (idx, tgt) paired from here
			// on, partitioning both together so children never regather.
			var rsum float64
			tgt := s.tgt[:n]
			for i, v := range residual {
				tgt[i] = v
				rsum += v
			}
			root := h.buildTree(s, logits, c, 0, int32(n), 0, rsum, &cost)
			h.roots = append(h.roots, root)
		}
		cost.Generic += float64(n * k * 4)
	}
	return cost, nil
}

// multiSelect partially orders a[lo:hi) so that every index in pos
// (ascending, within [lo, hi)) holds its exact order statistic,
// recursing only into segments that still contain a wanted position.
// For Bins quantiles this does O(n log Bins) compares instead of the
// full sort's O(n log n). Tiny segments are insertion-sorted outright.
//
//greenlint:hotpath quantile-binning inner kernel; operates in place on caller scratch
func multiSelect(a []float64, lo, hi int, pos []int) {
	for len(pos) > 0 {
		if hi-lo <= 12 {
			for i := lo + 1; i < hi; i++ {
				for k := i; k > lo && a[k] < a[k-1]; k-- {
					a[k], a[k-1] = a[k-1], a[k]
				}
			}
			return
		}
		// Median-of-3 pivot, then Hoare partition: both halves are
		// non-empty, so the range always shrinks.
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi-1] < a[lo] {
			a[hi-1], a[lo] = a[lo], a[hi-1]
		}
		if a[hi-1] < a[mid] {
			a[hi-1], a[mid] = a[mid], a[hi-1]
		}
		pivot := a[mid]
		i, j := lo-1, hi
		for {
			for {
				i++
				if !(a[i] < pivot) {
					break
				}
			}
			for {
				j--
				if !(pivot < a[j]) {
					break
				}
			}
			if i >= j {
				break
			}
			a[i], a[j] = a[j], a[i]
		}
		cut := j + 1
		split := len(pos)
		for k, p := range pos {
			if p >= cut {
				split = k
				break
			}
		}
		if split == len(pos) {
			hi = cut
			continue
		}
		if split == 0 {
			lo = cut
			continue
		}
		multiSelect(a, lo, cut, pos[:split])
		lo, pos = cut, pos[split:]
	}
}

// binIndex returns the number of edges strictly below v — the first
// index where v <= edges[i]. The loop is the branch-free lower-bound
// shape (the range shrinks by half unconditionally and the comparison
// only shifts the base), which compiles to a conditional move instead
// of an unpredictable branch per probe.
//
//greenlint:hotpath per-cell binning probe; runs rows-times-features times per fit
func binIndex(edges []float64, v float64) uint8 {
	base, n := 0, len(edges)
	for n > 1 {
		half := n / 2
		if edges[base+half-1] < v {
			base += half
		}
		n -= half
	}
	if n == 1 && edges[base] < v {
		base++
	}
	return uint8(base)
}

// buildTree grows a depth-limited regression tree over the index range
// s.idx[lo:hi) and returns the arena index of its root. The node's
// gradients are gathered once into node order (s.tgt), then every
// feature's fused gradient/hessian histogram build and split scan runs
// independently — in parallel for large nodes — writing its best
// (gain, bin) into per-feature slots that reduce in ascending feature
// order, reproducing the sequential scan's argmax and tie-breaks
// exactly. Leaves apply their contribution to the shared logits
// directly (one add per owned row, replacing the historical per-row
// tree walk with identical arithmetic).
func (h *HistBoosting) buildTree(s *histScratch, logits []float64, class int, lo, hi int32, depth int, sum float64, cost *Cost) int32 {
	idx := s.idx[lo:hi]
	m := len(idx)
	tgt := s.tgt[lo:hi]
	node := histNode{feature: -1, value: sum / math.Max(float64(m), 1)}
	p := h.Params
	if depth >= p.MaxDepth || m < 4 {
		h.applyLeaf(logits, idx, class, node.value)
		return h.pushHist(node)
	}

	d := s.d
	bins := p.Bins
	// Features scan in pairs (odd d leaves a single tail feature). The
	// pairing and the parallel/sequential choice only decide who runs
	// which scan — results land in per-feature slots either way.
	pairs := d / 2
	items := pairs + d%2
	if m*d >= histParallelCutoff {
		runIndexed(items, func(w, q int) { s.scanItem(w, q, pairs, bins, idx, tgt, sum) })
	} else {
		for q := 0; q < items; q++ {
			s.scanItem(0, q, pairs, bins, idx, tgt, sum)
		}
	}
	cost.Tree += float64(d) * (float64(m) + float64(bins))

	// Fixed reduction: ascending feature order with strict >, so the
	// chosen (feature, bin) matches the sequential lexicographic scan.
	bestGain := 1e-9
	bestFeature, bestBin := -1, int32(-1)
	for j := 0; j < d; j++ {
		if s.featBin[j] >= 0 && s.featGain[j] > bestGain {
			bestGain, bestFeature, bestBin = s.featGain[j], j, s.featBin[j]
		}
	}
	if bestFeature < 0 {
		h.applyLeaf(logits, idx, class, node.value)
		return h.pushHist(node)
	}
	// Stable partition of (idx, tgt) together: the children inherit
	// their gradients already in node order (no per-node regather), and
	// each child's sum accumulates in its partitioned order — exactly
	// the order the child's own gather would have used.
	bcol := s.binned[bestFeature*s.n : (bestFeature+1)*s.n]
	nl, nr := int32(0), 0
	var leftSum, rightSum float64
	for t, i := range idx {
		v := tgt[t]
		if int32(bcol[i]) <= bestBin {
			idx[nl] = i
			tgt[nl] = v
			leftSum += v
			nl++
		} else {
			s.spill[nr] = i
			s.spillT[nr] = v
			rightSum += v
			nr++
		}
	}
	copy(idx[nl:], s.spill[:nr])
	copy(tgt[nl:], s.spillT[:nr])
	cost.Tree += float64(m)
	node.feature = int32(bestFeature)
	node.bin = bestBin
	self := h.pushHist(node)
	left := h.buildTree(s, logits, class, lo, lo+nl, depth+1, leftSum, cost)
	right := h.buildTree(s, logits, class, lo+nl, hi, depth+1, rightSum, cost)
	h.nodes[self].left = left
	h.nodes[self].right = right
	return self
}

// scanItem dispatches one work item of a node's split search: a pair
// of features, or the odd tail feature.
//
//greenlint:hotpath split-search scan; all histogram state lives in preallocated worker scratch
func (s *histScratch) scanItem(w, q, pairs, bins int, idx []int32, tgt []float64, sum float64) {
	if j0 := 2 * q; q < pairs {
		s.scanPair(w, j0, bins, idx, tgt, sum)
	} else {
		s.scanOne(w, j0, bins, idx, tgt, sum)
	}
}

// scanOne is the single-feature histogram pass: fused gradient and
// hessian-weight accumulation, 8-wide unrolled, uint8 bins indexing the
// fixed arrays without bounds checks and full-capacity sub-slices
// lifting the checks off the unrolled loads. Per-bin addition order
// stays ascending node order, exactly as the rolled loop.
func (s *histScratch) scanOne(w, j, bins int, idx []int32, tgt []float64, sum float64) {
	m := len(idx)
	n := s.n
	ws := s.workers[w]
	hs, hc := &ws.histSum, &ws.histCnt
	for b := 0; b < bins; b++ {
		hs[b] = 0
		hc[b] = 0
	}
	bcol := s.binned[j*n : (j+1)*n : (j+1)*n]
	t := 0
	for ; t+8 <= m; t += 8 {
		ib := idx[t : t+8 : t+8]
		tb := tgt[t : t+8 : t+8]
		b0, b1, b2, b3 := bcol[ib[0]], bcol[ib[1]], bcol[ib[2]], bcol[ib[3]]
		b4, b5, b6, b7 := bcol[ib[4]], bcol[ib[5]], bcol[ib[6]], bcol[ib[7]]
		hs[b0] += tb[0]
		hc[b0]++
		hs[b1] += tb[1]
		hc[b1]++
		hs[b2] += tb[2]
		hc[b2]++
		hs[b3] += tb[3]
		hc[b3]++
		hs[b4] += tb[4]
		hc[b4]++
		hs[b5] += tb[5]
		hc[b5]++
		hs[b6] += tb[6]
		hc[b6]++
		hs[b7] += tb[7]
		hc[b7]++
	}
	for ; t < m; t++ {
		b := bcol[idx[t]]
		hs[b] += tgt[t]
		hc[b]++
	}
	s.featGain[j], s.featBin[j] = histGainScan(hs, hc, bins, sum, m)
}

// scanPair interleaves two features through one pass over the node: the
// per-row index and gradient loads are shared, and the two histograms
// give the FP adder independent dependency chains (one feature's
// per-bin += chain serializes on add latency; two features double the
// ILP). Each feature's per-bin addition order is still ascending node
// order — bit-identical to its own scanOne.
func (s *histScratch) scanPair(w, j0, bins int, idx []int32, tgt []float64, sum float64) {
	j1 := j0 + 1
	m := len(idx)
	n := s.n
	ws := s.workers[w]
	hs0, hc0 := &ws.histSum, &ws.histCnt
	hs1, hc1 := &ws.histSum2, &ws.histCnt2
	for b := 0; b < bins; b++ {
		hs0[b] = 0
		hc0[b] = 0
		hs1[b] = 0
		hc1[b] = 0
	}
	b0col := s.binned[j0*n : (j0+1)*n : (j0+1)*n]
	b1col := s.binned[j1*n : (j1+1)*n : (j1+1)*n]
	t := 0
	for ; t+4 <= m; t += 4 {
		ib := idx[t : t+4 : t+4]
		tb := tgt[t : t+4 : t+4]
		i0, i1, i2, i3 := ib[0], ib[1], ib[2], ib[3]
		a0, a1, a2, a3 := b0col[i0], b0col[i1], b0col[i2], b0col[i3]
		c0, c1, c2, c3 := b1col[i0], b1col[i1], b1col[i2], b1col[i3]
		hs0[a0] += tb[0]
		hc0[a0]++
		hs1[c0] += tb[0]
		hc1[c0]++
		hs0[a1] += tb[1]
		hc0[a1]++
		hs1[c1] += tb[1]
		hc1[c1]++
		hs0[a2] += tb[2]
		hc0[a2]++
		hs1[c2] += tb[2]
		hc1[c2]++
		hs0[a3] += tb[3]
		hc0[a3]++
		hs1[c3] += tb[3]
		hc1[c3]++
	}
	for ; t < m; t++ {
		i := idx[t]
		v := tgt[t]
		a, c := b0col[i], b1col[i]
		hs0[a] += v
		hc0[a]++
		hs1[c] += v
		hc1[c]++
	}
	s.featGain[j0], s.featBin[j0] = histGainScan(hs0, hc0, bins, sum, m)
	s.featGain[j1], s.featBin[j1] = histGainScan(hs1, hc1, bins, sum, m)
}

// histGainScan finds the best variance-reduction boundary of one
// feature's finished histograms: same 1e-9 sentinel and strict->
// tie-break as the historical global scan.
func histGainScan(hs *[256]float64, hc *[256]int32, bins int, sum float64, m int) (float64, int32) {
	bestGain := 1e-9
	bestBin := int32(-1)
	var leftSum, leftCnt float64
	totalCnt := float64(m)
	for b := 0; b < bins-1; b++ {
		leftSum += hs[b]
		leftCnt += float64(hc[b])
		rightCnt := totalCnt - leftCnt
		if leftCnt < 2 || rightCnt < 2 {
			continue
		}
		rightSum := sum - leftSum
		gain := leftSum*leftSum/leftCnt + rightSum*rightSum/rightCnt - sum*sum/totalCnt
		if gain > bestGain {
			bestGain, bestBin = gain, int32(b)
		}
	}
	return bestGain, bestBin
}

// applyLeaf adds the leaf's shrunk value to the owned rows' class
// logits. The historical kernel re-walked every training row through
// the finished tree; a row lands in exactly one leaf, so applying at
// leaf creation performs the same single addition per row.
//
//greenlint:hotpath per-row logit update at every leaf of every tree
func (h *HistBoosting) applyLeaf(logits []float64, idx []int32, class int, value float64) {
	lr := h.Params.LearningRate
	k := h.classes
	for _, i := range idx {
		logits[int(i)*k+class] += lr * value
	}
}

func (h *HistBoosting) pushHist(n histNode) int32 {
	h.nodes = append(h.nodes, n)
	return int32(len(h.nodes) - 1)
}

// walkRow walks a binned feature row to its leaf value.
//
//greenlint:hotpath per-row per-tree inference walk
func (h *HistBoosting) walkRow(root int32, row []uint8) float64 {
	nd := &h.nodes[root]
	for nd.feature >= 0 {
		if int32(row[nd.feature]) <= nd.bin {
			nd = &h.nodes[nd.left]
		} else {
			nd = &h.nodes[nd.right]
		}
	}
	return nd.value
}

// PredictProba implements Classifier. Rows are independent — each bins
// its features and walks every tree — so blocks run in parallel with
// per-block visit counts reduced in block order.
func (h *HistBoosting) PredictProba(x tabular.View) ([][]float64, Cost) {
	n := x.Rows()
	if len(h.roots) == 0 {
		return uniformProba(n, max(h.classes, 2)), Cost{}
	}
	d := len(h.thresholds)
	k := h.classes
	out := make([][]float64, n) //greenlint:allow rowmajor proba output rows, class-wide not feature-wide
	width := x.Features()
	blockVisits := make([]float64, rowBlockCount(n))
	rowBufs := make([][]uint8, Parallelism())
	runRowBlocks(n, func(w, b, lo, hi int) {
		if rowBufs[w] == nil {
			rowBufs[w] = make([]uint8, d)
		}
		row := rowBufs[w]
		var visits float64
		for i := lo; i < hi; i++ {
			for j := 0; j < d; j++ {
				v := 0.0
				if j < width {
					v = x.At(i, j)
				}
				row[j] = binIndex(h.thresholds[j], v)
			}
			logits := make([]float64, k)
			for ri, root := range h.roots {
				logits[ri%k] += h.Params.LearningRate * h.walkRow(root, row)
				visits += float64(h.Params.MaxDepth)
			}
			softmaxInPlace(logits)
			out[i] = logits
		}
		blockVisits[b] = visits
	})
	var visits float64
	for _, v := range blockVisits {
		visits += v
	}
	return out, Cost{Tree: 2 * visits, Generic: float64(n*d) * 4}
}

// Clone implements Classifier.
func (h *HistBoosting) Clone() Classifier { return NewHistBoosting(h.Params) }

// Name implements Classifier.
func (h *HistBoosting) Name() string {
	p := h.Params.normalized()
	return fmt.Sprintf("histgbt(rounds=%d,depth=%d,bins=%d)", p.Rounds, p.MaxDepth, p.Bins)
}

// ParallelFrac implements Classifier.
func (h *HistBoosting) ParallelFrac() float64 { return 0.5 }
