package ml

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/tabular"
)

// HistBoostingParams configure histogram-based gradient boosting.
type HistBoostingParams struct {
	// Rounds is the number of boosting iterations (default 50).
	Rounds int
	// LearningRate shrinks each round's contribution (default 0.1).
	LearningRate float64
	// MaxDepth limits the per-round tree depth (default 3).
	MaxDepth int
	// Bins is the histogram resolution per feature (default 32).
	Bins int
}

func (p HistBoostingParams) normalized() HistBoostingParams {
	if p.Rounds < 1 {
		p.Rounds = 50
	}
	if p.LearningRate <= 0 {
		p.LearningRate = 0.1
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 3
	}
	if p.Bins < 2 {
		p.Bins = 32
	}
	return p
}

// HistBoosting is a histogram-binned gradient-boosted tree classifier in
// the LightGBM/HistGradientBoosting family: features are quantized into a
// fixed number of bins once, and split search scans bin histograms instead
// of sorting — the trick that makes modern boosting libraries an order of
// magnitude cheaper to train than exact-split boosting. It is the closest
// stand-in for the LightGBM/XGBoost models real AutoGluon and FLAML lean
// on.
type HistBoosting struct {
	Params  HistBoostingParams
	classes int
	// thresholds[j] holds the bin upper edges of feature j.
	thresholds [][]float64
	// rounds[r][k] is the class-k tree of round r, over binned inputs.
	rounds [][]*histTree
}

// histTree is a regression tree over bin indices.
type histTree struct {
	feature     int // -1 = leaf
	bin         int // split: go left if binIdx <= bin
	left, right *histTree
	value       float64
}

// NewHistBoosting constructs a histogram gradient-boosting classifier.
func NewHistBoosting(p HistBoostingParams) *HistBoosting { return &HistBoosting{Params: p} }

// Fit implements Classifier.
func (h *HistBoosting) Fit(ds tabular.View, rng *rand.Rand) (Cost, error) {
	p := h.Params.normalized()
	h.Params = p
	n, d, k := ds.Rows(), ds.Features(), ds.Classes()
	if n == 0 || d == 0 {
		return Cost{}, fmt.Errorf("ml: hist boosting on empty data")
	}
	h.classes = k

	var cost Cost
	// Quantize features once: thresholds at uniform quantiles. The
	// binned matrix is column-major (one []uint8 per feature) so the
	// per-node histogram scans below walk memory sequentially.
	h.thresholds = make([][]float64, d) //greenlint:allow rowmajor per-feature bin thresholds, bin-wide not row-wide
	binned := make([][]uint8, d)
	binBacking := make([]uint8, n*d)
	var colBuf []float64
	if !ds.Contiguous() {
		colBuf = make([]float64, n)
	}
	sorted := make([]float64, n)
	for j := 0; j < d; j++ {
		col := ds.ColInto(j, colBuf)
		copy(sorted, col)
		sort.Float64s(sorted)
		edges := make([]float64, 0, p.Bins-1)
		for b := 1; b < p.Bins; b++ {
			pos := b * n / p.Bins
			if pos >= n {
				pos = n - 1
			}
			edges = append(edges, sorted[pos])
		}
		h.thresholds[j] = edges
		bcol := binBacking[j*n : (j+1)*n : (j+1)*n]
		for i, v := range col {
			bcol[i] = binIndex(edges, v)
		}
		binned[j] = bcol
	}
	cost.Generic += float64(n*d) * (math.Log2(float64(n)+2) + 2)

	logits := make([]float64, n*k)
	proba := make([]float64, k)
	residual := make([]float64, n)
	labels := ds.LabelsInto(nil)

	// idx is the shared node index buffer: each tree node owns a
	// contiguous range, split in place by stable partitioning (spill is
	// the partition scratch), so tree growth allocates only the nodes.
	idx := make([]int, n)
	spill := make([]int, n)

	h.rounds = h.rounds[:0]
	for r := 0; r < p.Rounds; r++ {
		roundTrees := make([]*histTree, k)
		for c := 0; c < k; c++ {
			for i := 0; i < n; i++ {
				copy(proba, logits[i*k:(i+1)*k])
				softmaxInPlace(proba)
				indicator := 0.0
				if labels[i] == c {
					indicator = 1.0
				}
				residual[i] = indicator - proba[c]
			}
			for i := range idx {
				idx[i] = i
			}
			tree := h.buildTree(binned, residual, idx, spill, 0, &cost)
			roundTrees[c] = tree
			for i := 0; i < n; i++ {
				logits[i*k+c] += p.LearningRate * h.predictTreeBinned(tree, binned, i)
			}
		}
		cost.Generic += float64(n * k * 4)
		h.rounds = append(h.rounds, roundTrees)
	}
	return cost, nil
}

func binIndex(edges []float64, v float64) uint8 {
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if v > edges[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint8(lo)
}

// buildTree grows a depth-limited regression tree by scanning bin
// histograms for the best variance reduction. The node's samples occupy
// the idx slice, which is stably partitioned in place (using spill as
// the partition scratch) before recursing — preserving the historical
// append-based child order without per-node index allocations.
func (h *HistBoosting) buildTree(binned [][]uint8, target []float64, idx, spill []int, depth int, cost *Cost) *histTree {
	m := len(idx)
	var sum float64
	for _, i := range idx {
		sum += target[i]
	}
	node := &histTree{feature: -1, value: sum / math.Max(float64(m), 1)}
	if depth >= h.Params.MaxDepth || m < 4 {
		return node
	}

	d := len(binned)
	bins := h.Params.Bins
	bestGain := 1e-9
	bestFeature, bestBin := -1, -1
	histSum := make([]float64, bins)
	histCnt := make([]float64, bins)
	for j := 0; j < d; j++ {
		for b := range histSum {
			histSum[b], histCnt[b] = 0, 0
		}
		bcol := binned[j]
		for _, i := range idx {
			b := bcol[i]
			histSum[b] += target[i]
			histCnt[b]++
		}
		var leftSum, leftCnt float64
		total := sum
		totalCnt := float64(m)
		for b := 0; b < bins-1; b++ {
			leftSum += histSum[b]
			leftCnt += histCnt[b]
			rightCnt := totalCnt - leftCnt
			if leftCnt < 2 || rightCnt < 2 {
				continue
			}
			rightSum := total - leftSum
			gain := leftSum*leftSum/leftCnt + rightSum*rightSum/rightCnt - total*total/totalCnt
			if gain > bestGain {
				bestGain, bestFeature, bestBin = gain, j, b
			}
		}
		cost.Tree += float64(m) + float64(bins)
	}
	if bestFeature < 0 {
		return node
	}
	bcol := binned[bestFeature]
	nl, nr := 0, 0
	for _, i := range idx {
		if int(bcol[i]) <= bestBin {
			idx[nl] = i
			nl++
		} else {
			spill[nr] = i
			nr++
		}
	}
	copy(idx[nl:], spill[:nr])
	cost.Tree += float64(m)
	node.feature = bestFeature
	node.bin = bestBin
	node.left = h.buildTree(binned, target, idx[:nl], spill, depth+1, cost)
	node.right = h.buildTree(binned, target, idx[nl:], spill, depth+1, cost)
	return node
}

// predictTreeBinned walks training sample i through the tree, reading
// its bins from the column-major binned matrix.
func (h *HistBoosting) predictTreeBinned(t *histTree, binned [][]uint8, i int) float64 {
	for t.feature >= 0 {
		if int(binned[t.feature][i]) <= t.bin {
			t = t.left
		} else {
			t = t.right
		}
	}
	return t.value
}

func (h *HistBoosting) predictTree(t *histTree, row []uint8) float64 {
	for t.feature >= 0 {
		if int(row[t.feature]) <= t.bin {
			t = t.left
		} else {
			t = t.right
		}
	}
	return t.value
}

// PredictProba implements Classifier.
func (h *HistBoosting) PredictProba(x tabular.View) ([][]float64, Cost) {
	n := x.Rows()
	if len(h.rounds) == 0 {
		return uniformProba(n, max(h.classes, 2)), Cost{}
	}
	d := len(h.thresholds)
	out := make([][]float64, n) //greenlint:allow rowmajor proba output rows, class-wide not feature-wide
	row := make([]uint8, d)
	width := x.Features()
	var visits float64
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			v := 0.0
			if j < width {
				v = x.At(i, j)
			}
			row[j] = binIndex(h.thresholds[j], v)
		}
		logits := make([]float64, h.classes)
		for _, roundTrees := range h.rounds {
			for c, tree := range roundTrees {
				logits[c] += h.Params.LearningRate * h.predictTree(tree, row)
				visits += float64(h.Params.MaxDepth)
			}
		}
		softmaxInPlace(logits)
		out[i] = logits
	}
	return out, Cost{Tree: 2 * visits, Generic: float64(n*d) * 4}
}

// Clone implements Classifier.
func (h *HistBoosting) Clone() Classifier { return NewHistBoosting(h.Params) }

// Name implements Classifier.
func (h *HistBoosting) Name() string {
	p := h.Params.normalized()
	return fmt.Sprintf("histgbt(rounds=%d,depth=%d,bins=%d)", p.Rounds, p.MaxDepth, p.Bins)
}

// ParallelFrac implements Classifier.
func (h *HistBoosting) ParallelFrac() float64 { return 0.5 }
