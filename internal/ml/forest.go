package ml

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/tabular"
)

// ForestParams configure random forests and extremely randomized trees.
type ForestParams struct {
	// Trees is the ensemble size.
	Trees int
	// Tree holds the per-tree parameters. A zero MaxFeatures defaults to
	// sqrt(d)/d, the random-forest convention.
	Tree TreeParams
	// Bootstrap resamples the training set per tree (random forests do,
	// extra-trees by convention do not).
	Bootstrap bool
	// ExtraTrees switches to random-threshold splitting.
	ExtraTrees bool
}

func (p ForestParams) normalized(features int) ForestParams {
	if p.Trees < 1 {
		p.Trees = 10
	}
	if p.Tree.MaxFeatures <= 0 {
		p.Tree.MaxFeatures = math.Sqrt(float64(features)) / float64(features)
	}
	p.Tree.RandomThreshold = p.ExtraTrees
	return p
}

// ForestClassifier is a random forest (or extra-trees) classifier.
type ForestClassifier struct {
	Params  ForestParams
	trees   []*TreeClassifier
	classes int
}

// NewForestClassifier constructs a forest with the given parameters.
func NewForestClassifier(p ForestParams) *ForestClassifier {
	return &ForestClassifier{Params: p}
}

// Fit implements Classifier.
func (f *ForestClassifier) Fit(ds tabular.View, rng *rand.Rand) (Cost, error) {
	p := f.Params.normalized(ds.Features())
	f.classes = ds.Classes()
	f.trees = make([]*TreeClassifier, 0, p.Trees)
	var cost Cost
	// One bootstrap index buffer is shared across trees (same RNG draws
	// as View.Bootstrap): the tree kernel gathers the view into its
	// column cache, so the buffer can be overwritten for the next tree.
	var bootIdx []int
	if p.Bootstrap {
		bootIdx = make([]int, ds.Rows())
	}
	for i := 0; i < p.Trees; i++ {
		tree := NewTreeClassifier(p.Tree)
		data := ds
		if p.Bootstrap {
			for j := range bootIdx {
				bootIdx[j] = ds.RowIndex(rng.IntN(ds.Rows()))
			}
			cost.Generic += float64(ds.Rows())
			data = tabular.NewView(ds.Frame(), bootIdx)
		}
		c, err := tree.Fit(data, rng)
		if err != nil {
			return cost, fmt.Errorf("ml: forest tree %d: %w", i, err)
		}
		cost.Add(c)
		f.trees = append(f.trees, tree)
	}
	return cost, nil
}

// PredictProba implements Classifier by averaging tree leaf distributions.
func (f *ForestClassifier) PredictProba(x tabular.View) ([][]float64, Cost) {
	if len(f.trees) == 0 {
		return uniformProba(x.Rows(), max(f.classes, 2)), Cost{}
	}
	var cost Cost
	out := make([][]float64, x.Rows()) //greenlint:allow rowmajor proba output rows, class-wide not feature-wide
	for i := range out {
		out[i] = make([]float64, f.classes)
	}
	for _, tree := range f.trees {
		proba, c := tree.PredictProba(x)
		cost.Add(c)
		for i, row := range proba {
			for j, p := range row {
				out[i][j] += p
			}
		}
	}
	inv := 1 / float64(len(f.trees))
	for i := range out {
		for j := range out[i] {
			out[i][j] *= inv
		}
	}
	cost.Generic += float64(x.Rows() * f.classes * len(f.trees))
	return out, cost
}

// Clone implements Classifier.
func (f *ForestClassifier) Clone() Classifier { return NewForestClassifier(f.Params) }

// Name implements Classifier.
func (f *ForestClassifier) Name() string {
	kind := "rf"
	if f.Params.ExtraTrees {
		kind = "xt"
	}
	trees := f.Params.Trees
	if trees < 1 {
		trees = 10
	}
	return fmt.Sprintf("%s(trees=%d,depth=%d)", kind, trees, f.Params.Tree.normalized().MaxDepth)
}

// ParallelFrac implements Classifier: tree fits are embarrassingly
// parallel.
func (f *ForestClassifier) ParallelFrac() float64 { return 0.9 }

// TreeCount reports the number of fitted trees.
func (f *ForestClassifier) TreeCount() int { return len(f.trees) }

// ForestRegressor is a random-forest regressor. It additionally exposes the
// across-tree prediction variance, which the Bayesian-optimization
// surrogate needs for expected improvement.
type ForestRegressor struct {
	Params ForestParams
	trees  []*TreeRegressor
}

// NewForestRegressor constructs a forest regressor.
func NewForestRegressor(p ForestParams) *ForestRegressor {
	return &ForestRegressor{Params: p}
}

// FitReg implements Regressor.
func (f *ForestRegressor) FitReg(x tabular.View, y []float64, rng *rand.Rand) (Cost, error) {
	n := x.Rows()
	if n == 0 {
		return Cost{}, fmt.Errorf("ml: forest regressor fit on empty data")
	}
	p := f.Params.normalized(x.Features())
	f.trees = make([]*TreeRegressor, 0, p.Trees)
	var cost Cost
	// Bootstrap resample buffers are shared across trees: the tree kernel
	// gathers what it needs into its column cache, so each tree can
	// overwrite them for the next draw.
	var bootIdx []int
	var by []float64
	if p.Bootstrap {
		bootIdx = make([]int, n)
		by = make([]float64, len(y))
	}
	for i := 0; i < p.Trees; i++ {
		tree := NewTreeRegressor(p.Tree)
		xs, ys := x, y
		if p.Bootstrap {
			for j := range bootIdx {
				r := rng.IntN(n)
				bootIdx[j] = x.RowIndex(r)
				by[j] = y[r]
			}
			cost.Generic += float64(n)
			xs, ys = tabular.NewView(x.Frame(), bootIdx), by
		}
		c, err := tree.FitReg(xs, ys, rng)
		if err != nil {
			return cost, fmt.Errorf("ml: forest regressor tree %d: %w", i, err)
		}
		cost.Add(c)
		f.trees = append(f.trees, tree)
	}
	return cost, nil
}

// PredictReg implements Regressor by averaging tree predictions.
func (f *ForestRegressor) PredictReg(x tabular.View) ([]float64, Cost) {
	mean, _, cost := f.PredictWithStd(x)
	return mean, cost
}

// PredictWithStd returns the per-row mean and standard deviation of the
// tree predictions.
func (f *ForestRegressor) PredictWithStd(x tabular.View) (mean, std []float64, cost Cost) {
	mean = make([]float64, x.Rows())
	std = make([]float64, x.Rows())
	if len(f.trees) == 0 {
		return mean, std, cost
	}
	sums := make([]float64, x.Rows())
	sumSqs := make([]float64, x.Rows())
	for _, tree := range f.trees {
		pred, c := tree.PredictReg(x)
		cost.Add(c)
		for i, v := range pred {
			sums[i] += v
			sumSqs[i] += v * v
		}
	}
	n := float64(len(f.trees))
	for i := range mean {
		m := sums[i] / n
		mean[i] = m
		variance := sumSqs[i]/n - m*m
		if variance > 0 {
			std[i] = math.Sqrt(variance)
		}
	}
	cost.Generic += float64(x.Rows()) * n
	return mean, std, cost
}
