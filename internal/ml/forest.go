package ml

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/tabular"
)

// ForestParams configure random forests and extremely randomized trees.
type ForestParams struct {
	// Trees is the ensemble size.
	Trees int
	// Tree holds the per-tree parameters. A zero MaxFeatures defaults to
	// sqrt(d)/d, the random-forest convention.
	Tree TreeParams
	// Bootstrap resamples the training set per tree (random forests do,
	// extra-trees by convention do not).
	Bootstrap bool
	// ExtraTrees switches to random-threshold splitting.
	ExtraTrees bool
}

func (p ForestParams) normalized(features int) ForestParams {
	if p.Trees < 1 {
		p.Trees = 10
	}
	if p.Tree.MaxFeatures <= 0 {
		p.Tree.MaxFeatures = math.Sqrt(float64(features)) / float64(features)
	}
	p.Tree.RandomThreshold = p.ExtraTrees
	return p
}

// ForestClassifier is a random forest (or extra-trees) classifier.
type ForestClassifier struct {
	Params  ForestParams
	trees   []*TreeClassifier
	classes int
}

// NewForestClassifier constructs a forest with the given parameters.
func NewForestClassifier(p ForestParams) *ForestClassifier {
	return &ForestClassifier{Params: p}
}

// Fit implements Classifier. Trees fit in parallel under the package
// Parallelism knob with pre-split RNG streams: the parent stream is
// consumed sequentially up front — one PCG seed pair per tree, in tree
// order — so each tree owns an independent deterministic stream
// regardless of which worker fits it when, and results reduce from
// tree-indexed slots in tree order. Outputs are therefore bit-identical
// at every parallelism level.
func (f *ForestClassifier) Fit(ds tabular.View, rng *rand.Rand) (Cost, error) {
	p := f.Params.normalized(ds.Features())
	f.classes = ds.Classes()
	n := ds.Rows()
	seeds := make([][2]uint64, p.Trees)
	for i := range seeds {
		seeds[i] = [2]uint64{rng.Uint64(), rng.Uint64()}
	}
	trees := make([]*TreeClassifier, p.Trees)
	costs := make([]Cost, p.Trees)
	errs := make([]error, p.Trees)
	// Per-worker bootstrap index buffers (same draws as View.Bootstrap):
	// the tree kernel gathers the view into its column cache, so a
	// worker can overwrite its buffer for its next tree.
	bootBufs := make([][]int, Parallelism())
	runIndexed(p.Trees, func(w, i int) {
		trng := rand.New(rand.NewPCG(seeds[i][0], seeds[i][1]))
		tree := NewTreeClassifier(p.Tree)
		data := ds
		if p.Bootstrap {
			bootIdx := bootBufs[w]
			if bootIdx == nil {
				bootIdx = make([]int, n)
				bootBufs[w] = bootIdx
			}
			for j := range bootIdx {
				bootIdx[j] = ds.RowIndex(trng.IntN(n))
			}
			costs[i].Generic += float64(n)
			data = tabular.NewView(ds.Frame(), bootIdx)
		}
		c, err := tree.Fit(data, trng)
		costs[i].Add(c)
		trees[i], errs[i] = tree, err
	})
	// Fixed reduction in tree order; the first error wins, counting only
	// the cost of the trees before it (the historical early-stop shape).
	var cost Cost
	f.trees = f.trees[:0]
	for i := 0; i < p.Trees; i++ {
		if errs[i] != nil {
			return cost, fmt.Errorf("ml: forest tree %d: %w", i, errs[i])
		}
		cost.Add(costs[i])
		f.trees = append(f.trees, trees[i])
	}
	return cost, nil
}

// PredictProba implements Classifier by averaging tree leaf
// distributions. Trees predict in parallel into tree-indexed slots;
// the average reduces on the caller in tree order, so the float
// accumulation sequence matches the sequential loop exactly.
func (f *ForestClassifier) PredictProba(x tabular.View) ([][]float64, Cost) {
	if len(f.trees) == 0 {
		return uniformProba(x.Rows(), max(f.classes, 2)), Cost{}
	}
	var cost Cost
	out := make([][]float64, x.Rows()) //greenlint:allow rowmajor proba output rows, class-wide not feature-wide
	for i := range out {
		out[i] = make([]float64, f.classes)
	}
	probas := make([][][]float64, len(f.trees))
	treeCosts := make([]Cost, len(f.trees))
	runIndexed(len(f.trees), func(_, t int) {
		probas[t], treeCosts[t] = f.trees[t].PredictProba(x)
	})
	for t := range f.trees {
		cost.Add(treeCosts[t])
		for i, row := range probas[t] {
			for j, p := range row {
				out[i][j] += p
			}
		}
	}
	inv := 1 / float64(len(f.trees))
	for i := range out {
		for j := range out[i] {
			out[i][j] *= inv
		}
	}
	cost.Generic += float64(x.Rows() * f.classes * len(f.trees))
	return out, cost
}

// Clone implements Classifier.
func (f *ForestClassifier) Clone() Classifier { return NewForestClassifier(f.Params) }

// Name implements Classifier.
func (f *ForestClassifier) Name() string {
	kind := "rf"
	if f.Params.ExtraTrees {
		kind = "xt"
	}
	trees := f.Params.Trees
	if trees < 1 {
		trees = 10
	}
	return fmt.Sprintf("%s(trees=%d,depth=%d)", kind, trees, f.Params.Tree.normalized().MaxDepth)
}

// ParallelFrac implements Classifier: tree fits are embarrassingly
// parallel.
func (f *ForestClassifier) ParallelFrac() float64 { return 0.9 }

// TreeCount reports the number of fitted trees.
func (f *ForestClassifier) TreeCount() int { return len(f.trees) }

// ForestRegressor is a random-forest regressor. It additionally exposes the
// across-tree prediction variance, which the Bayesian-optimization
// surrogate needs for expected improvement.
type ForestRegressor struct {
	Params ForestParams
	trees  []*TreeRegressor
}

// NewForestRegressor constructs a forest regressor.
func NewForestRegressor(p ForestParams) *ForestRegressor {
	return &ForestRegressor{Params: p}
}

// FitReg implements Regressor. Trees fit in parallel with pre-split
// RNG streams and tree-order reduction, exactly like
// ForestClassifier.Fit.
func (f *ForestRegressor) FitReg(x tabular.View, y []float64, rng *rand.Rand) (Cost, error) {
	n := x.Rows()
	if n == 0 {
		return Cost{}, fmt.Errorf("ml: forest regressor fit on empty data")
	}
	p := f.Params.normalized(x.Features())
	seeds := make([][2]uint64, p.Trees)
	for i := range seeds {
		seeds[i] = [2]uint64{rng.Uint64(), rng.Uint64()}
	}
	trees := make([]*TreeRegressor, p.Trees)
	costs := make([]Cost, p.Trees)
	errs := make([]error, p.Trees)
	// Per-worker bootstrap resample buffers: the tree kernel gathers
	// what it needs into its column cache, so a worker can overwrite
	// its buffers for its next tree.
	type bootBuf struct {
		idx []int
		y   []float64
	}
	bootBufs := make([]*bootBuf, Parallelism())
	runIndexed(p.Trees, func(w, i int) {
		trng := rand.New(rand.NewPCG(seeds[i][0], seeds[i][1]))
		tree := NewTreeRegressor(p.Tree)
		xs, ys := x, y
		if p.Bootstrap {
			bb := bootBufs[w]
			if bb == nil {
				bb = &bootBuf{idx: make([]int, n), y: make([]float64, len(y))}
				bootBufs[w] = bb
			}
			for j := range bb.idx {
				r := trng.IntN(n)
				bb.idx[j] = x.RowIndex(r)
				bb.y[j] = y[r]
			}
			costs[i].Generic += float64(n)
			xs, ys = tabular.NewView(x.Frame(), bb.idx), bb.y
		}
		c, err := tree.FitReg(xs, ys, trng)
		costs[i].Add(c)
		trees[i], errs[i] = tree, err
	})
	var cost Cost
	f.trees = f.trees[:0]
	for i := 0; i < p.Trees; i++ {
		if errs[i] != nil {
			return cost, fmt.Errorf("ml: forest regressor tree %d: %w", i, errs[i])
		}
		cost.Add(costs[i])
		f.trees = append(f.trees, trees[i])
	}
	return cost, nil
}

// PredictReg implements Regressor by averaging tree predictions.
func (f *ForestRegressor) PredictReg(x tabular.View) ([]float64, Cost) {
	mean, _, cost := f.PredictWithStd(x)
	return mean, cost
}

// PredictWithStd returns the per-row mean and standard deviation of the
// tree predictions.
func (f *ForestRegressor) PredictWithStd(x tabular.View) (mean, std []float64, cost Cost) {
	mean = make([]float64, x.Rows())
	std = make([]float64, x.Rows())
	if len(f.trees) == 0 {
		return mean, std, cost
	}
	sums := make([]float64, x.Rows())
	sumSqs := make([]float64, x.Rows())
	for _, tree := range f.trees {
		pred, c := tree.PredictReg(x)
		cost.Add(c)
		for i, v := range pred {
			sums[i] += v
			sumSqs[i] += v * v
		}
	}
	n := float64(len(f.trees))
	for i := range mean {
		m := sums[i] / n
		mean[i] = m
		variance := sumSqs[i]/n - m*m
		if variance > 0 {
			std[i] = math.Sqrt(variance)
		}
	}
	cost.Generic += float64(x.Rows()) * n
	return mean, std, cost
}
