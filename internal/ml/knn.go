package ml

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/tabular"
)

// KNNParams configure k-nearest-neighbour classification.
type KNNParams struct {
	// K is the neighbourhood size.
	K int
	// DistanceWeighted weights votes by inverse distance.
	DistanceWeighted bool
}

func (p KNNParams) normalized() KNNParams {
	if p.K < 1 {
		p.K = 5
	}
	return p
}

// KNN is a k-nearest-neighbour classifier. Fitting is (almost) free —
// it memorizes the training set — while prediction scans all stored rows,
// the cost profile that makes lazy learners expensive at inference.
type KNN struct {
	Params  KNNParams
	x       [][]float64
	y       []int
	classes int
}

// NewKNN constructs a kNN classifier.
func NewKNN(p KNNParams) *KNN {
	return &KNN{Params: p}
}

// Fit implements Classifier.
func (k *KNN) Fit(ds *tabular.Dataset, _ *rand.Rand) (Cost, error) {
	k.Params = k.Params.normalized()
	k.x = ds.X
	k.y = ds.Y
	k.classes = ds.Classes
	return Cost{Generic: float64(ds.Rows())}, nil
}

// PredictProba implements Classifier.
func (k *KNN) PredictProba(x [][]float64) ([][]float64, Cost) {
	if len(k.x) == 0 {
		return uniformProba(len(x), max(k.classes, 2)), Cost{}
	}
	n := len(k.x)
	d := len(k.x[0])
	kk := k.Params.K
	if kk > n {
		kk = n
	}
	out := make([][]float64, len(x))
	type cand struct {
		dist  float64
		label int
	}
	for i, row := range x {
		cands := make([]cand, n)
		for t, train := range k.x {
			var dist float64
			for j := range train {
				diff := train[j] - row[j]
				dist += diff * diff
			}
			cands[t] = cand{dist: dist, label: k.y[t]}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
		votes := make([]float64, k.classes)
		for _, c := range cands[:kk] {
			w := 1.0
			if k.Params.DistanceWeighted {
				w = 1 / (1e-9 + c.dist)
			}
			votes[c.label] += w
		}
		normalizeInPlace(votes)
		out[i] = votes
	}
	scanCost := float64(len(x)) * float64(n) * (3*float64(d) + 15)
	return out, Cost{Generic: scanCost}
}

// Clone implements Classifier.
func (k *KNN) Clone() Classifier { return NewKNN(k.Params) }

// Name implements Classifier.
func (k *KNN) Name() string {
	return fmt.Sprintf("knn(k=%d)", k.Params.normalized().K)
}

// ParallelFrac implements Classifier: queries parallelize trivially, but
// Fit (memorization) does not matter either way.
func (k *KNN) ParallelFrac() float64 { return 0.8 }

// StoredRows reports the memorized training-set size.
func (k *KNN) StoredRows() int { return len(k.x) }
