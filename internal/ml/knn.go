package ml

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/tabular"
)

// KNNParams configure k-nearest-neighbour classification.
type KNNParams struct {
	// K is the neighbourhood size.
	K int
	// DistanceWeighted weights votes by inverse distance.
	DistanceWeighted bool
}

func (p KNNParams) normalized() KNNParams {
	if p.K < 1 {
		p.K = 5
	}
	return p
}

// KNN is a k-nearest-neighbour classifier. Fitting is (almost) free —
// it memorizes the training set — while prediction scans all stored rows,
// the cost profile that makes lazy learners expensive at inference.
type KNN struct {
	Params KNNParams
	// cols memorizes the training set in column order: aliases of the
	// training frame's columns for identity views (zero-copy), gathered
	// copies for subset views.
	cols    [][]float64
	y       []int
	classes int
}

// NewKNN constructs a kNN classifier.
func NewKNN(p KNNParams) *KNN {
	return &KNN{Params: p}
}

// Fit implements Classifier.
func (k *KNN) Fit(ds tabular.View, _ *rand.Rand) (Cost, error) {
	k.Params = k.Params.normalized()
	d := ds.Features()
	k.cols = make([][]float64, d) //greenlint:allow rowmajor columnar training-column table, one slice per feature
	for j := 0; j < d; j++ {
		k.cols[j] = ds.ColInto(j, nil)
	}
	k.y = ds.LabelsInto(nil)
	k.classes = ds.Classes()
	return Cost{Generic: float64(ds.Rows())}, nil
}

// PredictProba implements Classifier. The distance scan runs
// feature-major over the memorized columns; each query/train pair still
// accumulates its squared distance in ascending feature order, so the
// distances — and the neighbour ranking derived from them — are
// bit-identical to the historical row-major scan.
func (k *KNN) PredictProba(x tabular.View) ([][]float64, Cost) {
	m := x.Rows()
	if len(k.cols) == 0 || len(k.y) == 0 {
		return uniformProba(m, max(k.classes, 2)), Cost{}
	}
	n := len(k.y)
	d := len(k.cols)
	kk := k.Params.K
	if kk > n {
		kk = n
	}
	out := make([][]float64, m) //greenlint:allow rowmajor proba output rows, class-wide not feature-wide
	type cand struct {
		dist  float64
		label int
	}
	for i := 0; i < m; i++ {
		cands := make([]cand, n)
		for t := range cands {
			cands[t].label = k.y[t]
		}
		for j := 0; j < d; j++ {
			q := x.At(i, j)
			for t, v := range k.cols[j] {
				diff := v - q
				cands[t].dist += diff * diff
			}
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
		votes := make([]float64, k.classes)
		for _, c := range cands[:kk] {
			w := 1.0
			if k.Params.DistanceWeighted {
				w = 1 / (1e-9 + c.dist)
			}
			votes[c.label] += w
		}
		normalizeInPlace(votes)
		out[i] = votes
	}
	scanCost := float64(m) * float64(n) * (3*float64(d) + 15)
	return out, Cost{Generic: scanCost}
}

// Clone implements Classifier.
func (k *KNN) Clone() Classifier { return NewKNN(k.Params) }

// Name implements Classifier.
func (k *KNN) Name() string {
	return fmt.Sprintf("knn(k=%d)", k.Params.normalized().K)
}

// ParallelFrac implements Classifier: queries parallelize trivially, but
// Fit (memorization) does not matter either way.
func (k *KNN) ParallelFrac() float64 { return 0.8 }

// StoredRows reports the memorized training-set size.
func (k *KNN) StoredRows() int { return len(k.y) }
