package ml

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/tabular"
)

// KNNParams configure k-nearest-neighbour classification.
type KNNParams struct {
	// K is the neighbourhood size.
	K int
	// DistanceWeighted weights votes by inverse distance.
	DistanceWeighted bool
}

func (p KNNParams) normalized() KNNParams {
	if p.K < 1 {
		p.K = 5
	}
	return p
}

// KNN is a k-nearest-neighbour classifier. Fitting is (almost) free —
// it memorizes the training set — while prediction scans all stored rows,
// the cost profile that makes lazy learners expensive at inference.
type KNN struct {
	Params KNNParams
	// cols memorizes the training set in column order: aliases of the
	// training frame's columns for identity views (zero-copy), gathered
	// copies for subset views.
	cols    [][]float64
	y       []int
	classes int
}

// NewKNN constructs a kNN classifier.
func NewKNN(p KNNParams) *KNN {
	return &KNN{Params: p}
}

// Fit implements Classifier.
func (k *KNN) Fit(ds tabular.View, _ *rand.Rand) (Cost, error) {
	k.Params = k.Params.normalized()
	d := ds.Features()
	k.cols = make([][]float64, d) //greenlint:allow rowmajor columnar training-column table, one slice per feature
	for j := 0; j < d; j++ {
		k.cols[j] = ds.ColInto(j, nil)
	}
	k.y = ds.LabelsInto(nil)
	k.classes = ds.Classes()
	return Cost{Generic: float64(ds.Rows())}, nil
}

// knnCand is one training row's (distance, label) pair during
// neighbour selection.
type knnCand struct {
	dist  float64
	label int
}

// knnByDist sorts candidates by ascending distance. A concrete
// sort.Interface runs the exact pdqsort the historical sort.Slice call
// used (both are generated from the same template), so ties between
// equal distances resolve through the identical swap sequence.
type knnByDist []knnCand

func (s knnByDist) Len() int           { return len(s) }
func (s knnByDist) Less(a, b int) bool { return s[a].dist < s[b].dist }
func (s knnByDist) Swap(a, b int)      { s[a], s[b] = s[b], s[a] }

// knnQBlock is the query-block width of the distance kernel: one pass
// over the memorized columns serves knnQBlock queries, cutting column
// traffic by that factor while each (query, train) pair still sums its
// squared distance in ascending feature order.
const knnQBlock = 8

// knnWorker is one worker's private query scratch.
type knnWorker struct {
	dist  []float64 // knnQBlock stacked distance rows
	q     []float64 // gathered query-column block
	cands []knnCand
}

// PredictProba implements Classifier. The scan is feature-major over
// the memorized columns, blocked two ways: query blocks share one pass
// over the training columns, and blocks of queries run in parallel
// under the package Parallelism knob (disjoint output rows, Cost from
// a closed formula) — bit-identical to the historical per-query scan.
func (k *KNN) PredictProba(x tabular.View) ([][]float64, Cost) {
	m := x.Rows()
	if len(k.cols) == 0 || len(k.y) == 0 {
		return uniformProba(m, max(k.classes, 2)), Cost{}
	}
	n := len(k.y)
	d := len(k.cols)
	kk := k.Params.K
	if kk > n {
		kk = n
	}
	out := make([][]float64, m) //greenlint:allow rowmajor proba output rows, class-wide not feature-wide
	workers := make([]*knnWorker, Parallelism())
	runRowBlocks(m, func(w, _, lo, hi int) {
		ws := workers[w]
		if ws == nil {
			ws = &knnWorker{
				dist:  make([]float64, knnQBlock*n),
				q:     make([]float64, knnQBlock),
				cands: make([]knnCand, n),
			}
			workers[w] = ws
		}
		for i := lo; i < hi; i += knnQBlock {
			qn := hi - i
			if qn > knnQBlock {
				qn = knnQBlock
			}
			k.scanQueries(x, ws, i, qn, n, d)
			for s := 0; s < qn; s++ {
				dist := ws.dist[s*n : s*n+n]
				cands := ws.cands
				for t := range cands {
					cands[t] = knnCand{dist: dist[t], label: k.y[t]}
				}
				sort.Sort(knnByDist(cands))
				votes := make([]float64, k.classes)
				for _, c := range cands[:kk] {
					w := 1.0
					if k.Params.DistanceWeighted {
						w = 1 / (1e-9 + c.dist)
					}
					votes[c.label] += w
				}
				normalizeInPlace(votes)
				out[i+s] = votes
			}
		}
	})
	scanCost := float64(m) * float64(n) * (3*float64(d) + 15)
	return out, Cost{Generic: scanCost}
}

// scanQueries accumulates squared distances from queries [i, i+qn) to
// every memorized row into ws.dist (one stacked row per query). The
// feature loop is outermost, so every (query, train) pair adds its
// per-feature terms in ascending feature order — the bit-identity
// invariant — while each training value is loaded once per query block
// instead of once per query.
//
//greenlint:hotpath distance accumulation over every query-row pair; scratch is per-worker
func (k *KNN) scanQueries(x tabular.View, ws *knnWorker, i, qn, n, d int) {
	clear(ws.dist[:qn*n])
	for j := 0; j < d; j++ {
		col := k.cols[j]
		for s := 0; s < qn; s++ {
			ws.q[s] = x.At(i+s, j)
		}
		switch qn {
		case knnQBlock:
			// Full block: one pass over the column feeds eight
			// independent accumulation streams (no cross-iteration
			// dependency chains), with full-capacity sub-slices lifting
			// the bounds checks out of the inner loop.
			d0 := ws.dist[0*n : 0*n+n : 0*n+n]
			d1 := ws.dist[1*n : 1*n+n : 1*n+n]
			d2 := ws.dist[2*n : 2*n+n : 2*n+n]
			d3 := ws.dist[3*n : 3*n+n : 3*n+n]
			d4 := ws.dist[4*n : 4*n+n : 4*n+n]
			d5 := ws.dist[5*n : 5*n+n : 5*n+n]
			d6 := ws.dist[6*n : 6*n+n : 6*n+n]
			d7 := ws.dist[7*n : 7*n+n : 7*n+n]
			q0, q1, q2, q3 := ws.q[0], ws.q[1], ws.q[2], ws.q[3]
			q4, q5, q6, q7 := ws.q[4], ws.q[5], ws.q[6], ws.q[7]
			for t, v := range col {
				f0, f1, f2, f3 := v-q0, v-q1, v-q2, v-q3
				f4, f5, f6, f7 := v-q4, v-q5, v-q6, v-q7
				d0[t] += f0 * f0
				d1[t] += f1 * f1
				d2[t] += f2 * f2
				d3[t] += f3 * f3
				d4[t] += f4 * f4
				d5[t] += f5 * f5
				d6[t] += f6 * f6
				d7[t] += f7 * f7
			}
		default:
			for s := 0; s < qn; s++ {
				q := ws.q[s]
				dist := ws.dist[s*n : s*n+n : s*n+n]
				for t, v := range col {
					diff := v - q
					dist[t] += diff * diff
				}
			}
		}
	}
}

// Clone implements Classifier.
func (k *KNN) Clone() Classifier { return NewKNN(k.Params) }

// Name implements Classifier.
func (k *KNN) Name() string {
	return fmt.Sprintf("knn(k=%d)", k.Params.normalized().K)
}

// ParallelFrac implements Classifier: queries parallelize trivially, but
// Fit (memorization) does not matter either way.
func (k *KNN) ParallelFrac() float64 { return 0.8 }

// StoredRows reports the memorized training-set size.
func (k *KNN) StoredRows() int { return len(k.y) }
