package ml

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/tabular"
)

func TestAdaBoostLearns(t *testing.T) {
	train := xorBlob(300, testRNG(50))
	test := xorBlob(120, testRNG(51))
	ab := NewAdaBoost(AdaBoostParams{Rounds: 40, Tree: TreeParams{MaxDepth: 2}})
	cost, err := ab.Fit(train.View(), testRNG(52))
	if err != nil {
		t.Fatal(err)
	}
	if cost.Total() <= 0 {
		t.Error("no training cost")
	}
	if ab.Rounds() == 0 {
		t.Fatal("no weak learners fitted")
	}
	pred, _ := Predict(ab, test.View())
	if acc := metrics.Accuracy(test.Y, pred); acc < 0.85 {
		t.Errorf("AdaBoost accuracy %.3f on XOR", acc)
	}
	// A single depth-2 stump ensemble must beat its own single weak
	// learner on a problem stumps cannot solve alone.
	stump := NewTreeClassifier(TreeParams{MaxDepth: 1})
	stump.Fit(train.View(), testRNG(53))
	stumpPred, _ := Predict(stump, test.View())
	if metrics.Accuracy(test.Y, pred) <= metrics.Accuracy(test.Y, stumpPred) {
		t.Error("boosting did not improve on a single stump")
	}
}

func TestAdaBoostProbabilities(t *testing.T) {
	train := separableBlob(150, 3, testRNG(54))
	ab := NewAdaBoost(AdaBoostParams{Rounds: 10})
	if _, err := ab.Fit(train.View(), testRNG(55)); err != nil {
		t.Fatal(err)
	}
	proba, _ := ab.PredictProba(tabular.FromRows([][]float64{{0, 0, 0}, {4, 4, 4}}))
	for _, row := range proba {
		var sum float64
		for _, p := range row {
			if p < 0 {
				t.Fatalf("negative probability %v", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}

func TestQDALearnsEllipticalClasses(t *testing.T) {
	rng := testRNG(56)
	// Two classes with identical means but very different covariance:
	// linear models and naive Bayes with shared structure fail; QDA
	// must succeed.
	ds := separableBlob(0, 2, rng) // empty; fill manually
	for i := 0; i < 400; i++ {
		c := i % 2
		var row []float64
		if c == 0 {
			row = []float64{0.3 * rng.NormFloat64(), 3 * rng.NormFloat64()}
		} else {
			row = []float64{3 * rng.NormFloat64(), 0.3 * rng.NormFloat64()}
		}
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, c)
	}
	q := NewQDA(0)
	cost, err := q.Fit(ds.View(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if cost.Matrix <= 0 {
		t.Error("QDA fit reported no matrix cost")
	}
	pred, _ := Predict(q, ds.View())
	if acc := metrics.Accuracy(ds.Y, pred); acc < 0.85 {
		t.Errorf("QDA accuracy %.3f on covariance-separated classes", acc)
	}
	// Logistic regression must do much worse here (sanity that the task
	// actually requires quadratic boundaries).
	lr := NewLogisticRegression(LinearParams{Epochs: 30})
	lr.Fit(ds.View(), testRNG(57))
	lrPred, _ := Predict(lr, ds.View())
	if lrAcc := metrics.Accuracy(ds.Y, lrPred); lrAcc > 0.7 {
		t.Errorf("linear model scored %.3f — task is not covariance-separated", lrAcc)
	}
}

func TestQDARejectsWideData(t *testing.T) {
	rng := testRNG(58)
	ds := separableBlob(40, 80, rng)
	if _, err := NewQDA(0).Fit(ds.View(), rng); err == nil {
		t.Error("QDA accepted 80 features (cubic fit would blow up)")
	}
}

func TestInvertSPD(t *testing.T) {
	m := [][]float64{{4, 1}, {1, 3}}
	inv, logDet, err := invertSPD(m)
	if err != nil {
		t.Fatal(err)
	}
	// det = 11, inverse = 1/11 * [[3,-1],[-1,4]].
	if math.Abs(logDet-math.Log(11)) > 1e-9 {
		t.Errorf("logDet %v, want log(11)", logDet)
	}
	want := [][]float64{{3.0 / 11, -1.0 / 11}, {-1.0 / 11, 4.0 / 11}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(inv[i][j]-want[i][j]) > 1e-9 {
				t.Errorf("inv[%d][%d] = %v, want %v", i, j, inv[i][j], want[i][j])
			}
		}
	}
	if _, _, err := invertSPD([][]float64{{0}}); err == nil {
		t.Error("singular matrix inverted")
	}
}

func TestHistBoostingLearns(t *testing.T) {
	train := xorBlob(400, testRNG(59))
	test := xorBlob(150, testRNG(60))
	hb := NewHistBoosting(HistBoostingParams{Rounds: 30, MaxDepth: 3})
	cost, err := hb.Fit(train.View(), testRNG(61))
	if err != nil {
		t.Fatal(err)
	}
	if cost.Tree <= 0 {
		t.Error("no tree cost recorded")
	}
	pred, _ := Predict(hb, test.View())
	if acc := metrics.Accuracy(test.Y, pred); acc < 0.85 {
		t.Errorf("hist boosting accuracy %.3f on XOR", acc)
	}
}

// TestHistBoostingCheaperThanExact: the histogram trick must make training
// cheaper than exact-split boosting at comparable settings — the design
// point of the LightGBM family.
func TestHistBoostingCheaperThanExact(t *testing.T) {
	train := separableBlob(600, 8, testRNG(62))
	hist := NewHistBoosting(HistBoostingParams{Rounds: 20, MaxDepth: 3})
	histCost, err := hist.Fit(train.View(), testRNG(63))
	if err != nil {
		t.Fatal(err)
	}
	exact := NewBoostingClassifier(BoostingParams{Rounds: 20, Tree: TreeParams{MaxDepth: 3}})
	exactCost, err := exact.Fit(train.View(), testRNG(63))
	if err != nil {
		t.Fatal(err)
	}
	if histCost.Total() >= exactCost.Total() {
		t.Errorf("hist boosting cost %.0f not below exact boosting %.0f", histCost.Total(), exactCost.Total())
	}
}

func TestHistBoostingDeterminism(t *testing.T) {
	train := separableBlob(200, 4, testRNG(64))
	a := NewHistBoosting(HistBoostingParams{Rounds: 10})
	b := NewHistBoosting(HistBoostingParams{Rounds: 10})
	a.Fit(train.View(), testRNG(65))
	b.Fit(train.View(), testRNG(65))
	pa, _ := a.PredictProba(train.View().Head(10))
	pb, _ := b.PredictProba(train.View().Head(10))
	for i := range pa {
		for j := range pa[i] {
			if pa[i][j] != pb[i][j] {
				t.Fatal("hist boosting non-deterministic")
			}
		}
	}
}
