package ml

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/tabular"
)

// BoostingParams configure gradient-boosted trees.
type BoostingParams struct {
	// Rounds is the number of boosting iterations.
	Rounds int
	// LearningRate shrinks each round's contribution.
	LearningRate float64
	// Tree holds the per-round regression-tree parameters; depth
	// defaults to 3.
	Tree TreeParams
	// Subsample is the row fraction used per round (stochastic gradient
	// boosting); 0 or 1 uses all rows.
	Subsample float64
}

func (p BoostingParams) normalized() BoostingParams {
	if p.Rounds < 1 {
		p.Rounds = 50
	}
	if p.LearningRate <= 0 {
		p.LearningRate = 0.1
	}
	if p.Tree.MaxDepth <= 0 {
		p.Tree.MaxDepth = 3
	}
	if p.Subsample <= 0 || p.Subsample > 1 {
		p.Subsample = 1
	}
	return p
}

// BoostingClassifier is a gradient-boosted tree classifier with a softmax
// (multinomial deviance) objective: each round fits one regression tree per
// class to the probability residuals.
type BoostingClassifier struct {
	Params  BoostingParams
	classes int
	// rounds[r][k] is the class-k tree of round r.
	rounds [][]*TreeRegressor
	prior  []float64
}

// NewBoostingClassifier constructs a gradient-boosting classifier.
func NewBoostingClassifier(p BoostingParams) *BoostingClassifier {
	return &BoostingClassifier{Params: p}
}

// Fit implements Classifier.
func (b *BoostingClassifier) Fit(ds tabular.View, rng *rand.Rand) (Cost, error) {
	p := b.Params.normalized()
	b.Params = p
	b.classes = ds.Classes()
	n := ds.Rows()
	labels := ds.LabelsInto(nil)

	// Log-prior initialization.
	b.prior = make([]float64, b.classes)
	counts := ds.ClassCounts()
	for k, c := range counts {
		b.prior[k] = float64(c+1) / float64(n+b.classes)
	}
	logits := make([][]float64, n) //greenlint:allow rowmajor per-row class logits, class-wide not feature-wide
	for i := range logits {
		logits[i] = make([]float64, b.classes)
	}

	var cost Cost
	b.rounds = b.rounds[:0]
	proba := make([]float64, b.classes)
	targets := make([]float64, n)
	for r := 0; r < p.Rounds; r++ {
		roundTrees := make([]*TreeRegressor, b.classes)
		// Residuals for every class under current logits.
		residuals := make([][]float64, b.classes) //greenlint:allow rowmajor per-class residual columns - columnar
		for k := range residuals {
			residuals[k] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			copy(proba, logits[i])
			softmaxInPlace(proba)
			for k := 0; k < b.classes; k++ {
				indicator := 0.0
				if labels[i] == k {
					indicator = 1.0
				}
				residuals[k][i] = indicator - proba[k]
			}
		}
		cost.Generic += float64(n * b.classes * 3)

		fitView := ds
		useIdx := []int(nil)
		if p.Subsample < 1 {
			m := int(p.Subsample * float64(n))
			if m < 2 {
				m = 2
			}
			useIdx = rng.Perm(n)[:m]
			fitView = ds.Select(useIdx)
		}

		for k := 0; k < b.classes; k++ {
			tree := NewTreeRegressor(p.Tree)
			t := targets[:fitView.Rows()]
			if useIdx == nil {
				copy(t, residuals[k])
			} else {
				for j, i := range useIdx {
					t[j] = residuals[k][i]
				}
			}
			c, err := tree.FitReg(fitView, t, rng)
			cost.Add(c) // partial cost of a failed fit is still compute spent
			if err != nil {
				return cost, fmt.Errorf("ml: boosting round %d class %d: %w", r, k, err)
			}
			pred, c2 := tree.PredictReg(ds)
			cost.Add(c2)
			for i, v := range pred {
				logits[i][k] += p.LearningRate * v
			}
			roundTrees[k] = tree
		}
		b.rounds = append(b.rounds, roundTrees)
	}
	return cost, nil
}

// PredictProba implements Classifier.
func (b *BoostingClassifier) PredictProba(x tabular.View) ([][]float64, Cost) {
	m := x.Rows()
	if len(b.rounds) == 0 {
		return uniformProba(m, max(b.classes, 2)), Cost{}
	}
	var cost Cost
	out := make([][]float64, m)    //greenlint:allow rowmajor proba output rows, class-wide not feature-wide
	logits := make([][]float64, m) //greenlint:allow rowmajor per-row class logits, class-wide not feature-wide
	for i := range logits {
		logits[i] = make([]float64, b.classes)
	}
	for _, roundTrees := range b.rounds {
		for k, tree := range roundTrees {
			pred, c := tree.PredictReg(x)
			cost.Add(c)
			for i, v := range pred {
				logits[i][k] += b.Params.LearningRate * v
			}
		}
	}
	for i := 0; i < m; i++ {
		softmaxInPlace(logits[i])
		out[i] = logits[i]
	}
	cost.Generic += float64(m * b.classes * 2)
	return out, cost
}

// Clone implements Classifier.
func (b *BoostingClassifier) Clone() Classifier { return NewBoostingClassifier(b.Params) }

// Name implements Classifier.
func (b *BoostingClassifier) Name() string {
	p := b.Params.normalized()
	return fmt.Sprintf("gbt(rounds=%d,lr=%.2g,depth=%d)", p.Rounds, p.LearningRate, p.Tree.MaxDepth)
}

// ParallelFrac implements Classifier: rounds are sequential but the
// per-class trees within a round parallelize.
func (b *BoostingClassifier) ParallelFrac() float64 { return 0.5 }
