package ml

// This file preserves the pre-optimization CART kernel verbatim (modulo
// renames) as a test oracle. The rewritten treeCore must produce
// bit-identical trees — same node order, same split features and
// thresholds, same leaf distributions, same Cost — because the virtual
// clock turns tree shape into measured energy, and grid records must not
// move when the kernel gets faster.

import (
	"errors"
	"math"
	"math/rand/v2"
	"sort"
)

// legacyTreeTask is the kernel input in its historical row-major form.
type legacyTreeTask struct {
	x [][]float64
	y []int
	t []float64
}

type legacyTreeCore struct {
	params  TreeParams
	classes int
	nodes   []treeNode
	cost    Cost
}

func (tc *legacyTreeCore) fit(task legacyTreeTask, rng *rand.Rand) error {
	p := tc.params.normalized()
	tc.params = p
	n := len(task.x)
	if n == 0 {
		return errors.New("ml: tree fit on empty data")
	}
	d := len(task.x[0])
	if d == 0 {
		return errors.New("ml: tree fit with zero features")
	}
	tc.nodes = tc.nodes[:0]
	tc.cost = Cost{}

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	tc.build(task, idx, 0, rng)
	return nil
}

func (tc *legacyTreeCore) build(task legacyTreeTask, idx []int, depth int, rng *rand.Rand) int32 {
	m := len(idx)
	p := tc.params

	node := treeNode{feature: -1, depth: depth}
	pure := false
	if tc.classes > 0 {
		counts := make([]float64, tc.classes)
		for _, i := range idx {
			counts[task.y[i]]++
		}
		nonzero := 0
		for _, c := range counts {
			if c > 0 {
				nonzero++
			}
		}
		pure = nonzero <= 1
		for i := range counts {
			counts[i] /= float64(m)
		}
		node.proba = counts
	} else {
		var sum float64
		for _, i := range idx {
			sum += task.t[i]
		}
		node.value = sum / float64(m)
		pure = m <= 1
	}
	tc.cost.Tree += float64(m)

	if pure || depth >= p.MaxDepth || m < p.MinSamplesSplit || m < 2*p.MinSamplesLeaf {
		return tc.push(node)
	}

	feature, threshold, ok := tc.findSplit(task, idx, rng)
	if !ok {
		return tc.push(node)
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if task.x[i][feature] <= threshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	tc.cost.Tree += float64(m)
	if len(leftIdx) < p.MinSamplesLeaf || len(rightIdx) < p.MinSamplesLeaf {
		return tc.push(node)
	}

	node.feature = feature
	node.threshold = threshold
	self := tc.push(node)
	left := tc.build(task, leftIdx, depth+1, rng)
	right := tc.build(task, rightIdx, depth+1, rng)
	tc.nodes[self].left = left
	tc.nodes[self].right = right
	return self
}

func (tc *legacyTreeCore) push(n treeNode) int32 {
	tc.nodes = append(tc.nodes, n)
	return int32(len(tc.nodes) - 1)
}

func (tc *legacyTreeCore) findSplit(task legacyTreeTask, idx []int, rng *rand.Rand) (feature int, threshold float64, ok bool) {
	d := len(task.x[0])
	tryCount := int(math.Ceil(tc.params.MaxFeatures * float64(d)))
	if tryCount < 1 {
		tryCount = 1
	}
	if tryCount > d {
		tryCount = d
	}
	var features []int
	if tryCount == d {
		features = make([]int, d)
		for j := range features {
			features[j] = j
		}
	} else {
		features = rng.Perm(d)[:tryCount]
	}

	bestGain := 0.0
	ok = false
	for _, f := range features {
		var gain, thr float64
		var found bool
		if tc.params.RandomThreshold {
			gain, thr, found = tc.evalRandomThreshold(task, idx, f, rng)
			tc.cost.Tree += 3 * float64(len(idx))
		} else {
			gain, thr, found = tc.evalExhaustive(task, idx, f)
			m := float64(len(idx))
			tc.cost.Tree += m * (math.Log2(m+2) + float64(max(tc.classes, 1)))
		}
		if found && gain > bestGain {
			bestGain, threshold, feature, ok = gain, thr, f, true
		}
	}
	return feature, threshold, ok
}

func (tc *legacyTreeCore) evalExhaustive(task legacyTreeTask, idx []int, f int) (gain, threshold float64, ok bool) {
	m := len(idx)
	order := append([]int(nil), idx...)
	sort.Slice(order, func(a, b int) bool { return task.x[order[a]][f] < task.x[order[b]][f] })

	if tc.classes > 0 {
		left := make([]float64, tc.classes)
		right := make([]float64, tc.classes)
		for _, i := range order {
			right[task.y[i]]++
		}
		parent := tc.impurity(right, float64(m))
		bestGain := 0.0
		var bestThr float64
		found := false
		for pos := 1; pos < m; pos++ {
			c := task.y[order[pos-1]]
			left[c]++
			right[c]--
			v0, v1 := task.x[order[pos-1]][f], task.x[order[pos]][f]
			if v0 == v1 {
				continue
			}
			nl, nr := float64(pos), float64(m-pos)
			g := parent - (nl*tc.impurity(left, nl)+nr*tc.impurity(right, nr))/float64(m)
			if g > bestGain {
				bestGain = g
				bestThr = (v0 + v1) / 2
				found = true
			}
		}
		return bestGain, bestThr, found
	}

	var sumR, sumSqR float64
	for _, i := range order {
		t := task.t[i]
		sumR += t
		sumSqR += t * t
	}
	totalVar := sumSqR - sumR*sumR/float64(m)
	var sumL, sumSqL float64
	bestGain := 0.0
	var bestThr float64
	found := false
	for pos := 1; pos < m; pos++ {
		t := task.t[order[pos-1]]
		sumL += t
		sumSqL += t * t
		sumRpos := sumR - sumL
		sumSqRpos := sumSqR - sumSqL
		v0, v1 := task.x[order[pos-1]][f], task.x[order[pos]][f]
		if v0 == v1 {
			continue
		}
		nl, nr := float64(pos), float64(m-pos)
		sseL := sumSqL - sumL*sumL/nl
		sseR := sumSqRpos - sumRpos*sumRpos/nr
		g := totalVar - sseL - sseR
		if g > bestGain {
			bestGain = g
			bestThr = (v0 + v1) / 2
			found = true
		}
	}
	return bestGain, bestThr, found
}

func (tc *legacyTreeCore) evalRandomThreshold(task legacyTreeTask, idx []int, f int, rng *rand.Rand) (gain, threshold float64, ok bool) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, i := range idx {
		v := task.x[i][f]
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo {
		return 0, 0, false
	}
	thr := lo + rng.Float64()*(hi-lo)
	m := float64(len(idx))

	if tc.classes > 0 {
		left := make([]float64, tc.classes)
		right := make([]float64, tc.classes)
		var nl float64
		for _, i := range idx {
			if task.x[i][f] <= thr {
				left[task.y[i]]++
				nl++
			} else {
				right[task.y[i]]++
			}
		}
		nr := m - nl
		if nl == 0 || nr == 0 {
			return 0, 0, false
		}
		all := make([]float64, tc.classes)
		for c := range all {
			all[c] = left[c] + right[c]
		}
		g := tc.impurity(all, m) - (nl*tc.impurity(left, nl)+nr*tc.impurity(right, nr))/m
		return g, thr, g > 0
	}

	var sumL, sumSqL, sumR, sumSqR, nl float64
	for _, i := range idx {
		t := task.t[i]
		if task.x[i][f] <= thr {
			sumL += t
			sumSqL += t * t
			nl++
		} else {
			sumR += t
			sumSqR += t * t
		}
	}
	nr := m - nl
	if nl == 0 || nr == 0 {
		return 0, 0, false
	}
	total := sumSqL + sumSqR - (sumL+sumR)*(sumL+sumR)/m
	sseL := sumSqL - sumL*sumL/nl
	sseR := sumSqR - sumR*sumR/nr
	g := total - sseL - sseR
	return g, thr, g > 0
}

func (tc *legacyTreeCore) impurity(counts []float64, total float64) float64 {
	if total <= 0 {
		return 0
	}
	if tc.params.Criterion == Entropy {
		var h float64
		for _, c := range counts {
			if c > 0 {
				p := c / total
				h -= p * math.Log2(p)
			}
		}
		return h
	}
	var sumSq float64
	for _, c := range counts {
		p := c / total
		sumSq += p * p
	}
	return 1 - sumSq
}
