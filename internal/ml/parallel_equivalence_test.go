package ml

import (
	"sync/atomic"
	"testing"

	"repro/internal/tabular"
)

// withParallelism runs fn under the given within-fit worker budget and
// restores the previous budget afterwards. The knob is package-global,
// so these tests must not run with t.Parallel.
func withParallelism(t *testing.T, p int, fn func()) {
	t.Helper()
	prev := SetParallelism(p)
	defer SetParallelism(prev)
	fn()
}

// fitPredict fits a clone of proto and returns fit cost, probabilities
// and predict cost on the test view.
func fitPredict(t *testing.T, proto Classifier, train, test tabular.View) (Cost, [][]float64, Cost) {
	t.Helper()
	m := proto.Clone()
	fitCost, err := m.Fit(train, testRNG(5))
	if err != nil {
		t.Skipf("model does not fit this data: %v", err)
	}
	proba, predCost := m.PredictProba(test)
	return fitCost, proba, predCost
}

// TestParallelismEquivalenceClassifiers is the determinism bar of the
// within-cell parallelism work: every classifier must produce
// bit-identical probabilities and FLOP costs at parallelism 1, 2 and 4.
// Parallelism may only change wall-clock time, never a single float bit
// — the sanctioned reduction orders (see parallel.go) guarantee it by
// construction, and this suite enforces it empirically. Run under -race
// it additionally proves the disjoint-slot rule holds (no goroutine
// ever races on a shared accumulator).
func TestParallelismEquivalenceClassifiers(t *testing.T) {
	train := xorBlob(300, testRNG(21))
	test := xorBlob(90, testRNG(22))
	for name, proto := range equivalenceModels() {
		t.Run(name, func(t *testing.T) {
			var baseFit Cost
			var baseProba [][]float64
			var basePred Cost
			withParallelism(t, 1, func() {
				baseFit, baseProba, basePred = fitPredict(t, proto, train.View(), test.View())
			})
			for _, p := range []int{2, 4} {
				var fitCost Cost
				var proba [][]float64
				var predCost Cost
				withParallelism(t, p, func() {
					fitCost, proba, predCost = fitPredict(t, proto, train.View(), test.View())
				})
				if fitCost != baseFit {
					t.Errorf("parallelism %d: fit cost diverges: %+v vs %+v", p, fitCost, baseFit)
				}
				if predCost != basePred {
					t.Errorf("parallelism %d: predict cost diverges: %+v vs %+v", p, predCost, basePred)
				}
				if len(proba) != len(baseProba) {
					t.Fatalf("parallelism %d: row counts diverge: %d vs %d", p, len(proba), len(baseProba))
				}
				for i := range proba {
					for j := range proba[i] {
						if proba[i][j] != baseProba[i][j] {
							t.Fatalf("parallelism %d: proba (%d,%d): %v vs %v — reduction order leaked into the math",
								p, i, j, proba[i][j], baseProba[i][j])
						}
					}
				}
			}
		})
	}
}

// TestParallelismEquivalenceRegressors covers the regression kernels
// (surrogate models and the forest regressor's pre-split RNG streams).
func TestParallelismEquivalenceRegressors(t *testing.T) {
	ds := separableBlob(260, 3, testRNG(31))
	y := make([]float64, ds.Rows())
	for i := range y {
		y[i] = ds.X[i][0]*1.5 - ds.X[i][1] + 0.25*float64(ds.Y[i])
	}
	test := separableBlob(80, 3, testRNG(32))
	models := map[string]func() Regressor{
		"tree-reg":   func() Regressor { return NewTreeRegressor(TreeParams{MaxDepth: 6}) },
		"forest-reg": func() Regressor { return NewForestRegressor(ForestParams{Trees: 8, Bootstrap: true}) },
	}
	for name, mk := range models {
		t.Run(name, func(t *testing.T) {
			run := func(p int) (Cost, []float64, Cost) {
				var fitCost, predCost Cost
				var pred []float64
				withParallelism(t, p, func() {
					m := mk()
					var err error
					fitCost, err = m.FitReg(ds.View(), y, testRNG(6))
					if err != nil {
						t.Fatalf("fit: %v", err)
					}
					pred, predCost = m.PredictReg(test.View())
				})
				return fitCost, pred, predCost
			}
			baseFit, basePred, basePC := run(1)
			for _, p := range []int{2, 4} {
				fitCost, pred, pc := run(p)
				if fitCost != baseFit {
					t.Errorf("parallelism %d: fit cost diverges: %+v vs %+v", p, fitCost, baseFit)
				}
				if pc != basePC {
					t.Errorf("parallelism %d: predict cost diverges: %+v vs %+v", p, pc, basePC)
				}
				for i := range pred {
					if pred[i] != basePred[i] {
						t.Fatalf("parallelism %d: prediction %d: %v vs %v", p, i, pred[i], basePred[i])
					}
				}
			}
		})
	}
}

// TestRunIndexedCoversAllItems checks every index is executed exactly
// once and worker ids stay within the budget, at several budgets.
func TestRunIndexedCoversAllItems(t *testing.T) {
	const n = 1000
	for _, p := range []int{1, 2, 4, 7} {
		prev := SetParallelism(p)
		var hits [n]atomic.Int32
		var badWorker atomic.Bool
		runIndexed(n, func(worker, i int) {
			if worker < 0 || worker >= p {
				badWorker.Store(true)
			}
			hits[i].Add(1)
		})
		SetParallelism(prev)
		if badWorker.Load() {
			t.Fatalf("parallelism %d: worker id out of [0,%d)", p, p)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("parallelism %d: item %d executed %d times", p, i, got)
			}
		}
	}
}

// TestRunIndexedEmpty checks zero and negative item counts are no-ops.
func TestRunIndexedEmpty(t *testing.T) {
	for _, n := range []int{0, -3} {
		called := false
		runIndexed(n, func(_, _ int) { called = true })
		if called {
			t.Fatalf("runIndexed(%d) invoked fn", n)
		}
	}
}

// TestRunIndexedPanicPropagates checks a worker panic is rethrown on
// the calling goroutine — the harness's per-cell recovery and the fault
// injector's panic faults depend on this matching sequential behavior.
func TestRunIndexedPanicPropagates(t *testing.T) {
	for _, p := range []int{1, 4} {
		prev := SetParallelism(p)
		func() {
			defer SetParallelism(prev)
			defer func() {
				if r := recover(); r != "kernel fault" {
					t.Fatalf("parallelism %d: recovered %v, want kernel fault", p, r)
				}
			}()
			runIndexed(64, func(_, i int) {
				if i == 13 {
					panic("kernel fault")
				}
			})
			t.Fatalf("parallelism %d: runIndexed returned without panicking", p)
		}()
	}
}

// TestRunRowBlocksGrid checks the block grid is a pure function of the
// row count — covering the full final block, a remainder block, a
// single short block, and empty input — and that rowBlockCount agrees
// with the blocks actually executed.
func TestRunRowBlocksGrid(t *testing.T) {
	prev := SetParallelism(4)
	defer SetParallelism(prev)
	cases := []int{0, 1, kernelBlock - 1, kernelBlock, kernelBlock + 1, 3*kernelBlock + 17}
	for _, n := range cases {
		covered := make([]atomic.Int32, max(n, 1))
		var blocks atomic.Int32
		runRowBlocks(n, func(_, b, lo, hi int) {
			blocks.Add(1)
			if lo != b*kernelBlock {
				t.Errorf("n=%d block %d: lo=%d, want %d", n, b, lo, b*kernelBlock)
			}
			if hi > n || hi <= lo {
				t.Errorf("n=%d block %d: bad range [%d,%d)", n, b, lo, hi)
			}
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
		})
		if got := int(blocks.Load()); got != rowBlockCount(n) {
			t.Errorf("n=%d: %d blocks executed, rowBlockCount says %d", n, got, rowBlockCount(n))
		}
		for i := 0; i < n; i++ {
			if covered[i].Load() != 1 {
				t.Fatalf("n=%d: row %d covered %d times", n, i, covered[i].Load())
			}
		}
	}
}

// TestSetParallelismClamps checks the knob clamps to [1, maxParallelism]
// and returns the previous value.
func TestSetParallelismClamps(t *testing.T) {
	prev := SetParallelism(3)
	defer SetParallelism(prev)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	if old := SetParallelism(0); old != 3 {
		t.Fatalf("SetParallelism(0) returned %d, want previous 3", old)
	}
	if got := Parallelism(); got != 1 {
		t.Fatalf("Parallelism() after clamp-low = %d, want 1", got)
	}
	SetParallelism(maxParallelism + 50)
	if got := Parallelism(); got != maxParallelism {
		t.Fatalf("Parallelism() after clamp-high = %d, want %d", got, maxParallelism)
	}
}

// BenchmarkForestFitParallel measures a forest fit at parallelism 1 and
// 4 — the headline scaling benchmark for within-cell parallelism. On a
// multi-core machine the p4 case should approach the core count in
// speedup; on a single core both cases collapse to the sequential cost
// (the knob adds only a few goroutine handoffs), which doubles as a
// cheap overhead regression guard.
func BenchmarkForestFitParallel(b *testing.B) {
	ds := benchDataset(600, 16, 3, 2)
	params := ForestParams{Trees: 20, Bootstrap: true}
	for _, p := range []int{1, 4} {
		b.Run(map[int]string{1: "p1", 4: "p4"}[p], func(b *testing.B) {
			prev := SetParallelism(p)
			defer SetParallelism(prev)
			b.ReportAllocs()
			for b.Loop() {
				m := NewForestClassifier(params)
				if _, err := m.Fit(ds.View(), testRNG(9)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
