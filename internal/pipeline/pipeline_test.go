package pipeline

import (
	"errors"
	"math"
	mathrand "math/rand" //greenlint:allow globalrand testing/quick needs a v1 *rand.Rand; the source is explicitly seeded
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/preprocess"
	"repro/internal/tabular"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0x91)) }

func blob(n int, rng *rand.Rand) *tabular.Dataset {
	ds := &tabular.Dataset{Name: "blob", Classes: 2}
	for i := 0; i < n; i++ {
		c := i % 2
		ds.X = append(ds.X, []float64{4*float64(c) + rng.NormFloat64(), rng.NormFloat64()})
		ds.Y = append(ds.Y, c)
	}
	return ds
}

func TestSpaceSampleWithinBounds(t *testing.T) {
	space, err := FullSpec().Space()
	if err != nil {
		t.Fatal(err)
	}
	rng := testRNG(1)
	for i := 0; i < 200; i++ {
		cfg := space.Sample(rng)
		for _, p := range space.Params {
			v, ok := cfg[p.Name]
			if !ok {
				t.Fatalf("sample missing %s", p.Name)
			}
			switch p.Kind {
			case Float, Int:
				if v < p.Min-1e-9 || v > p.Max+1e-9 {
					t.Fatalf("%s = %v outside [%v,%v]", p.Name, v, p.Min, p.Max)
				}
			case Bool:
				if v != 0 && v != 1 {
					t.Fatalf("%s = %v not boolean", p.Name, v)
				}
			case Choice:
				if int(v) < 0 || int(v) >= len(p.Choices) {
					t.Fatalf("%s = %v outside choices", p.Name, v)
				}
			}
		}
	}
}

func TestSpaceVectorNormalized(t *testing.T) {
	space, _ := FullSpec().Space()
	rng := testRNG(2)
	for i := 0; i < 100; i++ {
		vec := space.Vector(space.Sample(rng))
		if len(vec) != len(space.Params) {
			t.Fatalf("vector length %d, want %d", len(vec), len(space.Params))
		}
		for j, v := range vec {
			if v < -1e-9 || v > 1+1e-9 || math.IsNaN(v) {
				t.Fatalf("component %d (%s) = %v outside [0,1]", j, space.Params[j].Name, v)
			}
		}
	}
}

func TestMutateChangesSomethingAndStaysInBounds(t *testing.T) {
	space, _ := FullSpec().Space()
	rng := testRNG(3)
	cfg := space.Sample(rng)
	property := func(strengthRaw uint8) bool {
		strength := float64(strengthRaw%100) / 100
		mutated := space.Mutate(cfg, strength, rng)
		changed := false
		for _, p := range space.Params {
			v := mutated[p.Name]
			if v != cfg[p.Name] {
				changed = true
			}
			if p.Kind == Float || p.Kind == Int {
				if v < p.Min-1e-9 || v > p.Max+1e-9 {
					return false
				}
			}
		}
		return changed
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100, Rand: mathrand.New(mathrand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}

func TestCrossoverDrawsFromParents(t *testing.T) {
	space, _ := FullSpec().Space()
	rng := testRNG(5)
	a := space.Sample(rng)
	b := space.Sample(rng)
	child := space.Crossover(a, b, rng)
	for _, p := range space.Params {
		v := child[p.Name]
		if v != a[p.Name] && v != b[p.Name] {
			t.Fatalf("%s = %v comes from neither parent (%v / %v)", p.Name, v, a[p.Name], b[p.Name])
		}
	}
}

func TestConfigAccessors(t *testing.T) {
	cfg := Config{"f": 2.7, "i": 4.4, "b": 0.9, "c": 1}
	if cfg.Float("f", 0) != 2.7 || cfg.Float("missing", 9) != 9 {
		t.Error("Float accessor")
	}
	if cfg.Int("i", 0) != 4 || cfg.Int("missing", 7) != 7 {
		t.Error("Int accessor")
	}
	if !cfg.Bool("b", false) || cfg.Bool("missing", true) != true {
		t.Error("Bool accessor")
	}
	choices := []string{"x", "y", "z"}
	if cfg.Choice("c", choices, "x") != "y" {
		t.Error("Choice accessor")
	}
	if cfg.Choice("missing", choices, "z") != "z" {
		t.Error("Choice default")
	}
	if (Config{"c": 99}).Choice("c", choices, "x") != "z" {
		t.Error("Choice out-of-range clamp")
	}
	clone := cfg.Clone()
	clone["f"] = -1
	if cfg.Float("f", 0) == -1 {
		t.Error("Clone shares storage")
	}
	if cfg.Key() == "" || cfg.Key() != cfg.Clone().Key() {
		t.Error("Key not canonical")
	}
}

func TestRegistryBuildsEveryFamily(t *testing.T) {
	train := blob(120, testRNG(6))
	for _, family := range AllModels() {
		spec := SpaceSpec{Models: []string{family}, DataPreprocessors: true}
		space, err := spec.Space()
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		p, err := spec.Build(space.Default(), train.Features())
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if p.ModelFamily != family {
			t.Errorf("built family %q, want %q", p.ModelFamily, family)
		}
		if _, err := p.Fit(train.View(), testRNG(7)); err != nil {
			t.Fatalf("%s: fit: %v", family, err)
		}
		pred, cost := p.Predict(train.View())
		if cost.Total() <= 0 {
			t.Errorf("%s: no prediction cost", family)
		}
		if acc := metrics.Accuracy(train.Y, pred); acc < 0.9 {
			t.Errorf("%s: training accuracy %.3f on separable blob", family, acc)
		}
		if !p.Fitted() {
			t.Errorf("%s: Fitted() false after Fit", family)
		}
		if !strings.Contains(p.Name(), "->") {
			t.Errorf("%s: pipeline name %q has no stages", family, p.Name())
		}
	}
}

func TestModelsByCostOrdering(t *testing.T) {
	order := ModelsByCost()
	if len(order) != len(AllModels()) {
		t.Fatalf("cost ordering lists %d families, want %d", len(order), len(AllModels()))
	}
	rank := func(name string) int {
		def, _ := ModelByName(name)
		return def.CostRank
	}
	for i := 1; i < len(order); i++ {
		if rank(order[i-1]) > rank(order[i]) {
			t.Errorf("cost ordering violated at %s -> %s", order[i-1], order[i])
		}
	}
	if rank(order[0]) > rank("gradient_boosting") {
		t.Error("cheapest family ranks above gradient boosting")
	}
}

func TestSpaceSpecGroups(t *testing.T) {
	full, _ := FullSpec().Space()
	noFeat, _ := SpaceSpec{Models: AllModels(), DataPreprocessors: true}.Space()
	modelsOnly, _ := SpaceSpec{Models: AllModels()}.Space()
	if _, ok := full.Lookup("feature_pre"); !ok {
		t.Error("full space misses feature preprocessors")
	}
	if _, ok := noFeat.Lookup("feature_pre"); ok {
		t.Error("CAML-style space should not search feature preprocessors (paper Table 1)")
	}
	if _, ok := noFeat.Lookup("scaler"); !ok {
		t.Error("CAML-style space misses data preprocessors")
	}
	if _, ok := modelsOnly.Lookup("scaler"); ok {
		t.Error("FLAML-style space should not search preprocessors")
	}
	if _, err := (SpaceSpec{Models: []string{"nonsense"}}).Space(); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := (SpaceSpec{Models: []string{"nonsense"}}).Build(Config{}, 2); err == nil {
		t.Error("Build accepted unknown family")
	}
}

func TestComplexityCapsShrinkRanges(t *testing.T) {
	capped := SpaceSpec{
		Models:         []string{"random_forest"},
		ComplexityCaps: map[string]float64{"random_forest": 0.3},
	}
	space, err := capped.Space()
	if err != nil {
		t.Fatal(err)
	}
	p, ok := space.Lookup("random_forest.trees")
	if !ok {
		t.Fatal("trees parameter missing")
	}
	full, _ := SpaceSpec{Models: []string{"random_forest"}}.Space()
	fullParam, _ := full.Lookup("random_forest.trees")
	if p.Max >= fullParam.Max {
		t.Errorf("cap did not shrink max: %v vs %v", p.Max, fullParam.Max)
	}
	if p.Min != fullParam.Min {
		t.Errorf("cap moved the minimum: %v vs %v", p.Min, fullParam.Min)
	}
	if p.Default > p.Max {
		t.Errorf("default %v above capped max %v", p.Default, p.Max)
	}
}

func TestBuildAppliesPreprocessors(t *testing.T) {
	spec := FullSpec()
	space, _ := spec.Space()
	cfg := space.Default()
	cfg["feature_pre"] = 1 // select_k_best
	cfg["feature_pre.k_frac"] = 0.5
	cfg["scaler"] = 1 // standard
	p, err := spec.Build(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	name := p.Name()
	for _, stage := range []string{"imputer", "standard_scaler", "select_k_best"} {
		if !strings.Contains(name, stage) {
			t.Errorf("pipeline %q misses stage %s", name, stage)
		}
	}
}

func TestPipelineNilModel(t *testing.T) {
	p := &Pipeline{}
	if _, err := p.Fit(blob(10, testRNG(8)).View(), testRNG(9)); err == nil {
		t.Error("nil model accepted")
	}
	if p.ParallelFrac() != 0 {
		t.Error("nil model parallel fraction")
	}
}

func TestSpaceDefault(t *testing.T) {
	space, _ := FullSpec().Space()
	def := space.Default()
	if len(def) != len(space.Params) {
		t.Errorf("default config has %d entries, want %d", len(def), len(space.Params))
	}
	for _, p := range space.Params {
		if def[p.Name] != p.Default {
			t.Errorf("%s default %v, want %v", p.Name, def[p.Name], p.Default)
		}
	}
}

func TestExtendedModelsOptIn(t *testing.T) {
	extended := ExtendedModels()
	if len(extended) != 3 {
		t.Fatalf("extended families %v, want adaboost/hist_gradient_boosting/qda", extended)
	}
	defaults := map[string]bool{}
	for _, name := range AllModels() {
		defaults[name] = true
	}
	for _, name := range extended {
		if defaults[name] {
			t.Errorf("extended family %s leaked into the default zoo", name)
		}
	}
	// Extended families build and train when requested explicitly.
	train := blob(150, testRNG(60))
	for _, family := range extended {
		spec := SpaceSpec{Models: []string{family}, DataPreprocessors: true}
		space, err := spec.Space()
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		p, err := spec.Build(space.Default(), train.Features())
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if _, err := p.Fit(train.View(), testRNG(61)); err != nil {
			t.Fatalf("%s fit: %v", family, err)
		}
		pred, _ := p.Predict(train.View())
		if acc := metrics.Accuracy(train.Y, pred); acc < 0.9 {
			t.Errorf("%s training accuracy %.3f", family, acc)
		}
	}
}

// pooledPassthrough is a test transformer that copies its input into a
// fresh pooled frame — the ownership shape every real preprocessor has.
type pooledPassthrough struct{ out *tabular.Frame }

func (s *pooledPassthrough) FitTransform(ds tabular.View, _ *rand.Rand) (tabular.View, ml.Cost, error) {
	f := tabular.NewPooledFrame(ds.Name(), ds.Rows(), ds.Features())
	for j := 0; j < ds.Features(); j++ {
		ds.ColInto(j, f.Cols[j])
	}
	s.out = f
	return f.All(), ml.Cost{}, nil
}

func (s *pooledPassthrough) Transform(x tabular.View) (tabular.View, ml.Cost) {
	return x, ml.Cost{}
}

func (s *pooledPassthrough) Name() string { return "pooled_passthrough" }

// failingTransformer always errors out of FitTransform.
type failingTransformer struct{}

func (failingTransformer) FitTransform(tabular.View, *rand.Rand) (tabular.View, ml.Cost, error) {
	return tabular.View{}, ml.Cost{}, errors.New("boom")
}
func (failingTransformer) Transform(x tabular.View) (tabular.View, ml.Cost) { return x, ml.Cost{} }
func (failingTransformer) Name() string                                     { return "failing_transformer" }

// failingModel always errors out of Fit.
type failingModel struct{}

func (failingModel) Fit(tabular.View, *rand.Rand) (ml.Cost, error) {
	return ml.Cost{}, errors.New("model boom")
}
func (failingModel) PredictProba(tabular.View) ([][]float64, ml.Cost) { return nil, ml.Cost{} }
func (failingModel) Clone() ml.Classifier                             { return failingModel{} }
func (failingModel) Name() string                                     { return "failing_model" }
func (failingModel) ParallelFrac() float64                            { return 0 }

func TestFitReleasesIntermediateFrameOnTransformError(t *testing.T) {
	stage := &pooledPassthrough{}
	p := &Pipeline{
		Pre:   []preprocess.Transformer{stage, failingTransformer{}},
		Model: failingModel{},
	}
	if _, err := p.Fit(blob(12, testRNG(3)).View(), testRNG(4)); err == nil {
		t.Fatal("failing transformer did not surface an error")
	}
	if stage.out == nil {
		t.Fatal("pooled stage never ran")
	}
	if stage.out.Cols != nil {
		t.Error("intermediate pooled frame leaked on transform error path")
	}
}

func TestFitReleasesIntermediateFrameOnModelError(t *testing.T) {
	stage := &pooledPassthrough{}
	p := &Pipeline{
		Pre:   []preprocess.Transformer{stage},
		Model: failingModel{},
	}
	if _, err := p.Fit(blob(12, testRNG(5)).View(), testRNG(6)); err == nil {
		t.Fatal("failing model did not surface an error")
	}
	if stage.out.Cols != nil {
		t.Error("intermediate pooled frame leaked on model error path")
	}
}
