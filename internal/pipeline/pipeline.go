package pipeline

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"repro/internal/ml"
	"repro/internal/preprocess"
	"repro/internal/tabular"
)

// Pipeline is a sequence of preprocessors followed by one classifier — the
// unit every AutoML system in this repository searches for, trains and
// ships.
type Pipeline struct {
	// Pre holds the ordered preprocessors (data preprocessors first,
	// feature preprocessors after, matching paper Fig. 1).
	Pre []preprocess.Transformer
	// Model is the final classifier.
	Model ml.Classifier
	// ModelFamily is the registry name of the model family.
	ModelFamily string
	fitted      bool
}

// releaseUnless returns v's frame to the pool unless it is one of the
// protected frames (the caller's input, or the frame a later stage still
// reads). Releasing a non-pooled frame is a no-op.
func releaseUnless(v tabular.View, protect ...*tabular.Frame) {
	f := v.Frame()
	if f == nil {
		return
	}
	for _, p := range protect {
		if f == p {
			return
		}
	}
	f.Release()
}

// Fit trains the preprocessors and the model on ds and returns the total
// training cost. Intermediate transform frames are returned to the frame
// pool as soon as the next stage has consumed them; the final transform
// output stays alive because models may retain zero-copy aliases of its
// columns (kNN memorizes them).
func (p *Pipeline) Fit(ds tabular.View, rng *rand.Rand) (ml.Cost, error) {
	if p.Model == nil {
		return ml.Cost{}, fmt.Errorf("pipeline: nil model")
	}
	var cost ml.Cost
	cur := ds
	for _, t := range p.Pre {
		next, c, err := t.FitTransform(cur, rng)
		cost.Add(c)
		if err != nil {
			releaseUnless(cur, ds.Frame())
			return cost, fmt.Errorf("pipeline: %s: %w", t.Name(), err)
		}
		releaseUnless(cur, ds.Frame(), next.Frame())
		cur = next
	}
	c, err := p.Model.Fit(cur, rng)
	cost.Add(c)
	if err != nil {
		// The abandoned pipeline will never predict, so any aliases the
		// model took of cur's columns die with it — safe to pool the frame.
		releaseUnless(cur, ds.Frame())
		return cost, fmt.Errorf("pipeline: %s: %w", p.Model.Name(), err)
	}
	p.fitted = true
	return cost, nil
}

// PredictProba transforms the view through the fitted preprocessors and
// returns the model's probability rows plus the total inference cost.
// Every intermediate frame — including the last transform output, which
// prediction does not retain — goes back to the frame pool.
func (p *Pipeline) PredictProba(x tabular.View) ([][]float64, ml.Cost) {
	var cost ml.Cost
	cur := x
	for _, t := range p.Pre {
		next, c := t.Transform(cur)
		cost.Add(c)
		releaseUnless(cur, x.Frame(), next.Frame())
		cur = next
	}
	proba, c := p.Model.PredictProba(cur)
	cost.Add(c)
	releaseUnless(cur, x.Frame())
	return proba, cost
}

// Predict returns hard labels.
func (p *Pipeline) Predict(x tabular.View) ([]int, ml.Cost) {
	proba, cost := p.PredictProba(x)
	labels := make([]int, len(proba))
	for i, row := range proba {
		best := 0
		for j := 1; j < len(row); j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		labels[i] = best
	}
	return labels, cost
}

// Fitted reports whether Fit has completed successfully.
func (p *Pipeline) Fitted() bool { return p.fitted }

// ParallelFrac reports the Amdahl parallel fraction of fitting the
// pipeline, dominated by the model.
func (p *Pipeline) ParallelFrac() float64 {
	if p.Model == nil {
		return 0
	}
	return p.Model.ParallelFrac()
}

// Name renders a human-readable pipeline description.
func (p *Pipeline) Name() string {
	var parts []string
	for _, t := range p.Pre {
		parts = append(parts, t.Name())
	}
	if p.Model != nil {
		parts = append(parts, p.Model.Name())
	}
	return strings.Join(parts, " -> ")
}
