package pipeline

import (
	"fmt"
	"sort"

	"repro/internal/ml"
	"repro/internal/preprocess"
)

// ModelDef registers one model family: its hyperparameters and a factory.
type ModelDef struct {
	// Name is the family identifier used in search spaces.
	Name string
	// Params lists the family's hyperparameters (prefixed "name.").
	Params []Param
	// Build constructs an untrained classifier from a config.
	Build func(cfg Config) ml.Classifier
	// CostRank orders families by typical training cost (1 = cheapest);
	// cost-frugal search (FLAML) starts from low ranks.
	CostRank int
	// Extended marks opt-in families outside the default search spaces
	// (the lineup the paper's systems shipped with stays stable); list
	// them explicitly in SpaceSpec.Models or via ExtendedModels().
	Extended bool
}

// modelRegistry holds every model family available to search spaces.
var modelRegistry = map[string]ModelDef{
	"gaussian_nb": {
		Name:     "gaussian_nb",
		CostRank: 1,
		Build:    func(Config) ml.Classifier { return ml.NewGaussianNB() },
	},
	"bernoulli_nb": {
		Name:     "bernoulli_nb",
		CostRank: 1,
		Params: []Param{
			{Name: "bernoulli_nb.alpha", Kind: Float, Min: 0.01, Max: 10, Log: true, Default: 1},
		},
		Build: func(cfg Config) ml.Classifier {
			return ml.NewBernoulliNB(cfg.Float("bernoulli_nb.alpha", 1))
		},
	},
	"tree": {
		Name:     "tree",
		CostRank: 2,
		Params: []Param{
			{Name: "tree.max_depth", Kind: Int, Min: 1, Max: 24, Log: true, Default: 10},
			{Name: "tree.min_leaf", Kind: Int, Min: 1, Max: 20, Log: true, Default: 2},
			{Name: "tree.criterion", Kind: Choice, Choices: []string{"gini", "entropy"}, Default: 0},
		},
		Build: func(cfg Config) ml.Classifier {
			crit := ml.Gini
			if cfg.Choice("tree.criterion", []string{"gini", "entropy"}, "gini") == "entropy" {
				crit = ml.Entropy
			}
			return ml.NewTreeClassifier(ml.TreeParams{
				MaxDepth:       cfg.Int("tree.max_depth", 10),
				MinSamplesLeaf: cfg.Int("tree.min_leaf", 2),
				Criterion:      crit,
			})
		},
	},
	"knn": {
		Name:     "knn",
		CostRank: 2,
		Params: []Param{
			{Name: "knn.k", Kind: Int, Min: 1, Max: 25, Log: true, Default: 5},
			{Name: "knn.weighted", Kind: Bool, Default: 0},
		},
		Build: func(cfg Config) ml.Classifier {
			return ml.NewKNN(ml.KNNParams{
				K:                cfg.Int("knn.k", 5),
				DistanceWeighted: cfg.Bool("knn.weighted", false),
			})
		},
	},
	"logreg": {
		Name:     "logreg",
		CostRank: 3,
		Params: []Param{
			{Name: "logreg.epochs", Kind: Int, Min: 5, Max: 60, Log: true, Default: 20},
			{Name: "logreg.lr", Kind: Float, Min: 0.005, Max: 0.5, Log: true, Default: 0.1},
			{Name: "logreg.l2", Kind: Float, Min: 1e-6, Max: 0.1, Log: true, Default: 1e-4},
		},
		Build: func(cfg Config) ml.Classifier {
			return ml.NewLogisticRegression(ml.LinearParams{
				Epochs:       cfg.Int("logreg.epochs", 20),
				LearningRate: cfg.Float("logreg.lr", 0.1),
				L2:           cfg.Float("logreg.l2", 1e-4),
			})
		},
	},
	"svm": {
		Name:     "svm",
		CostRank: 3,
		Params: []Param{
			{Name: "svm.epochs", Kind: Int, Min: 5, Max: 60, Log: true, Default: 20},
			{Name: "svm.lr", Kind: Float, Min: 0.005, Max: 0.5, Log: true, Default: 0.1},
			{Name: "svm.l2", Kind: Float, Min: 1e-6, Max: 0.1, Log: true, Default: 1e-4},
		},
		Build: func(cfg Config) ml.Classifier {
			return ml.NewLinearSVM(ml.LinearParams{
				Epochs:       cfg.Int("svm.epochs", 20),
				LearningRate: cfg.Float("svm.lr", 0.1),
				L2:           cfg.Float("svm.l2", 1e-4),
			})
		},
	},
	"random_forest": {
		Name:     "random_forest",
		CostRank: 4,
		Params: []Param{
			{Name: "random_forest.trees", Kind: Int, Min: 5, Max: 150, Log: true, Default: 50},
			{Name: "random_forest.max_depth", Kind: Int, Min: 2, Max: 24, Log: true, Default: 16},
			{Name: "random_forest.max_features", Kind: Float, Min: 0.1, Max: 1, Default: 0.35},
			{Name: "random_forest.min_leaf", Kind: Int, Min: 1, Max: 20, Log: true, Default: 1},
		},
		Build: func(cfg Config) ml.Classifier {
			return ml.NewForestClassifier(ml.ForestParams{
				Trees:     cfg.Int("random_forest.trees", 50),
				Bootstrap: true,
				Tree: ml.TreeParams{
					MaxDepth:       cfg.Int("random_forest.max_depth", 16),
					MaxFeatures:    cfg.Float("random_forest.max_features", 0.35),
					MinSamplesLeaf: cfg.Int("random_forest.min_leaf", 1),
				},
			})
		},
	},
	"extra_trees": {
		Name:     "extra_trees",
		CostRank: 4,
		Params: []Param{
			{Name: "extra_trees.trees", Kind: Int, Min: 5, Max: 150, Log: true, Default: 50},
			{Name: "extra_trees.max_depth", Kind: Int, Min: 2, Max: 24, Log: true, Default: 16},
			{Name: "extra_trees.max_features", Kind: Float, Min: 0.1, Max: 1, Default: 0.35},
		},
		Build: func(cfg Config) ml.Classifier {
			return ml.NewForestClassifier(ml.ForestParams{
				Trees:      cfg.Int("extra_trees.trees", 50),
				ExtraTrees: true,
				Tree: ml.TreeParams{
					MaxDepth:    cfg.Int("extra_trees.max_depth", 16),
					MaxFeatures: cfg.Float("extra_trees.max_features", 0.35),
				},
			})
		},
	},
	"gradient_boosting": {
		Name:     "gradient_boosting",
		CostRank: 5,
		Params: []Param{
			{Name: "gradient_boosting.rounds", Kind: Int, Min: 10, Max: 120, Log: true, Default: 40},
			{Name: "gradient_boosting.lr", Kind: Float, Min: 0.01, Max: 0.4, Log: true, Default: 0.1},
			{Name: "gradient_boosting.max_depth", Kind: Int, Min: 1, Max: 6, Default: 3},
			{Name: "gradient_boosting.subsample", Kind: Float, Min: 0.4, Max: 1, Default: 1},
		},
		Build: func(cfg Config) ml.Classifier {
			return ml.NewBoostingClassifier(ml.BoostingParams{
				Rounds:       cfg.Int("gradient_boosting.rounds", 40),
				LearningRate: cfg.Float("gradient_boosting.lr", 0.1),
				Subsample:    cfg.Float("gradient_boosting.subsample", 1),
				Tree:         ml.TreeParams{MaxDepth: cfg.Int("gradient_boosting.max_depth", 3)},
			})
		},
	},
	"mlp": {
		Name:     "mlp",
		CostRank: 5,
		Params: []Param{
			{Name: "mlp.width", Kind: Int, Min: 8, Max: 128, Log: true, Default: 32},
			{Name: "mlp.layers", Kind: Int, Min: 1, Max: 2, Default: 1},
			{Name: "mlp.epochs", Kind: Int, Min: 10, Max: 60, Log: true, Default: 30},
			{Name: "mlp.lr", Kind: Float, Min: 0.005, Max: 0.2, Log: true, Default: 0.05},
		},
		Build: func(cfg Config) ml.Classifier {
			width := cfg.Int("mlp.width", 32)
			layers := cfg.Int("mlp.layers", 1)
			hidden := []int{width}
			if layers >= 2 {
				hidden = append(hidden, width)
			}
			return ml.NewMLP(ml.MLPParams{
				Hidden:       hidden,
				Epochs:       cfg.Int("mlp.epochs", 30),
				LearningRate: cfg.Float("mlp.lr", 0.05),
				Batch:        32,
			})
		},
	},
}

// AllModels lists the default model family names in deterministic order
// (extended opt-in families excluded).
func AllModels() []string {
	names := make([]string, 0, len(modelRegistry))
	for name, def := range modelRegistry {
		if !def.Extended {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// ExtendedModels lists the opt-in families beyond the paper-default zoo:
// AdaBoost, QDA and histogram gradient boosting.
func ExtendedModels() []string {
	names := make([]string, 0, 4)
	for name, def := range modelRegistry {
		if def.Extended {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

func init() {
	modelRegistry["adaboost"] = ModelDef{
		Name:     "adaboost",
		CostRank: 4,
		Extended: true,
		Params: []Param{
			{Name: "adaboost.rounds", Kind: Int, Min: 10, Max: 100, Log: true, Default: 30},
			{Name: "adaboost.max_depth", Kind: Int, Min: 1, Max: 4, Default: 1},
		},
		Build: func(cfg Config) ml.Classifier {
			return ml.NewAdaBoost(ml.AdaBoostParams{
				Rounds: cfg.Int("adaboost.rounds", 30),
				Tree:   ml.TreeParams{MaxDepth: cfg.Int("adaboost.max_depth", 1)},
			})
		},
	}
	modelRegistry["qda"] = ModelDef{
		Name:     "qda",
		CostRank: 3,
		Extended: true,
		Params: []Param{
			{Name: "qda.reg", Kind: Float, Min: 1e-4, Max: 1, Log: true, Default: 1e-3},
		},
		Build: func(cfg Config) ml.Classifier {
			return ml.NewQDA(cfg.Float("qda.reg", 1e-3))
		},
	}
	modelRegistry["hist_gradient_boosting"] = ModelDef{
		Name:     "hist_gradient_boosting",
		CostRank: 4,
		Extended: true,
		Params: []Param{
			{Name: "hist_gradient_boosting.rounds", Kind: Int, Min: 10, Max: 150, Log: true, Default: 50},
			{Name: "hist_gradient_boosting.lr", Kind: Float, Min: 0.01, Max: 0.4, Log: true, Default: 0.1},
			{Name: "hist_gradient_boosting.max_depth", Kind: Int, Min: 2, Max: 6, Default: 3},
			{Name: "hist_gradient_boosting.bins", Kind: Int, Min: 8, Max: 64, Log: true, Default: 32},
		},
		Build: func(cfg Config) ml.Classifier {
			return ml.NewHistBoosting(ml.HistBoostingParams{
				Rounds:       cfg.Int("hist_gradient_boosting.rounds", 50),
				LearningRate: cfg.Float("hist_gradient_boosting.lr", 0.1),
				MaxDepth:     cfg.Int("hist_gradient_boosting.max_depth", 3),
				Bins:         cfg.Int("hist_gradient_boosting.bins", 32),
			})
		},
	}
}

// ModelByName returns the registered model definition.
func ModelByName(name string) (ModelDef, bool) {
	def, ok := modelRegistry[name]
	return def, ok
}

// ModelsByCost lists families sorted by ascending CostRank (ties by name),
// the curriculum order for cost-frugal search.
func ModelsByCost() []string {
	names := AllModels()
	sort.SliceStable(names, func(a, b int) bool {
		ra, rb := modelRegistry[names[a]].CostRank, modelRegistry[names[b]].CostRank
		if ra != rb {
			return ra < rb
		}
		return names[a] < names[b]
	})
	return names
}

// Preprocessor choice lists shared by space construction.
var (
	scalerChoices  = []string{"none", "standard", "minmax", "robust"}
	featureChoices = []string{"none", "select_k_best", "pca", "variance_threshold"}
)

// SpaceSpec declares the shape of an AutoML system's search space
// (paper Table 1).
type SpaceSpec struct {
	// Models lists the allowed model families; empty means all.
	Models []string
	// DataPreprocessors includes scaler and encoder choices.
	DataPreprocessors bool
	// FeaturePreprocessors includes feature selection/projection
	// choices.
	FeaturePreprocessors bool
	// ComplexityCaps shrinks a family's numeric hyperparameter upper
	// bounds: a cap c in (0,1) rescales every numeric range to
	// [Min, Min + c*(Max-Min)]. This is how the development-stage
	// optimizer prunes the ML hyperparameter space itself (paper §3.7).
	ComplexityCaps map[string]float64
}

// FullSpec returns the richest space (ASKL-style: data and feature
// preprocessors plus every model).
func FullSpec() SpaceSpec {
	return SpaceSpec{Models: AllModels(), DataPreprocessors: true, FeaturePreprocessors: true}
}

// models returns the effective family list.
func (ss SpaceSpec) models() []string {
	if len(ss.Models) == 0 {
		return AllModels()
	}
	return ss.Models
}

// Space materializes the spec's configuration space: a top-level model
// choice, every family's conditional hyperparameters, and the preprocessor
// choices the spec enables.
func (ss SpaceSpec) Space() (*Space, error) {
	models := ss.models()
	if len(models) == 0 {
		return nil, fmt.Errorf("pipeline: space spec with no models")
	}
	params := []Param{{Name: "model", Kind: Choice, Choices: models}}
	for _, name := range models {
		def, ok := modelRegistry[name]
		if !ok {
			return nil, fmt.Errorf("pipeline: unknown model family %q", name)
		}
		cap, hasCap := ss.ComplexityCaps[name]
		for _, p := range def.Params {
			if hasCap && cap > 0 && cap < 1 && (p.Kind == Int || p.Kind == Float) && p.Max > p.Min {
				p.Max = p.Min + cap*(p.Max-p.Min)
				if p.Default > p.Max {
					p.Default = p.Max
				}
			}
			params = append(params, p)
		}
	}
	if ss.DataPreprocessors {
		params = append(params,
			Param{Name: "scaler", Kind: Choice, Choices: scalerChoices, Default: 1},
			Param{Name: "imputer_median", Kind: Bool},
			Param{Name: "one_hot", Kind: Bool, Default: 1},
		)
	}
	if ss.FeaturePreprocessors {
		params = append(params,
			Param{Name: "feature_pre", Kind: Choice, Choices: featureChoices},
			Param{Name: "feature_pre.k_frac", Kind: Float, Min: 0.1, Max: 1, Default: 0.5},
		)
	}
	return NewSpace(params...), nil
}

// Build constructs the pipeline a config describes under this spec.
func (ss SpaceSpec) Build(cfg Config, features int) (*Pipeline, error) {
	models := ss.models()
	name := cfg.Choice("model", models, models[0])
	def, ok := modelRegistry[name]
	if !ok {
		return nil, fmt.Errorf("pipeline: unknown model family %q", name)
	}
	p := &Pipeline{Model: def.Build(cfg), ModelFamily: name}
	if ss.DataPreprocessors {
		p.Pre = append(p.Pre, &preprocess.Imputer{Median: cfg.Bool("imputer_median", false)})
		if cfg.Bool("one_hot", true) {
			p.Pre = append(p.Pre, &preprocess.OneHotEncoder{})
		}
		switch cfg.Choice("scaler", scalerChoices, "standard") {
		case "standard":
			p.Pre = append(p.Pre, &preprocess.StandardScaler{})
		case "minmax":
			p.Pre = append(p.Pre, &preprocess.MinMaxScaler{})
		case "robust":
			p.Pre = append(p.Pre, &preprocess.RobustScaler{})
		}
	}
	if ss.FeaturePreprocessors {
		kFrac := cfg.Float("feature_pre.k_frac", 0.5)
		k := int(kFrac * float64(features))
		if k < 1 {
			k = 1
		}
		switch cfg.Choice("feature_pre", featureChoices, "none") {
		case "select_k_best":
			p.Pre = append(p.Pre, &preprocess.SelectKBest{K: k})
		case "pca":
			if k > 16 {
				k = 16
			}
			p.Pre = append(p.Pre, &preprocess.PCA{K: k})
		case "variance_threshold":
			p.Pre = append(p.Pre, &preprocess.VarianceThreshold{Threshold: 0.01})
		}
	}
	return p, nil
}
