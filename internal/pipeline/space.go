// Package pipeline composes preprocessors and models into ML pipelines and
// describes the hyperparameter configuration spaces AutoML systems search.
//
// It is the reproduction's equivalent of scikit-learn's Pipeline plus a
// small ConfigSpace: a Space is an ordered list of typed parameters
// (float, int, bool, choice), a Config assigns each a value, and a
// SpaceSpec declares which model families and preprocessor groups a given
// AutoML system exposes (paper Table 1: ASKL searches data/feature
// preprocessors and models, CAML omits feature preprocessors, FLAML
// searches models only).
package pipeline

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// ParamKind is the type of a hyperparameter.
type ParamKind int

const (
	// Float is a continuous parameter in [Min, Max].
	Float ParamKind = iota
	// Int is an integer parameter in [Min, Max].
	Int
	// Bool is a binary flag.
	Bool
	// Choice is a categorical parameter over Choices.
	Choice
)

// Param describes one hyperparameter.
type Param struct {
	// Name is the unique, dot-prefixed parameter name (e.g. "rf.trees").
	Name string
	// Kind is the parameter type.
	Kind ParamKind
	// Min and Max bound Float and Int parameters.
	Min, Max float64
	// Log samples Float/Int parameters log-uniformly.
	Log bool
	// Choices lists the options of a Choice parameter.
	Choices []string
	// Default is the value used when a config does not set the
	// parameter.
	Default float64
}

// Space is an ordered set of parameters.
type Space struct {
	Params []Param
	index  map[string]int
}

// NewSpace builds a space from parameters, indexing them by name.
func NewSpace(params ...Param) *Space {
	s := &Space{Params: params, index: make(map[string]int, len(params))}
	for i, p := range params {
		s.index[p.Name] = i
	}
	return s
}

// Lookup returns the parameter with the given name.
func (s *Space) Lookup(name string) (Param, bool) {
	i, ok := s.index[name]
	if !ok {
		return Param{}, false
	}
	return s.Params[i], true
}

// Config assigns a raw float value to each parameter name. Ints are stored
// rounded, bools as 0/1, choices as the option index.
type Config map[string]float64

// Clone copies the config.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Float reads a float parameter, falling back to def when unset.
func (c Config) Float(name string, def float64) float64 {
	if v, ok := c[name]; ok {
		return v
	}
	return def
}

// Int reads an integer parameter.
func (c Config) Int(name string, def int) int {
	if v, ok := c[name]; ok {
		return int(math.Round(v))
	}
	return def
}

// Bool reads a boolean parameter.
func (c Config) Bool(name string, def bool) bool {
	if v, ok := c[name]; ok {
		return v >= 0.5
	}
	return def
}

// Choice reads a categorical parameter and returns the selected option,
// clamping out-of-range indices.
func (c Config) Choice(name string, choices []string, def string) string {
	v, ok := c[name]
	if !ok || len(choices) == 0 {
		return def
	}
	i := int(math.Round(v))
	if i < 0 {
		i = 0
	}
	if i >= len(choices) {
		i = len(choices) - 1
	}
	return choices[i]
}

// Key renders the config as a canonical string for deduplication.
func (c Config) Key() string {
	names := make([]string, 0, len(c))
	for k := range c {
		names = append(names, k)
	}
	sort.Strings(names)
	out := ""
	for _, k := range names {
		out += fmt.Sprintf("%s=%.6g;", k, c[k])
	}
	return out
}

// Sample draws a uniform random configuration from the space.
func (s *Space) Sample(rng *rand.Rand) Config {
	cfg := make(Config, len(s.Params))
	for _, p := range s.Params {
		cfg[p.Name] = sampleParam(p, rng)
	}
	return cfg
}

func sampleParam(p Param, rng *rand.Rand) float64 {
	switch p.Kind {
	case Float:
		return sampleRange(p, rng)
	case Int:
		return math.Round(sampleRange(p, rng))
	case Bool:
		return float64(rng.IntN(2))
	case Choice:
		if len(p.Choices) == 0 {
			return 0
		}
		return float64(rng.IntN(len(p.Choices)))
	default:
		return p.Default
	}
}

func sampleRange(p Param, rng *rand.Rand) float64 {
	if p.Max <= p.Min {
		return p.Min
	}
	if p.Log && p.Min > 0 {
		lo, hi := math.Log(p.Min), math.Log(p.Max)
		return math.Exp(lo + rng.Float64()*(hi-lo))
	}
	return p.Min + rng.Float64()*(p.Max-p.Min)
}

// Default returns the configuration of all default values.
func (s *Space) Default() Config {
	cfg := make(Config, len(s.Params))
	for _, p := range s.Params {
		cfg[p.Name] = p.Default
	}
	return cfg
}

// Vector encodes a config as a fixed-length normalized feature vector for
// surrogate models: floats/ints map to [0,1] (log-scaled where declared),
// bools to {0,1}, choices to their normalized index.
func (s *Space) Vector(cfg Config) []float64 {
	vec := make([]float64, len(s.Params))
	for i, p := range s.Params {
		v, ok := cfg[p.Name]
		if !ok {
			v = p.Default
		}
		switch p.Kind {
		case Float, Int:
			if p.Max <= p.Min {
				vec[i] = 0
			} else if p.Log && p.Min > 0 {
				vec[i] = (math.Log(clampF(v, p.Min, p.Max)) - math.Log(p.Min)) / (math.Log(p.Max) - math.Log(p.Min))
			} else {
				vec[i] = (clampF(v, p.Min, p.Max) - p.Min) / (p.Max - p.Min)
			}
		case Bool:
			if v >= 0.5 {
				vec[i] = 1
			}
		case Choice:
			if len(p.Choices) > 1 {
				vec[i] = clampF(v, 0, float64(len(p.Choices)-1)) / float64(len(p.Choices)-1)
			}
		}
	}
	return vec
}

// Mutate returns a copy of cfg with roughly `strength` fraction of
// parameters resampled locally (Gaussian perturbation for numeric, uniform
// redraw for categorical). At least one parameter always changes.
func (s *Space) Mutate(cfg Config, strength float64, rng *rand.Rand) Config {
	out := cfg.Clone()
	changed := false
	for _, p := range s.Params {
		if rng.Float64() > strength {
			continue
		}
		v := perturbParam(p, out[p.Name], rng)
		if v != out[p.Name] {
			changed = true
		}
		out[p.Name] = v
	}
	// Guarantee a real change: categorical/boolean perturbations can
	// re-draw the current value, so retry until one parameter differs.
	for attempts := 0; !changed && len(s.Params) > 0 && attempts < 32; attempts++ {
		p := s.Params[rng.IntN(len(s.Params))]
		v := perturbParam(p, out[p.Name], rng)
		if v != out[p.Name] {
			out[p.Name] = v
			changed = true
		}
	}
	return out
}

func perturbParam(p Param, cur float64, rng *rand.Rand) float64 {
	switch p.Kind {
	case Float, Int:
		if p.Max <= p.Min {
			return p.Min
		}
		var v float64
		if p.Log && p.Min > 0 {
			span := math.Log(p.Max) - math.Log(p.Min)
			v = math.Exp(math.Log(clampF(cur, p.Min, p.Max)) + 0.2*span*rng.NormFloat64())
		} else {
			span := p.Max - p.Min
			v = cur + 0.2*span*rng.NormFloat64()
		}
		v = clampF(v, p.Min, p.Max)
		if p.Kind == Int {
			v = math.Round(v)
		}
		return v
	case Bool:
		return float64(rng.IntN(2))
	case Choice:
		if len(p.Choices) == 0 {
			return 0
		}
		return float64(rng.IntN(len(p.Choices)))
	default:
		return cur
	}
}

// Crossover combines two configs parameter-wise (uniform crossover), as
// used by the genetic-programming search.
func (s *Space) Crossover(a, b Config, rng *rand.Rand) Config {
	out := make(Config, len(s.Params))
	for _, p := range s.Params {
		src := a
		if rng.IntN(2) == 1 {
			src = b
		}
		if v, ok := src[p.Name]; ok {
			out[p.Name] = v
		} else {
			out[p.Name] = p.Default
		}
	}
	return out
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
