package search

import (
	"math"
	"math/rand/v2"
)

// KMeansResult is the output of Lloyd's algorithm.
type KMeansResult struct {
	// Centroids holds the k cluster centers.
	Centroids [][]float64
	// Assignment maps each point to its centroid index.
	Assignment []int
}

// KMeans clusters points into k clusters with k-means++ initialization and
// Lloyd iterations. The paper's development-stage optimizer clusters
// datasets by meta-features and picks the dataset closest to each centroid
// as the representative (§2.5, Fig. 2).
func KMeans(points [][]float64, k int, iters int, rng *rand.Rand) KMeansResult {
	n := len(points)
	if n == 0 || k < 1 {
		return KMeansResult{}
	}
	if k > n {
		k = n
	}
	if iters < 1 {
		iters = 25
	}
	centroids := kmeansPlusPlus(points, k, rng)
	assignment := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i, p := range points {
			best, bestDist := 0, math.Inf(1)
			for c, centroid := range centroids {
				d := sqDist(p, centroid)
				if d < bestDist {
					best, bestDist = c, d
				}
			}
			if assignment[i] != best {
				assignment[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		dims := len(points[0])
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, dims)
		}
		for i, p := range points {
			c := assignment[i]
			counts[c]++
			for j, v := range p {
				sums[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed empty clusters from a random point.
				centroids[c] = append([]float64(nil), points[rng.IntN(n)]...)
				continue
			}
			for j := range sums[c] {
				sums[c][j] /= float64(counts[c])
			}
			centroids[c] = sums[c]
		}
		if !changed && it > 0 {
			break
		}
	}
	return KMeansResult{Centroids: centroids, Assignment: assignment}
}

// ClosestToCentroids returns, for each centroid, the index of the nearest
// point — the representative selection of paper Fig. 2. Each point
// represents at most one centroid.
func ClosestToCentroids(points [][]float64, centroids [][]float64) []int {
	used := make(map[int]bool)
	reps := make([]int, 0, len(centroids))
	for _, centroid := range centroids {
		best, bestDist := -1, math.Inf(1)
		for i, p := range points {
			if used[i] {
				continue
			}
			d := sqDist(p, centroid)
			if d < bestDist {
				best, bestDist = i, d
			}
		}
		if best >= 0 {
			used[best] = true
			reps = append(reps, best)
		}
	}
	return reps
}

func kmeansPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, append([]float64(nil), points[rng.IntN(n)]...))
	dists := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			dists[i] = best
			total += best
		}
		if total <= 0 {
			centroids = append(centroids, append([]float64(nil), points[rng.IntN(n)]...))
			continue
		}
		u := rng.Float64() * total
		acc := 0.0
		pick := n - 1
		for i, d := range dists {
			acc += d
			if u < acc {
				pick = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), points[pick]...))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	var sum float64
	for i := range a {
		diff := a[i] - b[i]
		sum += diff * diff
	}
	return sum
}
