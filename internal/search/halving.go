package search

import (
	"sort"
)

// HalvingOptions configure successive halving.
type HalvingOptions struct {
	// Eta is the elimination factor per rung (default 3: keep the top
	// third).
	Eta int
	// MinFidelity and MaxFidelity bound the resource fraction per rung
	// (e.g. the training-subset fraction); fidelity multiplies by Eta
	// per rung.
	MinFidelity, MaxFidelity float64
}

func (o HalvingOptions) normalized() HalvingOptions {
	if o.Eta < 2 {
		o.Eta = 3
	}
	if o.MinFidelity <= 0 {
		o.MinFidelity = 1.0 / 8
	}
	if o.MaxFidelity <= 0 || o.MaxFidelity > 1 {
		o.MaxFidelity = 1
	}
	if o.MinFidelity > o.MaxFidelity {
		o.MinFidelity = o.MaxFidelity
	}
	return o
}

// HalvingEval evaluates arm i at the given fidelity and returns its score
// (higher is better) and whether the run succeeded. Returning ok == false
// eliminates the arm immediately — this is how CAML prunes pipelines that
// violate constraints "as early as possible" (paper §2.2).
type HalvingEval func(arm int, fidelity float64) (score float64, ok bool)

// HalvingResult reports the outcome of a successive-halving run.
type HalvingResult struct {
	// Survivors holds the arm indices alive after the last rung, best
	// first.
	Survivors []int
	// Scores maps each surviving arm to its last-rung score.
	Scores map[int]float64
	// Rungs is the number of rungs executed.
	Rungs int
}

// SuccessiveHalving runs arms through rungs of increasing fidelity,
// keeping the top 1/Eta per rung. The eval callback is also the budget
// hook: callers evaluate under the virtual clock and can return ok=false
// once their budget is exhausted, freezing the current standings.
func SuccessiveHalving(arms int, eval HalvingEval, opts HalvingOptions) HalvingResult {
	opts = opts.normalized()
	alive := make([]int, arms)
	for i := range alive {
		alive[i] = i
	}
	scores := make(map[int]float64, arms)
	rungs := 0
	for fidelity := opts.MinFidelity; len(alive) > 0; fidelity *= float64(opts.Eta) {
		if fidelity > opts.MaxFidelity {
			fidelity = opts.MaxFidelity
		}
		rungs++
		var kept []int
		for _, arm := range alive {
			score, ok := eval(arm, fidelity)
			if !ok {
				delete(scores, arm)
				continue
			}
			scores[arm] = score
			kept = append(kept, arm)
		}
		alive = kept
		sort.SliceStable(alive, func(a, b int) bool { return scores[alive[a]] > scores[alive[b]] })
		if fidelity >= opts.MaxFidelity || len(alive) <= 1 {
			break
		}
		next := len(alive) / opts.Eta
		if next < 1 {
			next = 1
		}
		for _, dropped := range alive[next:] {
			delete(scores, dropped)
		}
		alive = alive[:next]
	}
	return HalvingResult{Survivors: alive, Scores: scores, Rungs: rungs}
}
