package search

import (
	"math"
	"math/rand/v2"
	"sort"
)

// NSGA-II (Deb et al. 2002) is the multi-objective evolutionary selection
// TPOT uses to evolve pipelines, trading predictive performance against
// pipeline complexity. Objectives follow the minimization convention.

// NonDominatedSort partitions objective vectors into Pareto fronts
// (front 0 = non-dominated). All objectives are minimized.
func NonDominatedSort(objectives [][]float64) [][]int {
	n := len(objectives)
	dominatedBy := make([]int, n) // count of solutions dominating i
	dominates := make([][]int, n) // solutions i dominates
	var fronts [][]int
	var first []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if dominatesVec(objectives[i], objectives[j]) {
				dominates[i] = append(dominates[i], j)
			} else if dominatesVec(objectives[j], objectives[i]) {
				dominatedBy[i]++
			}
		}
		if dominatedBy[i] == 0 {
			first = append(first, i)
		}
	}
	front := first
	for len(front) > 0 {
		fronts = append(fronts, front)
		var next []int
		for _, i := range front {
			for _, j := range dominates[i] {
				dominatedBy[j]--
				if dominatedBy[j] == 0 {
					next = append(next, j)
				}
			}
		}
		front = next
	}
	return fronts
}

// dominatesVec reports whether a Pareto-dominates b (minimization).
func dominatesVec(a, b []float64) bool {
	better := false
	for k := range a {
		if a[k] > b[k] {
			return false
		}
		if a[k] < b[k] {
			better = true
		}
	}
	return better
}

// CrowdingDistance computes the NSGA-II crowding distance of the members
// of one front. Boundary solutions get +Inf.
func CrowdingDistance(objectives [][]float64, front []int) map[int]float64 {
	dist := make(map[int]float64, len(front))
	for _, i := range front {
		dist[i] = 0
	}
	if len(front) == 0 {
		return dist
	}
	numObjectives := len(objectives[front[0]])
	for k := 0; k < numObjectives; k++ {
		sorted := append([]int(nil), front...)
		sort.Slice(sorted, func(a, b int) bool {
			return objectives[sorted[a]][k] < objectives[sorted[b]][k]
		})
		lo := objectives[sorted[0]][k]
		hi := objectives[sorted[len(sorted)-1]][k]
		dist[sorted[0]] = math.Inf(1)
		dist[sorted[len(sorted)-1]] = math.Inf(1)
		if hi-lo < 1e-12 {
			continue
		}
		for p := 1; p < len(sorted)-1; p++ {
			dist[sorted[p]] += (objectives[sorted[p+1]][k] - objectives[sorted[p-1]][k]) / (hi - lo)
		}
	}
	return dist
}

// NSGA2Select returns the indices of the n survivors by front rank then
// crowding distance.
func NSGA2Select(objectives [][]float64, n int) []int {
	if n >= len(objectives) {
		all := make([]int, len(objectives))
		for i := range all {
			all[i] = i
		}
		return all
	}
	var selected []int
	for _, front := range NonDominatedSort(objectives) {
		if len(selected)+len(front) <= n {
			selected = append(selected, front...)
			continue
		}
		dist := CrowdingDistance(objectives, front)
		sorted := append([]int(nil), front...)
		sort.Slice(sorted, func(a, b int) bool { return dist[sorted[a]] > dist[sorted[b]] })
		selected = append(selected, sorted[:n-len(selected)]...)
		break
	}
	return selected
}

// BinaryTournament picks one index out of the population by two-way
// tournament on (front rank, crowding distance).
func BinaryTournament(objectives [][]float64, rng *rand.Rand) int {
	n := len(objectives)
	if n == 0 {
		return -1
	}
	rank := make([]int, n)
	for r, front := range NonDominatedSort(objectives) {
		for _, i := range front {
			rank[i] = r
		}
	}
	a, b := rng.IntN(n), rng.IntN(n)
	if rank[a] != rank[b] {
		if rank[a] < rank[b] {
			return a
		}
		return b
	}
	// Same rank: prefer the less crowded.
	front := []int{a, b}
	dist := CrowdingDistance(objectives, front)
	if dist[a] >= dist[b] {
		return a
	}
	return b
}
