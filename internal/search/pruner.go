package search

import "sort"

// MedianPruner implements the median stopping rule the paper's
// development-stage optimizer uses (§2.5): a trial reporting an
// intermediate value below the median of completed trials' values at the
// same step is pruned. "For poor-performing AutoML parameters, evaluating
// a few datasets is sufficient to detect that the parameters are not
// performing well."
type MedianPruner struct {
	// MinTrials is the number of completed trials required before
	// pruning activates (default 4).
	MinTrials int
	// completed[step] holds the intermediate values of completed trials
	// at that step.
	completed map[int][]float64
	trials    int
}

// NewMedianPruner constructs a pruner.
func NewMedianPruner() *MedianPruner {
	return &MedianPruner{MinTrials: 4, completed: make(map[int][]float64)}
}

// CompleteTrial records the per-step intermediate values of a finished
// trial.
func (p *MedianPruner) CompleteTrial(stepValues []float64) {
	for step, v := range stepValues {
		p.completed[step] = append(p.completed[step], v)
	}
	p.trials++
}

// ShouldPrune reports whether a running trial with the given value at the
// given step should stop.
func (p *MedianPruner) ShouldPrune(step int, value float64) bool {
	if p.trials < p.MinTrials {
		return false
	}
	values := p.completed[step]
	if len(values) == 0 {
		return false
	}
	return value < median(values)
}

// Trials reports the number of completed trials recorded.
func (p *MedianPruner) Trials() int { return p.trials }

func median(values []float64) float64 {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}
