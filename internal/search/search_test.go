package search

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/pipeline"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0x5ea)) }

// quadSpace is a simple two-parameter space for optimizer tests.
func quadSpace() *pipeline.Space {
	return pipeline.NewSpace(
		pipeline.Param{Name: "x", Kind: pipeline.Float, Min: 0, Max: 1, Default: 0.5},
		pipeline.Param{Name: "y", Kind: pipeline.Float, Min: 0, Max: 1, Default: 0.5},
	)
}

// quadObjective peaks at (0.7, 0.3).
func quadObjective(cfg pipeline.Config) float64 {
	dx := cfg["x"] - 0.7
	dy := cfg["y"] - 0.3
	return 1 - dx*dx - dy*dy
}

func TestBOBeatsRandomSearch(t *testing.T) {
	// 80 evaluations gives the surrogate a robust margin over random
	// search: max-of-uniform plateaus while BO keeps refining the
	// incumbent. Short budgets make this comparison a coin flip that is
	// sensitive to the exact RNG stream threading inside the forest
	// surrogate (tree streams are pre-split for parallel fitting).
	const evals = 80
	runBO := func(seed uint64) float64 {
		rng := testRNG(seed)
		bo := NewBO(quadSpace(), rng)
		for i := 0; i < evals; i++ {
			cfg, _ := bo.Suggest()
			bo.Observe(cfg, quadObjective(cfg))
		}
		best, _ := bo.Best()
		return best.Score
	}
	runRandom := func(seed uint64) float64 {
		rng := testRNG(seed)
		space := quadSpace()
		best := math.Inf(-1)
		for i := 0; i < evals; i++ {
			if s := quadObjective(space.Sample(rng)); s > best {
				best = s
			}
		}
		return best
	}
	var boSum, rndSum float64
	const trials = 10
	for s := uint64(0); s < trials; s++ {
		boSum += runBO(s)
		rndSum += runRandom(s)
	}
	if boSum <= rndSum {
		t.Errorf("BO (%.4f avg) did not beat random search (%.4f avg) on a smooth objective",
			boSum/trials, rndSum/trials)
	}
}

func TestBOBestEmpty(t *testing.T) {
	bo := NewBO(quadSpace(), testRNG(1))
	if _, ok := bo.Best(); ok {
		t.Error("Best reported an observation before any Observe")
	}
	// Early suggestions (before MinObservations) are random samples and
	// free of surrogate cost.
	cfg, cost := bo.Suggest()
	if len(cfg) == 0 {
		t.Error("empty suggestion")
	}
	if cost.Total() != 0 {
		t.Error("random-phase suggestion charged surrogate cost")
	}
	bo.Observe(cfg, 0.5)
	if len(bo.Observations()) != 1 {
		t.Error("observation not recorded")
	}
}

func TestBOSurrogateCostCharged(t *testing.T) {
	rng := testRNG(2)
	bo := NewBO(quadSpace(), rng)
	for i := 0; i < 5; i++ {
		cfg := quadSpace().Sample(rng)
		bo.Observe(cfg, quadObjective(cfg))
	}
	_, cost := bo.Suggest()
	if cost.Total() <= 0 {
		t.Error("surrogate-phase suggestion reported no compute cost — BO overhead must hit the meter")
	}
}

func TestExpectedImprovement(t *testing.T) {
	// Far-above-best mean with no uncertainty: EI == improvement.
	if got := expectedImprovement(2, 0, 1, 0); got != 1 {
		t.Errorf("EI = %v, want 1", got)
	}
	// Below best with no uncertainty: EI == 0.
	if got := expectedImprovement(0.5, 0, 1, 0); got != 0 {
		t.Errorf("EI = %v, want 0", got)
	}
	// Uncertainty adds exploration value even below the incumbent.
	if got := expectedImprovement(0.9, 0.5, 1, 0); got <= 0 {
		t.Errorf("EI = %v, want > 0 under uncertainty", got)
	}
}

func TestSuccessiveHalvingKeepsBestArm(t *testing.T) {
	// Arm score is arm index / 10 at every fidelity: arm 9 must win.
	res := SuccessiveHalving(10, func(arm int, fidelity float64) (float64, bool) {
		return float64(arm) / 10, true
	}, HalvingOptions{})
	if len(res.Survivors) == 0 || res.Survivors[0] != 9 {
		t.Errorf("survivors %v, want arm 9 first", res.Survivors)
	}
	if res.Rungs < 2 {
		t.Errorf("only %d rungs executed", res.Rungs)
	}
}

func TestSuccessiveHalvingEliminatesFailures(t *testing.T) {
	res := SuccessiveHalving(4, func(arm int, fidelity float64) (float64, bool) {
		if arm%2 == 0 {
			return 0, false // constraint violation — pruned immediately
		}
		return float64(arm), true
	}, HalvingOptions{})
	for _, s := range res.Survivors {
		if s%2 == 0 {
			t.Errorf("failing arm %d survived", s)
		}
	}
	if len(res.Survivors) == 0 {
		t.Error("all arms eliminated")
	}
}

func TestSuccessiveHalvingShrinksPerRung(t *testing.T) {
	evaluations := map[float64]int{}
	SuccessiveHalving(9, func(arm int, fidelity float64) (float64, bool) {
		evaluations[fidelity]++
		return float64(arm), true
	}, HalvingOptions{Eta: 3, MinFidelity: 0.25, MaxFidelity: 1})
	if evaluations[0.25] != 9 {
		t.Errorf("first rung evaluated %d arms, want 9", evaluations[0.25])
	}
	if evaluations[0.75] != 3 {
		t.Errorf("second rung evaluated %d arms, want 3 (eta=3)", evaluations[0.75])
	}
	if evaluations[1] != 1 {
		t.Errorf("final rung evaluated %d arms, want 1", evaluations[1])
	}
}

func TestMedianPruner(t *testing.T) {
	p := NewMedianPruner()
	p.MinTrials = 2
	if p.ShouldPrune(0, -100) {
		t.Error("pruned before any completed trial")
	}
	p.CompleteTrial([]float64{1, 2, 3})
	p.CompleteTrial([]float64{3, 4, 5})
	// Median at step 0 is 2: a trial at 1.5 is pruned, one at 2.5 not.
	if !p.ShouldPrune(0, 1.5) {
		t.Error("below-median trial not pruned")
	}
	if p.ShouldPrune(0, 2.5) {
		t.Error("above-median trial pruned")
	}
	if p.ShouldPrune(10, 0) {
		t.Error("pruned at a step with no history")
	}
	if p.Trials() != 2 {
		t.Errorf("trials = %d, want 2", p.Trials())
	}
}

func TestNonDominatedSort(t *testing.T) {
	objectives := [][]float64{
		{1, 1}, // front 0
		{2, 2}, // dominated by {1,1}
		{0, 3}, // front 0 (trade-off)
		{3, 3}, // dominated by everything
	}
	fronts := NonDominatedSort(objectives)
	if len(fronts) < 2 {
		t.Fatalf("fronts %v", fronts)
	}
	first := map[int]bool{}
	for _, i := range fronts[0] {
		first[i] = true
	}
	if !first[0] || !first[2] || first[1] || first[3] {
		t.Errorf("front 0 = %v, want {0,2}", fronts[0])
	}
	// The fronts partition the population.
	total := 0
	for _, f := range fronts {
		total += len(f)
	}
	if total != len(objectives) {
		t.Errorf("fronts cover %d of %d", total, len(objectives))
	}
}

func TestCrowdingDistanceBoundaries(t *testing.T) {
	objectives := [][]float64{{0, 2}, {1, 1}, {2, 0}}
	dist := CrowdingDistance(objectives, []int{0, 1, 2})
	if !math.IsInf(dist[0], 1) || !math.IsInf(dist[2], 1) {
		t.Errorf("boundary solutions not infinite: %v", dist)
	}
	if math.IsInf(dist[1], 1) || dist[1] <= 0 {
		t.Errorf("interior crowding %v", dist[1])
	}
}

func TestNSGA2Select(t *testing.T) {
	objectives := [][]float64{{1, 1}, {2, 2}, {0, 3}, {3, 3}, {0.5, 0.5}}
	selected := NSGA2Select(objectives, 2)
	if len(selected) != 2 {
		t.Fatalf("selected %d, want 2", len(selected))
	}
	// {0.5,0.5} dominates {1,1}: it must always survive.
	found := false
	for _, i := range selected {
		if i == 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("dominant solution dropped: %v", selected)
	}
	// Requesting more than available returns everything.
	if got := NSGA2Select(objectives, 10); len(got) != 5 {
		t.Errorf("overselect returned %d", len(got))
	}
}

func TestBinaryTournamentPrefersDominant(t *testing.T) {
	objectives := [][]float64{{0, 0}, {5, 5}}
	rng := testRNG(3)
	wins := 0
	for i := 0; i < 100; i++ {
		if BinaryTournament(objectives, rng) == 0 {
			wins++
		}
	}
	if wins < 70 {
		t.Errorf("dominant solution won only %d/100 tournaments", wins)
	}
	if BinaryTournament(nil, rng) != -1 {
		t.Error("empty tournament should return -1")
	}
}

func TestKMeansClusterStructure(t *testing.T) {
	rng := testRNG(4)
	var points [][]float64
	// Three well-separated clusters of 20 points.
	for c := 0; c < 3; c++ {
		for i := 0; i < 20; i++ {
			points = append(points, []float64{
				10*float64(c) + rng.NormFloat64(),
				10*float64(c) + rng.NormFloat64(),
			})
		}
	}
	res := KMeans(points, 3, 50, rng)
	if len(res.Centroids) != 3 {
		t.Fatalf("%d centroids", len(res.Centroids))
	}
	// All members of one true cluster share an assignment.
	for c := 0; c < 3; c++ {
		first := res.Assignment[c*20]
		for i := 1; i < 20; i++ {
			if res.Assignment[c*20+i] != first {
				t.Errorf("cluster %d split across centroids", c)
				break
			}
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if res := KMeans(nil, 3, 10, testRNG(5)); res.Centroids != nil {
		t.Error("empty input produced centroids")
	}
	points := [][]float64{{1}, {2}}
	res := KMeans(points, 5, 10, testRNG(6))
	if len(res.Centroids) != 2 {
		t.Errorf("k clamps to n: got %d centroids", len(res.Centroids))
	}
}

func TestClosestToCentroidsDistinct(t *testing.T) {
	points := [][]float64{{0}, {0.1}, {10}, {10.1}}
	centroids := [][]float64{{0}, {10}}
	reps := ClosestToCentroids(points, centroids)
	if len(reps) != 2 {
		t.Fatalf("reps %v", reps)
	}
	if reps[0] == reps[1] {
		t.Error("one point represents two centroids")
	}
	// Identical centroids still pick distinct representatives.
	reps = ClosestToCentroids(points, [][]float64{{0}, {0}})
	if reps[0] == reps[1] {
		t.Error("duplicate centroids share a representative")
	}
}
