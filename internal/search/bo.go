// Package search implements the search strategies of the paper's AutoML
// systems: Bayesian optimization with a random-forest surrogate (ASKL,
// CAML), successive halving (CAML), NSGA-II genetic programming (TPOT),
// median pruning (the development-stage optimizer, §2.5), and k-means
// clustering (representative-dataset selection, §2.5).
package search

import (
	"math"
	"math/rand/v2"

	"repro/internal/ml"
	"repro/internal/pipeline"
	"repro/internal/tabular"
)

// Observation is one evaluated configuration with its score (higher is
// better).
type Observation struct {
	Config pipeline.Config
	Score  float64
}

// BO is Bayesian optimization over a pipeline configuration space using a
// random-forest surrogate and expected improvement — the strategy of
// auto-sklearn (SMAC-style) and CAML. The surrogate's own compute is
// returned from Suggest so callers can charge it to the energy meter: BO
// overhead is part of execution energy.
type BO struct {
	// Space is the configuration space searched.
	Space *pipeline.Space
	// Candidates is the number of random/mutated candidates scored per
	// suggestion (default 64).
	Candidates int
	// Xi is the expected-improvement exploration margin.
	Xi float64
	// MinObservations is the number of observations before the
	// surrogate takes over from random sampling (default 3).
	MinObservations int

	obs []Observation
	rng *rand.Rand
}

// NewBO constructs a Bayesian optimizer over the space.
func NewBO(space *pipeline.Space, rng *rand.Rand) *BO {
	return &BO{Space: space, Candidates: 64, Xi: 0.01, MinObservations: 3, rng: rng}
}

// Observe records an evaluated configuration.
func (b *BO) Observe(cfg pipeline.Config, score float64) {
	b.obs = append(b.obs, Observation{Config: cfg, Score: score})
}

// Observations returns the recorded history.
func (b *BO) Observations() []Observation { return b.obs }

// Best returns the best observation so far.
func (b *BO) Best() (Observation, bool) {
	if len(b.obs) == 0 {
		return Observation{}, false
	}
	best := b.obs[0]
	for _, o := range b.obs[1:] {
		if o.Score > best.Score {
			best = o
		}
	}
	return best, true
}

// Suggest proposes the next configuration to evaluate and reports the
// surrogate compute cost incurred.
func (b *BO) Suggest() (pipeline.Config, ml.Cost) {
	if len(b.obs) < b.MinObservations {
		return b.Space.Sample(b.rng), ml.Cost{}
	}

	// Fit the surrogate on the history.
	xs := make([][]float64, len(b.obs))
	ys := make([]float64, len(b.obs))
	for i, o := range b.obs {
		xs[i] = b.Space.Vector(o.Config)
		ys[i] = o.Score
	}
	surrogate := ml.NewForestRegressor(ml.ForestParams{
		Trees:     20,
		Bootstrap: true,
		Tree:      ml.TreeParams{MaxDepth: 12, MinSamplesLeaf: 1, MaxFeatures: 0.8},
	})
	cost, err := surrogate.FitReg(tabular.FromRows(xs), ys, b.rng)
	if err != nil {
		return b.Space.Sample(b.rng), cost
	}

	// Candidate pool: random samples plus local mutations of the best.
	n := b.Candidates
	if n < 4 {
		n = 4
	}
	candidates := make([]pipeline.Config, 0, n)
	best, _ := b.Best()
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			candidates = append(candidates, b.Space.Mutate(best.Config, 0.3, b.rng))
		} else {
			candidates = append(candidates, b.Space.Sample(b.rng))
		}
	}
	vecs := make([][]float64, len(candidates))
	for i, c := range candidates {
		vecs[i] = b.Space.Vector(c)
	}
	mean, std, predCost := surrogate.PredictWithStd(tabular.FromRows(vecs))
	cost.Add(predCost)

	bestEI := math.Inf(-1)
	pick := 0
	for i := range candidates {
		ei := expectedImprovement(mean[i], std[i], best.Score, b.Xi)
		if ei > bestEI {
			bestEI = ei
			pick = i
		}
	}
	return candidates[pick], cost
}

// expectedImprovement computes EI for maximization.
func expectedImprovement(mu, sigma, best, xi float64) float64 {
	improvement := mu - best - xi
	if sigma < 1e-12 {
		if improvement > 0 {
			return improvement
		}
		return 0
	}
	z := improvement / sigma
	return improvement*stdNormCDF(z) + sigma*stdNormPDF(z)
}

func stdNormCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

func stdNormPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}
