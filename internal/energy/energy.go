// Package energy is the reproduction's CodeCarbon equivalent.
//
// The paper measures the environmental impact of AutoML systems as consumed
// energy in kWh, captured by the CodeCarbon library via Intel RAPL and
// NVIDIA drivers, and attributes it to three stages: development, execution
// and inference. Without physical access to hardware, this package instead
// integrates an explicit hardware power model (internal/hw) over virtual
// time (internal/vclock). The integration is exact — every unit of work
// contributes power × duration — and deterministic, so experiments replay
// bit-identically.
//
// The package also carries the paper's conversion constants: CO₂ is derived
// at Germany's grid intensity of 0.222 kg/kWh and monetary cost at the
// average European electricity price of 0.20 €/kWh (paper §3.6).
package energy

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/hw"
	"repro/internal/vclock"
)

// Stage identifies which AutoML lifecycle stage consumed energy.
type Stage int

const (
	// Development is energy spent building and configuring an AutoML
	// system (meta-learning, parameter tuning — paper §2.5).
	Development Stage = iota
	// Execution is energy spent running the AutoML search on a new
	// dataset.
	Execution
	// Inference is energy spent predicting with the resulting pipeline.
	Inference
	numStages
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case Development:
		return "development"
	case Execution:
		return "execution"
	case Inference:
		return "inference"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Conversion constants (paper §3.6).
const (
	// JoulesPerKWh converts joules to kilowatt hours.
	JoulesPerKWh = 3.6e6
	// GridCO2KgPerKWh is Germany's grid carbon intensity.
	GridCO2KgPerKWh = 0.222
	// EURPerKWh is the assumed average European electricity price.
	EURPerKWh = 0.20
)

// CO2Kg converts kWh to kilograms of CO₂ at the German grid intensity.
func CO2Kg(kwh float64) float64 { return kwh * GridCO2KgPerKWh }

// CostEUR converts kWh to euros at the assumed European price.
func CostEUR(kwh float64) float64 { return kwh * EURPerKWh }

// Tracker accumulates consumed energy per stage. The zero value is an empty
// tracker ready for use.
//
// Tracker is safe for concurrent chargers. The batch harness never needs
// that (each simulated run owns its meter, and the virtual clock is
// single-owner), but the serving layer charges one tracker from every
// request path, and its conservation invariant — per-request charges sum
// exactly to the tracker total — only holds if concurrent AddJoules calls
// cannot tear or drop increments. The mutex is uncontended in the
// single-owner harness, so the batch hot path pays only an atomic
// acquire per charge, not per row.
type Tracker struct {
	mu     sync.Mutex
	joules [numStages]float64
	busy   [numStages]time.Duration
}

// AddJoules records j joules of consumption in stage s. Negative amounts
// are ignored.
func (t *Tracker) AddJoules(s Stage, j float64) {
	if j > 0 && s >= 0 && s < numStages {
		t.mu.Lock()
		t.joules[s] += j
		t.mu.Unlock()
	}
}

// AddBusy records d of active compute time in stage s.
func (t *Tracker) AddBusy(s Stage, d time.Duration) {
	if d > 0 && s >= 0 && s < numStages {
		t.mu.Lock()
		t.busy[s] += d
		t.mu.Unlock()
	}
}

// Joules reports the joules consumed in stage s.
func (t *Tracker) Joules(s Stage) float64 {
	if s < 0 || s >= numStages {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.joules[s]
}

// KWh reports the kWh consumed in stage s.
func (t *Tracker) KWh(s Stage) float64 { return t.Joules(s) / JoulesPerKWh }

// BusyTime reports the active compute time recorded for stage s.
func (t *Tracker) BusyTime(s Stage) time.Duration {
	if s < 0 || s >= numStages {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.busy[s]
}

// TotalKWh reports the kWh consumed across all stages.
func (t *Tracker) TotalKWh() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum float64
	for s := Stage(0); s < numStages; s++ {
		sum += t.joules[s]
	}
	return sum / JoulesPerKWh
}

// Reset zeroes the tracker.
func (t *Tracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.joules = [numStages]float64{}
	t.busy = [numStages]time.Duration{}
}

// Report is an immutable snapshot of a tracker with derived CO₂ and cost.
type Report struct {
	DevelopmentKWh float64
	ExecutionKWh   float64
	InferenceKWh   float64
}

// Snapshot captures the tracker's current state. The three stages are
// read under one lock, so a snapshot taken while chargers run is a
// consistent instant, not a smear.
func (t *Tracker) Snapshot() Report {
	t.mu.Lock()
	defer t.mu.Unlock()
	return Report{
		DevelopmentKWh: t.joules[Development] / JoulesPerKWh,
		ExecutionKWh:   t.joules[Execution] / JoulesPerKWh,
		InferenceKWh:   t.joules[Inference] / JoulesPerKWh,
	}
}

// TotalKWh reports the report's summed energy.
func (r Report) TotalKWh() float64 {
	return r.DevelopmentKWh + r.ExecutionKWh + r.InferenceKWh
}

// CO2Kg reports the report's total CO₂ in kilograms.
func (r Report) CO2Kg() float64 { return CO2Kg(r.TotalKWh()) }

// CostEUR reports the report's total electricity cost in euros.
func (r Report) CostEUR() float64 { return CostEUR(r.TotalKWh()) }

// String implements fmt.Stringer.
func (r Report) String() string {
	return fmt.Sprintf("dev %.6f kWh, exec %.6f kWh, infer %.6f kWh (%.4f kg CO2, %.4f EUR)",
		r.DevelopmentKWh, r.ExecutionKWh, r.InferenceKWh, r.CO2Kg(), r.CostEUR())
}

// Meter binds a machine, a virtual clock and a tracker. It is the single
// point through which AutoML systems execute work: every call advances the
// clock by the work's virtual duration and charges the machine's power draw
// over that duration to the given stage. The meter's allotted core count
// models the user's parallelism choice (paper §3.3): power is always drawn
// for all allotted cores, whether or not the workload can use them.
type Meter struct {
	machine  *hw.Machine
	clock    *vclock.Clock
	tracker  *Tracker
	cores    int
	gpu      GPUMode
	timeline *Timeline

	// dropoutAt is the virtual instant past which energy readings are
	// lost (meter-dropout fault); dropped latches once it fires.
	dropoutAt    time.Duration
	dropoutArmed bool
	dropped      bool
}

// GPUMode is the meter's accelerator state.
type GPUMode int

const (
	// GPUOff means no GPU drivers loaded: no idle draw, no offload.
	GPUOff GPUMode = iota
	// GPUIdle means drivers are loaded (idle draw is charged) but the
	// workload cannot offload — a scikit-learn-style system running on a
	// GPU machine (paper Table 3, AutoGluon rows).
	GPUIdle
	// GPUActive means matrix work offloads to the accelerator.
	GPUActive
)

// NewMeter creates a meter for the given machine with `cores` allotted CPU
// cores. The clock starts at zero and the tracker empty.
func NewMeter(machine *hw.Machine, cores int) *Meter {
	if cores < 1 {
		cores = 1
	}
	if cores > machine.CPU.Cores {
		cores = machine.CPU.Cores
	}
	return &Meter{
		machine: machine,
		clock:   vclock.New(),
		tracker: &Tracker{},
		cores:   cores,
	}
}

// SetGPUMode sets the accelerator state. Non-off modes on a machine
// without a GPU degrade to GPUOff.
func (m *Meter) SetGPUMode(mode GPUMode) {
	if !m.machine.GPU.Present {
		mode = GPUOff
	}
	m.gpu = mode
}

// GPUMode reports the current accelerator state.
func (m *Meter) GPUMode() GPUMode { return m.gpu }

// Machine returns the underlying machine model.
func (m *Meter) Machine() *hw.Machine { return m.machine }

// Clock returns the meter's virtual clock.
func (m *Meter) Clock() *vclock.Clock { return m.clock }

// Tracker returns the meter's energy tracker.
func (m *Meter) Tracker() *Tracker { return m.tracker }

// Cores reports the allotted core count.
func (m *Meter) Cores() int { return m.cores }

// Run executes one unit of work in stage s: the clock advances by its
// duration on the allotted cores and the consumed energy is recorded.
// It returns the virtual duration of the work.
func (m *Meter) Run(s Stage, w hw.Work) time.Duration {
	var (
		d       time.Duration
		gpuBusy bool
	)
	if m.gpu == GPUActive {
		d, gpuBusy = m.machine.GPUDuration(w)
	} else {
		d = m.machine.Duration(w, m.cores)
	}
	m.charge(s, d, gpuBusy)
	return d
}

// RunParallel executes a batch of independent work units concurrently
// across the allotted cores (each unit on one core) and returns the
// makespan. This is the scheduling model for embarrassingly parallel
// workloads such as bagged model training (paper §3.3, AutoGluon).
func (m *Meter) RunParallel(s Stage, ws []hw.Work) time.Duration {
	if len(ws) == 0 {
		return 0
	}
	durations := make([]time.Duration, len(ws))
	for i, w := range ws {
		// Each task runs on a single worker; its own ParallelFrac is
		// not applied because the cores are consumed by siblings.
		durations[i] = m.machine.Duration(hw.Work{FLOPs: w.FLOPs, Kind: w.Kind}, 1)
	}
	d := vclock.Makespan(durations, m.cores)
	m.charge(s, d, false)
	return d
}

// Idle burns base power for duration d in stage s without doing work, e.g.
// a system waiting on a timer. The clock still advances.
func (m *Meter) Idle(s Stage, d time.Duration) {
	if d <= 0 {
		return
	}
	m.clock.Advance(d)
	if !m.droppedOut() {
		m.tracker.AddJoules(s, m.machine.Power(1, m.gpu != GPUOff, false)*d.Seconds())
	}
}

func (m *Meter) charge(s Stage, d time.Duration, gpuBusy bool) {
	if d <= 0 {
		return
	}
	m.clock.Advance(d)
	m.tracker.AddBusy(s, d)
	if !m.droppedOut() {
		m.tracker.AddJoules(s, m.machine.Energy(d, m.cores, m.gpu != GPUOff, gpuBusy))
	}
	if m.timeline != nil {
		m.timeline.record(m.clock.Now(), s, m.tracker)
	}
}

// DropoutAfter arranges for the meter's energy readings to be lost once
// the clock advances d beyond the current instant — the fault model of
// an energy sampler dying mid-run (the paper's CodeCarbon sampler is a
// separate process). The clock and busy time keep advancing; joules stop
// accumulating. The dropout latches: once fired it cannot be re-armed.
func (m *Meter) DropoutAfter(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.dropoutAt = m.clock.Now() + d
	m.dropoutArmed = true
}

// Dropped reports whether a meter dropout has fired.
func (m *Meter) Dropped() bool { return m.dropped }

// droppedOut latches and reports the dropout state at the current clock.
func (m *Meter) droppedOut() bool {
	if m.dropped {
		return true
	}
	if m.dropoutArmed && m.clock.Now() > m.dropoutAt {
		m.dropped = true
	}
	return m.dropped
}

// NewBudget starts a search-time budget of length d on the meter's clock.
func (m *Meter) NewBudget(d time.Duration) *vclock.Budget {
	return vclock.NewBudget(m.clock, d)
}
