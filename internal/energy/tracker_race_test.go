package energy

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestTrackerConcurrentChargersConserve pins the conservation invariant
// the serving layer builds on: when many goroutines charge one tracker
// concurrently, the per-charge ledger must sum exactly — not
// approximately — to the tracker total. Every charge amount is an exact
// dyadic rational (k * 2^-12), so float64 addition is associative over
// any interleaving and "exactly" means bit-equality, with no tolerance
// hiding a lost or torn increment. Run under -race this also verifies
// the tracker's locking mechanically.
func TestTrackerConcurrentChargersConserve(t *testing.T) {
	const (
		chargers          = 16
		chargesPerCharger = 2048
	)
	var tr Tracker
	ledger := make([][]float64, chargers)

	var wg sync.WaitGroup
	for g := 0; g < chargers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mine := make([]float64, 0, chargesPerCharger)
			for i := 0; i < chargesPerCharger; i++ {
				// Exact dyadic amounts: (1 + (g*chargesPerCharger+i) mod 4096) / 4096.
				j := float64(1+((g*chargesPerCharger+i)%4096)) / 4096
				stage := Stage((g + i) % int(numStages))
				tr.AddJoules(stage, j)
				tr.AddBusy(stage, time.Microsecond)
				mine = append(mine, j)
			}
			ledger[g] = mine
		}(g)
	}
	wg.Wait()

	var want float64
	for _, mine := range ledger {
		for _, j := range mine {
			want += j
		}
	}
	got := tr.TotalKWh() * JoulesPerKWh
	if got != want {
		t.Fatalf("conservation violated: tracker total %v J, per-charge ledger sums to %v J (diff %g)",
			got, want, math.Abs(got-want))
	}

	var gotBusy time.Duration
	for s := Stage(0); s < numStages; s++ {
		gotBusy += tr.BusyTime(s)
	}
	if want := time.Duration(chargers*chargesPerCharger) * time.Microsecond; gotBusy != want {
		t.Fatalf("busy time %v, want %v", gotBusy, want)
	}
}

// TestTrackerSnapshotDuringCharges verifies a snapshot taken mid-charge
// is internally consistent: the per-stage figures are read under one
// lock, so their sum can never exceed what has actually been charged.
func TestTrackerSnapshotDuringCharges(t *testing.T) {
	var tr Tracker
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4096; i++ {
			tr.AddJoules(Stage(i%int(numStages)), 1.0/1024)
		}
	}()
	for i := 0; i < 256; i++ {
		snap := tr.Snapshot()
		if snap.TotalKWh() < 0 || snap.TotalKWh() > 4096.0/1024/JoulesPerKWh {
			t.Fatalf("snapshot total %v kWh outside charged range", snap.TotalKWh())
		}
	}
	<-done
}
