package energy

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/hw"
)

func TestStageString(t *testing.T) {
	for stage, want := range map[Stage]string{
		Development: "development",
		Execution:   "execution",
		Inference:   "inference",
		Stage(9):    "Stage(9)",
	} {
		if got := stage.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestConversions(t *testing.T) {
	// Paper Table 4 math: TabPFN's 404,649 kWh at 0.222 kg/kWh and
	// 0.20 EUR/kWh.
	kwh := 404649.0
	if got := CO2Kg(kwh); math.Abs(got-89832.078) > 0.001 {
		t.Errorf("CO2Kg = %v, want ~89832 (paper Table 4)", got)
	}
	if got := CostEUR(kwh); math.Abs(got-80929.8) > 0.001 {
		t.Errorf("CostEUR = %v, want ~80930 (paper Table 4)", got)
	}
}

func TestTrackerAccounting(t *testing.T) {
	var tr Tracker
	tr.AddJoules(Execution, JoulesPerKWh) // exactly 1 kWh
	tr.AddJoules(Inference, JoulesPerKWh/2)
	tr.AddJoules(Development, -5) // ignored
	tr.AddJoules(Stage(42), 100)  // ignored
	if got := tr.KWh(Execution); got != 1 {
		t.Errorf("Execution = %v kWh, want 1", got)
	}
	if got := tr.KWh(Inference); got != 0.5 {
		t.Errorf("Inference = %v kWh, want 0.5", got)
	}
	if got := tr.KWh(Development); got != 0 {
		t.Errorf("Development = %v kWh, want 0", got)
	}
	if got := tr.TotalKWh(); got != 1.5 {
		t.Errorf("Total = %v kWh, want 1.5", got)
	}
	tr.AddBusy(Execution, time.Minute)
	if got := tr.BusyTime(Execution); got != time.Minute {
		t.Errorf("BusyTime = %v, want 1m", got)
	}
	if got := tr.BusyTime(Stage(-1)); got != 0 {
		t.Errorf("BusyTime(invalid) = %v, want 0", got)
	}
	tr.Reset()
	if tr.TotalKWh() != 0 {
		t.Error("Reset left energy behind")
	}
}

func TestReportDerivations(t *testing.T) {
	r := Report{DevelopmentKWh: 1, ExecutionKWh: 2, InferenceKWh: 3}
	if got := r.TotalKWh(); got != 6 {
		t.Errorf("TotalKWh = %v, want 6", got)
	}
	if got := r.CO2Kg(); math.Abs(got-6*GridCO2KgPerKWh) > 1e-12 {
		t.Errorf("CO2Kg = %v", got)
	}
	if got := r.CostEUR(); math.Abs(got-6*EURPerKWh) > 1e-12 {
		t.Errorf("CostEUR = %v", got)
	}
	if r.String() == "" {
		t.Error("empty report string")
	}
}

func TestMeterRunChargesAndAdvances(t *testing.T) {
	m := NewMeter(hw.XeonGold6132(), 1)
	w := hw.Work{FLOPs: 1e7, Kind: hw.KindGeneric}
	d := m.Run(Execution, w)
	if d <= 0 {
		t.Fatal("no duration for real work")
	}
	if got := m.Clock().Now(); got != d {
		t.Errorf("clock at %v, want %v", got, d)
	}
	wantJ := m.Machine().Power(1, false, false) * d.Seconds()
	if got := m.Tracker().Joules(Execution); math.Abs(got-wantJ) > 1e-9 {
		t.Errorf("charged %v J, want %v", got, wantJ)
	}
	if m.Tracker().Joules(Inference) != 0 {
		t.Error("wrong stage charged")
	}
}

func TestMeterCoresClamped(t *testing.T) {
	m := NewMeter(hw.XeonGold6132(), 1000)
	if got := m.Cores(); got != 28 {
		t.Errorf("cores = %d, want clamp to 28", got)
	}
	m = NewMeter(hw.XeonGold6132(), -3)
	if got := m.Cores(); got != 1 {
		t.Errorf("cores = %d, want clamp to 1", got)
	}
}

func TestMeterGPUModes(t *testing.T) {
	work := hw.Work{FLOPs: 1e8, Kind: hw.KindMatrix}

	run := func(mode GPUMode) (time.Duration, float64) {
		m := NewMeter(hw.T4Machine(), 1)
		m.SetGPUMode(mode)
		d := m.Run(Inference, work)
		return d, m.Tracker().Joules(Inference)
	}
	dOff, jOff := run(GPUOff)
	dIdle, jIdle := run(GPUIdle)
	dActive, jActive := run(GPUActive)

	if dIdle != dOff {
		t.Errorf("idle GPU changed duration: %v vs %v", dIdle, dOff)
	}
	if jIdle <= jOff {
		t.Errorf("idle GPU did not cost extra energy: %v vs %v", jIdle, jOff)
	}
	if dActive >= dOff {
		t.Errorf("offloaded matrix work not faster: %v vs %v", dActive, dOff)
	}
	if jActive >= jOff {
		t.Errorf("offloaded matrix work not cheaper overall: %v vs %v J", jActive, jOff)
	}

	// A GPU-less machine degrades every mode to off.
	m := NewMeter(hw.XeonGold6132(), 1)
	m.SetGPUMode(GPUActive)
	if m.GPUMode() != GPUOff {
		t.Error("GPU mode stuck on for a GPU-less machine")
	}
}

func TestMeterRunParallel(t *testing.T) {
	works := make([]hw.Work, 8)
	for i := range works {
		works[i] = hw.Work{FLOPs: 1e7, Kind: hw.KindGeneric}
	}
	seq := NewMeter(hw.XeonGold6132(), 1)
	seqD := seq.RunParallel(Execution, works)
	par := NewMeter(hw.XeonGold6132(), 8)
	parD := par.RunParallel(Execution, works)
	if parD >= seqD {
		t.Errorf("8-core makespan %v not below single-core %v", parD, seqD)
	}
	if got := parD; got < seqD/8 {
		t.Errorf("makespan %v below the perfect-speedup bound %v", got, seqD/8)
	}
	// Energy: shorter time but higher power; for this workload the
	// parallel run must consume less energy (the AutoGluon side of
	// paper Fig. 5).
	if par.Tracker().Joules(Execution) >= seq.Tracker().Joules(Execution) {
		t.Errorf("parallel bagging consumed more energy: %v vs %v J",
			par.Tracker().Joules(Execution), seq.Tracker().Joules(Execution))
	}
	if NewMeter(hw.XeonGold6132(), 2).RunParallel(Execution, nil) != 0 {
		t.Error("empty batch took time")
	}
}

func TestMeterIdle(t *testing.T) {
	m := NewMeter(hw.XeonGold6132(), 4)
	m.Idle(Execution, 10*time.Second)
	if got := m.Clock().Now(); got != 10*time.Second {
		t.Errorf("clock at %v, want 10s", got)
	}
	want := m.Machine().Power(1, false, false) * 10
	if got := m.Tracker().Joules(Execution); math.Abs(got-want) > 1e-9 {
		t.Errorf("idle charged %v J, want %v (base power only)", got, want)
	}
	m.Idle(Execution, -time.Second) // no-op
	if m.Clock().Now() != 10*time.Second {
		t.Error("negative idle advanced the clock")
	}
}

func TestMeterBudget(t *testing.T) {
	m := NewMeter(hw.XeonGold6132(), 1)
	b := m.NewBudget(time.Second)
	m.Run(Execution, hw.Work{FLOPs: 3e6, Kind: hw.KindGeneric}) // 1.5s at 2e6 flops/s
	if !b.Exceeded() {
		t.Error("budget not exceeded after 1.5s of work")
	}
}

func TestSnapshot(t *testing.T) {
	var tr Tracker
	tr.AddJoules(Development, JoulesPerKWh)
	tr.AddJoules(Execution, 2*JoulesPerKWh)
	tr.AddJoules(Inference, 3*JoulesPerKWh)
	r := tr.Snapshot()
	if r.DevelopmentKWh != 1 || r.ExecutionKWh != 2 || r.InferenceKWh != 3 {
		t.Errorf("snapshot %+v", r)
	}
}

func TestTimelineRecordsCharges(t *testing.T) {
	m := NewMeter(hw.XeonGold6132(), 1)
	tl := &Timeline{}
	m.SetTimeline(tl)
	m.Run(Execution, hw.Work{FLOPs: 1e6, Kind: hw.KindGeneric})
	m.Run(Inference, hw.Work{FLOPs: 2e6, Kind: hw.KindGeneric})
	if tl.Len() != 2 {
		t.Fatalf("timeline has %d samples, want 2", tl.Len())
	}
	samples := tl.Samples()
	if samples[0].Stage != Execution || samples[1].Stage != Inference {
		t.Errorf("stages %v %v", samples[0].Stage, samples[1].Stage)
	}
	if samples[1].At <= samples[0].At {
		t.Error("samples not time-ordered")
	}
	if samples[1].CumulativeKWh[1] <= 0 || samples[1].CumulativeKWh[2] <= 0 {
		t.Errorf("cumulative energy missing: %v", samples[1].CumulativeKWh)
	}
	var sb strings.Builder
	if err := tl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Errorf("csv lines %d, want header + 2", len(lines))
	}
	if m.Timeline() != tl {
		t.Error("timeline accessor broken")
	}
}

func TestTimelineDownsamples(t *testing.T) {
	m := NewMeter(hw.XeonGold6132(), 1)
	tl := &Timeline{MaxSamples: 8}
	m.SetTimeline(tl)
	for i := 0; i < 40; i++ {
		m.Run(Execution, hw.Work{FLOPs: 1e5, Kind: hw.KindGeneric})
	}
	if tl.Len() > 16 {
		t.Errorf("timeline grew to %d samples despite MaxSamples 8", tl.Len())
	}
	samples := tl.Samples()
	for i := 1; i < len(samples); i++ {
		if samples[i].At < samples[i-1].At {
			t.Fatal("downsampled timeline out of order")
		}
	}
}

func TestMeterDropout(t *testing.T) {
	m := NewMeter(hw.XeonGold6132(), 1)
	m.Idle(Execution, time.Second)
	before := m.Tracker().KWh(Execution)
	if before <= 0 {
		t.Fatal("idle charged nothing")
	}
	if m.Dropped() {
		t.Fatal("dropout fired without being armed")
	}

	m.DropoutAfter(500 * time.Millisecond)
	m.Idle(Execution, time.Second)
	if !m.Dropped() {
		t.Error("dropout did not latch after the clock passed the deadline")
	}
	if got := m.Tracker().KWh(Execution); got != before {
		t.Errorf("joules after dropout: %v, want unchanged %v", got, before)
	}
	if got := m.Clock().Now(); got != 2*time.Second {
		t.Errorf("clock stopped at %v, want 2s — time keeps flowing through a dropout", got)
	}

	// Busy time keeps accumulating: the work happened, only the readings
	// were lost.
	busyBefore := m.Tracker().BusyTime(Execution)
	m.Run(Execution, hw.Work{FLOPs: 2e6})
	if m.Tracker().BusyTime(Execution) <= busyBefore {
		t.Error("busy time must keep advancing after dropout")
	}
	if got := m.Tracker().KWh(Execution); got != before {
		t.Errorf("Run charged %v kWh through a dropped meter", got-before)
	}

	// Negative delays clamp to "from now on".
	m2 := NewMeter(hw.XeonGold6132(), 1)
	m2.DropoutAfter(-time.Second)
	m2.Idle(Execution, time.Millisecond)
	if m2.Tracker().KWh(Execution) != 0 {
		t.Error("negative-delay dropout still charged energy")
	}
}
