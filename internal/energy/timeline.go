package energy

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// Sample is one point of a consumption timeline: cumulative energy per
// stage at a virtual instant.
type Sample struct {
	// At is the virtual time of the sample.
	At time.Duration
	// Stage is the stage the triggering charge belonged to.
	Stage Stage
	// CumulativeKWh holds the tracker's per-stage totals at the sample.
	CumulativeKWh [3]float64
}

// Timeline records consumption samples over virtual time — the equivalent
// of CodeCarbon's periodic emissions log, which the paper's measurement
// pipeline writes while systems run. Attach one to a meter with
// Meter.SetTimeline; every charge appends a sample.
type Timeline struct {
	samples []Sample
	// MaxSamples bounds memory; once reached, every second sample is
	// dropped (halving resolution). 0 means 65536.
	MaxSamples int
}

// Samples returns the recorded samples in time order.
func (tl *Timeline) Samples() []Sample { return tl.samples }

// Len reports the number of recorded samples.
func (tl *Timeline) Len() int { return len(tl.samples) }

func (tl *Timeline) record(at time.Duration, stage Stage, tracker *Tracker) {
	limit := tl.MaxSamples
	if limit <= 0 {
		limit = 65536
	}
	if len(tl.samples) >= limit {
		// Halve resolution: keep every second sample.
		kept := tl.samples[:0]
		for i, s := range tl.samples {
			if i%2 == 0 {
				kept = append(kept, s)
			}
		}
		tl.samples = kept
	}
	tl.samples = append(tl.samples, Sample{
		At:    at,
		Stage: stage,
		CumulativeKWh: [3]float64{
			tracker.KWh(Development),
			tracker.KWh(Execution),
			tracker.KWh(Inference),
		},
	})
}

// WriteCSV exports the timeline in a CodeCarbon-like layout: virtual
// seconds, triggering stage, cumulative kWh per stage.
func (tl *Timeline) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_seconds", "stage", "development_kwh", "execution_kwh", "inference_kwh"}); err != nil {
		return fmt.Errorf("energy: writing timeline header: %w", err)
	}
	for _, s := range tl.samples {
		row := []string{
			strconv.FormatFloat(s.At.Seconds(), 'f', 6, 64),
			s.Stage.String(),
			strconv.FormatFloat(s.CumulativeKWh[0], 'g', -1, 64),
			strconv.FormatFloat(s.CumulativeKWh[1], 'g', -1, 64),
			strconv.FormatFloat(s.CumulativeKWh[2], 'g', -1, 64),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("energy: writing timeline row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// SetTimeline attaches (or, with nil, detaches) a timeline recorder.
func (m *Meter) SetTimeline(tl *Timeline) { m.timeline = tl }

// Timeline returns the attached recorder, if any.
func (m *Meter) Timeline() *Timeline { return m.timeline }
