package automl

import "math/rand/v2"

// newTestRNG returns a deterministic RNG for tests.
func newTestRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x7e57))
}
