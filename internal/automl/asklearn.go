package automl

import (
	"fmt"
	"math"
	"sort"
	"time"

	"math/rand/v2"

	"repro/internal/energy"
	"repro/internal/ensemble"
	"repro/internal/hw"
	"repro/internal/pipeline"
	"repro/internal/search"
	"repro/internal/tabular"
)

// AutoSklearn reproduces the architecture of auto-sklearn 1 and 2 (paper
// Table 1): Bayesian optimization over the full search space (data and
// feature preprocessors plus all models), Caruana ensembling of the top
// evaluated pipelines, and — for version 2 — a meta-learned warm-start
// portfolio. Two budget-fidelity quirks the paper measures (§3.10) are
// reproduced structurally: the search counts only pipeline evaluations
// against the budget (a running evaluation is finished, not killed), and
// the ensemble-weight computation runs *after* the budget, uncounted,
// which makes ASKL the worst budget overrunner, especially on large
// validation sets.
type AutoSklearn struct {
	// Version is 1 or 2.
	Version int
}

// NewAutoSklearn1 returns auto-sklearn with random initialization.
func NewAutoSklearn1() *AutoSklearn { return &AutoSklearn{Version: 1} }

// NewAutoSklearn2 returns auto-sklearn 2 with the meta-learned warm-start
// portfolio.
func NewAutoSklearn2() *AutoSklearn { return &AutoSklearn{Version: 2} }

// Name implements System.
func (a *AutoSklearn) Name() string { return fmt.Sprintf("AutoSklearn%d", a.Version) }

// MinBudget implements System: the paper benchmarks ASKL only from 30s —
// below that the system cannot finish its first evaluations.
func (a *AutoSklearn) MinBudget() time.Duration { return 30 * time.Second }

// Fit implements System.
func (a *AutoSklearn) Fit(train tabular.View, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, fmt.Errorf("asklearn: %w", err)
	}
	rng := opts.rng()
	meter := opts.Meter
	tracker := startRun(meter)
	budget := meter.NewBudget(opts.Budget)

	spec := pipeline.FullSpec()
	space, err := spec.Space()
	if err != nil {
		return nil, fmt.Errorf("asklearn: %w", err)
	}
	fitTrain, val := holdoutSplit(train, 0.33, rng)

	bo := search.NewBO(space, rng)
	var evals []evaluation

	// Version 2 warm start: evaluate the meta-learned portfolio first,
	// choosing the portfolio order by meta-feature similarity. The
	// offline construction of the portfolio is development-stage energy
	// the paper notes was "140 datasets each for 24h" — it is sunk cost
	// here, not charged to this run.
	if a.Version >= 2 {
		for _, cfg := range WarmStartPortfolio(train.Meta(), space, opts.Budget) {
			if budget.Exceeded() {
				break
			}
			a.tryEvaluate(cfg, spec, fitTrain, val, opts, bo, &evals, rng)
		}
	} else {
		// Version 1: random initialization. ASKL1's unrestricted space
		// can draw pipelines that are far too expensive for the budget
		// (paper §2.3) — nothing prevents it.
		for i := 0; i < 3 && !budget.Exceeded(); i++ {
			a.tryEvaluate(space.Sample(rng), spec, fitTrain, val, opts, bo, &evals, rng)
		}
	}

	// BO loop: the budget is only checked between evaluations — a
	// started evaluation always runs to completion. Auto-sklearn also
	// keeps its ensemble up to date *during* the search (a concurrent
	// ensemble-builder process in the original; serialized virtual
	// compute here), rebuilding at exponentially spaced evaluation
	// milestones.
	nextRebuild := 10
	for !budget.Exceeded() {
		cfg, boCost := bo.Suggest()
		chargeCost(meter, energy.Execution, boCost, 0.3)
		a.tryEvaluate(cfg, spec, fitTrain, val, opts, bo, &evals, rng)
		if len(evals) >= nextRebuild {
			a.chargeEnsembleBuild(meter, min(len(evals), a.ensembleSize()), val)
			nextRebuild *= 2
		}
	}

	if len(evals) == 0 {
		return tracker.finish(&Result{
			System:    a.Name(),
			Predictor: newMajorityPredictor(train),
			Classes:   train.Classes(),
		}), nil
	}

	// Post-budget ensembling over the top evaluated pipelines: Caruana
	// selection computes weights on the validation predictions. This is
	// the step auto-sklearn does NOT count as search time (paper §3.10).
	sort.SliceStable(evals, func(i, j int) bool { return evals[i].score > evals[j].score })
	top := a.ensembleSize()
	rounds := 40
	if a.Version >= 2 {
		rounds = 15
	}
	if len(evals) < top {
		top = len(evals)
	}
	candidates := evals[:top]
	valProbas := make([][][]float64, len(candidates))
	members := make([]ensemble.Predictor, len(candidates))
	for i, ev := range candidates {
		valProbas[i] = ev.valProba
		members[i] = ev.pipe
	}
	caruana, err := ensemble.CaruanaSelect(valProbas, val.LabelsInto(nil), val.Classes(), rounds)
	if err != nil {
		return nil, fmt.Errorf("asklearn: ensembling: %w", err)
	}
	chargeCost(meter, energy.Execution, caruana.Cost, 0.2)
	a.chargeEnsembleBuild(meter, len(candidates), val)

	return tracker.finish(&Result{
		System:    a.Name(),
		Predictor: &ensemble.Weighted{Members: members, Weights: caruana.Weights},
		Classes:   train.Classes(),
		Evaluated: len(evals),
		ValScore:  caruana.Score,
		// The deployable recipe is the ensemble's top-scoring member;
		// the served ensemble itself is not one spec/config pipeline.
		BestSpec:   &spec,
		BestConfig: evals[0].config,
	}), nil
}

// ensembleSize is the candidate pool for Caruana selection: the original
// auto-sklearn considers the top 50 evaluated pipelines; version 2 trims
// the pool.
func (a *AutoSklearn) ensembleSize() int {
	if a.Version >= 2 {
		return 25
	}
	return 50
}

// chargeEnsembleBuild bills the bookkeeping around one ensemble
// construction: per candidate model, serialized predictions are loaded,
// recalibrated and rescored against the validation set. This work — not
// the Caruana loop itself — is why auto-sklearn's runs overshoot the
// search budget so badly on large validation sets (paper §3.10, Table 7).
func (a *AutoSklearn) chargeEnsembleBuild(meter *energy.Meter, candidates int, val tabular.View) {
	perCandidate := 600e3 * float64(val.Rows()) / 64 * float64(max(val.Classes(), 2))
	meter.Run(energy.Execution, hw.Work{
		FLOPs:        float64(candidates) * perCandidate,
		Kind:         hw.KindGeneric,
		ParallelFrac: 0.2,
	})
}

func (a *AutoSklearn) tryEvaluate(cfg pipeline.Config, spec pipeline.SpaceSpec, fitTrain, val tabular.View, opts Options, bo *search.BO, evals *[]evaluation, rng *rand.Rand) {
	p, err := spec.Build(cfg, fitTrain.Features())
	if err != nil {
		bo.Observe(cfg, 0)
		return
	}
	ev, ok := evaluatePipeline(p, fitTrain, val, opts.Meter, rng)
	if !ok {
		bo.Observe(cfg, 0)
		return
	}
	ev.config = cfg
	bo.Observe(cfg, ev.score)
	*evals = append(*evals, ev)
}

// WarmStartPortfolio returns auto-sklearn 2's meta-learned starting
// configurations ordered for the given dataset and budget. The portfolio
// itself is a fixed artifact of the (offline) development stage: a spread
// of strong configurations across model families. Ordering uses the
// dataset's meta-features — wide datasets front-load feature selection,
// many-class datasets front-load tree ensembles, small datasets front-load
// cheap models — and the selector is cost-aware: at short budgets cheap
// configurations run first so the portfolio finishes inside the budget.
func WarmStartPortfolio(meta tabular.MetaFeatures, space *pipeline.Space, budget time.Duration) []pipeline.Config {
	type entry struct {
		cfg      pipeline.Config
		affinity float64
		cheap    bool
	}
	base := space.Default()
	modelIdx := func(name string) float64 {
		p, ok := space.Lookup("model")
		if !ok {
			return 0
		}
		for i, choice := range p.Choices {
			if choice == name {
				return float64(i)
			}
		}
		return 0
	}
	mk := func(model string, overrides pipeline.Config) pipeline.Config {
		cfg := base.Clone()
		cfg["model"] = modelIdx(model)
		for k, v := range overrides {
			cfg[k] = v
		}
		return cfg
	}
	wide := meta.LogFeatures   // high for wide datasets
	large := meta.LogRows      // high for large datasets
	classes := meta.LogClasses // high for many-class tasks
	entries := []entry{
		{mk("gradient_boosting", pipeline.Config{"gradient_boosting.rounds": 60, "gradient_boosting.lr": 0.1}), 2 + large, false},
		{mk("random_forest", pipeline.Config{"random_forest.trees": 80, "random_forest.max_depth": 18}), 2 + classes, false},
		{mk("extra_trees", pipeline.Config{"extra_trees.trees": 80}), 1.5 + classes, false},
		{mk("mlp", pipeline.Config{"mlp.width": 64, "mlp.epochs": 40}), 1 + large - wide, false},
		{mk("logreg", pipeline.Config{"logreg.epochs": 30}), 1 + wide, true},
		{mk("svm", pipeline.Config{"svm.epochs": 30}), 0.5 + wide, true},
		{mk("gradient_boosting", pipeline.Config{"gradient_boosting.rounds": 30, "gradient_boosting.lr": 0.2, "feature_pre": 1}), 1 + 2*wide, false},
		{mk("tree", pipeline.Config{"tree.max_depth": 8}), 1 - large, true},
		{mk("gaussian_nb", nil), 0.5 - large, true},
		{mk("knn", pipeline.Config{"knn.k": 7, "knn.weighted": 1}), 0.8 - wide, true},
	}
	sort.SliceStable(entries, func(i, j int) bool {
		// Cost-aware ordering at short budgets: cheap entries first,
		// affinity second.
		if budget > 0 && budget <= 45*time.Second && entries[i].cheap != entries[j].cheap {
			return entries[i].cheap
		}
		return entries[i].affinity > entries[j].affinity
	})
	n := int(math.Min(float64(len(entries)), 8))
	out := make([]pipeline.Config, 0, n)
	for _, e := range entries[:n] {
		out = append(out, e.cfg)
	}
	return out
}
