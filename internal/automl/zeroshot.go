package automl

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/pipeline"
	"repro/internal/tabular"
)

// ZeroShot is the roster's ninth system: TabRepo-style zero-shot
// portfolio selection (PAPERS.md). It performs no search at all —
// offline meta-learning over the evaluation repository's meta-train
// entries has already distilled a small portfolio of configurations,
// and Fit simply trains the portfolio members in order and keeps the
// best by validation score. All the intelligence (and nearly all the
// energy) was spent once, offline; each new dataset costs only
// |portfolio| pipeline fits. Without a repository to learn from, the
// system falls back to a fixed default portfolio: a deterministic
// spread over the model families, cheapest first, so even tiny budgets
// complete at least one member.
type ZeroShot struct {
	// Portfolio is the ordered configuration list over pipeline.FullSpec.
	Portfolio []pipeline.Config
}

// NewZeroShot returns the zero-shot system with the default (non-meta-
// learned) portfolio.
func NewZeroShot() *ZeroShot {
	return &ZeroShot{Portfolio: DefaultZeroShotPortfolio()}
}

// NewZeroShotPortfolio returns the zero-shot system with a meta-learned
// portfolio (see MetaLearnPortfolio). An empty portfolio falls back to
// the default.
func NewZeroShotPortfolio(configs []pipeline.Config) *ZeroShot {
	if len(configs) == 0 {
		configs = DefaultZeroShotPortfolio()
	}
	return &ZeroShot{Portfolio: configs}
}

// Name implements System.
func (z *ZeroShot) Name() string { return "ZeroShot" }

// MinBudget implements System. Zero-shot selection has no search loop to
// amortize, so any budget is accepted.
func (z *ZeroShot) MinBudget() time.Duration { return 0 }

// Fit implements System: train portfolio members in order until the
// budget runs out, return the best single member. At least one member is
// always attempted — a zero-shot system that returns nothing at a small
// budget would be strictly worse than its own portfolio head.
func (z *ZeroShot) Fit(train tabular.View, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, fmt.Errorf("zeroshot: %w", err)
	}
	rng := opts.rng()
	meter := opts.Meter
	tracker := startRun(meter)
	budget := meter.NewBudget(opts.Budget)

	fitTrain, val := holdoutSplit(train, 0.33, rng)

	spec := pipeline.FullSpec()
	portfolio := z.Portfolio
	if len(portfolio) == 0 {
		portfolio = DefaultZeroShotPortfolio()
	}

	var best evaluation
	evaluated := 0
	for i, cfg := range portfolio {
		if i > 0 && budget.Exceeded() {
			break
		}
		p, err := spec.Build(cfg, fitTrain.Features())
		if err != nil {
			continue
		}
		ev, ok := evaluatePipeline(p, fitTrain, val, meter, rng)
		evaluated++
		if !ok {
			continue
		}
		ev.config = cfg
		if best.pipe == nil || ev.score > best.score {
			best = ev
		}
	}

	if best.pipe == nil {
		return tracker.finish(&Result{
			System:    z.Name(),
			Predictor: newMajorityPredictor(train),
			Classes:   train.Classes(),
			Evaluated: evaluated,
		}), nil
	}
	specCopy := spec
	return tracker.finish(&Result{
		System:     z.Name(),
		Predictor:  singlePredictor(best.pipe),
		Classes:    train.Classes(),
		Evaluated:  evaluated,
		ValScore:   best.score,
		BestSpec:   &specCopy,
		BestConfig: best.config,
	}), nil
}

// DefaultZeroShotPortfolio is the fixed fallback portfolio used when no
// evaluation repository is available to meta-learn from: one sensible
// configuration per model family over the full space, ordered cheapest
// first so the head of the list completes inside any budget.
func DefaultZeroShotPortfolio() []pipeline.Config {
	spec := pipeline.FullSpec()
	space, err := spec.Space()
	if err != nil {
		return nil
	}
	base := space.Default()
	modelIdx := func(name string) float64 {
		p, ok := space.Lookup("model")
		if !ok {
			return 0
		}
		for i, choice := range p.Choices {
			if choice == name {
				return float64(i)
			}
		}
		return 0
	}
	mk := func(model string, overrides pipeline.Config) pipeline.Config {
		cfg := base.Clone()
		cfg["model"] = modelIdx(model)
		for k, v := range overrides {
			cfg[k] = v
		}
		return cfg
	}
	return []pipeline.Config{
		mk("logreg", pipeline.Config{"logreg.epochs": 25}),
		mk("tree", pipeline.Config{"tree.max_depth": 10}),
		mk("gaussian_nb", nil),
		mk("knn", pipeline.Config{"knn.k": 5, "knn.weighted": 1}),
		mk("gradient_boosting", pipeline.Config{"gradient_boosting.rounds": 50, "gradient_boosting.lr": 0.1}),
		mk("random_forest", pipeline.Config{"random_forest.trees": 60, "random_forest.max_depth": 16}),
		mk("extra_trees", pipeline.Config{"extra_trees.trees": 60}),
		mk("mlp", pipeline.Config{"mlp.width": 48, "mlp.epochs": 30}),
	}
}

// PortfolioEvaluation is one meta-train observation for portfolio
// learning: a configuration's score on a dataset (typically decoded from
// an evaluation-repository entry).
type PortfolioEvaluation struct {
	Dataset string
	Config  pipeline.Config
	Score   float64
}

// MetaLearnPortfolio distills meta-train evaluations into a zero-shot
// portfolio of at most size configurations, using the greedy submodular
// cover TabRepo and auto-sklearn 2 use: repeatedly add the configuration
// that most raises the sum over datasets of the best score any selected
// configuration achieves there. The greedy objective prefers
// complementary configurations over individually strong but redundant
// ones. With no evaluations the default portfolio is returned, so a
// cold repository degrades to the fixed fallback rather than an empty
// system.
func MetaLearnPortfolio(evals []PortfolioEvaluation, size int) []pipeline.Config {
	if size <= 0 {
		size = 8
	}
	// Group by configuration identity; remember per-dataset best score
	// for each configuration (a config may appear under several seeds).
	type candidate struct {
		cfg    pipeline.Config
		scores map[string]float64
	}
	byKey := make(map[string]*candidate)
	datasets := make(map[string]bool)
	for _, ev := range evals {
		if ev.Config == nil {
			continue
		}
		k := ev.Config.Key()
		c, ok := byKey[k]
		if !ok {
			c = &candidate{cfg: ev.Config, scores: make(map[string]float64)}
			byKey[k] = c
		}
		if s, ok := c.scores[ev.Dataset]; !ok || ev.Score > s {
			c.scores[ev.Dataset] = ev.Score
		}
		datasets[ev.Dataset] = true
	}
	if len(byKey) == 0 {
		return DefaultZeroShotPortfolio()
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dsNames := make([]string, 0, len(datasets))
	for d := range datasets {
		dsNames = append(dsNames, d)
	}
	sort.Strings(dsNames)

	covered := make(map[string]float64, len(dsNames))
	selected := make(map[string]bool, size)
	var out []pipeline.Config
	for len(out) < size && len(out) < len(keys) {
		bestKey := ""
		bestGain := 0.0
		for _, k := range keys {
			if selected[k] {
				continue
			}
			gain := 0.0
			for _, d := range dsNames {
				if s, ok := byKey[k].scores[d]; ok && s > covered[d] {
					gain += s - covered[d]
				}
			}
			// Strict > keeps the tie-break on sorted key order, which
			// makes the portfolio deterministic.
			if bestKey == "" || gain > bestGain {
				bestKey, bestGain = k, gain
			}
		}
		if bestKey == "" {
			break
		}
		if bestGain <= 0 && len(out) > 0 {
			break
		}
		selected[bestKey] = true
		for d, s := range byKey[bestKey].scores {
			if s > covered[d] {
				covered[d] = s
			}
		}
		out = append(out, byKey[bestKey].cfg.Clone())
	}
	return out
}
