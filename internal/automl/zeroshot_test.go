package automl

import (
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/openml"
	"repro/internal/pipeline"
)

func TestZeroShotFit(t *testing.T) {
	specs := openml.Suite()
	ds := openml.Generate(specs[0], openml.SmallScale(), 1)
	train, test := ds.All().TrainTestSplit(newTestRNG(7))

	meter := energy.NewMeter(hw.XeonGold6132(), 1)
	z := NewZeroShot()
	if z.Name() != "ZeroShot" {
		t.Fatalf("name = %q", z.Name())
	}
	if z.MinBudget() != 0 {
		t.Fatal("zero-shot should accept any budget")
	}
	res, err := z.Fit(train, Options{Budget: 10 * time.Second, Meter: meter, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Predictor == nil {
		t.Fatal("no predictor")
	}
	if res.Evaluated < 1 {
		t.Fatalf("evaluated %d members, want >= 1", res.Evaluated)
	}
	if res.BestConfig == nil || res.BestSpec == nil {
		t.Fatal("zero-shot should expose its winning recipe")
	}
	pred, err := res.Predict(test, meter)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != test.Rows() {
		t.Fatalf("predicted %d rows, want %d", len(pred), test.Rows())
	}
}

func TestZeroShotDeterministic(t *testing.T) {
	specs := openml.Suite()
	ds := openml.Generate(specs[1], openml.SmallScale(), 2)
	train, _ := ds.All().TrainTestSplit(newTestRNG(7))

	fit := func() *Result {
		meter := energy.NewMeter(hw.XeonGold6132(), 1)
		res, err := NewZeroShot().Fit(train, Options{Budget: 5 * time.Second, Meter: meter, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := fit(), fit()
	if a.ValScore != b.ValScore || a.Evaluated != b.Evaluated || a.ExecKWh != b.ExecKWh {
		t.Fatalf("non-deterministic: (%v,%d,%v) vs (%v,%d,%v)",
			a.ValScore, a.Evaluated, a.ExecKWh, b.ValScore, b.Evaluated, b.ExecKWh)
	}
}

func TestDefaultZeroShotPortfolio(t *testing.T) {
	p := DefaultZeroShotPortfolio()
	if len(p) < 6 {
		t.Fatalf("portfolio has %d members", len(p))
	}
	seen := map[string]bool{}
	for _, cfg := range p {
		k := cfg.Key()
		if seen[k] {
			t.Fatalf("duplicate portfolio member %s", k)
		}
		seen[k] = true
	}
}

func TestMetaLearnPortfolio(t *testing.T) {
	cfg := func(v float64) pipeline.Config { return pipeline.Config{"model": v} }
	evals := []PortfolioEvaluation{
		// Config 0 is strong on dsA, config 1 on dsB, config 2 is
		// uniformly mediocre — greedy coverage should pick 0 and 1
		// before 2 even though 2's average beats 1's.
		{Dataset: "dsA", Config: cfg(0), Score: 0.9},
		{Dataset: "dsB", Config: cfg(0), Score: 0.1},
		{Dataset: "dsA", Config: cfg(1), Score: 0.1},
		{Dataset: "dsB", Config: cfg(1), Score: 0.9},
		{Dataset: "dsA", Config: cfg(2), Score: 0.5},
		{Dataset: "dsB", Config: cfg(2), Score: 0.5},
	}
	got := MetaLearnPortfolio(evals, 2)
	if len(got) != 2 {
		t.Fatalf("portfolio size %d, want 2", len(got))
	}
	picked := map[float64]bool{got[0]["model"]: true, got[1]["model"]: true}
	if !picked[0] || !picked[1] {
		t.Fatalf("greedy cover picked %v, want models 0 and 1", picked)
	}

	// Empty input degrades to the default portfolio, not an empty system.
	if len(MetaLearnPortfolio(nil, 4)) == 0 {
		t.Fatal("empty evals should fall back to the default portfolio")
	}

	// Determinism: same evals, same portfolio order.
	a := MetaLearnPortfolio(evals, 3)
	b := MetaLearnPortfolio(evals, 3)
	if len(a) != len(b) {
		t.Fatal("non-deterministic size")
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatalf("non-deterministic order at %d", i)
		}
	}
}
