package automl

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/ml"
	"repro/internal/tabular"
)

// TabPFN reproduces the cost profile and behaviour of the prior-fitted
// network of Hollmann et al. (ICLR 2023): a transformer pretrained offline
// on synthetic datasets that classifies new data in-context, with zero
// search and zero training at execution time.
//
// Substitution note (see DESIGN.md): the original 25M-parameter
// transformer cannot be retrained here, so the PFN is realized as a
// multi-layer attention kernel with fixed "pretrained" projection weights
// (seeded deterministically — the offline pretraining is development-stage
// energy sunk before this study, exactly as in the paper). What the study
// measures is preserved structurally:
//
//   - execution is a constant model load (~0.29s, paper Table 7);
//   - inference forward-propagates the entire training set per query
//     through attention layers — dense matrix work that is orders of
//     magnitude more expensive per instance than tree traversal
//     (paper Fig. 3) and accelerates strongly on GPU (paper Table 3);
//   - only up to 10 classes are supported, and quality is calibrated for
//     small tasks (≤1k training rows — larger sets are subsampled).
//
// The virtual FLOP accounting scales the slim kernel's real operation
// count by pfnVirtualScale to represent the full-size transformer's
// arithmetic; the kernel's *predictions* are computed exactly as coded.
type TabPFN struct {
	// ProjDim is the attention embedding width (default 32).
	ProjDim int
	// Layers is the number of attention refinement layers (default 2).
	Layers int
	// MaxClasses is the supported class limit (default 10, as in the
	// released TabPFN).
	MaxClasses int
	// MaxTrainRows caps the in-context training set (default 512;
	// the released model was developed for ≤1k instances).
	MaxTrainRows int
}

// pfnVirtualScale converts the slim stand-in kernel's real FLOPs into the
// full 25M-parameter transformer's virtual FLOPs for energy accounting.
const pfnVirtualScale = 12

// pfnWeightSeed fixes the "pretrained" projection weights. Pretraining
// happened offline (development stage); every TabPFN instance shares it.
const pfnWeightSeed = 0x9f17

// NewTabPFN returns TabPFN with released-model defaults.
func NewTabPFN() *TabPFN {
	return &TabPFN{ProjDim: 32, Layers: 2, MaxClasses: 10, MaxTrainRows: 512}
}

// Name implements System.
func (t *TabPFN) Name() string { return "TabPFN" }

// MinBudget implements System: TabPFN has no search-time parameter at all.
func (t *TabPFN) MinBudget() time.Duration { return 0 }

func (t *TabPFN) normalized() TabPFN {
	out := *t
	if out.ProjDim <= 0 {
		out.ProjDim = 32
	}
	if out.Layers <= 0 {
		out.Layers = 2
	}
	if out.MaxClasses <= 0 {
		out.MaxClasses = 10
	}
	if out.MaxTrainRows <= 0 {
		out.MaxTrainRows = 512
	}
	return out
}

// Fit implements System. "Fitting" only loads the pretrained model and
// memorizes (a subsample of) the training data; the paper measures this at
// 0.29±0.01s regardless of the requested budget.
func (t *TabPFN) Fit(train tabular.View, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, fmt.Errorf("tabpfn: %w", err)
	}
	cfg := t.normalized()
	rng := opts.rng()
	meter := opts.Meter
	tracker := startRun(meter)

	// Model load: constant generic work (weight deserialization and
	// device placement — I/O-bound, so a GPU does not accelerate it;
	// its idle draw still bills, which is why the paper's Table 3 shows
	// TabPFN's execution *energy* above 1 at an execution *time* near 1).
	meter.Run(energy.Execution, hw.Work{FLOPs: 580e3, Kind: hw.KindGeneric, ParallelFrac: 0.5})

	if train.Classes() > cfg.MaxClasses {
		// The released implementation supports at most 10 classes; on
		// tasks beyond the limit it cannot produce useful predictions
		// (the paper notes TabPFN's low average score stems from
		// exactly these datasets).
		return tracker.finish(&Result{
			System:    t.Name(),
			Predictor: newMajorityPredictor(train),
			Classes:   train.Classes(),
		}), nil
	}

	context := train
	if context.Rows() > cfg.MaxTrainRows {
		context = context.Subsample(cfg.MaxTrainRows, rng)
	}
	pfn := newPFNPredictor(context, cfg)

	return tracker.finish(&Result{
		System:       t.Name(),
		Predictor:    pfn,
		Classes:      train.Classes(),
		Evaluated:    0, // no search
		ValScore:     0, // no internal validation — zero-shot
		GPUInference: true,
	}), nil
}

// pfnPredictor is the fitted in-context model.
type pfnPredictor struct {
	cfg        TabPFN
	classes    int
	mean       []float64
	std        []float64
	keys       [][]float64 // per training row, per layer-shared embedding
	labels     []int
	w          [][][]float64 // [layer][out][in] projection weights
	bandwidth  float64       // kernel bandwidth (median-distance heuristic)
	priorBoost []float64     // per-class balanced-prior correction
}

func newPFNPredictor(context tabular.View, cfg TabPFN) *pfnPredictor {
	d := context.Features()
	p := &pfnPredictor{cfg: cfg, classes: context.Classes(), labels: context.LabelsInto(nil)}

	// Internal standardization (the released TabPFN z-scores inputs),
	// accumulated column-wise over the view; each moment sums its rows in
	// ascending order, matching the row-major loop bit for bit.
	p.mean = make([]float64, d)
	p.std = make([]float64, d)
	n := float64(context.Rows())
	var colBuf []float64
	if !context.Contiguous() {
		colBuf = make([]float64, context.Rows())
	}
	for j := 0; j < d; j++ {
		col := context.ColInto(j, colBuf)
		var sum float64
		for _, v := range col {
			sum += v
		}
		p.mean[j] = sum / n
		var sq float64
		for _, v := range col {
			diff := v - p.mean[j]
			sq += diff * diff
		}
		p.std[j] = math.Sqrt(sq / n)
		if p.std[j] < 1e-9 {
			p.std[j] = 1
		}
	}

	// "Pretrained" projections: input -> ProjDim, then per-layer
	// ProjDim -> ProjDim refinements.
	wrng := rand.New(rand.NewPCG(pfnWeightSeed, uint64(d)))
	p.w = make([][][]float64, cfg.Layers+1)
	p.w[0] = randomMatrix(cfg.ProjDim, d, wrng)
	for l := 1; l <= cfg.Layers; l++ {
		p.w[l] = randomMatrix(cfg.ProjDim, cfg.ProjDim, wrng)
	}

	// Precompute training-row embeddings (the "keys").
	p.keys = make([][]float64, context.Rows())
	rowBuf := make([]float64, d)
	for i := range p.keys {
		row := context.Row(i, rowBuf)
		rowBuf = row
		p.keys[i] = p.embed(row)
	}

	// Kernel bandwidth: a sharpened median of sampled pairwise key
	// distances (the "pretrained" attention temperature).
	p.bandwidth = 0.35 * medianPairDistance(p.keys, wrng)
	if p.bandwidth < 1e-6 {
		p.bandwidth = 1
	}

	// Balanced-prior correction: down-weight majority-class readout mass
	// by the square root of the class prior.
	counts := context.ClassCounts()
	p.priorBoost = make([]float64, context.Classes())
	for c, cnt := range counts {
		prior := (float64(cnt) + 1) / (n + float64(context.Classes()))
		p.priorBoost[c] = 1 / math.Sqrt(prior)
	}
	return p
}

// medianPairDistance estimates the median Euclidean distance over up to
// 256 sampled key pairs.
func medianPairDistance(keys [][]float64, rng *rand.Rand) float64 {
	n := len(keys)
	if n < 2 {
		return 1
	}
	samples := 256
	dists := make([]float64, 0, samples)
	for s := 0; s < samples; s++ {
		a, b := rng.IntN(n), rng.IntN(n)
		if a == b {
			continue
		}
		var sum float64
		for j := range keys[a] {
			diff := keys[a][j] - keys[b][j]
			sum += diff * diff
		}
		dists = append(dists, math.Sqrt(sum))
	}
	if len(dists) == 0 {
		return 1
	}
	sort.Float64s(dists)
	return dists[len(dists)/2]
}

func randomMatrix(rows, cols int, rng *rand.Rand) [][]float64 {
	m := make([][]float64, rows)
	scale := 1 / math.Sqrt(float64(cols))
	for r := range m {
		m[r] = make([]float64, cols)
		for c := range m[r] {
			m[r][c] = scale * rng.NormFloat64()
		}
	}
	return m
}

// embed standardizes a raw row and projects it to the attention space.
func (p *pfnPredictor) embed(row []float64) []float64 {
	std := make([]float64, len(p.mean))
	for j := range std {
		v := 0.0
		if j < len(row) {
			v = row[j]
		}
		std[j] = (v - p.mean[j]) / p.std[j]
	}
	if len(std) <= p.cfg.ProjDim {
		// Low-dimensional inputs skip the projection (it would only
		// blur distances); pad to the attention width.
		out := make([]float64, p.cfg.ProjDim)
		copy(out, std)
		return out
	}
	out := make([]float64, p.cfg.ProjDim)
	for o, w := range p.w[0] {
		var sum float64
		for j, v := range std {
			sum += w[j] * v
		}
		out[o] = sum
	}
	return out
}

// PredictProba implements ensemble.Predictor: for each query the entire
// training context is attended over in every layer — the structural reason
// TabPFN's per-instance inference energy dwarfs every search-based system.
func (p *pfnPredictor) PredictProba(x tabular.View) ([][]float64, ml.Cost) {
	nTrain := len(p.keys)
	dim := p.cfg.ProjDim
	m := x.Rows()
	out := make([][]float64, m)
	attn := make([]float64, nTrain)
	rowBuf := make([]float64, x.Features())
	twoBW := 2 * p.bandwidth * p.bandwidth
	for qi := 0; qi < m; qi++ {
		row := x.Row(qi, rowBuf)
		rowBuf = row
		q := p.embed(row)
		for l := 1; l <= p.cfg.Layers; l++ {
			// Distance-kernel attention against all training
			// embeddings (the pretrained metric).
			var maxScore float64 = math.Inf(-1)
			for i, k := range p.keys {
				var dist float64
				for j := range q {
					diff := q[j] - k[j]
					dist += diff * diff
				}
				attn[i] = -dist / twoBW
				if attn[i] > maxScore {
					maxScore = attn[i]
				}
			}
			var norm float64
			for i := range attn {
				attn[i] = math.Exp(attn[i] - maxScore)
				norm += attn[i]
			}
			if l == p.cfg.Layers {
				break // final attention feeds the readout directly
			}
			// Attended context vector, refined through the layer
			// projection with a small residual step that pulls the
			// query toward its neighbourhood.
			ctx := make([]float64, dim)
			for i, k := range p.keys {
				a := attn[i] / norm
				for j := range ctx {
					ctx[j] += a * k[j]
				}
			}
			for o, w := range p.w[l] {
				var sum float64
				for j, v := range ctx {
					sum += w[j] * v
				}
				q[o] = 0.8*q[o] + 0.2*ctx[o] + 0.05*math.Tanh(sum)
			}
		}
		// Class logits: label-weighted attention readout of the final
		// layer, corrected by the context's class prior (the pretrained
		// model was trained on balanced synthetic tasks, which acts as
		// an implicit balanced prior).
		proba := make([]float64, p.classes)
		var norm float64
		for i := range attn {
			norm += attn[i]
		}
		for i, a := range attn {
			proba[p.labels[i]] += a / norm
		}
		for c := range proba {
			proba[c] *= p.priorBoost[c]
		}
		smooth(proba)
		out[qi] = proba
	}
	realFLOPs := float64(m) * float64(p.cfg.Layers) * float64(nTrain) * float64(dim) * 6
	realFLOPs += float64(m) * float64(len(p.mean)) * float64(dim) * 2
	return out, ml.Cost{Matrix: realFLOPs * pfnVirtualScale}
}

// smooth adds a small floor so no class has exactly zero probability.
func smooth(proba []float64) {
	const eps = 1e-3
	var sum float64
	for i := range proba {
		proba[i] += eps
		sum += proba[i]
	}
	for i := range proba {
		proba[i] /= sum
	}
}
