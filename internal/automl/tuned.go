package automl

import (
	"time"

	"repro/internal/pipeline"
)

// NewTunedCAML returns CAML(tuned): CAML configured with the AutoML system
// parameters produced by the development-stage optimizer for the given
// search budget (paper §3.7, Table 5). The parameters passed in normally
// come from internal/metaopt; DefaultTunedParams supplies factory presets
// matching the paper's published Table 5 findings when no tuning run is
// available.
func NewTunedCAML(params CAMLParams) *CAML {
	return &CAML{Params: params, Label: "CAML(tuned)"}
}

// DefaultTunedParams reproduces the qualitative structure of the paper's
// Table 5 tuned parameters for a given search budget:
//
//   - the ML hyperparameter space *grows with the search time* — a 30s
//     budget keeps a few cheap classifiers, five minutes unlock more
//     complex families (MLP, random forest);
//   - decision trees appear at every budget ("decision trees can be both
//     simple and complex");
//   - upfront sampling is always selected ("our tuning process always ends
//     up sampling upfront" — a knob no state-of-the-art system has);
//   - incremental (successive-halving) training is always selected;
//   - random validation-set splitting per BO iteration is preferred;
//   - the evaluation fraction grows with the budget (17% at 5 minutes);
//   - refit is chosen at 1 minute but not at 5 minutes (the reason the
//     5-minute models need *less* inference energy than the 1-minute
//     ones).
func DefaultTunedParams(budget time.Duration) CAMLParams {
	p := DefaultCAMLParams()
	p.SampleRows = 700
	p.Incremental = true
	p.RandomValSplit = true
	switch {
	case budget <= 15*time.Second:
		p.Spec = pipeline.SpaceSpec{
			Models:            []string{"tree", "gaussian_nb", "logreg"},
			DataPreprocessors: true,
		}
		p.EvalFraction = 0.25
		p.SampleRows = 400
		p.Refit = false
		p.InitRandom = 5
	case budget <= 45*time.Second:
		p.Spec = pipeline.SpaceSpec{
			Models:            []string{"tree", "gaussian_nb", "logreg", "knn", "extra_trees"},
			DataPreprocessors: true,
		}
		p.EvalFraction = 0.12
		p.SampleRows = 600
		p.Refit = false
		p.InitRandom = 6
	case budget <= 2*time.Minute:
		p.Spec = pipeline.SpaceSpec{
			Models:            []string{"tree", "logreg", "knn", "extra_trees", "random_forest"},
			DataPreprocessors: true,
		}
		p.EvalFraction = 0.12
		p.SampleRows = 800
		p.Refit = true
		p.InitRandom = 8
	default:
		p.Spec = pipeline.SpaceSpec{
			Models:            []string{"tree", "random_forest", "extra_trees", "mlp", "gradient_boosting"},
			DataPreprocessors: true,
		}
		p.EvalFraction = 0.17
		p.SampleRows = 1000
		p.Refit = false
		p.InitRandom = 10
	}
	return p
}
