package automl

import (
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/openml"
)

// TestSystemsSmoke runs every system once on a small dataset and checks
// the core contract: a predictor comes back, test accuracy beats random
// guessing, execution consumed energy, and inference charges the meter.
func TestSystemsSmoke(t *testing.T) {
	spec, ok := openml.ByName("phoneme")
	if !ok {
		t.Fatal("phoneme spec missing")
	}
	ds := openml.Generate(spec, openml.SmallScale(), 1)
	rng := newTestRNG(7)
	train, test := ds.All().TrainTestSplit(rng)

	systems := []System{
		NewCAML(),
		NewTunedCAML(DefaultTunedParams(10 * time.Second)),
		NewAutoGluon(),
		NewAutoGluonFastInference(),
		NewAutoSklearn1(),
		NewAutoSklearn2(),
		NewFLAML(),
		NewTabPFN(),
		NewTPOT(),
	}
	for _, sys := range systems {
		sys := sys
		t.Run(sys.Name(), func(t *testing.T) {
			meter := energy.NewMeter(hw.XeonGold6132(), 1)
			budget := 30 * time.Second
			if sys.MinBudget() > budget {
				budget = sys.MinBudget()
			}
			res, err := sys.Fit(train, Options{Budget: budget, Meter: meter, Seed: 42})
			if err != nil {
				t.Fatalf("Fit: %v", err)
			}
			if res.Predictor == nil {
				t.Fatal("nil predictor")
			}
			if res.ExecKWh <= 0 {
				t.Errorf("execution consumed no energy")
			}
			if res.ExecTime <= 0 {
				t.Errorf("execution consumed no virtual time")
			}
			pred, err := res.Predict(test, meter)
			if err != nil {
				t.Fatalf("Predict: %v", err)
			}
			acc := metrics.BalancedAccuracy(test.LabelsInto(nil), pred, test.Classes())
			t.Logf("%s: bacc=%.3f exec=%s kwh=%.6f evaluated=%d", sys.Name(), acc, res.ExecTime, res.ExecKWh, res.Evaluated)
			if acc < 0.5 {
				t.Errorf("balanced accuracy %.3f not better than random on an easy binary task", acc)
			}
			if meter.Tracker().KWh(energy.Inference) <= 0 {
				t.Errorf("inference consumed no energy")
			}
		})
	}
}
