package automl

import (
	"math"
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/openml"
	"repro/internal/pipeline"
	"repro/internal/tabular"
)

func loadTrainTest(t *testing.T, name string, seed uint64) (tabular.View, tabular.View) {
	t.Helper()
	spec, ok := openml.ByName(name)
	if !ok {
		t.Fatalf("dataset %s missing", name)
	}
	ds := openml.Generate(spec, openml.SmallScale(), seed)
	rng := newTestRNG(seed)
	return ds.All().TrainTestSplit(rng)
}

func fitOn(t *testing.T, sys System, train tabular.View, budget time.Duration, seed uint64) (*Result, *energy.Meter) {
	t.Helper()
	meter := energy.NewMeter(hw.XeonGold6132(), 1)
	res, err := sys.Fit(train, Options{Budget: budget, Meter: meter, Seed: seed})
	if err != nil {
		t.Fatalf("%s: %v", sys.Name(), err)
	}
	return res, meter
}

// TestCAMLStrictBudget reproduces paper Table 7's defining CAML property:
// actual execution time stays within a few percent of the budget.
func TestCAMLStrictBudget(t *testing.T) {
	train, _ := loadTrainTest(t, "segment", 1)
	for _, budget := range []time.Duration{10 * time.Second, 30 * time.Second} {
		res, _ := fitOn(t, NewCAML(), train, budget, 3)
		overrun := float64(res.ExecTime-budget) / float64(budget)
		if overrun > 0.08 {
			t.Errorf("budget %s: CAML ran %s (%.0f%% overrun) — paper: strict adherence",
				budget, res.ExecTime, 100*overrun)
		}
		if res.ExecTime < budget/2 {
			t.Errorf("budget %s: CAML quit early at %s", budget, res.ExecTime)
		}
	}
}

// TestTabPFNConstantExecution: TabPFN's execution time is independent of
// the budget (paper Table 7: 0.29±0.01s everywhere).
func TestTabPFNConstantExecution(t *testing.T) {
	train, _ := loadTrainTest(t, "credit-g", 2)
	var times []time.Duration
	for _, budget := range []time.Duration{time.Second, time.Minute, 5 * time.Minute} {
		res, _ := fitOn(t, NewTabPFN(), train, budget, 4)
		times = append(times, res.ExecTime)
	}
	for i := 1; i < len(times); i++ {
		if times[i] != times[0] {
			t.Errorf("TabPFN execution time varies with budget: %v", times)
		}
	}
	if times[0] > time.Second {
		t.Errorf("TabPFN execution %v, want well below a second", times[0])
	}
}

// TestTabPFNClassLimit: beyond 10 classes the released TabPFN cannot
// predict usefully (paper §3.2).
func TestTabPFNClassLimit(t *testing.T) {
	rng := newTestRNG(5)
	many := &tabular.Dataset{Name: "many", Classes: 12}
	for i := 0; i < 360; i++ {
		c := i % 12
		many.X = append(many.X, []float64{6*float64(c) + rng.NormFloat64()})
		many.Y = append(many.Y, c)
	}
	res, meter := fitOn(t, NewTabPFN(), many.View(), time.Second, 6)
	pred, err := res.Predict(many.View(), meter)
	if err != nil {
		t.Fatal(err)
	}
	acc := metrics.BalancedAccuracy(many.Y, pred, many.Classes)
	if acc > 0.15 {
		t.Errorf("TabPFN scored %.3f on a 12-class task — the 10-class limit must bind", acc)
	}
}

// TestTabPFNInferenceDominates: the zero-shot system's per-instance
// inference energy must exceed a single-model system's by orders of
// magnitude (paper Fig. 3 right, Observation O2).
func TestTabPFNInferenceEnergyProfile(t *testing.T) {
	train, test := loadTrainTest(t, "phoneme", 7)
	pfnRes, pfnMeter := fitOn(t, NewTabPFN(), train, time.Second, 8)
	if _, err := pfnRes.Predict(test, pfnMeter); err != nil {
		t.Fatal(err)
	}
	camlRes, camlMeter := fitOn(t, NewCAML(), train, 30*time.Second, 8)
	if _, err := camlRes.Predict(test, camlMeter); err != nil {
		t.Fatal(err)
	}
	pfnInfer := pfnMeter.Tracker().KWh(energy.Inference)
	camlInfer := camlMeter.Tracker().KWh(energy.Inference)
	if pfnInfer < 20*camlInfer {
		t.Errorf("TabPFN inference %.3g kWh not ≫ CAML %.3g kWh", pfnInfer, camlInfer)
	}
	pfnExec := pfnMeter.Tracker().KWh(energy.Execution)
	camlExec := camlMeter.Tracker().KWh(energy.Execution)
	if pfnExec > camlExec/10 {
		t.Errorf("TabPFN execution %.3g kWh not ≪ CAML %.3g kWh", pfnExec, camlExec)
	}
	if !pfnRes.GPUInference {
		t.Error("TabPFN not marked GPU-capable at inference")
	}
	if camlRes.GPUInference {
		t.Error("CAML (scikit-learn stack) marked GPU-capable")
	}
}

// TestEnsembleInferenceCost is Observation O1: systems that ensemble need
// at least an order of magnitude more inference energy than systems that
// ship one model.
func TestEnsembleInferenceCost(t *testing.T) {
	train, test := loadTrainTest(t, "sylvine", 9)
	agRes, agMeter := fitOn(t, NewAutoGluon(), train, 30*time.Second, 10)
	if _, err := agRes.Predict(test, agMeter); err != nil {
		t.Fatal(err)
	}
	flamlRes, flamlMeter := fitOn(t, NewFLAML(), train, 30*time.Second, 10)
	if _, err := flamlRes.Predict(test, flamlMeter); err != nil {
		t.Fatal(err)
	}
	agInfer := agMeter.Tracker().KWh(energy.Inference)
	flamlInfer := flamlMeter.Tracker().KWh(energy.Inference)
	if agInfer < 10*flamlInfer {
		t.Errorf("O1 violated: AutoGluon inference %.3g kWh < 10x FLAML %.3g kWh", agInfer, flamlInfer)
	}
}

// TestAutoGluonRefitPresetSavesInference: the inference-optimized preset
// must cut inference energy versus the quality preset (paper §3.4: up to
// 79%).
func TestAutoGluonRefitPresetSavesInference(t *testing.T) {
	train, test := loadTrainTest(t, "vehicle", 11)
	quality, qMeter := fitOn(t, NewAutoGluon(), train, 30*time.Second, 12)
	if _, err := quality.Predict(test, qMeter); err != nil {
		t.Fatal(err)
	}
	fast, fMeter := fitOn(t, NewAutoGluonFastInference(), train, 30*time.Second, 12)
	if _, err := fast.Predict(test, fMeter); err != nil {
		t.Fatal(err)
	}
	qInfer := qMeter.Tracker().KWh(energy.Inference)
	fInfer := fMeter.Tracker().KWh(energy.Inference)
	if fInfer >= qInfer {
		t.Errorf("refit preset inference %.3g kWh not below quality preset %.3g kWh", fInfer, qInfer)
	}
}

// TestCAMLInferenceConstraint: a binding constraint must reduce the
// selected pipeline's inference cost (paper §3.4, Observation O3).
func TestCAMLInferenceConstraint(t *testing.T) {
	train, test := loadTrainTest(t, "mfeat-factors", 13)
	free, freeMeter := fitOn(t, NewCAML(), train, 30*time.Second, 14)
	if _, err := free.Predict(test, freeMeter); err != nil {
		t.Fatal(err)
	}
	params := DefaultCAMLParams()
	params.InferenceLimit = 100 * time.Microsecond
	constrained, conMeter := fitOn(t, &CAML{Params: params, Label: "CAML(c)"}, train, 30*time.Second, 14)
	if _, err := constrained.Predict(test, conMeter); err != nil {
		t.Fatal(err)
	}
	freeInfer := freeMeter.Tracker().KWh(energy.Inference)
	conInfer := conMeter.Tracker().KWh(energy.Inference)
	if conInfer > freeInfer {
		t.Errorf("constrained inference %.3g kWh above unconstrained %.3g kWh", conInfer, freeInfer)
	}
	// The constraint must actually hold on the returned pipeline.
	machine := hw.XeonGold6132()
	if p, ok := constrained.Predictor.(*pipeline.Pipeline); ok {
		_, cost := p.PredictProba(test.Head(8))
		var perInst time.Duration
		for _, w := range cost.Works(0) {
			perInst += machine.Duration(w, 1)
		}
		perInst /= 8
		if perInst > 2*params.InferenceLimit {
			t.Errorf("returned pipeline's per-instance inference %v violates the %v constraint", perInst, params.InferenceLimit)
		}
	}
}

// TestDeterminism: identical options must reproduce identical results —
// the property that makes the whole study replayable.
func TestDeterminism(t *testing.T) {
	train, test := loadTrainTest(t, "credit-g", 15)
	for _, build := range []func() System{
		func() System { return NewCAML() },
		func() System { return NewAutoGluon() },
		func() System { return NewFLAML() },
		func() System { return NewTabPFN() },
	} {
		runOnce := func() (float64, float64) {
			meter := energy.NewMeter(hw.XeonGold6132(), 1)
			res, err := build().Fit(train, Options{Budget: 10 * time.Second, Meter: meter, Seed: 99})
			if err != nil {
				t.Fatal(err)
			}
			pred, err := res.Predict(test, meter)
			if err != nil {
				t.Fatal(err)
			}
			return metrics.BalancedAccuracy(test.LabelsInto(nil), pred, test.Classes()), meter.Tracker().TotalKWh()
		}
		acc1, kwh1 := runOnce()
		acc2, kwh2 := runOnce()
		if acc1 != acc2 || kwh1 != kwh2 {
			t.Errorf("%s: non-deterministic: acc %v/%v, kWh %v/%v", build().Name(), acc1, acc2, kwh1, kwh2)
		}
	}
}

// TestWarmStartPortfolio: auto-sklearn 2's portfolio must order
// configurations by the dataset's meta-features.
func TestWarmStartPortfolio(t *testing.T) {
	space, err := pipeline.FullSpec().Space()
	if err != nil {
		t.Fatal(err)
	}
	small := tabular.MetaFeatures{LogRows: math.Log(200), LogFeatures: math.Log(5), LogClasses: math.Log(2)}
	wide := tabular.MetaFeatures{LogRows: math.Log(5000), LogFeatures: math.Log(4000), LogClasses: math.Log(2)}
	smallPortfolio := WarmStartPortfolio(small, space, 5*time.Minute)
	widePortfolio := WarmStartPortfolio(wide, space, 5*time.Minute)
	if len(smallPortfolio) == 0 || len(widePortfolio) == 0 {
		t.Fatal("empty portfolio")
	}
	// Orders must differ: the warm start is dataset-aware.
	same := true
	for i := range smallPortfolio {
		if i < len(widePortfolio) && smallPortfolio[i].Key() != widePortfolio[i].Key() {
			same = false
			break
		}
	}
	if same {
		t.Error("portfolio ordering ignores meta-features")
	}
	// Every portfolio entry must build.
	for i, cfg := range smallPortfolio {
		if _, err := pipeline.FullSpec().Build(cfg, 10); err != nil {
			t.Errorf("portfolio entry %d does not build: %v", i, err)
		}
	}
	// At short budgets the selector is cost-aware: the first entry must
	// be a cheap family.
	shortPortfolio := WarmStartPortfolio(wide, space, 30*time.Second)
	first, err := pipeline.FullSpec().Build(shortPortfolio[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	switch first.ModelFamily {
	case "tree", "gaussian_nb", "logreg", "svm", "knn", "bernoulli_nb":
	default:
		t.Errorf("30s portfolio starts with expensive family %q", first.ModelFamily)
	}
}

// TestMinBudgets encodes the paper's benchmarked minimum budgets.
func TestMinBudgets(t *testing.T) {
	if got := NewAutoSklearn1().MinBudget(); got != 30*time.Second {
		t.Errorf("ASKL min budget %v, want 30s", got)
	}
	if got := NewTPOT().MinBudget(); got != time.Minute {
		t.Errorf("TPOT min budget %v, want 1m", got)
	}
	for _, sys := range []System{NewCAML(), NewFLAML(), NewTabPFN(), NewAutoGluon()} {
		if sys.MinBudget() != 0 {
			t.Errorf("%s min budget %v, want 0", sys.Name(), sys.MinBudget())
		}
	}
}

// TestOptionsValidation: a nil meter must be rejected by every system.
func TestOptionsValidation(t *testing.T) {
	train, _ := loadTrainTest(t, "credit-g", 16)
	for _, sys := range []System{NewCAML(), NewAutoGluon(), NewFLAML(), NewTabPFN(), NewTPOT(), NewAutoSklearn1()} {
		if _, err := sys.Fit(train, Options{Budget: time.Second}); err == nil {
			t.Errorf("%s accepted a nil meter", sys.Name())
		}
	}
}

// TestTunedParamsReflectTable5 checks the published qualitative structure
// of the tuned parameters.
func TestTunedParamsReflectTable5(t *testing.T) {
	short := DefaultTunedParams(10 * time.Second)
	long := DefaultTunedParams(5 * time.Minute)
	if len(short.Spec.Models) >= len(long.Spec.Models) {
		t.Errorf("search space must grow with budget: %d vs %d families",
			len(short.Spec.Models), len(long.Spec.Models))
	}
	hasTree := func(models []string) bool {
		for _, m := range models {
			if m == "tree" {
				return true
			}
		}
		return false
	}
	if !hasTree(short.Spec.Models) || !hasTree(long.Spec.Models) {
		t.Error("decision trees must appear at every budget (paper Table 5)")
	}
	for _, p := range []CAMLParams{short, long} {
		if p.SampleRows == 0 {
			t.Error("upfront sampling must always be selected (paper §3.7)")
		}
		if !p.Incremental {
			t.Error("incremental training must always be selected (paper §3.7)")
		}
		if !p.RandomValSplit {
			t.Error("random validation splitting must be preferred (paper §3.7)")
		}
	}
	// Refit at 1 minute but not at 5 (the paper's explanation for the
	// 5-minute models' lower inference energy).
	if !DefaultTunedParams(time.Minute).Refit {
		t.Error("1-minute preset should refit")
	}
	if DefaultTunedParams(5 * time.Minute).Refit {
		t.Error("5-minute preset should not refit")
	}
	if long.EvalFraction != 0.17 {
		t.Errorf("5-minute evaluation fraction %v, want 0.17 (paper Table 5)", long.EvalFraction)
	}
}

// TestChargeCostCapped verifies the deadline-kill accounting used by CAML.
func TestChargeCostCapped(t *testing.T) {
	meter := energy.NewMeter(hw.XeonGold6132(), 1)
	// 2e6 generic FLOPs = 1 virtual second on the Xeon model.
	cost := mlCost(4e6)
	d, truncated := chargeCostCapped(meter, energy.Execution, cost, 0, 10*time.Second)
	if truncated {
		t.Error("under-cap work truncated")
	}
	if math.Abs(d.Seconds()-2) > 0.01 {
		t.Errorf("duration %v, want ~2s", d)
	}
	before := meter.Clock().Now()
	d, truncated = chargeCostCapped(meter, energy.Execution, mlCost(40e6), 0, time.Second)
	if !truncated {
		t.Error("over-cap work not truncated")
	}
	if d != time.Second {
		t.Errorf("charged %v, want exactly the 1s cap", d)
	}
	if got := meter.Clock().Now() - before; math.Abs(got.Seconds()-1) > 0.01 {
		t.Errorf("clock advanced %v, want ~1s", got)
	}
	if _, truncated := chargeCostCapped(meter, energy.Execution, mlCost(1), 0, 0); !truncated {
		t.Error("zero cap did not truncate")
	}
}

func mlCost(flops float64) ml.Cost {
	return ml.Cost{Generic: flops}
}

// TestChargeCostCappedEdgeCases pins the deadline-kill boundary behaviour:
// non-positive caps charge nothing, and work whose estimate lands exactly
// on the cap completes uncut.
func TestChargeCostCappedEdgeCases(t *testing.T) {
	meter := energy.NewMeter(hw.XeonGold6132(), 1)

	for _, cap := range []time.Duration{0, -time.Second} {
		d, truncated := chargeCostCapped(meter, energy.Execution, mlCost(2e6), 0, cap)
		if !truncated {
			t.Errorf("cap %v did not truncate", cap)
		}
		if d != 0 {
			t.Errorf("cap %v charged %v, want 0", cap, d)
		}
	}
	if meter.Clock().Now() != 0 {
		t.Errorf("non-positive caps advanced the clock to %v", meter.Clock().Now())
	}
	if meter.Tracker().KWh(energy.Execution) != 0 {
		t.Error("non-positive caps charged energy")
	}

	// 2e6 generic FLOPs = 1 virtual second on the Xeon model: a cost whose
	// estimate equals the cap exactly is not cut off.
	d, truncated := chargeCostCapped(meter, energy.Execution, mlCost(2e6), 0, time.Second)
	if truncated {
		t.Error("cost exactly at the cap was truncated")
	}
	if d != time.Second {
		t.Errorf("charged %v, want exactly 1s", d)
	}
	if got := meter.Clock().Now(); got != time.Second {
		t.Errorf("clock at %v, want 1s", got)
	}
}

// nilProbaPredictor spends inference compute but returns no
// probabilities — the failure mode whose energy must still be metered.
type nilProbaPredictor struct{}

func (nilProbaPredictor) PredictProba(tabular.View) ([][]float64, ml.Cost) {
	return nil, ml.Cost{Generic: 1e6}
}

func TestPredictProbaChargesInferenceOnNilProba(t *testing.T) {
	r := &Result{System: "stub", Predictor: nilProbaPredictor{}}
	meter := energy.NewMeter(hw.XeonGold6132(), 1)
	spec, ok := openml.ByName("phoneme")
	if !ok {
		t.Fatal("dataset phoneme missing")
	}
	x := openml.Generate(spec, openml.SmallScale(), 4).All()
	if _, err := r.PredictProba(x, meter); err == nil {
		t.Fatal("nil probabilities did not surface an error")
	}
	if kwh := meter.Tracker().KWh(energy.Inference); kwh <= 0 {
		t.Errorf("inference energy %v on the nil-proba error path, want > 0", kwh)
	}
}
