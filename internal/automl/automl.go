// Package automl implements the seven AutoML systems the paper evaluates,
// each reproducing its published search architecture (paper Table 1):
//
//   - AutoGluon: predefined pipelines, k-fold bagging, stacking, Caruana
//     ensemble weighting; optional inference-optimized refit preset.
//   - AutoSklearn 1: Bayesian optimization over the full space with random
//     initialization, Caruana ensembling of the top evaluated pipelines.
//   - AutoSklearn 2: the same with a meta-learned warm-start portfolio.
//   - FLAML: cost-frugal search from low-complexity models on small
//     samples toward complex models, single best model, no ensembling.
//   - TabPFN: a prior-fitted network — zero search, in-context inference.
//   - TPOT: NSGA-II genetic programming with 5-fold cross-validation.
//   - CAML: Bayesian optimization with successive halving, constraint
//     support (inference time), strict budget adherence.
//
// Each system schedules against the virtual clock through an energy meter;
// budget-fidelity behaviour (paper Table 7) emerges from the systems'
// control flow, not from scripted timings.
package automl

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/energy"
	"repro/internal/ensemble"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/pipeline"
	"repro/internal/tabular"
)

// Options configure one AutoML execution.
type Options struct {
	// Budget is the search-time budget. Systems treat it with their own
	// fidelity (paper §3.10); TabPFN ignores it.
	Budget time.Duration
	// Meter receives the execution-stage energy and provides the
	// virtual clock. Required.
	Meter *energy.Meter
	// Seed makes the run reproducible.
	Seed uint64
	// Abandon, when non-nil, is closed by the harness's stall watchdog
	// once the attempt has stopped making virtual progress and has been
	// given up on. The built-in systems never block and ignore it; the
	// injected hang fault parks on it so an abandoned hang unwinds
	// instead of leaking its goroutine.
	Abandon <-chan struct{}
}

func (o Options) validate() error {
	if o.Meter == nil {
		return errors.New("automl: options require a meter")
	}
	return nil
}

func (o Options) rng() *rand.Rand {
	return rand.New(rand.NewPCG(o.Seed, 0x5eed))
}

// System is one AutoML system under study.
type System interface {
	// Name identifies the system in reports.
	Name() string
	// MinBudget is the smallest supported search budget (0 = any; the
	// paper benchmarks ASKL only from 30s and TPOT from 1 minute).
	MinBudget() time.Duration
	// Fit searches for a pipeline (or ensemble) on the training data.
	Fit(train tabular.View, opts Options) (*Result, error)
}

// Result is the outcome of one AutoML execution.
type Result struct {
	// System is the producing system's name.
	System string
	// Predictor is the final model or ensemble.
	Predictor ensemble.Predictor
	// Classes is the task's class count.
	Classes int
	// ExecTime is the virtual wall-clock the execution consumed —
	// compare with the requested budget for paper Table 7.
	ExecTime time.Duration
	// ExecKWh is the execution-stage energy consumed.
	ExecKWh float64
	// Evaluated counts the pipelines trained during search.
	Evaluated int
	// ValScore is the internal validation balanced accuracy of the
	// returned predictor.
	ValScore float64
	// GPUInference reports whether the predictor's inference can be
	// offloaded to a GPU. Only TabPFN's transformer can; the
	// scikit-learn-style systems predict on CPU even on a GPU machine,
	// leaving the GPU drawing idle power (paper Table 3).
	GPUInference bool
	// BestSpec and BestConfig, when set, describe the best single
	// evaluated pipeline as a deterministic recipe: BestSpec.Build
	// followed by a deterministic refit reconstructs a deployable
	// model. For ensemble systems this is the top-scoring member, not
	// the ensemble; `greenrun -save-artifact` persists the recipe via
	// internal/artifact. Systems with no per-config search (TabPFN's
	// pretrained transformer) leave them empty.
	BestSpec   *pipeline.SpaceSpec
	BestConfig pipeline.Config
}

// Predict classifies the viewed rows, charging the inference cost to the
// meter's inference stage.
func (r *Result) Predict(x tabular.View, meter *energy.Meter) ([]int, error) {
	proba, err := r.PredictProba(x, meter)
	if err != nil {
		return nil, err
	}
	return metrics.ArgmaxRows(proba), nil
}

// PredictProba returns class probabilities, charging inference energy.
func (r *Result) PredictProba(x tabular.View, meter *energy.Meter) ([][]float64, error) {
	proba, _, err := r.PredictProbaCost(x, meter) //greenlint:allow meteredcost PredictProbaCost charges the cost to the meter itself; the copy is for callers that also persist it
	return proba, err
}

// PredictProbaCost is PredictProba plus the raw inference ml.Cost, for
// callers that persist the cost alongside the predictions (the
// evaluation repository) in addition to charging it to the meter.
func (r *Result) PredictProbaCost(x tabular.View, meter *energy.Meter) ([][]float64, ml.Cost, error) {
	if r.Predictor == nil {
		return nil, ml.Cost{}, fmt.Errorf("automl: %s produced no predictor", r.System)
	}
	proba, cost := r.Predictor.PredictProba(x)
	// Charge before the nil check: the predictor spent the compute
	// whether or not it produced usable probabilities.
	chargeCost(meter, energy.Inference, cost, 0)
	if proba == nil {
		return nil, cost, fmt.Errorf("automl: %s predictor returned no probabilities", r.System)
	}
	return proba, cost, nil
}

// chargeCost runs a model cost through the meter at the given stage.
func chargeCost(meter *energy.Meter, stage energy.Stage, cost ml.Cost, parallelFrac float64) time.Duration {
	var total time.Duration
	for _, w := range cost.Works(parallelFrac) {
		total += meter.Run(stage, w)
	}
	return total
}

// chargeCostCapped charges at most `cap` of virtual time for the cost and
// reports whether the work was cut off. This models a system that kills a
// running evaluation at a hard deadline (CAML's strict budget adherence,
// paper §3.10): the energy up to the deadline is spent, the result is
// discarded by the caller.
func chargeCostCapped(meter *energy.Meter, stage energy.Stage, cost ml.Cost, parallelFrac float64, cap time.Duration) (time.Duration, bool) {
	if cap <= 0 {
		return 0, true
	}
	var total time.Duration
	for _, w := range cost.Works(parallelFrac) {
		est := meter.Machine().Duration(w, meter.Cores())
		if total+est > cap {
			remaining := cap - total
			if est > 0 && remaining > 0 {
				w.FLOPs *= float64(remaining) / float64(est)
				meter.Run(stage, w)
			}
			return cap, true
		}
		total += meter.Run(stage, w)
	}
	return total, false
}

// run wraps a system execution with bookkeeping shared by all systems:
// clock and energy deltas.
type run struct {
	meter     *energy.Meter
	startTime time.Duration
	startKWh  float64
}

func startRun(meter *energy.Meter) run {
	return run{
		meter:     meter,
		startTime: meter.Clock().Now(),
		startKWh:  meter.Tracker().KWh(energy.Execution),
	}
}

func (r run) finish(res *Result) *Result {
	res.ExecTime = r.meter.Clock().Now() - r.startTime
	res.ExecKWh = r.meter.Tracker().KWh(energy.Execution) - r.startKWh
	return res
}

// holdoutSplit produces the system's internal train/validation split as
// index views over the shared frame — no matrix copies.
func holdoutSplit(ds tabular.View, valFrac float64, rng *rand.Rand) (train, val tabular.View) {
	val, train = ds.StratifiedSplit(valFrac, rng)
	return train, val
}

// evaluation is the outcome of training one pipeline candidate.
type evaluation struct {
	pipe     *pipeline.Pipeline
	config   pipeline.Config
	score    float64
	valProba [][]float64
	fitTime  time.Duration
}

// evaluatePipeline fits a pipeline on train, scores it on val and charges
// all compute to the meter's execution stage. A training failure returns
// ok == false (the candidate is discarded, mirroring pipelines that crash
// or exceed memory in the real systems).
func evaluatePipeline(p *pipeline.Pipeline, train, val tabular.View, meter *energy.Meter, rng *rand.Rand) (evaluation, bool) {
	fitCost, err := p.Fit(train, rng)
	fitTime := chargeCost(meter, energy.Execution, fitCost, p.ParallelFrac())
	if err != nil {
		return evaluation{}, false
	}
	proba, predCost := p.PredictProba(val)
	fitTime += chargeCost(meter, energy.Execution, predCost, p.ParallelFrac())
	labels := metrics.ArgmaxRows(proba)
	score := metrics.BalancedAccuracy(val.LabelsInto(nil), labels, val.Classes())
	return evaluation{pipe: p, score: score, valProba: proba, fitTime: fitTime}, true
}

// singlePredictor wraps a pipeline as the result predictor.
func singlePredictor(p *pipeline.Pipeline) ensemble.Predictor { return p }

// MajorityResult builds the harness's graceful-degradation fallback: a
// constant majority-class predictor standing in for a system whose run
// produced no usable model (AMLB's constant-predictor semantics). The
// result carries the failing system's name so reports attribute the
// fallback correctly.
func MajorityResult(system string, train tabular.View) *Result {
	return &Result{
		System:    system,
		Predictor: newMajorityPredictor(train),
		Classes:   train.Classes(),
	}
}

// majorityPredictor predicts the constant majority class — the fallback
// when a system cannot produce anything better (e.g. TabPFN beyond its
// class limit).
type majorityPredictor struct {
	classes int
	label   int
}

func newMajorityPredictor(ds tabular.View) *majorityPredictor {
	counts := ds.ClassCounts()
	best := 0
	for c, n := range counts {
		if n > counts[best] {
			best = c
		}
	}
	return &majorityPredictor{classes: ds.Classes(), label: best}
}

// PredictProba implements ensemble.Predictor.
func (m *majorityPredictor) PredictProba(x tabular.View) ([][]float64, ml.Cost) {
	n := x.Rows()
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, m.classes)
		row[m.label] = 1
		out[i] = row
	}
	return out, ml.Cost{Generic: float64(n)}
}
