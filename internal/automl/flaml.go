package automl

import (
	"fmt"
	"time"

	"repro/internal/pipeline"
	"repro/internal/tabular"
)

// FLAML reproduces the cost-frugal AutoML architecture of Wang et al.
// (MLSys 2021, paper Table 1): the search space contains models only (no
// preprocessor search), initialization starts from the lowest-complexity
// configuration of the cheapest families on a very small training sample,
// and the search enforces a prior of cost — complexity and sample size
// grow only when cheaper options stop improving. FLAML returns a single
// low-cost model and never ensembles, which is why it has the lowest
// inference energy in the study. Budget fidelity: the evaluation running
// when the budget expires is finished, producing a small, roughly
// constant overrun (paper Table 7).
type FLAML struct{}

// NewFLAML returns the FLAML system.
func NewFLAML() *FLAML { return &FLAML{} }

// Name implements System.
func (f *FLAML) Name() string { return "FLAML" }

// MinBudget implements System.
func (f *FLAML) MinBudget() time.Duration { return 0 }

// flamlState tracks the local search of one model family.
type flamlState struct {
	family     string
	spec       pipeline.SpaceSpec
	space      *pipeline.Space
	best       pipeline.Config
	bestScore  float64
	complexity float64 // current complexity rung in [0,1]
	stall      int     // evaluations since last improvement
	lastCost   time.Duration
}

// lowComplexityConfig returns the cheapest configuration of a family: the
// paper's example is "a random forest with 5 trees with at most 10 leaves
// each".
func lowComplexityConfig(space *pipeline.Space, complexity float64) pipeline.Config {
	cfg := space.Default()
	for _, p := range space.Params {
		switch p.Kind {
		case pipeline.Int, pipeline.Float:
			// Interpolate from Min toward the default as complexity
			// grows; complexity 1 unlocks the full default scale.
			v := p.Min + complexity*(p.Max-p.Min)*0.6
			if p.Kind == pipeline.Int {
				v = float64(int(v + 0.5))
			}
			cfg[p.Name] = v
		}
	}
	return cfg
}

// Fit implements System.
func (f *FLAML) Fit(train tabular.View, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, fmt.Errorf("flaml: %w", err)
	}
	rng := opts.rng()
	meter := opts.Meter
	tracker := startRun(meter)
	budget := meter.NewBudget(opts.Budget)

	fitTrain, val := holdoutSplit(train, 0.25, rng)

	// Families in ascending cost order; each gets its own local search
	// state.
	var states []*flamlState
	for _, family := range pipeline.ModelsByCost() {
		spec := pipeline.SpaceSpec{Models: []string{family}}
		space, err := spec.Space()
		if err != nil {
			continue
		}
		states = append(states, &flamlState{
			family: family,
			spec:   spec,
			space:  space,
			best:   lowComplexityConfig(space, 0),
		})
	}

	// Sample-size schedule: start tiny, double when progress stalls.
	sampleRows := 10 * train.Classes()
	if sampleRows > fitTrain.Rows() {
		sampleRows = fitTrain.Rows()
	}
	sample := fitTrain.Subsample(sampleRows, rng)

	var best evaluation
	var bestState *flamlState
	var bestCfg pipeline.Config
	evaluated := 0
	stallGlobal := 0
	active := 0 // index of the family currently searched

	for !budget.Exceeded() && len(states) > 0 {
		st := states[active]

		// Candidate: perturb the family's best within its current
		// complexity rung, biased toward slightly higher complexity.
		cfg := st.space.Mutate(st.best, 0.4, rng)
		cfg = blendComplexity(st.space, cfg, st.complexity)

		p, err := st.spec.Build(cfg, sample.Features())
		if err != nil {
			advanceFamily(&active, len(states))
			continue
		}
		ev, ok := evaluatePipeline(p, sample, val, meter, rng)
		evaluated++
		if ok {
			st.lastCost = ev.fitTime
			if ev.score > st.bestScore {
				st.bestScore = ev.score
				st.best = cfg
				st.stall = 0
			} else {
				st.stall++
			}
			if best.pipe == nil || ev.score > best.score {
				best = ev
				bestState = st
				bestCfg = cfg
				stallGlobal = 0
			} else {
				stallGlobal++
			}
		} else {
			st.stall++
			stallGlobal++
		}

		// Cost-frugal escalation: if the family stalls, raise its
		// complexity rung; if complexity is maxed, move to the next
		// (more expensive) family; if everything stalls, grow the
		// sample (paper §2.2: "once increasing model complexity does
		// not yield more accuracy gains, they increase the training
		// set size and repeat").
		if st.stall >= 3 {
			st.stall = 0
			if st.complexity < 1 {
				st.complexity += 0.25
			} else {
				advanceFamily(&active, len(states))
			}
		}
		if stallGlobal >= 8 && sample.Rows() < fitTrain.Rows() {
			stallGlobal = 0
			sampleRows *= 2
			if sampleRows > fitTrain.Rows() {
				sampleRows = fitTrain.Rows()
			}
			sample = fitTrain.Subsample(sampleRows, rng)
		}
	}

	if best.pipe == nil {
		return tracker.finish(&Result{
			System:    f.Name(),
			Predictor: newMajorityPredictor(train),
			Classes:   train.Classes(),
		}), nil
	}
	return tracker.finish(&Result{
		System:     f.Name(),
		Predictor:  singlePredictor(best.pipe),
		Classes:    train.Classes(),
		Evaluated:  evaluated,
		ValScore:   best.score,
		BestSpec:   &bestState.spec,
		BestConfig: bestCfg,
	}), nil
}

func advanceFamily(active *int, n int) {
	if n == 0 {
		return
	}
	*active = (*active + 1) % n
}

// blendComplexity pulls numeric parameters toward the complexity rung's
// scale, implementing FLAML's low-to-high complexity prior.
func blendComplexity(space *pipeline.Space, cfg pipeline.Config, complexity float64) pipeline.Config {
	out := cfg.Clone()
	anchor := lowComplexityConfig(space, complexity)
	for _, p := range space.Params {
		if p.Kind != pipeline.Int && p.Kind != pipeline.Float {
			continue
		}
		// Blend 70% toward the rung anchor with a little jitter.
		v := 0.3*out[p.Name] + 0.7*anchor[p.Name]
		if p.Kind == pipeline.Int {
			v = float64(int(v + 0.5))
		}
		out[p.Name] = v
	}
	return out
}
