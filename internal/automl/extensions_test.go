package automl

import (
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/pipeline"
)

func hwXeon() *hw.Machine { return hw.XeonGold6132() }

// TestEarlyStoppingSavesEnergy: with a patience set, CAML must stop at the
// validation plateau and consume less execution energy than the
// full-budget run (paper §3.8's proposed optimization).
func TestEarlyStoppingSavesEnergy(t *testing.T) {
	train, test := loadTrainTest(t, "blood-transfusion-service-center", 31)

	full, fullMeter := fitOn(t, NewCAML(), train, time.Minute, 32)
	if _, err := full.Predict(test, fullMeter); err != nil {
		t.Fatal(err)
	}

	params := DefaultCAMLParams()
	params.EarlyStopPatience = 8
	early, earlyMeter := fitOn(t, &CAML{Params: params, Label: "CAML(early)"}, train, time.Minute, 32)
	if _, err := early.Predict(test, earlyMeter); err != nil {
		t.Fatal(err)
	}

	if early.ExecTime >= full.ExecTime {
		t.Errorf("early stopping did not shorten execution: %s vs %s", early.ExecTime, full.ExecTime)
	}
	fullKWh := fullMeter.Tracker().KWh(energy.Execution)
	earlyKWh := earlyMeter.Tracker().KWh(energy.Execution)
	if earlyKWh >= fullKWh {
		t.Errorf("early stopping did not save energy: %.6f vs %.6f kWh", earlyKWh, fullKWh)
	}
	// The plateau model must not be drastically worse: on this small,
	// overfitting-prone dataset the paper expects no loss at all.
	if early.ValScore < full.ValScore-0.1 {
		t.Errorf("early-stopped validation score %.3f far below full %.3f", early.ValScore, full.ValScore)
	}
}

// TestEnergyAwareObjectiveOrdering: the energy-aware objective must rank a
// slightly-less-accurate cheap model above a slightly-more-accurate
// expensive one (paper §1's energy-aware objective), while the plain
// objective ranks by accuracy alone.
func TestEnergyAwareObjectiveOrdering(t *testing.T) {
	train, val := loadTrainTest(t, "phoneme", 33)
	rng := newTestRNG(34)
	meter := energy.NewMeter(hwXeon(), 1)

	build := func(family string) *evaluation {
		spec := pipeline.SpaceSpec{Models: []string{family}, DataPreprocessors: true}
		space, err := spec.Space()
		if err != nil {
			t.Fatal(err)
		}
		p, err := spec.Build(space.Default(), train.Features())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Fit(train, rng); err != nil {
			t.Fatal(err)
		}
		return &evaluation{pipe: p}
	}
	cheap := build("tree")
	expensive := build("knn") // full-scan inference

	// Give the expensive model a small accuracy edge.
	cheap.score = 0.80
	expensive.score = 0.82

	plain := DefaultCAMLParams()
	aware := DefaultCAMLParams()
	aware.EnergyWeight = 0.5
	c := NewCAML()
	if c.objective(expensive, val, plain, meter) <= c.objective(cheap, val, plain, meter) {
		t.Error("plain objective must rank by accuracy")
	}
	if c.objective(expensive, val, aware, meter) >= c.objective(cheap, val, aware, meter) {
		t.Errorf("energy-aware objective kept the expensive model on top: knn %.4f vs tree %.4f",
			c.objective(expensive, val, aware, meter), c.objective(cheap, val, aware, meter))
	}
	// Sanity: the probe-based energy estimate must separate the models.
	if c.inferenceJoulesPerInstance(expensive, val, meter) <= c.inferenceJoulesPerInstance(cheap, val, meter) {
		t.Error("kNN inference not estimated as more expensive than a tree")
	}
}

// TestFLAMLStartsCheap: FLAML's first evaluations must use the cheapest
// model families (paper §2.3: "they start by evaluating low-cost models
// ... on small training sets").
func TestFLAMLStartsCheap(t *testing.T) {
	train, _ := loadTrainTest(t, "adult", 35)
	// A very small budget only lets the curriculum's head run; the
	// result must come from a cheap family, not a boosted ensemble.
	res, _ := fitOn(t, NewFLAML(), train, 2*time.Second, 36)
	if res.Evaluated == 0 {
		t.Fatal("FLAML evaluated nothing in 2s")
	}
	// The returned model's inference must be frugal (a few thousand
	// FLOPs per instance at most for NB/tree-class models).
	proba, cost := res.Predictor.PredictProba(train.Head(16))
	if proba == nil {
		t.Fatal("no predictions")
	}
	perInst := cost.Total() / 16
	if perInst > 2e5 {
		t.Errorf("FLAML's 2s model costs %.0f FLOPs/instance — the cost prior should keep it frugal", perInst)
	}
}

// TestASKLOverrunsWorseThanCAML encodes paper Table 7's ordering at equal
// budgets: auto-sklearn's post-budget ensembling makes it the worst
// overrunner; CAML is strict.
func TestASKLOverrunsWorseThanCAML(t *testing.T) {
	train, _ := loadTrainTest(t, "nomao", 37)
	budget := 30 * time.Second
	caml, _ := fitOn(t, NewCAML(), train, budget, 38)
	askl, _ := fitOn(t, NewAutoSklearn1(), train, budget, 38)
	if askl.ExecTime <= caml.ExecTime {
		t.Errorf("ASKL1 (%s) did not overrun CAML (%s) at a %s budget", askl.ExecTime, caml.ExecTime, budget)
	}
	if askl.ExecTime < budget+budget/10 {
		t.Errorf("ASKL1 execution %s suspiciously close to the budget — ensembling overhead missing", askl.ExecTime)
	}
}

// TestCAMLCrossValidation: the CV option must work end-to-end and cost
// more per evaluation than hold-out (k fits per candidate), mirroring why
// TPOT's 5-fold CV hurts it at small budgets.
func TestCAMLCrossValidation(t *testing.T) {
	train, test := loadTrainTest(t, "credit-g", 41)
	params := DefaultCAMLParams()
	params.CVFolds = 3
	params.Incremental = false
	cv, cvMeter := fitOn(t, &CAML{Params: params, Label: "CAML(cv)"}, train, 20*time.Second, 42)
	pred, err := cv.Predict(test, cvMeter)
	if err != nil {
		t.Fatal(err)
	}
	if acc := metrics.BalancedAccuracy(test.LabelsInto(nil), pred, test.Classes()); acc < 0.5 {
		t.Errorf("CV-evaluated CAML accuracy %.3f", acc)
	}
	holdParams := DefaultCAMLParams()
	holdParams.Incremental = false
	hold, _ := fitOn(t, &CAML{Params: holdParams, Label: "CAML(hold)"}, train, 20*time.Second, 42)
	if cv.Evaluated >= hold.Evaluated {
		t.Errorf("3-fold CV evaluated %d candidates vs hold-out %d — CV must cost more per candidate",
			cv.Evaluated, hold.Evaluated)
	}
}

// TestLowComplexityConfig: FLAML's starting configurations must sit at the
// bottom of each numeric range and grow with the complexity rung.
func TestLowComplexityConfig(t *testing.T) {
	spec := pipeline.SpaceSpec{Models: []string{"random_forest"}}
	space, err := spec.Space()
	if err != nil {
		t.Fatal(err)
	}
	low := lowComplexityConfig(space, 0)
	high := lowComplexityConfig(space, 1)
	trees, _ := space.Lookup("random_forest.trees")
	if low["random_forest.trees"] != trees.Min {
		t.Errorf("complexity 0 trees %v, want the minimum %v", low["random_forest.trees"], trees.Min)
	}
	if high["random_forest.trees"] <= low["random_forest.trees"] {
		t.Error("complexity 1 did not raise the tree count")
	}
	if high["random_forest.trees"] > trees.Max {
		t.Errorf("complexity 1 trees %v above max %v", high["random_forest.trees"], trees.Max)
	}
}
