package automl

import (
	"fmt"
	"time"

	"repro/internal/energy"
	"repro/internal/ensemble"
	"repro/internal/hw"
	"repro/internal/ml"
	"repro/internal/pipeline"
	"repro/internal/tabular"
)

// AutoGluonPreset selects the quality/inference trade-off (paper §3.4).
type AutoGluonPreset int

const (
	// PresetQuality is the default: bagged models, a stacking layer,
	// Caruana weighting — maximal accuracy, maximal inference cost.
	PresetQuality AutoGluonPreset = iota
	// PresetFastInference is the "good quality faster inference only
	// refit" preset: after selection, every bag is collapsed into a
	// single model trained on all data, trading a little accuracy for a
	// large inference-energy saving.
	PresetFastInference
)

// AutoGluon reproduces the architecture of AutoGluon-Tabular (paper
// Table 1): no hyperparameter search at all — a fixed, manually curated
// sequence of pipelines is trained with k-fold bagging, then a second
// stacking layer of the same model types consumes the original features
// plus all first-layer out-of-fold predictions, and Caruana selection
// weights the final models.
//
// Budget fidelity (paper §3.10 and Table 7): AutoGluon divides the
// remaining budget across the models it still plans to train and skips
// models it estimates will not fit — but a started model always finishes,
// and the mandatory minimum (at least one bagged model plus weighting)
// makes small budgets overrun by roughly 2x.
type AutoGluon struct {
	// Preset selects the quality/inference trade-off.
	Preset AutoGluonPreset
	// Folds is the bagging fold count (default 3; the released
	// AutoGluon uses 8 — scaled with the datasets).
	Folds int
}

// NewAutoGluon returns AutoGluon with the default quality preset.
func NewAutoGluon() *AutoGluon { return &AutoGluon{} }

// NewAutoGluonFastInference returns the inference-optimized preset.
func NewAutoGluonFastInference() *AutoGluon { return &AutoGluon{Preset: PresetFastInference} }

// Name implements System.
func (g *AutoGluon) Name() string {
	if g.Preset == PresetFastInference {
		return "AutoGluon(fast-infer)"
	}
	return "AutoGluon"
}

// MinBudget implements System.
func (g *AutoGluon) MinBudget() time.Duration { return 0 }

// agCandidate is one entry of the hand-picked model sequence, in training
// order (cheap and reliable first, expensive later — AutoGluon's curated
// priority list).
type agCandidate struct {
	name  string
	build func() *pipeline.Pipeline
}

// defaultCandidates returns the predefined pipeline list. Every pipeline
// gets the standard preprocessing (impute, one-hot, scale) — AutoGluon
// fixes preprocessing rather than searching it.
func defaultCandidates(gpu bool) []agCandidate {
	wrap := func(family string, overrides pipeline.Config) func() *pipeline.Pipeline {
		return func() *pipeline.Pipeline {
			spec := pipeline.SpaceSpec{Models: []string{family}, DataPreprocessors: true}
			space, err := spec.Space()
			if err != nil {
				panic(fmt.Sprintf("autogluon: building space for %s: %v", family, err))
			}
			cfg := space.Default()
			for k, v := range overrides {
				cfg[k] = v
			}
			p, err := spec.Build(cfg, 0)
			if err != nil {
				panic(fmt.Sprintf("autogluon: building %s: %v", family, err))
			}
			return p
		}
	}
	mlpCfg := pipeline.Config{"mlp.width": 48, "mlp.epochs": 30}
	if gpu {
		// With an accelerator available AutoGluon trains a larger
		// neural network (cheap to fit on GPU) — whose inference, still
		// on CPU, is correspondingly heavier (paper Table 3: GPU raises
		// AutoGluon's inference time and energy).
		mlpCfg = pipeline.Config{"mlp.width": 128, "mlp.layers": 2, "mlp.epochs": 45}
	}
	return []agCandidate{
		{"knn", wrap("knn", pipeline.Config{"knn.k": 5})},
		{"gbt-fast", wrap("gradient_boosting", pipeline.Config{"gradient_boosting.rounds": 25, "gradient_boosting.lr": 0.15})},
		{"rf", wrap("random_forest", pipeline.Config{"random_forest.trees": 60, "random_forest.max_depth": 18})},
		{"xt", wrap("extra_trees", pipeline.Config{"extra_trees.trees": 60})},
		{"gbt-deep", wrap("gradient_boosting", pipeline.Config{"gradient_boosting.rounds": 60, "gradient_boosting.lr": 0.08, "gradient_boosting.max_depth": 4})},
		{"mlp", wrap("mlp", mlpCfg)},
	}
}

// escalatedCandidates returns higher-capacity variants of the strongest
// base families, used by the budget-adaptive escalation loop. Capacity
// grows with mult.
func escalatedCandidates(gpu bool, mult float64) []agCandidate {
	base := defaultCandidates(gpu)
	wrapOf := func(idx int, overrides pipeline.Config) agCandidate {
		orig := base[idx]
		return agCandidate{
			name: fmt.Sprintf("%s-x%g", orig.name, mult),
			build: func() *pipeline.Pipeline {
				// Rebuild the family's spec with escalated params.
				spec := pipeline.SpaceSpec{Models: []string{familyOf(orig.name)}, DataPreprocessors: true}
				space, err := spec.Space()
				if err != nil {
					panic(fmt.Sprintf("autogluon: escalated space: %v", err))
				}
				cfg := space.Default()
				for k, v := range overrides {
					cfg[k] = v
				}
				p, err := spec.Build(cfg, 0)
				if err != nil {
					panic(fmt.Sprintf("autogluon: escalated build: %v", err))
				}
				return p
			},
		}
	}
	return []agCandidate{
		wrapOf(4, pipeline.Config{ // gbt-deep escalated
			"gradient_boosting.rounds":    60 * mult,
			"gradient_boosting.lr":        0.08 / mult,
			"gradient_boosting.max_depth": 4,
		}),
		wrapOf(2, pipeline.Config{ // rf escalated
			"random_forest.trees":     60 * mult,
			"random_forest.max_depth": 22,
		}),
	}
}

// familyOf maps a candidate name to its model-registry family.
func familyOf(name string) string {
	switch {
	case name == "rf" || name[:2] == "rf":
		return "random_forest"
	case name == "xt":
		return "extra_trees"
	case name == "knn":
		return "knn"
	case name == "mlp":
		return "mlp"
	default:
		return "gradient_boosting"
	}
}

// stackCandidates is the (smaller) second-layer list.
func stackCandidates(gpu bool) []agCandidate {
	all := defaultCandidates(gpu)
	return []agCandidate{all[2], all[4], all[5]} // rf, gbt-deep, mlp
}

// Fit implements System.
func (g *AutoGluon) Fit(train tabular.View, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, fmt.Errorf("autogluon: %w", err)
	}
	rng := opts.rng()
	meter := opts.Meter
	tracker := startRun(meter)
	folds := g.Folds
	if folds < 2 {
		folds = 3
	}
	gpu := meter.GPUMode() == energy.GPUActive

	// ----- Layer 1: bagged base models -----
	// AutoGluon plans its workload against the *budget*, estimating each
	// model's training time as if run sequentially — the plan does not
	// expand when more cores are allotted, it just finishes sooner
	// (which is why multi-core runs save energy, paper Fig. 5).
	type fittedBag struct {
		name string
		bag  *ensemble.Bagged
	}
	var layer1 []fittedBag
	var lastBagSeq, plannedSeq time.Duration
	remainingPlan := func() time.Duration { return opts.Budget - plannedSeq }
	for i, cand := range defaultCandidates(gpu) {
		// Budget estimation: skip remaining models once the last bag's
		// sequential cost exceeds the plan's remainder — except the
		// first model, which is mandatory (the source of small-budget
		// overruns).
		if i > 0 && lastBagSeq > remainingPlan() {
			break
		}
		bag, costs, err := ensemble.FitBagged(cand.build, train, folds, opts.Seed, rng)
		if err != nil {
			continue
		}
		_, seq := g.chargeBag(meter, costs, cand.build().ParallelFrac())
		lastBagSeq = seq
		plannedSeq += seq
		layer1 = append(layer1, fittedBag{name: cand.name, bag: bag})
	}
	if len(layer1) == 0 {
		return tracker.finish(&Result{
			System:    g.Name(),
			Predictor: newMajorityPredictor(train),
			Classes:   train.Classes(),
		}), nil
	}

	// ----- Layer 2: stacking on features + layer-1 OOF predictions -----
	// All bags share fold structure via the seeded KFold, so OOF rows are
	// aligned per bag; stacking inputs append each bag's OOF probability
	// rows to the original features.
	var layer2 []fittedBag
	stackBaseCount := len(layer1) // layer-2 inputs use exactly these bags
	oofLabels := layer1[0].bag.OOFLabels
	if lastBagSeq*2 <= remainingPlan() {
		probas := make([][][]float64, len(layer1))
		for i, fb := range layer1 {
			probas[i] = fb.bag.OOFProba
		}
		// Reconstruct the stacked training frame from OOF order: the
		// OOF rows correspond to the validation folds in order, so build
		// a fresh columnar frame from those rows.
		stackedX := ensemble.StackFeatures(layer1[0].bag.OOFRows, probas)
		stacked := tabular.FromRows(stackedX)
		sf := stacked.Frame()
		sf.Name = train.Name() + "+stack"
		sf.Y = oofLabels
		sf.Classes = train.Classes()
		for _, cand := range stackCandidates(gpu) {
			if lastBagSeq > remainingPlan() {
				break
			}
			bag, costs, err := ensemble.FitBagged(cand.build, stacked, folds, opts.Seed+1, rng)
			if err != nil {
				continue
			}
			_, seq := g.chargeBag(meter, costs, cand.build().ParallelFrac())
			lastBagSeq = seq
			plannedSeq += seq
			layer2 = append(layer2, fittedBag{name: cand.name + "-l2", bag: bag})
		}
	}

	// ----- Budget-adaptive capacity escalation -----
	// With budget to spare, AutoGluon keeps training higher-capacity
	// variants of its strongest families (more rounds, more trees, wider
	// nets) — the mechanism by which its accuracy keeps converging with
	// longer search times (paper Fig. 3).
	for mult := 2.0; mult <= 64 && lastBagSeq*3/2 <= remainingPlan(); mult *= 2 {
		for _, cand := range escalatedCandidates(gpu, mult) {
			if lastBagSeq > remainingPlan() {
				break
			}
			bag, costs, err := ensemble.FitBagged(cand.build, train, folds, opts.Seed, rng)
			if err != nil {
				continue
			}
			_, seq := g.chargeBag(meter, costs, cand.build().ParallelFrac())
			lastBagSeq = seq
			plannedSeq += seq
			layer1 = append(layer1, fittedBag{name: cand.name, bag: bag})
		}
	}

	// ----- Caruana weighting over all bags' OOF predictions -----
	// (Weighting always runs; it is part of AutoGluon's mandatory tail.)
	// OOF rows are realigned to training-row order: layer-1 bags index
	// train rows directly; layer-2 bags index stacked rows, which map to
	// train rows through layer 1's OOF index.
	all := append(append([]fittedBag(nil), layer1...), layer2...)
	layer1Index := layer1[0].bag.OOFIndex
	valProbas := make([][][]float64, len(all))
	for i, fb := range all {
		aligned := make([][]float64, train.Rows())
		for pos, proba := range fb.bag.OOFProba {
			row := fb.bag.OOFIndex[pos]
			if isStacked(fb.name) {
				row = layer1Index[row]
			}
			aligned[row] = proba
		}
		valProbas[i] = aligned
	}
	uniform := make([]float64, train.Classes())
	for j := range uniform {
		uniform[j] = 1 / float64(train.Classes())
	}
	for _, aligned := range valProbas {
		for i, row := range aligned {
			if row == nil {
				aligned[i] = uniform
			}
		}
	}
	caruana, err := ensemble.CaruanaSelect(valProbas, train.LabelsInto(nil), train.Classes(), 8)
	if err != nil {
		return nil, fmt.Errorf("autogluon: weighting: %w", err)
	}
	chargeCost(meter, energy.Execution, caruana.Cost, 0.2)

	// Inference-optimized preset: refit selected bags into single models.
	if g.Preset == PresetFastInference {
		for i, fb := range all {
			if caruana.Weights[i] <= 0 {
				continue
			}
			if isStacked(fb.name) {
				continue // stacked bags cannot be refit standalone; drop them
			}
			proto := g.protoFor(fb.name)
			if proto == nil {
				continue
			}
			cost, err := fb.bag.Refit(proto, train, rng)
			chargeCost(meter, energy.Execution, cost, 0.5)
			if err != nil {
				return nil, fmt.Errorf("autogluon: refit %s: %w", fb.name, err)
			}
		}
	}

	base := make([]ensemble.Predictor, stackBaseCount)
	for i, fb := range layer1[:stackBaseCount] {
		base[i] = fb.bag
	}
	members := make([]ensemble.Predictor, len(all))
	for i, fb := range all {
		if isStacked(fb.name) {
			members[i] = &stackedPredictor{bag: fb.bag, base: base}
		} else {
			members[i] = fb.bag
		}
	}
	// Drop stacked members that were skipped by refit in fast-inference
	// mode.
	if g.Preset == PresetFastInference {
		for i, fb := range all {
			if isStacked(fb.name) {
				caruana.Weights[i] = 0
			}
		}
	}

	return tracker.finish(&Result{
		System:    g.Name(),
		Predictor: &ensemble.Weighted{Members: members, Weights: caruana.Weights},
		Classes:   train.Classes(),
		Evaluated: len(all) * folds,
		ValScore:  caruana.Score,
	}), nil
}

// chargeBag schedules the per-fold costs in parallel across the meter's
// cores — bagging is AutoGluon's embarrassingly parallel workload (paper
// §3.3). It returns the makespan actually charged and the sequential
// (single-core) time the bag would have taken, which is what AutoGluon's
// budget plan is based on.
func (g *AutoGluon) chargeBag(meter *energy.Meter, costs []ml.Cost, parallelFrac float64) (makespan, sequential time.Duration) {
	gpu := meter.GPUMode() == energy.GPUActive
	for _, c := range costs {
		for _, w := range c.Works(0) {
			if gpu {
				// The plan estimates on the device that will run the
				// work: offloadable kernels are budgeted at GPU speed,
				// so a GPU-era plan packs bigger neural nets into the
				// same budget (paper Table 3).
				d, _ := meter.Machine().GPUDuration(w)
				sequential += d
			} else {
				sequential += meter.Machine().Duration(w, 1)
			}
		}
	}
	if meter.Cores() <= 1 {
		var total time.Duration
		for _, c := range costs {
			total += chargeCost(meter, energy.Execution, c, parallelFrac)
		}
		return total, sequential
	}
	var works []hw.Work
	for _, c := range costs {
		works = append(works, c.Works(parallelFrac)...)
	}
	return meter.RunParallel(energy.Execution, works), sequential
}

func isStacked(name string) bool {
	return len(name) > 3 && name[len(name)-3:] == "-l2"
}

func (g *AutoGluon) protoFor(name string) func() *pipeline.Pipeline {
	for _, cand := range defaultCandidates(false) {
		if cand.name == name {
			return cand.build
		}
	}
	return nil
}

// stackedPredictor feeds the input through the layer-1 bags to build the
// stacked features, then predicts with the layer-2 bag. Its inference cost
// therefore includes every base model — the structural reason stacking
// multiplies inference energy (Observation O1).
type stackedPredictor struct {
	bag  *ensemble.Bagged
	base []ensemble.Predictor
}

// PredictProba implements ensemble.Predictor.
func (s *stackedPredictor) PredictProba(x tabular.View) ([][]float64, ml.Cost) {
	var cost ml.Cost
	probas := make([][][]float64, len(s.base))
	for i, b := range s.base {
		p, c := b.PredictProba(x)
		cost.Add(c)
		probas[i] = p
	}
	stacked := ensemble.StackFeatures(x.MaterializeRows(), probas)
	out, c := s.bag.PredictProba(tabular.FromRows(stacked))
	cost.Add(c)
	return out, cost
}
