package automl

import (
	"fmt"
	"time"

	"repro/internal/energy"
	"repro/internal/pipeline"
	"repro/internal/search"
	"repro/internal/tabular"
)

// TPOT reproduces the tree-based pipeline optimization tool (Olson &
// Moore 2019, paper Table 1): genetic programming over the full pipeline
// space, starting from random pipelines and evolving them with NSGA-II on
// the two objectives (maximize accuracy, minimize pipeline complexity).
// Evaluation uses 5-fold cross-validation, which the paper singles out as
// the reason TPOT scores lowest at small budgets — every candidate costs
// five fits. Budget fidelity: TPOT completes the generation in flight when
// the budget expires, the largest overrun after ASKL (paper Table 7), and
// supports budgets only at minutes granularity.
type TPOT struct {
	// Population is the evolutionary population size (default 24; the
	// released TPOT defaults to 100 — at small search budgets the first
	// generations barely complete, which is why TPOT scores lowest
	// within 5 minutes in the paper).
	Population int
	// CVFolds is the cross-validation fold count (default 5).
	CVFolds int
}

// NewTPOT returns TPOT with default settings.
func NewTPOT() *TPOT { return &TPOT{} }

// Name implements System.
func (t *TPOT) Name() string { return "TPOT" }

// MinBudget implements System: "TPOT only supports search time in
// minutes" (paper §3.2).
func (t *TPOT) MinBudget() time.Duration { return time.Minute }

type tpotIndividual struct {
	cfg        pipeline.Config
	score      float64 // mean CV balanced accuracy
	complexity float64 // pipeline size proxy (second NSGA-II objective)
	pipe       *pipeline.Pipeline
}

// Fit implements System.
func (t *TPOT) Fit(train tabular.View, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, fmt.Errorf("tpot: %w", err)
	}
	popSize := t.Population
	if popSize < 4 {
		popSize = 24
	}
	folds := t.CVFolds
	if folds < 2 {
		folds = 5
	}
	rng := opts.rng()
	meter := opts.Meter
	tracker := startRun(meter)
	budget := meter.NewBudget(opts.Budget)

	spec := pipeline.FullSpec()
	space, err := spec.Space()
	if err != nil {
		return nil, fmt.Errorf("tpot: %w", err)
	}

	evaluate := func(cfg pipeline.Config) (tpotIndividual, bool) {
		ind := tpotIndividual{cfg: cfg}
		trains, vals := train.KFold(folds, rng)
		var scoreSum float64
		evaluatedFolds := 0
		for f := range trains {
			p, err := spec.Build(cfg, train.Features())
			if err != nil {
				return ind, false
			}
			ev, ok := evaluatePipeline(p, trains[f], vals[f], meter, rng)
			if !ok {
				return ind, false
			}
			scoreSum += ev.score
			evaluatedFolds++
			ind.pipe = p // keep the last fold model as the representative
		}
		if evaluatedFolds == 0 {
			return ind, false
		}
		ind.score = scoreSum / float64(evaluatedFolds)
		ind.complexity = configComplexity(space, cfg)
		return ind, true
	}

	// Initial random population. TPOT works at generation granularity,
	// but a hard stop at 1.5x the budget bounds the overrun: the released
	// TPOT enforces a per-evaluation timeout that kicks in similarly.
	overrunLimit := opts.Budget + opts.Budget/2
	var population []tpotIndividual
	evaluated := 0
	for i := 0; i < popSize; i++ {
		if budget.Elapsed() > overrunLimit {
			break
		}
		cfg := space.Sample(rng)
		if ind, ok := evaluate(cfg); ok {
			population = append(population, ind)
			evaluated++
		}
	}

	for !budget.Exceeded() && len(population) >= 2 {
		// Breed one full generation of offspring (generation completes
		// regardless of the budget — Table 7's overrun).
		objectives := tpotObjectives(population)
		var offspring []tpotIndividual
		for attempts := 0; len(offspring) < popSize && attempts < 3*popSize; attempts++ {
			if budget.Elapsed() > overrunLimit {
				break
			}
			a := search.BinaryTournament(objectives, rng)
			b := search.BinaryTournament(objectives, rng)
			child := space.Crossover(population[a].cfg, population[b].cfg, rng)
			child = space.Mutate(child, 0.25, rng)
			if ind, ok := evaluate(child); ok {
				offspring = append(offspring, ind)
				evaluated++
			}
		}
		// Environmental selection over parents + offspring.
		combined := append(population, offspring...)
		survivors := search.NSGA2Select(tpotObjectives(combined), popSize)
		next := make([]tpotIndividual, 0, popSize)
		for _, idx := range survivors {
			next = append(next, combined[idx])
		}
		population = next
	}

	if len(population) == 0 {
		return tracker.finish(&Result{
			System:    t.Name(),
			Predictor: newMajorityPredictor(train),
			Classes:   train.Classes(),
		}), nil
	}

	// Return the accuracy-best individual, refit on the full training
	// data.
	best := population[0]
	for _, ind := range population[1:] {
		if ind.score > best.score {
			best = ind
		}
	}
	final, err := spec.Build(best.cfg, train.Features())
	if err == nil {
		cost, fitErr := final.Fit(train, rng)
		chargeCost(meter, energy.Execution, cost, final.ParallelFrac())
		if fitErr != nil {
			final = best.pipe
		}
	} else {
		final = best.pipe
	}

	return tracker.finish(&Result{
		System:     t.Name(),
		Predictor:  singlePredictor(final),
		Classes:    train.Classes(),
		Evaluated:  evaluated,
		ValScore:   best.score,
		BestSpec:   &spec,
		BestConfig: best.cfg,
	}), nil
}

// tpotObjectives renders the NSGA-II minimization objectives:
// (1 - accuracy, complexity).
func tpotObjectives(pop []tpotIndividual) [][]float64 {
	objs := make([][]float64, len(pop))
	for i, ind := range pop {
		objs[i] = []float64{1 - ind.score, ind.complexity}
	}
	return objs
}

// configComplexity scores a configuration's pipeline size: normalized
// numeric magnitude plus a bonus for feature preprocessing.
func configComplexity(space *pipeline.Space, cfg pipeline.Config) float64 {
	vec := space.Vector(cfg)
	var sum float64
	for _, v := range vec {
		sum += v
	}
	if len(vec) == 0 {
		return 0
	}
	return sum / float64(len(vec))
}
