package automl

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/search"
	"repro/internal/tabular"
	"repro/internal/vclock"
)

// CAMLParams are the AutoML system parameters of CAML — exactly the knobs
// the paper's development-stage optimizer tunes (§3.7): the ML
// hyperparameter search space plus six scalar system parameters (hold-out
// validation fraction, evaluation fraction, sampling, refit, random
// validation splitting, incremental training), and the user-facing
// inference-time constraint (§3.4).
type CAMLParams struct {
	// Spec prunes the ML search space (models and preprocessor groups).
	Spec pipeline.SpaceSpec
	// HoldoutFrac is the validation fraction (default 0.33).
	HoldoutFrac float64
	// EvalFraction caps a single evaluation at this fraction of the
	// total budget (default 0.1); estimated-to-overrun evaluations are
	// pruned early.
	EvalFraction float64
	// SampleRows subsamples the training data upfront to at most this
	// many rows (0 disables — no state-of-the-art system implements
	// this knob; the paper's tuning always turns it on).
	SampleRows int
	// Refit retrains the final pipeline on train+validation.
	Refit bool
	// RandomValSplit reshuffles the validation split before each BO
	// iteration to avoid overfitting the validation set.
	RandomValSplit bool
	// Incremental enables successive-halving incremental training:
	// evaluations start at 10 instances per class and grow stepwise.
	Incremental bool
	// InitRandom is the number of random configurations evaluated
	// before BO takes over (default 10, paper §2.3).
	InitRandom int
	// InferenceLimit is the per-instance inference-time constraint;
	// zero disables the constraint.
	InferenceLimit time.Duration
	// CVFolds switches candidate evaluation from hold-out to k-fold
	// cross-validation (0 or 1 keeps hold-out, the CAML default). The
	// validation strategy is one of the development-stage parameters
	// the paper names (§2.5); TPOT's 5-fold CV shows its cost profile.
	CVFolds int
	// EarlyStopPatience stops the search once this many consecutive BO
	// iterations bring no validation improvement (0 disables). The
	// paper's §3.8 analysis motivates it: on small datasets AutoML
	// systems overfit with longer budgets, so stopping at the plateau
	// saves energy without costing accuracy.
	EarlyStopPatience int
	// EnergyWeight folds inference energy into the search objective
	// (paper §1: "we can incorporate this constraint in the objective
	// function"): candidates are ranked by
	// score - EnergyWeight * log10(1 + inference mJ/instance). Zero
	// disables the penalty.
	EnergyWeight float64
}

// DefaultCAMLParams returns CAML's out-of-the-box configuration: the full
// model zoo with data preprocessors (no feature preprocessors, paper
// Table 1), 0.33 hold-out, incremental training, no constraint.
func DefaultCAMLParams() CAMLParams {
	return CAMLParams{
		Spec:           pipeline.SpaceSpec{Models: pipeline.AllModels(), DataPreprocessors: true},
		HoldoutFrac:    0.33,
		EvalFraction:   0.1,
		Refit:          false,
		RandomValSplit: false,
		Incremental:    true,
		InitRandom:     10,
	}
}

func (p CAMLParams) normalized() CAMLParams {
	if p.HoldoutFrac <= 0 || p.HoldoutFrac >= 0.9 {
		p.HoldoutFrac = 0.33
	}
	if p.EvalFraction <= 0 || p.EvalFraction > 1 {
		p.EvalFraction = 0.1
	}
	if p.InitRandom < 1 {
		p.InitRandom = 10
	}
	if len(p.Spec.Models) == 0 {
		p.Spec.Models = pipeline.AllModels()
	}
	return p
}

// CAML is the constraint-aware AutoML system (Neutatz et al., VLDB J.
// 2023) in its static mode: Bayesian optimization with successive-halving
// incremental training, strict budget adherence, and first-class ML
// application constraints such as inference time.
type CAML struct {
	// Params are the system parameters; zero value uses the defaults.
	Params CAMLParams
	// Label overrides the reported system name (used by CAML(tuned)).
	Label string
}

// NewCAML returns CAML with default parameters.
func NewCAML() *CAML { return &CAML{Params: DefaultCAMLParams()} }

// Name implements System.
func (c *CAML) Name() string {
	if c.Label != "" {
		return c.Label
	}
	return "CAML"
}

// MinBudget implements System: CAML supports arbitrarily small budgets
// thanks to incremental training.
func (c *CAML) MinBudget() time.Duration { return 0 }

// Fit implements System.
func (c *CAML) Fit(train tabular.View, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, fmt.Errorf("caml: %w", err)
	}
	params := c.Params.normalized()
	rng := opts.rng()
	meter := opts.Meter
	tracker := startRun(meter)
	budget := meter.NewBudget(opts.Budget)

	// Upfront sampling (the search-time-specific step the paper's tuning
	// always selects, §3.7).
	working := train
	if params.SampleRows > 0 && working.Rows() > params.SampleRows {
		working = working.Subsample(params.SampleRows, rng)
	}

	space, err := params.Spec.Space()
	if err != nil {
		return nil, fmt.Errorf("caml: %w", err)
	}
	fitTrain, val := holdoutSplit(working, params.HoldoutFrac, rng)

	bo := search.NewBO(space, rng)
	bo.MinObservations = params.InitRandom

	var best evaluation
	var bestConfig pipeline.Config
	bestObjective := math.Inf(-1)
	evaluated := 0
	sinceImprovement := 0
	evalCap := time.Duration(params.EvalFraction * float64(opts.Budget))

	for !budget.Exceeded() {
		cfg, boCost := bo.Suggest()
		chargeCost(meter, energy.Execution, boCost, 0.3)
		if budget.Exceeded() {
			break
		}
		var ev evaluation
		var ok bool
		if params.CVFolds >= 2 {
			ev, ok = c.evaluateCV(cfg, working, params, opts, budget, evalCap, rng)
		} else {
			ev, ok = c.evaluateIncremental(cfg, fitTrain, val, params, opts, budget, evalCap, rng)
		}
		if ok {
			evaluated++
			objective := c.objective(&ev, val, params, opts.Meter)
			bo.Observe(cfg, objective)
			if best.pipe == nil || objective > bestObjective {
				best = ev
				bestConfig = cfg
				bestObjective = objective
				sinceImprovement = 0
			} else {
				sinceImprovement++
			}
		} else {
			bo.Observe(cfg, 0)
			sinceImprovement++
		}
		// Early stopping at the validation plateau (paper §3.8).
		if params.EarlyStopPatience > 0 && sinceImprovement >= params.EarlyStopPatience {
			break
		}
		if params.RandomValSplit {
			fitTrain, val = holdoutSplit(working, params.HoldoutFrac, rng)
		}
	}

	if best.pipe == nil {
		// Nothing evaluated successfully within the budget: fall back
		// to the majority class (any-time property, paper §3.10).
		return tracker.finish(&Result{
			System:    c.Name(),
			Predictor: newMajorityPredictor(train),
			Classes:   train.Classes(),
		}), nil
	}

	final := best.pipe
	if params.Refit {
		refit, err := params.Spec.Build(bestConfig, working.Features())
		if err == nil {
			cost, fitErr := refit.Fit(working, rng)
			// The refit is part of the budgeted run; past the deadline
			// it is cut off and the search-time model kept.
			_, truncated := chargeCostCapped(meter, energy.Execution, cost, refit.ParallelFrac(), maxDuration(budget.Remaining(), opts.Budget/20))
			if fitErr == nil && !truncated {
				final = refit
			}
		}
	}

	return tracker.finish(&Result{
		System:     c.Name(),
		Predictor:  singlePredictor(final),
		Classes:    train.Classes(),
		Evaluated:  evaluated,
		ValScore:   best.score,
		BestSpec:   &params.Spec,
		BestConfig: bestConfig,
	}), nil
}

// evaluateIncremental trains one configuration, either directly or through
// successive-halving incremental training, pruning on budget, estimated
// overrun, and constraint violation.
func (c *CAML) evaluateIncremental(cfg pipeline.Config, fitTrain, val tabular.View, params CAMLParams, opts Options, budget *vclock.Budget, evalCap time.Duration, rng *rand.Rand) (evaluation, bool) {
	build := func() (*pipeline.Pipeline, bool) {
		p, err := params.Spec.Build(cfg, fitTrain.Features())
		return p, err == nil
	}
	capFor := func(spent time.Duration) time.Duration {
		cap := budget.Remaining()
		if evalCap > 0 && evalCap-spent < cap {
			cap = evalCap - spent
		}
		return cap
	}

	if !params.Incremental {
		p, ok := build()
		if !ok {
			return evaluation{}, false
		}
		ev, ok := c.evaluateCapped(p, fitTrain, val, opts, capFor(0), rng)
		if !ok || !c.satisfiesConstraint(&ev, val, params, opts.Meter) {
			return evaluation{}, false
		}
		return ev, true
	}

	// Incremental training: 10 instances per class, growing by eta=2 per
	// rung until the full training set. Each rung's cost predicts the
	// next; a predicted budget or evaluation-cap overrun stops the
	// evaluation early with the last completed rung's result.
	perClass := 10
	var lastEval evaluation
	have := false
	var lastDuration time.Duration
	var spent time.Duration
	for {
		sub := fitTrain.SubsamplePerClass(perClass, rng)
		fullData := sub.Rows() >= fitTrain.Rows()
		if fullData {
			sub = fitTrain
		}
		// Predict the rung's duration from the last rung (supra-linear
		// growth factor 2.2 is conservative for sort-based tree fits).
		if have {
			predicted := time.Duration(float64(lastDuration) * 2.2)
			if predicted > budget.Remaining() {
				return lastEval, true
			}
			if evalCap > 0 && spent+predicted > evalCap {
				return lastEval, true
			}
		}
		p, ok := build()
		if !ok {
			return evaluation{}, false
		}
		ev, ok := c.evaluateCapped(p, sub, val, opts, capFor(spent), rng)
		spent += ev.fitTime
		if !ok {
			// Truncated or failed rung: the partial work is paid, the
			// result discarded.
			return lastEval, have
		}
		if !c.satisfiesConstraint(&ev, val, params, opts.Meter) {
			// Constraint violations are pruned as early as possible
			// (paper §2.2) — the whole configuration is rejected.
			return evaluation{}, false
		}
		lastDuration = ev.fitTime
		lastEval = ev
		have = true
		if fullData || budget.Exceeded() {
			return lastEval, true
		}
		perClass *= 2
	}
}

// evaluateCV scores one configuration by k-fold cross-validation under the
// same capped-deadline regime as hold-out evaluation. The returned
// evaluation carries the last fold's fitted pipeline and the mean score.
func (c *CAML) evaluateCV(cfg pipeline.Config, working tabular.View, params CAMLParams, opts Options, budget *vclock.Budget, evalCap time.Duration, rng *rand.Rand) (evaluation, bool) {
	trains, vals := working.KFold(params.CVFolds, rng)
	var scoreSum float64
	var spent time.Duration
	var last evaluation
	for f := range trains {
		p, err := params.Spec.Build(cfg, working.Features())
		if err != nil {
			return evaluation{}, false
		}
		cap := budget.Remaining()
		if evalCap > 0 && evalCap-spent < cap {
			cap = evalCap - spent
		}
		ev, ok := c.evaluateCapped(p, trains[f], vals[f], opts, cap, rng)
		spent += ev.fitTime
		if !ok {
			return evaluation{}, false
		}
		scoreSum += ev.score
		last = ev
	}
	last.score = scoreSum / float64(len(trains))
	last.fitTime = spent
	if !c.satisfiesConstraint(&last, working, params, opts.Meter) {
		return evaluation{}, false
	}
	return last, true
}

// evaluateCapped fits and validates one candidate under a hard virtual
// deadline: work beyond the cap is charged only up to the cap and the
// evaluation reports failure, mirroring CAML killing the evaluation
// process at the deadline.
func (c *CAML) evaluateCapped(p *pipeline.Pipeline, train, val tabular.View, opts Options, cap time.Duration, rng *rand.Rand) (evaluation, bool) {
	fitCost, err := p.Fit(train, rng)
	fitTime, truncated := chargeCostCapped(opts.Meter, energy.Execution, fitCost, p.ParallelFrac(), cap)
	if err != nil || truncated {
		return evaluation{fitTime: fitTime}, false
	}
	proba, predCost := p.PredictProba(val)
	predTime, truncated := chargeCostCapped(opts.Meter, energy.Execution, predCost, p.ParallelFrac(), cap-fitTime)
	fitTime += predTime
	if truncated {
		return evaluation{fitTime: fitTime}, false
	}
	labels := metrics.ArgmaxRows(proba)
	score := metrics.BalancedAccuracy(val.LabelsInto(nil), labels, val.Classes())
	return evaluation{pipe: p, score: score, valProba: proba, fitTime: fitTime}, true
}

// objective scores an evaluation for model selection: validation balanced
// accuracy, optionally penalized by the candidate's per-instance inference
// energy (paper §1's energy-aware objective).
func (c *CAML) objective(ev *evaluation, val tabular.View, params CAMLParams, meter *energy.Meter) float64 {
	if params.EnergyWeight <= 0 {
		return ev.score
	}
	millijoules := 1000 * c.inferenceJoulesPerInstance(ev, val, meter)
	return ev.score - params.EnergyWeight*math.Log10(1+millijoules)
}

// inferenceJoulesPerInstance dry-runs a small probe batch through the
// candidate and converts the cost to joules per instance on the meter's
// machine (not billed — an estimate, like the constraint check).
func (c *CAML) inferenceJoulesPerInstance(ev *evaluation, val tabular.View, meter *energy.Meter) float64 {
	probe := val.Head(32)
	if probe.Rows() == 0 {
		return 0
	}
	_, cost := ev.pipe.PredictProba(probe)
	var joules float64
	for _, w := range cost.Works(0) {
		d := meter.Machine().Duration(w, 1)
		joules += meter.Machine().Energy(d, 1, false, false)
	}
	return joules / float64(probe.Rows())
}

// satisfiesConstraint checks the per-instance inference-time constraint by
// measuring the candidate's actual per-row inference duration on the
// validation pass.
func (c *CAML) satisfiesConstraint(ev *evaluation, val tabular.View, params CAMLParams, meter *energy.Meter) bool {
	if params.InferenceLimit <= 0 {
		return true
	}
	probe := val.Head(32)
	_, cost := ev.pipe.PredictProba(probe)
	// Constraint checks use the machine model directly (a dry-run
	// estimate), not the meter: the real CAML estimates inference time
	// without billing the user for a full extra pass.
	var perInstance time.Duration
	for _, w := range cost.Works(0) {
		perInstance += meter.Machine().Duration(w, 1)
	}
	perInstance = time.Duration(float64(perInstance) / math.Max(float64(probe.Rows()), 1))
	return perInstance <= params.InferenceLimit
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
