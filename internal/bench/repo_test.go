package bench

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/automl"
	"repro/internal/repo"
)

// repoLineup is the lineup the repository property tests run: two cheap
// searchers plus the zero-shot portfolio system the store enables.
func repoLineup() []automl.System {
	return []automl.System{automl.NewCAML(), automl.NewTabPFN(), automl.NewZeroShot()}
}

// openTestRepo opens a read-write repository in a fresh temp dir.
func openTestRepo(t *testing.T, opts repo.Options) *repo.Repository {
	t.Helper()
	rp, err := repo.Open(filepath.Join(t.TempDir(), "store"), opts)
	if err != nil {
		t.Fatal(err)
	}
	return rp
}

// exportBytes renders the records through both exporters; byte equality
// of these buffers is the property every warm replay must preserve.
func exportBytes(t *testing.T, records []Record) (csv, jsn []byte) {
	t.Helper()
	var cb, jb bytes.Buffer
	if err := WriteCSV(&cb, records); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&jb, records); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), jb.Bytes()
}

// TestRepoWarmRunByteIdentical is the store's core property: a cold run
// populates the repository, and every subsequent warm run — at any
// worker count — replays entirely from it, performing zero fits while
// producing byte-identical CSV and JSON exports.
func TestRepoWarmRunByteIdentical(t *testing.T) {
	rp := openTestRepo(t, repo.Options{})
	cfg := tinyConfig()
	cfg.Repo = rp
	systems := repoLineup()

	cold, coldStats, err := runGrid(systems, withWorkers(cfg, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold) == 0 {
		t.Fatal("empty grid")
	}
	if coldStats.Hits != 0 || coldStats.Misses != len(cold) || coldStats.Stored != len(cold) {
		t.Fatalf("cold stats %+v, want 0 hits, %d misses, %d stored", coldStats, len(cold), len(cold))
	}
	coldCSV, coldJSON := exportBytes(t, cold)

	for _, workers := range []int{1, 4} {
		ResetFitProbe()
		warm, stats, err := runGrid(systems, withWorkers(cfg, workers), nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if n := FitProbeCount(); n != 0 {
			t.Errorf("workers=%d: warm run performed %d fit(s), want 0", workers, n)
		}
		if stats.Hits != len(cold) || stats.Misses != 0 || stats.Damaged != 0 || stats.Stored != 0 {
			t.Errorf("workers=%d: warm stats %+v, want %d pure hits", workers, stats, len(cold))
		}
		warmCSV, warmJSON := exportBytes(t, warm)
		if !bytes.Equal(coldCSV, warmCSV) {
			t.Errorf("workers=%d: warm CSV differs from cold", workers)
		}
		if !bytes.Equal(coldJSON, warmJSON) {
			t.Errorf("workers=%d: warm JSON differs from cold", workers)
		}
	}
}

// TestRepoWarmShardMergeByteIdentical runs the warm grid as journaled
// shards — 1-shard and 2-shard partitions — and requires the merged
// journals to reproduce the cold run's exports byte for byte, still
// with zero fits: repository hits flow through shard journals into the
// merge unchanged.
func TestRepoWarmShardMergeByteIdentical(t *testing.T) {
	rp := openTestRepo(t, repo.Options{})
	cfg := tinyConfig()
	cfg.Repo = rp
	systems := repoLineup()

	cold, _, err := runGrid(systems, withWorkers(cfg, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	coldCSV, coldJSON := exportBytes(t, cold)
	fingerprint := Fingerprint(systems, cfg)
	refs := EnumerateCellRefs(systems, cfg)

	for _, shards := range []int{1, 2} {
		ResetFitProbe()
		var paths []string
		dir := t.TempDir()
		for idx := 0; idx < shards; idx++ {
			scfg := cfg
			scfg.Shard = ShardSpec{Index: idx, Count: shards}
			path := filepath.Join(dir, fmt.Sprintf("shard-%d-of-%d.jsonl", idx, shards))
			run, err := RunShard(systems, scfg, path)
			if err != nil {
				t.Fatalf("shards=%d idx=%d: %v", shards, idx, err)
			}
			if run.Repo.Hits != len(run.Records) {
				t.Errorf("shards=%d idx=%d: %d hits for %d records", shards, idx, run.Repo.Hits, len(run.Records))
			}
			paths = append(paths, path)
		}
		if n := FitProbeCount(); n != 0 {
			t.Errorf("shards=%d: warm shard runs performed %d fit(s), want 0", shards, n)
		}
		merged, err := MergeJournals(paths, fingerprint, refs)
		if err != nil {
			t.Fatalf("shards=%d: merge: %v", shards, err)
		}
		if len(merged.Missing) != 0 {
			t.Fatalf("shards=%d: merge missing %d cells", shards, len(merged.Missing))
		}
		csv, jsn := exportBytes(t, merged.Records)
		if !bytes.Equal(coldCSV, csv) {
			t.Errorf("shards=%d: merged CSV differs from cold", shards)
		}
		if !bytes.Equal(coldJSON, jsn) {
			t.Errorf("shards=%d: merged JSON differs from cold", shards)
		}
	}
}

// corruptOneCell flips a byte deep inside the first stored cell file,
// past the atomicio header so the damage is interior payload damage.
func corruptOneCell(t *testing.T, dir string) string {
	t.Helper()
	var target string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if target == "" && !d.IsDir() && strings.HasSuffix(path, ".cell") {
			target = path
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if target == "" {
		t.Fatal("no cell files in store")
	}
	data, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-9] ^= 0x40
	if err := os.WriteFile(target, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return target
}

// TestRepoDamagePolicy corrupts one stored cell and checks both halves
// of the damage contract: the default refuses the store outright, and
// -repo-allow-damage degrades the cell to a counted, re-executed,
// re-stored miss whose records still match the cold run byte for byte.
func TestRepoDamagePolicy(t *testing.T) {
	rp := openTestRepo(t, repo.Options{})
	cfg := tinyConfig()
	cfg.Repo = rp
	systems := repoLineup()

	cold, _, err := runGrid(systems, withWorkers(cfg, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	coldCSV, coldJSON := exportBytes(t, cold)
	corruptOneCell(t, rp.Dir())

	if _, _, err := runGrid(systems, withWorkers(cfg, 1), nil); !errors.Is(err, repo.ErrDamaged) {
		t.Fatalf("damaged store returned %v, want repo.ErrDamaged", err)
	}

	tolerant, err := repo.Open(rp.Dir(), repo.Options{AllowDamage: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Repo = tolerant
	warm, stats, err := runGrid(systems, withWorkers(cfg, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Damaged != 1 || stats.Misses != 1 || stats.Hits != len(cold)-1 || stats.Stored != 1 {
		t.Errorf("tolerant stats %+v, want 1 damaged, 1 miss, %d hits, 1 stored", stats, len(cold)-1)
	}
	csv, jsn := exportBytes(t, warm)
	if !bytes.Equal(coldCSV, csv) || !bytes.Equal(coldJSON, jsn) {
		t.Error("damage-tolerant rerun diverged from cold exports")
	}

	// The rerun re-stored the damaged cell, so the store is whole again.
	cfg.Repo = rp
	if _, stats, err := runGrid(systems, withWorkers(cfg, 1), nil); err != nil || stats.Hits != len(cold) {
		t.Errorf("healed store: err=%v stats=%+v, want %d pure hits", err, stats, len(cold))
	}
}

// TestRepoMergeFusesMissingShard loses one shard's journal entirely and
// lets MergeJournalsRepo fill the hole from the repository: the merge
// reports repository hits instead of missing cells, and its records
// match the cold run exactly.
func TestRepoMergeFusesMissingShard(t *testing.T) {
	rp := openTestRepo(t, repo.Options{})
	cfg := tinyConfig()
	cfg.Repo = rp
	systems := repoLineup()

	cold, _, err := runGrid(systems, withWorkers(cfg, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	fingerprint := Fingerprint(systems, cfg)
	refs := EnumerateCellRefs(systems, cfg)

	// Run only shard 0 of 2 with a journal; shard 1's journal never exists.
	scfg := cfg
	scfg.Shard = ShardSpec{Index: 0, Count: 2}
	path := filepath.Join(t.TempDir(), "shard0.jsonl")
	if _, err := RunShard(systems, scfg, path); err != nil {
		t.Fatal(err)
	}

	// Without the store the merge degrades the lost shard's cells.
	plain, err := MergeJournals([]string{path}, fingerprint, refs)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Missing) == 0 {
		t.Fatal("both shards covered by one journal; shard split produced no hole to fuse")
	}

	fused, err := MergeJournalsRepo([]string{path}, fingerprint, refs, rp)
	if err != nil {
		t.Fatal(err)
	}
	if len(fused.Missing) != 0 {
		t.Fatalf("merge with store still missing %d cells", len(fused.Missing))
	}
	if fused.RepoHits != len(plain.Missing) {
		t.Errorf("repo hits %d, want %d (one per journal hole)", fused.RepoHits, len(plain.Missing))
	}
	coldCSV, coldJSON := exportBytes(t, cold)
	csv, jsn := exportBytes(t, fused.Records)
	if !bytes.Equal(coldCSV, csv) || !bytes.Equal(coldJSON, jsn) {
		t.Error("store-fused merge diverged from cold exports")
	}
}

// TestRepoReadOnlyStoresNothing runs a cold grid against a read-only
// store: everything misses, nothing is written.
func TestRepoReadOnlyStoresNothing(t *testing.T) {
	rw := openTestRepo(t, repo.Options{})
	cfg := tinyConfig()
	systems := []automl.System{automl.NewTabPFN()}
	cfg.Repo = rw
	if _, _, err := runGrid(systems, withWorkers(cfg, 1), nil); err != nil {
		t.Fatal(err)
	}

	ro, err := repo.Open(rw.Dir(), repo.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Repo = ro
	// Warm pass still hits read-only.
	_, stats, err := runGrid(systems, withWorkers(cfg, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits == 0 || stats.Stored != 0 {
		t.Errorf("read-only warm stats %+v, want hits > 0 and 0 stored", stats)
	}

	// A different grid (new seed) misses and must not write back.
	cfg.Seed = 99
	_, stats, err = runGrid(systems, withWorkers(cfg, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Misses == 0 || stats.Stored != 0 {
		t.Errorf("read-only cold stats %+v, want misses > 0 and 0 stored", stats)
	}
}

// TestRepoSimulateEnsembles populates a store and simulates greedy
// ensembling over it: no fits, per-cell ensembles at least as good as
// chance, and a positive (tiny) simulated energy bill.
func TestRepoSimulateEnsembles(t *testing.T) {
	rp := openTestRepo(t, repo.Options{})
	cfg := tinyConfig()
	cfg.Repo = rp
	systems := repoLineup()
	if _, _, err := runGrid(systems, withWorkers(cfg, 1), nil); err != nil {
		t.Fatal(err)
	}

	ResetFitProbe()
	res, err := SimulateEnsembles(systems, cfg, rp)
	if err != nil {
		t.Fatal(err)
	}
	if n := FitProbeCount(); n != 0 {
		t.Errorf("simulation performed %d fit(s), want 0", n)
	}
	if len(res.Cells) == 0 {
		t.Fatal("no cells simulated")
	}
	if res.Missing != 0 || res.Damaged != 0 {
		t.Errorf("missing=%d damaged=%d on a fully populated store", res.Missing, res.Damaged)
	}
	if res.TotalKWh <= 0 {
		t.Error("simulation charged no energy — lookup+blend cost went unmetered")
	}
	for _, c := range res.Cells {
		if c.Members < 2 || c.Active < 1 {
			t.Errorf("cell %s/%s: members=%d active=%d", c.Dataset, FormatBudget(c.Budget), c.Members, c.Active)
		}
		if c.Ensemble < c.BestSingle-1e-9 {
			t.Errorf("cell %s/%s: ensemble %.4f below best single %.4f", c.Dataset, FormatBudget(c.Budget), c.Ensemble, c.BestSingle)
		}
		if c.KWh <= 0 {
			t.Errorf("cell %s/%s charged no energy", c.Dataset, FormatBudget(c.Budget))
		}
	}
	if out := res.Render(); !strings.Contains(out, "no refits") || !strings.Contains(out, "kWh") {
		t.Errorf("render missing expected framing:\n%s", out)
	}

	// Determinism: the same store simulates to the same result.
	again, err := SimulateEnsembles(systems, cfg, rp)
	if err != nil {
		t.Fatal(err)
	}
	if again.Render() != res.Render() {
		t.Error("simulation is not deterministic over an unchanged store")
	}
}

// TestRepoPortfolioFromRepo meta-learns a portfolio from stored winning
// configurations and checks it is non-empty and deterministic.
func TestRepoPortfolioFromRepo(t *testing.T) {
	rp := openTestRepo(t, repo.Options{})
	cfg := tinyConfig()
	cfg.Repo = rp
	if _, _, err := runGrid(repoLineup(), withWorkers(cfg, 1), nil); err != nil {
		t.Fatal(err)
	}
	portfolio, damaged, err := PortfolioFromRepo(rp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if damaged != 0 {
		t.Errorf("%d damaged entries in a clean store", damaged)
	}
	if len(portfolio) == 0 || len(portfolio) > 4 {
		t.Fatalf("portfolio size %d, want 1..4", len(portfolio))
	}
	again, _, err := PortfolioFromRepo(rp, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(portfolio) {
		t.Fatalf("portfolio size changed across walks: %d vs %d", len(again), len(portfolio))
	}
	for i := range portfolio {
		if portfolio[i].Key() != again[i].Key() {
			t.Errorf("portfolio member %d differs across walks", i)
		}
	}
}

// TestRepoZeroShotInRoster pins the roster contract: the default lineup
// ends with the zero-shot portfolio system, so grid exports carry it.
func TestRepoZeroShotInRoster(t *testing.T) {
	systems := DefaultSystems()
	found := false
	for _, s := range systems {
		if s.Name() == "ZeroShot" {
			found = true
		}
	}
	if !found {
		t.Fatal("ZeroShot missing from DefaultSystems")
	}
	if len(systems) != 8 {
		t.Fatalf("%d default systems, want 8", len(systems))
	}
}
