package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/atomicio"
	"repro/internal/automl"
	"repro/internal/faults"
)

func newTable(sb *strings.Builder) *tabwriter.Writer {
	return tabwriter.NewWriter(sb, 2, 4, 2, ' ', 0)
}

// Render formats the fig3 aggregation as two paper-style tables: execution
// energy vs accuracy, and inference energy vs accuracy.
func (r Fig3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 3 — search time, balanced accuracy, energy (execution | inference)\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "system\tbudget\tbal.acc\t±\texec kWh\tinfer kWh/inst\tactual time\tfail\tfb")
	for _, s := range r.Stats {
		fmt.Fprintf(w, "%s\t%s\t%.4f\t%.4f\t%.6g\t%.4g\t%s\t%.0f%%\t%.0f%%\n",
			s.Key.System, FormatBudget(s.Key.Budget),
			s.Score.Mean, s.Score.Std,
			s.ExecKWh, s.InferKWhPerInst, s.ExecTime.Round(10*time.Millisecond),
			100*s.FailureRate(), 100*s.FallbackRate())
	}
	w.Flush()
	sb.WriteString(RenderFailureBreakdown(r.Records))
	return sb.String()
}

// RenderFailureBreakdown summarizes the records' failure taxonomy — the
// per-kind counts the paper-style tables fold into rates. It renders
// nothing when every record is clean.
func RenderFailureBreakdown(records []Record) string {
	counts := make(map[faults.Kind]int)
	fallbacks := 0
	retried := 0
	for _, r := range records {
		if r.Failure != faults.None {
			counts[r.Failure]++
		}
		if r.Fallback {
			fallbacks++
		}
		if r.Attempts > 1 {
			retried++
		}
	}
	if len(counts) == 0 && fallbacks == 0 {
		return ""
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, string(k))
	}
	sort.Strings(kinds)
	var sb strings.Builder
	fmt.Fprintf(&sb, "failures (%d records):", len(records))
	for _, k := range kinds {
		fmt.Fprintf(&sb, " %s=%d", k, counts[faults.Kind(k)])
	}
	fmt.Fprintf(&sb, " %s=%d retried=%d\n", faults.FallbackUsed, fallbacks, retried)
	return sb.String()
}

// Render formats the fig4 curves and the TabPFN crossover.
func (r Fig4Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 4 — total energy (kWh) vs number of predictions\n")
	w := newTable(&sb)
	header := "system\texec kWh\tkWh/inst"
	for _, p := range r.Points {
		header += fmt.Sprintf("\tn=%.0g", p)
	}
	fmt.Fprintln(w, header)
	for _, s := range r.Series {
		row := fmt.Sprintf("%s\t%.6g\t%.4g", s.System, s.ExecKWh, s.InferKWhPerInst)
		for _, v := range s.TotalKWh {
			row += fmt.Sprintf("\t%.5g", v)
		}
		fmt.Fprintln(w, row)
	}
	w.Flush()
	if r.TabPFNCrossover > 0 {
		fmt.Fprintf(&sb, "TabPFN is the most energy-efficient below ~%.0f predictions\n", r.TabPFNCrossover)
	}
	return sb.String()
}

// Render formats the parallelism sweep.
func (r Fig5Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 5 — balanced accuracy and execution energy across CPU cores\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "system\tcores\tbudget\tbal.acc\texec kWh")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%s\t%d\t%s\t%.4f\t%.6g\n", c.System, c.Cores, FormatBudget(c.Budget), c.Score, c.ExecKWh)
	}
	w.Flush()
	return sb.String()
}

// Render formats the inference-configuration sweep.
func (r Fig6Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 6 — inference-configured variants: accuracy vs inference energy\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "variant\tbudget\tbal.acc\tinfer kWh/inst")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%s\t%s\t%.4f\t%.4g\n", c.Variant, FormatBudget(c.Budget), c.Score, c.InferKWhPerInst)
	}
	w.Flush()
	return sb.String()
}

// Render formats the development-stage comparison.
func (r Fig7Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 7 — development stage (budget %s)\n", FormatBudget(r.Budget))
	if r.Dev != nil {
		fmt.Fprintf(&sb, "development: %.4f kWh over %s (%d trials, %d pruned)\n",
			r.Dev.DevKWh, r.Dev.DevTime.Round(time.Second), r.Dev.Trials, r.Dev.Pruned)
		fmt.Fprintf(&sb, "tuned parameters: %s\n", RenderCAMLParams(r.Dev.Params))
	}
	w := newTable(&sb)
	fmt.Fprintln(w, "system\tbudget\tbal.acc\texec kWh\tinfer kWh/inst")
	rows := append(append([]CellStats(nil), r.TunedStats...), r.BaselineStats...)
	for _, s := range rows {
		if s.Key.Budget != r.Budget {
			continue
		}
		fmt.Fprintf(w, "%s\t%s\t%.4f\t%.6g\t%.4g\n",
			s.Key.System, FormatBudget(s.Key.Budget), s.Score.Mean, s.ExecKWh, s.InferKWhPerInst)
	}
	w.Flush()
	if r.AmortizationRuns > 0 {
		fmt.Fprintf(&sb, "development energy amortizes after ~%d executions\n", r.AmortizationRuns)
	}
	return sb.String()
}

// RenderCAMLParams renders tuned CAML parameters the way paper Table 5
// lists them.
func RenderCAMLParams(p automl.CAMLParams) string {
	models := append([]string(nil), p.Spec.Models...)
	sort.Strings(models)
	return fmt.Sprintf("models=%v holdout=%.2f eval_fraction=%.2f sampling=%d refit=%v random_val_split=%v incremental=%v",
		models, p.HoldoutFrac, p.EvalFraction, p.SampleRows, p.Refit, p.RandomValSplit, p.Incremental)
}

// Render formats the GPU quotient table.
func (r Table3Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 3 — GPU result / CPU-only result (values < 1 favour GPU)\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "system\texec energy\texec time\tinfer energy\tinfer time")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%.2f\n",
			row.System, row.ExecEnergy, row.ExecTime, row.InferEnergy, row.InferTime)
	}
	w.Flush()
	return sb.String()
}

// Render formats the trillion-prediction projection.
func (r Table4Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 4 — cost of 1 trillion predictions\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "system\tenergy (kWh)\tCO2 (kg)\tcost (EUR)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.0f\n", row.System, row.EnergyKWh, row.CO2Kg, row.CostEUR)
	}
	w.Flush()
	return sb.String()
}

// Render formats the overfitting counts.
func (r Table6Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 6 — datasets where 5min scored worse than 1min\n")
	w := newTable(&sb)
	fmt.Fprintln(w, "system\toverfits\tof datasets")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s\t%d\t%d\n", row.System, row.Overfits, row.Datasets)
	}
	w.Flush()
	return sb.String()
}

// Render formats the budget-fidelity table.
func (r Table7Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Table 7 — actual execution time (s) for specified search times\n")
	w := newTable(&sb)
	header := "system"
	for _, b := range r.Budgets {
		header += "\t" + FormatBudget(b)
	}
	fmt.Fprintln(w, header)
	for _, row := range r.Rows {
		line := row.System
		for i := range r.Budgets {
			if row.Mean[i] < 0 {
				line += "\t-"
			} else {
				line += fmt.Sprintf("\t%.2f ± %.2f", row.Mean[i], row.Std[i])
			}
		}
		fmt.Fprintln(w, line)
	}
	w.Flush()
	return sb.String()
}

// Render formats a development-stage sweep (Tables 8 and 9).
func (r SweepResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Development sweep — %s\n", r.Label)
	w := newTable(&sb)
	fmt.Fprintln(w, r.Label+"\tbal.acc\t±\tenergy (kWh)\ttime (h)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%d\t%.4f\t%.4f\t%.4g\t%.2f\n", row.Value, row.Score.Mean, row.Score.Std, row.DevKWh, row.DevTimeH)
	}
	w.Flush()
	return sb.String()
}

// WriteReportFile atomically writes a rendered report (the text a
// Render method returns) to path. Reports are results artifacts like
// the CSV/JSON/SVG exports, so they get the same crash-consistency
// guarantee: readers observe the old report or the new one, never a
// prefix.
func WriteReportFile(path, report string) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, report)
		return err
	})
}
