package bench

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/automl"
	"repro/internal/faults"
	"repro/internal/openml"
	"repro/internal/tabular"
	"repro/internal/vclock"
)

// gridCell is one enumerated (system × dataset × budget × seed) cell of
// the benchmark grid, carrying everything a worker needs to execute it:
// the shared, read-only train/test split (materialized once per
// (dataset, seed) during enumeration), the cell's identity-derived seed,
// and — when resuming — the journaled record that makes execution
// unnecessary.
type gridCell struct {
	sys      automl.System
	spec     openml.Spec
	budget   time.Duration
	cellSeed uint64
	train    tabular.View
	test     tabular.View
	// dsErr records a dataset that never materialized; every dependent
	// cell yields a failure record instead of silently shrinking the
	// grid.
	dsErr error
	// cached is the already-completed record of the cell — from the
	// journal, or (fromRepo) decoded out of the evaluation repository.
	cached *Record
	// fromRepo marks a cached record that came from the repository
	// rather than the journal; such cells still append to the journal,
	// so shard journals stay complete and merges never see holes.
	fromRepo bool
	// id is the cell's journal/repository key.
	id string
}

// enumerateGrid walks the grid in its canonical order and materializes
// every immutable per-cell input up front: dataset generation and
// train/test splits happen here, once per dataset and per (dataset,
// seed), so workers share them read-only and never recompute state that
// does not depend on the cell's own execution. Every RNG stream involved
// derives from cell identity (dataset index, seed index, base seed) —
// never from execution order — which is what lets the cells run in any
// order, on any number of workers, and still reproduce the serial grid
// exactly.
//
// With cfg.Shard set, only the cells the shard owns are enumerated.
// Ownership is a pure function of (grid fingerprint, cell identity), and
// dataset generation and splits are keyed by identity too, so the cells
// a shard materializes are bit-identical to the same cells of an
// unsharded enumeration. Datasets and splits are generated lazily — a
// shard that owns no cell of a dataset never pays for (or rolls fault
// decisions about) generating it; the injector's dataset-fault draws
// are site-keyed, so skipping them cannot perturb any other decision.
//
// With cfg.Repo set, every cell the journal does not already cover
// consults the repository: a verified entry replays its record exactly
// as a journal checkpoint would (the cell never executes), a miss runs
// live, and damage follows the repository's policy — counted under
// AllowDamage, otherwise aborting enumeration. The returned RepoStats
// reports that traffic (Stored is filled in later by the runners).
func enumerateGrid(systems []automl.System, cfg Config, inj *faults.Injector, journal *Journal, fingerprint string) ([]gridCell, RepoStats, error) {
	var stats RepoStats
	owns := func(string) bool { return true }
	if cfg.Shard.Enabled() {
		owns = func(id string) bool { return cfg.Shard.Owns(fingerprint, id) }
	}
	var cells []gridCell
	for di, spec := range cfg.Datasets {
		var ds *tabular.Frame
		var dsErr error
		generated := false
		for seed := 0; seed < cfg.Seeds; seed++ {
			var train, test tabular.View
			split := false
			cellSeed := uint64(seed)*1009 + uint64(di)
			for _, sys := range systems {
				for _, budget := range cfg.Budgets {
					if budget < sys.MinBudget() {
						continue
					}
					id := cellID(sys.Name(), spec.Name, budget, cellSeed)
					if !owns(id) {
						continue
					}
					if !generated {
						ds, dsErr = generateDataset(spec, cfg, inj)
						generated = true
					}
					if !split && dsErr == nil {
						splitRng := rand.New(rand.NewPCG(cfg.Seed+uint64(seed)*101, uint64(di)))
						train, test = ds.All().TrainTestSplit(splitRng)
						split = true
					}
					cell := gridCell{
						sys:      sys,
						spec:     spec,
						budget:   budget,
						cellSeed: cellSeed,
						train:    train,
						test:     test,
						dsErr:    dsErr,
						id:       id,
					}
					if journal != nil {
						if rec, ok := journal.Lookup(id); ok {
							rec := rec
							cell.cached = &rec
						}
					}
					if cell.cached == nil && cfg.Repo != nil {
						rec, hit, damaged, err := repoLookup(cfg.Repo, fingerprint, id)
						if err != nil {
							return nil, stats, err
						}
						switch {
						case damaged:
							stats.Damaged++
							stats.Misses++
						case hit:
							stats.Hits++
							cell.cached = &rec
							cell.fromRepo = true
						default:
							stats.Misses++
						}
					}
					cells = append(cells, cell)
				}
			}
		}
	}
	return cells, stats, nil
}

// fitOutcome carries one Fit attempt's result across the watchdog
// boundary.
type fitOutcome struct {
	res *automl.Result
	err error
}

// fitWithWatchdog runs one Fit attempt under the stall watchdog. The
// attempt executes on its own goroutine while the watchdog samples the
// cell's virtual clock through the concurrency-safe Probe mirror; an
// attempt whose virtual clock fails to advance across wd.Probes
// consecutive probe intervals has its abandon channel closed.
// Abandonment is advisory and cooperative: the watchdog then waits for
// the attempt to return and believes what it says. A parked hang — the
// injected kind — acknowledges immediately with a typed stall error
// and is recorded as stalled; a cell the probe timer merely caught
// between two virtual-clock advances (scheduling jitter, a slow
// machine, -race) runs to completion and its real result stands.
// Whether a cell stalls is therefore a pure function of the injected
// fault plan — never of real time — so records stay byte-identical at
// every worker count and probe interval. The flip side is that a
// trainer which neither finishes nor acknowledges would keep its
// worker parked (Go cannot kill a goroutine); every in-repo trainer
// terminates in bounded virtual time or parks on the abandon channel,
// so the wait is bounded in practice. With the watchdog disabled this
// is exactly safeFit.
func fitWithWatchdog(sys automl.System, train tabular.View, opts automl.Options, wd WatchdogPolicy) (res *automl.Result, stalled bool, err error) {
	if !wd.Enabled() {
		res, err = safeFit(sys, train, opts)
		return res, false, err
	}
	abandon := make(chan struct{})
	opts.Abandon = abandon
	clock := opts.Meter.Clock()
	done := make(chan fitOutcome, 1)
	go func() {
		r, ferr := safeFit(sys, train, opts)
		done <- fitOutcome{res: r, err: ferr}
	}()
	//greenlint:allow wallclock watchdog probe timer is operator-facing real time; stall decisions depend only on virtual progress
	ticker := time.NewTicker(wd.Interval)
	defer ticker.Stop()
	stall := vclock.NewStallCounter(wd.Probes)
	stall.Observe(int64(clock.Probe()))
	for {
		select {
		case out := <-done:
			return out.res, false, out.err
		case <-ticker.C:
			if !stall.Observe(int64(clock.Probe())) {
				continue
			}
			// No virtual progress across wd.Probes intervals: the cell
			// looks wedged. Close the abandon channel and wait for the
			// attempt to unwind; receiving its outcome gives the caller a
			// happens-before edge, so reading the shared meter afterwards
			// is race-free. Only a typed stall acknowledgement — the
			// parked hang unwinding — records a stall; a cell that was
			// merely slow between clock advances returns its real result,
			// which keeps stall records independent of real time.
			close(abandon)
			out := <-done
			if faults.KindOf(out.err, faults.None) == faults.Stall {
				return nil, true, nil
			}
			return out.res, false, out.err
		}
	}
}

// runCellTask executes one enumerated cell and returns its record plus
// the repository payload (nil when the cell produced no predictions).
func runCellTask(c gridCell, cfg Config, inj *faults.Injector) (Record, *cellPayload) {
	if c.dsErr != nil {
		return Record{
			System: c.sys.Name(), Dataset: c.spec.Name,
			Budget: c.budget, Seed: c.cellSeed,
			Failure: faults.KindOf(c.dsErr, faults.DatasetError), Attempts: cfg.Retry.MaxAttempts,
		}, nil
	}
	return runCell(c.sys, c.train, c.test, c.budget, cfg, c.cellSeed, inj)
}

// runGridSerial executes the cells one by one in grid order — the
// historical execution mode, kept as the Workers == 1 path. A journal
// failure returns the records completed so far alongside the error.
// Repository hits replay without executing but still checkpoint to the
// journal (a shard journal must cover every owned cell for merges);
// journal hits never re-append and never consult the repository.
func runGridSerial(cells []gridCell, cfg Config, inj *faults.Injector, journal *Journal, fingerprint string) ([]Record, int, error) {
	stored := 0
	records := make([]Record, 0, len(cells))
	for _, c := range cells {
		if c.cached != nil {
			if c.fromRepo && journal != nil {
				if err := journal.Append(*c.cached); err != nil {
					return records, stored, err
				}
			}
			records = append(records, *c.cached)
			continue
		}
		rec, payload := runCellTask(c, cfg, inj)
		if journal != nil {
			if err := journal.Append(rec); err != nil {
				return records, stored, err
			}
		}
		ok, err := storeCell(cfg.Repo, fingerprint, c.id, rec, payload)
		if err != nil {
			return records, stored, err
		}
		if ok {
			stored++
		}
		records = append(records, rec)
	}
	return records, stored, nil
}

// runGridParallel executes the cells on a bounded worker pool. Each cell
// is independent — its RNG streams derive from cell identity, its meters
// are private, the shared datasets are read-only and the fault injector
// is pure — so workers need no coordination beyond the journal mutex.
// Results land in a slice indexed by enumeration order, which makes the
// returned records (and therefore every export and figure) byte-identical
// to a serial run at any worker count; only the journal's on-disk line
// order varies, and resume replays it by cell identity, not position.
func runGridParallel(cells []gridCell, cfg Config, inj *faults.Injector, journal *Journal, fingerprint string) ([]Record, int, error) {
	records := make([]Record, len(cells))
	work := make(chan int)
	var (
		wg       sync.WaitGroup
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		stored   atomic.Int64
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		failed.Store(true)
	}

	workers := cfg.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range work {
				if failed.Load() {
					continue // drain remaining work after a failure
				}
				rec, payload := runCellTask(cells[ci], cfg, inj)
				if journal != nil {
					if err := journal.Append(rec); err != nil {
						fail(err)
						continue
					}
				}
				ok, err := storeCell(cfg.Repo, fingerprint, cells[ci].id, rec, payload)
				if err != nil {
					fail(err)
					continue
				}
				if ok {
					stored.Add(1)
				}
				records[ci] = rec
			}
		}()
	}
	for ci := range cells {
		if c := cells[ci]; c.cached != nil {
			if c.fromRepo && journal != nil {
				if err := journal.Append(*c.cached); err != nil {
					fail(err)
					break
				}
			}
			records[ci] = *c.cached
			continue
		}
		work <- ci
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, int(stored.Load()), firstErr
	}
	return records, int(stored.Load()), nil
}
