package bench

import (
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/automl"
	"repro/internal/faults"
	"repro/internal/openml"
	"repro/internal/tabular"
)

// gridCell is one enumerated (system × dataset × budget × seed) cell of
// the benchmark grid, carrying everything a worker needs to execute it:
// the shared, read-only train/test split (materialized once per
// (dataset, seed) during enumeration), the cell's identity-derived seed,
// and — when resuming — the journaled record that makes execution
// unnecessary.
type gridCell struct {
	sys      automl.System
	spec     openml.Spec
	budget   time.Duration
	cellSeed uint64
	train    *tabular.Dataset
	test     *tabular.Dataset
	// dsErr records a dataset that never materialized; every dependent
	// cell yields a failure record instead of silently shrinking the
	// grid.
	dsErr error
	// cached is the journaled record of an already-completed cell.
	cached *Record
}

// enumerateGrid walks the grid in its canonical order and materializes
// every immutable per-cell input up front: dataset generation and
// train/test splits happen here, once per dataset and per (dataset,
// seed), so workers share them read-only and never recompute state that
// does not depend on the cell's own execution. Every RNG stream involved
// derives from cell identity (dataset index, seed index, base seed) —
// never from execution order — which is what lets the cells run in any
// order, on any number of workers, and still reproduce the serial grid
// exactly.
func enumerateGrid(systems []automl.System, cfg Config, inj *faults.Injector, journal *Journal) []gridCell {
	var cells []gridCell
	for di, spec := range cfg.Datasets {
		ds, dsErr := generateDataset(spec, cfg, inj)
		for seed := 0; seed < cfg.Seeds; seed++ {
			var train, test *tabular.Dataset
			if dsErr == nil {
				splitRng := rand.New(rand.NewPCG(cfg.Seed+uint64(seed)*101, uint64(di)))
				train, test = ds.TrainTestSplit(splitRng)
			}
			for _, sys := range systems {
				for _, budget := range cfg.Budgets {
					if budget < sys.MinBudget() {
						continue
					}
					cell := gridCell{
						sys:      sys,
						spec:     spec,
						budget:   budget,
						cellSeed: uint64(seed)*1009 + uint64(di),
						train:    train,
						test:     test,
						dsErr:    dsErr,
					}
					if journal != nil {
						if rec, ok := journal.Lookup(cellID(sys.Name(), spec.Name, budget, cell.cellSeed)); ok {
							rec := rec
							cell.cached = &rec
						}
					}
					cells = append(cells, cell)
				}
			}
		}
	}
	return cells
}

// runCellTask executes one enumerated cell and returns its record.
func runCellTask(c gridCell, cfg Config, inj *faults.Injector) Record {
	if c.dsErr != nil {
		return Record{
			System: c.sys.Name(), Dataset: c.spec.Name,
			Budget: c.budget, Seed: c.cellSeed,
			Failure: faults.KindOf(c.dsErr, faults.DatasetError), Attempts: cfg.Retry.MaxAttempts,
		}
	}
	return runCell(c.sys, c.train, c.test, c.budget, cfg, c.cellSeed, inj)
}

// runGridSerial executes the cells one by one in grid order — the
// historical execution mode, kept as the Workers == 1 path. A journal
// failure returns the records completed so far alongside the error.
func runGridSerial(cells []gridCell, cfg Config, inj *faults.Injector, journal *Journal) ([]Record, error) {
	records := make([]Record, 0, len(cells))
	for _, c := range cells {
		if c.cached != nil {
			records = append(records, *c.cached)
			continue
		}
		rec := runCellTask(c, cfg, inj)
		if journal != nil {
			if err := journal.Append(rec); err != nil {
				return records, err
			}
		}
		records = append(records, rec)
	}
	return records, nil
}

// runGridParallel executes the cells on a bounded worker pool. Each cell
// is independent — its RNG streams derive from cell identity, its meters
// are private, the shared datasets are read-only and the fault injector
// is pure — so workers need no coordination beyond the journal mutex.
// Results land in a slice indexed by enumeration order, which makes the
// returned records (and therefore every export and figure) byte-identical
// to a serial run at any worker count; only the journal's on-disk line
// order varies, and resume replays it by cell identity, not position.
func runGridParallel(cells []gridCell, cfg Config, inj *faults.Injector, journal *Journal) ([]Record, error) {
	records := make([]Record, len(cells))
	work := make(chan int)
	var (
		wg       sync.WaitGroup
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		failed.Store(true)
	}

	workers := cfg.Workers
	if workers > len(cells) {
		workers = len(cells)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range work {
				if failed.Load() {
					continue // drain remaining work after a failure
				}
				rec := runCellTask(cells[ci], cfg, inj)
				if journal != nil {
					if err := journal.Append(rec); err != nil {
						fail(err)
						continue
					}
				}
				records[ci] = rec
			}
		}()
	}
	for ci := range cells {
		if c := cells[ci]; c.cached != nil {
			records[ci] = *c.cached
			continue
		}
		work <- ci
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return records, nil
}
