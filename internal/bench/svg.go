package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/atomicio"
)

// SVG rendering of the paper's figures. The harness's primary output is
// textual, but Figures 3-5 are scatter/line charts in the paper; these
// renderers emit self-contained SVG so the reproduction's results can be
// looked at the same way. No dependencies: hand-rolled axes with
// log-scale support.

// svgPalette assigns stable colors per system (color-blind-safe-ish).
var svgPalette = []string{
	"#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377",
	"#bbbbbb", "#222255", "#225555",
}

type svgCanvas struct {
	sb            strings.Builder
	width, height float64
	marginL       float64
	marginB       float64
	marginT       float64
	marginR       float64
}

func newSVGCanvas(width, height float64) *svgCanvas {
	c := &svgCanvas{width: width, height: height, marginL: 70, marginB: 45, marginT: 30, marginR: 160}
	fmt.Fprintf(&c.sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&c.sb, `<rect width="%g" height="%g" fill="white"/>`+"\n", width, height)
	return c
}

func (c *svgCanvas) plotW() float64 { return c.width - c.marginL - c.marginR }
func (c *svgCanvas) plotH() float64 { return c.height - c.marginT - c.marginB }

// axis maps a data range onto the canvas; log10 axes require positive
// bounds.
type axis struct {
	min, max float64
	log      bool
	span     float64 // pixel span
	offset   float64 // pixel origin
	vertical bool
}

func (a *axis) scale(v float64) float64 {
	lo, hi, x := a.min, a.max, v
	if a.log {
		lo, hi, x = math.Log10(a.min), math.Log10(a.max), math.Log10(math.Max(v, 1e-300))
	}
	frac := 0.5
	if hi > lo {
		frac = (x - lo) / (hi - lo)
	}
	if a.vertical {
		return a.offset - frac*a.span
	}
	return a.offset + frac*a.span
}

// ticks returns tick positions: decades on log axes, 5 linear steps
// otherwise.
func (a *axis) ticks() []float64 {
	if a.log {
		var out []float64
		for e := math.Floor(math.Log10(a.min)); e <= math.Ceil(math.Log10(a.max)); e++ {
			v := math.Pow(10, e)
			if v >= a.min/1.001 && v <= a.max*1.001 {
				out = append(out, v)
			}
		}
		return out
	}
	var out []float64
	for i := 0; i <= 5; i++ {
		out = append(out, a.min+(a.max-a.min)*float64(i)/5)
	}
	return out
}

func formatTick(v float64, log bool) string {
	if log {
		return fmt.Sprintf("1e%d", int(math.Round(math.Log10(v))))
	}
	return fmt.Sprintf("%.3g", v)
}

func (c *svgCanvas) drawAxes(x, y *axis, xLabel, yLabel, title string) {
	left, bottom := c.marginL, c.height-c.marginB
	fmt.Fprintf(&c.sb, `<text x="%g" y="18" font-size="13" font-weight="bold">%s</text>`+"\n", c.marginL, title)
	fmt.Fprintf(&c.sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", left, bottom, left+c.plotW(), bottom)
	fmt.Fprintf(&c.sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", left, bottom, left, bottom-c.plotH())
	for _, tv := range x.ticks() {
		px := x.scale(tv)
		fmt.Fprintf(&c.sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", px, bottom, px, bottom+4)
		fmt.Fprintf(&c.sb, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n", px, bottom+16, formatTick(tv, x.log))
	}
	for _, tv := range y.ticks() {
		py := y.scale(tv)
		fmt.Fprintf(&c.sb, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", left-4, py, left, py)
		fmt.Fprintf(&c.sb, `<text x="%g" y="%g" text-anchor="end">%s</text>`+"\n", left-7, py+4, formatTick(tv, y.log))
	}
	fmt.Fprintf(&c.sb, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n", left+c.plotW()/2, c.height-8, xLabel)
	fmt.Fprintf(&c.sb, `<text x="14" y="%g" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`+"\n",
		c.marginT+c.plotH()/2, c.marginT+c.plotH()/2, yLabel)
}

func (c *svgCanvas) legend(names []string) {
	x := c.width - c.marginR + 12
	for i, name := range names {
		y := c.marginT + 14 + float64(i)*16
		fmt.Fprintf(&c.sb, `<rect x="%g" y="%g" width="10" height="10" fill="%s"/>`+"\n", x, y-9, svgPalette[i%len(svgPalette)])
		fmt.Fprintf(&c.sb, `<text x="%g" y="%g">%s</text>`+"\n", x+14, y, name)
	}
}

func (c *svgCanvas) close() string {
	c.sb.WriteString("</svg>\n")
	return c.sb.String()
}

// seriesBounds computes padded bounds over positive values for a log axis.
func logBounds(values []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v <= 0 {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return 1e-9, 1
	}
	return lo / 1.5, hi * 1.5
}

// WriteFig3SVG renders the paper's Figure 3 layout: balanced accuracy (y)
// against energy (x, log scale), one polyline per system across budgets.
// stage selects execution energy (false) or per-instance inference energy
// (true).
func WriteFig3SVG(w io.Writer, stats []CellStats, inference bool) error {
	systems := Systems(stats)
	var xs, ys []float64
	for _, s := range stats {
		xs = append(xs, fig3X(s, inference))
		ys = append(ys, s.Score.Mean)
	}
	xlo, xhi := logBounds(xs)
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, v := range ys {
		ylo = math.Min(ylo, v)
		yhi = math.Max(yhi, v)
	}
	pad := math.Max(0.01, (yhi-ylo)*0.1)
	ylo, yhi = ylo-pad, yhi+pad

	c := newSVGCanvas(760, 430)
	x := &axis{min: xlo, max: xhi, log: true, span: c.plotW(), offset: c.marginL}
	y := &axis{min: ylo, max: yhi, span: c.plotH(), offset: c.height - c.marginB, vertical: true}
	title := "Figure 3: accuracy vs execution energy (kWh)"
	xLabel := "execution energy (kWh, log)"
	if inference {
		title = "Figure 3: accuracy vs inference energy (kWh/instance)"
		xLabel = "inference energy (kWh/instance, log)"
	}
	c.drawAxes(x, y, xLabel, "balanced accuracy", title)

	for i, system := range systems {
		color := svgPalette[i%len(svgPalette)]
		var cells []CellStats
		for _, s := range stats {
			if s.Key.System == system {
				cells = append(cells, s)
			}
		}
		sort.Slice(cells, func(a, b int) bool { return cells[a].Key.Budget < cells[b].Key.Budget })
		var points []string
		for _, s := range cells {
			px, py := x.scale(fig3X(s, inference)), y.scale(s.Score.Mean)
			points = append(points, fmt.Sprintf("%.1f,%.1f", px, py))
			fmt.Fprintf(&c.sb, `<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s"/>`+"\n", px, py, color)
			fmt.Fprintf(&c.sb, `<text x="%.1f" y="%.1f" font-size="9" fill="%s">%s</text>`+"\n",
				px+5, py-4, color, FormatBudget(s.Key.Budget))
		}
		if len(points) > 1 {
			fmt.Fprintf(&c.sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.4"/>`+"\n",
				strings.Join(points, " "), color)
		}
	}
	c.legend(systems)
	_, err := io.WriteString(w, c.close())
	return err
}

func fig3X(s CellStats, inference bool) float64 {
	if inference {
		return s.InferKWhPerInst
	}
	return s.ExecKWh
}

// WriteFig4SVG renders Figure 4: total energy (y, log) against prediction
// count (x, log), one line per system.
func WriteFig4SVG(w io.Writer, res Fig4Result) error {
	if len(res.Points) == 0 || len(res.Series) == 0 {
		return fmt.Errorf("bench: empty fig4 result")
	}
	var all []float64
	for _, s := range res.Series {
		all = append(all, s.TotalKWh...)
	}
	ylo, yhi := logBounds(all)
	c := newSVGCanvas(760, 430)
	x := &axis{min: res.Points[0], max: res.Points[len(res.Points)-1], log: true, span: c.plotW(), offset: c.marginL}
	y := &axis{min: ylo, max: yhi, log: true, span: c.plotH(), offset: c.height - c.marginB, vertical: true}
	c.drawAxes(x, y, "number of predictions (log)", "total energy (kWh, log)", "Figure 4: energy vs prediction volume")

	var names []string
	for i, s := range res.Series {
		names = append(names, s.System)
		color := svgPalette[i%len(svgPalette)]
		var points []string
		for j, n := range res.Points {
			points = append(points, fmt.Sprintf("%.1f,%.1f", x.scale(n), y.scale(s.TotalKWh[j])))
		}
		fmt.Fprintf(&c.sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n",
			strings.Join(points, " "), color)
	}
	if res.TabPFNCrossover > 0 && res.TabPFNCrossover >= x.min && res.TabPFNCrossover <= x.max {
		px := x.scale(res.TabPFNCrossover)
		fmt.Fprintf(&c.sb, `<line x1="%.1f" y1="%g" x2="%.1f" y2="%g" stroke="gray" stroke-dasharray="4 3"/>`+"\n",
			px, c.height-c.marginB, px, c.marginT)
		fmt.Fprintf(&c.sb, `<text x="%.1f" y="%g" font-size="10" fill="gray">crossover %.0f</text>`+"\n",
			px+4, c.marginT+12, res.TabPFNCrossover)
	}
	c.legend(names)
	_, err := io.WriteString(w, c.close())
	return err
}

// WriteFig5SVG renders Figure 5: execution energy (x, log) against
// accuracy (y), one polyline per (system, cores) combination.
func WriteFig5SVG(w io.Writer, res Fig5Result) error {
	if len(res.Cells) == 0 {
		return fmt.Errorf("bench: empty fig5 result")
	}
	type key struct {
		system string
		cores  int
	}
	groups := map[key][]Fig5Cell{}
	var xs, ys []float64
	for _, cell := range res.Cells {
		k := key{cell.System, cell.Cores}
		groups[k] = append(groups[k], cell)
		xs = append(xs, cell.ExecKWh)
		ys = append(ys, cell.Score)
	}
	xlo, xhi := logBounds(xs)
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, v := range ys {
		ylo, yhi = math.Min(ylo, v), math.Max(yhi, v)
	}
	pad := math.Max(0.01, (yhi-ylo)*0.1)
	c := newSVGCanvas(760, 430)
	x := &axis{min: xlo, max: xhi, log: true, span: c.plotW(), offset: c.marginL}
	y := &axis{min: ylo - pad, max: yhi + pad, span: c.plotH(), offset: c.height - c.marginB, vertical: true}
	c.drawAxes(x, y, "execution energy (kWh, log)", "balanced accuracy", "Figure 5: parallelism")

	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].system != keys[j].system {
			return keys[i].system < keys[j].system
		}
		return keys[i].cores < keys[j].cores
	})
	var names []string
	for i, k := range keys {
		names = append(names, fmt.Sprintf("%s/%d cores", k.system, k.cores))
		color := svgPalette[i%len(svgPalette)]
		cells := groups[k]
		sort.Slice(cells, func(a, b int) bool { return cells[a].Budget < cells[b].Budget })
		var points []string
		for _, cell := range cells {
			px, py := x.scale(cell.ExecKWh), y.scale(cell.Score)
			points = append(points, fmt.Sprintf("%.1f,%.1f", px, py))
			fmt.Fprintf(&c.sb, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", px, py, color)
		}
		if len(points) > 1 {
			fmt.Fprintf(&c.sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.3"/>`+"\n",
				strings.Join(points, " "), color)
		}
	}
	c.legend(names)
	_, err := io.WriteString(w, c.close())
	return err
}

// WriteSVGFile atomically writes one rendered chart to path through
// internal/atomicio, so a kill mid-render never leaves a torn SVG under
// the final name.
func WriteSVGFile(path string, render func(io.Writer) error) error {
	return atomicio.WriteFile(path, render)
}
