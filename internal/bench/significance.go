package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
)

// SignificanceResult reports, per budget, the systems' mean ranks across
// datasets and a Wilcoxon signed-rank comparison of every system against
// the top-ranked one — the statistical backing for "system X wins"
// claims over the 39-dataset suite.
type SignificanceResult struct {
	Budgets []time.Duration
	// Ranks[budget][system] is the mean rank (1 = best).
	Ranks map[time.Duration]map[string]float64
	// PValues[budget][system] is the two-sided Wilcoxon p-value of the
	// system against the top-ranked system at that budget.
	PValues map[time.Duration]map[string]float64
	// Top[budget] names the top-ranked system.
	Top map[time.Duration]string
}

// Significance computes rank and significance statistics from grid
// records. Only datasets covered by every system at a budget enter that
// budget's analysis (paired tests need complete pairs).
func Significance(records []Record) SignificanceResult {
	type cell struct {
		budget  time.Duration
		system  string
		dataset string
	}
	scores := map[cell][]float64{}
	systemsAt := map[time.Duration]map[string]bool{}
	datasetsAt := map[time.Duration]map[string]bool{}
	for _, r := range records {
		if !r.Scored() {
			continue
		}
		scores[cell{r.Budget, r.System, r.Dataset}] = append(scores[cell{r.Budget, r.System, r.Dataset}], r.TestScore)
		if systemsAt[r.Budget] == nil {
			systemsAt[r.Budget] = map[string]bool{}
			datasetsAt[r.Budget] = map[string]bool{}
		}
		systemsAt[r.Budget][r.System] = true
		datasetsAt[r.Budget][r.Dataset] = true
	}

	res := SignificanceResult{
		Ranks:   map[time.Duration]map[string]float64{},
		PValues: map[time.Duration]map[string]float64{},
		Top:     map[time.Duration]string{},
	}
	for b := range systemsAt {
		res.Budgets = append(res.Budgets, b)
	}
	sort.Slice(res.Budgets, func(i, j int) bool { return res.Budgets[i] < res.Budgets[j] })

	for _, budget := range res.Budgets {
		var systems []string
		for s := range systemsAt[budget] {
			systems = append(systems, s)
		}
		sort.Strings(systems)
		if len(systems) < 2 {
			continue
		}

		// Complete per-dataset score rows.
		var rows []map[string]float64
		var perSystem = map[string][]float64{}
		var datasets []string
		for d := range datasetsAt[budget] {
			datasets = append(datasets, d)
		}
		sort.Strings(datasets)
		for _, d := range datasets {
			row := map[string]float64{}
			complete := true
			for _, s := range systems {
				runs := scores[cell{budget, s, d}]
				if len(runs) == 0 {
					complete = false
					break
				}
				row[s] = metrics.MeanStd(runs).Mean
			}
			if !complete {
				continue
			}
			rows = append(rows, row)
			for s, v := range row {
				perSystem[s] = append(perSystem[s], v)
			}
		}
		if len(rows) == 0 {
			continue
		}
		ranks, err := metrics.MeanRanks(rows)
		if err != nil {
			continue
		}
		res.Ranks[budget] = ranks

		top := systems[0]
		for _, s := range systems[1:] {
			if ranks[s] < ranks[top] {
				top = s
			}
		}
		res.Top[budget] = top

		ps := map[string]float64{}
		for _, s := range systems {
			if s == top {
				continue
			}
			w, err := metrics.WilcoxonSignedRank(perSystem[top], perSystem[s])
			if err != nil {
				continue
			}
			ps[s] = w.PValue
		}
		res.PValues[budget] = ps
	}
	return res
}

// Render formats the significance analysis.
func (r SignificanceResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Rank & significance analysis — mean rank (1=best); p = Wilcoxon vs the top system\n")
	for _, budget := range r.Budgets {
		ranks := r.Ranks[budget]
		if len(ranks) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%s (top: %s):\n", FormatBudget(budget), r.Top[budget])
		systems := make([]string, 0, len(ranks))
		for s := range ranks {
			systems = append(systems, s)
		}
		sort.Slice(systems, func(i, j int) bool { return ranks[systems[i]] < ranks[systems[j]] })
		for _, s := range systems {
			if s == r.Top[budget] {
				fmt.Fprintf(&sb, "  %-24s rank %.2f\n", s, ranks[s])
			} else {
				fmt.Fprintf(&sb, "  %-24s rank %.2f  p=%.3f\n", s, ranks[s], r.PValues[budget][s])
			}
		}
	}
	return sb.String()
}
