package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/openml"
)

// WinnersResult is the dataset-level analysis of paper §3.2.1: for each
// search time, how many datasets each system wins, and how wins relate to
// data characteristics (rows, features, classes).
type WinnersResult struct {
	// Budgets lists the analyzed budgets in order.
	Budgets []time.Duration
	// Wins[budget][system] counts datasets the system wins at that
	// budget.
	Wins map[time.Duration]map[string]int
	// PerDataset[budget][dataset] names the winning system.
	PerDataset map[time.Duration]map[string]string
	// Datasets counts the datasets analyzed per budget.
	Datasets map[time.Duration]int
}

// Winners computes, per budget, the system with the highest mean test
// score on each dataset (paper §3.2.1's "dataset-level predictive
// performance").
func Winners(records []Record) WinnersResult {
	type cell struct {
		budget  time.Duration
		system  string
		dataset string
	}
	scores := map[cell][]float64{}
	budgetSet := map[time.Duration]bool{}
	for _, r := range records {
		if !r.Scored() {
			continue
		}
		key := cell{r.Budget, r.System, r.Dataset}
		scores[key] = append(scores[key], r.TestScore)
		budgetSet[r.Budget] = true
	}

	res := WinnersResult{
		Wins:       map[time.Duration]map[string]int{},
		PerDataset: map[time.Duration]map[string]string{},
		Datasets:   map[time.Duration]int{},
	}
	for b := range budgetSet {
		res.Budgets = append(res.Budgets, b)
	}
	sort.Slice(res.Budgets, func(i, j int) bool { return res.Budgets[i] < res.Budgets[j] })

	for _, budget := range res.Budgets {
		best := map[string]string{} // dataset -> system
		bestScore := map[string]float64{}
		for key, runs := range scores {
			if key.budget != budget {
				continue
			}
			mean := metrics.MeanStd(runs).Mean
			cur, ok := bestScore[key.dataset]
			// Exact ties resolve to the lexicographically smaller system
			// name so the analysis is deterministic under map iteration.
			if !ok || mean > cur || (mean == cur && key.system < best[key.dataset]) {
				bestScore[key.dataset] = mean
				best[key.dataset] = key.system
			}
		}
		wins := map[string]int{}
		for _, system := range best {
			wins[system]++
		}
		res.Wins[budget] = wins
		res.PerDataset[budget] = best
		res.Datasets[budget] = len(best)
	}
	return res
}

// CharacteristicBreakdown relates wins at one budget to the dataset
// characteristics the paper analyzes: small datasets (<1k rows, <20
// features in the published analysis — scaled thresholds here), wide
// datasets, many-class datasets.
type CharacteristicBreakdown struct {
	// SmallWins[system] counts wins on small datasets (by published
	// full-size signature: <= 3000 rows, <= 20 features).
	SmallWins map[string]int
	// WideWins[system] counts wins on wide datasets (> 500 features).
	WideWins map[string]int
	// ManyClassWins[system] counts wins on many-class datasets (> 10
	// classes).
	ManyClassWins map[string]int
}

// Characteristics breaks one budget's winners down by the published
// dataset signatures (paper §3.2.1: "TabPFN works particularly well for
// small datasets", "FLAML performs well for large number of features",
// "for large number of classes, ensemble-based systems perform well").
func (r WinnersResult) Characteristics(budget time.Duration) CharacteristicBreakdown {
	specs := map[string]openml.Spec{}
	for _, s := range openml.Suite() {
		specs[s.Name] = s
	}
	out := CharacteristicBreakdown{
		SmallWins:     map[string]int{},
		WideWins:      map[string]int{},
		ManyClassWins: map[string]int{},
	}
	for dataset, system := range r.PerDataset[budget] {
		spec, ok := specs[dataset]
		if !ok {
			continue
		}
		if spec.Rows <= 3000 && spec.Features <= 20 {
			out.SmallWins[system]++
		}
		if spec.Features > 500 {
			out.WideWins[system]++
		}
		if spec.Classes > 10 {
			out.ManyClassWins[system]++
		}
	}
	return out
}

// Render formats the dataset-level analysis.
func (r WinnersResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Dataset-level analysis (paper §3.2.1) — wins per system and search time\n")
	for _, budget := range r.Budgets {
		fmt.Fprintf(&sb, "%s (%d datasets):", FormatBudget(budget), r.Datasets[budget])
		wins := r.Wins[budget]
		systems := make([]string, 0, len(wins))
		for s := range wins {
			systems = append(systems, s)
		}
		sort.Slice(systems, func(i, j int) bool {
			if wins[systems[i]] != wins[systems[j]] {
				return wins[systems[i]] > wins[systems[j]]
			}
			return systems[i] < systems[j]
		})
		for _, s := range systems {
			fmt.Fprintf(&sb, "  %s %d/%d", s, wins[s], r.Datasets[budget])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
