package bench

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"time"

	"repro/internal/automl"
	"repro/internal/openml"
)

// gridOracleHash is the SHA-256 of the CSV export of the oracle grid
// below. The grid output — scores, energy, virtual times, evaluation
// counts — must stay byte-identical across substrate changes at every
// worker count and every within-cell parallelism level: refactors and
// kernel rewrites may change how bytes are laid out in memory or which
// goroutine computes them, never which numbers come out.
//
// Re-pin history (each re-pin is a sanctioned output change, argued in
// its PR, not a silent drift):
//   - pre-columnar-Frame refactor: f03c164a55616a918f4122f21af4c624
//     78315f2c68b61b605dec12d77c0e053. The columnar refactor preserved
//     it exactly.
//   - within-cell parallelism (PR 7): forests now pre-split their RNG
//     stream — the parent rng is consumed up front, one PCG seed pair
//     per tree in tree order, so each tree owns an independent stream
//     regardless of which worker fits it when. Trees therefore draw
//     different (still deterministic) bootstrap samples and feature
//     subsets than the old shared-stream sequential loop, which moves
//     forest-backed scores. The new output is byte-identical at
//     workers {1,4} × parallelism {1,2,4}.
const gridOracleHash = "245df0a3ceb5c07badfec3c58d43e998ec97a8b486c030d85441c6fbf7ed7bcd"

func oracleConfig(workers, parallelism int) Config {
	specs := []openml.Spec{}
	for _, name := range []string{"credit-g", "phoneme"} {
		s, _ := openml.ByName(name)
		specs = append(specs, s)
	}
	return Config{
		Datasets:    specs,
		Budgets:     []time.Duration{10 * time.Second, time.Minute},
		Seeds:       2,
		Scale:       openml.SmallScale(),
		Workers:     workers,
		Parallelism: parallelism,
	}
}

func oracleSystems() []automl.System {
	return []automl.System{
		automl.NewCAML(),
		automl.NewTabPFN(),
		automl.NewFLAML(),
		automl.NewAutoSklearn1(),
		automl.NewAutoSklearn2(),
		automl.NewAutoGluon(),
		automl.NewTPOT(),
	}
}

func gridDigest(t *testing.T, workers, parallelism int) string {
	t.Helper()
	records := RunGrid(oracleSystems(), oracleConfig(workers, parallelism))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, records); err != nil {
		t.Fatalf("exporting oracle grid: %v", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// TestGridOracleByteIdentical pins the full grid export to the oracle
// hash across the cross-cell worker count and the within-cell kernel
// parallelism level.
func TestGridOracleByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid oracle is slow; run without -short")
	}
	for _, workers := range []int{1, 4} {
		for _, parallelism := range []int{1, 4} {
			if got := gridDigest(t, workers, parallelism); got != gridOracleHash {
				t.Errorf("grid export hash at workers=%d parallelism=%d = %s, want %s",
					workers, parallelism, got, gridOracleHash)
			}
		}
	}
}
