package bench

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"time"

	"repro/internal/automl"
	"repro/internal/openml"
)

// gridOracleHash is the SHA-256 of the CSV export of the oracle grid
// below, captured on the row-major substrate immediately before the
// columnar Frame refactor. The grid output — scores, energy, virtual
// times, evaluation counts — must stay byte-identical across the layout
// change at every worker count: the refactor is allowed to change how
// bytes are laid out in memory, never which numbers come out.
const gridOracleHash = "f03c164a55616a918f4122f21af4c624f78315f2c68b61b605dec12d77c0e053"

func oracleConfig(workers int) Config {
	specs := []openml.Spec{}
	for _, name := range []string{"credit-g", "phoneme"} {
		s, _ := openml.ByName(name)
		specs = append(specs, s)
	}
	return Config{
		Datasets: specs,
		Budgets:  []time.Duration{10 * time.Second, time.Minute},
		Seeds:    2,
		Scale:    openml.SmallScale(),
		Workers:  workers,
	}
}

func oracleSystems() []automl.System {
	return []automl.System{
		automl.NewCAML(),
		automl.NewTabPFN(),
		automl.NewFLAML(),
		automl.NewAutoSklearn1(),
		automl.NewAutoSklearn2(),
		automl.NewAutoGluon(),
		automl.NewTPOT(),
	}
}

func gridDigest(t *testing.T, workers int) string {
	t.Helper()
	records := RunGrid(oracleSystems(), oracleConfig(workers))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, records); err != nil {
		t.Fatalf("exporting oracle grid: %v", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// TestGridOracleByteIdentical pins the full grid export to the
// pre-refactor hash at one and four workers.
func TestGridOracleByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid oracle is slow; run without -short")
	}
	for _, workers := range []int{1, 4} {
		if got := gridDigest(t, workers); got != gridOracleHash {
			t.Errorf("grid export hash at workers=%d = %s, want %s", workers, got, gridOracleHash)
		}
	}
}
