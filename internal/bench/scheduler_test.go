package bench

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/openml"
)

// withWorkers returns cfg pinned to a worker count.
func withWorkers(cfg Config, n int) Config {
	cfg.Workers = n
	return cfg
}

// TestParallelGridIsByteIdentical is the scheduler's determinism
// contract: the records — and therefore the CSV and JSON exports built
// from them — must be byte-identical at every worker count, for clean
// and fault-injected grids alike.
func TestParallelGridIsByteIdentical(t *testing.T) {
	configs := map[string]Config{
		"clean": {
			Datasets: openml.Suite()[:3],
			Budgets:  []time.Duration{10 * time.Second, time.Minute},
			Seeds:    2,
		},
		"faults": faultCfg(0.3, 4),
	}
	counts := []int{1, 4, runtime.NumCPU()}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			var wantCSV, wantJSON []byte
			var want []Record
			for _, n := range counts {
				records := RunGrid(DefaultSystems(), withWorkers(cfg, n))
				var csv, js bytes.Buffer
				if err := WriteCSV(&csv, records); err != nil {
					t.Fatal(err)
				}
				if err := WriteJSON(&js, records); err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want, wantCSV, wantJSON = records, csv.Bytes(), js.Bytes()
					continue
				}
				if !reflect.DeepEqual(records, want) {
					t.Fatalf("workers=%d records differ from workers=%d", n, counts[0])
				}
				if !bytes.Equal(csv.Bytes(), wantCSV) {
					t.Fatalf("workers=%d CSV export differs from workers=%d", n, counts[0])
				}
				if !bytes.Equal(js.Bytes(), wantJSON) {
					t.Fatalf("workers=%d JSON export differs from workers=%d", n, counts[0])
				}
			}
		})
	}
}

// TestParallelResumeAfterKill kills a parallel run mid-grid (the journal
// is cut to a few intact records plus a torn line) and resumes it with a
// different worker count. The resumed records must match an
// uninterrupted serial run exactly: the journal's out-of-order appends
// replay by cell identity, not by line position.
func TestParallelResumeAfterKill(t *testing.T) {
	cfg := faultCfg(0.3, 4)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	want, err := RunGridResumable(DefaultSystems(), withWorkers(cfg, 1), path)
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 6 {
		t.Fatalf("journal has only %d lines", len(lines))
	}
	torn := strings.Join(lines[:5], "") + lines[5][:len(lines[5])/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := RunGridResumable(DefaultSystems(), withWorkers(cfg, 4), path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("parallel resume differs from the uninterrupted serial run")
	}

	// The journal now checkpoints every cell; a fresh resume at yet
	// another worker count replays it without executing anything.
	again, err := RunGridResumable(DefaultSystems(), withWorkers(cfg, 3), path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Error("fully-journaled parallel rerun differs from the original records")
	}
}

// TestWorkersNotInFingerprint pins the design decision that the worker
// count is a throughput knob, not part of the grid's identity: a journal
// written at one count must resume at any other.
func TestWorkersNotInFingerprint(t *testing.T) {
	cfg := faultCfg(0.3, 4)
	base := Fingerprint(DefaultSystems(), withWorkers(cfg, 1))
	for _, n := range []int{2, 8, 0} {
		if Fingerprint(DefaultSystems(), withWorkers(cfg, n)) != base {
			t.Fatalf("workers=%d changed the journal fingerprint", n)
		}
	}
}

// withCellParallelism returns cfg pinned to a within-cell parallelism.
func withCellParallelism(cfg Config, n int) Config {
	cfg.Parallelism = n
	return cfg
}

// TestGridParallelismInvariance is the within-cell counterpart of
// TestParallelGridIsByteIdentical: records and exports must be
// byte-identical at every kernel parallelism level, for clean and
// fault-injected grids alike. Together with the ml package's
// parallelism-equivalence suite this closes the determinism chain from
// kernel float ops up to exported bytes.
func TestGridParallelismInvariance(t *testing.T) {
	configs := map[string]Config{
		"clean": {
			Datasets: openml.Suite()[:3],
			Budgets:  []time.Duration{10 * time.Second, time.Minute},
			Seeds:    2,
		},
		"faults": faultCfg(0.3, 4),
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			var wantCSV, wantJSON []byte
			var want []Record
			for _, p := range []int{1, 2, 4} {
				records := RunGrid(DefaultSystems(), withCellParallelism(cfg, p))
				var csv, js bytes.Buffer
				if err := WriteCSV(&csv, records); err != nil {
					t.Fatal(err)
				}
				if err := WriteJSON(&js, records); err != nil {
					t.Fatal(err)
				}
				if want == nil {
					want, wantCSV, wantJSON = records, csv.Bytes(), js.Bytes()
					continue
				}
				if !reflect.DeepEqual(records, want) {
					t.Fatalf("parallelism=%d records differ from parallelism=1", p)
				}
				if !bytes.Equal(csv.Bytes(), wantCSV) {
					t.Fatalf("parallelism=%d CSV export differs from parallelism=1", p)
				}
				if !bytes.Equal(js.Bytes(), wantJSON) {
					t.Fatalf("parallelism=%d JSON export differs from parallelism=1", p)
				}
			}
		})
	}
}

// TestParallelismNotInFingerprint pins the design decision that the
// within-cell parallelism level, like Workers, is a throughput knob and
// not part of the grid's identity: a journal written at one level must
// resume at any other.
func TestParallelismNotInFingerprint(t *testing.T) {
	cfg := faultCfg(0.3, 4)
	base := Fingerprint(DefaultSystems(), withCellParallelism(cfg, 1))
	for _, p := range []int{2, 8, 0} {
		if Fingerprint(DefaultSystems(), withCellParallelism(cfg, p)) != base {
			t.Fatalf("parallelism=%d changed the journal fingerprint", p)
		}
	}
}

// TestCellParallelismAuto checks the automatic budget: explicit values
// win, saturated grids stay sequential per cell, and idle workers are
// split across the cells that remain.
func TestCellParallelismAuto(t *testing.T) {
	mkCells := func(uncached, cached int) []gridCell {
		cells := make([]gridCell, 0, uncached+cached)
		for i := 0; i < uncached; i++ {
			cells = append(cells, gridCell{})
		}
		for i := 0; i < cached; i++ {
			cells = append(cells, gridCell{cached: &Record{}})
		}
		return cells
	}
	cases := []struct {
		name             string
		parallelism      int
		workers          int
		uncached, cached int
		want             int
	}{
		{name: "explicit wins", parallelism: 3, workers: 8, uncached: 100, want: 3},
		{name: "saturated grid stays sequential", workers: 4, uncached: 16, want: 1},
		{name: "idle workers split across tail", workers: 8, uncached: 2, cached: 30, want: 4},
		{name: "single live cell gets everything", workers: 8, uncached: 1, cached: 63, want: 8},
		{name: "fully cached grid is moot", workers: 8, cached: 10, want: 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Parallelism: tc.parallelism, Workers: tc.workers}
			if got := cellParallelism(cfg, mkCells(tc.uncached, tc.cached)); got != tc.want {
				t.Fatalf("cellParallelism = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestJournalAppendFailureDrainsWorkers kills the journal (every append
// past the third fails, as a dying disk would) under a parallel run:
// the run must surface the error, every worker goroutine must drain
// rather than leak, and the checkpoints that landed before the failure
// must still resume to the full grid.
func TestJournalAppendFailureDrainsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := faultCfg(0.3, 4)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	j, err := OpenJournal(path, Fingerprint(DefaultSystems(), cfg))
	if err != nil {
		t.Fatal(err)
	}
	j.crash = func(point string, seq int, _ *os.File, _ []byte) error {
		if point == crashAppendStart && seq >= 3 {
			return errors.New("injected journal device failure")
		}
		return nil
	}
	_, _, err = runGrid(DefaultSystems(), withWorkers(cfg, 4), j)
	j.Close()
	if err == nil || !strings.Contains(err.Error(), "journal device failure") {
		t.Fatalf("journal failure returned %v, want the injected device error", err)
	}

	// The worker pool must have drained: give lingering goroutines a
	// moment to unwind, then require the count to settle near where it
	// started.
	settled := false
	for i := 0; i < 200 && !settled; i++ {
		settled = runtime.NumGoroutine() <= before+2
		if !settled {
			//greenlint:allow wallclock test-only settle poll while goroutines unwind; nothing measured
			time.Sleep(5 * time.Millisecond)
		}
	}
	if n := runtime.NumGoroutine(); !settled {
		t.Fatalf("worker goroutines leaked after journal failure: %d before the run, %d after", before, n)
	}

	// The partial journal holds the three checkpoints that beat the
	// failure; resuming from it must reproduce the uninterrupted grid.
	got, err := RunGridResumable(DefaultSystems(), withWorkers(cfg, 4), path)
	if err != nil {
		t.Fatal(err)
	}
	want := RunGrid(DefaultSystems(), cfg)
	if !reflect.DeepEqual(got, want) {
		t.Error("resume from the partial journal differs from an uninterrupted run")
	}
}
