package bench

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"reflect"
	"testing"
	"time"

	"repro/internal/automl"
	"repro/internal/faults"
	"repro/internal/openml"
)

// faultCfg is a tiny grid configuration with fault injection enabled.
func faultCfg(rate float64, seed uint64) Config {
	return Config{
		Datasets: openml.Suite()[:2],
		Budgets:  []time.Duration{10 * time.Second},
		Seeds:    2,
		Faults:   faults.Config{Rate: rate, Seed: seed},
	}
}

// expectedCells counts the grid cells the config produces for the systems.
func expectedCells(systems []automl.System, cfg Config) int {
	cfg = cfg.normalized()
	n := 0
	for _, sys := range systems {
		for _, b := range cfg.Budgets {
			if b >= sys.MinBudget() {
				n++
			}
		}
	}
	return n * len(cfg.Datasets) * cfg.Seeds
}

func TestFaultGridDeterministic(t *testing.T) {
	cfg := faultCfg(0.4, 7)
	a := RunGrid(DefaultSystems(), cfg)
	b := RunGrid(DefaultSystems(), cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same fault seed produced different records")
	}
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Error("records are not byte-identical under the same fault seed")
	}
	faulted := 0
	for _, r := range a {
		if r.Failure != faults.None {
			faulted++
		}
	}
	if faulted == 0 {
		t.Error("rate 0.4 grid saw no faults — injection is not reaching cells")
	}
}

// TestInjectedFaultsNeverAbortGrid runs a heavily faulted grid (rate 0.85;
// the seed was picked so every injected kind fires) and checks that it
// still yields a full, scored set of records: panics are contained,
// exhausted retries degrade to the fallback predictor, and wasted attempts
// still show up as charged energy.
func TestInjectedFaultsNeverAbortGrid(t *testing.T) {
	cfg := faultCfg(0.85, 24)
	cfg.Retry.MaxAttempts = 4
	records := RunGrid(DefaultSystems(), cfg)
	if want := expectedCells(DefaultSystems(), cfg); len(records) != want {
		t.Fatalf("got %d records, want %d — failed cells must not shrink the grid", len(records), want)
	}
	counts := make(map[faults.Kind]int)
	for _, r := range records {
		counts[r.Failure]++
		if r.Attempts < 1 {
			t.Errorf("%s/%s: no attempts recorded", r.System, r.Dataset)
		}
		if !r.Scored() {
			continue
		}
		if r.TestScore <= 0 {
			t.Errorf("%s/%s: scored record has score %v", r.System, r.Dataset, r.TestScore)
		}
		if r.Fallback && r.EnergyValid() && r.ExecKWh <= 0 {
			t.Errorf("%s/%s: fallback record lost its wasted-attempt energy", r.System, r.Dataset)
		}
	}
	for _, kind := range []faults.Kind{faults.FitPanic, faults.FitError, faults.PredictError, faults.MeterDropout} {
		if counts[kind] == 0 {
			t.Errorf("no %s records — this grid is meant to exercise every injected kind", kind)
		}
	}
}

// TestRetrySuccessChargesEnergy finds a cell whose first attempt faulted
// and whose retry succeeded, and checks the failed attempt's energy stayed
// charged: the record must cost strictly more than the identical cell in a
// fault-free grid.
func TestRetrySuccessChargesEnergy(t *testing.T) {
	cfg := faultCfg(0, 0)
	clean := make(map[string]Record)
	for _, r := range RunGrid(DefaultSystems(), cfg) {
		clean[cellID(r.System, r.Dataset, r.Budget, r.Seed)] = r
	}

	for seed := uint64(1); seed <= 10; seed++ {
		for _, r := range RunGrid(DefaultSystems(), faultCfg(0.5, seed)) {
			if r.Attempts <= 1 || r.Failure != faults.None || r.Fallback {
				continue
			}
			base, ok := clean[cellID(r.System, r.Dataset, r.Budget, r.Seed)]
			if !ok {
				t.Fatalf("no clean twin for %s/%s", r.System, r.Dataset)
			}
			if r.ExecKWh <= base.ExecKWh {
				t.Errorf("%s/%s: retried cell charged %v kWh, clean run %v — failed attempts must cost energy",
					r.System, r.Dataset, r.ExecKWh, base.ExecKWh)
			}
			if r.ExecTime <= base.ExecTime {
				t.Errorf("%s/%s: retried cell took %v, clean run %v", r.System, r.Dataset, r.ExecTime, base.ExecTime)
			}
			return
		}
	}
	t.Fatal("no cell recovered via retry across 10 fault seeds")
}

func TestOOMInjectionDegradesToFallback(t *testing.T) {
	cfg := faultCfg(0, 0)
	cfg.Faults.MemoryBytes = 1 // every working set exceeds one byte
	records := RunGrid(DefaultSystems(), cfg)
	if want := expectedCells(DefaultSystems(), cfg); len(records) != want {
		t.Fatalf("got %d records, want %d", len(records), want)
	}
	for _, r := range records {
		if r.Failure != faults.OOM {
			t.Fatalf("%s/%s: failure %q, want oom", r.System, r.Dataset, r.Failure)
		}
		if !r.Fallback || !r.Scored() {
			t.Fatalf("%s/%s: OOM cell must degrade to a scored fallback", r.System, r.Dataset)
		}
		if r.TestScore <= 0 {
			t.Errorf("%s/%s: fallback score %v", r.System, r.Dataset, r.TestScore)
		}
	}
}

// TestPredictFaultKeepsExecMeasurements checks the stage separation: an
// inference-stage failure must not discard the execution stage's energy
// and time, and the score degrades to the fallback predictor.
func TestPredictFaultKeepsExecMeasurements(t *testing.T) {
	cfg := faultCfg(1, 0).normalized()
	cfg.Retry.MaxAttempts = 1
	spec, ok := openml.ByName("credit-g")
	if !ok {
		t.Fatal("credit-g spec missing")
	}
	ds := openml.Generate(spec, cfg.Scale, cfg.Seed)
	rng := rand.New(rand.NewPCG(1, 2))
	train, test := ds.All().TrainTestSplit(rng)

	sys := automl.NewTabPFN()
	budget := 10 * time.Second
	for seed := uint64(0); seed < 64; seed++ {
		cfg.Faults.Seed = seed
		inj := faults.New(cfg.Faults)
		if !inj.CellPlan(sys.Name(), train.Name(), budget, 1, 0).PredictError {
			continue
		}
		rec, _ := runCell(sys, train, test, budget, cfg, 1, inj)
		if rec.Failure != faults.PredictError {
			t.Fatalf("failure %q, want predict-error", rec.Failure)
		}
		if !rec.Fallback {
			t.Error("predict fault did not fall back")
		}
		if rec.ExecKWh <= 0 || rec.ExecTime <= 0 {
			t.Errorf("exec measurements lost on inference failure: %v kWh, %v", rec.ExecKWh, rec.ExecTime)
		}
		if rec.TestScore <= 0 {
			t.Errorf("fallback score %v", rec.TestScore)
		}
		return
	}
	t.Fatal("no fault seed in [0,64) plans a predict-error for this cell")
}

// TestDatasetFaultAccountsDependentCells checks that a dataset that never
// materializes yields failure records for every dependent cell instead of
// silently shrinking the grid.
func TestDatasetFaultAccountsDependentCells(t *testing.T) {
	cfg := faultCfg(1, 5)
	cfg.Retry.MaxAttempts = 2
	records := RunGrid(DefaultSystems(), cfg)
	if want := expectedCells(DefaultSystems(), cfg); len(records) != want {
		t.Fatalf("got %d records, want %d", len(records), want)
	}
	// Rate 1 means generation faults on every attempt: all cells carry the
	// dataset-error kind and no score.
	for _, r := range records {
		if r.Failure != faults.DatasetError {
			t.Fatalf("%s/%s: failure %q, want dataset-error", r.System, r.Dataset, r.Failure)
		}
		if r.Scored() {
			t.Errorf("%s/%s: dataset-error record claims a usable score", r.System, r.Dataset)
		}
		if r.Attempts != 2 {
			t.Errorf("%s/%s: attempts %d, want the full retry budget 2", r.System, r.Dataset, r.Attempts)
		}
	}
}

func TestAggregateReportsFailureRates(t *testing.T) {
	records := []Record{
		{System: "S", Budget: time.Second, Dataset: "a", TestScore: 0.8, ExecKWh: 1},
		{System: "S", Budget: time.Second, Dataset: "a", TestScore: 0.5, Failure: faults.FitError, Fallback: true, Attempts: 3, ExecKWh: 3},
		{System: "S", Budget: time.Second, Dataset: "b", Failure: faults.FitPanic, Attempts: 3},
		{System: "S", Budget: time.Second, Dataset: "b", TestScore: 0.7, Failure: faults.MeterDropout, ExecKWh: 0.1},
	}
	stats := Aggregate(records, rand.New(rand.NewPCG(1, 2)))
	if len(stats) != 1 {
		t.Fatalf("got %d cells, want 1", len(stats))
	}
	s := stats[0]
	if s.Total != 4 {
		t.Errorf("total %d, want 4", s.Total)
	}
	if s.Runs != 3 {
		t.Errorf("scored runs %d, want 3 (clean + fallback + dropout)", s.Runs)
	}
	if s.Fallbacks != 1 {
		t.Errorf("fallbacks %d, want 1", s.Fallbacks)
	}
	if got := s.FailureRate(); got != 0.75 {
		t.Errorf("failure rate %v, want 0.75", got)
	}
	if got := s.FallbackRate(); got != 0.25 {
		t.Errorf("fallback rate %v, want 0.25", got)
	}
	if s.Failures[faults.FitPanic] != 1 || s.Failures[faults.FitError] != 1 || s.Failures[faults.MeterDropout] != 1 {
		t.Errorf("failure counts %v", s.Failures)
	}
	// The dropout record's partial 0.1 kWh must stay out of the means:
	// dataset a contributes (1+3)/2 and dataset b contributes nothing.
	if s.ExecKWh != 2 {
		t.Errorf("exec kWh %v, want 2 (dropout energy excluded)", s.ExecKWh)
	}
}

func TestRenderFailureBreakdown(t *testing.T) {
	if out := RenderFailureBreakdown([]Record{{System: "S"}}); out != "" {
		t.Errorf("clean records rendered %q, want empty", out)
	}
	out := RenderFailureBreakdown([]Record{
		{Failure: faults.FitPanic, Attempts: 3, Fallback: true},
		{Failure: faults.OOM, Fallback: true},
		{},
	})
	for _, want := range []string{"fit-panic=1", "oom=1", "fallback-used=2", "retried=1"} {
		if !bytes.Contains([]byte(out), []byte(want)) {
			t.Errorf("breakdown %q missing %q", out, want)
		}
	}
}
