package bench

import (
	"fmt"
	"os"

	"repro/internal/faults"
	"repro/internal/repo"
)

// JournalReport describes one shard journal a merge consumed.
type JournalReport struct {
	// Path is the journal file.
	Path string
	// Shard is the journal's recorded shard assignment ("index/count",
	// empty for a whole-grid journal).
	Shard string
	// Cells counts the intact checkpointed records the journal held.
	Cells int
	// Damaged counts CRC-skipped checkpoint lines — interior damage a
	// v2 reader detects and survives, but which a merge must surface:
	// the damaged cells' records exist only if another journal covers
	// them.
	Damaged int
}

// MergeResult is the outcome of fusing shard journals back into one
// grid's records.
type MergeResult struct {
	// Records holds every grid cell in canonical enumeration order —
	// the exact order an unsharded RunGrid returns, which is what makes
	// every export built from a merge byte-identical to the unsharded
	// artifact. Cells no journal covered carry synthesized
	// faults.ShardFailure records (see Missing).
	Records []Record
	// Missing lists the cells no journal covered, in canonical order.
	// Their Records entries are shard-failure placeholders; callers
	// decide whether that is a degraded-but-reportable sweep (a shard
	// exhausted its restarts) or an error (a journal is simply absent).
	Missing []CellRef
	// Damaged totals the CRC-skipped lines across all journals.
	Damaged int
	// PerJournal reports each input journal in argument order.
	PerJournal []JournalReport
	// RepoHits counts cells no journal covered that the evaluation
	// repository supplied instead (MergeJournalsRepo only).
	RepoHits int
	// RepoDamaged counts repository cells that failed verification
	// while filling journal holes (tolerated under AllowDamage; the
	// cells stay missing).
	RepoDamaged int
}

// loadJournal reads a journal without opening it for appends: header,
// intact records, and damage count. Torn trailing lines are ignored
// exactly as resume would truncate them.
func loadJournal(path string) (*journalState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: reading journal: %w", err)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("bench: journal %s is empty", path)
	}
	st, err := parseJournal(data)
	if err != nil {
		return nil, fmt.Errorf("bench: journal %s: %w", path, err)
	}
	return st, nil
}

// MergeJournals fuses any set of shard journals for the fingerprinted
// grid into the canonical record sequence. The result is independent of
// shard count, journal argument order, completion order, and overlap:
// records are keyed by cell identity and emitted in enumeration order
// (refs), so any combination of journals that together cover the grid
// reproduces the unsharded run's records — and therefore its exports —
// byte for byte.
//
// Every journal must carry the grid's fingerprint; shard assignments
// may differ (journals from 2-shard and 4-shard runs merge fine).
// Overlapping cells must agree exactly — two journals disagreeing about
// the same cell means a determinism bug or a foreign journal, and is an
// error, never a silent pick. Cells no journal covers are reported in
// Missing and filled with shard-failure placeholder records.
func MergeJournals(paths []string, fingerprint string, refs []CellRef) (*MergeResult, error) {
	return MergeJournalsRepo(paths, fingerprint, refs, nil)
}

// MergeJournalsRepo is MergeJournals with an evaluation repository as a
// second record source: cells no journal covers consult the store
// before degrading to shard-failure placeholders. A shard whose journal
// was lost entirely can thus still merge cleanly as long as its cells
// were ever stored — the repository is the durable tier, journals the
// incremental one. Repository records participate in the same
// disagreement check as journal records would (they must match nothing,
// since only journal holes consult the store), and damage follows the
// repository's policy: counted under AllowDamage, an error otherwise.
func MergeJournalsRepo(paths []string, fingerprint string, refs []CellRef, rp *repo.Repository) (*MergeResult, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("bench: merge needs at least one journal")
	}
	res := &MergeResult{}
	byID := make(map[string]Record)
	owner := make(map[string]string) // cellID -> journal path that first supplied it
	for _, path := range paths {
		st, err := loadJournal(path)
		if err != nil {
			return nil, err
		}
		if st.header.Fingerprint != fingerprint {
			return nil, fmt.Errorf("bench: journal %s fingerprint %s does not match grid %s — refusing to merge a different configuration", path, st.header.Fingerprint, fingerprint)
		}
		res.PerJournal = append(res.PerJournal, JournalReport{
			Path:    path,
			Shard:   st.header.Shard,
			Cells:   len(st.records),
			Damaged: st.damaged,
		})
		res.Damaged += st.damaged
		for _, rec := range st.records {
			id := cellID(rec.System, rec.Dataset, rec.Budget, rec.Seed)
			if prev, ok := byID[id]; ok {
				if prev != rec {
					return nil, fmt.Errorf("bench: journals %s and %s disagree about cell %s — determinism violation, refusing to merge", owner[id], path, id)
				}
				continue
			}
			byID[id] = rec
			owner[id] = path
		}
	}

	seen := 0
	for _, ref := range refs {
		if rec, ok := byID[ref.ID()]; ok {
			res.Records = append(res.Records, rec)
			seen++
			continue
		}
		if rp != nil {
			rec, hit, damaged, err := repoLookup(rp, fingerprint, ref.ID())
			if err != nil {
				return nil, err
			}
			if damaged {
				res.RepoDamaged++
			}
			if hit {
				res.RepoHits++
				res.Records = append(res.Records, rec)
				continue
			}
		}
		res.Missing = append(res.Missing, ref)
		res.Records = append(res.Records, ref.failureRecord(faults.ShardFailure))
	}
	if extra := len(byID) - seen; extra > 0 {
		return nil, fmt.Errorf("bench: journals hold %d record(s) for cells outside the grid enumeration — fingerprint collision or enumeration drift", extra)
	}
	return res, nil
}

// VerifyMissingOwnedBy checks that every missing cell belongs to one of
// the given failed shards of an N-shard run. The coordinator uses this
// to distinguish graceful degradation (cells of a shard that exhausted
// its restarts are reported as shard failures) from a hole in the
// merge (a journal that claims completion but lacks cells — a bug
// worth refusing to paper over).
func (m *MergeResult) VerifyMissingOwnedBy(fingerprint string, failed []ShardSpec) error {
	for _, ref := range m.Missing {
		owned := false
		for _, s := range failed {
			if s.Owns(fingerprint, ref.ID()) {
				owned = true
				break
			}
		}
		if !owned {
			return fmt.Errorf("bench: cell %s is missing from the merge but no failed shard owns it — a completed shard journal is incomplete", ref.ID())
		}
	}
	return nil
}
