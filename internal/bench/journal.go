package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/automl"
)

// Journal checkpoints completed grid cells as JSON lines so an
// interrupted run resumes instead of restarting. The first line is a
// header binding the journal to a grid fingerprint and a format
// version; every following line is one Record, flushed and synced as
// soon as its cell completes. Version 2 (the current format) prefixes
// each record line with a CRC32 of its payload, which lets replay tell
// mid-file corruption apart from the torn trailing line of a kill
// mid-write: a torn tail is truncated and its cell rerun, while a
// damaged line with intact checkpoints after it is skipped and counted
// instead of silently costing every later checkpoint. Version 1
// journals (no CRC) are still read and appended to in their own format.
// Appends and lookups are safe for concurrent use: parallel grid
// workers checkpoint cells as they finish, so the on-disk line order may
// differ from grid order — replay keys records by cell identity, not
// position, which keeps resume exact regardless of who finished first.
type Journal struct {
	mu        sync.Mutex
	f         *os.File
	version   int
	done      map[string]Record
	appends   int
	discarded int
	// crash, when set, is consulted at the deterministic crash points of
	// every append; a non-nil return simulates the process dying there
	// (the hook may first tear the write itself). Chaos tests only.
	crash crashFn
}

// crashFn is the chaos-test hook signature: point names the crash
// point, seq is the zero-based append index, and f/line expose the
// journal file and encoded line so a hook can simulate a torn write.
type crashFn func(point string, seq int, f *os.File, line []byte) error

// The deterministic crash points every Append passes through.
const (
	// crashAppendStart fires before any byte of the record is written.
	crashAppendStart = "append-start"
	// crashAppendWritten fires after the line is written but before it
	// is synced — the record may or may not survive a real kill here.
	crashAppendWritten = "append-written"
	// crashAppendSynced fires after the record is durable; a kill here
	// loses nothing but the acknowledgement.
	crashAppendSynced = "append-synced"
)

type journalHeader struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	// Shard is the "index/count" shard assignment the journal's cells
	// belong to; empty for a whole-grid journal. A shard journal can
	// only be resumed with the exact same assignment — the cells a
	// different ShardSpec owns would silently diverge from the file's
	// contents — while merging only requires matching fingerprints.
	Shard string `json:"shard,omitempty"`
}

const (
	journalVersionV1 = 1
	journalVersion   = 2
)

// cellID is the journal key of one grid cell.
func cellID(system, dataset string, budget time.Duration, seed uint64) string {
	return fmt.Sprintf("%s|%s|%d|%d", system, dataset, budget, seed)
}

// Fingerprint digests everything that determines a grid's records —
// system lineup, datasets, budgets, seeds, scale, machine, fault and
// retry configuration — so a journal is only ever resumed against the
// exact grid that produced it. Pure throughput and liveness knobs
// (Workers, Parallelism, Watchdog) are deliberately excluded: the
// kernels are bit-identical at every within-cell parallelism level, so
// none of them can change a record.
func Fingerprint(systems []automl.System, cfg Config) string {
	cfg = cfg.normalized()
	h := fnv.New64a()
	for _, sys := range systems {
		fmt.Fprintf(h, "sys:%s;", sys.Name())
	}
	for _, spec := range cfg.Datasets {
		fmt.Fprintf(h, "ds:%d/%s;", spec.ID, spec.Name)
	}
	for _, b := range cfg.Budgets {
		fmt.Fprintf(h, "b:%d;", b)
	}
	fmt.Fprintf(h, "machine:%s;cores:%d;gpu:%d;", cfg.Machine.Name, cfg.Cores, cfg.GPUMode)
	fmt.Fprintf(h, "scale:%+v;seeds:%d;seed:%d;", cfg.Scale, cfg.Seeds, cfg.Seed)
	fmt.Fprintf(h, "faults:%+v;retry:%+v;", cfg.Faults, cfg.Retry)
	return fmt.Sprintf("%016x", h.Sum64())
}

// OpenJournal opens (or creates) the run journal at path. An existing
// journal must carry the same fingerprint — resuming against a different
// grid configuration is an error, not a silent merge. Damaged
// checkpoint lines are reported to stderr (their cells simply rerun);
// a v1 journal with intact checkpoints after the damage refuses to
// open rather than silently truncating them.
func OpenJournal(path, fingerprint string) (*Journal, error) {
	return openJournal(path, fingerprint, ShardSpec{})
}

// openJournal opens (or creates) a journal bound to a grid fingerprint
// and a shard assignment. Both must match an existing journal exactly:
// the fingerprint guards against resuming a different grid, the shard
// spec against resuming a shard journal under a different assignment
// (whose cell set would silently diverge from the file's contents).
func openJournal(path, fingerprint string, shard ShardSpec) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("bench: opening journal: %w", err)
	}
	j := &Journal{f: f, done: make(map[string]Record)}
	if err := j.replay(fingerprint, shard); err != nil {
		f.Close()
		return nil, err
	}
	if j.discarded > 0 {
		fmt.Fprintf(os.Stderr, "bench: journal %s: skipped %d damaged checkpoint line(s); their cells will rerun\n", path, j.discarded)
	}
	return j, nil
}

// journalState is a parsed journal: the header, every intact record in
// line order, the count of damaged lines, and the append offset at the
// end of the last kept line. parseJournal produces it without touching
// the file, so both resume (replay) and merge (LoadJournal) decode the
// format exactly once.
type journalState struct {
	header  journalHeader
	records []Record
	damaged int
	end     int64
}

// parseJournal decodes a journal image: header line, then record lines,
// with a final segment lacking '\n' treated as the torn tail of an
// interrupted write (not decoded, not counted as damage). Damaged
// complete lines are handled per format version: v2 lines carry a CRC,
// so a damaged line is confidently skipped and counted while every
// intact line before and after it is kept; v1 lines cannot distinguish
// corruption from a format break, so damage followed by intact
// checkpoints is an error — truncating would silently discard completed
// work — and damage at the very end is treated as the historical torn
// tail.
func parseJournal(data []byte) (*journalState, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("bench: corrupt journal header: no complete header line")
	}
	st := &journalState{}
	if err := json.Unmarshal(data[:nl+1], &st.header); err != nil {
		return nil, fmt.Errorf("bench: corrupt journal header: %w", err)
	}
	if st.header.Version != journalVersionV1 && st.header.Version != journalVersion {
		return nil, fmt.Errorf("bench: journal version %d, want %d (or legacy %d)", st.header.Version, journalVersion, journalVersionV1)
	}

	body := data[nl+1:]
	// Split into complete lines; a final segment without '\n' is the
	// torn tail of an interrupted write.
	var lines [][]byte
	for len(body) > 0 {
		i := bytes.IndexByte(body, '\n')
		if i < 0 {
			break // torn tail: dropped by truncating to the last kept line
		}
		lines = append(lines, body[:i])
		body = body[i+1:]
	}

	type parsed struct {
		rec Record
		ok  bool
	}
	recs := make([]parsed, len(lines))
	firstBad := -1
	for i, line := range lines {
		rec, ok := decodeJournalLine(st.header.Version, line)
		recs[i] = parsed{rec: rec, ok: ok}
		if !ok && firstBad < 0 {
			firstBad = i
		}
	}

	st.end = int64(nl + 1) // append offset: end of the last kept line
	switch {
	case st.header.Version >= journalVersion:
		// CRC-checked lines: keep every intact record, count the damage.
		for i, p := range recs {
			if p.ok {
				st.records = append(st.records, p.rec)
			} else {
				st.damaged++
			}
			st.end += int64(len(lines[i]) + 1)
		}
	case firstBad < 0:
		// Clean v1 body.
		for i, p := range recs {
			st.records = append(st.records, p.rec)
			st.end += int64(len(lines[i]) + 1)
		}
	default:
		// Damaged v1 body: refuse to destroy intact checkpoints that
		// follow the damage — without CRCs the safe recoveries are
		// "tail damage, truncate" and nothing else.
		intactAfter := 0
		for _, p := range recs[firstBad+1:] {
			if p.ok {
				intactAfter++
			}
		}
		if intactAfter > 0 {
			return nil, fmt.Errorf("bench: v1 journal damaged at record line %d with %d intact checkpoint(s) after it — refusing to truncate completed work; remove or repair the journal (v2 journals skip damaged lines)", firstBad+1, intactAfter)
		}
		for i, p := range recs[:firstBad] {
			st.records = append(st.records, p.rec)
			st.end += int64(len(lines[i]) + 1)
		}
		st.damaged = len(recs) - firstBad
	}
	return st, nil
}

// replay loads the header and completed records, truncates a torn
// trailing line, and positions the write offset at the end of the last
// complete line.
func (j *Journal) replay(fingerprint string, shard ShardSpec) error {
	data, err := io.ReadAll(j.f)
	if err != nil {
		return fmt.Errorf("bench: reading journal: %w", err)
	}
	if len(data) == 0 {
		// Fresh journal: write the current-version header.
		j.version = journalVersion
		hdr, err := json.Marshal(journalHeader{Version: j.version, Fingerprint: fingerprint, Shard: shard.String()})
		if err != nil {
			return fmt.Errorf("bench: encoding journal header: %w", err)
		}
		if _, err := j.f.Write(append(hdr, '\n')); err != nil {
			return fmt.Errorf("bench: writing journal header: %w", err)
		}
		return j.f.Sync()
	}

	st, err := parseJournal(data)
	if err != nil {
		return err
	}
	if st.header.Fingerprint != fingerprint {
		return fmt.Errorf("bench: journal fingerprint %s does not match grid %s — refusing to resume a different configuration", st.header.Fingerprint, fingerprint)
	}
	if st.header.Shard != shard.String() {
		return fmt.Errorf("bench: journal shard %q does not match requested shard %q — refusing to resume a different shard assignment", st.header.Shard, shard.String())
	}
	j.version = st.header.Version
	j.discarded = st.damaged
	for _, rec := range st.records {
		j.done[cellID(rec.System, rec.Dataset, rec.Budget, rec.Seed)] = rec
	}
	if err := j.f.Truncate(st.end); err != nil {
		return fmt.Errorf("bench: truncating damaged journal tail: %w", err)
	}
	if _, err := j.f.Seek(st.end, io.SeekStart); err != nil {
		return fmt.Errorf("bench: seeking journal: %w", err)
	}
	return nil
}

// decodeJournalLine parses one complete record line in the given format
// version. For v2, the line is "<crc32-hex8> <json>" and both the
// checksum and the JSON must verify.
func decodeJournalLine(version int, line []byte) (Record, bool) {
	var rec Record
	payload := line
	if version >= journalVersion {
		if len(line) < 10 || line[8] != ' ' {
			return Record{}, false
		}
		want, err := strconv.ParseUint(string(line[:8]), 16, 32)
		if err != nil {
			return Record{}, false
		}
		payload = line[9:]
		if crc32.ChecksumIEEE(payload) != uint32(want) {
			return Record{}, false
		}
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, false
	}
	return rec, true
}

// encodeJournalLine renders one record line (trailing newline included)
// in the journal's format version.
func (j *Journal) encodeJournalLine(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("bench: encoding journal record: %w", err)
	}
	if j.version >= journalVersion {
		line := make([]byte, 0, len(payload)+10)
		line = fmt.Appendf(line, "%08x ", crc32.ChecksumIEEE(payload))
		line = append(line, payload...)
		return append(line, '\n'), nil
	}
	return append(payload, '\n'), nil
}

// Lookup returns the checkpointed record for a cell, if present.
func (j *Journal) Lookup(id string) (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.done[id]
	return rec, ok
}

// Len reports the number of checkpointed cells.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Discarded reports how many damaged checkpoint lines replay skipped
// (v2) or dropped as tail damage (v1). The affected cells rerun.
func (j *Journal) Discarded() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.discarded
}

// Append checkpoints one completed cell, synced to disk so a kill at
// any instant loses at most the cells in flight.
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	line, err := j.encodeJournalLine(rec)
	if err != nil {
		return err
	}
	seq := j.appends
	if j.crash != nil {
		if err := j.crash(crashAppendStart, seq, j.f, line); err != nil {
			return fmt.Errorf("bench: appending journal record: %w", err)
		}
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("bench: appending journal record: %w", err)
	}
	if j.crash != nil {
		if err := j.crash(crashAppendWritten, seq, j.f, line); err != nil {
			return fmt.Errorf("bench: appending journal record: %w", err)
		}
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("bench: syncing journal: %w", err)
	}
	j.appends++
	j.done[cellID(rec.System, rec.Dataset, rec.Budget, rec.Seed)] = rec
	if j.crash != nil {
		if err := j.crash(crashAppendSynced, seq, j.f, nil); err != nil {
			return fmt.Errorf("bench: journal checkpoint acknowledgement: %w", err)
		}
	}
	return nil
}

// Close releases the journal file.
func (j *Journal) Close() error { return j.f.Close() }

// RunGridResumable is RunGrid with a JSONL journal at path: completed
// cells are loaded from the journal instead of rerun, and each newly
// completed cell is checkpointed immediately. A killed run resumed with
// the same path and configuration produces the same records as an
// uninterrupted one. An empty path degrades to plain RunGrid.
func RunGridResumable(systems []automl.System, cfg Config, path string) ([]Record, error) {
	if path == "" {
		return RunGrid(systems, cfg), nil
	}
	j, err := OpenJournal(path, Fingerprint(systems, cfg))
	if err != nil {
		return nil, err
	}
	defer j.Close()
	records, _, err := runGrid(systems, cfg, j)
	return records, err
}
