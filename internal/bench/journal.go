package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/automl"
)

// Journal checkpoints completed grid cells as JSON lines so an
// interrupted run resumes instead of restarting. The first line is a
// header binding the journal to a grid fingerprint; every following
// line is one Record, flushed and synced as soon as its cell completes.
// A truncated trailing line (the process died mid-write) is discarded on
// replay. Appends and lookups are safe for concurrent use: parallel grid
// workers checkpoint cells as they finish, so the on-disk line order may
// differ from grid order — replay keys records by cell identity, not
// position, which keeps resume exact regardless of who finished first.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]Record
}

type journalHeader struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
}

const journalVersion = 1

// cellID is the journal key of one grid cell.
func cellID(system, dataset string, budget time.Duration, seed uint64) string {
	return fmt.Sprintf("%s|%s|%d|%d", system, dataset, budget, seed)
}

// Fingerprint digests everything that determines a grid's records —
// system lineup, datasets, budgets, seeds, scale, machine, fault and
// retry configuration — so a journal is only ever resumed against the
// exact grid that produced it.
func Fingerprint(systems []automl.System, cfg Config) string {
	cfg = cfg.normalized()
	h := fnv.New64a()
	for _, sys := range systems {
		fmt.Fprintf(h, "sys:%s;", sys.Name())
	}
	for _, spec := range cfg.Datasets {
		fmt.Fprintf(h, "ds:%d/%s;", spec.ID, spec.Name)
	}
	for _, b := range cfg.Budgets {
		fmt.Fprintf(h, "b:%d;", b)
	}
	fmt.Fprintf(h, "machine:%s;cores:%d;gpu:%d;", cfg.Machine.Name, cfg.Cores, cfg.GPUMode)
	fmt.Fprintf(h, "scale:%+v;seeds:%d;seed:%d;", cfg.Scale, cfg.Seeds, cfg.Seed)
	fmt.Fprintf(h, "faults:%+v;retry:%+v;", cfg.Faults, cfg.Retry)
	return fmt.Sprintf("%016x", h.Sum64())
}

// OpenJournal opens (or creates) the run journal at path. An existing
// journal must carry the same fingerprint — resuming against a different
// grid configuration is an error, not a silent merge.
func OpenJournal(path, fingerprint string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("bench: opening journal: %w", err)
	}
	j := &Journal{f: f, done: make(map[string]Record)}
	if err := j.replay(fingerprint); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// replay loads the header and completed records, then positions the
// write offset after the last intact line.
func (j *Journal) replay(fingerprint string) error {
	r := bufio.NewReader(j.f)
	var offset int64

	headerLine, err := r.ReadBytes('\n')
	switch {
	case err == io.EOF && len(headerLine) == 0:
		// Fresh journal: write the header.
		hdr, err := json.Marshal(journalHeader{Version: journalVersion, Fingerprint: fingerprint})
		if err != nil {
			return fmt.Errorf("bench: encoding journal header: %w", err)
		}
		if _, err := j.f.Write(append(hdr, '\n')); err != nil {
			return fmt.Errorf("bench: writing journal header: %w", err)
		}
		return j.f.Sync()
	case err != nil && err != io.EOF:
		return fmt.Errorf("bench: reading journal header: %w", err)
	}
	var hdr journalHeader
	if err := json.Unmarshal(headerLine, &hdr); err != nil {
		return fmt.Errorf("bench: corrupt journal header: %w", err)
	}
	if hdr.Version != journalVersion {
		return fmt.Errorf("bench: journal version %d, want %d", hdr.Version, journalVersion)
	}
	if hdr.Fingerprint != fingerprint {
		return fmt.Errorf("bench: journal fingerprint %s does not match grid %s — refusing to resume a different configuration", hdr.Fingerprint, fingerprint)
	}
	offset = int64(len(headerLine))

	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// A partial trailing line is an interrupted write; the cell
			// reruns deterministically on resume.
			break
		}
		if err != nil {
			return fmt.Errorf("bench: reading journal: %w", err)
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil {
			break // damaged tail: rerun from here
		}
		j.done[cellID(rec.System, rec.Dataset, rec.Budget, rec.Seed)] = rec
		offset += int64(len(line))
	}
	if err := j.f.Truncate(offset); err != nil {
		return fmt.Errorf("bench: truncating damaged journal tail: %w", err)
	}
	if _, err := j.f.Seek(offset, io.SeekStart); err != nil {
		return fmt.Errorf("bench: seeking journal: %w", err)
	}
	return nil
}

// Lookup returns the checkpointed record for a cell, if present.
func (j *Journal) Lookup(id string) (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.done[id]
	return rec, ok
}

// Len reports the number of checkpointed cells.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Append checkpoints one completed cell, synced to disk so a kill at
// any instant loses at most the cells in flight.
func (j *Journal) Append(rec Record) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("bench: encoding journal record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("bench: appending journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("bench: syncing journal: %w", err)
	}
	j.done[cellID(rec.System, rec.Dataset, rec.Budget, rec.Seed)] = rec
	return nil
}

// Close releases the journal file.
func (j *Journal) Close() error { return j.f.Close() }

// RunGridResumable is RunGrid with a JSONL journal at path: completed
// cells are loaded from the journal instead of rerun, and each newly
// completed cell is checkpointed immediately. A killed run resumed with
// the same path and configuration produces the same records as an
// uninterrupted one. An empty path degrades to plain RunGrid.
func RunGridResumable(systems []automl.System, cfg Config, path string) ([]Record, error) {
	if path == "" {
		return RunGrid(systems, cfg), nil
	}
	j, err := OpenJournal(path, Fingerprint(systems, cfg))
	if err != nil {
		return nil, err
	}
	defer j.Close()
	return runGrid(systems, cfg, j)
}
