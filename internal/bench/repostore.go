package bench

import (
	"encoding/json"
	"fmt"

	"repro/internal/repo"
	"repro/internal/tabular"
)

// Glue between the grid and the evaluation repository: records cross
// the boundary as their canonical journal JSON (so a replayed cell is
// byte-for-byte the record a live run would produce), probabilities as
// contiguous slabs (so a hit is one copy), and the repository itself
// stays bench-agnostic — it never decodes what it stores.

// repoLookup consults the repository for one cell. hit reports a
// verified entry whose record decoded; damaged reports a cell that
// exists but failed verification and was tolerated (AllowDamage). A
// refused damaged cell — or an entry whose record bytes do not decode,
// which is damage the envelope CRC cannot see — returns an error.
func repoLookup(rp *repo.Repository, fingerprint, id string) (rec Record, hit, damaged bool, err error) {
	e, damaged, err := rp.Get(fingerprint, id)
	if err != nil {
		return Record{}, false, damaged, err
	}
	if e == nil {
		return Record{}, false, damaged, nil
	}
	if err := json.Unmarshal(e.Record, &rec); err != nil {
		if rp.AllowsDamage() {
			return Record{}, false, true, nil
		}
		return Record{}, false, true, fmt.Errorf("bench: repository cell %s: %w: undecodable record: %w", id, repo.ErrDamaged, err)
	}
	if got := cellID(rec.System, rec.Dataset, rec.Budget, rec.Seed); got != id {
		if rp.AllowsDamage() {
			return Record{}, false, true, nil
		}
		return Record{}, false, true, fmt.Errorf("bench: repository cell %s: %w: record identifies as %s", id, repo.ErrDamaged, got)
	}
	return rec, true, false, nil
}

// storeCell writes one freshly executed cell back to the repository.
// It reports whether an entry was stored: no-ops (no repository, a
// read-only repository, or a cell that produced no predictions) return
// (false, nil); an actual write failure is an error — a store that
// silently drops cells would poison every later "warm" run's zero-fit
// expectation.
func storeCell(rp *repo.Repository, fingerprint, id string, rec Record, payload *cellPayload) (bool, error) {
	if rp == nil || rp.ReadOnly() || payload == nil {
		return false, nil
	}
	recBytes, err := json.Marshal(rec)
	if err != nil {
		return false, fmt.Errorf("bench: encoding record for repository: %w", err)
	}
	slab, err := tabular.FlattenRows(payload.proba, payload.classes)
	if err != nil {
		return false, fmt.Errorf("bench: flattening cell %s predictions: %w", id, err)
	}
	entry := &repo.Entry{
		Fingerprint: fingerprint,
		Key:         id,
		System:      rec.System,
		Dataset:     rec.Dataset,
		Score:       payload.score,
		Record:      recBytes,
		Config:      payload.config,
		Rows:        len(payload.proba),
		Classes:     payload.classes,
		Proba:       slab,
		InferCost:   payload.inferCost,
	}
	if err := rp.Put(entry); err != nil {
		return false, err
	}
	return true, nil
}

// Summary renders the stats the way run summaries print them.
func (s RepoStats) Summary() string {
	return fmt.Sprintf("repository: %d hit(s), %d miss(es), %d damaged, %d stored",
		s.Hits, s.Misses, s.Damaged, s.Stored)
}
