package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faults"
)

func TestResumableMatchesPlainRun(t *testing.T) {
	cfg := faultCfg(0.3, 4)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	got, err := RunGridResumable(DefaultSystems(), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	want := RunGrid(DefaultSystems(), cfg)
	if !reflect.DeepEqual(got, want) {
		t.Error("journaled run differs from a plain run")
	}
	// A second invocation replays entirely from the journal.
	again, err := RunGridResumable(DefaultSystems(), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Error("fully-journaled rerun differs from the original records")
	}
}

// TestResumeAfterKill simulates a run killed mid-grid: the journal is cut
// down to its header plus a few intact records and a torn partial line.
// Resuming must reproduce the uninterrupted run's records exactly.
func TestResumeAfterKill(t *testing.T) {
	cfg := faultCfg(0.3, 4)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	want, err := RunGridResumable(DefaultSystems(), cfg, path)
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 6 {
		t.Fatalf("journal has only %d lines", len(lines))
	}
	// Keep the header and the first four records, then tear the next line
	// mid-write.
	torn := strings.Join(lines[:5], "") + lines[5][:len(lines[5])/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := RunGridResumable(DefaultSystems(), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("killed-then-resumed run differs from the uninterrupted run")
	}
}

func TestJournalRefusesOtherGrid(t *testing.T) {
	cfg := faultCfg(0.3, 4)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if _, err := RunGridResumable(DefaultSystems(), cfg, path); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seeds = 3
	_, err := RunGridResumable(DefaultSystems(), other, path)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("resuming a different grid returned %v, want fingerprint mismatch", err)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	cfg := faultCfg(0.3, 4)
	base := Fingerprint(DefaultSystems(), cfg)
	if base != Fingerprint(DefaultSystems(), cfg) {
		t.Error("fingerprint is not deterministic")
	}
	altered := cfg
	altered.Faults.Seed++
	if Fingerprint(DefaultSystems(), altered) == base {
		t.Error("fault seed change did not alter the fingerprint")
	}
	altered = cfg
	altered.Retry.MaxAttempts = 7
	if Fingerprint(DefaultSystems(), altered) == base {
		t.Error("retry policy change did not alter the fingerprint")
	}
	if Fingerprint(DefaultSystems()[:3], cfg) == base {
		t.Error("system lineup change did not alter the fingerprint")
	}
}

// tinyCfg is the smallest clean grid the journal format tests rerun:
// two systems, two tiny datasets, one budget, one seed.
func tinyCfg() Config {
	cfg := chaosCfg()
	cfg.Seeds = 1
	cfg.Faults = faults.Config{}
	cfg.Watchdog = WatchdogPolicy{}
	return cfg
}

// writeV1Journal renders a legacy (pre-CRC) journal: a version-1 header
// followed by plain JSON record lines and any extra raw lines.
func writeV1Journal(t *testing.T, path, fingerprint string, recs []Record, extra ...string) {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, `{"version":1,"fingerprint":%q}`+"\n", fingerprint)
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(line)
		sb.WriteByte('\n')
	}
	for _, raw := range extra {
		sb.WriteString(raw)
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestJournalV1StillReadable pins backwards compatibility: a legacy
// journal resumes, and new appends stay in the legacy format — plain
// JSON lines, no CRC prefix — so the file remains self-consistent.
func TestJournalV1StillReadable(t *testing.T) {
	cfg := tinyCfg()
	want := RunGrid(chaosSystems(), cfg)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeV1Journal(t, path, Fingerprint(chaosSystems(), cfg), want[:2])

	got, err := RunGridResumable(chaosSystems(), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("resume from a v1 journal differs from a plain run")
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 1+len(want) {
		t.Fatalf("v1 journal has %d lines, want header + %d records", len(lines), len(want))
	}
	for i, line := range lines[1:] {
		if !strings.HasPrefix(line, "{") {
			t.Fatalf("record line %d of a v1 journal is not plain JSON: %q", i+1, line)
		}
	}
}

// TestJournalV1RefusesMidFileDamage pins the bugfix: without CRCs a
// damaged line cannot be told apart from a format break, so truncating
// at the damage would silently destroy the intact checkpoints after it
// — replay must refuse instead.
func TestJournalV1RefusesMidFileDamage(t *testing.T) {
	cfg := tinyCfg()
	want := RunGrid(chaosSystems(), cfg)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	fingerprint := Fingerprint(chaosSystems(), cfg)
	writeV1Journal(t, path, fingerprint, want[:1], "garbage not json\n")
	rest, err := json.Marshal(want[1])
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(rest, '\n')); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, err = OpenJournal(path, fingerprint)
	if err == nil || !strings.Contains(err.Error(), "refusing to truncate") {
		t.Fatalf("damaged v1 journal with intact checkpoints after it opened with %v, want refusal", err)
	}
}

// TestJournalV1TailDamageTruncates: damage with nothing intact after it
// is the historical torn-tail case — dropped, counted, and the cell
// simply reruns.
func TestJournalV1TailDamageTruncates(t *testing.T) {
	cfg := tinyCfg()
	want := RunGrid(chaosSystems(), cfg)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	fingerprint := Fingerprint(chaosSystems(), cfg)
	writeV1Journal(t, path, fingerprint, want[:2], "garbage not json\n")

	j, err := OpenJournal(path, fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 2 || j.Discarded() != 1 {
		t.Fatalf("kept %d records and discarded %d, want 2 and 1", j.Len(), j.Discarded())
	}
	j.Close()

	got, err := RunGridResumable(chaosSystems(), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("resume after v1 tail damage differs from a plain run")
	}
}

// TestJournalV2SkipsDamagedLine: the CRC tells mid-file corruption from
// a format break, so a damaged checkpoint is skipped and counted while
// every intact line — before and after it — survives, and the resumed
// grid is still byte-identical.
func TestJournalV2SkipsDamagedLine(t *testing.T) {
	cfg := tinyCfg()
	path := filepath.Join(t.TempDir(), "run.jsonl")
	want, err := RunGridResumable(chaosSystems(), cfg, path)
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 4 {
		t.Fatalf("journal has only %d lines", len(lines))
	}
	// Corrupt the payload of the second record; its CRC no longer
	// matches.
	damaged := []byte(lines[2])
	damaged[len(damaged)/2] ^= 0xff
	lines[2] = string(damaged)
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	fingerprint := Fingerprint(chaosSystems(), cfg)
	j, err := OpenJournal(path, fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if j.Discarded() != 1 || j.Len() != len(want)-1 {
		t.Fatalf("kept %d records and discarded %d, want %d and 1 — intact lines after the damage must survive",
			j.Len(), j.Discarded(), len(want)-1)
	}
	j.Close()

	got, err := RunGridResumable(chaosSystems(), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("resume after skipping a damaged v2 line differs from the original run")
	}
}
