package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestResumableMatchesPlainRun(t *testing.T) {
	cfg := faultCfg(0.3, 4)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	got, err := RunGridResumable(DefaultSystems(), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	want := RunGrid(DefaultSystems(), cfg)
	if !reflect.DeepEqual(got, want) {
		t.Error("journaled run differs from a plain run")
	}
	// A second invocation replays entirely from the journal.
	again, err := RunGridResumable(DefaultSystems(), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Error("fully-journaled rerun differs from the original records")
	}
}

// TestResumeAfterKill simulates a run killed mid-grid: the journal is cut
// down to its header plus a few intact records and a torn partial line.
// Resuming must reproduce the uninterrupted run's records exactly.
func TestResumeAfterKill(t *testing.T) {
	cfg := faultCfg(0.3, 4)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	want, err := RunGridResumable(DefaultSystems(), cfg, path)
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 6 {
		t.Fatalf("journal has only %d lines", len(lines))
	}
	// Keep the header and the first four records, then tear the next line
	// mid-write.
	torn := strings.Join(lines[:5], "") + lines[5][:len(lines[5])/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := RunGridResumable(DefaultSystems(), cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("killed-then-resumed run differs from the uninterrupted run")
	}
}

func TestJournalRefusesOtherGrid(t *testing.T) {
	cfg := faultCfg(0.3, 4)
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if _, err := RunGridResumable(DefaultSystems(), cfg, path); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seeds = 3
	_, err := RunGridResumable(DefaultSystems(), other, path)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("resuming a different grid returned %v, want fingerprint mismatch", err)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	cfg := faultCfg(0.3, 4)
	base := Fingerprint(DefaultSystems(), cfg)
	if base != Fingerprint(DefaultSystems(), cfg) {
		t.Error("fingerprint is not deterministic")
	}
	altered := cfg
	altered.Faults.Seed++
	if Fingerprint(DefaultSystems(), altered) == base {
		t.Error("fault seed change did not alter the fingerprint")
	}
	altered = cfg
	altered.Retry.MaxAttempts = 7
	if Fingerprint(DefaultSystems(), altered) == base {
		t.Error("retry policy change did not alter the fingerprint")
	}
	if Fingerprint(DefaultSystems()[:3], cfg) == base {
		t.Error("system lineup change did not alter the fingerprint")
	}
}
