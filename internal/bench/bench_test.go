package bench

import (
	"math/rand/v2"
	"strings"
	"testing"
	"time"

	"repro/internal/automl"
	"repro/internal/metrics"
	"repro/internal/openml"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0xbe)) }

func tinyConfig() Config {
	specs := []openml.Spec{}
	for _, name := range []string{"credit-g", "phoneme"} {
		s, _ := openml.ByName(name)
		specs = append(specs, s)
	}
	return Config{
		Datasets: specs,
		Budgets:  []time.Duration{10 * time.Second},
		Seeds:    1,
		Scale:    openml.SmallScale(),
	}
}

func TestRunGridCoversCells(t *testing.T) {
	cfg := tinyConfig()
	systems := []automl.System{automl.NewCAML(), automl.NewTabPFN()}
	records := RunGrid(systems, cfg)
	if len(records) != 4 { // 2 systems x 2 datasets x 1 budget x 1 seed
		t.Fatalf("%d records, want 4", len(records))
	}
	for _, r := range records {
		if r.Failure != "" || r.Fallback {
			t.Errorf("%s on %s failed: %s", r.System, r.Dataset, r.Failure)
		}
		if r.Attempts != 1 {
			t.Errorf("%s on %s consumed %d attempts without faults", r.System, r.Dataset, r.Attempts)
		}
		if r.TestScore <= 0 || r.ExecKWh <= 0 || r.InferKWhPerInst <= 0 {
			t.Errorf("incomplete record %+v", r)
		}
	}
}

func TestRunGridSkipsBelowMinBudget(t *testing.T) {
	cfg := tinyConfig() // 10s budget only
	records := RunGrid([]automl.System{automl.NewTPOT()}, cfg)
	if len(records) != 0 {
		t.Errorf("TPOT ran below its 1-minute minimum budget: %d records", len(records))
	}
}

func TestAggregate(t *testing.T) {
	records := []Record{
		{System: "A", Dataset: "d1", Budget: time.Second, TestScore: 0.6, ExecKWh: 1, InferKWhPerInst: 0.1, ExecTime: time.Second},
		{System: "A", Dataset: "d1", Budget: time.Second, TestScore: 0.8, ExecKWh: 3, InferKWhPerInst: 0.3, ExecTime: 3 * time.Second},
		{System: "A", Dataset: "d2", Budget: time.Second, TestScore: 1.0, ExecKWh: 2, InferKWhPerInst: 0.2, ExecTime: 2 * time.Second},
		{System: "A", Dataset: "d1", Budget: time.Second, Failure: "fit-panic"}, // not scored
		{System: "B", Dataset: "d1", Budget: time.Second, TestScore: 0.5, ExecKWh: 5, InferKWhPerInst: 0.5, ExecTime: 5 * time.Second},
	}
	stats := Aggregate(records, testRNG(1))
	if len(stats) != 2 {
		t.Fatalf("%d cells, want 2", len(stats))
	}
	var a CellStats
	for _, s := range stats {
		if s.Key.System == "A" {
			a = s
		}
	}
	if a.Runs != 3 {
		t.Errorf("A runs %d, want 3 (failure excluded)", a.Runs)
	}
	// Bootstrap mean: datasets average ((0.6|0.8) + 1.0)/2 -> ~0.85.
	if a.Score.Mean < 0.75 || a.Score.Mean > 0.95 {
		t.Errorf("A score %v, want ~0.85", a.Score.Mean)
	}
	if a.Score.Std <= 0 {
		t.Error("A score std zero despite run variance")
	}
	// Exec energy: mean over dataset means ((1+3)/2 + 2)/2 = 2.
	if a.ExecKWh != 2 {
		t.Errorf("A exec %v kWh, want 2", a.ExecKWh)
	}
}

func TestBestCellAndSystems(t *testing.T) {
	stats := []CellStats{
		{Key: CellKey{System: "A", Budget: time.Second}, Score: summary(0.7)},
		{Key: CellKey{System: "A", Budget: time.Minute}, Score: summary(0.9)},
		{Key: CellKey{System: "B", Budget: time.Minute}, Score: summary(0.8)},
	}
	best, ok := BestCell(stats, "A")
	if !ok || best.Key.Budget != time.Minute {
		t.Errorf("best cell %+v", best)
	}
	if _, ok := BestCell(stats, "missing"); ok {
		t.Error("missing system resolved")
	}
	if got := Systems(stats); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("systems %v", got)
	}
}

func TestFig4CrossoverMath(t *testing.T) {
	stats := []CellStats{
		{Key: CellKey{System: "TabPFN", Budget: time.Second}, Score: summary(0.7), ExecKWh: 0.001, InferKWhPerInst: 1e-4},
		{Key: CellKey{System: "FLAML", Budget: time.Second}, Score: summary(0.7), ExecKWh: 0.101, InferKWhPerInst: 0},
	}
	res := Fig4(stats, []float64{10, 1e6})
	// Crossover: 0.001 + n*1e-4 = 0.101 -> n = 1000.
	if res.TabPFNCrossover != 1000 {
		t.Errorf("crossover %v, want 1000", res.TabPFNCrossover)
	}
	// Series totals.
	for _, s := range res.Series {
		if s.System == "TabPFN" && s.TotalKWh[1] != 0.001+1e6*1e-4 {
			t.Errorf("TabPFN total %v", s.TotalKWh[1])
		}
	}
	// No crossover when TabPFN is cheaper everywhere.
	cheap := []CellStats{
		{Key: CellKey{System: "TabPFN", Budget: time.Second}, ExecKWh: 0.001, InferKWhPerInst: 0},
		{Key: CellKey{System: "FLAML", Budget: time.Second}, ExecKWh: 0.1, InferKWhPerInst: 1},
	}
	if got := Fig4(cheap, nil).TabPFNCrossover; got != 0 {
		t.Errorf("impossible crossover %v", got)
	}
}

func TestTable4Ordering(t *testing.T) {
	stats := []CellStats{
		{Key: CellKey{System: "cheap", Budget: time.Second}, InferKWhPerInst: 1e-9},
		{Key: CellKey{System: "dear", Budget: time.Second}, InferKWhPerInst: 1e-6},
	}
	res := Table4(stats)
	if len(res.Rows) != 2 || res.Rows[0].System != "dear" {
		t.Errorf("rows %v — want most expensive first (paper Table 4)", res.Rows)
	}
	if res.Rows[0].EnergyKWh != 1e6 {
		t.Errorf("trillion-prediction energy %v, want 1e6 kWh", res.Rows[0].EnergyKWh)
	}
	if res.Rows[0].CO2Kg <= 0 || res.Rows[0].CostEUR <= 0 {
		t.Error("conversions missing")
	}
}

func TestTable6Counting(t *testing.T) {
	records := []Record{
		// System A overfits on d1 (5m < 1m) but not on d2.
		{System: "A", Dataset: "d1", Budget: time.Minute, TestScore: 0.9},
		{System: "A", Dataset: "d1", Budget: 5 * time.Minute, TestScore: 0.7},
		{System: "A", Dataset: "d2", Budget: time.Minute, TestScore: 0.6},
		{System: "A", Dataset: "d2", Budget: 5 * time.Minute, TestScore: 0.8},
		// d3 has no 5-minute record: not counted either way.
		{System: "A", Dataset: "d3", Budget: time.Minute, TestScore: 0.5},
	}
	res := Table6(records)
	if len(res.Rows) != 1 {
		t.Fatalf("rows %v", res.Rows)
	}
	if res.Rows[0].Overfits != 1 || res.Rows[0].Datasets != 2 {
		t.Errorf("row %+v, want 1 overfit of 2 datasets", res.Rows[0])
	}
}

func TestTable7SortsByActualTime(t *testing.T) {
	stats := []CellStats{
		{Key: CellKey{System: "slow", Budget: 5 * time.Minute}, ExecTime: 400 * time.Second},
		{Key: CellKey{System: "fast", Budget: 5 * time.Minute}, ExecTime: 300 * time.Second},
	}
	res := Table7(stats, []time.Duration{5 * time.Minute})
	if res.Rows[0].System != "fast" {
		t.Errorf("rows not sorted fastest-first: %v", res.Rows)
	}
	// Missing budgets render as -1.
	res = Table7(stats, []time.Duration{time.Second})
	for _, row := range res.Rows {
		if row.Mean[0] >= 0 {
			t.Errorf("missing budget produced %v", row.Mean[0])
		}
	}
}

func TestRendersNonEmpty(t *testing.T) {
	stats := []CellStats{{Key: CellKey{System: "X", Budget: time.Second}, Score: summary(0.5)}}
	records := []Record{{System: "X", Dataset: "d", Budget: time.Minute, TestScore: 0.5}}
	outputs := []string{
		Fig3Result{Stats: stats, Records: records}.Render(),
		Fig4(stats, nil).Render(),
		Fig5Result{Cells: []Fig5Cell{{System: "X", Cores: 1, Budget: time.Second}}}.Render(),
		Fig6Result{Cells: []Fig6Cell{{Variant: "X", Budget: time.Second}}}.Render(),
		Table3Result{Rows: []Table3Row{{System: "X"}}}.Render(),
		Table4(stats).Render(),
		Table6(records).Render(),
		Table7(stats, nil).Render(),
		SweepResult{Label: "k", Rows: []SweepRow{{Value: 10}}}.Render(),
	}
	for i, out := range outputs {
		if len(strings.TrimSpace(out)) == 0 {
			t.Errorf("render %d empty", i)
		}
	}
	if got := RenderCAMLParams(automl.DefaultCAMLParams()); !strings.Contains(got, "holdout=0.33") {
		t.Errorf("params render %q", got)
	}
}

func TestFormatBudget(t *testing.T) {
	if FormatBudget(10*time.Second) != "10s" {
		t.Error("seconds format")
	}
	if FormatBudget(5*time.Minute) != "5min" {
		t.Error("minutes format")
	}
}

func summary(mean float64) metrics.Summary {
	return metrics.Summary{Mean: mean}
}

func TestWinners(t *testing.T) {
	records := []Record{
		{System: "A", Dataset: "adult", Budget: time.Second, TestScore: 0.9},
		{System: "B", Dataset: "adult", Budget: time.Second, TestScore: 0.8},
		{System: "A", Dataset: "credit-g", Budget: time.Second, TestScore: 0.5},
		{System: "B", Dataset: "credit-g", Budget: time.Second, TestScore: 0.7},
		{System: "B", Dataset: "robert", Budget: time.Second, TestScore: 0.7},
		{System: "A", Dataset: "adult", Budget: time.Minute, TestScore: 0.9},
	}
	res := Winners(records)
	if len(res.Budgets) != 2 {
		t.Fatalf("budgets %v", res.Budgets)
	}
	wins := res.Wins[time.Second]
	if wins["A"] != 1 || wins["B"] != 2 {
		t.Errorf("wins %v, want A:1 B:2", wins)
	}
	if res.Datasets[time.Second] != 3 {
		t.Errorf("datasets %d, want 3", res.Datasets[time.Second])
	}
	// Characteristic breakdown: credit-g is small (1000 rows, 20
	// features), robert is wide (7200 features).
	ch := res.Characteristics(time.Second)
	if ch.SmallWins["B"] != 1 {
		t.Errorf("small wins %v", ch.SmallWins)
	}
	if ch.WideWins["B"] != 1 {
		t.Errorf("wide wins %v", ch.WideWins)
	}
	if out := res.Render(); !strings.Contains(out, "1s") {
		t.Errorf("render %q", out)
	}
}

func TestExportRoundTrip(t *testing.T) {
	records := []Record{
		{System: "A", Dataset: "d1", Budget: time.Second, Seed: 3, TestScore: 0.5, ExecKWh: 0.01, ExecTime: 2 * time.Second, InferKWhPerInst: 1e-8, Evaluated: 7},
		{System: "B", Dataset: "d2", Budget: time.Minute, Failure: "fit-error", Attempts: 2},
	}
	var jsonBuf, csvBuf strings.Builder
	if err := WriteJSON(&jsonBuf, records); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(jsonBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != records[0] || back[1] != records[1] {
		t.Errorf("json round trip lost data: %+v", back)
	}
	if err := WriteCSV(&csvBuf, records); err != nil {
		t.Fatal(err)
	}
	out := csvBuf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want header + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "system,dataset,budget_s") {
		t.Errorf("csv header %q", lines[0])
	}
	if !strings.Contains(lines[1], "A,d1,1,3,0.5") {
		t.Errorf("csv row %q", lines[1])
	}
	if !strings.Contains(lines[2], "fit-error") {
		t.Errorf("failure kind missing: %q", lines[2])
	}
}

func TestSignificance(t *testing.T) {
	var records []Record
	datasets := []string{"d1", "d2", "d3", "d4", "d5", "d6", "d7", "d8", "d9", "d10", "d11", "d12"}
	for i, d := range datasets {
		// A consistently beats B by a margin that varies per dataset.
		records = append(records,
			Record{System: "A", Dataset: d, Budget: time.Minute, TestScore: 0.8 + float64(i)*0.001},
			Record{System: "B", Dataset: d, Budget: time.Minute, TestScore: 0.7 + float64(i)*0.002},
		)
	}
	res := Significance(records)
	if res.Top[time.Minute] != "A" {
		t.Errorf("top system %q, want A", res.Top[time.Minute])
	}
	if res.Ranks[time.Minute]["A"] != 1 || res.Ranks[time.Minute]["B"] != 2 {
		t.Errorf("ranks %v", res.Ranks[time.Minute])
	}
	if p := res.PValues[time.Minute]["B"]; p > 0.01 {
		t.Errorf("p-value %v for a 12-dataset sweep, want significant", p)
	}
	if out := res.Render(); !strings.Contains(out, "top: A") {
		t.Errorf("render %q", out)
	}
}

func TestSVGRenderers(t *testing.T) {
	stats := []CellStats{
		{Key: CellKey{System: "A", Budget: 10 * time.Second}, Score: summary(0.6), ExecKWh: 1e-4, InferKWhPerInst: 1e-8},
		{Key: CellKey{System: "A", Budget: time.Minute}, Score: summary(0.7), ExecKWh: 1e-3, InferKWhPerInst: 2e-8},
		{Key: CellKey{System: "B", Budget: time.Minute}, Score: summary(0.65), ExecKWh: 5e-4, InferKWhPerInst: 1e-6},
	}
	var execSVG, inferSVG strings.Builder
	if err := WriteFig3SVG(&execSVG, stats, false); err != nil {
		t.Fatal(err)
	}
	if err := WriteFig3SVG(&inferSVG, stats, true); err != nil {
		t.Fatal(err)
	}
	for _, out := range []string{execSVG.String(), inferSVG.String()} {
		if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
			t.Fatal("not a complete SVG document")
		}
		if !strings.Contains(out, "polyline") || !strings.Contains(out, "circle") {
			t.Error("missing marks")
		}
		for _, sys := range []string{"A", "B"} {
			if !strings.Contains(out, ">"+sys+"<") {
				t.Errorf("legend misses %s", sys)
			}
		}
	}

	fig4 := Fig4(stats, []float64{1e2, 1e4, 1e6})
	var f4 strings.Builder
	if err := WriteFig4SVG(&f4, fig4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f4.String(), "polyline") {
		t.Error("fig4 svg missing lines")
	}
	if err := WriteFig4SVG(&f4, Fig4Result{}); err == nil {
		t.Error("empty fig4 accepted")
	}

	fig5 := Fig5Result{Cells: []Fig5Cell{
		{System: "CAML", Cores: 1, Budget: time.Minute, Score: 0.6, ExecKWh: 1e-3},
		{System: "CAML", Cores: 8, Budget: time.Minute, Score: 0.61, ExecKWh: 2.7e-3},
	}}
	var f5 strings.Builder
	if err := WriteFig5SVG(&f5, fig5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f5.String(), "CAML/8 cores") {
		t.Error("fig5 legend missing core counts")
	}
	if err := WriteFig5SVG(&f5, Fig5Result{}); err == nil {
		t.Error("empty fig5 accepted")
	}
}
