package bench

import (
	"testing"
	"time"

	"repro/internal/openml"
)

// TestFig3Probe is a development aid: a small fig3 slice with verbose
// rendering. Run with -v to inspect shapes.
func TestFig3Probe(t *testing.T) {
	if testing.Short() {
		t.Skip("probe is slow")
	}
	specs := []openml.Spec{}
	for _, name := range []string{"credit-g", "adult", "segment"} {
		s, ok := openml.ByName(name)
		if !ok {
			t.Fatalf("spec %s missing", name)
		}
		specs = append(specs, s)
	}
	cfg := Config{
		Datasets: specs,
		Budgets:  []time.Duration{10 * time.Second, time.Minute},
		Seeds:    1,
	}
	//greenlint:allow wallclock development probe logging real elapsed time, not a measured quantity
	start := time.Now()
	res := Fig3(cfg)
	//greenlint:allow wallclock development probe logging real elapsed time, not a measured quantity
	t.Logf("wall time: %s for %d records", time.Since(start), len(res.Records))
	t.Log("\n" + res.Render())
	t.Log("\n" + Fig4(res.Stats, nil).Render())
	t.Log("\n" + Table4(res.Stats).Render())
	t.Log("\n" + Table7(res.Stats, cfg.Budgets).Render())
}
