package bench

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/automl"
	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/metaopt"
	"repro/internal/metrics"
	"repro/internal/openml"
)

// ---------------------------------------------------------------------------
// Figure 3: execution & inference energy vs balanced accuracy
// ---------------------------------------------------------------------------

// Fig3Result carries the full grid records and their aggregation.
type Fig3Result struct {
	Records []Record
	Stats   []CellStats
	// JournalDamaged counts CRC-skipped checkpoint lines encountered
	// while resuming from a journal (the affected cells were rerun).
	// Zero for journal-less runs. It is surfaced in the run summary,
	// never silently swallowed.
	JournalDamaged int
	// Repo reports the evaluation-repository traffic of the run; the
	// zero value means no repository was configured.
	Repo RepoStats
}

// Fig3 runs the paper's main grid: every system × budget × dataset × seed
// on the CPU testbed with one core.
func Fig3(cfg Config) Fig3Result {
	res, _ := Fig3Resumable(cfg, "")
	return res
}

// Fig3Resumable is Fig3 with an optional JSONL run journal: with a
// non-empty path, completed cells checkpoint as they finish and an
// interrupted run picks up where it was killed.
func Fig3Resumable(cfg Config, journalPath string) (Fig3Result, error) {
	cfg = cfg.normalized()
	run, err := RunShard(DefaultSystems(), cfg, journalPath)
	if err != nil {
		return Fig3Result{}, err
	}
	res := Fig3FromRecords(cfg, run.Records)
	res.JournalDamaged = run.Damaged
	res.Repo = run.Repo
	return res, nil
}

// Fig3FromRecords aggregates already-obtained grid records — merged
// shard journals, a replayed export — exactly as Fig3Resumable would
// aggregate a live run: same bootstrap RNG stream, same stats, and
// therefore byte-identical rendered reports and SVG exports.
func Fig3FromRecords(cfg Config, records []Record) Fig3Result {
	cfg = cfg.normalized()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xf163))
	return Fig3Result{Records: records, Stats: Aggregate(records, rng)}
}

// ---------------------------------------------------------------------------
// Figure 4: total energy against number of predictions
// ---------------------------------------------------------------------------

// Fig4Series is one system's energy-vs-predictions curve.
type Fig4Series struct {
	System          string
	ExecKWh         float64
	InferKWhPerInst float64
	// TotalKWh[i] corresponds to Fig4Result.Points[i].
	TotalKWh []float64
}

// Fig4Result compares cumulative energy across prediction volumes.
type Fig4Result struct {
	Points []float64
	Series []Fig4Series
	// TabPFNCrossover is the prediction count beyond which the cheapest
	// search-based system beats TabPFN (paper: ≈26k predictions).
	TabPFNCrossover float64
}

// Fig4 derives the energy-vs-predictions comparison from fig3 statistics,
// using each system's best-accuracy configuration (as the paper does).
func Fig4(stats []CellStats, points []float64) Fig4Result {
	if len(points) == 0 {
		points = []float64{1e2, 1e3, 1e4, 1e5, 1e6, 1e7}
	}
	res := Fig4Result{Points: points}
	for _, system := range Systems(stats) {
		cell, ok := BestCell(stats, system)
		if !ok {
			continue
		}
		series := Fig4Series{
			System:          system,
			ExecKWh:         cell.ExecKWh,
			InferKWhPerInst: cell.InferKWhPerInst,
		}
		for _, n := range points {
			series.TotalKWh = append(series.TotalKWh, cell.ExecKWh+n*cell.InferKWhPerInst)
		}
		res.Series = append(res.Series, series)
	}

	// Crossover: the smallest n where some other system's total drops
	// below TabPFN's.
	var tabpfn *Fig4Series
	for i := range res.Series {
		if res.Series[i].System == "TabPFN" {
			tabpfn = &res.Series[i]
		}
	}
	if tabpfn != nil {
		best := math.Inf(1)
		for _, s := range res.Series {
			if s.System == "TabPFN" {
				continue
			}
			// exec_s + n*infer_s = exec_t + n*infer_t
			if tabpfn.InferKWhPerInst <= s.InferKWhPerInst {
				continue // never crosses
			}
			n := (s.ExecKWh - tabpfn.ExecKWh) / (tabpfn.InferKWhPerInst - s.InferKWhPerInst)
			if n > 0 && n < best {
				best = n
			}
		}
		if !math.IsInf(best, 1) {
			res.TabPFNCrossover = best
		}
	}
	return res
}

// ---------------------------------------------------------------------------
// Figure 5: parallelism
// ---------------------------------------------------------------------------

// Fig5Cell is one (system, cores, budget) aggregate.
type Fig5Cell struct {
	System  string
	Cores   int
	Budget  time.Duration
	Score   float64
	ExecKWh float64
}

// Fig5Result holds the parallelism sweep.
type Fig5Result struct {
	Cells []Fig5Cell
}

// Fig5 runs CAML and AutoGluon across core counts (paper: 1, 2, 4, 8) and
// budgets.
func Fig5(cfg Config, coreCounts []int) Fig5Result {
	cfg = cfg.normalized()
	if len(coreCounts) == 0 {
		coreCounts = []int{1, 2, 4, 8}
	}
	systems := []automl.System{automl.NewCAML(), automl.NewAutoGluon()}
	var res Fig5Result
	for _, cores := range coreCounts {
		c := cfg
		c.Cores = cores
		records := RunGrid(systems, c)
		rng := rand.New(rand.NewPCG(cfg.Seed, uint64(cores)))
		for _, s := range Aggregate(records, rng) {
			res.Cells = append(res.Cells, Fig5Cell{
				System:  s.Key.System,
				Cores:   cores,
				Budget:  s.Key.Budget,
				Score:   s.Score.Mean,
				ExecKWh: s.ExecKWh,
			})
		}
	}
	sort.Slice(res.Cells, func(i, j int) bool {
		a, b := res.Cells[i], res.Cells[j]
		if a.System != b.System {
			return a.System < b.System
		}
		if a.Cores != b.Cores {
			return a.Cores < b.Cores
		}
		return a.Budget < b.Budget
	})
	return res
}

// ---------------------------------------------------------------------------
// Figure 6: configuring systems for inference
// ---------------------------------------------------------------------------

// Fig6Cell is one inference-configured variant's aggregate.
type Fig6Cell struct {
	Variant         string
	Budget          time.Duration
	Score           float64
	InferKWhPerInst float64
}

// Fig6Result holds the inference-configuration sweep.
type Fig6Result struct {
	Cells []Fig6Cell
}

// Fig6 sweeps CAML's inference-time constraints (paper: 1–3 ms/instance)
// and AutoGluon's inference-optimized preset against the unconstrained
// defaults.
func Fig6(cfg Config, constraints []time.Duration) Fig6Result {
	cfg = cfg.normalized()
	if len(constraints) == 0 {
		// The paper sweeps 1-3 ms/instance on full-size datasets; the
		// scaled virtual testbed shifts per-instance times down, so the
		// default sweep covers the range where the constraint actually
		// separates tree ensembles from single trees here.
		constraints = []time.Duration{time.Millisecond, 500 * time.Microsecond, 250 * time.Microsecond}
	}
	systems := []automl.System{
		automl.NewCAML(),
		automl.NewAutoGluon(),
		automl.NewAutoGluonFastInference(),
	}
	for _, limit := range constraints {
		params := automl.DefaultCAMLParams()
		params.InferenceLimit = limit
		systems = append(systems, &automl.CAML{
			Params: params,
			Label:  fmt.Sprintf("CAML(c=%s)", limit),
		})
	}
	records := RunGrid(systems, cfg)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xf166))
	var res Fig6Result
	for _, s := range Aggregate(records, rng) {
		res.Cells = append(res.Cells, Fig6Cell{
			Variant:         s.Key.System,
			Budget:          s.Key.Budget,
			Score:           s.Score.Mean,
			InferKWhPerInst: s.InferKWhPerInst,
		})
	}
	return res
}

// ---------------------------------------------------------------------------
// Figure 7: the development stage
// ---------------------------------------------------------------------------

// Fig7Result compares CAML(tuned) against the untuned systems and reports
// the development cost and its amortization point.
type Fig7Result struct {
	// Budget is the search time the tuning targeted.
	Budget time.Duration
	// Dev is the development-stage optimization outcome.
	Dev *metaopt.Result
	// TunedStats aggregates CAML(tuned) on the test suite.
	TunedStats []CellStats
	// BaselineStats aggregates the untuned lineup (from fig3).
	BaselineStats []CellStats
	// AmortizationRuns is the number of tuned executions after which
	// the development energy amortizes against the energy the tuned
	// system saves per run versus the cheapest competitor at equal or
	// better accuracy.
	AmortizationRuns int
}

// Fig7 runs the development-stage optimizer for one budget and evaluates
// the tuned CAML on the test suite.
func Fig7(cfg Config, metaOpts metaopt.Options, baseline []CellStats) Fig7Result {
	cfg = cfg.normalized()
	metaOpts.Budget = nonzeroBudget(metaOpts.Budget, cfg.Budgets)
	dev, err := metaopt.Optimize(openml.MetaTrainSuite(), metaOpts)
	if err != nil {
		// Fall back to factory presets so the comparison still runs.
		dev = &metaopt.Result{Params: automl.DefaultTunedParams(metaOpts.Budget)}
	}

	tuned := automl.NewTunedCAML(dev.Params)
	c := cfg
	c.Budgets = []time.Duration{metaOpts.Budget}
	records := RunGrid([]automl.System{tuned}, c)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xf167))
	res := Fig7Result{
		Budget:        metaOpts.Budget,
		Dev:           dev,
		TunedStats:    Aggregate(records, rng),
		BaselineStats: baseline,
	}

	// Amortization: the paper reports the point where development energy
	// divided by the per-run execution saving versus the default CAML
	// (same budget) pays off.
	if len(res.TunedStats) > 0 {
		tunedCell := res.TunedStats[0]
		for _, s := range baseline {
			if s.Key.System == "CAML" && s.Key.Budget == metaOpts.Budget {
				saving := s.ExecKWh - tunedCell.ExecKWh
				if saving <= 0 {
					// The tuned system may cost the same to execute;
					// amortize against the most accurate competitor
					// (AutoGluon) instead.
					for _, s2 := range baseline {
						if s2.Key.System == "AutoGluon" && s2.Key.Budget == metaOpts.Budget {
							saving = s2.ExecKWh - tunedCell.ExecKWh
						}
					}
				}
				res.AmortizationRuns = dev.AmortizationRuns(saving)
			}
		}
	}
	return res
}

func nonzeroBudget(b time.Duration, budgets []time.Duration) time.Duration {
	if b > 0 {
		return b
	}
	if len(budgets) > 0 {
		return budgets[0]
	}
	return 10 * time.Second
}

// ---------------------------------------------------------------------------
// Table 3: GPU acceleration ratios
// ---------------------------------------------------------------------------

// Table3Row is one system's GPU/CPU-only quotients (values < 1 favour the
// GPU setup).
type Table3Row struct {
	System      string
	ExecEnergy  float64
	ExecTime    float64
	InferEnergy float64
	InferTime   float64
}

// Table3Result holds the GPU experiment.
type Table3Result struct {
	Rows []Table3Row
}

// Table3 runs AutoGluon and TabPFN on the T4 testbed with GPU support
// enabled and disabled (budget 5 min for AutoGluon, as in the paper) and
// reports the quotients GPU/CPU-only.
func Table3(cfg Config) Table3Result {
	cfg = cfg.normalized()
	cfg.Machine = hw.T4Machine()
	cfg.Budgets = []time.Duration{5 * time.Minute}
	systems := []automl.System{automl.NewAutoGluon(), automl.NewTabPFN()}

	ratio := func(gpu, cpu float64) float64 {
		if cpu <= 0 {
			return 0
		}
		return gpu / cpu
	}

	cpuCfg := cfg
	cpuCfg.GPUMode = energy.GPUOff
	gpuCfg := cfg
	gpuCfg.GPUMode = energy.GPUActive

	rng := rand.New(rand.NewPCG(cfg.Seed, 0x7ab3))
	cpuStats := Aggregate(RunGrid(systems, cpuCfg), rng)
	gpuStats := Aggregate(RunGrid(systems, gpuCfg), rng)

	var res Table3Result
	for _, sys := range systems {
		var cpu, gpu *CellStats
		for i := range cpuStats {
			if cpuStats[i].Key.System == sys.Name() {
				cpu = &cpuStats[i]
			}
		}
		for i := range gpuStats {
			if gpuStats[i].Key.System == sys.Name() {
				gpu = &gpuStats[i]
			}
		}
		if cpu == nil || gpu == nil {
			continue
		}
		// Recover per-instance inference time from the records through
		// stats: use energy and busy-time aggregates.
		res.Rows = append(res.Rows, Table3Row{
			System:      sys.Name(),
			ExecEnergy:  ratio(gpu.ExecKWh, cpu.ExecKWh),
			ExecTime:    ratio(gpu.ExecTime.Seconds(), cpu.ExecTime.Seconds()),
			InferEnergy: ratio(gpu.InferKWhPerInst, cpu.InferKWhPerInst),
			InferTime:   ratio(inferTimeOf(gpu), inferTimeOf(cpu)),
		})
	}
	return res
}

func inferTimeOf(s *CellStats) float64 { return s.InferTimePerInst.Seconds() }

// ---------------------------------------------------------------------------
// Table 4: one trillion predictions
// ---------------------------------------------------------------------------

// Table4Row is one system's projected cost of a trillion predictions.
type Table4Row struct {
	System    string
	EnergyKWh float64
	CO2Kg     float64
	CostEUR   float64
}

// Table4Result holds the projection.
type Table4Result struct {
	Rows []Table4Row
}

// Table4 projects one trillion predictions with each system's
// best-accuracy model (paper §3.6: Meta-scale workloads).
func Table4(stats []CellStats) Table4Result {
	const predictions = 1e12
	var res Table4Result
	for _, system := range Systems(stats) {
		cell, ok := BestCell(stats, system)
		if !ok {
			continue
		}
		kwh := cell.InferKWhPerInst * predictions
		res.Rows = append(res.Rows, Table4Row{
			System:    system,
			EnergyKWh: kwh,
			CO2Kg:     energy.CO2Kg(kwh),
			CostEUR:   energy.CostEUR(kwh),
		})
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].EnergyKWh > res.Rows[j].EnergyKWh })
	return res
}

// ---------------------------------------------------------------------------
// Table 6: overfitting counts (5 min worse than 1 min)
// ---------------------------------------------------------------------------

// Table6Row counts, for one system, the datasets where the 5-minute run
// scored worse than the 1-minute run.
type Table6Row struct {
	System   string
	Overfits int
	Datasets int
}

// Table6Result holds the overfitting analysis.
type Table6Result struct {
	Rows []Table6Row
}

// Table6 analyzes fig3 records for accuracy regressions from 1 min to
// 5 min of search (paper §3.8).
func Table6(records []Record) Table6Result {
	type key struct{ system, dataset string }
	oneMin := make(map[key][]float64)
	fiveMin := make(map[key][]float64)
	for _, r := range records {
		if !r.Scored() {
			continue
		}
		k := key{r.System, r.Dataset}
		switch r.Budget {
		case time.Minute:
			oneMin[k] = append(oneMin[k], r.TestScore)
		case 5 * time.Minute:
			fiveMin[k] = append(fiveMin[k], r.TestScore)
		}
	}
	counts := make(map[string]*Table6Row)
	for k, one := range oneMin {
		five, ok := fiveMin[k]
		if !ok {
			continue
		}
		row := counts[k.system]
		if row == nil {
			row = &Table6Row{System: k.system}
			counts[k.system] = row
		}
		row.Datasets++
		if metrics.MeanStd(five).Mean < metrics.MeanStd(one).Mean {
			row.Overfits++
		}
	}
	var res Table6Result
	for _, row := range counts {
		res.Rows = append(res.Rows, *row)
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].System < res.Rows[j].System })
	return res
}

// ---------------------------------------------------------------------------
// Table 7: actual execution time for specified search times
// ---------------------------------------------------------------------------

// Table7Row is one system's actual execution times per budget.
type Table7Row struct {
	System string
	// Mean and Std hold seconds per budget, aligned with
	// Table7Result.Budgets; missing budgets are negative.
	Mean []float64
	Std  []float64
}

// Table7Result holds the budget-fidelity table.
type Table7Result struct {
	Budgets []time.Duration
	Rows    []Table7Row
}

// Table7 derives the budget-fidelity table from fig3 statistics.
func Table7(stats []CellStats, budgets []time.Duration) Table7Result {
	if len(budgets) == 0 {
		budgets = PaperBudgets()
	}
	res := Table7Result{Budgets: budgets}
	for _, system := range Systems(stats) {
		row := Table7Row{System: system}
		for _, b := range budgets {
			mean, std := -1.0, -1.0
			for _, s := range stats {
				if s.Key.System == system && s.Key.Budget == b {
					mean = s.ExecTime.Seconds()
					std = s.ExecTimeStd.Seconds()
				}
			}
			row.Mean = append(row.Mean, mean)
			row.Std = append(row.Std, std)
		}
		res.Rows = append(res.Rows, row)
	}
	// Sort rows by mean time at the largest budget, fastest first — the
	// paper's presentation order.
	last := len(budgets) - 1
	sort.SliceStable(res.Rows, func(i, j int) bool {
		a, b := res.Rows[i].Mean[last], res.Rows[j].Mean[last]
		if a < 0 {
			return false
		}
		if b < 0 {
			return true
		}
		return a < b
	})
	return res
}

// ---------------------------------------------------------------------------
// Tables 8 & 9: development-stage sweeps
// ---------------------------------------------------------------------------

// SweepRow is one configuration of a development-stage sweep.
type SweepRow struct {
	Value    int // top-k or BO iterations
	Score    metrics.Summary
	DevKWh   float64
	DevTimeH float64
}

// SweepResult holds a development-stage sweep (paper Tables 8 and 9).
type SweepResult struct {
	Label string
	Rows  []SweepRow
}

// Table8 sweeps the number of representative datasets (paper: 10/20/40)
// at fixed BO iterations.
func Table8(cfg Config, metaOpts metaopt.Options, topKs []int) SweepResult {
	if len(topKs) == 0 {
		topKs = []int{10, 20, 40}
	}
	return devSweep(cfg, "top-k datasets", topKs, func(v int, o metaopt.Options) metaopt.Options {
		o.TopK = v
		return o
	}, metaOpts)
}

// Table9 sweeps the BO iteration count (paper: 75/150/300/600) at fixed
// top-k.
func Table9(cfg Config, metaOpts metaopt.Options, iterations []int) SweepResult {
	if len(iterations) == 0 {
		iterations = []int{75, 150, 300, 600}
	}
	return devSweep(cfg, "BO iterations", iterations, func(v int, o metaopt.Options) metaopt.Options {
		o.Iterations = v
		return o
	}, metaOpts)
}

func devSweep(cfg Config, label string, values []int, apply func(int, metaopt.Options) metaopt.Options, base metaopt.Options) SweepResult {
	cfg = cfg.normalized()
	res := SweepResult{Label: label}
	for _, v := range values {
		opts := apply(v, base)
		opts.Budget = nonzeroBudget(opts.Budget, cfg.Budgets)
		dev, err := metaopt.Optimize(openml.MetaTrainSuite(), opts)
		if err != nil {
			continue
		}
		tuned := automl.NewTunedCAML(dev.Params)
		c := cfg
		c.Budgets = []time.Duration{opts.Budget}
		records := RunGrid([]automl.System{tuned}, c)
		rng := rand.New(rand.NewPCG(cfg.Seed, uint64(v)))
		stats := Aggregate(records, rng)
		row := SweepRow{Value: v, DevKWh: dev.DevKWh, DevTimeH: dev.DevTime.Hours()}
		if len(stats) > 0 {
			row.Score = stats[0].Score
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}
