package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/atomicio"
)

// WriteCSV exports grid records as CSV — the equivalent of the paper's
// published raw-results files ("we provide both the raw results of all 10
// runs for all search times, datasets, and systems ... in our
// repository").
func WriteCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	header := []string{
		"system", "dataset", "budget_s", "seed",
		"test_balanced_accuracy", "exec_kwh", "exec_time_s",
		"infer_kwh_per_instance", "infer_time_s_per_instance",
		"pipelines_evaluated", "attempts", "failure", "fallback",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("bench: writing csv header: %w", err)
	}
	for _, r := range records {
		row := []string{
			r.System,
			r.Dataset,
			strconv.FormatFloat(r.Budget.Seconds(), 'f', -1, 64),
			strconv.FormatUint(r.Seed, 10),
			strconv.FormatFloat(r.TestScore, 'g', -1, 64),
			strconv.FormatFloat(r.ExecKWh, 'g', -1, 64),
			strconv.FormatFloat(r.ExecTime.Seconds(), 'g', -1, 64),
			strconv.FormatFloat(r.InferKWhPerInst, 'g', -1, 64),
			strconv.FormatFloat(r.InferTimePerInst.Seconds(), 'g', -1, 64),
			strconv.Itoa(r.Evaluated),
			strconv.Itoa(r.Attempts),
			string(r.Failure),
			strconv.FormatBool(r.Fallback),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("bench: writing csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON exports grid records as a JSON array.
func WriteJSON(w io.Writer, records []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		return fmt.Errorf("bench: writing json: %w", err)
	}
	return nil
}

// WriteCSVFile atomically exports records as CSV to path: a kill or
// write failure mid-export leaves any previous artifact intact instead
// of a torn file under the final name.
func WriteCSVFile(path string, records []Record) error {
	return atomicio.WriteFile(path, func(w io.Writer) error { return WriteCSV(w, records) })
}

// WriteJSONFile atomically exports records as JSON to path.
func WriteJSONFile(path string, records []Record) error {
	return atomicio.WriteFile(path, func(w io.Writer) error { return WriteJSON(w, records) })
}

// ReadJSON loads previously exported records, enabling offline
// re-aggregation and re-rendering without re-running the grid.
func ReadJSON(r io.Reader) ([]Record, error) {
	var records []Record
	if err := json.NewDecoder(r).Decode(&records); err != nil {
		return nil, fmt.Errorf("bench: reading json: %w", err)
	}
	return records, nil
}
