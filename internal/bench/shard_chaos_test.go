package bench

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/faults"
)

// The shard chaos tests exercise real process death: shard subprocesses
// are SIGKILLed — by themselves at deterministic journal crash points,
// or by the coordinator's straggler deadline — and the merge of their
// journals must still be byte-identical to an unsharded run. The
// subprocesses are this test binary re-executed into the helper entry
// point below (the standard helper-process pattern), so they run the
// exact library code under test with no extra build step.
const (
	shardHelperEnv        = "GREENBENCH_SHARD_HELPER" // "run" executes a shard, "hang" parks forever
	shardHelperShardEnv   = "GREENBENCH_HELPER_SHARD"
	shardHelperJournalEnv = "GREENBENCH_HELPER_JOURNAL"
	shardHelperWorkersEnv = "GREENBENCH_HELPER_WORKERS"
)

// TestShardHelperProcess is not a test: it is the subprocess entry
// point the chaos tests re-execute this binary into. It runs one shard
// of the mergeCfg grid (or parks forever, for the straggler tests) and
// exits without touching the rest of the test suite.
func TestShardHelperProcess(t *testing.T) {
	mode := os.Getenv(shardHelperEnv)
	if mode == "" {
		t.Skip("subprocess entry point; runs only when re-executed by a chaos test")
	}
	if mode == "hang" {
		// A wedged process: alive, but making no durable progress — the
		// straggler the coordinator's process deadline must reclaim. A
		// bare select{} would trip the runtime's deadlock detector and
		// crash the process on its own; sleeping keeps it convincingly
		// alive.
		for {
			//greenlint:allow wallclock chaos-test straggler subprocess idles on real time; it is killed, never measured
			time.Sleep(time.Hour)
		}
	}
	var shard ShardSpec
	if s := os.Getenv(shardHelperShardEnv); s != "" {
		var err error
		if shard, err = ParseShardSpec(s); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	workers, _ := strconv.Atoi(os.Getenv(shardHelperWorkersEnv))
	cfg := withWorkers(mergeCfg(), workers)
	cfg.Shard = shard
	if _, err := RunShard(chaosSystems(), cfg, os.Getenv(shardHelperJournalEnv)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// helperEnv builds the helper subprocess environment, deliberately not
// inheriting any chaos variable from the test's own environment.
func helperEnv(mode string, shard ShardSpec, journal string, workers int, extra ...string) []string {
	env := append(os.Environ(),
		shardHelperEnv+"="+mode,
		shardHelperShardEnv+"="+shard.String(),
		shardHelperJournalEnv+"="+journal,
		shardHelperWorkersEnv+"="+strconv.Itoa(workers),
		chaosKillEnv+"=", // cleared unless extra re-sets it
	)
	return append(env, extra...)
}

// helperCommand re-executes this test binary into the helper entry point.
func helperCommand(mode string, shard ShardSpec, journal string, workers int, extra ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], "-test.run", "^TestShardHelperProcess$")
	cmd.Env = helperEnv(mode, shard, journal, workers, extra...)
	return cmd
}

// diedBySIGKILL reports whether a subprocess error is death by SIGKILL.
func diedBySIGKILL(err error) bool {
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		return false
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	return ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL
}

// ownedCells counts how many grid cells a shard owns.
func ownedCells(fingerprint string, refs []CellRef, shard ShardSpec) int {
	n := 0
	for _, ref := range refs {
		if shard.Owns(fingerprint, ref.ID()) {
			n++
		}
	}
	return n
}

// TestShardSubprocessSIGKILLResumeByteIdentical kills real shard
// subprocesses with SIGKILL at every journal crash point — including a
// torn write — then reruns them to completion and merges: the result
// must be byte-identical to the unsharded single-worker run. This is
// the crash-chaos contract of chaos_test.go lifted from simulated
// append failures to actual process death.
func TestShardSubprocessSIGKILLResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	cfg := mergeCfg()
	systems := chaosSystems()
	want := RunGrid(systems, withWorkers(cfg, 1))
	wantCSV, wantJSON, wantSVG := chaosExports(t, want)
	fingerprint := Fingerprint(systems, cfg)
	refs := EnumerateCellRefs(systems, cfg)

	const shards = 2
	const workers = 4
	for _, point := range []string{"start", "torn", "written", "synced"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			var paths []string
			killed := 0
			for i := 0; i < shards; i++ {
				shard := ShardSpec{Index: i, Count: shards}
				journal := filepath.Join(dir, fmt.Sprintf("s%d.jsonl", i))
				paths = append(paths, journal)
				owned := ownedCells(fingerprint, refs, shard)

				cmd := helperCommand("run", shard, journal, workers, chaosKillEnv+"="+point+"@0")
				err := cmd.Run()
				if owned == 0 {
					if err != nil {
						t.Fatalf("shard %s owns nothing but failed: %v", shard, err)
					}
				} else {
					if !diedBySIGKILL(err) {
						t.Fatalf("shard %s: want death by SIGKILL at %s@0, got %v", shard, point, err)
					}
					killed++
				}

				// Restart without the kill: must resume from the partial
				// journal and complete.
				if out, err := helperCommand("run", shard, journal, workers).CombinedOutput(); err != nil {
					t.Fatalf("shard %s: resume after SIGKILL failed: %v\n%s", shard, err, out)
				}
			}
			if killed == 0 {
				t.Fatal("no subprocess was killed — the chaos hook never fired")
			}

			res, err := MergeJournals(paths, fingerprint, refs)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Missing) != 0 {
				t.Fatalf("%d cells missing after resume", len(res.Missing))
			}
			if !reflect.DeepEqual(res.Records, want) {
				t.Fatal("merged records differ from the unsharded run after SIGKILL/resume")
			}
			csv, js, svg := chaosExports(t, res.Records)
			if !bytes.Equal(csv, wantCSV) || !bytes.Equal(js, wantJSON) || !bytes.Equal(svg, wantSVG) {
				t.Fatal("merged exports are not byte-identical after SIGKILL/resume")
			}
		})
	}
}

// launchCounter hands the coordinator per-shard launch counts so tests
// can inject chaos on specific launches only.
type launchCounter struct {
	mu       sync.Mutex
	launches map[int]int
}

func newLaunchCounter() *launchCounter {
	return &launchCounter{launches: make(map[int]int)}
}

// next returns the 1-based launch number for a shard.
func (c *launchCounter) next(shard int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.launches[shard]++
	return c.launches[shard]
}

// TestCoordinatorKillRestartMergeMatrix is the tentpole's end-to-end
// proof: at shard counts 1, 2 and 4, worker counts 1 and 4, every shard
// subprocess is SIGKILLed on its first launch at a journal crash point;
// the coordinator must restart each, the restarts must resume from the
// partial journals, and the merged exports must be byte-identical to an
// unsharded single-process run.
func TestCoordinatorKillRestartMergeMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess fleets")
	}
	cfg := mergeCfg()
	systems := chaosSystems()
	want := RunGrid(systems, withWorkers(cfg, 1))
	wantCSV, wantJSON, wantSVG := chaosExports(t, want)
	fingerprint := Fingerprint(systems, cfg)
	refs := EnumerateCellRefs(systems, cfg)
	points := []string{"start", "torn", "written", "synced"}

	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", shards, workers), func(t *testing.T) {
				counter := newLaunchCounter()
				ccfg := CoordinatorConfig{
					Shards:      shards,
					MaxRestarts: 2,
					Dir:         t.TempDir(),
					Command: func(shard ShardSpec, journal string) *exec.Cmd {
						var extra []string
						if counter.next(shard.Index) == 1 {
							// First launch dies at a crash point that varies by
							// shard, covering the full kill surface across the
							// matrix.
							extra = []string{chaosKillEnv + "=" + points[shard.Index%len(points)] + "@0"}
						}
						return helperCommand("run", shard, journal, workers, extra...)
					},
				}
				res, err := RunCoordinator(ccfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, st := range res.Shards {
					if !st.Completed {
						t.Fatalf("shard %s did not complete: %s", st.Shard, st.Err)
					}
					wantLaunches := 1
					if ownedCells(fingerprint, refs, st.Shard) > 0 {
						wantLaunches = 2 // killed once, resumed once
					}
					if st.Launches != wantLaunches {
						t.Errorf("shard %s: %d launches, want %d", st.Shard, st.Launches, wantLaunches)
					}
					if st.DeadlineKills != 0 {
						t.Errorf("shard %s: %d deadline kills with no deadline armed", st.Shard, st.DeadlineKills)
					}
				}
				merged, err := MergeJournals(res.JournalPaths, fingerprint, refs)
				if err != nil {
					t.Fatal(err)
				}
				if err := merged.VerifyMissingOwnedBy(fingerprint, res.Failed()); err != nil {
					t.Fatal(err)
				}
				if len(merged.Missing) != 0 {
					t.Fatalf("%d cells missing after coordinated restarts", len(merged.Missing))
				}
				if !reflect.DeepEqual(merged.Records, want) {
					t.Fatal("coordinated merge differs from the unsharded run")
				}
				csv, js, svg := chaosExports(t, merged.Records)
				if !bytes.Equal(csv, wantCSV) || !bytes.Equal(js, wantJSON) || !bytes.Equal(svg, wantSVG) {
					t.Fatal("coordinated exports are not byte-identical to the unsharded run")
				}
			})
		}
	}
}

// TestCoordinatorDeadlineReclaimsStraggler wedges a shard's first
// launch (alive, no journal progress): the process-level deadline must
// SIGKILL it, the restart must complete, and the merge must match the
// oracle.
func TestCoordinatorDeadlineReclaimsStraggler(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	cfg := mergeCfg()
	systems := chaosSystems()
	want := RunGrid(systems, withWorkers(cfg, 1))
	fingerprint := Fingerprint(systems, cfg)
	refs := EnumerateCellRefs(systems, cfg)

	counter := newLaunchCounter()
	ccfg := CoordinatorConfig{
		Shards:      1,
		MaxRestarts: 1,
		// The grace window (Probes × Interval) must outlast a healthy
		// subprocess's whole boot-to-first-checkpoint span — test binary
		// startup included, which -race can stretch well past a second —
		// or the deadline would reap the recovering relaunch too.
		Deadline: WatchdogPolicy{Probes: 8, Interval: 250 * time.Millisecond},
		Dir:      t.TempDir(),
		Command: func(shard ShardSpec, journal string) *exec.Cmd {
			if counter.next(shard.Index) == 1 {
				return helperCommand("hang", shard, journal, 1)
			}
			return helperCommand("run", shard, journal, 1)
		},
	}
	res, err := RunCoordinator(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Shards[0]
	if !st.Completed {
		t.Fatalf("shard never completed: %s", st.Err)
	}
	if st.DeadlineKills != 1 {
		t.Errorf("DeadlineKills = %d, want 1", st.DeadlineKills)
	}
	if st.Launches != 2 {
		t.Errorf("Launches = %d, want 2", st.Launches)
	}
	merged, err := MergeJournals(res.JournalPaths, fingerprint, refs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Records, want) {
		t.Error("merge after straggler reclamation differs from oracle")
	}
}

// TestCoordinatorDegradesExhaustedShard kills one shard on every
// launch: with the restart budget exhausted the coordinator must report
// the shard failed — not abort — and the merge must keep the grid
// full-size with that shard's cells carried as shard-failure records.
func TestCoordinatorDegradesExhaustedShard(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	cfg := mergeCfg()
	systems := chaosSystems()
	fingerprint := Fingerprint(systems, cfg)
	refs := EnumerateCellRefs(systems, cfg)

	// Pick a shard of 2 that owns at least one cell, so the kill always
	// fires and the failure is observable in the taxonomy.
	doomed := ShardSpec{Index: 0, Count: 2}
	if ownedCells(fingerprint, refs, doomed) == 0 {
		doomed.Index = 1
	}

	ccfg := CoordinatorConfig{
		Shards:      2,
		MaxRestarts: 1,
		Dir:         t.TempDir(),
		Command: func(shard ShardSpec, journal string) *exec.Cmd {
			if shard == doomed {
				return helperCommand("run", shard, journal, 1, chaosKillEnv+"=start@0")
			}
			return helperCommand("run", shard, journal, 1)
		},
	}
	res, err := RunCoordinator(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	var doomedStatus, healthyStatus ShardStatus
	for _, st := range res.Shards {
		if st.Shard == doomed {
			doomedStatus = st
		} else {
			healthyStatus = st
		}
	}
	if doomedStatus.Completed {
		t.Fatal("a shard killed on every launch reported completion")
	}
	if doomedStatus.Launches != 2 {
		t.Errorf("doomed shard launched %d times, want 2 (initial + 1 restart)", doomedStatus.Launches)
	}
	if doomedStatus.Err == "" {
		t.Error("failed shard carries no error")
	}
	if !healthyStatus.Completed {
		t.Fatalf("healthy shard failed: %s", healthyStatus.Err)
	}
	failed := res.Failed()
	if len(failed) != 1 || failed[0] != doomed {
		t.Fatalf("Failed() = %v, want [%s]", failed, doomed)
	}

	merged, err := MergeJournals(res.JournalPaths, fingerprint, refs)
	if err != nil {
		t.Fatal(err)
	}
	if err := merged.VerifyMissingOwnedBy(fingerprint, failed); err != nil {
		t.Errorf("degraded sweep failed its own completeness check: %v", err)
	}
	if len(merged.Records) != len(refs) {
		t.Fatalf("degraded merge has %d records for a %d-cell grid", len(merged.Records), len(refs))
	}
	if want := ownedCells(fingerprint, refs, doomed); len(merged.Missing) != want {
		t.Errorf("%d cells missing, want the doomed shard's %d", len(merged.Missing), want)
	}
	shardFailures := 0
	for _, rec := range merged.Records {
		if rec.Failure == faults.ShardFailure {
			shardFailures++
		}
	}
	if shardFailures != len(merged.Missing) {
		t.Errorf("%d shard-failure records for %d missing cells", shardFailures, len(merged.Missing))
	}
	// The degraded record set must still render: a dead shard costs its
	// cells, never the report.
	chaosExports(t, merged.Records)
}

// TestCoordinatorRejectsBadConfig: coordinator-level misconfiguration
// is an error before any subprocess spawns.
func TestCoordinatorRejectsBadConfig(t *testing.T) {
	dir := t.TempDir()
	cmdFn := func(shard ShardSpec, journal string) *exec.Cmd { return helperCommand("run", shard, journal, 1) }
	cases := []CoordinatorConfig{
		{Shards: 0, Dir: dir, Command: cmdFn},
		{Shards: -2, Dir: dir, Command: cmdFn},
		{Shards: 2, Dir: dir, Command: nil},
		{Shards: 2, MaxRestarts: -1, Dir: dir, Command: cmdFn},
	}
	for i, cc := range cases {
		if _, err := RunCoordinator(cc); err == nil {
			t.Errorf("case %d: invalid coordinator config accepted", i)
		}
	}
}

// TestCoordinatorNilCommandResult: a Command builder returning nil for
// one shard fails that shard, not the coordinator.
func TestCoordinatorNilCommandResult(t *testing.T) {
	ccfg := CoordinatorConfig{
		Shards:      1,
		MaxRestarts: 0,
		Dir:         t.TempDir(),
		Command:     func(ShardSpec, string) *exec.Cmd { return nil },
	}
	res, err := RunCoordinator(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards[0].Completed || res.Shards[0].Err == "" {
		t.Errorf("nil command must fail the shard: %+v", res.Shards[0])
	}
}
