// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§3).
//
// The harness runs AutoML systems over the 39-dataset suite across search
// budgets and seeds on a modelled testbed, collects per-run records
// (test balanced accuracy, execution energy/time, per-instance inference
// energy/time), aggregates them with the paper's bootstrap procedure, and
// renders paper-style tables. All runs are virtual-time simulations: a
// grid that took the authors 28 days replays in minutes, deterministically.
package bench

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/automl"
	"repro/internal/energy"
	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/openml"
	"repro/internal/repo"
	"repro/internal/tabular"
)

// Config controls the experiment grid.
type Config struct {
	// Machine is the testbed model; nil uses the Xeon CPU testbed.
	Machine *hw.Machine
	// Cores is the allotted core count (paper §3.2 measures single
	// core); 0 means 1.
	Cores int
	// Scale is the dataset scale profile; zero value uses BenchScale.
	Scale openml.ScaleProfile
	// Datasets lists the dataset specs; empty uses the full Table 2
	// suite.
	Datasets []openml.Spec
	// Budgets lists the search budgets; empty uses the paper's
	// {10s, 30s, 1m, 5m}.
	Budgets []time.Duration
	// Seeds is the number of repeated runs per cell (paper uses 10).
	Seeds int
	// Seed is the base RNG seed.
	Seed uint64
	// GPUMode sets the execution meters' accelerator state.
	GPUMode energy.GPUMode
	// Faults configures deterministic fault injection; the zero value
	// injects nothing.
	Faults faults.Config
	// Retry is the per-cell retry policy.
	Retry RetryPolicy
	// Workers bounds the number of grid cells executed concurrently.
	// Zero (or negative) defaults to runtime.NumCPU(). Records, exports
	// and journal resume semantics are identical at every worker count,
	// so Workers is a pure throughput knob and deliberately not part of
	// the journal fingerprint.
	Workers int
	// Parallelism sets the within-cell worker budget handed to the ml
	// kernels (ml.SetParallelism) for the duration of the grid. Zero
	// chooses automatically: cores that cross-cell concurrency leaves
	// idle — Workers divided by the number of uncached cells, floored at
	// 1 — go to individual fits. The kernels' sanctioned reduction
	// orders make every proba, Cost and export bit-identical at any
	// level, so like Workers this is a pure throughput knob and
	// deliberately not part of the journal fingerprint.
	Parallelism int
	// Watchdog configures the per-cell stall watchdog. The zero value
	// disables it unless hang faults are injected, in which case
	// normalization arms it with defaults — a hang with no watchdog
	// wedges a worker forever.
	Watchdog WatchdogPolicy
	// Shard restricts execution to one content-addressed slice of the
	// grid (see ShardSpec). The zero value runs the whole grid. Like
	// Workers, sharding is an execution knob, not part of the grid's
	// identity: the cells a shard runs are bit-identical to the same
	// cells of an unsharded run, and merged shard journals reproduce
	// the unsharded exports byte for byte. It is therefore excluded
	// from the grid fingerprint; the shard journal header binds the
	// shard assignment separately.
	Shard ShardSpec
	// Repo, when set, is the content-addressed evaluation repository
	// every cell consults before executing: a stored cell replays its
	// record (byte-identical to a live run, zero fits), a miss executes
	// and writes its predictions, score and costs back (unless the
	// repository is read-only). Like Workers and Shard it is an
	// execution knob — where records come from, never what they are —
	// and is therefore excluded from the grid fingerprint; the
	// repository keys its entries by that fingerprint instead.
	Repo *repo.Repository
}

// RepoStats summarizes one grid run's evaluation-repository traffic.
type RepoStats struct {
	// Hits counts cells replayed from the repository without executing.
	Hits int
	// Misses counts cells the repository did not hold (they executed).
	Misses int
	// Damaged counts cells whose stored bytes failed verification and
	// were treated as misses (only possible with AllowDamage; without
	// it, damage aborts the run instead).
	Damaged int
	// Stored counts cells written back after executing.
	Stored int
}

// Consulted reports whether a repository took part in the run.
func (s RepoStats) Consulted() bool { return s != RepoStats{} }

// WatchdogPolicy is the stall watchdog's configuration: a cell whose
// virtual clock stops advancing across Probes consecutive real-time
// probe intervals is abandoned. Abandonment is advisory — a parked
// hang acknowledges with a typed stall and is recorded as a
// faults.Stall charged with the budget it burned and scored by the
// majority-class fallback, while a cell the probes merely caught
// between clock advances completes and keeps its real result. Stall
// records are therefore a pure function of the injected fault plan, so
// a given grid stalls identically at every worker count and probe
// interval; the probe timer is operator-facing real time and only sets
// how quickly a hang is reclaimed. Like Workers, the policy is a
// liveness knob and not part of the journal fingerprint.
type WatchdogPolicy struct {
	// Probes is how many consecutive probe intervals without virtual
	// progress abandon the cell. Zero disables the watchdog (unless hang
	// faults force it on, defaulting to DefaultWatchdogProbes).
	Probes int
	// Interval is the real-time probe period; zero defaults to 250ms.
	Interval time.Duration
}

// DefaultWatchdogProbes is the K the watchdog defaults to when hang
// faults are injected without an explicit policy.
const DefaultWatchdogProbes = 4

// Enabled reports whether the watchdog is armed.
func (w WatchdogPolicy) Enabled() bool { return w.Probes > 0 }

// RetryPolicy controls how the harness retries failed cells. Every
// attempt perturbs the system seed and runs on the same execution meter,
// so retried virtual time and energy stay charged to the cell — retries
// cost kWh, which the green accounting must include.
type RetryPolicy struct {
	// MaxAttempts is the total number of Fit attempts per cell (1 = no
	// retries). Zero defaults to 1, or 3 when fault injection is
	// enabled.
	MaxAttempts int
}

// PaperBudgets returns the paper's four search budgets.
func PaperBudgets() []time.Duration {
	return []time.Duration{10 * time.Second, 30 * time.Second, time.Minute, 5 * time.Minute}
}

// BenchScale is the dataset scale the harness defaults to: large enough
// that budgets bind on big datasets, small enough that the full grid runs
// on a laptop.
func BenchScale() openml.ScaleProfile {
	return openml.ScaleProfile{
		RowExponent: 0.52, MinRows: 100, MaxRows: 900,
		FeatureExponent: 0.62, MinFeatures: 4, MaxFeatures: 40,
		MaxClasses: 24,
	}
}

func (c Config) normalized() Config {
	if c.Machine == nil {
		c.Machine = hw.XeonGold6132()
	}
	if c.Cores < 1 {
		c.Cores = 1
	}
	if c.Scale == (openml.ScaleProfile{}) {
		c.Scale = BenchScale()
	}
	if len(c.Datasets) == 0 {
		c.Datasets = openml.Suite()
	}
	if len(c.Budgets) == 0 {
		c.Budgets = PaperBudgets()
	}
	if c.Seeds < 1 {
		c.Seeds = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Retry.MaxAttempts < 1 {
		if c.Faults.Enabled() {
			c.Retry.MaxAttempts = 3
		} else {
			c.Retry.MaxAttempts = 1
		}
	}
	if c.Workers < 1 {
		c.Workers = runtime.NumCPU()
	}
	if c.Faults.HangRate > 0 && c.Watchdog.Probes < 1 {
		// Injected hangs park forever; running them without a watchdog
		// would wedge a worker, so arm it.
		c.Watchdog.Probes = DefaultWatchdogProbes
	}
	if c.Watchdog.Probes > 0 && c.Watchdog.Interval <= 0 {
		c.Watchdog.Interval = 250 * time.Millisecond
	}
	return c
}

// Record is one (system, dataset, budget, seed) measurement.
type Record struct {
	System  string
	Dataset string
	Budget  time.Duration
	Seed    uint64

	// TestScore is the balanced accuracy on the held-out test split.
	TestScore float64
	// ExecKWh and ExecTime are the execution stage's energy and actual
	// (possibly overrun) duration.
	ExecKWh  float64
	ExecTime time.Duration
	// InferKWhPerInst and InferTimePerInst are the inference stage's
	// per-instance energy and compute time.
	InferKWhPerInst  float64
	InferTimePerInst time.Duration
	// Evaluated counts pipelines trained during search.
	Evaluated int
	// Failure classifies what went wrong during the run (the
	// internal/faults taxonomy); empty means a clean run. With
	// faults.MeterDropout the score is valid but the energy readings are
	// partial; other kinds combined with Fallback mean the fallback
	// predictor supplied the score and Failure keeps the root cause.
	Failure faults.Kind `json:",omitempty"`
	// Fallback reports that the majority-class fallback predictor
	// produced TestScore after retries were exhausted (AMLB semantics).
	Fallback bool `json:",omitempty"`
	// Attempts counts the Fit attempts consumed; values above 1 mean
	// retries, whose energy is included in ExecKWh.
	Attempts int `json:",omitempty"`
}

// Scored reports whether the record carries a usable TestScore: clean
// runs, fallback-scored runs and meter-dropout runs do; hard failures
// (no predictor ever produced predictions) do not.
func (r Record) Scored() bool {
	return r.Failure == faults.None || r.Failure == faults.MeterDropout || r.Fallback
}

// EnergyValid reports whether the record's energy measurements are
// trustworthy — meter dropout loses readings mid-run, so its energy
// fields undercount.
func (r Record) EnergyValid() bool { return r.Failure != faults.MeterDropout }

// Kind folds the record into the failure taxonomy the way reports count
// it: fallback-scored records count as faults.FallbackUsed, everything
// else as the root-cause kind (empty for clean runs).
func (r Record) Kind() faults.Kind {
	if r.Fallback {
		return faults.FallbackUsed
	}
	return r.Failure
}

// DefaultSystems returns the benchmark's system lineup: the paper's
// seven systems (§2.2, excluding CAML(tuned), which needs a
// development-stage artifact) plus the zero-shot portfolio system the
// evaluation repository enables.
func DefaultSystems() []automl.System {
	return []automl.System{
		automl.NewTabPFN(),
		automl.NewCAML(),
		automl.NewFLAML(),
		automl.NewAutoGluon(),
		automl.NewAutoSklearn1(),
		automl.NewAutoSklearn2(),
		automl.NewTPOT(),
		automl.NewZeroShot(),
	}
}

// RunGrid measures every (system × dataset × budget × seed) cell and
// returns the records. Budgets below a system's minimum are skipped, as in
// the paper (ASKL starts at 30s, TPOT at 1m, TabPFN runs once per
// budget regardless).
func RunGrid(systems []automl.System, cfg Config) []Record {
	records, _, _ := runGrid(systems, cfg, nil)
	return records
}

// runGrid executes the grid: it enumerates every cell (hoisting dataset
// generation, train/test splits, journal lookups and repository
// consultation out of the execution path), then runs the cells serially
// or on a bounded worker pool depending on cfg.Workers. Cells are
// independent — their RNG streams derive from cell identity, not shared
// state — so a resumed run (or a parallel one) replays the remaining
// cells exactly as an uninterrupted serial run would, and the returned
// records are byte-identical at every worker count.
func runGrid(systems []automl.System, cfg Config, journal *Journal) ([]Record, RepoStats, error) {
	cfg = cfg.normalized()
	inj := faults.New(cfg.Faults)
	fingerprint := ""
	if cfg.Repo != nil || cfg.Shard.Enabled() {
		fingerprint = Fingerprint(systems, cfg)
	}
	cells, stats, err := enumerateGrid(systems, cfg, inj, journal, fingerprint)
	if err != nil {
		return nil, stats, err
	}
	// Hand idle cores to the kernels for the duration of the grid. The
	// knob is global but harmless if grids overlap: every kernel is
	// bit-identical at every level, so a racing Set can only shift
	// wall-clock time, never a record.
	prev := ml.SetParallelism(cellParallelism(cfg, cells))
	defer ml.SetParallelism(prev)
	var records []Record
	var stored int
	if cfg.Workers == 1 {
		records, stored, err = runGridSerial(cells, cfg, inj, journal, fingerprint)
	} else {
		records, stored, err = runGridParallel(cells, cfg, inj, journal, fingerprint)
	}
	stats.Stored = stored
	return records, stats, err
}

// cellParallelism resolves the within-cell worker budget for a grid:
// the explicit cfg.Parallelism when set, otherwise Workers divided by
// the uncached cell count — when the grid has fewer live cells than
// workers (a resumed run's tail, a sharded slice, a single big fit),
// the spare cores speed up the cells that remain.
func cellParallelism(cfg Config, cells []gridCell) int {
	if cfg.Parallelism > 0 {
		return cfg.Parallelism
	}
	uncached := 0
	for _, c := range cells {
		if c.cached == nil {
			uncached++
		}
	}
	if uncached >= cfg.Workers {
		return 1
	}
	return cfg.Workers / max(1, uncached)
}

// generateDataset materializes a dataset spec, retrying transient
// injected generation faults under the cell retry policy.
func generateDataset(spec openml.Spec, cfg Config, inj *faults.Injector) (*tabular.Frame, error) {
	var lastErr error
	for attempt := 0; attempt < cfg.Retry.MaxAttempts; attempt++ {
		if err := inj.DatasetFault(spec.Name, cfg.Seed, attempt); err != nil {
			lastErr = err
			continue
		}
		return openml.Generate(spec, cfg.Scale, cfg.Seed), nil
	}
	return nil, lastErr
}

// fitProbe counts every Fit attempt the process performs. It exists for
// the repository's zero-fit guarantee: a warm (fully cache-hit) rerun
// must not train anything, and tests assert it through this counter
// rather than trusting hit statistics.
var fitProbe atomic.Int64

// FitProbeCount reports the Fit attempts performed since the last reset.
func FitProbeCount() int64 { return fitProbe.Load() }

// ResetFitProbe zeroes the fit counter (test setup).
func ResetFitProbe() { fitProbe.Store(0) }

// safeFit invokes sys.Fit with panic recovery: a crashing trainer is
// converted into a typed fit-panic error so one cell can never abort the
// grid.
func safeFit(sys automl.System, train tabular.View, opts automl.Options) (res *automl.Result, err error) {
	fitProbe.Add(1)
	defer func() {
		if r := recover(); r != nil {
			res = nil
			if fe, ok := r.(*faults.Error); ok {
				err = fe
				return
			}
			err = &faults.Error{Kind: faults.FitPanic, Site: "fit/" + sys.Name(), Err: fmt.Errorf("panic: %v", r)}
		}
	}()
	return sys.Fit(train, opts)
}

// safePredictProba invokes res.PredictProbaCost with panic recovery,
// converting panics into typed predict-error faults. The probabilities
// and their cost come back alongside so the caller can both derive
// labels (metrics.ArgmaxRows) and persist the prediction slab.
func safePredictProba(res *automl.Result, x tabular.View, meter *energy.Meter) (proba [][]float64, cost ml.Cost, err error) {
	defer func() {
		if r := recover(); r != nil {
			proba = nil
			if fe, ok := r.(*faults.Error); ok {
				err = fe
				return
			}
			err = &faults.Error{Kind: faults.PredictError, Site: "predict/" + res.System, Err: fmt.Errorf("panic: %v", r)}
		}
	}()
	return res.PredictProbaCost(x, meter)
}

// cellPayload is what a freshly executed cell contributes to the
// evaluation repository beyond its Record: the prediction probabilities
// the score came from, their inference cost, and the winning pipeline
// configuration (nil for systems without a per-config recipe).
type cellPayload struct {
	proba     [][]float64
	classes   int
	inferCost ml.Cost
	config    []byte
	score     float64
}

// runCell executes one grid cell under the resilience policy: panics
// become typed errors, failed attempts are retried with perturbed seeds
// on the same meter (their energy stays charged), and exhausted retries
// degrade to the majority-class fallback predictor so the cell still
// yields a score.
func runCell(sys automl.System, train, test tabular.View, budget time.Duration, cfg Config, seed uint64, inj *faults.Injector) (Record, *cellPayload) {
	rec := Record{
		System:  sys.Name(),
		Dataset: train.Name(),
		Budget:  budget,
		Seed:    seed,
	}
	execMeter := energy.NewMeter(cfg.Machine, cfg.Cores)
	execMeter.SetGPUMode(cfg.GPUMode)

	var res *automl.Result
	if oom := inj.CheckOOM(train.Name(), train.Rows(), train.Features()); oom != nil {
		// OOM is deterministic in the memory model; retrying cannot
		// clear it, so the cell degrades immediately.
		rec.Failure = faults.OOM
	} else {
		for attempt := 0; attempt < cfg.Retry.MaxAttempts; attempt++ {
			rec.Attempts = attempt + 1
			plan := inj.CellPlan(sys.Name(), train.Name(), budget, seed, uint64(attempt))
			// Attempt 0 keeps the historical seed derivation so
			// fault-free grids reproduce pre-resilience records.
			opts := automl.Options{Budget: budget, Meter: execMeter, Seed: cfg.Seed*31 + seed + uint64(attempt)*0x9e37}
			r, stalled, err := fitWithWatchdog(faults.Wrap(sys, plan), train, opts, cfg.Watchdog)
			if stalled {
				// The attempt stopped making virtual progress and was
				// abandoned. A wedged trainer is not retried — a retry
				// would gamble another stall-detection latency on the
				// same cell — so the cell degrades straight to the
				// fallback, keeping the budget the stall burned charged.
				rec.Failure = faults.Stall
				break
			}
			if err != nil {
				rec.Failure = faults.KindOf(err, faults.FitError)
				continue
			}
			res = r
			rec.Failure = faults.None
			break
		}
	}
	// The meter totals cover every attempt: a stage-level failure keeps
	// the execution measurements, and retry energy is part of the cell's
	// real cost.
	rec.ExecKWh = execMeter.Tracker().KWh(energy.Execution)
	rec.ExecTime = execMeter.Clock().Now()
	if execMeter.Dropped() && rec.Failure == faults.None {
		rec.Failure = faults.MeterDropout
	}

	if res == nil {
		// Retries exhausted: degrade to the constant majority-class
		// predictor (AMLB semantics) so the cell still yields a score.
		res = automl.MajorityResult(sys.Name(), train)
		rec.Fallback = true
	}
	rec.Evaluated = res.Evaluated

	// Inference is measured separately on a single core (per-instance
	// profile, paper §3.2). Systems whose predictor cannot use the GPU
	// leave it idling when drivers are loaded (paper Table 3).
	inferMeter := energy.NewMeter(cfg.Machine, 1)
	if cfg.GPUMode != energy.GPUOff {
		if res.GPUInference {
			inferMeter.SetGPUMode(energy.GPUActive)
		} else {
			inferMeter.SetGPUMode(energy.GPUIdle)
		}
	}
	var inferCost ml.Cost
	proba, cost, err := safePredictProba(res, test, inferMeter)
	inferCost.Add(cost)
	searched := res
	if err != nil {
		if rec.Failure == faults.None {
			rec.Failure = faults.KindOf(err, faults.PredictError)
		}
		// The execution measurements above survive this stage-level
		// failure; only the score degrades to the fallback predictor.
		fb := automl.MajorityResult(sys.Name(), train)
		proba, cost, err = safePredictProba(fb, test, inferMeter)
		inferCost.Add(cost)
		if err != nil {
			return rec, nil
		}
		rec.Fallback = true
	}
	pred := metrics.ArgmaxRows(proba)
	rec.TestScore = metrics.BalancedAccuracy(test.LabelsInto(nil), pred, test.Classes())
	n := float64(test.Rows())
	if n > 0 {
		rec.InferKWhPerInst = inferMeter.Tracker().KWh(energy.Inference) / n
		rec.InferTimePerInst = time.Duration(float64(inferMeter.Tracker().BusyTime(energy.Inference)) / n)
	}
	payload := &cellPayload{
		proba:     proba,
		classes:   test.Classes(),
		inferCost: inferCost,
		score:     rec.TestScore,
	}
	// The winning configuration feeds portfolio meta-learning — but
	// only when the search's own recipe produced the stored score; a
	// fallback's constant predictions prove nothing about the config.
	if !rec.Fallback && len(searched.BestConfig) > 0 {
		if cfgBytes, merr := json.Marshal(searched.BestConfig); merr == nil {
			payload.config = cfgBytes
		}
	}
	return rec, payload
}

// CellKey aggregates records by (system, budget).
type CellKey struct {
	System string
	Budget time.Duration
}

// CellStats are the bootstrap-aggregated measurements of one (system,
// budget) cell across datasets and seeds.
type CellStats struct {
	Key CellKey
	// Score is the bootstrap mean ± std of balanced accuracy (paper
	// §3.1: resample one run per dataset with replacement).
	Score metrics.Summary
	// ExecKWh and InferKWhPerInst are means across datasets of per-
	// dataset mean energy.
	ExecKWh         float64
	ExecKWhStd      float64
	InferKWhPerInst float64
	// InferTimePerInst is the mean per-instance inference compute time.
	InferTimePerInst time.Duration
	// ExecTime is the mean ± std of the actual execution duration.
	ExecTime    time.Duration
	ExecTimeStd time.Duration
	// Runs counts the records whose score entered the aggregation
	// (clean, fallback-scored and meter-dropout runs).
	Runs int
	// Total counts every record of the cell, including hard failures —
	// failed runs are reported, not silently excluded.
	Total int
	// Failures counts records per root-cause failure kind; clean runs
	// do not appear. Nil when the cell saw no failures.
	Failures map[faults.Kind]int
	// Fallbacks counts records scored by the majority-class fallback.
	Fallbacks int
}

// FailureRate is the fraction of the cell's records that hit any fault
// (including those rescued by retries' fallback or with partial energy).
func (s CellStats) FailureRate() float64 {
	if s.Total == 0 {
		return 0
	}
	n := 0
	for _, c := range s.Failures {
		n += c
	}
	return float64(n) / float64(s.Total)
}

// FallbackRate is the fraction of the cell's records scored by the
// fallback predictor.
func (s CellStats) FallbackRate() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Fallbacks) / float64(s.Total)
}

// Aggregate groups records into per-(system, budget) statistics. Failed
// records are counted into the cell's failure and fallback rates rather
// than silently dropped; fallback-scored runs contribute their
// (majority-class) score as the paper's reference harness does, and
// meter-dropout runs contribute their score but not their partial
// energy readings.
func Aggregate(records []Record, rng *rand.Rand) []CellStats {
	type accum struct {
		scoreByDataset map[string][]float64
		execByDataset  map[string][]float64
		inferPerInst   []float64
		inferTimes     []float64
		execTimes      []float64
		runs           int
		total          int
		fallbacks      int
		failures       map[faults.Kind]int
	}
	cells := make(map[CellKey]*accum)
	for _, r := range records {
		key := CellKey{System: r.System, Budget: r.Budget}
		a := cells[key]
		if a == nil {
			a = &accum{
				scoreByDataset: make(map[string][]float64),
				execByDataset:  make(map[string][]float64),
			}
			cells[key] = a
		}
		a.total++
		if r.Failure != faults.None {
			if a.failures == nil {
				a.failures = make(map[faults.Kind]int)
			}
			a.failures[r.Failure]++
		}
		if r.Fallback {
			a.fallbacks++
		}
		if !r.Scored() {
			continue
		}
		a.scoreByDataset[r.Dataset] = append(a.scoreByDataset[r.Dataset], r.TestScore)
		if r.EnergyValid() {
			a.execByDataset[r.Dataset] = append(a.execByDataset[r.Dataset], r.ExecKWh)
			a.inferPerInst = append(a.inferPerInst, r.InferKWhPerInst)
			a.inferTimes = append(a.inferTimes, r.InferTimePerInst.Seconds())
			a.execTimes = append(a.execTimes, r.ExecTime.Seconds())
		}
		a.runs++
	}

	// Cells must be processed in sorted key order, not map order: the
	// bootstrap below draws from the shared rng, so the order cells
	// consume it — and the order datasets feed each bootstrap — would
	// otherwise vary run to run and leak into every exported stat.
	keys := make([]CellKey, 0, len(cells))
	for key := range cells {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].System != keys[j].System {
			return keys[i].System < keys[j].System
		}
		return keys[i].Budget < keys[j].Budget
	})

	out := make([]CellStats, 0, len(cells))
	for _, key := range keys {
		a := cells[key]
		stats := CellStats{Key: key, Runs: a.runs, Total: a.total, Failures: a.failures, Fallbacks: a.fallbacks}
		perDataset := make([][]float64, 0, len(a.scoreByDataset))
		for _, ds := range sortedDatasets(a.scoreByDataset) {
			perDataset = append(perDataset, a.scoreByDataset[ds])
		}
		stats.Score = metrics.Bootstrap(perDataset, 500, rng)

		execMeans := make([]float64, 0, len(a.execByDataset))
		for _, ds := range sortedDatasets(a.execByDataset) {
			execMeans = append(execMeans, metrics.MeanStd(a.execByDataset[ds]).Mean)
		}
		execStats := metrics.MeanStd(execMeans)
		stats.ExecKWh = execStats.Mean
		stats.ExecKWhStd = execStats.Std
		stats.InferKWhPerInst = metrics.MeanStd(a.inferPerInst).Mean
		stats.InferTimePerInst = time.Duration(metrics.MeanStd(a.inferTimes).Mean * float64(time.Second))
		timeStats := metrics.MeanStd(a.execTimes)
		stats.ExecTime = time.Duration(timeStats.Mean * float64(time.Second))
		stats.ExecTimeStd = time.Duration(timeStats.Std * float64(time.Second))
		out = append(out, stats)
	}
	return out
}

func sortedDatasets(m map[string][]float64) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BySystem indexes cell stats by system name.
func BySystem(stats []CellStats) map[string][]CellStats {
	out := make(map[string][]CellStats)
	for _, s := range stats {
		out[s.Key.System] = append(out[s.Key.System], s)
	}
	return out
}

// BestCell returns the cell with the highest mean score for the system.
func BestCell(stats []CellStats, system string) (CellStats, bool) {
	var best CellStats
	found := false
	for _, s := range stats {
		if s.Key.System != system {
			continue
		}
		if !found || s.Score.Mean > best.Score.Mean {
			best = s
			found = true
		}
	}
	return best, found
}

// Systems lists the distinct system names in the stats, sorted.
func Systems(stats []CellStats) []string {
	seen := map[string]bool{}
	var names []string
	for _, s := range stats {
		if !seen[s.Key.System] {
			seen[s.Key.System] = true
			names = append(names, s.Key.System)
		}
	}
	sort.Strings(names)
	return names
}

// FormatBudget renders a budget the way the paper does (10s, 30s, 1min,
// 5min).
func FormatBudget(d time.Duration) string {
	if d < time.Minute {
		return fmt.Sprintf("%ds", int(d.Seconds()))
	}
	return fmt.Sprintf("%dmin", int(d.Minutes()))
}
