// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§3).
//
// The harness runs AutoML systems over the 39-dataset suite across search
// budgets and seeds on a modelled testbed, collects per-run records
// (test balanced accuracy, execution energy/time, per-instance inference
// energy/time), aggregates them with the paper's bootstrap procedure, and
// renders paper-style tables. All runs are virtual-time simulations: a
// grid that took the authors 28 days replays in minutes, deterministically.
package bench

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"repro/internal/automl"
	"repro/internal/energy"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/openml"
	"repro/internal/tabular"
)

// Config controls the experiment grid.
type Config struct {
	// Machine is the testbed model; nil uses the Xeon CPU testbed.
	Machine *hw.Machine
	// Cores is the allotted core count (paper §3.2 measures single
	// core); 0 means 1.
	Cores int
	// Scale is the dataset scale profile; zero value uses BenchScale.
	Scale openml.ScaleProfile
	// Datasets lists the dataset specs; empty uses the full Table 2
	// suite.
	Datasets []openml.Spec
	// Budgets lists the search budgets; empty uses the paper's
	// {10s, 30s, 1m, 5m}.
	Budgets []time.Duration
	// Seeds is the number of repeated runs per cell (paper uses 10).
	Seeds int
	// Seed is the base RNG seed.
	Seed uint64
	// GPUMode sets the execution meters' accelerator state.
	GPUMode energy.GPUMode
}

// PaperBudgets returns the paper's four search budgets.
func PaperBudgets() []time.Duration {
	return []time.Duration{10 * time.Second, 30 * time.Second, time.Minute, 5 * time.Minute}
}

// BenchScale is the dataset scale the harness defaults to: large enough
// that budgets bind on big datasets, small enough that the full grid runs
// on a laptop.
func BenchScale() openml.ScaleProfile {
	return openml.ScaleProfile{
		RowExponent: 0.52, MinRows: 100, MaxRows: 900,
		FeatureExponent: 0.62, MinFeatures: 4, MaxFeatures: 40,
		MaxClasses: 24,
	}
}

func (c Config) normalized() Config {
	if c.Machine == nil {
		c.Machine = hw.XeonGold6132()
	}
	if c.Cores < 1 {
		c.Cores = 1
	}
	if c.Scale == (openml.ScaleProfile{}) {
		c.Scale = BenchScale()
	}
	if len(c.Datasets) == 0 {
		c.Datasets = openml.Suite()
	}
	if len(c.Budgets) == 0 {
		c.Budgets = PaperBudgets()
	}
	if c.Seeds < 1 {
		c.Seeds = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Record is one (system, dataset, budget, seed) measurement.
type Record struct {
	System  string
	Dataset string
	Budget  time.Duration
	Seed    uint64

	// TestScore is the balanced accuracy on the held-out test split.
	TestScore float64
	// ExecKWh and ExecTime are the execution stage's energy and actual
	// (possibly overrun) duration.
	ExecKWh  float64
	ExecTime time.Duration
	// InferKWhPerInst and InferTimePerInst are the inference stage's
	// per-instance energy and compute time.
	InferKWhPerInst  float64
	InferTimePerInst time.Duration
	// Evaluated counts pipelines trained during search.
	Evaluated int
	// Failed marks runs whose system returned an error.
	Failed bool
}

// DefaultSystems returns the benchmark's system lineup (paper §2.2),
// excluding CAML(tuned), which needs a development-stage artifact.
func DefaultSystems() []automl.System {
	return []automl.System{
		automl.NewTabPFN(),
		automl.NewCAML(),
		automl.NewFLAML(),
		automl.NewAutoGluon(),
		automl.NewAutoSklearn1(),
		automl.NewAutoSklearn2(),
		automl.NewTPOT(),
	}
}

// RunGrid measures every (system × dataset × budget × seed) cell and
// returns the records. Budgets below a system's minimum are skipped, as in
// the paper (ASKL starts at 30s, TPOT at 1m, TabPFN runs once per
// budget regardless).
func RunGrid(systems []automl.System, cfg Config) []Record {
	cfg = cfg.normalized()
	var records []Record
	for di, spec := range cfg.Datasets {
		ds := openml.Generate(spec, cfg.Scale, cfg.Seed)
		for seed := 0; seed < cfg.Seeds; seed++ {
			splitRng := rand.New(rand.NewPCG(cfg.Seed+uint64(seed)*101, uint64(di)))
			train, test := ds.TrainTestSplit(splitRng)
			for _, sys := range systems {
				for _, budget := range cfg.Budgets {
					if budget < sys.MinBudget() {
						continue
					}
					records = append(records, runCell(sys, train, test, budget, cfg, uint64(seed)*1009+uint64(di)))
				}
			}
		}
	}
	return records
}

// runCell executes one grid cell.
func runCell(sys automl.System, train, test *tabular.Dataset, budget time.Duration, cfg Config, seed uint64) Record {
	rec := Record{
		System:  sys.Name(),
		Dataset: train.Name,
		Budget:  budget,
		Seed:    seed,
	}
	execMeter := energy.NewMeter(cfg.Machine, cfg.Cores)
	execMeter.SetGPUMode(cfg.GPUMode)
	res, err := sys.Fit(train, automl.Options{Budget: budget, Meter: execMeter, Seed: cfg.Seed*31 + seed})
	if err != nil {
		rec.Failed = true
		return rec
	}
	rec.ExecKWh = res.ExecKWh
	rec.ExecTime = res.ExecTime
	rec.Evaluated = res.Evaluated

	// Inference is measured separately on a single core (per-instance
	// profile, paper §3.2). Systems whose predictor cannot use the GPU
	// leave it idling when drivers are loaded (paper Table 3).
	inferMeter := energy.NewMeter(cfg.Machine, 1)
	if cfg.GPUMode != energy.GPUOff {
		if res.GPUInference {
			inferMeter.SetGPUMode(energy.GPUActive)
		} else {
			inferMeter.SetGPUMode(energy.GPUIdle)
		}
	}
	pred, err := res.Predict(test.X, inferMeter)
	if err != nil {
		rec.Failed = true
		return rec
	}
	rec.TestScore = metrics.BalancedAccuracy(test.Y, pred, test.Classes)
	n := float64(len(test.X))
	if n > 0 {
		rec.InferKWhPerInst = inferMeter.Tracker().KWh(energy.Inference) / n
		rec.InferTimePerInst = time.Duration(float64(inferMeter.Tracker().BusyTime(energy.Inference)) / n)
	}
	return rec
}

// CellKey aggregates records by (system, budget).
type CellKey struct {
	System string
	Budget time.Duration
}

// CellStats are the bootstrap-aggregated measurements of one (system,
// budget) cell across datasets and seeds.
type CellStats struct {
	Key CellKey
	// Score is the bootstrap mean ± std of balanced accuracy (paper
	// §3.1: resample one run per dataset with replacement).
	Score metrics.Summary
	// ExecKWh and InferKWhPerInst are means across datasets of per-
	// dataset mean energy.
	ExecKWh         float64
	ExecKWhStd      float64
	InferKWhPerInst float64
	// InferTimePerInst is the mean per-instance inference compute time.
	InferTimePerInst time.Duration
	// ExecTime is the mean ± std of the actual execution duration.
	ExecTime    time.Duration
	ExecTimeStd time.Duration
	// Runs counts the non-failed records aggregated.
	Runs int
}

// Aggregate groups records into per-(system, budget) statistics.
func Aggregate(records []Record, rng *rand.Rand) []CellStats {
	type accum struct {
		scoreByDataset map[string][]float64
		execByDataset  map[string][]float64
		inferPerInst   []float64
		inferTimes     []float64
		execTimes      []float64
		runs           int
	}
	cells := make(map[CellKey]*accum)
	for _, r := range records {
		if r.Failed {
			continue
		}
		key := CellKey{System: r.System, Budget: r.Budget}
		a := cells[key]
		if a == nil {
			a = &accum{
				scoreByDataset: make(map[string][]float64),
				execByDataset:  make(map[string][]float64),
			}
			cells[key] = a
		}
		a.scoreByDataset[r.Dataset] = append(a.scoreByDataset[r.Dataset], r.TestScore)
		a.execByDataset[r.Dataset] = append(a.execByDataset[r.Dataset], r.ExecKWh)
		a.inferPerInst = append(a.inferPerInst, r.InferKWhPerInst)
		a.inferTimes = append(a.inferTimes, r.InferTimePerInst.Seconds())
		a.execTimes = append(a.execTimes, r.ExecTime.Seconds())
		a.runs++
	}

	out := make([]CellStats, 0, len(cells))
	for key, a := range cells {
		stats := CellStats{Key: key, Runs: a.runs}
		var perDataset [][]float64
		for _, runs := range a.scoreByDataset {
			perDataset = append(perDataset, runs)
		}
		stats.Score = metrics.Bootstrap(perDataset, 500, rng)

		var execMeans []float64
		for _, runs := range a.execByDataset {
			execMeans = append(execMeans, metrics.MeanStd(runs).Mean)
		}
		execStats := metrics.MeanStd(execMeans)
		stats.ExecKWh = execStats.Mean
		stats.ExecKWhStd = execStats.Std
		stats.InferKWhPerInst = metrics.MeanStd(a.inferPerInst).Mean
		stats.InferTimePerInst = time.Duration(metrics.MeanStd(a.inferTimes).Mean * float64(time.Second))
		timeStats := metrics.MeanStd(a.execTimes)
		stats.ExecTime = time.Duration(timeStats.Mean * float64(time.Second))
		stats.ExecTimeStd = time.Duration(timeStats.Std * float64(time.Second))
		out = append(out, stats)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.System != out[j].Key.System {
			return out[i].Key.System < out[j].Key.System
		}
		return out[i].Key.Budget < out[j].Key.Budget
	})
	return out
}

// BySystem indexes cell stats by system name.
func BySystem(stats []CellStats) map[string][]CellStats {
	out := make(map[string][]CellStats)
	for _, s := range stats {
		out[s.Key.System] = append(out[s.Key.System], s)
	}
	return out
}

// BestCell returns the cell with the highest mean score for the system.
func BestCell(stats []CellStats, system string) (CellStats, bool) {
	var best CellStats
	found := false
	for _, s := range stats {
		if s.Key.System != system {
			continue
		}
		if !found || s.Score.Mean > best.Score.Mean {
			best = s
			found = true
		}
	}
	return best, found
}

// Systems lists the distinct system names in the stats, sorted.
func Systems(stats []CellStats) []string {
	seen := map[string]bool{}
	var names []string
	for _, s := range stats {
		if !seen[s.Key.System] {
			seen[s.Key.System] = true
			names = append(names, s.Key.System)
		}
	}
	sort.Strings(names)
	return names
}

// FormatBudget renders a budget the way the paper does (10s, 30s, 1min,
// 5min).
func FormatBudget(d time.Duration) string {
	if d < time.Minute {
		return fmt.Sprintf("%ds", int(d.Seconds()))
	}
	return fmt.Sprintf("%dmin", int(d.Minutes()))
}
